/**
 * @file
 * Extension bench: the paper states encoding "is also feasible with the
 * proposed architecture" (Sec. 3.1).  Measures the systematic RS
 * encoder (LFSR division by g(x)) on both cores.
 */

#include "bench_util.h"
#include "kernels/coding_kernels.h"

using namespace gfp;

int
main()
{
    bench::header("Extension", "systematic RS encoder on both cores");
    std::printf("%-14s %10s %10s %10s | %8s %8s\n", "code",
                "compiled", "hand-opt", "GF core", "spd(c)", "spd(h)");
    for (auto [m, t] : {std::pair{8u, 8u}, {8u, 4u}, {8u, 2u},
                        {5u, 2u}}) {
        RSCode code(m, t);
        Rng rng(m + t);
        std::vector<uint8_t> info(code.k());
        for (auto &b : info)
            b = static_cast<uint8_t>(rng.below(code.field().order()));

        auto run = [&](const std::string &src, CoreKind kind) {
            Machine mach(src, kind);
            mach.writeBytes("infodata", info);
            return mach.runOk().cycles;
        };
        uint64_t comp = run(rsEncodeAsmBaseline(
                                code.field(), t, BaselineFlavor::kCompiled),
                            CoreKind::kBaseline);
        uint64_t hand = run(rsEncodeAsmBaseline(
                                code.field(), t,
                                BaselineFlavor::kHandOptimized),
                            CoreKind::kBaseline);
        uint64_t gf = run(rsEncodeAsmGfcore(code.field(), t),
                          CoreKind::kGfProcessor);
        std::printf("RS(%3u,%3u,%u) %10llu %10llu %10llu | %7.1fx "
                    "%7.1fx\n",
                    code.n(), code.k(), t,
                    static_cast<unsigned long long>(comp),
                    static_cast<unsigned long long>(hand),
                    static_cast<unsigned long long>(gf),
                    bench::ratio(comp, gf), bench::ratio(hand, gf));
    }
    bench::note("the parity-register update (2t multiply-accumulates "
                "per symbol) vectorizes four coefficients per "
                "gfMult_simd — encode shows the same gains as the "
                "syndrome kernel.");
    return 0;
}
