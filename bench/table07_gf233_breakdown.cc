/**
 * @file
 * Reproduces Table 7: operation/cycle breakdown of the GF(2^233)
 * multiplication and squaring on the GF processor, attributed to the
 * paper's three phases (full product / rearrange / polynomial
 * reduction) via the kernel's phase labels.
 */

#include <map>

#include "bench_util.h"
#include "kernels/wide_kernels.h"

using namespace gfp;

namespace {

struct PhaseCounts
{
    uint64_t ld = 0, st = 0, gf32 = 0, alu = 0, cycles = 0;
};

/** Run @p src attributing per-instruction costs to labeled phases. */
std::map<std::string, PhaseCounts>
profile(const std::string &src,
        const std::vector<std::pair<std::string, std::string>> &phases,
        const std::vector<std::pair<std::string,
                                    std::vector<uint8_t>>> &inputs)
{
    Machine m(src, CoreKind::kGfProcessor);
    for (const auto &[label, bytes] : inputs)
        m.writeBytes(label, bytes);

    // Phase = last label at or below pc (phases sorted by address).
    std::vector<std::pair<uint32_t, std::string>> bounds;
    for (const auto &[label, name] : phases)
        bounds.emplace_back(m.addr(label), name);
    std::sort(bounds.begin(), bounds.end());

    std::map<std::string, PhaseCounts> out;
    m.core().setTraceHook([&](uint32_t pc, const Instr &in) {
        std::string name = "other";
        for (const auto &[addr, n] : bounds)
            if (pc >= addr)
                name = n;
        PhaseCounts &c = out[name];
        unsigned cyc = 1;
        switch (classOf(in.op)) {
          case InstrClass::kLoad: ++c.ld; cyc = 2; break;
          case InstrClass::kStore: ++c.st; cyc = 2; break;
          case InstrClass::kGf32: ++c.gf32; break;
          case InstrClass::kBranch: ++c.alu; cyc = 2; break;
          default: ++c.alu; break;
        }
        c.cycles += cyc;
    });
    m.runOk();
    return out;
}

void
printPhase(const char *name, const PhaseCounts &c, const char *paper)
{
    std::printf("  %-22s %5llu %5llu %8llu %6llu %7llu   %s\n", name,
                static_cast<unsigned long long>(c.ld),
                static_cast<unsigned long long>(c.st),
                static_cast<unsigned long long>(c.gf32),
                static_cast<unsigned long long>(c.alu),
                static_cast<unsigned long long>(c.cycles), paper);
}

} // namespace

int
main()
{
    bench::header("Table 7", "GF(2^233) mult/square cycle breakdown on "
                             "the GF processor (K-233 trinomial)");
    BinaryField f = BinaryField::nist("233");
    auto a = bench::elemBytes(f.randomElement(11));
    auto b = bench::elemBytes(f.randomElement(12));

    std::printf("233-bit multiplication (direct product):\n");
    std::printf("  %-22s %5s %5s %8s %6s %7s   %s\n", "phase", "LD",
                "ST", "GF32mul", "ALU*", "cycles", "paper (LD/ST/GF32/"
                "ALU/cyc)");
    auto mul = profile(mult233DirectAsm(),
                       {{"fmul", "product"},
                        {"fm_rearrange", "rearrange"},
                        {"fm_reduce", "reduction"}},
                       {{"opa", a}, {"opb", b}});
    printPhase("full product", mul["product"], "72/71/64/112/462");
    printPhase("rearrange", mul["rearrange"], " 8/-/-/29/45");
    printPhase("polynomial reduction", mul["reduction"],
               " 8/8/-/60/92");
    printPhase("call/halt overhead", mul["other"], "-");
    uint64_t total = 0;
    for (auto &[k, v] : mul)
        total += v.cycles;
    std::printf("  total: %llu cycles (paper: 599)\n",
                static_cast<unsigned long long>(total));

    std::printf("\n233-bit squaring (interleaved product + rearrange, "
                "as in the paper's Sec. 3.3.4):\n");
    auto sq = profile(square233Asm(), {{"fsqr", "square"}},
                      {{"opa", a}});
    printPhase("product+rearrange+red.", sq["square"],
               "49 + 87 = 136 total");
    printPhase("call/halt overhead", sq["other"], "-");
    uint64_t sq_total = 0;
    for (auto &[k, v] : sq)
        sq_total += v.cycles;
    std::printf("  total: %llu cycles (paper: 136)\n",
                static_cast<unsigned long long>(sq_total));
    bench::note("ALU* column includes branches/calls; the paper's "
                "footnote likewise lumps bitwise ops into 'ALUs'.");
    return 0;
}
