/**
 * @file
 * Batch execution engine throughput: jobs/sec for RS syndrome decode
 * jobs and AES-CTR blocks, serial vs. 1/2/4/8 worker threads, plus
 * single-thread ablations: plain single-stepping dispatch vs. the fused
 * threaded interpreter vs. the template-JIT translated mode, and
 * fetch+decode vs. the predecode cache.  The translated leg's
 * before/after numbers additionally land in BENCH_jit.json.
 *
 * Usage: engine_throughput [--dispatch=plain|fused|translated]
 *                          [engine_json] [jit_json]
 * --dispatch selects the mode the thread-scaling engines run in
 * (default fused); the serial ablation legs always run all three.
 *
 * Unlike the table/figure benches (which report the paper's *guest*
 * cycle counts), this bench measures the *host* interpreter — how fast
 * this reproduction can serve simulated decode/crypto traffic.  Every
 * number also lands in BENCH_engine.json (path overridable via argv[1])
 * so CI can archive the run.
 *
 * Methodology notes:
 *  - every timed configuration is run three times; the best wall time
 *    is reported and the relative spread (max-min)/best rides along,
 *    so a single noisy run cannot gate an efficiency target;
 *  - parallel efficiency is normalized to the *achievable* parallelism
 *    min(threads, hardware_concurrency): ideal 8-worker wall time on a
 *    4-core host is serial/4, not serial/8 — and on a 1-core host the
 *    metric measures pure scheduler overhead (a perfectly
 *    work-conserving pool scores ~1.0 at any width, a contended one
 *    scores below).  On multi-core hosts with threads <= cores this is
 *    exactly the classical speedup/threads definition.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strutil.h"
#include "engine/batch_engine.h"
#include "jit/translator.h"
#include "kernels/batch_kernels.h"
#include "kernels/coding_kernels.h"

namespace {

using namespace gfp;
using namespace gfp::bench;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Deterministic batch of noisy RS(255,239,8) words, one per job. */
std::vector<Job>
syndromeJobs(unsigned n_jobs)
{
    RSCode code(8, 8);
    Rng rng(1234);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < n_jobs; ++j) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(5000 + j);
        auto rx = inj.corruptSymbols(code.encode(info),
                                     j % (code.t() + 1), 8);
        jobs.push_back(syndromeJob(rx, 2 * code.t()));
    }
    return jobs;
}

/** Wall time of three repetitions of @p body after one untimed warmup
 *  (first-touch costs — predecode, JIT GF tables, branch history — hit
 *  every configuration once and are not steady-state throughput): best
 *  plus the relative spread (max-min)/best, so one preempted run
 *  cannot gate a target. */
template <typename F>
std::pair<double, double>
bestOf3(F &&body)
{
    body();
    double best = 0, worst = 0;
    for (int rep = 0; rep < 3; ++rep) {
        auto t0 = Clock::now();
        body();
        double s = seconds(t0, Clock::now());
        if (rep == 0 || s < best)
            best = s;
        if (rep == 0 || s > worst)
            worst = s;
    }
    return {best, best > 0 ? (worst - best) / best : 0.0};
}

void
runScaling(const char *name, const char *tag, BatchProgram bp,
           const std::vector<Job> &jobs, BenchJsonReporter &json,
           BenchJsonReporter &jit_json, DispatchMode scaling_mode)
{
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    std::printf("\n  %s: %zu jobs (best of 3 runs, spread = "
                "(max-min)/best)\n",
                name, jobs.size());
    std::printf("  %-26s %11s %8s %12s %9s %7s\n", "configuration",
                "wall [ms]", "spread", "jobs/sec", "speedup", "eff");

    // The before/after anchor: the same serial engine with macro-op
    // fusion and threaded dispatch disabled — every instruction goes
    // through the single-stepping interpreter, as before this
    // optimization existed.
    BatchEngine plain_eng(bp,
                          {.threads = 1, .dispatch = DispatchMode::kPlain});
    std::vector<JobResult> plain;
    auto [plain_s, plain_spread] =
        bestOf3([&] { plain = plain_eng.runSerial(jobs); });
    std::printf("  %-26s %11.1f %7.1f%% %12.0f %8.2fx %6s\n",
                "serial, plain dispatch", 1e3 * plain_s,
                100.0 * plain_spread, jobs.size() / plain_s, 1.0, "-");
    json.add(strprintf("%s.plain_dispatch_jobs_per_sec", tag),
             jobs.size() / plain_s, "jobs/sec");

    BatchEngine serial_eng(bp, {.threads = 1});
    std::vector<JobResult> serial;
    auto [serial_s, serial_spread] =
        bestOf3([&] { serial = serial_eng.runSerial(jobs); });
    std::printf("  %-26s %11.1f %7.1f%% %12.0f %8.2fx %6s\n",
                "serial, fused dispatch", 1e3 * serial_s,
                100.0 * serial_spread, jobs.size() / serial_s,
                plain_s / serial_s, "-");
    json.add(strprintf("%s.serial_jobs_per_sec", tag),
             jobs.size() / serial_s, "jobs/sec");
    json.add(strprintf("%s.fused_dispatch_speedup", tag),
             plain_s / serial_s, "x");

    // Template-JIT translated mode, same serial engine shape.  The
    // before/after pair for BENCH_jit.json is fused (before this
    // optimization) vs translated (after).
    BatchEngine trans_eng(
        bp, {.threads = 1, .dispatch = DispatchMode::kTranslated});
    std::vector<JobResult> trans;
    auto [trans_s, trans_spread] =
        bestOf3([&] { trans = trans_eng.runSerial(jobs); });
    std::printf("  %-26s %11.1f %7.1f%% %12.0f %8.2fx %6s\n",
                "serial, translated (JIT)", 1e3 * trans_s,
                100.0 * trans_spread, jobs.size() / trans_s,
                plain_s / trans_s, "-");
    json.add(strprintf("%s.translated_jobs_per_sec", tag),
             jobs.size() / trans_s, "jobs/sec");
    json.add(strprintf("%s.translated_speedup_over_fused", tag),
             serial_s / trans_s, "x");
    jit_json.add(strprintf("%s.before_fused_jobs_per_sec", tag),
                 jobs.size() / serial_s, "jobs/sec");
    jit_json.add(strprintf("%s.before_fused_spread", tag), serial_spread,
                 "fraction");
    jit_json.add(strprintf("%s.after_translated_jobs_per_sec", tag),
                 jobs.size() / trans_s, "jobs/sec");
    jit_json.add(strprintf("%s.after_translated_spread", tag),
                 trans_spread, "fraction");
    jit_json.add(strprintf("%s.translated_speedup_over_fused", tag),
                 serial_s / trans_s, "x");
    jit_json.add(strprintf("%s.translated_speedup_over_plain", tag),
                 plain_s / trans_s, "x");

    // No dispatch mode may change results: all serial runs
    // bit-identical.
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (plain[i].outputs != serial[i].outputs ||
            plain[i].words != serial[i].words ||
            trans[i].outputs != serial[i].outputs ||
            trans[i].words != serial[i].words) {
            std::printf("  !! dispatch parity FAILED at job %zu\n", i);
            return;
        }
    }

    double engine_1t_s = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        BatchEngine eng(bp,
                        {.threads = threads, .dispatch = scaling_mode});
        std::vector<JobResult> par;
        auto [s, spread] = bestOf3([&] { par = eng.run(jobs); });
        if (threads == 1)
            engine_1t_s = s;
        // Parity check while we are here: engine == serial, bit for bit.
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (par[i].outputs != serial[i].outputs ||
                par[i].words != serial[i].words) {
                std::printf("  !! parity FAILED at job %zu\n", i);
                return;
            }
        }
        // Scaling efficiency, normalized to achievable parallelism:
        // fraction of the ideal wall time engine_1t / min(threads, hw)
        // actually achieved.  With threads <= cores this is the
        // classical speedup/threads; oversubscribed (or on a 1-core
        // host) it measures scheduler overhead instead of flooring at
        // 1/threads by construction.
        const unsigned ideal = std::min(threads, hw);
        double eff = engine_1t_s / (s * ideal);
        std::printf("  %-26s %11.1f %7.1f%% %12.0f %8.2fx %5.0f%%\n",
                    strprintf("engine, %u thread%s", threads,
                              threads == 1 ? "" : "s")
                        .c_str(),
                    1e3 * s, 100.0 * spread, jobs.size() / s,
                    plain_s / s, 100.0 * eff);
        json.add(strprintf("%s.engine_%ut_jobs_per_sec", tag, threads),
                 jobs.size() / s, "jobs/sec");
        json.add(strprintf("%s.engine_%ut_spread", tag, threads), spread,
                 "fraction");
        json.add(strprintf("%s.engine_%ut_efficiency", tag, threads), eff,
                 "fraction");
        json.add(strprintf("%s.engine_%ut_ideal_parallelism", tag,
                           threads),
                 ideal, "threads");
        // Steal-path activity of the last repetition (run-scoped).
        json.add(strprintf("%s.engine_%ut_steals", tag, threads),
                 eng.metrics().gauge("steals"), "steals");
        json.add(strprintf("%s.engine_%ut_jobs_stolen", tag, threads),
                 eng.metrics().gauge("jobs_stolen"), "jobs");
    }
}

void
runPredecodeAblation(BenchJsonReporter &json)
{
    // Single-thread guest execution with and without the predecoded
    // instruction cache: the same syndrome job re-run on one Machine.
    RsWorkload w(8, 8, 8, /*seed=*/42);
    const unsigned reps = 400;

    double secs[2];
    for (bool predecode : {false, true}) {
        Machine m(syndromeAsmGfcore(w.field, w.n, 2 * w.t),
                  CoreKind::kGfProcessor);
        if (!predecode)
            m.core().disablePredecode();
        m.writeBytes("rxdata", w.rxBytes());
        auto t0 = Clock::now();
        uint64_t instrs = 0;
        for (unsigned r = 0; r < reps; ++r) {
            m.reset();
            instrs += m.runOk().instrs;
        }
        auto t1 = Clock::now();
        secs[predecode] = seconds(t0, t1);
        std::printf("  %-22s %12.1f %12.0f    (%.1f M instr/s)\n",
                    predecode ? "predecode cache" : "fetch+decode/step",
                    1e3 * secs[predecode], reps / secs[predecode],
                    instrs / secs[predecode] / 1e6);
        json.add(predecode ? "predecode.cached_runs_per_sec"
                           : "predecode.fetch_decode_runs_per_sec",
                 reps / secs[predecode], "runs/sec");
    }
    std::printf("  predecode speedup: %.2fx\n", secs[0] / secs[1]);
    json.add("predecode.speedup", secs[0] / secs[1], "x");
}

} // namespace

int
main(int argc, char **argv)
{
    DispatchMode scaling_mode = DispatchMode::kFused;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--dispatch=", 0) == 0) {
            if (!parseDispatchMode(arg.substr(11), scaling_mode)) {
                std::fprintf(stderr,
                             "engine_throughput: unknown dispatch mode "
                             "'%s' (plain|fused|translated)\n",
                             arg.substr(11).c_str());
                return 2;
            }
        } else {
            paths.push_back(arg);
        }
    }

    header("engine_throughput",
           "batch engine jobs/sec and thread scaling (host-side measure)");
    note(strprintf("host reports %u hardware thread(s)",
                   std::thread::hardware_concurrency()));
    note(strprintf("dispatch: %s interpreter, scaling engines in %s "
                   "mode, JIT backend %s",
                   Core::dispatchKind(), dispatchModeName(scaling_mode),
                   jit::nativeBackendName()));

    BenchJsonReporter json("engine_throughput");
    json.add("host_threads", std::thread::hardware_concurrency(), "");
    json.add(std::string("host.dispatch_") + Core::dispatchKind(), 1,
             "flag");
    BenchJsonReporter jit_json("engine_throughput_jit");
    jit_json.add("host_threads", std::thread::hardware_concurrency(), "");
    jit_json.add(std::string("host.jit_backend_") +
                     jit::nativeBackendName(),
                 1, "flag");

    GFField f(8);
    runScaling("RS(255,239) syndrome decode", "syndrome",
               syndromeBatchProgram(f, 255, 16), syndromeJobs(512), json,
               jit_json, scaling_mode);

    Aes aes(std::vector<uint8_t>(16, 0x42));
    AesBlock iv{};
    iv[15] = 1;
    runScaling("AES-128-CTR blocks", "aes_ctr", aesBlockBatchProgram(),
               aesCtrJobs(aes, iv, 1024 * 16), json, jit_json,
               scaling_mode);

    std::printf("\n  predecode ablation (single thread, syndrome "
                "kernel, 400 reruns)\n");
    std::printf("  %-22s %12s %12s\n", "fetch path", "wall [ms]",
                "runs/sec");
    runPredecodeAblation(json);

    // Telemetry snapshot: one traced syndrome batch, archived as a
    // metrics JSON (engine/metrics.h) and a Perfetto-loadable trace of
    // per-job worker spans — CI uploads both as artifacts.
    {
        TraceLog trace;
        BatchEngine eng(syndromeBatchProgram(f, 255, 16), {.threads = 4});
        eng.setTraceLog(&trace);
        eng.run(syndromeJobs(128));
        eng.metrics().writeTo("METRICS_engine.json");
        trace.writeTo("TRACE_engine.json");
        std::printf("\n  telemetry: %.0f jobs/sec over %g workers -> "
                    "METRICS_engine.json, %zu trace events -> "
                    "TRACE_engine.json\n",
                    eng.metrics().gauge("jobs_per_sec"),
                    eng.metrics().gauge("workers"), trace.size());
    }

    json.writeTo(!paths.empty() ? paths[0] : "BENCH_engine.json");
    jit_json.writeTo(paths.size() > 1 ? paths[1] : "BENCH_jit.json");
    return 0;
}
