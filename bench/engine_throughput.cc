/**
 * @file
 * Batch execution engine throughput: jobs/sec for RS syndrome decode
 * jobs and AES-CTR blocks, serial vs. 1/2/4/8 worker threads, plus the
 * predecoded-instruction-cache ablation on a single thread.
 *
 * Unlike the table/figure benches (which report the paper's *guest*
 * cycle counts), this bench measures the *host* interpreter — how fast
 * this reproduction can serve simulated decode/crypto traffic.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/strutil.h"
#include "engine/batch_engine.h"
#include "kernels/batch_kernels.h"
#include "kernels/coding_kernels.h"

namespace {

using namespace gfp;
using namespace gfp::bench;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Deterministic batch of noisy RS(255,239,8) words, one per job. */
std::vector<Job>
syndromeJobs(unsigned n_jobs)
{
    RSCode code(8, 8);
    Rng rng(1234);
    std::vector<Job> jobs;
    for (unsigned j = 0; j < n_jobs; ++j) {
        std::vector<GFElem> info(code.k());
        for (auto &s : info)
            s = rng.nextByte();
        ExactErrorInjector inj(5000 + j);
        auto rx = inj.corruptSymbols(code.encode(info),
                                     j % (code.t() + 1), 8);
        jobs.push_back(syndromeJob(rx, 2 * code.t()));
    }
    return jobs;
}

void
runScaling(const char *name, BatchProgram bp, const std::vector<Job> &jobs)
{
    std::printf("\n  %s: %zu jobs\n", name, jobs.size());
    std::printf("  %-22s %12s %12s %10s\n", "configuration", "wall [ms]",
                "jobs/sec", "speedup");

    BatchEngine serial_eng(bp, {.threads = 1});
    auto t0 = Clock::now();
    auto serial = serial_eng.runSerial(jobs);
    auto t1 = Clock::now();
    double serial_s = seconds(t0, t1);
    std::printf("  %-22s %12.1f %12.0f %9.2fx\n", "serial (1 machine)",
                1e3 * serial_s, jobs.size() / serial_s, 1.0);

    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        BatchEngine eng(bp, {.threads = threads});
        t0 = Clock::now();
        auto par = eng.run(jobs);
        t1 = Clock::now();
        double s = seconds(t0, t1);
        // Parity check while we are here: engine == serial, bit for bit.
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (par[i].outputs != serial[i].outputs ||
                par[i].words != serial[i].words) {
                std::printf("  !! parity FAILED at job %zu\n", i);
                return;
            }
        }
        std::printf("  %-22s %12.1f %12.0f %9.2fx\n",
                    strprintf("engine, %u thread%s", threads,
                              threads == 1 ? "" : "s")
                        .c_str(),
                    1e3 * s, jobs.size() / s, serial_s / s);
    }
}

void
runPredecodeAblation()
{
    // Single-thread guest execution with and without the predecoded
    // instruction cache: the same syndrome job re-run on one Machine.
    RsWorkload w(8, 8, 8, /*seed=*/42);
    const unsigned reps = 400;

    double secs[2];
    for (bool predecode : {false, true}) {
        Machine m(syndromeAsmGfcore(w.field, w.n, 2 * w.t),
                  CoreKind::kGfProcessor);
        if (!predecode)
            m.core().disablePredecode();
        m.writeBytes("rxdata", w.rxBytes());
        auto t0 = Clock::now();
        uint64_t instrs = 0;
        for (unsigned r = 0; r < reps; ++r) {
            m.reset();
            instrs += m.runOk().instrs;
        }
        auto t1 = Clock::now();
        secs[predecode] = seconds(t0, t1);
        std::printf("  %-22s %12.1f %12.0f    (%.1f M instr/s)\n",
                    predecode ? "predecode cache" : "fetch+decode/step",
                    1e3 * secs[predecode], reps / secs[predecode],
                    instrs / secs[predecode] / 1e6);
    }
    std::printf("  predecode speedup: %.2fx\n", secs[0] / secs[1]);
}

} // namespace

int
main()
{
    header("engine_throughput",
           "batch engine jobs/sec and thread scaling (host-side measure)");
    note(strprintf("host reports %u hardware thread(s)",
                   std::thread::hardware_concurrency()));

    GFField f(8);
    runScaling("RS(255,239) syndrome decode",
               syndromeBatchProgram(f, 255, 16), syndromeJobs(512));

    Aes aes(std::vector<uint8_t>(16, 0x42));
    AesBlock iv{};
    iv[15] = 1;
    runScaling("AES-128-CTR blocks", aesBlockBatchProgram(),
               aesCtrJobs(aes, iv, 256 * 16));

    std::printf("\n  predecode ablation (single thread, syndrome "
                "kernel, 400 reruns)\n");
    std::printf("  %-22s %12s %12s\n", "fetch path", "wall [ms]",
                "runs/sec");
    runPredecodeAblation();
    return 0;
}
