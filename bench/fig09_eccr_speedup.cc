/**
 * @file
 * Reproduces Fig. 9: per-kernel and overall decoder speedups of the GF
 * processor over the M0+-class baseline, for RS(255,239,8) and
 * BCH(31,11,5).  Both baseline fidelity flavors are reported; the
 * paper's figure corresponds to compiled-code baselines.
 */

#include "bench_util.h"
#include "kernels/coding_kernels.h"

using namespace gfp;
using bench::ratio;

namespace {

struct KernelCycles
{
    uint64_t hand = 0, compiled = 0, gf = 0;
};

void
printRow(const char *name, const KernelCycles &c)
{
    std::printf("  %-10s %9llu %9llu %9llu   %6.1fx %6.1fx\n", name,
                static_cast<unsigned long long>(c.compiled),
                static_cast<unsigned long long>(c.hand),
                static_cast<unsigned long long>(c.gf),
                ratio(c.compiled, c.gf), ratio(c.hand, c.gf));
}

template <typename Setup>
KernelCycles
measure(const std::string &src_hand, const std::string &src_compiled,
        const std::string &src_gf, Setup setup)
{
    KernelCycles out;
    {
        Machine m(src_hand, CoreKind::kBaseline);
        setup(m);
        out.hand = m.runOk().cycles;
    }
    {
        Machine m(src_compiled, CoreKind::kBaseline);
        setup(m);
        out.compiled = m.runOk().cycles;
    }
    {
        Machine m(src_gf, CoreKind::kGfProcessor);
        setup(m);
        out.gf = m.runOk().cycles;
    }
    return out;
}

} // namespace

int
main()
{
    bench::header("Fig 9", "ECCr decoder speedup over the M0+ baseline");
    std::printf("columns: baseline-compiled, baseline-hand-optimized, "
                "GF processor cycles; speedups vs each baseline\n");

    const auto kHand = BaselineFlavor::kHandOptimized;
    const auto kComp = BaselineFlavor::kCompiled;

    // ---------------- RS(255,239,8) ----------------
    {
        bench::RsWorkload w(8, 8, 8, 1234);
        std::printf("\nRS(255,239,8) on GF(2^8):  [paper: syndrome >20x,"
                    " BMA smallest, Forney >10x, overall >10x]\n");
        KernelCycles total_h{}, agg{};
        (void)total_h;

        auto synd = measure(
            syndromeAsmBaseline(w.field, w.n, 2 * w.t, kHand),
            syndromeAsmBaseline(w.field, w.n, 2 * w.t, kComp),
            syndromeAsmGfcore(w.field, w.n, 2 * w.t),
            [&](Machine &m) { m.writeBytes("rxdata", w.rxBytes()); });
        printRow("syndrome", synd);

        auto bma = measure(
            bmaAsmBaseline(w.field, 2 * w.t, kHand),
            bmaAsmBaseline(w.field, 2 * w.t, kComp),
            bmaAsmGfcore(w.field, 2 * w.t),
            [&](Machine &m) { m.writeBytes("synd", w.syndBytes()); });
        printRow("BMA", bma);

        auto chien = measure(
            chienAsmBaseline(w.field, w.n, w.t, kHand),
            chienAsmBaseline(w.field, w.n, w.t, kComp),
            chienAsmGfcore(w.field, w.n, w.t),
            [&](Machine &m) { m.writeBytes("lambda", w.lambdaBytes()); });
        printRow("Chien", chien);

        auto forney = measure(
            forneyAsmBaseline(w.field, 2 * w.t, kHand),
            forneyAsmBaseline(w.field, 2 * w.t, kComp),
            forneyAsmGfcore(w.field, 2 * w.t),
            [&](Machine &m) {
                m.writeBytes("synd", w.syndBytes());
                m.writeBytes("lambda", w.lambdaBytes());
                m.writeBytes("locs", w.locsBytes());
                m.writeWord("nloc",
                            static_cast<uint32_t>(w.locs.size()));
            });
        printRow("Forney", forney);

        agg.hand = synd.hand + bma.hand + chien.hand + forney.hand;
        agg.compiled =
            synd.compiled + bma.compiled + chien.compiled +
            forney.compiled;
        agg.gf = synd.gf + bma.gf + chien.gf + forney.gf;
        printRow("overall", agg);
    }

    // ---------------- BCH(31,11,5) ----------------
    {
        bench::BchWorkload w(5, 5, 5, 77);
        std::vector<GFElem> rx_syms(w.rx.begin(), w.rx.end());
        std::printf("\nBCH(31,11,5) on GF(2^5):  [paper: overall lower "
                    "than RS; partial SIMD group at 10 syndromes]\n");

        auto synd = measure(
            syndromeAsmBaseline(w.field, w.n, 2 * w.t, kHand),
            syndromeAsmBaseline(w.field, w.n, 2 * w.t, kComp),
            syndromeAsmGfcore(w.field, w.n, 2 * w.t),
            [&](Machine &m) { m.writeBytes("rxdata", w.rx); });
        printRow("syndrome", synd);

        auto bma = measure(
            bmaAsmBaseline(w.field, 2 * w.t, kHand),
            bmaAsmBaseline(w.field, 2 * w.t, kComp),
            bmaAsmGfcore(w.field, 2 * w.t),
            [&](Machine &m) { m.writeBytes("synd", w.syndBytes()); });
        printRow("BMA", bma);

        auto chien = measure(
            chienAsmBaseline(w.field, w.n, w.t, kHand),
            chienAsmBaseline(w.field, w.n, w.t, kComp),
            chienAsmGfcore(w.field, w.n, w.t),
            [&](Machine &m) { m.writeBytes("lambda", w.lambdaBytes()); });
        printRow("Chien", chien);

        KernelCycles agg;
        agg.hand = synd.hand + bma.hand + chien.hand;
        agg.compiled = synd.compiled + bma.compiled + chien.compiled;
        agg.gf = synd.gf + bma.gf + chien.gf;
        printRow("overall", agg);
        bench::note("no Forney for binary BCH: errors are corrected by "
                    "bit flips (Sec. 3.3.2).");
    }
    return 0;
}
