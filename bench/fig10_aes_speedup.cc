/**
 * @file
 * Reproduces Fig. 10: AES kernel speedups of the GF processor over the
 * M0+-class baseline (AddRoundKey, S-box, ShiftRows, MixColumns,
 * InvMixColumns, key expansion) plus full-block encrypt/decrypt.
 */

#include "bench_util.h"
#include "kernels/aes_kernels.h"

using namespace gfp;
using bench::ratio;

int
main()
{
    bench::header("Fig 10", "AES speedup over the M0+ baseline");

    Aes aes(std::vector<uint8_t>{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                 0x09, 0xcf, 0x4f, 0x3c});
    std::vector<uint8_t> state{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                               0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                               0x07, 0x34};
    auto rkeys = bench::roundKeyBytes(aes);
    std::vector<uint8_t> key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                             0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                             0x4f, 0x3c};

    auto run = [&](const std::string &src, CoreKind kind) {
        Machine m(src, kind);
        // Every kernel reads some subset of these inputs.
        m.writeBytes("state", state);
        m.writeBytes("rkeys", rkeys);
        m.writeBytes("key", key);
        return m.runOk().cycles;
    };
    auto row = [&](const char *name, uint64_t base, uint64_t gf,
                   const char *paper) {
        std::printf("  %-14s %9llu %9llu   %6.1fx   paper: %s\n", name,
                    static_cast<unsigned long long>(base),
                    static_cast<unsigned long long>(gf),
                    ratio(base, gf), paper);
    };

    std::printf("columns: baseline cycles, GF-core cycles, speedup\n\n");

    row("AddRoundKey",
        run(aesArkAsm(), CoreKind::kBaseline),
        run(aesArkAsm(), CoreKind::kGfProcessor), "~1x (pure XOR)");
    row("SubBytes",
        run(aesSubBytesAsmBaseline(false), CoreKind::kBaseline),
        run(aesSubBytesAsmGfcore(false), CoreKind::kGfProcessor),
        "high (table lookup -> gfMultInv_simd)");
    row("InvSubBytes",
        run(aesSubBytesAsmBaseline(true), CoreKind::kBaseline),
        run(aesSubBytesAsmGfcore(true), CoreKind::kGfProcessor), "high");
    row("ShiftRows",
        run(aesShiftRowsAsm(false), CoreKind::kBaseline),
        run(aesShiftRowsAsm(false), CoreKind::kGfProcessor),
        "~1x (data movement)");
    row("MixCol (hand)",
        run(aesMixColAsmBaseline(false, BaselineFlavor::kHandOptimized),
            CoreKind::kBaseline),
        run(aesMixColAsmGfcore(false), CoreKind::kGfProcessor),
        ">10x vs compiled");
    row("MixCol (comp)",
        run(aesMixColAsmBaseline(false, BaselineFlavor::kCompiled),
            CoreKind::kBaseline),
        run(aesMixColAsmGfcore(false), CoreKind::kGfProcessor),
        ">10x");
    row("InvMixCol (hand)",
        run(aesMixColAsmBaseline(true, BaselineFlavor::kHandOptimized),
            CoreKind::kBaseline),
        run(aesMixColAsmGfcore(true), CoreKind::kGfProcessor), "~20x");
    row("InvMixCol (comp)",
        run(aesMixColAsmBaseline(true, BaselineFlavor::kCompiled),
            CoreKind::kBaseline),
        run(aesMixColAsmGfcore(true), CoreKind::kGfProcessor), "~20x");
    row("KeyExpansion",
        run(aesKeyExpandAsmBaseline(), CoreKind::kBaseline),
        run(aesKeyExpandAsmGfcore(), CoreKind::kGfProcessor),
        "moderate");

    uint64_t enc_b = run(aesBlockAsmBaseline(false), CoreKind::kBaseline);
    uint64_t enc_g = run(aesBlockAsmGfcore(false), CoreKind::kGfProcessor);
    uint64_t dec_b = run(aesBlockAsmBaseline(true), CoreKind::kBaseline);
    uint64_t dec_g = run(aesBlockAsmGfcore(true), CoreKind::kGfProcessor);
    std::printf("\n");
    row("Encrypt block", enc_b, enc_g, ">5x");
    row("Decrypt block", dec_b, dec_g, ">10x");
    std::printf("\n  GF-core AES-128: %.1f cycles/byte -> %.1f Mbps @ "
                "100MHz (paper: 12.2 Mbps)\n",
                enc_g / 16.0, 128.0 * 100.0 / enc_g);
    bench::note("shape: invMixCol gains ~2x the MixCol gains (the GF "
                "core is agnostic to coefficient values); decrypt "
                "gains exceed encrypt gains.");
    return 0;
}
