/**
 * @file
 * Reproduces the Sec. 3.3.4 headline: K-233 scalar multiplication with
 * the 112-bit-security evaluation scalar (112 point doublings + 56
 * point additions) and the resulting ECDH key-exchange latency at
 * 100 MHz.
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"
#include "kernels/wide_kernels.h"

using namespace gfp;

int
main()
{
    bench::header("Sec 3.3.4", "K-233 scalar multiplication and ECDH "
                               "latency");
    EllipticCurve curve = EllipticCurve::nist("K-233");
    const EcPoint &g = curve.basePoint();
    Gf2x k = EllipticCurve::evaluationScalar(2026);
    EcPoint expect = curve.scalarMult(k, g);

    Literature lit;
    ProcessorSynthesis p;
    for (bool kara : {false, true}) {
        Machine m(scalarMultAsm(kara), CoreKind::kGfProcessor);
        m.writeBytes("qx", bench::elemBytes(g.x));
        m.writeBytes("qy", bench::elemBytes(g.y));
        auto kb = bench::elemBytes(k);
        kb.resize(16);
        m.writeBytes("kwords", kb);
        m.writeWord("kbits", k.bitLength());
        CycleStats s = m.runOk();

        bool ok = bench::readElem(m, "resx") == expect.x &&
                  bench::readElem(m, "resy") == expect.y;
        double ms = s.cycles / (p.frequency_mhz * 1000.0);
        std::printf("  %-22s %9llu cycles  %6.2f ms @100MHz  "
                    "result %s\n",
                    kara ? "Karatsuba multiplier" : "direct multiplier",
                    static_cast<unsigned long long>(s.cycles), ms,
                    ok ? "matches reference" : "MISMATCH");
    }
    std::printf("\n  paper: %u cycles for 112 PD + 56 PA (+%u support) "
                "= 7.75 ms scalar mult, ECDH < 8 ms\n",
                lit.paper_scalar_mult_cycles,
                lit.paper_scalar_support_cycles);
    std::printf("  (our measurement already includes the final "
                "projective-to-affine inversion)\n");
    bench::note("latency of this order is paid once per session key "
                "exchange — acceptable for IoT (Sec. 3.3.4).");
    return 0;
}
