/**
 * @file
 * Reproduces Table 13: energy efficiency against the most efficient
 * compact AES ASIC (Zhang, scaled to 28nm), using *this
 * reproduction's* measured AES-128 cycle count for the throughput.
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"
#include "kernels/aes_kernels.h"

using namespace gfp;

int
main()
{
    bench::header("Table 13", "energy efficiency vs. compact AES ASIC "
                              "(28nm, 0.9V, 100MHz)");
    // Measure our GF-core AES-128 block encryption.
    Aes aes(std::vector<uint8_t>(16, 0x2b));
    Machine m(aesBlockAsmGfcore(false), CoreKind::kGfProcessor);
    m.writeBytes("rkeys", bench::roundKeyBytes(aes));
    m.writeBytes("state", std::vector<uint8_t>(16, 0x5a));
    uint64_t cycles = m.runOk().cycles;

    ProcessorSynthesis p;
    Literature lit;
    double mbps = p.throughputMbps(128.0, static_cast<double>(cycles));
    double pjb = p.energyPerBitPj(mbps);

    std::printf("%-14s %10s %12s %14s\n", "", "power(uW)",
                "thru (Mbps)", "energy (pJ/b)");
    std::printf("%-14s %10.0f %12.1f %14.2f\n", "Zhang ASIC",
                lit.zhang_aes.power_uw, lit.zhang_aes.throughput_mbps,
                lit.zhang_aes.pj_per_bit);
    std::printf("%-14s %10.0f %12.1f %14.2f   (paper's build)\n",
                "paper", p.total_power_uw,
                lit.paper_aes_throughput_mbps, lit.paper_aes_pj_per_bit);
    std::printf("%-14s %10.0f %12.1f %14.2f   (%llu cycles/block "
                "measured)\n",
                "this repro", p.total_power_uw, mbps, pjb,
                static_cast<unsigned long long>(cycles));
    std::printf("\n  ASIC advantage: %.1fx (paper ~6x) — programmable "
                "beats ASIC only when flexibility matters.\n",
                pjb / lit.zhang_aes.pj_per_bit);
    return 0;
}
