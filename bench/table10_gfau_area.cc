/**
 * @file
 * Reproduces Table 10: power/area composition of the GF arithmetic
 * unit in 28nm (published calibration + internal-consistency checks).
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"

using namespace gfp;

int
main()
{
    bench::header("Table 10", "GF arithmetic unit area (28nm, "
                              "m=5..8, arbitrary polynomial)");
    GfauSynthesis g;
    std::printf("%-28s %10s %10s %14s\n", "", "GF mult", "GF sq",
                "inst. control");
    std::printf("%-28s %10u %10u %14s\n", "# of primitive units",
                g.mult.count, g.square.count, "-");
    std::printf("%-28s %10.2f %10.2f %14s\n",
                "single unit area (um^2)", g.mult.area_um2,
                g.square.area_um2, "-");
    std::printf("%-28s %10.0f %10.0f %14.0f\n", "array area (um^2)",
                g.multArrayArea(), g.squareArrayArea(),
                g.control_area_um2);
    std::printf("%-28s %10s %10s %14s\n", "", "", "", "");
    std::printf("published total area: %.0f um^2   column sum: %.0f "
                "um^2 (paper-internal discrepancy of %.0f um^2, "
                "reproduced as printed)\n",
                g.total_area_um2, g.columnSumArea(),
                g.columnSumArea() - g.total_area_um2);
    std::printf("critical path: %.2f ns @ GF multiplicative inverse\n",
                g.critical_path_ns);
    bench::note("< 6000 um^2 and < 3 ns: compact enough to drop into "
                "an embedded core as an accelerator block.");
    return 0;
}
