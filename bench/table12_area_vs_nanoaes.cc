/**
 * @file
 * Reproduces Table 12: area comparison with the smallest published AES
 * ASIC (Intel NanoAES, scaled to 28nm).
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"

using namespace gfp;

int
main()
{
    bench::header("Table 12", "area vs. the smallest AES ASIC "
                              "(Intel NanoAES, scaled to 28nm)");
    GfauSynthesis g;
    ProcessorSynthesis p;
    Literature lit;
    std::printf("  NanoAES encryption datapath:  %7.0f um^2\n",
                lit.nano_aes.enc_area);
    std::printf("  NanoAES decryption datapath:  %7.0f um^2\n",
                lit.nano_aes.dec_area);
    std::printf("  NanoAES total (enc + dec):    %7.0f um^2\n",
                lit.nano_aes.total_area);
    std::printf("  this work: GF arithmetic unit %7.0f um^2 "
                "(enc AND dec AND coding AND ECC)\n", g.total_area_um2);
    std::printf("  this work: full processor     %7.0f um^2\n",
                p.total_area_um2);
    std::printf("\n  GFAU / NanoAES-total  = %.2f (smaller than the "
                "fixed-function pair)\n",
                g.total_area_um2 / lit.nano_aes.total_area);
    std::printf("  processor extra area over NanoAES = %.1f%%\n",
                100.0 * (p.total_area_um2 - lit.nano_aes.total_area) /
                    lit.nano_aes.total_area);
    bench::note("with ~63.5%% more area than one fixed-function AES "
                "pair, the processor also covers RS/BCH flexibility "
                "and ECC — the multi-ASIC alternative costs far more.");
    return 0;
}
