/**
 * @file
 * Reproduces Table 5: the kernel inventory with its parallelism
 * characterization, augmented with *measured* SIMD-lane utilization
 * from the structural GFAU model (fraction of issued SIMD lanes that
 * carry live data).
 */

#include "bench_util.h"
#include "kernels/aes_kernels.h"
#include "kernels/coding_kernels.h"

using namespace gfp;

namespace {

/** Measured GF-instruction mix for a kernel run on the GF core. */
template <typename Setup>
void
mixRow(const char *app, const char *kernel, const char *parallelism,
       const std::string &src, Setup setup)
{
    Machine m(src, CoreKind::kGfProcessor);
    setup(m);
    CycleStats s = m.runOk();
    std::printf("  %-8s %-12s %6llu GF-SIMD %5llu GF32  (%s)\n", app,
                kernel,
                static_cast<unsigned long long>(s.gf_simd_ops),
                static_cast<unsigned long long>(s.gf32_ops),
                parallelism);
}

} // namespace

int
main()
{
    bench::header("Table 5", "kernel inventory, parallelism, and "
                             "measured GF-instruction mix");

    bench::RsWorkload w(8, 8, 8, 99);
    mixRow("RS/BCH", "syndrome", "2t independent syndromes, 4/SIMD word",
           syndromeAsmGfcore(w.field, w.n, 16),
           [&](Machine &m) { m.writeBytes("rxdata", w.rxBytes()); });
    mixRow("RS/BCH", "BMA", "iterative; little parallelism (scalar GF)",
           bmaAsmGfcore(w.field, 16),
           [&](Machine &m) { m.writeBytes("synd", w.syndBytes()); });
    mixRow("RS/BCH", "Chien", "2^m independent evaluations, 4 terms/word",
           chienAsmGfcore(w.field, w.n, 8),
           [&](Machine &m) { m.writeBytes("lambda", w.lambdaBytes()); });
    mixRow("RS", "Forney", "4 error locations per SIMD pass",
           forneyAsmGfcore(w.field, 16), [&](Machine &m) {
               m.writeBytes("synd", w.syndBytes());
               m.writeBytes("lambda", w.lambdaBytes());
               m.writeBytes("locs", w.locsBytes());
               m.writeWord("nloc", static_cast<uint32_t>(w.locs.size()));
           });

    Aes aes(std::vector<uint8_t>(16, 0x11));
    auto rk = bench::roundKeyBytes(aes);
    mixRow("AES", "full encrypt", "16 independent state bytes, 4/word",
           aesBlockAsmGfcore(false), [&](Machine &m) {
               m.writeBytes("rkeys", rk);
               m.writeBytes("state", std::vector<uint8_t>(16, 0x22));
           });
    mixRow("AES", "key expand", "SubWord on 4 bytes per round",
           aesKeyExpandAsmGfcore(), [&](Machine &m) {
               m.writeBytes("key", std::vector<uint8_t>(16, 0x33));
           });

    std::printf("\n  ECC_l: GF(2^233) mult/square use the single-cycle "
                "32-bit partial product (see Table 7 bench);\n"
                "  squaring additionally benefits from the sparse "
                "Koblitz reduction x^233 + x^74 + 1.\n");
    bench::note("BMA issues GF-SIMD ops with only lane 0 live — the "
                "limited-parallelism case the paper calls out.");
    return 0;
}
