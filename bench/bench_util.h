/**
 * @file
 * Shared glue for the per-table/per-figure benchmark binaries: workload
 * construction, kernel execution on both cores, and uniform report
 * formatting.  Every bench prints the paper's published values next to
 * this reproduction's measured values so the shape comparison is
 * immediate.
 */

#ifndef GFP_BENCH_BENCH_UTIL_H
#define GFP_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/ecc.h"
#include "sim/machine.h"

namespace gfp {
namespace bench {

/**
 * Collects named scalar results and writes them as one JSON document,
 * so benchmark runs leave a machine-readable artifact (BENCH_*.json)
 * next to the human-readable console tables — CI uploads these and the
 * before/after numbers in docs/PERFORMANCE.md are regenerable from
 * them.  The format is deliberately tiny and uniform across benches:
 *
 *   {"bench": "...", "metrics": [
 *     {"name": "...", "value": 123.4, "unit": "jobs/sec"}, ...]}
 */
class BenchJsonReporter
{
  public:
    explicit BenchJsonReporter(std::string bench_name)
        : bench_(std::move(bench_name))
    {
    }

    void
    add(const std::string &name, double value, const std::string &unit = "")
    {
        entries_.push_back({name, unit, value});
    }

    /** Write the document to @p path; returns false on I/O failure. */
    bool
    writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        std::fprintf(f, "{\"bench\": \"%s\",\n \"metrics\": [\n",
                     escaped(bench_).c_str());
        for (size_t i = 0; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            std::fprintf(
                f, "  {\"name\": \"%s\", \"value\": %.9g, \"unit\": \"%s\"}%s\n",
                escaped(e.name).c_str(), e.value, escaped(e.unit).c_str(),
                i + 1 < entries_.size() ? "," : "");
        }
        std::fprintf(f, " ]}\n");
        bool ok = std::fclose(f) == 0;
        if (ok)
            std::printf("  [wrote %s: %zu metrics]\n", path.c_str(),
                        entries_.size());
        return ok;
    }

  private:
    struct Entry
    {
        std::string name, unit;
        double value;
    };

    static std::string
    escaped(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::string bench_;
    std::vector<Entry> entries_;
};

inline void
header(const std::string &id, const std::string &title)
{
    std::printf("\n================================================="
                "=====================\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("==================================================="
                "===================\n");
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

inline double
ratio(uint64_t a, uint64_t b)
{
    return b ? static_cast<double>(a) / static_cast<double>(b) : 0.0;
}

/** 32-byte little-endian image of a GF(2^233) element. */
inline std::vector<uint8_t>
elemBytes(const Gf2x &v)
{
    auto words = v.toWords32(8);
    std::vector<uint8_t> out;
    for (uint32_t w : words)
        for (unsigned b = 0; b < 4; ++b)
            out.push_back(static_cast<uint8_t>(w >> (8 * b)));
    return out;
}

inline Gf2x
readElem(Machine &m, const std::string &label)
{
    auto bytes = m.readBytes(label, 32);
    std::vector<uint32_t> words(8);
    for (unsigned i = 0; i < 8; ++i)
        for (unsigned b = 0; b < 4; ++b)
            words[i] |= static_cast<uint32_t>(bytes[4 * i + b]) << (8 * b);
    return Gf2x::fromWords32(words);
}

/** XOR-ready round-key byte blocks for the AES kernels. */
inline std::vector<uint8_t>
roundKeyBytes(const Aes &aes)
{
    std::vector<uint8_t> out;
    for (uint32_t word : aes.roundKeys()) {
        out.push_back(static_cast<uint8_t>(word >> 24));
        out.push_back(static_cast<uint8_t>(word >> 16));
        out.push_back(static_cast<uint8_t>(word >> 8));
        out.push_back(static_cast<uint8_t>(word));
    }
    return out;
}

/** A decodable RS workload with its reference intermediates. */
struct RsWorkload
{
    GFField field;
    unsigned n, t;
    std::vector<GFElem> rx;
    std::vector<GFElem> synd;
    GFPoly lambda;
    std::vector<unsigned> locs;

    RsWorkload(unsigned m, unsigned t_, unsigned errors, uint64_t seed)
        : field(m), n(field.groupOrder()), t(t_), lambda(field)
    {
        RSCode code(m, t_);
        Rng rng(seed);
        std::vector<GFElem> info(code.k());
        for (auto &sym : info)
            sym = rng.below(field.order());
        ExactErrorInjector inj(seed + 1);
        rx = inj.corruptSymbols(code.encode(info), errors, m);
        synd = syndromes(field, rx, 2 * t_);
        lambda = berlekampMassey(field, synd);
        locs = chienSearch(field, lambda, n);
    }

    std::vector<uint8_t> rxBytes() const
    {
        return std::vector<uint8_t>(rx.begin(), rx.end());
    }
    std::vector<uint8_t> syndBytes() const
    {
        return std::vector<uint8_t>(synd.begin(), synd.end());
    }
    std::vector<uint8_t> lambdaBytes() const
    {
        std::vector<uint8_t> out(12, 0);
        for (int i = 0; i <= lambda.degree(); ++i)
            out[i] = static_cast<uint8_t>(lambda.coeff(i));
        return out;
    }
    std::vector<uint8_t> locsBytes() const
    {
        std::vector<uint8_t> out(12, 0);
        for (size_t i = 0; i < locs.size(); ++i)
            out[i] = static_cast<uint8_t>(locs[i]);
        return out;
    }
};

/** A binary-BCH workload (bit symbols) with reference intermediates. */
struct BchWorkload
{
    GFField field;
    unsigned n, t;
    std::vector<uint8_t> rx;
    std::vector<GFElem> synd;
    GFPoly lambda;

    BchWorkload(unsigned m, unsigned t_, unsigned errors, uint64_t seed);

    std::vector<uint8_t> syndBytes() const
    {
        return std::vector<uint8_t>(synd.begin(), synd.end());
    }
    std::vector<uint8_t> lambdaBytes() const
    {
        std::vector<uint8_t> out(12, 0);
        for (int i = 0; i <= lambda.degree(); ++i)
            out[i] = static_cast<uint8_t>(lambda.coeff(i));
        return out;
    }
};

inline BchWorkload::BchWorkload(unsigned m, unsigned t_, unsigned errors,
                                uint64_t seed)
    : field(m), n(field.groupOrder()), t(t_), lambda(field)
{
    BCHCode code(m, t_);
    Rng rng(seed);
    std::vector<uint8_t> info(code.k());
    for (auto &bit : info)
        bit = static_cast<uint8_t>(rng.below(2));
    ExactErrorInjector inj(seed + 1);
    rx = inj.flipBits(code.encode(info), errors);
    std::vector<GFElem> rx_syms(rx.begin(), rx.end());
    synd = syndromes(field, rx_syms, 2 * t_);
    lambda = berlekampMassey(field, synd);
}

} // namespace bench
} // namespace gfp

#endif // GFP_BENCH_BENCH_UTIL_H
