/**
 * @file
 * Reproduces Table 9: K-233 point addition / doubling / field inverse
 * cycle counts — Clercq's M0+ baseline (literature) vs. this processor
 * with the direct-product and Karatsuba multipliers (measured).
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"
#include "kernels/wide_kernels.h"

using namespace gfp;

int
main()
{
    bench::header("Table 9", "K-233 point operations (cycles)");
    EllipticCurve curve = EllipticCurve::nist("K-233");
    LdPoint p0 = curve.doubleLd(curve.toProjective(curve.basePoint()));

    auto runPoint = [&](const std::string &src) {
        Machine m(src, CoreKind::kGfProcessor);
        m.writeBytes("px", bench::elemBytes(p0.x));
        m.writeBytes("py", bench::elemBytes(p0.y));
        m.writeBytes("pz", bench::elemBytes(p0.z));
        m.writeBytes("qx", bench::elemBytes(curve.basePoint().x));
        m.writeBytes("qy", bench::elemBytes(curve.basePoint().y));
        return m.runOk().cycles;
    };
    auto runInv = [&](bool kara) {
        Machine m(inverse233Asm(kara), CoreKind::kGfProcessor);
        m.writeBytes("opa", bench::elemBytes(p0.x));
        return m.runOk().cycles;
    };

    uint64_t pa_d = runPoint(pointAddAsm(false));
    uint64_t pa_k = runPoint(pointAddAsm(true));
    uint64_t pd_d = runPoint(pointDoubleAsm(false));
    uint64_t pd_k = runPoint(pointDoubleAsm(true));
    uint64_t inv_d = runInv(false);
    uint64_t inv_k = runInv(true);

    Literature lit;
    std::printf("%-16s %10s | %10s %10s | %10s %10s\n", "operation",
                "Clercq M0+", "paper dir", "paper kara", "repro dir",
                "repro kara");
    std::printf("%-16s %10u | %10u %10u | %10llu %10llu\n",
                "point addition", lit.clercq_points.point_add,
                lit.paper_direct.point_add,
                lit.paper_karatsuba.point_add,
                static_cast<unsigned long long>(pa_d),
                static_cast<unsigned long long>(pa_k));
    std::printf("%-16s %10s | %10u %10u | %10llu %10llu\n",
                "point doubling", "n/r", lit.paper_direct.point_double,
                lit.paper_karatsuba.point_double,
                static_cast<unsigned long long>(pd_d),
                static_cast<unsigned long long>(pd_k));
    std::printf("%-16s %10u | %10u %10u | %10llu %10llu\n",
                "field inverse", lit.clercq_points.inverse,
                lit.paper_direct.inverse, lit.paper_karatsuba.inverse,
                static_cast<unsigned long long>(inv_d),
                static_cast<unsigned long long>(inv_k));
    std::printf("\n  point-add speedup vs Clercq: %.1fx (paper 5.1x); "
                "inverse: %.1fx (paper 3.5x)\n",
                bench::ratio(lit.clercq_points.point_add, pa_d),
                bench::ratio(lit.clercq_points.inverse, inv_d));
    bench::note("Karatsuba lands at parity here because gf32bMult "
                "costs one cycle — see EXPERIMENTS.md.");
    return 0;
}
