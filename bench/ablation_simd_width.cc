/**
 * @file
 * Ablation behind the paper's Sec. 2.4.3 design choice: a four-lane
 * 8-bit SIMD datapath.  Measures the syndrome kernel (the most
 * parallel decoder kernel) with 1/2/4 live lanes, and reasons about
 * wider datapaths from the application parallelism in Table 5.
 */

#include "bench_util.h"
#include "kernels/coding_kernels.h"

using namespace gfp;

int
main()
{
    bench::header("Ablation", "SIMD width (paper Sec. 2.4.3: why "
                              "four-way is the sweet spot)");
    bench::RsWorkload w(8, 8, 8, 4242);

    std::printf("RS(255,239,8) syndrome kernel, 16 syndromes:\n");
    std::printf("  %5s %10s %10s %10s\n", "lanes", "cycles", "vs 1-lane",
                "efficiency");
    uint64_t base = 0;
    for (unsigned lanes : {1u, 2u, 4u}) {
        Machine m(syndromeAsmGfcoreLanes(w.field, w.n, 16, lanes),
                  CoreKind::kGfProcessor);
        m.writeBytes("rxdata", w.rxBytes());
        uint64_t c = m.runOk().cycles;
        if (lanes == 1)
            base = c;
        std::printf("  %5u %10llu %9.2fx %9.0f%%\n", lanes,
                    static_cast<unsigned long long>(c),
                    bench::ratio(base, c),
                    100.0 * base / (c * lanes));
    }

    std::printf("\nBCH(31,11,5): 10 syndromes — a 4-lane pass wastes 2 "
                "lanes in the last group:\n");
    bench::BchWorkload b(5, 5, 5, 99);
    for (unsigned lanes : {1u, 2u, 4u}) {
        Machine m(syndromeAsmGfcoreLanes(b.field, b.n, 10, lanes),
                  CoreKind::kGfProcessor);
        m.writeBytes("rxdata", b.rx);
        std::printf("  %u lanes: %llu cycles\n", lanes,
                    static_cast<unsigned long long>(
                        m.runOk().cycles));
    }

    bench::note("scaling is near-linear up to 4 lanes; beyond that, "
                "Table 5's kernels run out of independent work (2t "
                "syndromes, 4-byte AES columns, nu <= t error "
                "locations), while a 32-bit partial product and a SIMD "
                "inverse both consume exactly 16 multipliers — the "
                "resource-sharing argument for stopping at 4.");
    return 0;
}
