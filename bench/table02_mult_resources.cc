/**
 * @file
 * Reproduces Table 2: resource comparison between the bit-pipelined
 * systolic GF multiplier and this work's single-step linear-transform
 * multiplier, across field widths.
 */

#include "bench_util.h"
#include "hwmodel/resource_models.h"

using namespace gfp;

int
main()
{
    bench::header("Table 2", "GF multiplication resource comparison "
                             "(AND:MUX:XOR:FF = 1:2.25:2.25:4 @28nm)");

    std::printf("%4s | %10s %10s %10s | %10s %10s %10s | %6s\n", "m",
                "sys AND", "sys XOR", "sys FF", "lin AND", "lin XOR",
                "lin FF", "ratio");
    for (unsigned m : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 12u, 16u}) {
        GateCost sys = systolicMultCost(m);
        GateCost lin = linearTransformMultCost(m);
        std::printf("%4u | %10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f "
                    "| %5.2fx\n",
                    m, sys.and_gates, sys.xor_gates, sys.flipflops,
                    lin.and_gates, lin.xor_gates, lin.flipflops,
                    sys.areaUnits() / lin.areaUnits());
    }

    std::printf("\nClosed forms at m = 8 (paper's formulas):\n");
    std::printf("  systolic total area  16.5m^2 - 10m  = %.0f AND-eq\n",
                systolicMultAreaClosedForm(8));
    std::printf("  this work total area 6.5m^2 - 7.75m = %.0f AND-eq\n",
                linearMultAreaClosedForm(8));
    std::printf("  configuration FF (shared): systolic %g, "
                "this work %g (the 56-bit P matrix)\n",
                systolicMultConfigFf(8), linearMultConfigFf(8));
    bench::note("shape check: this work < systolic at every width; the "
                "config register is the (shared, amortized) price.");
    return 0;
}
