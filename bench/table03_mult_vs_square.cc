/**
 * @file
 * Reproduces Table 3: multiplication vs. square primitive units
 * (synthesis calibration), and checks the structural model's unit
 * utilization matches the 16-multiplier / 28-square configuration.
 */

#include "bench_util.h"
#include "gfau/gf_unit.h"
#include "hwmodel/synthesis.h"

using namespace gfp;

int
main()
{
    bench::header("Table 3", "multiplication vs. square units "
                             "(m = 5..8, arbitrary polynomial; 28nm)");

    GfauSynthesis g;
    std::printf("%-22s %12s %12s\n", "", "GF mult", "GF square");
    std::printf("%-22s %12u %12u\n", "# of cells", g.mult.cells,
                g.square.cells);
    std::printf("%-22s %12.2f %12.2f\n", "area (um^2)", g.mult.area_um2,
                g.square.area_um2);
    std::printf("%-22s %12.1f %12.1f\n", "critical path (ns)",
                g.mult.critical_path_ns, g.square.critical_path_ns);
    std::printf("%-22s %12u %12u\n", "# of primitive units",
                g.mult.count, g.square.count);

    // Structural cross-check: one 4-way SIMD inverse must light up all
    // 16 multipliers and all 28 square units exactly once.
    GFArithmeticUnit unit;
    unit.configureField(8, 0x11d);
    unit.resetStats();
    unit.simdInverse(0x01020304);
    std::printf("\nstructural model, one gfMultInv_simd in GF(2^8):\n");
    std::printf("  multiplier activations: %llu (budget 16)\n",
                static_cast<unsigned long long>(
                    unit.multUnitActivations()));
    std::printf("  square-unit activations: %llu (budget 28)\n",
                static_cast<unsigned long long>(
                    unit.squareUnitActivations()));
    bench::note("a multiplier costs ~3.1x a square unit, which is why "
                "squares are a separate primitive.");
    return 0;
}
