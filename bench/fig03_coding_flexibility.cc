/**
 * @file
 * Reproduces the paper's motivating claim (Secs. 1.1 / Fig. 3): one
 * flexible GF datapath should serve many (n, k, t) block codes because
 * different channel conditions favor different codes.  Sweeps BCH and
 * RS codes over a uniform-error channel and a bursty channel and
 * reports post-decoding word error rates and effective code rates.
 */

#include "bench_util.h"

using namespace gfp;

namespace {

struct CodeResult
{
    double wer;
    double rate;
};

template <typename EncodeDecode>
CodeResult
trial(unsigned trials, EncodeDecode &&fn)
{
    unsigned failures = 0;
    double rate = 0;
    for (unsigned i = 0; i < trials; ++i) {
        auto [ok, r] = fn(i);
        failures += !ok;
        rate = r;
    }
    return {static_cast<double>(failures) / trials, rate};
}

} // namespace

int
main()
{
    bench::header("Fig 3 (motivation)", "coding flexibility: "
                  "different channels favor different GF codes");
    const unsigned kTrials = 120;

    struct BchSpec { unsigned m, t; };
    std::vector<BchSpec> bch_specs{{5, 1}, {5, 3}, {5, 5}, {6, 2},
                                   {6, 4}};
    struct RsSpec { unsigned m, t; };
    std::vector<RsSpec> rs_specs{{8, 2}, {8, 8}};

    for (double ber : {0.005, 0.02}) {
        std::printf("\nuniform channel (BSC), bit error rate %.3f:\n",
                    ber);
        std::printf("  %-16s %8s %10s\n", "code", "rate", "word-err");
        for (auto spec : bch_specs) {
            BCHCode code(spec.m, spec.t);
            Rng rng(42);
            BscChannel ch(ber, 1000 + spec.m * 10 + spec.t);
            auto res = trial(kTrials, [&](unsigned) {
                std::vector<uint8_t> info(code.k());
                for (auto &bit : info)
                    bit = static_cast<uint8_t>(rng.below(2));
                auto cw = code.encode(info);
                auto dec = code.decode(ch.transmit(cw));
                return std::pair{dec.ok && dec.codeword == cw,
                                 code.rate()};
            });
            std::printf("  BCH(%2u,%2u,%u)    %8.3f %10.3f\n", code.n(),
                        code.k(), code.t(), res.rate, res.wer);
        }
        for (auto spec : rs_specs) {
            RSCode code(spec.m, spec.t);
            Rng rng(43);
            BscChannel ch(ber, 2000 + spec.t);
            auto res = trial(kTrials / 4, [&](unsigned) {
                std::vector<GFElem> info(code.k());
                for (auto &sym : info)
                    sym = rng.nextByte();
                auto cw = code.encode(info);
                auto dec = code.decode(ch.transmitSymbols(cw, 8));
                return std::pair{dec.ok && dec.codeword == cw,
                                 code.rate()};
            });
            std::printf("  RS(%3u,%3u,%u)   %8.3f %10.3f\n", code.n(),
                        code.k(), code.t(), res.rate, res.wer);
        }
    }

    std::printf("\nbursty channel (Gilbert-Elliott, avg BER ~0.01, "
                "burst errors):\n");
    std::printf("  %-16s %8s %10s\n", "code", "rate", "word-err");
    {
        BCHCode bch(5, 3);
        Rng rng(7);
        GilbertElliottChannel ch(0.004, 0.12, 0.0005, 0.25, 77);
        auto res = trial(kTrials, [&](unsigned) {
            std::vector<uint8_t> info(bch.k());
            for (auto &bit : info)
                bit = static_cast<uint8_t>(rng.below(2));
            auto cw = bch.encode(info);
            auto dec = bch.decode(ch.transmit(cw));
            return std::pair{dec.ok && dec.codeword == cw, bch.rate()};
        });
        std::printf("  BCH(31,16,3)    %8.3f %10.3f\n", res.rate,
                    res.wer);
    }
    {
        RSCode rs(8, 8);
        Rng rng(8);
        GilbertElliottChannel ch(0.004, 0.12, 0.0005, 0.25, 78);
        auto res = trial(kTrials / 4, [&](unsigned) {
            std::vector<GFElem> info(rs.k());
            for (auto &sym : info)
                sym = rng.nextByte();
            auto cw = rs.encode(info);
            auto dec = rs.decode(ch.transmitSymbols(cw, 8));
            return std::pair{dec.ok && dec.codeword == cw, rs.rate()};
        });
        std::printf("  RS(255,239,8)   %8.3f %10.3f\n", res.rate,
                    res.wer);
    }
    bench::note("uniform errors: light BCH suffices at low BER, "
                "heavier t at high BER (rate/robustness trade).  "
                "bursts: RS symbols absorb multi-bit bursts that "
                "overwhelm comparable-rate BCH — exactly why one "
                "programmable GF datapath pays off.");
    return 0;
}
