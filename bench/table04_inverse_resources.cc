/**
 * @file
 * Reproduces Table 4: multiplicative-inverse resource comparison —
 * pipelined systolic extended-Euclidean vs. the Itoh-Tsujii network.
 */

#include "bench_util.h"
#include "hwmodel/resource_models.h"

using namespace gfp;

int
main()
{
    bench::header("Table 4", "multiplicative inverse resources: "
                             "systolic EA vs. Itoh-Tsujii");

    std::printf("%4s | %12s %12s | %12s %12s | %6s\n", "m", "EA area",
                "EA FF", "ITA area", "ITA FF", "ratio");
    for (unsigned m : {4u, 8u, 12u, 16u}) {
        GateCost ea = systolicEuclidInverseCost(m);
        GateCost ita = itaInverseCost(m);
        std::printf("%4u | %12.0f %12.0f | %12.0f %12.0f | %5.2fx\n", m,
                    ea.areaUnits(), ea.flipflops, ita.areaUnits(),
                    ita.flipflops,
                    ea.areaUnits() / ita.areaUnits());
    }
    std::printf("\nm^2 coefficients (paper's approximation): EA 57m^2, "
                "ITA 48.75m^2\n");
    std::printf("  at m=8: EA %.0f vs ITA %.0f AND-eq\n",
                systolicInverseAreaClosedForm(8),
                itaInverseAreaClosedForm(8));
    bench::note("ITA needs no flip-flops and reuses the existing "
                "multiply/square units — zero marginal area in the "
                "GFAU (the paper's second argument for it).");
    return 0;
}
