/**
 * @file
 * Reproduces Table 8: GF(2^233) multiplication/squaring cycle counts
 * across platforms — literature ARM baselines vs. this processor
 * (measured on the simulator).
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"
#include "kernels/wide_kernels.h"

using namespace gfp;

int
main()
{
    bench::header("Table 8", "ECC_l GF multiplication/squaring across "
                             "platforms (cycles)");
    BinaryField f = BinaryField::nist("233");
    auto a = bench::elemBytes(f.randomElement(31));
    auto b = bench::elemBytes(f.randomElement(32));

    auto run = [&](const std::string &src, bool two_ops) {
        Machine m(src, CoreKind::kGfProcessor);
        m.writeBytes("opa", a);
        if (two_ops)
            m.writeBytes("opb", b);
        return m.runOk().cycles;
    };
    uint64_t mult = run(mult233DirectAsm(), true);
    uint64_t mult_k = run(mult233KaratsubaAsm(), true);
    uint64_t sqr = run(square233Asm(), false);
    uint64_t mult_sw;
    {
        Machine m(mult233BaselineAsm(), CoreKind::kBaseline);
        m.writeBytes("opa", a);
        m.writeBytes("opb", b);
        mult_sw = m.runOk().cycles;
    }

    Literature lit;
    std::printf("%-34s %10s %10s\n", "platform", "mult", "square");
    std::printf("%-34s %10u %10u   (GF(2^228))\n",
                "Erdem [14], ARM7TDMI", lit.erdem_arm7.mult_228,
                lit.erdem_arm7.sqr_228);
    std::printf("%-34s %10u %10u   (GF(2^256))\n", "",
                lit.erdem_arm7.mult_256, lit.erdem_arm7.sqr_256);
    std::printf("%-34s %10u %10u\n", "Clercq [11], Cortex M0+",
                lit.clercq_m0plus.mult, lit.clercq_m0plus.sqr);
    std::printf("%-34s %10llu %10s   (measured: 4-bit comb, "
                "baseline core)\n",
                "this repro: M0+-class software",
                static_cast<unsigned long long>(mult_sw), "-");
    std::printf("%-34s %10u %10u   (paper's build)\n",
                "paper: 2-stage proc. + GF unit", lit.paper_direct.mult,
                lit.paper_direct.sqr);
    std::printf("%-34s %10llu %10llu   (measured)\n",
                "this repro: direct product",
                static_cast<unsigned long long>(mult),
                static_cast<unsigned long long>(sqr));
    std::printf("%-34s %10llu %10s   (measured)\n",
                "this repro: Karatsuba",
                static_cast<unsigned long long>(mult_k), "-");
    std::printf("\n  speedup vs Clercq M0+: mult %.1fx (paper 6.1x), "
                "square %.1fx (paper 2.9x)\n",
                bench::ratio(lit.clercq_m0plus.mult, mult),
                bench::ratio(lit.clercq_m0plus.sqr, sqr));
    std::printf("  speedup vs our own measured software baseline: "
                "%.1fx\n", bench::ratio(mult_sw, mult));
    bench::note("no precomputed tables anywhere: the software "
                "baselines need >= 4KB of them.");
    return 0;
}
