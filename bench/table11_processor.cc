/**
 * @file
 * Reproduces Table 11 (processor characteristics) plus the Sec. 3.4.2
 * voltage-scaling result.
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"

using namespace gfp;

int
main()
{
    bench::header("Table 11", "GF processor characteristics "
                              "(28nm @ 0.9V, 100MHz)");
    ProcessorSynthesis p;
    std::printf("%-28s %12s %12s %12s\n", "", "gate count",
                "area (um^2)", "power (uW)");
    std::printf("%-28s %12u %12.0f %12s\n", "2-stage shell: comb.",
                p.shell_comb_gates, p.shell_comb_area_um2, "-");
    std::printf("%-28s %12u %12.0f %12s\n", "2-stage shell: reg file",
                p.shell_rf_gates, p.shell_rf_area_um2, "-");
    std::printf("%-28s %12u %12.0f %12.0f\n", "2-stage shell: total",
                p.shell_total_gates, p.shell_total_area_um2,
                p.shell_power_uw);
    std::printf("%-28s %12u %12.0f %12.0f\n", "GF arithmetic unit",
                p.gfau_gates, p.gfau_area_um2, p.gfau_power_uw);
    std::printf("%-28s %12u %12.0f %12.0f\n", "design total",
                p.total_gates, p.total_area_um2, p.total_power_uw);

    std::printf("\nvoltage scaling (Sec. 3.4.2):\n");
    std::printf("  dynamic-only V^2 model @0.7V: %.1f uW\n",
                p.dynamicScaledPowerUw(0.7));
    std::printf("  paper's SPICE result   @0.7V: %.0f uW "
                "(GFAU %.0f uW) => %.2fx energy gain\n",
                p.total_power_uw_at_07v, p.gfau_power_uw_at_07v,
                p.voltageScalingEnergyGain());
    std::printf("  max clock: %.0f MHz (IoT domain needs ~%.0f MHz)\n",
                p.max_frequency_mhz, p.frequency_mhz);
    return 0;
}
