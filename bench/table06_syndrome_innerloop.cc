/**
 * @file
 * Reproduces Table 6: the syndrome-computation inner loop on a general
 * purpose processor (log-domain with table lookups and a modulo) vs.
 * this work (two single-cycle GF instructions), shown as actual
 * disassembly of the two generated kernels with per-iteration cycle
 * costs.
 */

#include "bench_util.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "kernels/coding_kernels.h"

using namespace gfp;

namespace {

/** Disassemble [from, to) instruction range of a program. */
void
dump(const Program &prog, uint32_t from, uint32_t to)
{
    for (uint32_t a = from; a < to; a += 4) {
        std::printf("    %04x:  %s\n", a,
                    disassembleWord(prog.code[a / 4], a).c_str());
    }
}

} // namespace

int
main()
{
    bench::header("Table 6", "syndrome inner loop: log-domain GPP vs. "
                             "GF instructions");
    GFField f(8);

    std::printf("baseline (compiled shape): per GF multiply -> "
                "gfmul helper call with log/antilog lookups and a "
                "software modulo:\n");
    Program base = Assembler::assemble(
        syndromeAsmBaseline(f, 255, 16, BaselineFlavor::kCompiled));
    // The gfmul helper starts at the 'gfmul' symbol.
    uint32_t gstart = base.symbol("gfmul");
    dump(base, gstart, gstart + 23 * 4);

    std::printf("\nthis work: the entire inner-loop body "
                "(4 syndromes at once):\n");
    Program gf = Assembler::assemble(syndromeAsmGfcore(f, 255, 16));
    uint32_t istart = gf.symbol("inner");
    dump(gf, istart, istart + 7 * 4);

    // Per-symbol-per-syndrome cycle cost.
    bench::RsWorkload w(8, 8, 8, 5);
    Machine mb(syndromeAsmBaseline(f, 255, 16), CoreKind::kBaseline);
    mb.writeBytes("rxdata", w.rxBytes());
    double base_cost = mb.runOk().cycles / (255.0 * 16);
    Machine mg(syndromeAsmGfcore(f, 255, 16), CoreKind::kGfProcessor);
    mg.writeBytes("rxdata", w.rxBytes());
    double gf_cost = mg.runOk().cycles / (255.0 * 16);
    std::printf("\n  measured inner-loop cost per symbol-syndrome: "
                "baseline %.1f cycles, this work %.2f cycles\n",
                base_cost, gf_cost);
    bench::note("the GF core replaces lookup+modulo+lookup with one "
                "gfmuls and one gfadds shared across 4 lanes.");
    return 0;
}
