/**
 * @file
 * Ablation for the paper's two power-gating claims (Sec. 2.4.2/2.4.3):
 *  - data-gating the idle GF arithmetic unit saves 77% of its dynamic
 *    power (GF instructions are interleaved with control code);
 *  - data-gating the reduction stage during gf32bMult saves 33%.
 * The structural model supplies measured GF-unit duty cycles per
 * kernel; the paper's percentages convert them into a power estimate.
 */

#include "bench_util.h"
#include "hwmodel/synthesis.h"
#include "kernels/aes_kernels.h"
#include "kernels/coding_kernels.h"
#include "kernels/wide_kernels.h"

using namespace gfp;

namespace {

struct Duty
{
    const char *name;
    uint64_t gf_ops;
    uint64_t cycles;
};

template <typename Setup>
Duty
measure(const char *name, const std::string &src, Setup setup)
{
    Machine m(src, CoreKind::kGfProcessor);
    setup(m);
    CycleStats s = m.runOk();
    return {name, s.gf_simd_ops + s.gf32_ops + s.gfcfg_ops, s.cycles};
}

} // namespace

int
main()
{
    bench::header("Ablation", "GF-unit duty cycle and the data-gating "
                              "power argument");
    ProcessorSynthesis p;

    bench::RsWorkload w(8, 8, 8, 11);
    Aes aes(std::vector<uint8_t>(16, 0x77));
    BinaryField f233 = BinaryField::nist("233");

    std::vector<Duty> rows;
    rows.push_back(measure("RS syndrome",
                           syndromeAsmGfcore(w.field, w.n, 16),
                           [&](Machine &m) {
                               m.writeBytes("rxdata", w.rxBytes());
                           }));
    rows.push_back(measure("RS BMA", bmaAsmGfcore(w.field, 16),
                           [&](Machine &m) {
                               m.writeBytes("synd", w.syndBytes());
                           }));
    rows.push_back(measure("AES-128 block", aesBlockAsmGfcore(false),
                           [&](Machine &m) {
                               m.writeBytes("rkeys",
                                            bench::roundKeyBytes(aes));
                               m.writeBytes("state",
                                            std::vector<uint8_t>(16, 1));
                           }));
    rows.push_back(measure("GF(2^233) mult", mult233DirectAsm(),
                           [&](Machine &m) {
                               m.writeBytes("opa", bench::elemBytes(
                                   f233.randomElement(1)));
                               m.writeBytes("opb", bench::elemBytes(
                                   f233.randomElement(2)));
                           }));

    // Power model: with data gating, an idle cycle costs 23% of an
    // active cycle (the paper's "77% dynamic power savings"); without
    // gating, the shared pipeline register toggles the unit every
    // cycle.  Calibrate the active-cycle power A so the gated model
    // reproduces the published 152 uW at the AES duty cycle.
    double aes_duty = static_cast<double>(rows[2].gf_ops) /
                      rows[2].cycles;
    double active_uw =
        p.gfau_power_uw / (aes_duty + 0.23 * (1.0 - aes_duty));

    std::printf("%-16s %8s %8s %7s | %15s %15s %9s\n", "kernel",
                "GF ops", "cycles", "duty", "gated (uW)",
                "ungated (uW)", "saved");
    for (const Duty &d : rows) {
        double duty = static_cast<double>(d.gf_ops) / d.cycles;
        double gated = active_uw * (duty + 0.23 * (1.0 - duty));
        double ungated = active_uw;
        std::printf("%-16s %8llu %8llu %6.1f%% | %15.1f %15.1f %8.0f%%\n",
                    d.name,
                    static_cast<unsigned long long>(d.gf_ops),
                    static_cast<unsigned long long>(d.cycles),
                    100 * duty, gated, ungated,
                    100.0 * (1.0 - gated / ungated));
    }

    std::printf("\npaper's claims, reproduced as constants with our "
                "duty cycles:\n");
    std::printf("  idle-unit data gating: 77%% dynamic savings while "
                "the unit idles (zero-feed inputs)\n");
    std::printf("  gf32bMult reduction-stage gating: 33%% power "
                "reduction during partial products\n");
    bench::note("the duty cycles show why gating matters: even the "
                "densest kernel leaves the GFAU idle most cycles "
                "because loads/stores and control interleave.");
    return 0;
}
