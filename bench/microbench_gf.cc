/**
 * @file
 * Google-benchmark microbenchmarks for the host-side reference
 * libraries: GF(2^m) arithmetic, wide-field operations, codec
 * throughput, AES, and simulator speed.  These characterize the
 * reproduction's own substrate (not the paper's silicon).
 *
 * On top of the usual console table, every result is mirrored into
 * BENCH_gf.json (path overridable via GFP_BENCH_JSON) in the same
 * uniform format the other benches use, so CI archives one artifact
 * shape for everything.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.h"

#include "coding/bch.h"
#include "coding/channel.h"
#include "coding/rs.h"
#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/ecc.h"
#include "gf/binary_field.h"
#include "gf/clmul.h"
#include "gf/field.h"
#include "kernels/aes_kernels.h"
#include "sim/machine.h"

namespace {

using namespace gfp;

void
BM_GFMulCarryless(benchmark::State &state)
{
    GFField f(state.range(0));
    Rng rng(1);
    GFElem a = rng.below(f.order()), b = rng.below(f.order());
    for (auto _ : state) {
        benchmark::DoNotOptimize(a = f.mul(a, b ? b : 1));
    }
}
BENCHMARK(BM_GFMulCarryless)->Arg(4)->Arg(8)->Arg(16);

void
BM_GFMulTable(benchmark::State &state)
{
    GFField f(state.range(0));
    Rng rng(1);
    GFElem a = rng.below(f.order()), b = rng.below(f.order());
    for (auto _ : state)
        benchmark::DoNotOptimize(a = f.mulTable(a ? a : 1, b ? b : 1));
}
BENCHMARK(BM_GFMulTable)->Arg(8)->Arg(16);

void
BM_Gf233Mul(benchmark::State &state)
{
    BinaryField f = BinaryField::nist("233");
    Gf2x a = f.randomElement(1), b = f.randomElement(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(a = f.mul(a, b));
}
BENCHMARK(BM_Gf233Mul);

void
BM_Gf233MulPortable(benchmark::State &state)
{
    // Same multiply with the hardware clmul instruction masked off —
    // the accelerated-vs-portable ratio for this host.
    BinaryField f = BinaryField::nist("233");
    Gf2x a = f.randomElement(1), b = f.randomElement(2);
    setClmulPortableOnly(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(a = f.mul(a, b));
    setClmulPortableOnly(false);
}
BENCHMARK(BM_Gf233MulPortable);

void
BM_Gf233MulSchoolbook32(benchmark::State &state)
{
    // The 32-bit-limb schoolbook product that models the paper's
    // gf32bMult datapath — the pre-clmul host baseline.
    BinaryField f = BinaryField::nist("233");
    Gf2x a = f.randomElement(1), b = f.randomElement(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(a = f.reduce(a.mulSchoolbook(b)));
}
BENCHMARK(BM_Gf233MulSchoolbook32);

void
BM_Gf233InverseIta(benchmark::State &state)
{
    BinaryField f = BinaryField::nist("233");
    Gf2x a = f.randomElement(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.invItohTsujii(a));
}
BENCHMARK(BM_Gf233InverseIta);

void
BM_RsDecode(benchmark::State &state)
{
    RSCode code(8, state.range(0));
    Rng rng(5);
    std::vector<GFElem> info(code.k());
    for (auto &s : info)
        s = rng.nextByte();
    ExactErrorInjector inj(6);
    auto rx = inj.corruptSymbols(code.encode(info), code.t(), 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(rx));
    state.SetBytesProcessed(state.iterations() * code.k());
}
BENCHMARK(BM_RsDecode)->Arg(2)->Arg(8);

void
BM_BchDecode(benchmark::State &state)
{
    BCHCode code(5, 5);
    Rng rng(5);
    std::vector<uint8_t> info(code.k());
    for (auto &b : info)
        b = rng.below(2);
    ExactErrorInjector inj(6);
    auto rx = inj.flipBits(code.encode(info), 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.decode(rx));
}
BENCHMARK(BM_BchDecode);

void
BM_AesEncryptBlock(benchmark::State &state)
{
    Aes aes(std::vector<uint8_t>(16, 0x42));
    AesBlock block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_EccScalarMult(benchmark::State &state)
{
    EllipticCurve curve = EllipticCurve::nist("K-233");
    Gf2x k = EllipticCurve::evaluationScalar(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(curve.scalarMult(k, curve.basePoint()));
}
BENCHMARK(BM_EccScalarMult);

void
BM_EccScalarMultWindow(benchmark::State &state)
{
    EllipticCurve curve = EllipticCurve::nist("K-233");
    Gf2x k = EllipticCurve::evaluationScalar(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            curve.scalarMultWindow(k, curve.basePoint()));
}
BENCHMARK(BM_EccScalarMultWindow);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // How fast the ISA simulator itself retires the GF-core AES block.
    Aes aes(std::vector<uint8_t>(16, 0x42));
    Machine m(aesBlockAsmGfcore(false), CoreKind::kGfProcessor);
    std::vector<uint8_t> rk;
    for (uint32_t w : aes.roundKeys())
        for (int b = 3; b >= 0; --b)
            rk.push_back(static_cast<uint8_t>(w >> (8 * b)));
    m.writeBytes("rkeys", rk);
    uint64_t instrs = 0;
    for (auto _ : state) {
        m.reset();
        instrs += m.runOk().instrs;
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}
BENCHMARK(BM_SimulatorThroughput);

/** Console output as usual, plus every per-iteration time mirrored
 *  into the shared BenchJsonReporter format. */
class JsonMirrorReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonMirrorReporter(bench::BenchJsonReporter &json)
        : json_(json)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration || r.error_occurred)
                continue;
            json_.add(r.benchmark_name() + ".real_time",
                      r.GetAdjustedRealTime(),
                      benchmark::GetTimeUnitString(r.time_unit));
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::BenchJsonReporter &json_;
};

} // namespace

using namespace gfp;

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    bench::BenchJsonReporter json("microbench_gf");
    json.add(std::string("host.clmul_") + clmulBackend().name,
             clmulBackend().accelerated ? 1 : 0, "flag");
    json.add(std::string("host.dispatch_") + Core::dispatchKind(), 1,
             "flag");
    JsonMirrorReporter reporter(json);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    const char *path = std::getenv("GFP_BENCH_JSON");
    json.writeTo(path ? path : "BENCH_gf.json");
    benchmark::Shutdown();
    return 0;
}
