/**
 * @file
 * gfp-serve — the GF-coding service daemon: a long-running front-end
 * over the batch engines speaking the wire protocol of docs/SERVICE.md
 * on a unix socket and/or loopback TCP.
 *
 * Usage:
 *   gfp-serve [options]
 *
 *   --unix PATH         listen on a unix-domain socket at PATH
 *   --tcp PORT          listen on 127.0.0.1:PORT (0 = ephemeral; the
 *                       bound port is printed).  At least one of
 *                       --unix/--tcp is required
 *   --threads N         worker threads per engine (default 1; there
 *                       are nine engines — size the sum to the box)
 *   --dispatch MODE     fused (default) | plain | translated — the
 *                       engine dispatch mode; translated JIT-compiles
 *                       each kernel once and shares it across workers
 *   --watermark N       admission watermark: reject with retry-after
 *                       once queued jobs reach N (default 4096)
 *   --max-batch N       largest per-engine batch per submit (default
 *                       512)
 *   --max-instrs N      per-job watchdog budget (default 500000000)
 *   --metrics FILE      write the combined stats JSON on exit
 *   --trace FILE        write a Chrome trace_event JSON of request
 *                       spans (pid 3) on exit
 *   --duration SECONDS  serve for a fixed time then drain (default:
 *                       until SIGINT/SIGTERM)
 *   -q, --quiet         suppress status chatter
 *
 * SIGINT/SIGTERM trigger a graceful drain: listeners close, admitted
 * requests finish and flush, then the process exits 0.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/trace_event.h"
#include "service/server.h"

using namespace gfp;
using namespace gfp::service;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--unix PATH] [--tcp PORT] [--threads N]\n"
                 "       [--dispatch fused|plain|translated]\n"
                 "       [--watermark N] [--max-batch N] [--max-instrs N]\n"
                 "       [--metrics FILE] [--trace FILE]\n"
                 "       [--duration SECONDS] [-q]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Server::Options opts;
    opts.engine.threads = 1;
    std::string metrics_path, trace_path;
    double duration_s = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            opts.unix_path = need("--unix");
        }
        else if (arg == "--tcp") {
            opts.tcp_port =
                static_cast<uint16_t>(std::atoi(need("--tcp")));
        }
        else if (arg == "--threads") {
            opts.engine.threads =
                static_cast<unsigned>(std::atoi(need("--threads")));
        }
        else if (arg == "--dispatch") {
            std::string mode = need("--dispatch");
            if (mode == "fused")
                opts.engine.dispatch = DispatchMode::kFused;
            else if (mode == "plain")
                opts.engine.dispatch = DispatchMode::kPlain;
            else if (mode == "translated")
                opts.engine.dispatch = DispatchMode::kTranslated;
            else
                return usage(argv[0]);
        }
        else if (arg == "--watermark") {
            opts.admission_watermark =
                static_cast<size_t>(std::atoll(need("--watermark")));
        }
        else if (arg == "--max-batch") {
            opts.max_batch =
                static_cast<size_t>(std::atoll(need("--max-batch")));
        }
        else if (arg == "--max-instrs") {
            opts.engine.max_instrs =
                static_cast<uint64_t>(std::atoll(need("--max-instrs")));
        }
        else if (arg == "--metrics") {
            metrics_path = need("--metrics");
        }
        else if (arg == "--trace") {
            trace_path = need("--trace");
        }
        else if (arg == "--duration") {
            duration_s = std::atof(need("--duration"));
        }
        else if (arg == "-q" || arg == "--quiet") {
            opts.quiet = true;
        }
        else {
            return usage(argv[0]);
        }
    }
    if (opts.unix_path.empty() && !opts.tcp_port.has_value())
        return usage(argv[0]);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    TraceLog trace;
    Server server(std::move(opts));
    if (!trace_path.empty())
        server.setTraceLog(&trace);
    server.start();
    if (server.tcpPort())
        std::printf("gfp-serve ready tcp_port=%u\n", server.tcpPort());
    else
        std::printf("gfp-serve ready\n");
    std::fflush(stdout);

    const auto start = std::chrono::steady_clock::now();
    while (!g_stop) {
        usleep(50 * 1000);
        if (duration_s > 0) {
            double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (elapsed >= duration_s)
                break;
        }
    }

    server.drain();
    bool consistent = server.countersConsistent();
    if (!metrics_path.empty()) {
        FILE *f = std::fopen(metrics_path.c_str(), "wb");
        if (f) {
            std::string doc = server.statsJson();
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fclose(f);
        }
    }
    if (!trace_path.empty())
        trace.writeTo(trace_path);
    return consistent ? 0 : 1;
}
