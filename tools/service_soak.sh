#!/usr/bin/env bash
# Service soak driver: start gfp-serve on a unix socket, run the
# gfp-loadgen scenarios of docs/PERFORMANCE.md "Serving" (closed-loop
# saturation per class, mixed verify, Gilbert-Elliott burst overload),
# then gate on the service invariants:
#
#   - gfp-serve exits 0 (its own accounting invariant held at drain),
#   - every loadgen run exits 0 (zero verification failures; the
#     --stats runs re-check the request/response accounting equations),
#   - the final metrics document reports zero protocol errors.
#
# Artifacts land in OUT_DIR: per-scenario loadgen JSON, the combined
# server metrics JSON (service counters + latency histograms + all nine
# engine registries), and a Chrome trace of the saturated run, plus a
# BENCH_service.json summary in the bench/results schema.
#
# Usage: tools/service_soak.sh [BUILD_DIR] [OUT_DIR] [DURATION_S]
set -eu

build="${1:-build}"
out="${2:-service-artifacts}"
dur="${3:-6}"

serve="$build/tools/gfp-serve"
loadgen="$build/tools/gfp-loadgen"
for bin in "$serve" "$loadgen"; do
    if [ ! -x "$bin" ]; then
        echo "service_soak: missing $bin (build the gfp-serve and" \
            "gfp-loadgen targets first)" >&2
        exit 2
    fi
done

mkdir -p "$out"
sock="$out/soak.sock"
rm -f "$sock"

# Wait until the server binds its socket.
await_sock() {
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        sleep 0.1
    done
    echo "service_soak: server never bound $sock" >&2
    exit 1
}

# Phase 1 — throughput gates, untraced: per-request trace recording
# costs real CPU on a saturated single-core box and would understate
# the serving headroom the gate measures.
"$serve" --unix "$sock" --threads 1 --dispatch translated \
    --metrics "$out/METRICS_service.json" -q &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
await_sock

# Gated closed-loop scenarios run best-of-3 (the BENCH_engine idiom):
# the box is shared with the load generator itself, so single runs
# carry several percent of scheduler noise.  Stop early once an
# attempt clears the gate; keep the best attempt's JSON either way.
# The hard >=GFP_SOAK_GATE check happens in the summary step below.
gate="${GFP_SOAK_GATE:-0.80}"

run_gated() {
    class="$1"; seed="$2"; json="$out/LOADGEN_$1.json"
    best=""
    for attempt in 1 2 3; do
        echo "== closed-loop saturation: $class (attempt $attempt) =="
        "$loadgen" --unix "$sock" --class "$class" --closed-loop 512 \
            --duration "$dur" --seed "$seed" --stats \
            --json "$json.try"
        rate=$(python3 -c 'import json,sys
print(json.load(open(sys.argv[1]))["throughput_ok_rps"])' "$json.try")
        if [ -z "$best" ] || \
           [ "$(python3 -c "print(1 if $rate > $best else 0)")" = 1 ]; then
            best="$rate"
            mv "$json.try" "$json"
        else
            rm -f "$json.try"
        fi
        ratio=$(python3 - "$class" "$best" <<'PY'
import json, sys
cls, rate = sys.argv[1], float(sys.argv[2])
key = {"rs_syndrome": "syndrome", "aes_ctr_block": "aes_ctr"}[cls]
try:
    ms = json.load(open("bench/results/BENCH_jit.json"))["metrics"]
    d = {m["name"]: m["value"] for m in ms}[
        f"{key}.after_translated_jobs_per_sec"]
    print(rate / d)
except (OSError, KeyError):
    print("")  # no committed baseline: nothing to gate against
PY
)
        [ -z "$ratio" ] && break
        if [ "$(python3 -c "print(1 if $ratio >= $gate else 0)")" = 1 ]; then
            break
        fi
    done
}

run_gated rs_syndrome 1
run_gated aes_ctr_block 2

echo "== mixed classes, every response verified bit-for-bit =="
"$loadgen" --unix "$sock" --class mix --closed-loop 128 \
    --duration "$dur" --seed 3 --verify --stats \
    --json "$out/LOADGEN_mix_verify.json"

echo "== Gilbert-Elliott bursty overload (expect busy rejections) =="
"$loadgen" --unix "$sock" --class rs_syndrome \
    --ge 1.0,0.2,2000,120000 --duration 4 --seed 4 --stats \
    --json "$out/LOADGEN_ge_burst.json"

# Graceful drain; exit 0 == the server's own accounting held.
kill -TERM "$serve_pid"
wait "$serve_pid"

# Phase 2 — a short saturated run with per-request Chrome tracing: the
# trace artifact shows request spans (pid 3) interleaved with engine
# worker spans and the queue-depth counters under real overload.
rm -f "$sock"
"$serve" --unix "$sock" --threads 1 --dispatch translated \
    --trace "$out/TRACE_service.json" -q &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
await_sock
echo "== traced saturated segment (mix, closed-loop) =="
"$loadgen" --unix "$sock" --class mix --closed-loop 256 --duration 2 \
    --seed 5 -q --json "$out/LOADGEN_traced_segment.json"
kill -TERM "$serve_pid"
wait "$serve_pid"
trap - EXIT

# Zero protocol errors across the whole soak.
proto=$(grep -o '"protocol_errors_total": [0-9.]*' \
    "$out/METRICS_service.json" | grep -o '[0-9.]*$' || echo 0)
if [ -n "$proto" ] && [ "${proto%%.*}" != "0" ]; then
    echo "service_soak: $proto protocol errors recorded" >&2
    exit 1
fi

# Summarise into the bench/results schema (throughput + latency per
# scenario, plus the served-over-direct ratio when a committed JIT
# baseline is present).
python3 - "$out" "$gate" <<'PY'
import json, os, sys
out, gate = sys.argv[1], float(sys.argv[2])
doc = {"bench": "service_soak", "schema": 1, "metrics": []}

def add(name, value, unit=""):
    doc["metrics"].append({"name": name, "value": value, "unit": unit})

baseline = {}
jit_path = os.path.join("bench", "results", "BENCH_jit.json")
if os.path.exists(jit_path):
    with open(jit_path) as f:
        for m in json.load(f)["metrics"]:
            baseline[m["name"]] = m["value"]

direct = {
    "rs_syndrome": baseline.get("syndrome.after_translated_jobs_per_sec"),
    "aes_ctr_block": baseline.get("aes_ctr.after_translated_jobs_per_sec"),
}

for scen in ("rs_syndrome", "aes_ctr_block", "mix_verify", "ge_burst"):
    path = os.path.join(out, f"LOADGEN_{scen}.json")
    with open(path) as f:
        r = json.load(f)
    add(f"{scen}.throughput_ok_rps", r["throughput_ok_rps"], "req/sec")
    add(f"{scen}.completed", r["completed"], "requests")
    add(f"{scen}.rejected_busy", r["rejected"], "requests")
    add(f"{scen}.verify_failures", r["verify_failures"], "requests")
    lat = r["latency_us"]
    for q in ("p50", "p99"):
        add(f"{scen}.latency_{q}_us", lat[q], "us")
    d = direct.get(r["class"])
    if d and r["mode"] == "closed-loop":
        add(f"{scen}.served_over_direct", r["throughput_ok_rps"] / d,
            "fraction")

with open(os.path.join(out, "BENCH_service.json"), "w") as f:
    json.dump(doc, f, indent=1)
print("wrote", os.path.join(out, "BENCH_service.json"))
for m in doc["metrics"]:
    print(f"  {m['name']}: {round(m['value'], 3)} {m['unit']}")

# Hard gate: best-of-3 served throughput must reach >=gate of the
# committed direct translated-dispatch rate for each gated class.
bad = [m for m in doc["metrics"]
       if m["name"].endswith(".served_over_direct") and m["value"] < gate]
for m in bad:
    print(f"service_soak: GATE FAILED {m['name']} ="
          f" {m['value']:.3f} < {gate}", file=sys.stderr)
sys.exit(1 if bad else 0)
PY

rm -f "$sock"
echo "service_soak: PASS (artifacts in $out)"
