/**
 * @file
 * gfp-lint — static analyzer and GFAU configuration verifier for GFP
 * guest programs.
 *
 * Usage:
 *   gfp-lint [options] [file.s ...]
 *
 *   file.s ...          assemble and lint each source file
 *   --kernels           lint every built-in kernel program
 *   --verify-gfau       algebraically verify the reduction matrix of
 *                       every irreducible polynomial, degrees 2..8
 *   --exhaustive        with --verify-gfau, additionally sweep every
 *                       (2m-1)-bit product per field
 *   --dump-fused        print the fused micro-op regions the fast
 *                       interpreter forms for each program (one line
 *                       per region, "0xADDR kind len=N"); fails if no
 *                       program fuses anything — the catalog kernels
 *                       are written around the fusion patterns, so an
 *                       all-empty dump means the fusion pass regressed
 *   --werror            exit nonzero on warnings too
 *   --mem-bytes N       memory size for address-range lints
 *   --max-findings N    cap findings per program
 *   -q, --quiet         only print findings and the final verdict
 *
 * Exit status: 0 clean, 1 findings at error severity (or any finding
 * with --werror) or a failed GFAU proof, 2 usage / file / assembly
 * errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/config_verifier.h"
#include "analysis/lint.h"
#include "isa/assembler.h"
#include "kernels/kernel_catalog.h"
#include "sim/machine.h"

using namespace gfp;

namespace {

struct Cli
{
    std::vector<std::string> files;
    bool kernels = false;
    bool verify_gfau = false;
    bool exhaustive = false;
    bool dump_fused = false;
    bool werror = false;
    bool quiet = false;
    LintOptions lint;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--kernels] [--verify-gfau [--exhaustive]] "
                 "[--dump-fused] [--werror] [--mem-bytes N] "
                 "[--max-findings N] [-q] [file.s ...]\n",
                 argv0);
    return 2;
}

/// Lint one named program; returns false when the report (under the
/// CLI's severity policy) should fail the run.
bool
lintOne(const Cli &cli, const std::string &name, const Program &prog,
        unsigned &errors, unsigned &warnings)
{
    LintReport report = lintProgram(prog, cli.lint);
    for (const Finding &f : report.findings)
        std::printf("%s: %s\n", name.c_str(), f.describe().c_str());
    errors += report.errorCount();
    warnings += report.warningCount();
    if (!cli.quiet) {
        std::printf("%s: %s\n", name.c_str(),
                    report.clean() ? "clean" : report.summary().c_str());
    }
    return !(report.hasErrors() || (cli.werror && !report.clean()));
}

/// Print the fused micro-op stream the fast interpreter forms for
/// @p prog; returns the number of fused regions.
size_t
dumpFused(const Cli &cli, const std::string &name, const Program &prog)
{
    Machine mach(prog, CoreKind::kGfProcessor, cli.lint.mem_bytes);
    std::vector<std::string> dump = mach.core().fusionDump();
    if (!cli.quiet || dump.empty()) {
        std::printf("%s: %zu fused region%s (%s dispatch)\n", name.c_str(),
                    dump.size(), dump.size() == 1 ? "" : "s",
                    Core::dispatchKind());
    }
    if (!cli.quiet)
        for (const std::string &line : dump)
            std::printf("  %s\n", line.c_str());
    return dump.size();
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto num = [&](size_t &out) {
            if (i + 1 >= argc)
                return false;
            out = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 0));
            return true;
        };
        size_t v = 0;
        if (!std::strcmp(a, "--kernels")) {
            cli.kernels = true;
        } else if (!std::strcmp(a, "--verify-gfau")) {
            cli.verify_gfau = true;
        } else if (!std::strcmp(a, "--exhaustive")) {
            cli.exhaustive = true;
        } else if (!std::strcmp(a, "--dump-fused")) {
            cli.dump_fused = true;
        } else if (!std::strcmp(a, "--werror")) {
            cli.werror = true;
        } else if (!std::strcmp(a, "-q") || !std::strcmp(a, "--quiet")) {
            cli.quiet = true;
        } else if (!std::strcmp(a, "--mem-bytes")) {
            if (!num(v))
                return usage(argv[0]);
            cli.lint.mem_bytes = v;
        } else if (!std::strcmp(a, "--max-findings")) {
            if (!num(v))
                return usage(argv[0]);
            cli.lint.max_findings = v;
        } else if (a[0] == '-') {
            return usage(argv[0]);
        } else {
            cli.files.push_back(a);
        }
    }
    if (cli.files.empty() && !cli.kernels && !cli.verify_gfau)
        return usage(argv[0]);

    bool ok = true;
    unsigned errors = 0, warnings = 0, programs = 0;
    size_t fused_regions = 0;

    for (const std::string &path : cli.files) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();

        Program prog;
        AsmDiagnostic diag;
        if (!Assembler::tryAssemble(ss.str(), prog, diag)) {
            std::fprintf(stderr, "%s:%d:%d: error: %s\n", path.c_str(),
                         diag.line, diag.column, diag.message.c_str());
            return 2;
        }
        ++programs;
        ok = lintOne(cli, path, prog, errors, warnings) && ok;
        if (cli.dump_fused)
            fused_regions += dumpFused(cli, path, prog);
    }

    if (cli.kernels) {
        for (const KernelSource &k : kernelCatalog()) {
            Program prog;
            AsmDiagnostic diag;
            if (!Assembler::tryAssemble(k.source, prog, diag)) {
                std::fprintf(stderr,
                             "kernel %s: internal assembly error: %s\n",
                             k.name.c_str(), diag.render().c_str());
                return 2;
            }
            ++programs;
            ok = lintOne(cli, "kernel:" + k.name, prog, errors, warnings) &&
                 ok;
            if (cli.dump_fused)
                fused_regions += dumpFused(cli, "kernel:" + k.name, prog);
        }
    }

    if (cli.dump_fused && programs > 0) {
        if (!cli.quiet || fused_regions == 0)
            std::printf("fused: %zu region%s across %u program%s\n",
                        fused_regions, fused_regions == 1 ? "" : "s",
                        programs, programs == 1 ? "" : "s");
        if (fused_regions == 0) {
            std::printf("fused: FAILED — no program formed any fused "
                        "micro-op; the fusion pass has regressed\n");
            ok = false;
        }
    }

    if (cli.verify_gfau) {
        VerifySummary vs = verifyAllFields(cli.exhaustive);
        for (const MatrixProof &p : vs.failures)
            std::printf("gfau: %s\n", p.describe().c_str());
        if (!cli.quiet || !vs.ok()) {
            std::printf("gfau: %u field configuration%s verified%s, "
                        "%zu failure%s\n",
                        vs.fields_checked, vs.fields_checked == 1 ? "" : "s",
                        cli.exhaustive ? " (exhaustive)" : "",
                        vs.failures.size(),
                        vs.failures.size() == 1 ? "" : "s");
        }
        ok = ok && vs.ok();
    }

    if (!cli.quiet) {
        std::printf("gfp-lint: %u program%s, %u error%s, %u warning%s\n",
                    programs, programs == 1 ? "" : "s", errors,
                    errors == 1 ? "" : "s", warnings,
                    warnings == 1 ? "" : "s");
    }
    return ok ? 0 : 1;
}
