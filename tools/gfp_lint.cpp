/**
 * @file
 * gfp-lint — static analyzer, certifier, and GFAU configuration
 * verifier for GFP guest programs.
 *
 * Usage:
 *   gfp-lint [options] [file.s ...]
 *
 *   file.s ...          assemble and lint each source file
 *   --kernels           lint every built-in kernel program
 *   --certify           emit trap-freedom / jit-safety / config
 *                       certificates (analysis/certify.h)
 *   --wcet              emit worst-case cycle + energy bounds
 *   --format=F          human (default), json, or sarif
 *   --output FILE       write the json/sarif document to FILE instead
 *                       of stdout
 *   --certify-baseline FILE
 *                       fail (exit 1) if any program listed in FILE
 *                       loses a certificate it held there
 *   --update-certify-baseline FILE
 *                       rewrite FILE from this run's certificates
 *   --watchdog N        instruction watchdog the cost certificate is
 *                       checked against
 *   --verify-gfau       algebraically verify the reduction matrix of
 *                       every irreducible polynomial, degrees 2..8
 *   --exhaustive        with --verify-gfau, additionally sweep every
 *                       (2m-1)-bit product per field
 *   --dump-fused        print the fused micro-op regions the fast
 *                       interpreter forms for each program (one line
 *                       per region, "0xADDR kind len=N"); fails if no
 *                       program fuses anything — the catalog kernels
 *                       are written around the fusion patterns, so an
 *                       all-empty dump means the fusion pass regressed
 *   --werror            exit nonzero on warnings too
 *   --mem-bytes N       memory size for address-range lints
 *   --max-findings N    cap findings per program
 *   -q, --quiet         only print findings and the final verdict
 *
 * Exit status: 0 clean, 1 findings at error severity (or any finding
 * with --werror), a failed GFAU proof, or a lost baseline certificate;
 * 2 usage / file / assembly errors.  --certify caveats by themselves
 * do not fail the run — the regression gate is the baseline file.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/certify.h"
#include "analysis/config_verifier.h"
#include "analysis/lint.h"
#include "analysis/report_format.h"
#include "isa/assembler.h"
#include "kernels/kernel_catalog.h"
#include "sim/machine.h"

using namespace gfp;

namespace {

struct Cli
{
    std::vector<std::string> files;
    bool kernels = false;
    bool verify_gfau = false;
    bool exhaustive = false;
    bool dump_fused = false;
    bool certify = false;
    bool wcet = false;
    bool werror = false;
    bool quiet = false;
    ReportFormat format = ReportFormat::kHuman;
    std::string output;
    std::string baseline;
    std::string update_baseline;
    uint64_t watchdog = 500'000'000;
    LintOptions lint;

    bool wantCert() const { return certify || wcet; }
    bool human() const { return format == ReportFormat::kHuman; }
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--kernels] [--certify] [--wcet] "
                 "[--format=human|json|sarif] [--output FILE] "
                 "[--certify-baseline FILE] "
                 "[--update-certify-baseline FILE] [--watchdog N] "
                 "[--verify-gfau [--exhaustive]] [--dump-fused] "
                 "[--werror] [--mem-bytes N] [--max-findings N] [-q] "
                 "[file.s ...]\n",
                 argv0);
    return 2;
}

/// Lint (and optionally certify) one named program, appending to
/// @p reports; returns false when the report (under the CLI's severity
/// policy) should fail the run.
bool
processOne(const Cli &cli, const std::string &name, const std::string &file,
           const Program &prog, std::vector<ProgramReport> &reports,
           unsigned &errors, unsigned &warnings)
{
    ProgramReport pr;
    pr.name = name;
    pr.file = file;
    pr.prog = &prog;
    pr.lint = lintProgram(prog, cli.lint);
    if (cli.wantCert()) {
        CertifyOptions copts;
        copts.mem_bytes = cli.lint.mem_bytes;
        copts.watchdog_max_instrs = cli.watchdog;
        pr.cert = certifyProgram(prog, copts);
        pr.certified = true;
    }

    if (cli.human()) {
        for (const Finding &f : pr.lint.findings)
            std::printf("%s: %s\n", name.c_str(), f.describe().c_str());
        if (!cli.quiet) {
            std::printf("%s: %s\n", name.c_str(),
                        pr.lint.clean() ? "clean"
                                        : pr.lint.summary().c_str());
        }
        if (pr.certified) {
            std::printf("%s: certificate: %s\n", name.c_str(),
                        pr.cert.summary().c_str());
            if (!cli.quiet)
                for (const std::string &cv : pr.cert.caveats)
                    std::printf("%s:   caveat: %s\n", name.c_str(),
                                cv.c_str());
        }
    }

    errors += pr.lint.errorCount();
    warnings += pr.lint.warningCount();
    const bool pass =
        !(pr.lint.hasErrors() || (cli.werror && !pr.lint.clean()));
    reports.push_back(std::move(pr));
    return pass;
}

/// Print the fused micro-op stream the fast interpreter forms for
/// @p prog; returns the number of fused regions.
size_t
dumpFused(const Cli &cli, const std::string &name, const Program &prog)
{
    Machine mach(prog, CoreKind::kGfProcessor, cli.lint.mem_bytes);
    std::vector<std::string> dump = mach.core().fusionDump();
    if (!cli.quiet || dump.empty()) {
        std::printf("%s: %zu fused region%s (%s dispatch)\n", name.c_str(),
                    dump.size(), dump.size() == 1 ? "" : "s",
                    Core::dispatchKind());
    }
    if (!cli.quiet)
        for (const std::string &line : dump)
            std::printf("  %s\n", line.c_str());
    return dump.size();
}

/// One program's certificate flags, as tracked by the baseline file.
struct BaselineEntry
{
    bool trap_free = false;
    bool jit_safe = false;
    bool wcet_bounded = false;
};

std::map<std::string, BaselineEntry>
readBaseline(const std::string &path, bool &ok)
{
    std::map<std::string, BaselineEntry> base;
    std::ifstream in(path);
    if (!in) {
        ok = false;
        return base;
    }
    ok = true;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string name;
        BaselineEntry e;
        int tf = 0, js = 0, wb = 0;
        if (ls >> name >> tf >> js >> wb) {
            e.trap_free = tf != 0;
            e.jit_safe = js != 0;
            e.wcet_bounded = wb != 0;
            base[name] = e;
        }
    }
    return base;
}

bool
writeBaseline(const std::string &path,
              const std::vector<ProgramReport> &reports)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "# gfp-lint certificate baseline\n"
        << "# name  trap_free  jit_safe  wcet_bounded\n";
    for (const ProgramReport &r : reports) {
        if (!r.certified)
            continue;
        out << r.name << " " << (r.cert.trap_free ? 1 : 0) << " "
            << (r.cert.jit_safe ? 1 : 0) << " "
            << (r.cert.cost.bounded ? 1 : 0) << "\n";
    }
    return static_cast<bool>(out);
}

/// Compare this run against the baseline; any lost certificate is a
/// reported failure.  Programs not in the baseline are ignored.
bool
checkBaseline(const Cli &cli, const std::vector<ProgramReport> &reports)
{
    bool ok = true;
    bool read_ok = false;
    const auto base = readBaseline(cli.baseline, read_ok);
    if (!read_ok) {
        std::fprintf(stderr, "%s: cannot read certificate baseline\n",
                     cli.baseline.c_str());
        return false;
    }
    for (const ProgramReport &r : reports) {
        if (!r.certified)
            continue;
        auto it = base.find(r.name);
        if (it == base.end())
            continue;
        auto lost = [&](const char *what, bool had, bool have) {
            if (had && !have) {
                std::printf("%s: REGRESSION: lost %s certificate held in "
                            "baseline\n",
                            r.name.c_str(), what);
                ok = false;
            }
        };
        lost("trap-freedom", it->second.trap_free, r.cert.trap_free);
        lost("jit-safety", it->second.jit_safe, r.cert.jit_safe);
        lost("wcet", it->second.wcet_bounded, r.cert.cost.bounded);
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto num = [&](size_t &out) {
            if (i + 1 >= argc)
                return false;
            out = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 0));
            return true;
        };
        auto str = [&](std::string &out) {
            if (i + 1 >= argc)
                return false;
            out = argv[++i];
            return true;
        };
        size_t v = 0;
        if (!std::strcmp(a, "--kernels")) {
            cli.kernels = true;
        } else if (!std::strcmp(a, "--certify")) {
            cli.certify = true;
        } else if (!std::strcmp(a, "--wcet")) {
            cli.wcet = true;
        } else if (!std::strncmp(a, "--format=", 9)) {
            if (!parseReportFormat(a + 9, cli.format))
                return usage(argv[0]);
        } else if (!std::strcmp(a, "--format")) {
            std::string f;
            if (!str(f) || !parseReportFormat(f, cli.format))
                return usage(argv[0]);
        } else if (!std::strcmp(a, "--output")) {
            if (!str(cli.output))
                return usage(argv[0]);
        } else if (!std::strcmp(a, "--certify-baseline")) {
            if (!str(cli.baseline))
                return usage(argv[0]);
        } else if (!std::strcmp(a, "--update-certify-baseline")) {
            if (!str(cli.update_baseline))
                return usage(argv[0]);
        } else if (!std::strcmp(a, "--watchdog")) {
            if (!num(v))
                return usage(argv[0]);
            cli.watchdog = v;
        } else if (!std::strcmp(a, "--verify-gfau")) {
            cli.verify_gfau = true;
        } else if (!std::strcmp(a, "--exhaustive")) {
            cli.exhaustive = true;
        } else if (!std::strcmp(a, "--dump-fused")) {
            cli.dump_fused = true;
        } else if (!std::strcmp(a, "--werror")) {
            cli.werror = true;
        } else if (!std::strcmp(a, "-q") || !std::strcmp(a, "--quiet")) {
            cli.quiet = true;
        } else if (!std::strcmp(a, "--mem-bytes")) {
            if (!num(v))
                return usage(argv[0]);
            cli.lint.mem_bytes = v;
        } else if (!std::strcmp(a, "--max-findings")) {
            if (!num(v))
                return usage(argv[0]);
            cli.lint.max_findings = v;
        } else if (a[0] == '-') {
            return usage(argv[0]);
        } else {
            cli.files.push_back(a);
        }
    }
    if (cli.files.empty() && !cli.kernels && !cli.verify_gfau)
        return usage(argv[0]);
    if ((!cli.baseline.empty() || !cli.update_baseline.empty()) &&
        !cli.wantCert()) {
        std::fprintf(stderr, "certificate baselines require --certify or "
                             "--wcet\n");
        return usage(argv[0]);
    }

    bool ok = true;
    unsigned errors = 0, warnings = 0, programs = 0;
    size_t fused_regions = 0;
    // Programs live here so ProgramReport::prog stays valid (deque:
    // stable addresses under growth).
    std::deque<Program> storage;
    std::vector<ProgramReport> reports;

    for (const std::string &path : cli.files) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();

        storage.emplace_back();
        AsmDiagnostic diag;
        if (!Assembler::tryAssembleFile(ss.str(), path, storage.back(),
                                        diag)) {
            std::fprintf(stderr, "%s:%d:%d: error: %s\n", diag.file.c_str(),
                         diag.line, diag.column, diag.message.c_str());
            return 2;
        }
        ++programs;
        ok = processOne(cli, path, path, storage.back(), reports, errors,
                        warnings) &&
             ok;
        if (cli.dump_fused)
            fused_regions += dumpFused(cli, path, storage.back());
    }

    if (cli.kernels) {
        for (const KernelSource &k : kernelCatalog()) {
            storage.emplace_back();
            AsmDiagnostic diag;
            if (!Assembler::tryAssemble(k.source, storage.back(), diag)) {
                std::fprintf(stderr,
                             "kernel %s: internal assembly error: %s\n",
                             k.name.c_str(), diag.render().c_str());
                return 2;
            }
            ++programs;
            ok = processOne(cli, "kernel:" + k.name, "", storage.back(),
                            reports, errors, warnings) &&
                 ok;
            if (cli.dump_fused)
                fused_regions += dumpFused(cli, "kernel:" + k.name,
                                           storage.back());
        }
    }

    if (cli.dump_fused && programs > 0) {
        if (!cli.quiet || fused_regions == 0)
            std::printf("fused: %zu region%s across %u program%s\n",
                        fused_regions, fused_regions == 1 ? "" : "s",
                        programs, programs == 1 ? "" : "s");
        if (fused_regions == 0) {
            std::printf("fused: FAILED — no program formed any fused "
                        "micro-op; the fusion pass has regressed\n");
            ok = false;
        }
    }

    if (cli.verify_gfau) {
        VerifySummary vs = verifyAllFields(cli.exhaustive);
        for (const MatrixProof &p : vs.failures)
            std::printf("gfau: %s\n", p.describe().c_str());
        if (!cli.quiet || !vs.ok()) {
            std::printf("gfau: %u field configuration%s verified%s, "
                        "%zu failure%s\n",
                        vs.fields_checked, vs.fields_checked == 1 ? "" : "s",
                        cli.exhaustive ? " (exhaustive)" : "",
                        vs.failures.size(),
                        vs.failures.size() == 1 ? "" : "s");
        }
        ok = ok && vs.ok();
    }

    if (!cli.baseline.empty())
        ok = checkBaseline(cli, reports) && ok;
    if (!cli.update_baseline.empty() &&
        !writeBaseline(cli.update_baseline, reports)) {
        std::fprintf(stderr, "%s: cannot write baseline\n",
                     cli.update_baseline.c_str());
        return 2;
    }

    if (!cli.human()) {
        const std::string doc = cli.format == ReportFormat::kJson
                                    ? renderJson(reports)
                                    : renderSarif(reports);
        if (cli.output.empty()) {
            std::printf("%s\n", doc.c_str());
        } else {
            std::ofstream out(cli.output);
            out << doc << "\n";
            if (!out) {
                std::fprintf(stderr, "%s: cannot write report\n",
                             cli.output.c_str());
                return 2;
            }
        }
    }

    if (!cli.quiet && cli.human()) {
        std::printf("gfp-lint: %u program%s, %u error%s, %u warning%s\n",
                    programs, programs == 1 ? "" : "s", errors,
                    errors == 1 ? "" : "s", warnings,
                    warnings == 1 ? "" : "s");
    }
    return ok ? 0 : 1;
}
