#!/usr/bin/env bash
# Fenced-command example checker.
#
# The ops-facing docs (docs/SERVICE.md, docs/PROFILING.md, README.md,
# docs/PERFORMANCE.md, docs/TESTING.md) show copy-pasteable command
# lines for the repo's own tools inside ``` fences.  Those examples rot
# silently: a renamed binary or dropped flag keeps reading fine while
# failing for anyone who pastes it.  This check greps every fenced
# command line that invokes a gfp tool and fails unless
#
#   1. the binary has a source file under tools/ (gfp-serve ->
#      tools/gfp_serve.cpp), and
#   2. every --flag on the line occurs verbatim in that source file
#      (the tools declare each flag as a string literal in their arg
#      parsers and usage text, so a plain grep is authoritative).
#
# Pure bash + grep — no network, no extra dependencies.
#
# Usage: tools/check_doc_commands.sh [repo-root]
set -u

root="${1:-$(git rev-parse --show-toplevel 2>/dev/null || echo .)}"
cd "$root" || exit 2

docs=()
for d in docs/SERVICE.md docs/PROFILING.md docs/PERFORMANCE.md \
    docs/TESTING.md README.md; do
    [ -f "$d" ] && docs+=("$d")
done

errors=0
checked=0

# Map a documented binary name to its source file.
tool_source() {
    case "$1" in
        gfp-serve) echo "tools/gfp_serve.cpp" ;;
        gfp-loadgen) echo "tools/gfp_loadgen.cpp" ;;
        gfp-prof) echo "tools/gfp_prof.cpp" ;;
        gfp-lint) echo "tools/gfp_lint.cpp" ;;
        *) echo "" ;;
    esac
}

for doc in "${docs[@]}"; do
    # Collect lines inside ``` fences that invoke a gfp-* tool
    # (directly, via a build path, or after a shell prompt/continuation).
    while IFS= read -r line; do
        # Normalise: strip leading prompt markers and path prefixes.
        cmd=$(printf '%s' "$line" \
            | sed -e 's/^[[:space:]]*\$[[:space:]]*//' \
                  -e 's|[^[:space:]]*build/tools/||g')
        # Only lines that *invoke* a tool count: the gfp-* token must be
        # the command word, not e.g. a --target operand of cmake.
        tool=$(printf '%s' "$cmd" | awk '{print $1}' | sed 's|^\./||')
        case "$tool" in
            *:) continue ;;   # "gfp-loadgen: ..." is log output, not a command
            gfp-*) ;;
            *) continue ;;
        esac
        checked=$((checked + 1))
        src=$(tool_source "$tool")
        if [ -z "$src" ] || [ ! -f "$src" ]; then
            echo "$doc: fenced example names unknown tool '$tool':"
            echo "    $line"
            errors=$((errors + 1))
            continue
        fi
        # Every long flag in the example must exist in the tool source.
        for flag in $(printf '%s' "$cmd" | grep -oE '[-][-][a-z][a-z-]+'); do
            if ! grep -qF -- "\"$flag\"" "$src"; then
                echo "$doc: '$tool' example uses flag '$flag' not" \
                    "declared in $src:"
                echo "    $line"
                errors=$((errors + 1))
            fi
        done
    done < <(awk '/^```/{fence=!fence; next} fence' "$doc" \
        | grep -E 'gfp-[a-z]+')
done

echo "check_doc_commands: ${#docs[@]} docs, $checked command examples," \
    "$errors stale"
[ "$errors" -eq 0 ]
