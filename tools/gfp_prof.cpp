/**
 * @file
 * gfp-prof — per-PC cycle/energy profiler for GFP guest programs.
 *
 * Usage:
 *   gfp-prof [options] <kernel-name | file.s>
 *
 *   <kernel-name>       a catalog kernel (see --list); names containing
 *                       "baseline" run on the baseline core
 *   file.s              assemble and profile an assembly source file
 *   --list              print every catalog kernel name and exit
 *   --baseline          run a file.s on the baseline core
 *   --dispatch MODE     fused (default) | plain | translated |
 *                       nopredecode — profiles are identical across
 *                       modes (that invariant is tested); this exists
 *                       to prove it and to time the paths.  translated
 *                       JIT-compiles the kernel (src/jit) and falls
 *                       back to the interpreter for anything the
 *                       certificate policy declines
 *   --top N             hotspot lines in the flat profile (default 20)
 *   --scaled-voltage    energy at the paper's 0.7 V SPICE point
 *                       instead of the nominal 0.9 V
 *   --trace FILE        write a Chrome trace_event JSON of kernel
 *                       phases (forces the stepping path for the
 *                       traced run; the profile itself is unaffected)
 *   --metrics FILE      write a metrics JSON snapshot of the run
 *   --max-instrs N      watchdog budget (default 500000000)
 *   -q, --quiet         suppress the annotated disassembly
 *
 * Output: a flat per-PC profile (cycles, instructions, energy, source
 * location, disassembly), a per-function call-graph rollup derived
 * from the static CFG, and a per-class summary that ties out against
 * the core's CycleStats — the tool exits nonzero if the per-PC cycle
 * total disagrees with the machine's cycle count.
 *
 * Exit status: 0 profiled cleanly (any guest trap is reported but the
 * partial profile still prints), 1 internal attribution mismatch,
 * 2 usage / file / assembly errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "common/strutil.h"
#include "common/trace_event.h"
#include "engine/metrics.h"
#include "hwmodel/energy_model.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "jit/core_translation.h"
#include "jit/translator.h"
#include "kernels/kernel_catalog.h"
#include "sim/machine.h"
#include "sim/profiler.h"
#include "sim/tracer.h"

using namespace gfp;

namespace {

struct Cli
{
    std::string target;
    bool list = false;
    bool baseline = false;
    bool quiet = false;
    std::string dispatch = "fused";
    unsigned top = 20;
    bool scaled_voltage = false;
    std::string trace_path;
    std::string metrics_path;
    uint64_t max_instrs = 500'000'000;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--list] [--baseline] [--dispatch "
                 "fused|plain|translated|nopredecode] [--top N] "
                 "[--scaled-voltage] "
                 "[--trace FILE] [--metrics FILE] [--max-instrs N] [-q] "
                 "<kernel-name | file.s>\n",
                 argv0);
    return 2;
}

/** Resolve the target to (name, program source, core kind). */
bool
resolveTarget(const Cli &cli, std::string &name, std::string &source,
              CoreKind &kind)
{
    for (const KernelSource &k : kernelCatalog()) {
        if (k.name == cli.target) {
            name = k.name;
            source = k.source;
            kind = k.name.find("baseline") != std::string::npos
                       ? CoreKind::kBaseline
                       : CoreKind::kGfProcessor;
            return true;
        }
    }
    std::ifstream f(cli.target);
    if (!f) {
        std::fprintf(stderr,
                     "gfp-prof: '%s' is neither a catalog kernel nor a "
                     "readable file (try --list)\n",
                     cli.target.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    name = cli.target;
    source = ss.str();
    kind = cli.baseline ? CoreKind::kBaseline : CoreKind::kGfProcessor;
    return true;
}

/** Nearest preceding code label for @p pc, as "label+0xoff" or "0xpc". */
std::string
locate(const Program &prog, uint32_t pc)
{
    std::string best;
    uint32_t best_addr = 0;
    const uint32_t code_end = static_cast<uint32_t>(prog.code.size()) * 4;
    for (const auto &[label, addr] : prog.symbols) {
        if (addr < code_end && addr <= pc &&
            (best.empty() || addr > best_addr)) {
            best = label;
            best_addr = addr;
        }
    }
    if (best.empty())
        return strprintf("0x%04x", pc);
    if (pc == best_addr)
        return best;
    return strprintf("%s+0x%x", best.c_str(), pc - best_addr);
}

struct FunctionCost
{
    uint32_t entry_word = 0;
    std::string name;
    uint64_t self_instrs = 0;
    uint64_t self_cycles = 0;
    uint64_t total_cycles = 0; ///< self + callees (call-graph rollup)
};

/**
 * Per-function rollup: partition code words by the function that owns
 * them (entry 0 plus every bl target; each word belongs to the nearest
 * preceding entry), sum the per-PC profile over each partition, then
 * propagate callee totals up the call graph.
 */
std::vector<FunctionCost>
rollupFunctions(const ControlFlowGraph &cfg, const PcProfile &prof)
{
    const Program &prog = cfg.program();
    std::vector<uint32_t> entries = cfg.functionEntries();
    if (std::find(entries.begin(), entries.end(), 0u) == entries.end())
        entries.insert(entries.begin(), 0u);
    std::sort(entries.begin(), entries.end());

    // Owner of word w = the greatest entry <= w.
    auto ownerOf = [&entries](uint32_t w) -> uint32_t {
        uint32_t owner = entries.front();
        for (uint32_t e : entries) {
            if (e > w)
                break;
            owner = e;
        }
        return owner;
    };

    std::map<uint32_t, FunctionCost> funcs;
    for (uint32_t e : entries) {
        FunctionCost fc;
        fc.entry_word = e;
        fc.name = locate(prog, 4 * e);
        funcs[e] = fc;
    }
    for (const auto &[pc, count] : prof.nonZero()) {
        if ((pc & 3u) || pc / 4 >= cfg.size())
            continue; // stray pc outside the code region
        FunctionCost &fc = funcs[ownerOf(pc / 4)];
        fc.self_instrs += count.instrs;
        fc.self_cycles += count.cycles;
    }

    // Call edges: caller entry -> set of callee entries.
    std::map<uint32_t, std::set<uint32_t>> calls;
    for (uint32_t site : cfg.callSites()) {
        const CfgNode &n = cfg.node(site);
        if (n.has_target && n.target_in_code)
            calls[ownerOf(site)].insert(ownerOf(n.target));
    }

    // total = self + callee totals, iterated to a fixpoint so recursion
    // (direct or mutual) converges to "everything reachable from me"
    // instead of diverging; each function's callee set is folded in as
    // reachability, not multiplicity.
    std::map<uint32_t, std::set<uint32_t>> reach;
    for (uint32_t e : entries)
        reach[e] = {e};
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t e : entries) {
            for (uint32_t callee : calls[e]) {
                for (uint32_t r : reach[callee]) {
                    if (reach[e].insert(r).second)
                        changed = true;
                }
            }
        }
    }
    std::vector<FunctionCost> out;
    for (uint32_t e : entries) {
        FunctionCost fc = funcs[e];
        for (uint32_t r : reach[e])
            fc.total_cycles += funcs[r].self_cycles;
        out.push_back(std::move(fc));
    }
    std::sort(out.begin(), out.end(),
              [](const FunctionCost &a, const FunctionCost &b) {
                  return a.total_cycles > b.total_cycles;
              });
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (!std::strcmp(a, "--list")) {
            cli.list = true;
        } else if (!std::strcmp(a, "--baseline")) {
            cli.baseline = true;
        } else if (!std::strcmp(a, "--dispatch")) {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            cli.dispatch = v;
            if (cli.dispatch != "fused" && cli.dispatch != "plain" &&
                cli.dispatch != "translated" &&
                cli.dispatch != "nopredecode")
                return usage(argv[0]);
        } else if (!std::strcmp(a, "--top")) {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            cli.top = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        } else if (!std::strcmp(a, "--scaled-voltage")) {
            cli.scaled_voltage = true;
        } else if (!std::strcmp(a, "--trace")) {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            cli.trace_path = v;
        } else if (!std::strcmp(a, "--metrics")) {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            cli.metrics_path = v;
        } else if (!std::strcmp(a, "--max-instrs")) {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            cli.max_instrs = std::strtoull(v, nullptr, 0);
        } else if (!std::strcmp(a, "-q") || !std::strcmp(a, "--quiet")) {
            cli.quiet = true;
        } else if (a[0] == '-') {
            return usage(argv[0]);
        } else if (cli.target.empty()) {
            cli.target = a;
        } else {
            return usage(argv[0]);
        }
    }

    if (cli.list) {
        for (const KernelSource &k : kernelCatalog())
            std::printf("%s\n", k.name.c_str());
        return 0;
    }
    if (cli.target.empty())
        return usage(argv[0]);

    std::string name, source;
    CoreKind kind = CoreKind::kGfProcessor;
    if (!resolveTarget(cli, name, source, kind))
        return 2;

    Program program;
    try {
        program = Assembler::assemble(source);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gfp-prof: assembly failed: %s\n", e.what());
        return 2;
    }

    Machine mach(program, kind);
    Core &core = mach.core();
    if (cli.dispatch == "plain") {
        core.setDispatchMode(DispatchMode::kPlain);
    } else if (cli.dispatch == "translated") {
        jit::TranslateOptions topts;
        topts.mem_bytes = mach.memory().size();
        topts.watchdog_max_instrs = cli.max_instrs;
        auto compiled = jit::translate(program, kind, topts);
        if (!cli.quiet && !compiled->policyNote().empty())
            std::fprintf(stderr, "gfp-prof: %s\n",
                         compiled->policyNote().c_str());
        core.setDispatchMode(DispatchMode::kTranslated);
        core.setTranslation(jit::makeCoreTranslation(std::move(compiled)));
    } else if (cli.dispatch == "nopredecode") {
        core.disablePredecode();
    }

    PcProfile prof;
    prof.configure(static_cast<uint32_t>(4 * program.code.size()));
    core.setProfile(&prof);

    TraceLog trace;
    GuestTracer tracer(trace, core, mach.program());
    if (!cli.trace_path.empty())
        tracer.attach();

    RunResult run = mach.runToHalt(cli.max_instrs);
    core.setProfile(nullptr);
    if (!cli.trace_path.empty())
        tracer.finish(&run.trap);

    const EnergyModel energy = cli.scaled_voltage
                                   ? EnergyModel::scaled07v()
                                   : EnergyModel::nominal();
    const CycleStats &st = run.stats;

    std::printf("== gfp-prof: %s (%s core, %s dispatch) ==\n", name.c_str(),
                kind == CoreKind::kBaseline ? "baseline" : "GF",
                cli.dispatch.c_str());
    if (run.trap)
        std::printf("run stopped by trap: %s\n",
                    run.trap.describe().c_str());
    std::printf("retired %llu instructions in %llu cycles "
                "(%.2f us at %g MHz), %.1f pJ (%.0f%% GFAU) at %.1f V\n",
                static_cast<unsigned long long>(st.instrs),
                static_cast<unsigned long long>(st.cycles),
                static_cast<double>(st.cycles) / energy.clockMhz(),
                energy.clockMhz(), energy.runEnergyPj(st),
                st.cycles ? 100.0 * energy.gfauEnergyPj(st) /
                                energy.runEnergyPj(st)
                          : 0.0,
                energy.voltage());

    // -- per-class summary (must tie out against CycleStats) --
    std::printf("\n%-8s %12s %12s %8s %12s\n", "class", "instrs", "cycles",
                "cyc%", "energy pJ");
    for (unsigned c = 0; c < kNumInstrClasses; ++c) {
        const InstrClass cls = static_cast<InstrClass>(c);
        if (!prof.classOps(cls))
            continue;
        std::printf("%-8s %12llu %12llu %7.2f%% %12.1f\n",
                    instrClassName(cls),
                    static_cast<unsigned long long>(prof.classOps(cls)),
                    static_cast<unsigned long long>(prof.classCycles(cls)),
                    100.0 * static_cast<double>(prof.classCycles(cls)) /
                        static_cast<double>(prof.cycles() ? prof.cycles()
                                                          : 1),
                    energy.energyPj(cls, prof.classCycles(cls)));
    }

    // -- flat per-PC profile, hottest first --
    auto flat = prof.nonZero();
    std::sort(flat.begin(), flat.end(),
              [](const auto &a, const auto &b) {
                  return a.second.cycles > b.second.cycles;
              });
    std::printf("\nflat profile (top %u of %zu PCs):\n", cli.top,
                flat.size());
    std::printf("%-10s %-24s %12s %12s %7s  %s\n", "pc", "location",
                "instrs", "cycles", "cyc%", "disassembly");
    for (size_t i = 0; i < flat.size() && i < cli.top; ++i) {
        const auto &[pc, count] = flat[i];
        std::string dis = "<outside code>";
        if ((pc & 3u) == 0 && pc / 4 < program.code.size())
            dis = disassembleWord(program.code[pc / 4],
                                  static_cast<int64_t>(pc));
        std::printf("0x%08x %-24s %12llu %12llu %6.2f%%  %s\n", pc,
                    locate(program, pc).c_str(),
                    static_cast<unsigned long long>(count.instrs),
                    static_cast<unsigned long long>(count.cycles),
                    100.0 * static_cast<double>(count.cycles) /
                        static_cast<double>(prof.cycles() ? prof.cycles()
                                                          : 1),
                    dis.c_str());
    }

    // -- call-graph rollup --
    ControlFlowGraph cfg(program);
    auto funcs = rollupFunctions(cfg, prof);
    std::printf("\ncall-graph rollup (%zu functions):\n", funcs.size());
    std::printf("%-24s %12s %12s %12s %7s\n", "function", "self instrs",
                "self cycles", "total cyc", "total%");
    for (const FunctionCost &fc : funcs) {
        if (!fc.self_cycles && !fc.total_cycles)
            continue;
        std::printf("%-24s %12llu %12llu %12llu %6.2f%%\n",
                    fc.name.c_str(),
                    static_cast<unsigned long long>(fc.self_instrs),
                    static_cast<unsigned long long>(fc.self_cycles),
                    static_cast<unsigned long long>(fc.total_cycles),
                    100.0 * static_cast<double>(fc.total_cycles) /
                        static_cast<double>(prof.cycles() ? prof.cycles()
                                                          : 1));
    }

    // -- annotated hotspot disassembly: the hottest function, in full --
    if (!cli.quiet && !funcs.empty()) {
        const FunctionCost *hot = nullptr;
        for (const FunctionCost &fc : funcs)
            if (fc.self_cycles && (!hot || fc.self_cycles > hot->self_cycles))
                hot = &fc;
        if (hot) {
            std::printf("\nhotspot: %s\n", hot->name.c_str());
            std::vector<uint32_t> words =
                cfg.functionNodes(hot->entry_word);
            std::sort(words.begin(), words.end());
            for (uint32_t w : words) {
                if (w >= program.code.size())
                    continue;
                const uint32_t pc = 4 * w;
                const auto count = prof.at(pc);
                std::printf("  0x%08x %10llu cyc  %s\n", pc,
                            static_cast<unsigned long long>(count.cycles),
                            disassembleWord(program.code[w],
                                            static_cast<int64_t>(pc))
                                .c_str());
            }
        }
    }

    // -- artifacts --
    if (!cli.trace_path.empty()) {
        std::string err;
        if (!trace.writeTo(cli.trace_path)) {
            std::fprintf(stderr, "gfp-prof: cannot write trace to %s\n",
                         cli.trace_path.c_str());
            return 2;
        }
        if (!validateTraceEventJson(trace.toJson(), &err)) {
            std::fprintf(stderr,
                         "gfp-prof: emitted trace failed validation: %s\n",
                         err.c_str());
            return 1;
        }
        std::printf("\ntrace: %zu events -> %s (load in ui.perfetto.dev)\n",
                    trace.size(), cli.trace_path.c_str());
    }
    if (!cli.metrics_path.empty()) {
        Metrics metrics;
        metrics.add("instrs_total", static_cast<double>(st.instrs));
        metrics.add("cycles_total", static_cast<double>(st.cycles));
        metrics.add("energy_pj_total", energy.runEnergyPj(st));
        metrics.add("energy_pj_gfau", energy.gfauEnergyPj(st));
        metrics.set("guest_us_at_clock",
                    static_cast<double>(st.cycles) / energy.clockMhz());
        metrics.set("pc_count", static_cast<double>(flat.size()));
        for (unsigned c = 0; c < kNumInstrClasses; ++c) {
            const InstrClass cls = static_cast<InstrClass>(c);
            metrics.add(strprintf("class_%s_cycles", instrClassName(cls)),
                        static_cast<double>(prof.classCycles(cls)));
        }
        if (run.trap)
            metrics.add(strprintf("trap_%s_total",
                                  trapKindName(run.trap.kind)));
        if (!metrics.writeTo(cli.metrics_path)) {
            std::fprintf(stderr, "gfp-prof: cannot write metrics to %s\n",
                         cli.metrics_path.c_str());
            return 2;
        }
        std::printf("metrics -> %s\n", cli.metrics_path.c_str());
    }

    // -- the attribution self-check the tool's exit status reports --
    const bool ties_out = prof.consistent() &&
                          prof.cycles() == st.cycles &&
                          prof.instrs() == st.instrs;
    std::printf("\nattribution check: per-PC totals %llu instrs / %llu "
                "cycles vs machine %llu / %llu -- %s\n",
                static_cast<unsigned long long>(prof.instrs()),
                static_cast<unsigned long long>(prof.cycles()),
                static_cast<unsigned long long>(st.instrs),
                static_cast<unsigned long long>(st.cycles),
                ties_out ? "OK" : "MISMATCH");
    return ties_out ? 0 : 1;
}
