#!/usr/bin/env bash
# Intra-repo markdown link checker.
#
# Scans every tracked *.md file for [text](target) links and fails if a
# relative target does not resolve to a file in the repo, or if a
# #fragment does not match any heading in the target file (GitHub slug
# rules: lowercase, punctuation stripped, spaces become hyphens).
# External links (http/https/mailto) are ignored — CI must not depend
# on network reachability.
#
# Usage: tools/check_doc_links.sh [repo-root]
set -u

root="${1:-$(git rev-parse --show-toplevel 2>/dev/null || echo .)}"
cd "$root" || exit 2

if git rev-parse --git-dir >/dev/null 2>&1; then
    mapfile -t files < <(git ls-files '*.md')
else
    mapfile -t files < <(find . -name '*.md' -not -path './build/*' \
        | sed 's|^\./||')
fi

slugify() {
    # GitHub heading -> anchor: strip markdown emphasis/code ticks,
    # lowercase, drop everything but alphanumerics/spaces/hyphens,
    # spaces to hyphens.
    printf '%s' "$1" \
        | sed -e 's/[`*_]//g' \
        | tr '[:upper:]' '[:lower:]' \
        | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

has_anchor() {
    # $1 = file, $2 = fragment (without '#')
    local file="$1" frag="$2" line heading
    while IFS= read -r line; do
        heading="${line###}"
        heading="${heading## }"
        # Headings keep at most one leading '#' run; strip the rest.
        heading="$(printf '%s' "$line" | sed 's/^#\{1,6\} *//')"
        if [ "$(slugify "$heading")" = "$frag" ]; then
            return 0
        fi
    done < <(grep -E '^#{1,6} ' "$file")
    return 1
}

errors=0
checked=0

for f in "${files[@]}"; do
    dir=$(dirname "$f")
    # Extract every (target) of an inline [text](target) link.  One link
    # per output line; grep -o keeps it simple and ordering stable.
    while IFS= read -r target; do
        target="${target#\(}"
        target="${target%\)}"
        # Strip optional "title" suffix:  (path "Title")
        target="${target%% \"*}"
        case "$target" in
            http://* | https://* | mailto:*) continue ;;
        esac
        checked=$((checked + 1))
        frag=""
        path="$target"
        case "$target" in
            *'#'*)
                frag="${target#*#}"
                path="${target%%#*}"
                ;;
        esac
        if [ -z "$path" ]; then
            resolved="$f" # same-file #fragment
        else
            resolved="$dir/$path"
        fi
        # Normalise ./ and ../ without requiring the target to exist.
        resolved=$(realpath -m --relative-to=. "$resolved")
        if [ ! -e "$resolved" ]; then
            echo "$f: dead link -> $target (no such file: $resolved)"
            errors=$((errors + 1))
            continue
        fi
        if [ -n "$frag" ] && [[ "$resolved" == *.md ]]; then
            if ! has_anchor "$resolved" "$frag"; then
                echo "$f: dead anchor -> $target (no heading #$frag" \
                    "in $resolved)"
                errors=$((errors + 1))
            fi
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed 's/^]//')
done

echo "check_doc_links: ${#files[@]} files, $checked links," \
    "$errors dead"
[ "$errors" -eq 0 ]
