/**
 * @file
 * gfp-loadgen — load generator for gfp-serve (docs/SERVICE.md).
 *
 * Usage:
 *   gfp-loadgen (--unix PATH | --tcp PORT) [options]
 *
 *   --class NAME        rs_syndrome | rs_decode | bch_decode |
 *                       aes_ctr_block | ecdh_shared | rs_erasure | mix
 *                       (default rs_syndrome; mix round-robins the
 *                       coding + AES classes)
 *   --closed-loop W     closed loop with W outstanding requests
 *                       (default mode, W = 64): every response is
 *                       immediately replaced, measuring saturated
 *                       throughput
 *   --open-loop RATE    constant-rate open loop at RATE requests/s:
 *                       arrivals do not wait for responses, measuring
 *                       latency under offered load
 *   --ge G,B,RG,RB      Gilbert-Elliott bursty open loop: mean
 *                       good/bad sojourn seconds G and B, per-state
 *                       Poisson rates RG and RB requests/s — the
 *                       burst-arrival regime of docs/EXPERIMENTS.md
 *   --duration S        run length in seconds (default 5)
 *   --requests N        stop after N responses (0 = duration-bound)
 *   --deadline-us N     per-request deadline passed to the server
 *   --verify            check every OK response body against the host
 *                       reference codec (bit-identity)
 *   --seed N            workload RNG seed (default 1)
 *   --json FILE         write a results JSON document
 *   --stats             fetch server stats (kStats) after the run,
 *                       embed them in the JSON, and check the service
 *                       accounting invariants (requires being the only
 *                       client)
 *   -q, --quiet         suppress the human-readable summary
 *
 * Exit status: 0 clean, 1 verification or invariant failure,
 * 2 usage/connect errors.
 *
 * The hot path pre-encodes a pool of distinct request frames per class
 * and patches only the 8-byte id per send, so the generator saturates
 * the server rather than itself.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "coding/bch.h"
#include "coding/channel.h"
#include "common/logging.h"
#include "coding/decoder_kernels.h"
#include "coding/rs.h"
#include "common/random.h"
#include "common/strutil.h"
#include "crypto/aes.h"
#include "crypto/ecc.h"
#include "service/client.h"
#include "service/request_classes.h"

using namespace gfp;
using namespace gfp::service;

namespace {

/** Offset of the id field inside a full frame (4B length prefix + 8B
 *  into the request header). */
constexpr size_t kIdOffset = 12;

struct PreparedRequest
{
    RequestClass cls;
    std::vector<uint8_t> frame;    ///< full frame, id patched per send
    std::vector<uint8_t> expected; ///< expected OK response body
};

struct Cli
{
    std::string unix_path;
    uint16_t tcp_port = 0;
    std::string cls = "rs_syndrome";
    size_t window = 64;
    bool closed_loop = true;
    double rate_hz = 0;
    bool use_ge = false;
    double ge_good_s = 1.0, ge_bad_s = 0.2;
    double ge_rate_good = 0, ge_rate_bad = 0;
    double duration_s = 5;
    uint64_t max_requests = 0;
    uint32_t deadline_us = 0;
    bool verify = false;
    uint64_t seed = 1;
    std::string json_path;
    bool stats = false;
    bool quiet = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--unix PATH | --tcp PORT) [--class NAME]\n"
        "       [--closed-loop W | --open-loop RATE | --ge G,B,RG,RB]\n"
        "       [--duration S] [--requests N] [--deadline-us N]\n"
        "       [--verify] [--seed N] [--json FILE] [--stats] [-q]\n",
        argv0);
    return 2;
}

std::vector<uint8_t>
gf2xBytes(const Gf2x &v)
{
    auto words = v.toWords32(8);
    std::vector<uint8_t> out;
    out.reserve(32);
    for (uint32_t w : words)
        for (unsigned b = 0; b < 4; ++b)
            out.push_back(static_cast<uint8_t>(w >> (8 * b)));
    return out;
}

/** Build @p count distinct requests of @p cls with known-good expected
 *  responses. */
std::vector<PreparedRequest>
buildWorkload(RequestClass cls, unsigned count, uint64_t seed,
              uint32_t deadline_us)
{
    std::vector<PreparedRequest> pool;
    pool.reserve(count);
    Rng rng(seed);
    GFField f8(8);
    RSCode rs(8, 8);
    BCHCode bch(5, 5);

    for (unsigned i = 0; i < count; ++i) {
        PreparedRequest req;
        req.cls = cls;
        std::vector<uint8_t> body;
        switch (cls) {
        case RequestClass::kRsSyndrome: {
            std::vector<GFElem> info(rs.k());
            for (auto &s : info)
                s = rng.nextByte();
            ExactErrorInjector inj(seed + i);
            auto rx = inj.corruptSymbols(rs.encode(info), i % 9, 8);
            std::vector<uint8_t> rxb(rx.begin(), rx.end());
            body = rsSyndromeBody(rxb);
            auto synd = syndromes(f8, rx, 2 * rs.t());
            req.expected.assign(synd.begin(), synd.end());
            break;
        }
        case RequestClass::kRsDecode: {
            std::vector<GFElem> info(rs.k());
            for (auto &s : info)
                s = rng.nextByte();
            auto cw = rs.encode(info);
            ExactErrorInjector inj(seed + i);
            auto rx = inj.corruptSymbols(cw, i % (rs.t() + 1), 8);
            std::vector<uint8_t> rxb(rx.begin(), rx.end());
            body = rsDecodeBody(rxb);
            req.expected.push_back(1);
            req.expected.insert(req.expected.end(), cw.begin(),
                                cw.end());
            break;
        }
        case RequestClass::kBchDecode: {
            std::vector<uint8_t> info(bch.k());
            for (auto &b : info)
                b = static_cast<uint8_t>(rng.below(2));
            auto cw = bch.encode(info);
            ExactErrorInjector inj(seed + i);
            auto rx = inj.flipBits(cw, i % (bch.t() + 1));
            body = bchDecodeBody(rx);
            req.expected.push_back(1);
            req.expected.insert(req.expected.end(), cw.begin(),
                                cw.end());
            break;
        }
        case RequestClass::kAesCtrBlock: {
            std::vector<uint8_t> key(16);
            for (auto &b : key)
                b = rng.nextByte();
            Aes aes(key);
            std::vector<uint8_t> rkeys;
            for (uint32_t word : aes.roundKeys())
                for (int b = 3; b >= 0; --b)
                    rkeys.push_back(static_cast<uint8_t>(word >> (8 * b)));
            AesBlock counter;
            for (auto &b : counter)
                b = rng.nextByte();
            body = aesCtrBlockBody(
                rkeys, std::vector<uint8_t>(counter.begin(),
                                            counter.end()));
            AesBlock ks = aes.encryptBlock(counter);
            req.expected.assign(ks.begin(), ks.end());
            break;
        }
        case RequestClass::kEcdhShared: {
            // Short scalars keep per-request service time in the tens
            // of point operations; the class itself allows up to
            // kMaxScalarBits.
            EllipticCurve curve = EllipticCurve::nist("K-233");
            Gf2x k(1 + (rng.next64() & 0xffffffffull));
            EcPoint res = curve.scalarMult(k, curve.basePoint());
            auto kw = gf2xBytes(k);
            kw.resize(16);
            body = ecdhSharedBody(gf2xBytes(curve.basePoint().x),
                                  gf2xBytes(curve.basePoint().y), kw,
                                  k.bitLength());
            req.expected = gf2xBytes(res.x);
            auto ry = gf2xBytes(res.y);
            req.expected.insert(req.expected.end(), ry.begin(),
                                ry.end());
            break;
        }
        case RequestClass::kRsErasure: {
            std::vector<GFElem> info(rs.k());
            for (auto &s : info)
                s = rng.nextByte();
            auto cw = rs.encode(info);
            ExactErrorInjector inj(seed + i);
            unsigned e = 1 + i % kMaxErasures;
            auto positions = inj.pickPositions(rs.n(), e);
            auto rx = cw;
            for (unsigned pos : positions)
                rx[pos] ^= static_cast<GFElem>(1 + rng.below(255));
            std::vector<uint8_t> rxb(rx.begin(), rx.end());
            body = rsErasureBody(
                rxb, std::vector<uint8_t>(positions.begin(),
                                          positions.end()));
            req.expected.push_back(1);
            req.expected.insert(req.expected.end(), cw.begin(),
                                cw.end());
            break;
        }
        default:
            GFP_FATAL("buildWorkload: unsupported class %s",
                      requestClassName(cls));
        }

        RequestHeader h;
        h.cls = cls;
        h.deadline_us = deadline_us;
        h.id = 0; // patched per send
        appendRequestFrame(req.frame, h, body.data(), body.size());
        pool.push_back(std::move(req));
    }
    return pool;
}

/** First "name": value occurrence in a (flat) metrics JSON document. */
double
extractCounter(const std::string &doc, const std::string &name)
{
    const std::string needle = "\"" + name + "\":";
    size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return 0;
    return std::atof(doc.c_str() + pos + needle.size());
}

double
quantileExact(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
    return sorted[idx];
}

struct Tally
{
    uint64_t sent = 0;
    uint64_t completed = 0;
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t trapped = 0;
    uint64_t deadline = 0;
    uint64_t shutdown = 0;
    uint64_t other = 0;
    uint64_t verify_failures = 0;
    std::vector<double> latency_us;
};

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix")
            cli.unix_path = need("--unix");
        else if (arg == "--tcp")
            cli.tcp_port = static_cast<uint16_t>(std::atoi(need("--tcp")));
        else if (arg == "--class")
            cli.cls = need("--class");
        else if (arg == "--closed-loop") {
            cli.closed_loop = true;
            cli.window = static_cast<size_t>(std::atoll(need("--closed-loop")));
        }
        else if (arg == "--open-loop") {
            cli.closed_loop = false;
            cli.rate_hz = std::atof(need("--open-loop"));
        }
        else if (arg == "--ge") {
            cli.closed_loop = false;
            cli.use_ge = true;
            if (std::sscanf(need("--ge"), "%lf,%lf,%lf,%lf",
                            &cli.ge_good_s, &cli.ge_bad_s,
                            &cli.ge_rate_good, &cli.ge_rate_bad) != 4)
                return usage(argv[0]);
        }
        else if (arg == "--duration")
            cli.duration_s = std::atof(need("--duration"));
        else if (arg == "--requests")
            cli.max_requests =
                static_cast<uint64_t>(std::atoll(need("--requests")));
        else if (arg == "--deadline-us")
            cli.deadline_us =
                static_cast<uint32_t>(std::atoll(need("--deadline-us")));
        else if (arg == "--verify")
            cli.verify = true;
        else if (arg == "--seed")
            cli.seed = static_cast<uint64_t>(std::atoll(need("--seed")));
        else if (arg == "--json")
            cli.json_path = need("--json");
        else if (arg == "--stats")
            cli.stats = true;
        else if (arg == "-q" || arg == "--quiet")
            cli.quiet = true;
        else
            return usage(argv[0]);
    }
    if (cli.unix_path.empty() && cli.tcp_port == 0)
        return usage(argv[0]);

    // Workload pool: the mix rotates the coding + AES classes.
    std::vector<RequestClass> classes;
    if (cli.cls == "mix")
        classes = {RequestClass::kRsSyndrome, RequestClass::kRsDecode,
                   RequestClass::kBchDecode, RequestClass::kAesCtrBlock,
                   RequestClass::kRsErasure};
    else if (cli.cls == "rs_syndrome")
        classes = {RequestClass::kRsSyndrome};
    else if (cli.cls == "rs_decode")
        classes = {RequestClass::kRsDecode};
    else if (cli.cls == "bch_decode")
        classes = {RequestClass::kBchDecode};
    else if (cli.cls == "aes_ctr_block")
        classes = {RequestClass::kAesCtrBlock};
    else if (cli.cls == "ecdh_shared")
        classes = {RequestClass::kEcdhShared};
    else if (cli.cls == "rs_erasure")
        classes = {RequestClass::kRsErasure};
    else
        return usage(argv[0]);

    std::vector<PreparedRequest> pool;
    const unsigned per_class = cli.cls == "mix" ? 32 : 128;
    for (size_t c = 0; c < classes.size(); ++c) {
        auto part = buildWorkload(classes[c], per_class,
                                  cli.seed + 1000 * c, cli.deadline_us);
        for (auto &req : part)
            pool.push_back(std::move(req));
    }

    Client client;
    bool connected = !cli.unix_path.empty()
                         ? client.connectUnix(cli.unix_path)
                         : client.connectTcp("127.0.0.1", cli.tcp_port);
    if (!connected) {
        std::fprintf(stderr, "gfp-loadgen: connect failed: %s\n",
                     std::strerror(errno));
        return 2;
    }

    Tally tally;
    std::vector<double> send_time; // indexed by request id
    send_time.reserve(1 << 20);
    send_time.push_back(0); // id 0 unused

    const auto epoch = std::chrono::steady_clock::now();
    auto now_s = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - epoch)
            .count();
    };

    auto sendOne = [&] {
        const uint64_t id = send_time.size();
        PreparedRequest &req = pool[id % pool.size()];
        // Patch the id in the pre-encoded frame.
        for (unsigned b = 0; b < 8; ++b)
            req.frame[kIdOffset + b] =
                static_cast<uint8_t>(id >> (8 * b));
        client.queueRaw(req.frame.data(), req.frame.size());
        send_time.push_back(now_s());
        ++tally.sent;
    };

    auto process = [&](const Response &r) {
        ++tally.completed;
        if (r.header.id < send_time.size())
            tally.latency_us.push_back(
                (now_s() - send_time[r.header.id]) * 1e6);
        switch (r.header.status) {
        case Status::kOk: {
            ++tally.ok;
            if (cli.verify) {
                const PreparedRequest &req =
                    pool[r.header.id % pool.size()];
                if (r.body != req.expected) {
                    ++tally.verify_failures;
                    if (tally.verify_failures <= 5)
                        std::fprintf(stderr,
                                     "verify failed: id=%llu class=%s\n",
                                     static_cast<unsigned long long>(
                                         r.header.id),
                                     requestClassName(req.cls));
                }
            }
            break;
        }
        case Status::kRejectedBusy:
            ++tally.rejected;
            break;
        case Status::kTrapped:
            ++tally.trapped;
            break;
        case Status::kDeadlineExpired:
            ++tally.deadline;
            break;
        case Status::kShuttingDown:
            ++tally.shutdown;
            break;
        default:
            ++tally.other;
            break;
        }
    };

    auto doneSending = [&] {
        return (cli.max_requests &&
                tally.sent >= cli.max_requests) ||
               now_s() >= cli.duration_s;
    };

    double ge_bad_fraction = 0;
    Response resp;
    if (cli.closed_loop) {
        for (size_t i = 0; i < cli.window && !doneSending(); ++i)
            sendOne();
        client.flush();
        while (tally.completed < tally.sent) {
            if (!client.recvResponse(&resp, 10'000)) {
                std::fprintf(stderr, "gfp-loadgen: recv failed\n");
                break;
            }
            process(resp);
            uint64_t drained = 1;
            while (client.recvResponse(&resp, 0)) {
                process(resp);
                ++drained;
            }
            if (!doneSending()) {
                for (uint64_t i = 0; i < drained && !doneSending(); ++i)
                    sendOne();
                client.flush();
            }
        }
    }
    else {
        // Open loop: arrivals from a constant-rate schedule or the
        // Gilbert-Elliott bursty trace, sent when due regardless of
        // completions.
        std::vector<double> arrivals;
        if (cli.use_ge) {
            GilbertElliottArrivals gen(cli.ge_good_s, cli.ge_bad_s,
                                       cli.ge_rate_good, cli.ge_rate_bad,
                                       cli.seed);
            arrivals = gen.generate(cli.duration_s);
            ge_bad_fraction = gen.badFraction();
        }
        else {
            if (cli.rate_hz <= 0)
                return usage(argv[0]);
            for (double t = 0; t < cli.duration_s; t += 1.0 / cli.rate_hz)
                arrivals.push_back(t);
        }
        if (cli.max_requests && arrivals.size() > cli.max_requests)
            arrivals.resize(cli.max_requests);

        size_t next = 0;
        while (next < arrivals.size()) {
            const double now = now_s();
            size_t queued = 0;
            while (next < arrivals.size() && arrivals[next] <= now) {
                sendOne();
                ++next;
                ++queued;
            }
            if (queued)
                client.flush();
            while (client.recvResponse(&resp, 0))
                process(resp);
            if (next < arrivals.size()) {
                const double wait_s = arrivals[next] - now_s();
                if (wait_s > 0)
                    client.recvResponse(
                        &resp, static_cast<int>(wait_s * 1000));
                // A frame may have arrived during the wait.
                if (client.lastError() == Client::Error::kNone)
                    process(resp);
            }
        }
        // Drain stragglers.
        while (tally.completed < tally.sent &&
               client.recvResponse(&resp, 5'000))
            process(resp);
    }
    const double elapsed_s = now_s();

    // Optional server-stats fetch + accounting invariant check.
    std::string server_stats;
    bool invariant_ok = true;
    if (cli.stats) {
        RequestHeader h;
        h.cls = RequestClass::kStats;
        h.id = send_time.size();
        if (client.call(h, {}, &resp) &&
            resp.header.status == Status::kOk) {
            server_stats.assign(resp.body.begin(), resp.body.end());
            const double requests =
                extractCounter(server_stats, "requests_total");
            const double admitted =
                extractCounter(server_stats, "admitted_total");
            const double control =
                extractCounter(server_stats, "control_total");
            const double s_ok =
                extractCounter(server_stats, "responses_ok_total");
            const double s_rej = extractCounter(
                server_stats, "responses_rejected_busy_total");
            const double s_trap =
                extractCounter(server_stats, "responses_trapped_total");
            const double s_dead = extractCounter(
                server_stats, "responses_deadline_expired_total");
            const double s_bad = extractCounter(
                server_stats, "responses_bad_request_total");
            const double s_shut = extractCounter(
                server_stats, "responses_shutting_down_total");
            const double s_unk = extractCounter(
                server_stats, "responses_unknown_class_total");
            if (requests != admitted + control + s_rej + s_bad +
                                s_shut + s_unk ||
                admitted != (s_ok - control) + s_trap + s_dead) {
                invariant_ok = false;
                std::fprintf(
                    stderr,
                    "service accounting invariant FAILED: requests=%.0f "
                    "admitted=%.0f control=%.0f ok=%.0f rejected=%.0f "
                    "trapped=%.0f deadline=%.0f bad=%.0f shutdown=%.0f "
                    "unknown=%.0f\n",
                    requests, admitted, control, s_ok, s_rej, s_trap,
                    s_dead, s_bad, s_shut, s_unk);
            }
        }
        else {
            invariant_ok = false;
            std::fprintf(stderr, "gfp-loadgen: stats fetch failed\n");
        }
    }

    std::sort(tally.latency_us.begin(), tally.latency_us.end());
    const double p50 = quantileExact(tally.latency_us, 0.50);
    const double p90 = quantileExact(tally.latency_us, 0.90);
    const double p99 = quantileExact(tally.latency_us, 0.99);
    const double lat_max =
        tally.latency_us.empty() ? 0 : tally.latency_us.back();
    double lat_sum = 0;
    for (double v : tally.latency_us)
        lat_sum += v;
    const double lat_mean =
        tally.latency_us.empty() ? 0
                                 : lat_sum / tally.latency_us.size();
    const double throughput =
        elapsed_s > 0 ? static_cast<double>(tally.ok) / elapsed_s : 0;

    if (!cli.quiet) {
        std::printf("gfp-loadgen: class=%s mode=%s elapsed=%.2fs\n",
                    cli.cls.c_str(),
                    cli.closed_loop
                        ? "closed-loop"
                        : (cli.use_ge ? "ge-burst" : "open-loop"),
                    elapsed_s);
        std::printf(
            "  sent=%llu completed=%llu ok=%llu rejected=%llu "
            "trapped=%llu deadline=%llu shutdown=%llu other=%llu\n",
            static_cast<unsigned long long>(tally.sent),
            static_cast<unsigned long long>(tally.completed),
            static_cast<unsigned long long>(tally.ok),
            static_cast<unsigned long long>(tally.rejected),
            static_cast<unsigned long long>(tally.trapped),
            static_cast<unsigned long long>(tally.deadline),
            static_cast<unsigned long long>(tally.shutdown),
            static_cast<unsigned long long>(tally.other));
        std::printf("  throughput=%.0f ok-responses/s\n", throughput);
        std::printf(
            "  latency_us: p50=%.0f p90=%.0f p99=%.0f mean=%.0f "
            "max=%.0f\n",
            p50, p90, p99, lat_mean, lat_max);
        if (cli.use_ge)
            std::printf("  ge bad-state fraction=%.3f\n",
                        ge_bad_fraction);
        if (cli.verify)
            std::printf("  verify failures=%llu\n",
                        static_cast<unsigned long long>(
                            tally.verify_failures));
    }

    if (!cli.json_path.empty()) {
        FILE *f = std::fopen(cli.json_path.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         cli.json_path.c_str());
            return 2;
        }
        std::string doc = "{\n";
        doc += strprintf("  \"tool\": \"gfp-loadgen\",\n");
        doc += strprintf("  \"class\": \"%s\",\n", cli.cls.c_str());
        doc += strprintf(
            "  \"mode\": \"%s\",\n",
            cli.closed_loop ? "closed-loop"
                            : (cli.use_ge ? "ge-burst" : "open-loop"));
        if (cli.closed_loop)
            doc += strprintf("  \"window\": %zu,\n", cli.window);
        else if (cli.use_ge)
            doc += strprintf(
                "  \"ge\": {\"mean_good_s\": %g, \"mean_bad_s\": %g, "
                "\"rate_good_hz\": %g, \"rate_bad_hz\": %g, "
                "\"bad_fraction\": %.4f},\n",
                cli.ge_good_s, cli.ge_bad_s, cli.ge_rate_good,
                cli.ge_rate_bad, ge_bad_fraction);
        else
            doc += strprintf("  \"rate_hz\": %g,\n", cli.rate_hz);
        doc += strprintf("  \"elapsed_s\": %.3f,\n", elapsed_s);
        doc += strprintf("  \"sent\": %llu,\n",
                         static_cast<unsigned long long>(tally.sent));
        doc += strprintf(
            "  \"completed\": %llu,\n",
            static_cast<unsigned long long>(tally.completed));
        doc += strprintf("  \"ok\": %llu,\n",
                         static_cast<unsigned long long>(tally.ok));
        doc += strprintf(
            "  \"rejected\": %llu,\n",
            static_cast<unsigned long long>(tally.rejected));
        doc += strprintf(
            "  \"trapped\": %llu,\n",
            static_cast<unsigned long long>(tally.trapped));
        doc += strprintf(
            "  \"deadline_expired\": %llu,\n",
            static_cast<unsigned long long>(tally.deadline));
        doc += strprintf(
            "  \"verify_failures\": %llu,\n",
            static_cast<unsigned long long>(tally.verify_failures));
        doc += strprintf("  \"throughput_ok_rps\": %.1f,\n", throughput);
        doc += strprintf(
            "  \"latency_us\": {\"count\": %zu, \"p50\": %.1f, "
            "\"p90\": %.1f, \"p99\": %.1f, \"mean\": %.1f, "
            "\"max\": %.1f}",
            tally.latency_us.size(), p50, p90, p99, lat_mean, lat_max);
        if (!server_stats.empty()) {
            doc += ",\n  \"server_stats\": ";
            doc += server_stats;
        }
        doc += "\n}\n";
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
    }

    if (tally.verify_failures || !invariant_ok)
        return 1;
    return 0;
}
