/**
 * @file
 * Reference arithmetic for small binary extension fields GF(2^m).
 *
 * This is the *golden model* the structural GFAU hardware model
 * (src/gfau) and the simulator kernels are verified against.  It supports
 * every field size the paper's datapath handles (m = 2..8) plus larger
 * fields (up to m = 16) needed to construct long BCH/RS codes, and any
 * irreducible polynomial — the paper's headline flexibility claim.
 *
 * Two multiplication paths are provided:
 *  - mulCarryless(): carry-less product + polynomial reduction (the way
 *                the paper's hardware computes it), and
 *  - mulTable(): log/antilog table lookup (the way the paper's *software
 *                baseline* computes it, Table 6 left column).
 * Both must agree; tests enforce it.
 *
 * mul()/sqr()/inv()/pow() are the *host hot path*: for the datapath
 * sizes the paper's processor handles (m <= 8) they dispatch to the
 * log/antilog tables built at construction — one or two lookups instead
 * of a reduction loop — and fall back to the carry-less path for the
 * larger code-construction fields.  Results are identical either way.
 */

#ifndef GFP_GF_FIELD_H
#define GFP_GF_FIELD_H

#include <cstdint>
#include <vector>

namespace gfp {

/** An element of GF(2^m), m <= 16; value fits in the low m bits. */
using GFElem = uint16_t;

class GFField
{
  public:
    /**
     * Construct GF(2^m) with the given irreducible polynomial.
     * @param m     field degree, 2 <= m <= 16
     * @param poly  irreducible polynomial encoded as an integer
     *              (bit i = coefficient of x^i); defaults to the standard
     *              primitive polynomial for m when 0 is passed.
     */
    explicit GFField(unsigned m, uint32_t poly = 0);

    unsigned m() const { return m_; }
    uint32_t poly() const { return poly_; }
    /** Number of field elements, 2^m. */
    uint32_t order() const { return 1u << m_; }
    /** Size of the multiplicative group, 2^m - 1. */
    uint32_t groupOrder() const { return (1u << m_) - 1; }
    /** True if x itself generates the multiplicative group. */
    bool primitive() const { return primitive_; }
    /** A generator of the multiplicative group (x when primitive). */
    GFElem generator() const { return generator_; }

    /** Addition == subtraction == XOR in characteristic 2. */
    static GFElem add(GFElem a, GFElem b) { return a ^ b; }

    /** Product (table-dispatched for m <= 8; see file comment). */
    GFElem mul(GFElem a, GFElem b) const;

    /** Product via carry-less multiply + reduction (hardware path). */
    GFElem mulCarryless(GFElem a, GFElem b) const;

    /** Product via log/antilog tables (software-baseline path). */
    GFElem mulTable(GFElem a, GFElem b) const;

    /** Square (uses the thinned carry-less square + reduction). */
    GFElem sqr(GFElem a) const;

    /**
     * Multiplicative inverse.  inv(0) == 0, matching the hardware's ITA
     * network (an all-zero input propagates zeros), which is also the
     * convention the AES S-box requires.
     */
    GFElem inv(GFElem a) const;

    /** a / b; fatal if b == 0. */
    GFElem div(GFElem a, GFElem b) const;

    /** a raised to the (ordinary integer) power e; pow(0,0) == 1. */
    GFElem pow(GFElem a, uint32_t e) const;

    /** Discrete log base generator(); fatal for log(0). */
    uint32_t log(GFElem a) const;

    /** generator() raised to the power i (i taken mod 2^m - 1). */
    GFElem exp(uint32_t i) const;

    /** Reduce a raw carry-less product (up to 2m-1 bits) mod poly. */
    GFElem reduce(uint32_t full_product) const;

    /** True for a representable element of this field. */
    bool contains(uint32_t v) const { return v < order(); }

    /** The log table (BIN2Idx in the paper's Table 6); log[0] unused. */
    const std::vector<uint16_t> &logTable() const { return log_; }
    /** The antilog table (Idx2BIN in the paper's Table 6). */
    const std::vector<GFElem> &expTable() const { return exp_; }

    bool operator==(const GFField &o) const
    {
        return m_ == o.m_ && poly_ == o.poly_;
    }

  private:
    void buildTables();

    unsigned m_;
    uint32_t poly_;
    bool primitive_;
    bool table_dispatch_ = false; ///< m <= 8 and tables are built
    GFElem generator_;
    std::vector<GFElem> exp_;   // exp_[i] = g^i, length 2*(2^m - 1)
    std::vector<uint16_t> log_; // log_[v] = i with g^i == v; log_[0] = 0
};

} // namespace gfp

#endif // GFP_GF_FIELD_H
