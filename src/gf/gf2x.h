/**
 * @file
 * Arbitrary-precision polynomials over GF(2) ("carry-less big integers").
 *
 * This is the substrate for the paper's asymmetric-crypto path: very wide
 * field elements (e.g. 233 bits for the NIST K-233 curve) are GF(2)
 * polynomials.  Two families of multiply are provided:
 *  - mulSchoolbook()/mulKaratsuba() mirror the hardware strategy — the
 *    product is assembled from 32-bit x 32-bit carry-less partial
 *    products (the paper's single-cycle gf32bMult instruction), either
 *    schoolbook ("direct product", Sec. 3.3.4) or with the Karatsuba
 *    recursion the paper evaluates — and count partial products;
 *  - mulClmul() (the operator* default) is the host performance path:
 *    64-bit limbs through the runtime-detected carry-less backend in
 *    gf/clmul.h.  Bit-exact with the hardware-shaped paths.
 *
 * Bits are stored little-endian in 64-bit words: bit i of the polynomial
 * is bit (i % 64) of word (i / 64).
 */

#ifndef GFP_GF_GF2X_H
#define GFP_GF_GF2X_H

#include <cstdint>
#include <string>
#include <vector>

namespace gfp {

class Gf2x
{
  public:
    /** The zero polynomial. */
    Gf2x() = default;

    /** Polynomial from a small integer bit pattern. */
    explicit Gf2x(uint64_t bits);

    /** Polynomial from little-endian 64-bit words. */
    explicit Gf2x(std::vector<uint64_t> words);

    /** x^e. */
    static Gf2x monomial(unsigned e);

    /** Sum of x^e over the given exponents (e.g. {233, 74, 0}). */
    static Gf2x fromExponents(const std::vector<unsigned> &exponents);

    /** Uniformly random polynomial of degree < nbits (via splitmix). */
    static Gf2x random(unsigned nbits, uint64_t seed);

    /** Degree, or -1 for the zero polynomial. */
    int degree() const;

    bool isZero() const { return degree() < 0; }
    bool isOne() const { return degree() == 0; }

    uint32_t getBit(unsigned i) const;
    void setBit(unsigned i, uint32_t v);

    /** Number of significant bits (degree + 1; 0 for zero). */
    unsigned bitLength() const { return static_cast<unsigned>(degree() + 1); }

    /** Little-endian 64-bit words, trimmed of leading zero words. */
    const std::vector<uint64_t> &words() const { return words_; }

    /** Little-endian 32-bit words padded to @p n entries. */
    std::vector<uint32_t> toWords32(size_t n) const;

    /** Build from little-endian 32-bit words. */
    static Gf2x fromWords32(const std::vector<uint32_t> &w);

    /** XOR == polynomial addition == subtraction. */
    Gf2x operator^(const Gf2x &o) const;
    Gf2x &operator^=(const Gf2x &o);

    /** Multiply by x^k. */
    Gf2x shiftLeft(unsigned k) const;

    /** Divide by x^k (drop low terms). */
    Gf2x shiftRight(unsigned k) const;

    /** Keep only terms of degree < k. */
    Gf2x truncated(unsigned k) const;

    /**
     * Full carry-less product, schoolbook over 32-bit limbs — the
     * "direct product" of Sec. 3.3.4 that issues one gf32bMult per limb
     * pair.  Also counts the number of 32-bit partial products used when
     * @p partial_products is non-null.
     */
    Gf2x mulSchoolbook(const Gf2x &o,
                       unsigned *partial_products = nullptr) const;

    /**
     * Full carry-less product via recursive Karatsuba with the given
     * number of recursion levels (the paper uses two) above the 32-bit
     * limb base case.
     */
    Gf2x mulKaratsuba(const Gf2x &o, unsigned levels = 2,
                      unsigned *partial_products = nullptr) const;

    /**
     * Full carry-less product over 64-bit limbs through the host clmul
     * backend (gf/clmul.h): PCLMULQDQ / PMULL when the CPU has them, a
     * branch-free software kernel otherwise.  Bit-exact with
     * mulSchoolbook()/mulKaratsuba() — this is the *host performance*
     * path, while those model the paper's 32-bit datapath.
     */
    Gf2x mulClmul(const Gf2x &o) const;

    /** Full product (host fast path; identical to mulSchoolbook). */
    Gf2x operator*(const Gf2x &o) const { return mulClmul(o); }

    /**
     * Square: spreads each bit i to position 2i (Fig. 5(c)'s "thinned"
     * product — no cross terms in characteristic 2).
     */
    Gf2x square() const;

    /** Remainder modulo @p modulus (generic shift-and-subtract). */
    Gf2x mod(const Gf2x &modulus) const;

    /** Quotient and remainder. */
    void divmod(const Gf2x &divisor, Gf2x &quotient, Gf2x &remainder) const;

    /** Greatest common divisor. */
    static Gf2x gcd(Gf2x a, Gf2x b);

    bool operator==(const Gf2x &o) const;
    bool operator!=(const Gf2x &o) const { return !(*this == o); }

    /** Hex rendering (big-endian nibbles), e.g. "1b". */
    std::string toHexString() const;

    /** Parse from hex (big-endian nibbles). */
    static Gf2x fromHexString(const std::string &hex);

  private:
    void trim();

    std::vector<uint64_t> words_; // little-endian, no leading zero words
};

} // namespace gfp

#endif // GFP_GF_GF2X_H
