#include "gf/gf2x.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/random.h"
#include "gf/clmul.h"

namespace gfp {

Gf2x::Gf2x(uint64_t bits)
{
    if (bits)
        words_.push_back(bits);
}

Gf2x::Gf2x(std::vector<uint64_t> words) : words_(std::move(words))
{
    trim();
}

Gf2x
Gf2x::monomial(unsigned e)
{
    Gf2x p;
    p.setBit(e, 1);
    return p;
}

Gf2x
Gf2x::fromExponents(const std::vector<unsigned> &exponents)
{
    Gf2x p;
    for (unsigned e : exponents)
        p.setBit(e, p.getBit(e) ^ 1);
    return p;
}

Gf2x
Gf2x::random(unsigned nbits, uint64_t seed)
{
    Rng rng(seed);
    Gf2x p;
    if (nbits == 0)
        return p;
    p.words_.resize((nbits + 63) / 64);
    for (auto &w : p.words_)
        w = rng.next64();
    unsigned slack = p.words_.size() * 64 - nbits;
    if (slack)
        p.words_.back() &= ~uint64_t{0} >> slack;
    p.trim();
    return p;
}

void
Gf2x::trim()
{
    while (!words_.empty() && words_.back() == 0)
        words_.pop_back();
}

int
Gf2x::degree() const
{
    if (words_.empty())
        return -1;
    return static_cast<int>((words_.size() - 1) * 64) +
           gfp::degree(words_.back());
}

uint32_t
Gf2x::getBit(unsigned i) const
{
    size_t w = i / 64;
    if (w >= words_.size())
        return 0;
    return bit(words_[w], i % 64);
}

void
Gf2x::setBit(unsigned i, uint32_t v)
{
    size_t w = i / 64;
    if (w >= words_.size()) {
        if (!(v & 1))
            return;
        words_.resize(w + 1, 0);
    }
    words_[w] = gfp::setBit(words_[w], i % 64, v);
    trim();
}

std::vector<uint32_t>
Gf2x::toWords32(size_t n) const
{
    std::vector<uint32_t> out(n, 0);
    for (size_t i = 0; i < n; ++i) {
        size_t w = i / 2;
        if (w >= words_.size())
            break;
        out[i] = static_cast<uint32_t>(words_[w] >> ((i % 2) * 32));
    }
    return out;
}

Gf2x
Gf2x::fromWords32(const std::vector<uint32_t> &w)
{
    std::vector<uint64_t> words((w.size() + 1) / 2, 0);
    for (size_t i = 0; i < w.size(); ++i)
        words[i / 2] |= static_cast<uint64_t>(w[i]) << ((i % 2) * 32);
    return Gf2x(std::move(words));
}

Gf2x
Gf2x::operator^(const Gf2x &o) const
{
    Gf2x out(*this);
    out ^= o;
    return out;
}

Gf2x &
Gf2x::operator^=(const Gf2x &o)
{
    if (o.words_.size() > words_.size())
        words_.resize(o.words_.size(), 0);
    for (size_t i = 0; i < o.words_.size(); ++i)
        words_[i] ^= o.words_[i];
    trim();
    return *this;
}

Gf2x
Gf2x::shiftLeft(unsigned k) const
{
    if (isZero() || k == 0)
        return *this;
    unsigned word_shift = k / 64;
    unsigned bit_shift = k % 64;
    std::vector<uint64_t> out(words_.size() + word_shift + 1, 0);
    for (size_t i = 0; i < words_.size(); ++i) {
        out[i + word_shift] ^= words_[i] << bit_shift;
        if (bit_shift)
            out[i + word_shift + 1] ^= words_[i] >> (64 - bit_shift);
    }
    return Gf2x(std::move(out));
}

Gf2x
Gf2x::shiftRight(unsigned k) const
{
    unsigned word_shift = k / 64;
    unsigned bit_shift = k % 64;
    if (word_shift >= words_.size())
        return Gf2x();
    std::vector<uint64_t> out(words_.size() - word_shift, 0);
    for (size_t i = 0; i < out.size(); ++i) {
        out[i] = words_[i + word_shift] >> bit_shift;
        if (bit_shift && i + word_shift + 1 < words_.size())
            out[i] |= words_[i + word_shift + 1] << (64 - bit_shift);
    }
    return Gf2x(std::move(out));
}

Gf2x
Gf2x::truncated(unsigned k) const
{
    size_t nwords = (k + 63) / 64;
    std::vector<uint64_t> out(words_.begin(),
                              words_.begin() +
                                  std::min(nwords, words_.size()));
    if (!out.empty() && k % 64 && out.size() == nwords)
        out.back() &= (uint64_t{1} << (k % 64)) - 1;
    return Gf2x(std::move(out));
}

namespace {

using Limbs = std::vector<uint32_t>;

/** Schoolbook carry-less multiply over 32-bit limbs. */
Limbs
limbMulSchoolbook(const Limbs &a, const Limbs &b, unsigned *count)
{
    Limbs r(a.size() + b.size(), 0);
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            uint64_t p = clmul32(a[i], b[j]);
            r[i + j] ^= static_cast<uint32_t>(p);
            r[i + j + 1] ^= static_cast<uint32_t>(p >> 32);
            if (count)
                ++*count;
        }
    }
    return r;
}

void
limbXorInto(Limbs &dst, const Limbs &src, size_t offset)
{
    if (dst.size() < src.size() + offset)
        dst.resize(src.size() + offset, 0);
    for (size_t i = 0; i < src.size(); ++i)
        dst[i + offset] ^= src[i];
}

/** Karatsuba over 32-bit limbs with a bounded recursion depth. */
Limbs
limbMulKaratsuba(const Limbs &a, const Limbs &b, unsigned levels,
                 unsigned *count)
{
    if (levels == 0 || a.size() <= 1 || b.size() <= 1)
        return limbMulSchoolbook(a, b, count);

    size_t n = std::max(a.size(), b.size());
    size_t h = (n + 1) / 2;

    auto low = [&](const Limbs &v) {
        return Limbs(v.begin(), v.begin() + std::min(h, v.size()));
    };
    auto high = [&](const Limbs &v) {
        return v.size() > h ? Limbs(v.begin() + h, v.end()) : Limbs{};
    };
    auto xorLimbs = [](Limbs x, const Limbs &y) {
        if (x.size() < y.size())
            x.resize(y.size(), 0);
        for (size_t i = 0; i < y.size(); ++i)
            x[i] ^= y[i];
        return x;
    };

    Limbs a0 = low(a), a1 = high(a);
    Limbs b0 = low(b), b1 = high(b);

    Limbs p0 = limbMulKaratsuba(a0, b0, levels - 1, count);
    Limbs p2 = a1.empty() || b1.empty()
                   ? Limbs{}
                   : limbMulKaratsuba(a1, b1, levels - 1, count);
    Limbs p1 = limbMulKaratsuba(xorLimbs(a0, a1), xorLimbs(b0, b1),
                                levels - 1, count);

    // result = p0 + (p0 + p1 + p2) * X^h + p2 * X^(2h)
    Limbs mid = xorLimbs(xorLimbs(p1, p0), p2);
    Limbs r(a.size() + b.size(), 0);
    limbXorInto(r, p0, 0);
    limbXorInto(r, mid, h);
    limbXorInto(r, p2, 2 * h);
    return r;
}

Limbs
toLimbs(const Gf2x &p)
{
    unsigned nbits = p.bitLength();
    return p.toWords32(std::max<size_t>(1, (nbits + 31) / 32));
}

} // anonymous namespace

Gf2x
Gf2x::mulSchoolbook(const Gf2x &o, unsigned *partial_products) const
{
    if (partial_products)
        *partial_products = 0;
    if (isZero() || o.isZero())
        return Gf2x();
    Limbs r = limbMulSchoolbook(toLimbs(*this), toLimbs(o),
                                partial_products);
    return fromWords32(r);
}

Gf2x
Gf2x::mulKaratsuba(const Gf2x &o, unsigned levels,
                   unsigned *partial_products) const
{
    if (partial_products)
        *partial_products = 0;
    if (isZero() || o.isZero())
        return Gf2x();
    Limbs r = limbMulKaratsuba(toLimbs(*this), toLimbs(o), levels,
                               partial_products);
    return fromWords32(r);
}

Gf2x
Gf2x::mulClmul(const Gf2x &o) const
{
    if (isZero() || o.isZero())
        return Gf2x();
    const std::vector<uint64_t> &a = words_;
    const std::vector<uint64_t> &b = o.words_;
    std::vector<uint64_t> r(a.size() + b.size(), 0);
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            uint64_t hi, lo;
            clmulWide(a[i], b[j], hi, lo);
            r[i + j] ^= lo;
            r[i + j + 1] ^= hi;
        }
    }
    return Gf2x(std::move(r));
}

Gf2x
Gf2x::square() const
{
    // Spread each 32-bit half-word into 64 bits with zeros interleaved.
    auto spread32 = [](uint32_t v) {
        uint64_t x = v;
        x = (x | (x << 16)) & 0x0000ffff0000ffffull;
        x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
        x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
        x = (x | (x << 2)) & 0x3333333333333333ull;
        x = (x | (x << 1)) & 0x5555555555555555ull;
        return x;
    };
    std::vector<uint64_t> out(words_.size() * 2, 0);
    for (size_t i = 0; i < words_.size(); ++i) {
        out[2 * i] = spread32(static_cast<uint32_t>(words_[i]));
        out[2 * i + 1] = spread32(static_cast<uint32_t>(words_[i] >> 32));
    }
    return Gf2x(std::move(out));
}

Gf2x
Gf2x::mod(const Gf2x &modulus) const
{
    if (modulus.isZero())
        GFP_FATAL("Gf2x reduction modulo zero");
    Gf2x rem(*this);
    int dm = modulus.degree();
    int dr = rem.degree();
    while (dr >= dm) {
        rem ^= modulus.shiftLeft(dr - dm);
        dr = rem.degree();
    }
    return rem;
}

void
Gf2x::divmod(const Gf2x &divisor, Gf2x &quotient, Gf2x &remainder) const
{
    if (divisor.isZero())
        GFP_FATAL("Gf2x division by zero");
    Gf2x rem(*this);
    Gf2x quot;
    int dd = divisor.degree();
    int dr = rem.degree();
    while (dr >= dd) {
        unsigned shift = dr - dd;
        rem ^= divisor.shiftLeft(shift);
        quot.setBit(shift, 1);
        dr = rem.degree();
    }
    quotient = quot;
    remainder = rem;
}

Gf2x
Gf2x::gcd(Gf2x a, Gf2x b)
{
    while (!b.isZero()) {
        Gf2x r = a.mod(b);
        a = b;
        b = r;
    }
    return a;
}

bool
Gf2x::operator==(const Gf2x &o) const
{
    return words_ == o.words_;
}

std::string
Gf2x::toHexString() const
{
    if (isZero())
        return "0";
    std::string out;
    bool leading = true;
    for (size_t w = words_.size(); w-- > 0;) {
        for (int nib = 15; nib >= 0; --nib) {
            unsigned v = (words_[w] >> (nib * 4)) & 0xf;
            if (leading && v == 0)
                continue;
            leading = false;
            out.push_back("0123456789abcdef"[v]);
        }
    }
    return out;
}

Gf2x
Gf2x::fromHexString(const std::string &hex)
{
    Gf2x p;
    unsigned pos = 0;
    for (size_t i = hex.size(); i-- > 0;) {
        char c = hex[i];
        unsigned v;
        if (c >= '0' && c <= '9')
            v = c - '0';
        else if (c >= 'a' && c <= 'f')
            v = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            v = c - 'A' + 10;
        else
            GFP_FATAL("bad hex digit '%c'", c);
        for (unsigned b = 0; b < 4; ++b)
            if ((v >> b) & 1)
                p.setBit(pos + b, 1);
        pos += 4;
    }
    return p;
}

} // namespace gfp
