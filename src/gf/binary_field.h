/**
 * @file
 * Wide binary extension fields GF(2^m), m > 64, defined by sparse
 * irreducible polynomials — the fields asymmetric cryptography (ECC_l)
 * runs in.  The paper's running example is the NIST Koblitz curve field
 * GF(2^233) with x^233 + x^74 + 1.
 *
 * Reduction exploits sparsity (trinomials / pentanomials fold in a couple
 * of passes), inversion offers both the Itoh-Tsujii addition-chain method
 * the paper implements and an extended-Euclidean reference.
 */

#ifndef GFP_GF_BINARY_FIELD_H
#define GFP_GF_BINARY_FIELD_H

#include <string>
#include <vector>

#include "gf/gf2x.h"

namespace gfp {

class BinaryField
{
  public:
    /**
     * @param m          field degree (e.g. 233)
     * @param exponents  exponents of the irreducible polynomial's nonzero
     *                   terms, e.g. {233, 74, 0}; must include m and 0.
     */
    BinaryField(unsigned m, std::vector<unsigned> exponents);

    /** Field for a named NIST binary field: "163", "233", "283", "409",
     *  "571", or "113". */
    static BinaryField nist(const std::string &name);

    unsigned m() const { return m_; }
    const Gf2x &modulus() const { return modulus_; }
    const std::vector<unsigned> &exponents() const { return exponents_; }

    /** True if @p v is a reduced field element (degree < m). */
    bool contains(const Gf2x &v) const { return v.degree() < int(m_); }

    /** Reduce an arbitrary-degree polynomial using the sparse fold
     *  (word-level, allocation-free for products of field elements). */
    Gf2x reduce(const Gf2x &v) const;

    Gf2x add(const Gf2x &a, const Gf2x &b) const { return a ^ b; }

    /** Product (schoolbook 32-bit partial products + sparse reduction). */
    Gf2x mul(const Gf2x &a, const Gf2x &b) const;

    /** Product with Karatsuba full multiply. */
    Gf2x mulKaratsuba(const Gf2x &a, const Gf2x &b) const;

    /** Square (bit-spread + sparse reduction). */
    Gf2x sqr(const Gf2x &a) const;

    /** a^(2^k) by k repeated squarings. */
    Gf2x sqrN(const Gf2x &a, unsigned k) const;

    /**
     * Multiplicative inverse by the Itoh-Tsujii addition chain
     * (the method the paper's processor uses; Sec. 2.4.3 / 3.3.4).
     * inv(0) == 0.  Counts field mults/squarings if pointers given.
     */
    Gf2x invItohTsujii(const Gf2x &a, unsigned *mults = nullptr,
                       unsigned *sqrs = nullptr) const;

    /** Multiplicative inverse by the binary extended Euclidean algorithm
     *  (reference implementation; systolic-EA analog). inv(0) == 0. */
    Gf2x invEuclid(const Gf2x &a) const;

    /** Default inverse (Itoh-Tsujii). */
    Gf2x inv(const Gf2x &a) const { return invItohTsujii(a); }

    /** a / b; fatal if b == 0. */
    Gf2x div(const Gf2x &a, const Gf2x &b) const;

    /** A reproducible pseudo-random field element. */
    Gf2x randomElement(uint64_t seed) const;

  private:
    /** Fold all terms of degree >= m in place (sparse word-level). */
    void reduceWordsInPlace(std::vector<uint64_t> &v) const;

    unsigned m_;
    std::vector<unsigned> exponents_; // descending, includes m and 0
    std::vector<unsigned> tail_;      // exponents_ without the leading m
    Gf2x modulus_;
};

} // namespace gfp

#endif // GFP_GF_BINARY_FIELD_H
