/**
 * @file
 * Dense polynomials with coefficients in a small GF(2^m) field.
 *
 * Used by the RS/BCH coding layer: generator polynomials, syndromes as a
 * polynomial, the error-locator polynomial Lambda(x), the error-evaluator
 * polynomial Omega(x), and their evaluation/derivative for Chien search
 * and Forney's algorithm.
 *
 * Coefficients are stored low-degree-first: coeff(i) multiplies x^i.
 */

#ifndef GFP_GF_POLY_H
#define GFP_GF_POLY_H

#include <initializer_list>
#include <string>
#include <vector>

#include "gf/field.h"

namespace gfp {

class GFPoly
{
  public:
    /** The zero polynomial over @p field. */
    explicit GFPoly(const GFField &field);

    /** Polynomial from low-degree-first coefficients. */
    GFPoly(const GFField &field, std::vector<GFElem> coeffs);

    GFPoly(const GFField &field, std::initializer_list<GFElem> coeffs);

    /** The constant polynomial c. */
    static GFPoly constant(const GFField &field, GFElem c);

    /** The monomial c * x^degree. */
    static GFPoly monomial(const GFField &field, GFElem c, unsigned degree);

    const GFField &field() const { return *field_; }

    /** Degree; -1 for the zero polynomial. */
    int degree() const { return static_cast<int>(coeffs_.size()) - 1; }

    bool isZero() const { return coeffs_.empty(); }

    /** Coefficient of x^i (0 beyond the stored degree). */
    GFElem coeff(unsigned i) const
    {
        return i < coeffs_.size() ? coeffs_[i] : 0;
    }

    /** Leading coefficient; 0 for the zero polynomial. */
    GFElem leading() const { return coeffs_.empty() ? 0 : coeffs_.back(); }

    const std::vector<GFElem> &coeffs() const { return coeffs_; }

    /** Set coefficient of x^i, extending or trimming as needed. */
    void setCoeff(unsigned i, GFElem value);

    GFPoly operator+(const GFPoly &o) const; // == subtraction in char 2
    GFPoly operator*(const GFPoly &o) const;
    GFPoly operator*(GFElem scalar) const;

    /** Multiply by x^k. */
    GFPoly shift(unsigned k) const;

    /** Quotient and remainder of division by @p divisor. */
    void divmod(const GFPoly &divisor, GFPoly &quotient,
                GFPoly &remainder) const;

    GFPoly mod(const GFPoly &divisor) const;

    /** Truncate to terms of degree < @p k (i.e. mod x^k). */
    GFPoly truncated(unsigned k) const;

    /** Evaluate at @p x by Horner's rule. */
    GFElem eval(GFElem x) const;

    /** Formal derivative (odd-degree terms drop an x; even terms vanish). */
    GFPoly derivative() const;

    bool operator==(const GFPoly &o) const;

    /** Human-readable rendering, e.g. "3*x^2 + x + 5". */
    std::string toString() const;

  private:
    void normalize();

    const GFField *field_;
    std::vector<GFElem> coeffs_; // low-degree first, no trailing zeros
};

} // namespace gfp

#endif // GFP_GF_POLY_H
