/**
 * @file
 * Catalog of irreducible / primitive polynomials over GF(2).
 *
 * Polynomials are encoded as integers: bit i set means the x^i term is
 * present, so x^8 + x^4 + x^3 + x + 1 is 0x11b.  The catalog covers the
 * small fields the GF processor's 8-bit datapath supports (m = 2..8, the
 * paper's configurable range) plus larger fields used by BCH/RS code
 * construction (m up to 16).
 */

#ifndef GFP_GF_POLYS_H
#define GFP_GF_POLYS_H

#include <cstdint>
#include <vector>

namespace gfp {

/** The AES field polynomial x^8 + x^4 + x^3 + x + 1 (irreducible, not
 *  primitive). */
constexpr uint32_t kAesPoly = 0x11b;

/** The conventional RS/BCH GF(2^8) primitive polynomial
 *  x^8 + x^4 + x^3 + x^2 + 1. */
constexpr uint32_t kRsPoly = 0x11d;

/**
 * Default primitive polynomial for GF(2^m), 2 <= m <= 16.
 * These are the standard tables used by most coding-theory texts.
 */
uint32_t defaultPrimitivePoly(unsigned m);

/** All irreducible polynomials of degree @p m (2 <= m <= 8). */
std::vector<uint32_t> irreduciblePolys(unsigned m);

/** True if @p poly (degree @p m) is irreducible over GF(2). */
bool isIrreducible(uint32_t poly, unsigned m);

/** True if @p poly (degree @p m) is primitive (x generates GF(2^m)^*). */
bool isPrimitive(uint32_t poly, unsigned m);

} // namespace gfp

#endif // GFP_GF_POLYS_H
