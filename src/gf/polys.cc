#include "gf/polys.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace gfp {

uint32_t
defaultPrimitivePoly(unsigned m)
{
    switch (m) {
      case 2: return 0x7;          // x^2 + x + 1
      case 3: return 0xb;          // x^3 + x + 1
      case 4: return 0x13;         // x^4 + x + 1
      case 5: return 0x25;         // x^5 + x^2 + 1
      case 6: return 0x43;         // x^6 + x + 1
      case 7: return 0x89;         // x^7 + x^3 + 1
      case 8: return 0x11d;        // x^8 + x^4 + x^3 + x^2 + 1
      case 9: return 0x211;        // x^9 + x^4 + 1
      case 10: return 0x409;       // x^10 + x^3 + 1
      case 11: return 0x805;       // x^11 + x^2 + 1
      case 12: return 0x1053;      // x^12 + x^6 + x^4 + x + 1
      case 13: return 0x201b;      // x^13 + x^4 + x^3 + x + 1
      case 14: return 0x4443;      // x^14 + x^10 + x^6 + x + 1
      case 15: return 0x8003;      // x^15 + x + 1
      case 16: return 0x1100b;     // x^16 + x^12 + x^3 + x + 1
      default:
        GFP_FATAL("no default primitive polynomial for m=%u "
                  "(supported: 2..16)", m);
    }
}

namespace {

/** Remainder of GF(2) polynomial division a mod b. */
uint64_t
gf2Mod(uint64_t a, uint64_t b)
{
    GFP_ASSERT(b != 0);
    int db = degree(b);
    int da = degree(a);
    while (da >= db) {
        a ^= b << (da - db);
        da = degree(a);
    }
    return a;
}

/** Carry-less 64-bit truncated product (low 64 bits). */
uint64_t
gf2MulLow(uint64_t a, uint64_t b)
{
    uint64_t acc = 0;
    while (b) {
        unsigned i = static_cast<unsigned>(std::countr_zero(b));
        acc ^= a << i;
        b &= b - 1;
    }
    return acc;
}

} // anonymous namespace

bool
isIrreducible(uint32_t poly, unsigned m)
{
    if (m == 0 || degree(poly) != static_cast<int>(m))
        return false;
    if ((poly & 1) == 0)
        return false; // divisible by x
    // Trial division by every polynomial of degree 1 .. m/2.  For the
    // degrees this library supports (m <= 16) this is at most 2^8 trial
    // divisors and is plenty fast.
    for (unsigned d = 1; d <= m / 2; ++d) {
        for (uint32_t q = (1u << d); q < (2u << d); ++q) {
            if (gf2Mod(poly, q) == 0)
                return false;
        }
    }
    return true;
}

bool
isPrimitive(uint32_t poly, unsigned m)
{
    if (!isIrreducible(poly, m))
        return false;
    // x is a generator iff its multiplicative order is 2^m - 1.
    // Walk powers of x; the order always divides 2^m - 1, so it is enough
    // to check that no earlier power returns to 1.
    uint64_t order = (uint64_t{1} << m) - 1;
    uint64_t v = 2; // the element x
    for (uint64_t i = 1; i < order; ++i) {
        if (v == 1)
            return false;
        v = gf2Mod(gf2MulLow(v, 2), poly);
    }
    return v == 1;
}

std::vector<uint32_t>
irreduciblePolys(unsigned m)
{
    GFP_ASSERT(m >= 2 && m <= 8, "m=%u", m);
    std::vector<uint32_t> out;
    for (uint32_t p = (1u << m) | 1; p < (2u << m); p += 2) {
        if (isIrreducible(p, m))
            out.push_back(p);
    }
    return out;
}

} // namespace gfp
