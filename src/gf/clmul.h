/**
 * @file
 * Host-accelerated word-level carry-less multiplication.
 *
 * The wide-field hot paths (K-233 field multiplication, RS/BCH host
 * reference arithmetic) bottom out in 64 x 64 -> 128 bit GF(2)
 * products.  This module picks the fastest implementation the host
 * offers, detected once at runtime:
 *
 *  - x86-64 PCLMULQDQ (one instruction per product),
 *  - AArch64 PMULL (when compiled with crypto extensions),
 *  - a portable branch-free fallback built from masked integer
 *    multiplies (the BearSSL "holes" technique) — no per-bit loop.
 *
 * Every accelerated path is differentially proven against the bit-serial
 * clmul64() reference from common/bitops.h by tests/test_gf2x.cc, and
 * benches/tests can pin the portable path with setClmulPortableOnly()
 * to measure or cross-check the backends.
 */

#ifndef GFP_GF_CLMUL_H
#define GFP_GF_CLMUL_H

#include <cstdint>

namespace gfp {

/** Which carry-less multiply implementation serves clmulWide(). */
struct ClmulBackendInfo
{
    const char *name;  ///< "pclmul", "pmull", or "portable"
    bool accelerated;  ///< true when a hardware instruction is used
};

/** The backend runtime detection selected for this host. */
const ClmulBackendInfo &clmulBackend();

/** 64 x 64 -> 128 bit carry-less product: hi:lo = a (x) b over GF(2). */
void clmulWide(uint64_t a, uint64_t b, uint64_t &hi, uint64_t &lo);

/**
 * Force (or release) the portable software path, ignoring hardware
 * support — used by benches to measure the accelerated-vs-portable
 * ratio and by tests to cross-check both implementations.  Returns the
 * previous setting.
 */
bool setClmulPortableOnly(bool portable_only);

/**
 * Portable branch-free 64 x 64 -> 128 carry-less product (always the
 * software implementation, regardless of backend selection).
 */
void clmulWidePortable(uint64_t a, uint64_t b, uint64_t &hi, uint64_t &lo);

} // namespace gfp

#endif // GFP_GF_CLMUL_H
