#include "gf/field.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "gf/polys.h"

namespace gfp {

GFField::GFField(unsigned m, uint32_t poly) : m_(m), poly_(poly)
{
    if (m < 2 || m > 16)
        GFP_FATAL("GF(2^m) supports m in 2..16, got m=%u", m);
    if (poly_ == 0)
        poly_ = defaultPrimitivePoly(m);
    if (!isIrreducible(poly_, m))
        GFP_FATAL("polynomial 0x%x is not irreducible of degree %u",
                  poly_, m);
    primitive_ = isPrimitive(poly_, m);
    buildTables();
    // The tables are built with the carry-less path; only once they are
    // complete can arithmetic dispatch through them.  For the datapath
    // sizes (m <= 8) the full log/exp tables fit in a few hundred bytes
    // and a lookup beats the reduction loop by a wide margin.
    table_dispatch_ = m_ <= 8;
}

GFElem
GFField::reduce(uint32_t full_product) const
{
    // Polynomial reduction: repeatedly cancel the leading term with a
    // shifted copy of the field polynomial.  The input has at most
    // 2m - 1 significant bits.
    int dp = static_cast<int>(m_);
    int d = degree(full_product);
    while (d >= dp) {
        full_product ^= poly_ << (d - dp);
        d = degree(full_product);
    }
    return static_cast<GFElem>(full_product);
}

GFElem
GFField::mul(GFElem a, GFElem b) const
{
    if (table_dispatch_)
        return (a && b) ? exp_[log_[a] + log_[b]] : 0;
    return mulCarryless(a, b);
}

GFElem
GFField::mulCarryless(GFElem a, GFElem b) const
{
    uint32_t full = clmul16(a, b);
    return reduce(full);
}

GFElem
GFField::mulTable(GFElem a, GFElem b) const
{
    // The software-baseline path (paper Table 6, left column):
    //   idx = (log[a] + log[b]) mod (2^m - 1);  result = exp[idx]
    if (a == 0 || b == 0)
        return 0;
    uint32_t idx = log_[a] + log_[b];
    // exp_ is doubled in length so no explicit modulo is needed here;
    // kernels on the baseline core do pay for the modulo.
    return exp_[idx];
}

GFElem
GFField::sqr(GFElem a) const
{
    if (table_dispatch_)
        return a ? exp_[2u * log_[a]] : 0;
    // Squaring in GF(2^m) spreads the input bits into even positions
    // (the "thinned" product of Fig. 5(c)) and reduces.
    uint32_t spread = 0;
    for (unsigned i = 0; i < m_; ++i)
        spread |= bit(a, i) << (2 * i);
    return reduce(spread);
}

GFElem
GFField::inv(GFElem a) const
{
    if (a == 0)
        return 0;
    if (table_dispatch_)
        return exp_[groupOrder() - log_[a]];
    // a^-1 = a^(2^m - 2); computed Itoh-Tsujii style with squarings and
    // multiplies, the same dataflow the hardware inverse network uses.
    GFElem result = 1;
    GFElem sq = a;                 // a^(2^0)
    for (unsigned i = 1; i < m_; ++i) {
        sq = sqr(sq);              // a^(2^i)
        result = mul(result, sq);  // accumulate a^(2^1 + ... + 2^(m-1))
    }
    return result;                 // = a^(2^m - 2)
}

GFElem
GFField::div(GFElem a, GFElem b) const
{
    if (b == 0)
        GFP_FATAL("GF division by zero");
    return mul(a, inv(b));
}

GFElem
GFField::pow(GFElem a, uint32_t e) const
{
    if (e == 0)
        return 1;
    if (a == 0)
        return 0;
    if (table_dispatch_) {
        uint64_t idx = uint64_t{log_[a]} * e % groupOrder();
        return exp_[idx];
    }
    GFElem result = 1;
    GFElem base = a;
    while (e) {
        if (e & 1)
            result = mul(result, base);
        base = sqr(base);
        e >>= 1;
    }
    return result;
}

uint32_t
GFField::log(GFElem a) const
{
    if (a == 0)
        GFP_FATAL("log of zero in GF(2^%u)", m_);
    return log_[a];
}

GFElem
GFField::exp(uint32_t i) const
{
    return exp_[i % groupOrder()];
}

void
GFField::buildTables()
{
    const uint32_t group = groupOrder();

    // Find a generator: x (== 2) when the polynomial is primitive;
    // otherwise search.  Every finite field's multiplicative group is
    // cyclic, so a generator always exists.
    auto orderOf = [&](GFElem g) {
        uint32_t n = 1;
        GFElem v = g;
        while (v != 1) {
            v = mul(v, g);
            ++n;
            GFP_ASSERT(n <= group);
        }
        return n;
    };

    generator_ = 2;
    if (!primitive_) {
        generator_ = 0;
        for (GFElem g = 2; g < order(); ++g) {
            if (orderOf(g) == group) {
                generator_ = g;
                break;
            }
        }
        GFP_ASSERT(generator_ != 0, "no generator found (not a field?)");
    }

    exp_.assign(2 * group, 0);
    log_.assign(order(), 0);
    GFElem v = 1;
    for (uint32_t i = 0; i < group; ++i) {
        exp_[i] = v;
        exp_[i + group] = v; // doubled table: skip the mod in lookups
        log_[v] = static_cast<uint16_t>(i);
        v = mul(v, generator_);
    }
    GFP_ASSERT(v == 1, "generator order mismatch");
}

} // namespace gfp
