#include "gf/clmul.h"

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GFP_CLMUL_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#if defined(__ARM_FEATURE_AES) || defined(__ARM_FEATURE_CRYPTO)
#define GFP_CLMUL_PMULL 1
#endif
#endif

namespace gfp {

namespace {

std::atomic<bool> portable_only{false};

/**
 * Multiply one "hole" lane: with operand bits spaced every 4 positions,
 * an ordinary integer multiply cannot carry across lanes, so its result
 * is the carry-less product restricted to that spacing (BearSSL's
 * ghash_ctmul64 technique).
 */
inline uint64_t
bmul64(uint64_t x, uint64_t y)
{
    const uint64_t m0 = 0x1111111111111111ull;
    const uint64_t m1 = m0 << 1, m2 = m0 << 2, m3 = m0 << 3;
    uint64_t x0 = x & m0, x1 = x & m1, x2 = x & m2, x3 = x & m3;
    uint64_t y0 = y & m0, y1 = y & m1, y2 = y & m2, y3 = y & m3;
    uint64_t z0 = (x0 * y0) ^ (x1 * y3) ^ (x2 * y2) ^ (x3 * y1);
    uint64_t z1 = (x0 * y1) ^ (x1 * y0) ^ (x2 * y3) ^ (x3 * y2);
    uint64_t z2 = (x0 * y2) ^ (x1 * y1) ^ (x2 * y0) ^ (x3 * y3);
    uint64_t z3 = (x0 * y3) ^ (x1 * y2) ^ (x2 * y1) ^ (x3 * y0);
    return (z0 & m0) | (z1 & m1) | (z2 & m2) | (z3 & m3);
}

/** Reverse the bit order of a 64-bit word. */
inline uint64_t
rev64(uint64_t v)
{
    v = ((v >> 1) & 0x5555555555555555ull) |
        ((v & 0x5555555555555555ull) << 1);
    v = ((v >> 2) & 0x3333333333333333ull) |
        ((v & 0x3333333333333333ull) << 2);
    v = ((v >> 4) & 0x0f0f0f0f0f0f0f0full) |
        ((v & 0x0f0f0f0f0f0f0f0full) << 4);
    return __builtin_bswap64(v);
}

#if defined(GFP_CLMUL_X86)

__attribute__((target("pclmul,sse2"))) void
clmulHw(uint64_t a, uint64_t b, uint64_t &hi, uint64_t &lo)
{
    __m128i va = _mm_set_epi64x(0, static_cast<long long>(a));
    __m128i vb = _mm_set_epi64x(0, static_cast<long long>(b));
    __m128i p = _mm_clmulepi64_si128(va, vb, 0x00);
    lo = static_cast<uint64_t>(_mm_cvtsi128_si64(p));
    hi = static_cast<uint64_t>(
        _mm_cvtsi128_si64(_mm_unpackhi_epi64(p, p)));
}

bool
detectHw()
{
    return __builtin_cpu_supports("pclmul");
}

const char *const kHwName = "pclmul";

#elif defined(GFP_CLMUL_PMULL)

void
clmulHw(uint64_t a, uint64_t b, uint64_t &hi, uint64_t &lo)
{
    poly128_t p = vmull_p64(static_cast<poly64_t>(a),
                            static_cast<poly64_t>(b));
    lo = static_cast<uint64_t>(p);
    hi = static_cast<uint64_t>(p >> 64);
}

bool
detectHw()
{
    // The crypto extension was required at compile time; any CPU this
    // binary runs on has it.
    return true;
}

const char *const kHwName = "pmull";

#else

void
clmulHw(uint64_t, uint64_t, uint64_t &hi, uint64_t &lo)
{
    hi = lo = 0;
}

bool
detectHw()
{
    return false;
}

const char *const kHwName = "none";

#endif

bool
hwAvailable()
{
    static const bool available = detectHw();
    return available;
}

} // anonymous namespace

void
clmulWidePortable(uint64_t a, uint64_t b, uint64_t &hi, uint64_t &lo)
{
    lo = bmul64(a, b);
    // The product has 127 significant bits; the high half is the low
    // half of the bit-reversed product shifted into place.
    hi = rev64(bmul64(rev64(a), rev64(b))) >> 1;
}

void
clmulWide(uint64_t a, uint64_t b, uint64_t &hi, uint64_t &lo)
{
    if (hwAvailable() && !portable_only.load(std::memory_order_relaxed)) {
        clmulHw(a, b, hi, lo);
        return;
    }
    clmulWidePortable(a, b, hi, lo);
}

const ClmulBackendInfo &
clmulBackend()
{
    static const ClmulBackendInfo hw{kHwName, true};
    static const ClmulBackendInfo sw{"portable", false};
    if (hwAvailable() && !portable_only.load(std::memory_order_relaxed))
        return hw;
    return sw;
}

bool
setClmulPortableOnly(bool value)
{
    return portable_only.exchange(value);
}

} // namespace gfp
