#include "gf/poly.h"

#include "common/logging.h"
#include "common/strutil.h"

namespace gfp {

GFPoly::GFPoly(const GFField &field) : field_(&field) {}

GFPoly::GFPoly(const GFField &field, std::vector<GFElem> coeffs)
    : field_(&field), coeffs_(std::move(coeffs))
{
    for (GFElem c : coeffs_)
        GFP_ASSERT(field_->contains(c), "coefficient 0x%x out of field", c);
    normalize();
}

GFPoly::GFPoly(const GFField &field, std::initializer_list<GFElem> coeffs)
    : GFPoly(field, std::vector<GFElem>(coeffs))
{
}

GFPoly
GFPoly::constant(const GFField &field, GFElem c)
{
    return GFPoly(field, {c});
}

GFPoly
GFPoly::monomial(const GFField &field, GFElem c, unsigned degree)
{
    std::vector<GFElem> coeffs(degree + 1, 0);
    coeffs[degree] = c;
    return GFPoly(field, std::move(coeffs));
}

void
GFPoly::setCoeff(unsigned i, GFElem value)
{
    GFP_ASSERT(field_->contains(value));
    if (i >= coeffs_.size()) {
        if (value == 0)
            return;
        coeffs_.resize(i + 1, 0);
    }
    coeffs_[i] = value;
    normalize();
}

void
GFPoly::normalize()
{
    while (!coeffs_.empty() && coeffs_.back() == 0)
        coeffs_.pop_back();
}

GFPoly
GFPoly::operator+(const GFPoly &o) const
{
    GFP_ASSERT(*field_ == *o.field_);
    std::vector<GFElem> out(std::max(coeffs_.size(), o.coeffs_.size()), 0);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = coeff(i) ^ o.coeff(i);
    return GFPoly(*field_, std::move(out));
}

GFPoly
GFPoly::operator*(const GFPoly &o) const
{
    GFP_ASSERT(*field_ == *o.field_);
    if (isZero() || o.isZero())
        return GFPoly(*field_);
    std::vector<GFElem> out(coeffs_.size() + o.coeffs_.size() - 1, 0);
    for (size_t i = 0; i < coeffs_.size(); ++i) {
        if (coeffs_[i] == 0)
            continue;
        for (size_t j = 0; j < o.coeffs_.size(); ++j)
            out[i + j] ^= field_->mul(coeffs_[i], o.coeffs_[j]);
    }
    return GFPoly(*field_, std::move(out));
}

GFPoly
GFPoly::operator*(GFElem scalar) const
{
    std::vector<GFElem> out(coeffs_.size());
    for (size_t i = 0; i < coeffs_.size(); ++i)
        out[i] = field_->mul(coeffs_[i], scalar);
    return GFPoly(*field_, std::move(out));
}

GFPoly
GFPoly::shift(unsigned k) const
{
    if (isZero())
        return *this;
    std::vector<GFElem> out(coeffs_.size() + k, 0);
    std::copy(coeffs_.begin(), coeffs_.end(), out.begin() + k);
    return GFPoly(*field_, std::move(out));
}

void
GFPoly::divmod(const GFPoly &divisor, GFPoly &quotient,
               GFPoly &remainder) const
{
    GFP_ASSERT(*field_ == *divisor.field_);
    if (divisor.isZero())
        GFP_FATAL("polynomial division by zero");

    std::vector<GFElem> rem = coeffs_;
    int dd = divisor.degree();
    GFElem lead_inv = field_->inv(divisor.leading());
    std::vector<GFElem> quot;
    int dr = static_cast<int>(rem.size()) - 1;
    if (dr >= dd)
        quot.assign(dr - dd + 1, 0);

    while (dr >= dd) {
        if (rem[dr] != 0) {
            GFElem factor = field_->mul(rem[dr], lead_inv);
            quot[dr - dd] = factor;
            for (int i = 0; i <= dd; ++i)
                rem[dr - dd + i] ^=
                    field_->mul(factor, divisor.coeff(i));
        }
        --dr;
    }
    quotient = GFPoly(*field_, std::move(quot));
    remainder = GFPoly(*field_, std::move(rem));
}

GFPoly
GFPoly::mod(const GFPoly &divisor) const
{
    GFPoly q(*field_), r(*field_);
    divmod(divisor, q, r);
    return r;
}

GFPoly
GFPoly::truncated(unsigned k) const
{
    std::vector<GFElem> out(coeffs_.begin(),
                            coeffs_.begin() +
                                std::min<size_t>(k, coeffs_.size()));
    return GFPoly(*field_, std::move(out));
}

GFElem
GFPoly::eval(GFElem x) const
{
    GFElem acc = 0;
    for (size_t i = coeffs_.size(); i-- > 0;)
        acc = field_->mul(acc, x) ^ coeffs_[i];
    return acc;
}

GFPoly
GFPoly::derivative() const
{
    // In characteristic 2 the derivative keeps exactly the odd-degree
    // terms: d/dx x^(2k+1) = x^(2k), d/dx x^(2k) = 0.
    if (coeffs_.size() <= 1)
        return GFPoly(*field_);
    std::vector<GFElem> out(coeffs_.size() - 1, 0);
    for (size_t i = 1; i < coeffs_.size(); i += 2)
        out[i - 1] = coeffs_[i];
    return GFPoly(*field_, std::move(out));
}

bool
GFPoly::operator==(const GFPoly &o) const
{
    return *field_ == *o.field_ && coeffs_ == o.coeffs_;
}

std::string
GFPoly::toString() const
{
    if (isZero())
        return "0";
    std::string out;
    for (size_t i = coeffs_.size(); i-- > 0;) {
        if (coeffs_[i] == 0)
            continue;
        if (!out.empty())
            out += " + ";
        if (i == 0 || coeffs_[i] != 1)
            out += strprintf("%u", coeffs_[i]);
        if (i >= 1) {
            if (coeffs_[i] != 1)
                out += "*";
            out += (i == 1) ? "x" : strprintf("x^%zu", i);
        }
    }
    return out;
}

} // namespace gfp
