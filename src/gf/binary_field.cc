#include "gf/binary_field.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace gfp {

BinaryField::BinaryField(unsigned m, std::vector<unsigned> exponents)
    : m_(m), exponents_(std::move(exponents))
{
    GFP_ASSERT(m_ >= 2, "field degree too small");
    std::sort(exponents_.rbegin(), exponents_.rend());
    if (exponents_.empty() || exponents_.front() != m_ ||
        exponents_.back() != 0) {
        GFP_FATAL("binary field polynomial must include x^m and 1");
    }
    for (size_t i = 1; i + 1 < exponents_.size(); ++i) {
        if (exponents_[i] >= m_)
            GFP_FATAL("middle term exponent %u >= m", exponents_[i]);
    }
    modulus_ = Gf2x::fromExponents(exponents_);
    tail_.assign(exponents_.begin() + 1, exponents_.end());
}

BinaryField
BinaryField::nist(const std::string &name)
{
    if (name == "113")
        return BinaryField(113, {113, 9, 0});
    if (name == "131")
        return BinaryField(131, {131, 8, 3, 2, 0});
    if (name == "163")
        return BinaryField(163, {163, 7, 6, 3, 0});
    if (name == "233")
        return BinaryField(233, {233, 74, 0});
    if (name == "283")
        return BinaryField(283, {283, 12, 7, 5, 0});
    if (name == "409")
        return BinaryField(409, {409, 87, 0});
    if (name == "571")
        return BinaryField(571, {571, 10, 5, 2, 0});
    GFP_FATAL("unknown NIST binary field '%s'", name.c_str());
}

void
BinaryField::reduceWordsInPlace(std::vector<uint64_t> &v) const
{
    // Sparse fold, word at a time: with p(x) = x^m + t(x), a high part
    // H * x^(m+k) is congruent to H * x^k * t(x).  Each pass folds
    // every whole word above the m boundary, then the partial word
    // straddling it; a fold near the boundary can push bits back above
    // m (middle exponents close to m), so iterate until clean — two
    // passes for every NIST trinomial/pentanomial.
    const size_t rwords = (m_ + 63) / 64; // words holding bits < m
    const unsigned mb = m_ % 64;          // bits of word rwords-1 below m

    auto xorShifted = [&v](uint64_t t, unsigned pos) {
        size_t w = pos / 64;
        unsigned s = pos % 64;
        v[w] ^= t << s;
        if (s && w + 1 < v.size())
            v[w + 1] ^= t >> (64 - s);
    };

    for (;;) {
        size_t n = v.size();
        while (n > rwords && v[n - 1] == 0)
            --n;
        uint64_t straddle = mb ? (v[rwords - 1] >> mb) : 0;
        if (n == rwords && straddle == 0)
            break;
        // Whole words entirely above the boundary, top down.
        for (size_t i = n; i-- > rwords;) {
            uint64_t t = v[i];
            if (!t)
                continue;
            v[i] = 0;
            unsigned base = static_cast<unsigned>(i * 64) - m_;
            for (unsigned e : tail_)
                xorShifted(t, base + e);
        }
        // The partial word straddling bit m.
        if (mb) {
            uint64_t t = v[rwords - 1] >> mb;
            if (t) {
                v[rwords - 1] &= (uint64_t{1} << mb) - 1;
                for (unsigned e : tail_)
                    xorShifted(t, e);
            }
        }
    }
    v.resize(rwords);
}

Gf2x
BinaryField::reduce(const Gf2x &v) const
{
    if (v.degree() < static_cast<int>(m_))
        return v;
    std::vector<uint64_t> w = v.words();
    reduceWordsInPlace(w);
    return Gf2x(std::move(w));
}

Gf2x
BinaryField::mul(const Gf2x &a, const Gf2x &b) const
{
    return reduce(a.mulClmul(b));
}

Gf2x
BinaryField::mulKaratsuba(const Gf2x &a, const Gf2x &b) const
{
    return reduce(a.mulKaratsuba(b));
}

Gf2x
BinaryField::sqr(const Gf2x &a) const
{
    return reduce(a.square());
}

Gf2x
BinaryField::sqrN(const Gf2x &a, unsigned k) const
{
    Gf2x r(a);
    for (unsigned i = 0; i < k; ++i)
        r = sqr(r);
    return r;
}

Gf2x
BinaryField::invItohTsujii(const Gf2x &a, unsigned *mults,
                           unsigned *sqrs) const
{
    if (mults)
        *mults = 0;
    if (sqrs)
        *sqrs = 0;
    if (a.isZero())
        return Gf2x();

    // Itoh-Tsujii: a^-1 = (a^(2^(m-1) - 1))^2.
    // Build T(k) = a^(2^k - 1) with the addition chain from the binary
    // expansion of m-1, using T(j + k) = T(j)^(2^k) * T(k).
    unsigned e = m_ - 1;

    // Decompose e by its binary digits, MSB first.
    int top = 31 - std::countl_zero(e);
    Gf2x t = a;       // T(1)
    unsigned have = 1; // t == T(have)
    for (int i = top - 1; i >= 0; --i) {
        // T(2*have) = T(have)^(2^have) * T(have)
        Gf2x t2 = sqrN(t, have);
        if (sqrs)
            *sqrs += have;
        t = mul(t2, t);
        if (mults)
            ++*mults;
        have *= 2;
        if ((e >> i) & 1) {
            // T(have + 1) = T(have)^2 * a
            t = mul(sqr(t), a);
            if (sqrs)
                ++*sqrs;
            if (mults)
                ++*mults;
            have += 1;
        }
    }
    GFP_ASSERT(have == e, "ITA chain mismatch: %u != %u", have, e);

    Gf2x r = sqr(t);
    if (sqrs)
        ++*sqrs;
    return r;
}

Gf2x
BinaryField::invEuclid(const Gf2x &a) const
{
    if (a.isZero())
        return Gf2x();
    // Classic extended Euclid over GF(2)[x]:
    // maintain g1*a = u (mod p), g2*a = v (mod p).
    Gf2x u = reduce(a);
    Gf2x v = modulus_;
    Gf2x g1(uint64_t{1});
    Gf2x g2;
    while (!u.isOne()) {
        int j = u.degree() - v.degree();
        if (j < 0) {
            std::swap(u, v);
            std::swap(g1, g2);
            j = -j;
        }
        u ^= v.shiftLeft(j);
        g1 ^= g2.shiftLeft(j);
        GFP_ASSERT(!u.isZero(), "inverse of non-unit (modulus reducible?)");
    }
    return reduce(g1);
}

Gf2x
BinaryField::div(const Gf2x &a, const Gf2x &b) const
{
    if (b.isZero())
        GFP_FATAL("binary field division by zero");
    return mul(a, inv(b));
}

Gf2x
BinaryField::randomElement(uint64_t seed) const
{
    return Gf2x::random(m_, seed);
}

} // namespace gfp
