/**
 * @file
 * The per-core driver that plugs a CompiledProgram into Core::run().
 *
 * The CompiledProgram is immutable and shared across every core that
 * runs the program (the batch engine compiles once and installs one
 * CoreTranslation per worker core); all mutable run state — the
 * JitContext, the per-block execution/taken counters, the GF helper
 * tables, the code-epoch validation cache — lives here, one instance
 * per core, so translated dispatch needs no locks.
 *
 * Responsibilities, in entry order:
 *   1. gate the entry: pc must head a translated block, the code epoch
 *      must (re)validate against the compiled words, the GFAU config
 *      must be valid when the program uses GF ops, and there must be
 *      watchdog budget left;
 *   2. fill the JitContext and run the generated code (native or
 *      threaded — CompiledProgram::run chooses);
 *   3. reconstruct architectural statistics: CycleStats via the linear
 *      addScaled identity over the block counters, the per-PC profile
 *      via bulk per-instruction replay, the deopted prefix per
 *      instruction — bit-identical to single stepping;
 *   4. publish pc/flags/halted and report the store span to the memory
 *      so the dirty window (batch-job recycling) stays truthful.
 */

#ifndef GFP_JIT_CORE_TRANSLATION_H
#define GFP_JIT_CORE_TRANSLATION_H

#include <memory>
#include <vector>

#include "jit/gf_tables.h"
#include "jit/translator.h"
#include "sim/translation.h"

namespace gfp::jit {

class CoreTranslation final : public Translation
{
  public:
    explicit CoreTranslation(std::shared_ptr<const CompiledProgram> cp);

    bool run(Core &core, RunResult &res, uint64_t max_instrs) override;
    std::string describe() const override;

    const CompiledProgram &compiled() const { return *cp_; }

    /** Times translated code was entered / times a guard deopted. */
    uint64_t entries() const { return entries_; }
    uint64_t deopts() const { return deopts_; }

  private:
    std::shared_ptr<const CompiledProgram> cp_;
    JitContext ctx_;
    /** Config-keyed table cache: kernels that reconfigure the GFAU
     *  mid-run (AES alternates field and ring configs at 13 gfcfg
     *  sites) must not rebuild the 64K-entry mul table on every
     *  translated entry.  One ~64 KiB set per distinct packed config,
     *  built once per core; lookup by key is a linear scan over the
     *  handful a real kernel uses. */
    std::vector<std::unique_ptr<JitGfTables>> tables_;
    JitGfTables &tablesFor(const GFConfig &cfg);
    std::vector<uint64_t> exec_;
    std::vector<uint64_t> taken_;

    // Code-epoch validation cache: entry revalidates (by memcmp against
    // the compiled words) only when the epoch moved, and remembers a
    // failed epoch so a divergent program isn't re-compared every
    // iteration of the run loop.
    uint64_t valid_epoch_ = UINT64_MAX;
    uint64_t failed_epoch_ = UINT64_MAX;

    uint64_t entries_ = 0;
    uint64_t deopts_ = 0;
};

/** Convenience: wrap @p cp for installation via Core::setTranslation
 *  (null in, null out — callers forward translate() results). */
std::unique_ptr<Translation>
makeCoreTranslation(std::shared_ptr<const CompiledProgram> cp);

} // namespace gfp::jit

#endif // GFP_JIT_CORE_TRANSLATION_H
