/**
 * @file
 * x86-64 template backend.
 *
 * Copy-patches one short host-code template per guest instruction into
 * a W^X code cache.  Host register convention (SysV, all callee-saved
 * so the GF helper calls need no spills):
 *
 *   rbx  JitContext*            r14  guest memory size
 *   r12  guest register file    r15  remaining watchdog budget
 *   r13  guest memory base
 *
 * Guest NZCV lives in the context's flag bytes: `cmp` templates end in
 * four setcc stores (sets/setz/setae/seto map exactly to the guest's
 * n/z/c/v definitions), conditional branches re-test the bytes.  That
 * keeps flags correct across helper calls and across every exit
 * without a sync step.
 *
 * Every template carries the same guards the threaded fallback
 * (jit/backend_threaded.cc — the semantic reference) applies: block
 * budget at entry, bounds on every access, watch-limit on every store,
 * entry-table membership on every indirect branch.  Guard failures
 * jump to per-instruction deopt stubs emitted after each block, which
 * record (pc, block, k) and leave through the shared epilogue with
 * nothing committed for the faulting instruction.
 */

#include <cstring>

#include "common/logging.h"
#include "jit/code_cache.h"
#include "jit/gf_tables.h"
#include "jit/translator.h"

namespace gfp::jit {

namespace {

// Context-field byte offsets (static_asserted in jit/context.h).
constexpr uint8_t kOffMemSize = 16;  // unused: cached in r14
constexpr uint8_t kOffWatch = 24;
constexpr uint8_t kOffBudget = 32;
constexpr uint8_t kOffExec = 40;
constexpr uint8_t kOffTaken = 48;
constexpr uint8_t kOffEntries = 56;
constexpr uint8_t kOffGf = 64;
constexpr uint8_t kOffFlagN = 72;
constexpr uint8_t kOffFlagZ = 73;
constexpr uint8_t kOffFlagC = 74;
constexpr uint8_t kOffFlagV = 75;
constexpr uint8_t kOffExitPc = 76;
constexpr uint8_t kOffExitReason = 80;
constexpr uint8_t kOffDeoptBlock = 84;
constexpr uint8_t kOffDeoptK = 88;
constexpr uint8_t kOffDirtyLo = 96;
constexpr uint8_t kOffDirtyHi = 104;

// jcc condition nibbles (0F 8x rel32).
constexpr uint8_t kCcB = 0x2;  // unsigned <
constexpr uint8_t kCcAe = 0x3; // unsigned >=
constexpr uint8_t kCcE = 0x4;
constexpr uint8_t kCcNe = 0x5;
constexpr uint8_t kCcBe = 0x6; // unsigned <=
constexpr uint8_t kCcA = 0x7;  // unsigned >

/** Minimal one-pass assembler: rel32 labels, byte emission. */
class Asm
{
  public:
    std::vector<uint8_t> buf;

    size_t
    newLabel()
    {
        labels_.push_back(-1);
        return labels_.size() - 1;
    }

    void
    bind(size_t label)
    {
        GFP_ASSERT(labels_[label] < 0, "label bound twice");
        labels_[label] = static_cast<int64_t>(buf.size());
    }

    void u8(uint8_t v) { buf.push_back(v); }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    /** jmp rel32 to @p label. */
    void
    jmp(size_t label)
    {
        u8(0xE9);
        ref(label);
    }

    /** jcc rel32 to @p label. */
    void
    jcc(uint8_t cc, size_t label)
    {
        u8(0x0F);
        u8(0x80 | cc);
        ref(label);
    }

    /** Patch every label reference; all labels must be bound. */
    void
    finalize()
    {
        for (const Fixup &f : fixups_) {
            const int64_t at = labels_[f.label];
            GFP_ASSERT(at >= 0, "unbound jit label");
            const int64_t rel = at - static_cast<int64_t>(f.at) - 4;
            GFP_ASSERT(rel >= INT32_MIN && rel <= INT32_MAX,
                       "jit branch out of rel32 range");
            const uint32_t r = static_cast<uint32_t>(rel);
            for (int i = 0; i < 4; ++i)
                buf[f.at + i] = static_cast<uint8_t>(r >> (8 * i));
        }
        fixups_.clear();
    }

  private:
    struct Fixup
    {
        size_t at;
        size_t label;
    };

    void
    ref(size_t label)
    {
        fixups_.push_back({buf.size(), label});
        u32(0);
    }

    std::vector<int64_t> labels_;
    std::vector<Fixup> fixups_;
};

/** The per-program emitter state. */
struct Emitter
{
    Asm a;
    const CompiledProgram &cp;
    size_t exit_label;                ///< shared epilogue
    std::vector<size_t> block_label;  ///< one per block

    explicit Emitter(const CompiledProgram &c) : cp(c), exit_label(0) {}

    // --- tiny template library -------------------------------------

    /** mov eax/ecx/edx, [r12 + 4*greg] (reg = 0/1/2). */
    void
    loadGuest(uint8_t hostreg, unsigned greg)
    {
        a.u8(0x41);
        a.u8(0x8B);
        a.u8(0x44 | (hostreg << 3));
        a.u8(0x24);
        a.u8(static_cast<uint8_t>(4 * greg));
    }

    /** mov [r12 + 4*greg], eax/ecx/edx. */
    void
    storeGuest(unsigned greg, uint8_t hostreg)
    {
        a.u8(0x41);
        a.u8(0x89);
        a.u8(0x44 | (hostreg << 3));
        a.u8(0x24);
        a.u8(static_cast<uint8_t>(4 * greg));
    }

    /** op eax, [r12 + 4*greg] — @p opcode is the r32, r/m32 form. */
    void
    aluGuest(uint8_t opcode, unsigned greg)
    {
        a.u8(0x41);
        a.u8(opcode);
        a.u8(0x44);
        a.u8(0x24);
        a.u8(static_cast<uint8_t>(4 * greg));
    }

    /** op eax, imm32 — @p opcode is the eax-short-form. */
    void
    aluImm(uint8_t opcode, uint32_t imm)
    {
        a.u8(opcode);
        a.u32(imm);
    }

    /** mov dword [rbx + off8], imm32. */
    void
    movCtx32(uint8_t off, uint32_t imm)
    {
        a.u8(0xC7);
        a.u8(0x43);
        a.u8(off);
        a.u32(imm);
    }

    /** Record an exit: exit_pc/exit_reason, then the epilogue. */
    void
    exitWith(uint32_t pc, uint32_t reason)
    {
        movCtx32(kOffExitPc, pc);
        movCtx32(kOffExitReason, reason);
        a.jmp(exit_label);
    }

    /** Continue at word @p w: direct jump if translated, exit if not. */
    void
    resolve(uint32_t w)
    {
        const int32_t nb = cp.blockAt(w);
        if (nb >= 0)
            a.jmp(block_label[static_cast<size_t>(nb)]);
        else
            exitWith(w * 4, kExitExternal);
    }

    /** add qword [rax + 8*idx], 1 — counter bump, rax = table base. */
    void
    bumpCounter(uint32_t idx)
    {
        a.u8(0x48);
        a.u8(0x83);
        a.u8(0x80);
        a.u32(8 * idx);
        a.u8(0x01);
    }

    /** cmp byte [rbx + off8], 0. */
    void
    cmpFlagZero(uint8_t off)
    {
        a.u8(0x80);
        a.u8(0x7B);
        a.u8(off);
        a.u8(0x00);
    }

    /** mov al, [rbx+n]; cmp al, [rbx+v]. */
    void
    cmpFlagPair(uint8_t off_a, uint8_t off_b)
    {
        a.u8(0x8A);
        a.u8(0x43);
        a.u8(off_a);
        a.u8(0x3A);
        a.u8(0x43);
        a.u8(off_b);
    }

    /** The four setcc stores after a cmp: n/z/c/v into the context. */
    void
    setFlags()
    {
        static constexpr uint8_t cc[4] = {0x98, 0x94, 0x93, 0x90};
        static constexpr uint8_t off[4] = {kOffFlagN, kOffFlagZ,
                                           kOffFlagC, kOffFlagV};
        for (int i = 0; i < 4; ++i) {
            a.u8(0x0F);
            a.u8(cc[i]);
            a.u8(0x43);
            a.u8(off[i]);
        }
    }

    /** mov rax, imm64; call rax. */
    void
    callAbs(const void *fn)
    {
        a.u8(0x48);
        a.u8(0xB8);
        a.u64(reinterpret_cast<uint64_t>(fn));
        a.u8(0xFF);
        a.u8(0xD0);
    }

    /** mov rdi, [rbx + kOffGf] — helper table argument. */
    void
    loadGfArg()
    {
        a.u8(0x48);
        a.u8(0x8B);
        a.u8(0x7B);
        a.u8(kOffGf);
    }

    /** mov esi/edx/edi, [r12 + 4*greg] for helper args. */
    void
    loadArg(uint8_t hostreg, unsigned greg)
    {
        // hostreg: 7 = edi, 6 = esi, 2 = edx
        a.u8(0x41);
        a.u8(0x8B);
        a.u8(0x44 | (hostreg << 3));
        a.u8(0x24);
        a.u8(static_cast<uint8_t>(4 * greg));
    }

    // --- per-instruction emission ----------------------------------

    /**
     * Address formation + bounds guard shared by loads and stores:
     * eax = rs1 + (imm | r[rs2]); rcx = addr + bytes; deopt unless
     * rcx <= mem_size.  Leaves the address zero-extended in rax.
     */
    void
    emitAddress(const Instr &in, bool reg_offset, unsigned bytes,
                size_t deopt)
    {
        loadGuest(0, in.rs1); // eax
        if (reg_offset)
            aluGuest(0x03, in.rs2); // add eax, [r12+4*rs2]
        else if (in.imm != 0)
            aluImm(0x05, static_cast<uint32_t>(in.imm));
        // lea rcx, [rax + bytes]
        a.u8(0x48);
        a.u8(0x8D);
        a.u8(0x48);
        a.u8(static_cast<uint8_t>(bytes));
        // cmp rcx, r14 ; ja deopt
        a.u8(0x4C);
        a.u8(0x39);
        a.u8(0xF1);
        a.jcc(kCcA, deopt);
    }

    void
    emitLoad(const Instr &in, bool reg_offset, unsigned bytes,
             size_t deopt)
    {
        emitAddress(in, reg_offset, bytes, deopt);
        // load edx from [r13 + rax]
        switch (bytes) {
          case 1: // movzx edx, byte [r13+rax]
            a.u8(0x41);
            a.u8(0x0F);
            a.u8(0xB6);
            a.u8(0x54);
            a.u8(0x05);
            a.u8(0x00);
            break;
          case 2: // movzx edx, word [r13+rax]
            a.u8(0x41);
            a.u8(0x0F);
            a.u8(0xB7);
            a.u8(0x54);
            a.u8(0x05);
            a.u8(0x00);
            break;
          default: // mov edx, [r13+rax]
            a.u8(0x41);
            a.u8(0x8B);
            a.u8(0x54);
            a.u8(0x05);
            a.u8(0x00);
            break;
        }
        storeGuest(in.rd, 2); // mov [r12+4*rd], edx
    }

    void
    emitStore(const Instr &in, bool reg_offset, unsigned bytes,
              size_t deopt)
    {
        emitAddress(in, reg_offset, bytes, deopt);
        // Watched code region: cmp rax, [rbx+kOffWatch]; jb deopt
        a.u8(0x48);
        a.u8(0x3B);
        a.u8(0x43);
        a.u8(kOffWatch);
        a.jcc(kCcB, deopt);
        // dirty_lo = min(dirty_lo, rax)
        size_t skip_lo = a.newLabel();
        a.u8(0x48); // cmp rax, [rbx+kOffDirtyLo]
        a.u8(0x3B);
        a.u8(0x43);
        a.u8(kOffDirtyLo);
        a.jcc(kCcAe, skip_lo);
        a.u8(0x48); // mov [rbx+kOffDirtyLo], rax
        a.u8(0x89);
        a.u8(0x43);
        a.u8(kOffDirtyLo);
        a.bind(skip_lo);
        // dirty_hi = max(dirty_hi, rcx)
        size_t skip_hi = a.newLabel();
        a.u8(0x48); // cmp rcx, [rbx+kOffDirtyHi]
        a.u8(0x3B);
        a.u8(0x4B);
        a.u8(kOffDirtyHi);
        a.jcc(kCcBe, skip_hi);
        a.u8(0x48); // mov [rbx+kOffDirtyHi], rcx
        a.u8(0x89);
        a.u8(0x4B);
        a.u8(kOffDirtyHi);
        a.bind(skip_hi);
        // value from r[rd] (the value register of stores), then commit
        loadGuest(2, in.rd); // edx
        switch (bytes) {
          case 1: // mov [r13+rax], dl
            a.u8(0x41);
            a.u8(0x88);
            a.u8(0x54);
            a.u8(0x05);
            a.u8(0x00);
            break;
          case 2: // mov [r13+rax], dx
            a.u8(0x66);
            a.u8(0x41);
            a.u8(0x89);
            a.u8(0x54);
            a.u8(0x05);
            a.u8(0x00);
            break;
          default: // mov [r13+rax], edx
            a.u8(0x41);
            a.u8(0x89);
            a.u8(0x54);
            a.u8(0x05);
            a.u8(0x00);
            break;
        }
    }

    /** Shift by cl (reg count) or imm; @p ext is the /r extension. */
    void
    emitShiftReg(const Instr &in, uint8_t ext)
    {
        loadGuest(1, in.rs2); // ecx (count; hardware masks by 31)
        loadGuest(0, in.rs1);
        a.u8(0xD3);
        a.u8(0xE0 | (ext << 3)); // shl/shr/sar eax, cl
        storeGuest(in.rd, 0);
    }

    void
    emitShiftImm(const Instr &in, uint8_t ext)
    {
        loadGuest(0, in.rs1);
        a.u8(0xC1);
        a.u8(0xE0 | (ext << 3));
        a.u8(static_cast<uint8_t>(in.imm & 31));
        storeGuest(in.rd, 0);
    }

    /** One body instruction (not a control-transfer terminator). */
    void
    emitInstr(const Instr &in, size_t deopt)
    {
        switch (in.op) {
          case Op::kAdd:
          case Op::kSub:
          case Op::kAnd:
          case Op::kOrr:
          case Op::kEor: {
            static constexpr uint8_t opc[] = {0x03, 0x2B, 0x23, 0x0B,
                                              0x33};
            loadGuest(0, in.rs1);
            aluGuest(opc[static_cast<int>(in.op) -
                         static_cast<int>(Op::kAdd)],
                     in.rs2);
            storeGuest(in.rd, 0);
            break;
          }
          case Op::kMul:
            loadGuest(0, in.rs1);
            // imul eax, [r12+4*rs2]
            a.u8(0x41);
            a.u8(0x0F);
            a.u8(0xAF);
            a.u8(0x44);
            a.u8(0x24);
            a.u8(static_cast<uint8_t>(4 * in.rs2));
            storeGuest(in.rd, 0);
            break;
          case Op::kLsl: emitShiftReg(in, 4); break;
          case Op::kLsr: emitShiftReg(in, 5); break;
          case Op::kAsr: emitShiftReg(in, 7); break;
          case Op::kMov:
            loadGuest(0, in.rs1);
            storeGuest(in.rd, 0);
            break;
          case Op::kCmp:
            loadGuest(0, in.rs1);
            aluGuest(0x3B, in.rs2);
            setFlags();
            break;

          case Op::kAddi:
          case Op::kSubi:
          case Op::kAndi:
          case Op::kOrri:
          case Op::kEori: {
            static constexpr uint8_t opc[] = {0x05, 0x2D, 0x25, 0x0D,
                                              0x35};
            loadGuest(0, in.rs1);
            aluImm(opc[static_cast<int>(in.op) -
                       static_cast<int>(Op::kAddi)],
                   static_cast<uint32_t>(in.imm));
            storeGuest(in.rd, 0);
            break;
          }
          case Op::kLsli: emitShiftImm(in, 4); break;
          case Op::kLsri: emitShiftImm(in, 5); break;
          case Op::kAsri: emitShiftImm(in, 7); break;
          case Op::kMovi:
            // mov dword [r12+4*rd], imm
            a.u8(0x41);
            a.u8(0xC7);
            a.u8(0x44);
            a.u8(0x24);
            a.u8(static_cast<uint8_t>(4 * in.rd));
            a.u32(static_cast<uint32_t>(in.imm) & 0xffff);
            break;
          case Op::kMovt:
            loadGuest(0, in.rd);
            aluImm(0x25, 0xffff); // and eax, 0xffff
            aluImm(0x0D, (static_cast<uint32_t>(in.imm) & 0xffff)
                             << 16); // or eax, hi
            storeGuest(in.rd, 0);
            break;
          case Op::kCmpi:
            loadGuest(0, in.rs1);
            aluImm(0x3D, static_cast<uint32_t>(in.imm));
            setFlags();
            break;

          case Op::kLdr:  emitLoad(in, false, 4, deopt); break;
          case Op::kLdrh: emitLoad(in, false, 2, deopt); break;
          case Op::kLdrb: emitLoad(in, false, 1, deopt); break;
          case Op::kLdrr:  emitLoad(in, true, 4, deopt); break;
          case Op::kLdrhr: emitLoad(in, true, 2, deopt); break;
          case Op::kLdrbr: emitLoad(in, true, 1, deopt); break;
          case Op::kStr:  emitStore(in, false, 4, deopt); break;
          case Op::kStrh: emitStore(in, false, 2, deopt); break;
          case Op::kStrb: emitStore(in, false, 1, deopt); break;
          case Op::kStrr:  emitStore(in, true, 4, deopt); break;
          case Op::kStrhr: emitStore(in, true, 2, deopt); break;
          case Op::kStrbr: emitStore(in, true, 1, deopt); break;

          case Op::kNop:
            break;

          case Op::kGfMuls:
            loadGfArg();
            loadArg(6, in.rs1); // esi
            loadArg(2, in.rs2); // edx
            callAbs(reinterpret_cast<const void *>(&gfp_jit_gfmuls));
            storeGuest(in.rd, 0);
            break;
          case Op::kGfSqs:
            loadGfArg();
            loadArg(6, in.rs1);
            callAbs(reinterpret_cast<const void *>(&gfp_jit_gfsqs));
            storeGuest(in.rd, 0);
            break;
          case Op::kGfInvs:
            loadGfArg();
            loadArg(6, in.rs1);
            callAbs(reinterpret_cast<const void *>(&gfp_jit_gfinvs));
            storeGuest(in.rd, 0);
            break;
          case Op::kGfPows:
            loadGfArg();
            loadArg(6, in.rs1);
            loadArg(2, in.rs2);
            callAbs(reinterpret_cast<const void *>(&gfp_jit_gfpows));
            storeGuest(in.rd, 0);
            break;
          case Op::kGfAdds:
            loadGuest(0, in.rs1);
            aluGuest(0x33, in.rs2); // xor — carry-less lane add
            storeGuest(in.rd, 0);
            break;
          case Op::kGf32Mul:
            loadArg(7, in.rs1); // edi
            loadArg(6, in.rs2); // esi
            callAbs(reinterpret_cast<const void *>(&gfp_jit_gf32mul));
            // rcx = rax >> 32 (hi); write hi to rd first, lo to rd2 —
            // rd == rd2 keeps the low word, like the interpreter.
            a.u8(0x48); // mov rcx, rax
            a.u8(0x89);
            a.u8(0xC1);
            a.u8(0x48); // shr rcx, 32
            a.u8(0xC1);
            a.u8(0xE9);
            a.u8(0x20);
            storeGuest(in.rd, 1);  // hi (ecx)
            storeGuest(in.rd2, 0); // lo (eax)
            break;

          default:
            GFP_FATAL("unexpected op in jit block body");
        }
    }

    /** Branch-taken test for a conditional terminator: jump to
     *  @p taken / @p not_taken per the guest flag bytes, falling
     *  through means not taken. */
    void
    emitCondTest(Op op, size_t taken, size_t not_taken)
    {
        switch (op) {
          case Op::kBeq:
            cmpFlagZero(kOffFlagZ);
            a.jcc(kCcNe, taken);
            break;
          case Op::kBne:
            cmpFlagZero(kOffFlagZ);
            a.jcc(kCcE, taken);
            break;
          case Op::kBlo:
            cmpFlagZero(kOffFlagC);
            a.jcc(kCcE, taken);
            break;
          case Op::kBhs:
            cmpFlagZero(kOffFlagC);
            a.jcc(kCcNe, taken);
            break;
          case Op::kBlt:
            cmpFlagPair(kOffFlagN, kOffFlagV);
            a.jcc(kCcNe, taken);
            break;
          case Op::kBge:
            cmpFlagPair(kOffFlagN, kOffFlagV);
            a.jcc(kCcE, taken);
            break;
          case Op::kBgt:
            cmpFlagZero(kOffFlagZ);
            a.jcc(kCcNe, not_taken);
            cmpFlagPair(kOffFlagN, kOffFlagV);
            a.jcc(kCcE, taken);
            break;
          case Op::kBle:
            cmpFlagZero(kOffFlagZ);
            a.jcc(kCcNe, taken);
            cmpFlagPair(kOffFlagN, kOffFlagV);
            a.jcc(kCcNe, taken);
            break;
          case Op::kBhi:
            cmpFlagZero(kOffFlagC);
            a.jcc(kCcE, not_taken);
            cmpFlagZero(kOffFlagZ);
            a.jcc(kCcE, taken);
            break;
          case Op::kBls:
            cmpFlagZero(kOffFlagC);
            a.jcc(kCcE, taken);
            cmpFlagZero(kOffFlagZ);
            a.jcc(kCcNe, taken);
            break;
          default:
            GFP_FATAL("not a conditional branch");
        }
    }

    void
    emitBlock(uint32_t bi)
    {
        const Block &b = cp.blocks()[bi];
        a.bind(block_label[bi]);

        // Budget gate: the whole block retires or none of it starts.
        size_t fits = a.newLabel();
        a.u8(0x49); // cmp r15, imm32
        a.u8(0x81);
        a.u8(0xFF);
        a.u32(b.len);
        a.jcc(kCcAe, fits);
        exitWith(b.first * 4, kExitBudget);
        a.bind(fits);
        a.u8(0x49); // sub r15, imm32
        a.u8(0x81);
        a.u8(0xEF);
        a.u32(b.len);
        // mov rax, [rbx+kOffExec]; add qword [rax+8*bi], 1
        a.u8(0x48);
        a.u8(0x8B);
        a.u8(0x43);
        a.u8(kOffExec);
        bumpCounter(bi);

        // Per-instruction deopt stubs, emitted after the terminator.
        std::vector<std::pair<size_t, uint32_t>> deopts;
        const uint32_t body_len =
            b.term == TermKind::kFallThrough ? b.len : b.len - 1;
        for (uint32_t k = 0; k < body_len; ++k) {
            size_t deopt = a.newLabel();
            deopts.emplace_back(deopt, k);
            emitInstr(b.body[k], deopt);
        }

        switch (b.term) {
          case TermKind::kFallThrough:
            resolve(b.next);
            break;
          case TermKind::kBranch:
            resolve(b.target);
            break;
          case TermKind::kCondBranch: {
            size_t taken = a.newLabel();
            size_t not_taken = a.newLabel();
            emitCondTest(b.body.back().op, taken, not_taken);
            a.bind(not_taken);
            resolve(b.next);
            a.bind(taken);
            a.u8(0x48); // mov rax, [rbx+kOffTaken]
            a.u8(0x8B);
            a.u8(0x43);
            a.u8(kOffTaken);
            bumpCounter(bi);
            resolve(b.target);
            break;
          }
          case TermKind::kCall:
            // lr = return address
            a.u8(0x41);
            a.u8(0xC7);
            a.u8(0x44);
            a.u8(0x24);
            a.u8(static_cast<uint8_t>(4 * kRegLr));
            a.u32((b.first + b.len) * 4);
            resolve(b.target);
            break;
          case TermKind::kIndirect: {
            const Instr &in = b.body.back();
            const unsigned src = in.op == Op::kRet ? kRegLr : in.rs1;
            size_t ext = a.newLabel();
            loadGuest(0, src); // eax = target pc
            a.u8(0xA8);        // test al, 3
            a.u8(0x03);
            a.jcc(kCcNe, ext);
            // cmp rax, code_bytes ; jae ext
            a.u8(0x48);
            a.u8(0x3D);
            a.u32(static_cast<uint32_t>(cp.words().size() * 4));
            a.jcc(kCcAe, ext);
            // rcx = entries[pc/4] = [entries + rax*2]
            a.u8(0x48); // mov rcx, [rbx+kOffEntries]
            a.u8(0x8B);
            a.u8(0x4B);
            a.u8(kOffEntries);
            a.u8(0x48); // mov rcx, [rcx + rax*2]
            a.u8(0x8B);
            a.u8(0x0C);
            a.u8(0x41);
            a.u8(0x48); // test rcx, rcx
            a.u8(0x85);
            a.u8(0xC9);
            a.jcc(kCcE, ext);
            a.u8(0xFF); // jmp rcx
            a.u8(0xE1);
            a.bind(ext);
            // exit_pc = dynamic target (eax), reason external
            a.u8(0x89); // mov [rbx+kOffExitPc], eax
            a.u8(0x43);
            a.u8(kOffExitPc);
            movCtx32(kOffExitReason, kExitExternal);
            a.jmp(exit_label);
            break;
          }
          case TermKind::kHalt:
            exitWith((b.first + b.len) * 4, kExitHalt);
            break;
        }

        // Deopt stubs: record the faulting instruction, commit nothing.
        for (const auto &[label, k] : deopts) {
            a.bind(label);
            movCtx32(kOffExitPc, (b.first + k) * 4);
            movCtx32(kOffExitReason, kExitDeopt);
            movCtx32(kOffDeoptBlock, bi);
            movCtx32(kOffDeoptK, k);
            a.jmp(exit_label);
        }
    }

    size_t
    emitEnter()
    {
        const size_t off = a.buf.size();
        // push rbx, r12..r15
        a.u8(0x53);
        a.u8(0x41);
        a.u8(0x54);
        a.u8(0x41);
        a.u8(0x55);
        a.u8(0x41);
        a.u8(0x56);
        a.u8(0x41);
        a.u8(0x57);
        a.u8(0x48); // mov rbx, rdi (ctx)
        a.u8(0x89);
        a.u8(0xFB);
        a.u8(0x4C); // mov r12, [rbx+0]  regs
        a.u8(0x8B);
        a.u8(0x23);
        a.u8(0x4C); // mov r13, [rbx+8]  mem
        a.u8(0x8B);
        a.u8(0x6B);
        a.u8(0x08);
        a.u8(0x4C); // mov r14, [rbx+16] mem_size
        a.u8(0x8B);
        a.u8(0x73);
        a.u8(0x10);
        a.u8(0x4C); // mov r15, [rbx+32] budget
        a.u8(0x8B);
        a.u8(0x7B);
        a.u8(kOffBudget);
        a.u8(0xFF); // jmp rsi (block entry)
        a.u8(0xE6);
        return off;
    }

    void
    emitExit()
    {
        a.bind(exit_label);
        a.u8(0x4C); // mov [rbx+kOffBudget], r15
        a.u8(0x89);
        a.u8(0x7B);
        a.u8(kOffBudget);
        a.u8(0x41); // pop r15..r12, rbx
        a.u8(0x5F);
        a.u8(0x41);
        a.u8(0x5E);
        a.u8(0x41);
        a.u8(0x5D);
        a.u8(0x41);
        a.u8(0x5C);
        a.u8(0x5B);
        a.u8(0xC3); // ret
    }
};

} // namespace

bool
emitX64(const CompiledProgram &cp, NativeCode &out)
{
#if !defined(__x86_64__)
    (void)cp;
    (void)out;
    return false;
#else
    Emitter e(cp);
    e.exit_label = e.a.newLabel();
    for (size_t i = 0; i < cp.blocks().size(); ++i)
        e.block_label.push_back(e.a.newLabel());

    const size_t enter_off = e.emitEnter();
    e.emitExit();
    std::vector<size_t> block_off(cp.blocks().size());
    for (uint32_t bi = 0; bi < cp.blocks().size(); ++bi) {
        block_off[bi] = e.a.buf.size();
        e.emitBlock(bi);
    }
    e.a.finalize();

    auto cache = std::make_shared<CodeCache>(e.a.buf.size());
    std::memcpy(cache->base(), e.a.buf.data(), e.a.buf.size());
    cache->finalize(e.a.buf.size());

    const uint64_t base = reinterpret_cast<uint64_t>(cache->base());
    out.cache = std::move(cache);
    out.entries.assign(cp.words().size(), 0);
    for (uint32_t bi = 0; bi < cp.blocks().size(); ++bi)
        out.entries[cp.blocks()[bi].first] = base + block_off[bi];
    out.enter = reinterpret_cast<const void *>(base + enter_off);
    out.arch = "x86-64";
    return true;
#endif
}

} // namespace gfp::jit
