/**
 * @file
 * Configuration-keyed GF lookup tables + C-ABI helpers for generated
 * code.
 *
 * The structural GFAU model (gfau/units.h) walks per-lane
 * multiply/square unit networks so its activity counters mirror the
 * paper's datapath; that fidelity is wasted inside a translated block,
 * where only the architectural result matters.  The JIT instead calls
 * the helpers below: table lookups over mul/sq/inv tables built *from
 * the same unit primitives* for the exact live configuration register
 * — bit-identical results for every config, including SEU-corrupted
 * ones with a valid width (the tables are keyed on the packed 60-bit
 * register, so a "silently wrong field" reproduces the same wrong
 * answers the interpreter computes).  gf32mul needs no tables: its
 * reduction stage is data-gated, so it routes straight through the
 * carry-less multiply backends (gf/clmul.h — PCLMUL/PMULL when the
 * host has them).
 *
 * The config cannot change while translated code runs — gfcfg is a
 * translation barrier and fault hooks force the stepping path — so the
 * driver revalidates the key once per JIT entry.  Rebuilds cost ~64K
 * unit multiplies and happen once per configuration per core.
 *
 * Divergence note: GFAU Stats / unit-activation counters do NOT
 * advance for translated GF ops (same as attaching a trace hook forces
 * stepping — microarchitectural introspection is an interpreter
 * feature).  Architectural state — registers, memory, CycleStats,
 * traps, profiles — stays bit-identical; the dispatch differential
 * suite holds exactly that.
 */

#ifndef GFP_JIT_GF_TABLES_H
#define GFP_JIT_GF_TABLES_H

#include <cstdint>

#include "gfau/config_reg.h"

namespace gfp::jit {

struct JitGfTables
{
    uint64_t key = ~0ull; ///< GFConfig::pack() the tables were built for
    bool valid = false;
    uint8_t mask = 0xff;      ///< laneMask() of that config
    uint8_t mul[256][256];    ///< GFMultUnit::multiply for every pair
    uint8_t sq[256];          ///< GFSquareUnit::square
    uint8_t inv[256];         ///< the Itoh-Tsujii network's output

    /** Rebuild for @p cfg unless already keyed to it.  @p cfg must be
     *  valid() — the driver never enters translated code otherwise. */
    void ensure(const GFConfig &cfg);
};

} // namespace gfp::jit

// C-ABI entry points the native backends call (and the threaded
// fallback shares).  `t` is a JitGfTables built for the live config.
extern "C" {
uint32_t gfp_jit_gfmuls(const void *t, uint32_t a, uint32_t b) noexcept;
uint32_t gfp_jit_gfsqs(const void *t, uint32_t a) noexcept;
uint32_t gfp_jit_gfinvs(const void *t, uint32_t a) noexcept;
uint32_t gfp_jit_gfpows(const void *t, uint32_t a, uint32_t e) noexcept;
/** 32x32 carry-less product, hi word in bits [63:32]. */
uint64_t gfp_jit_gf32mul(uint32_t a, uint32_t b) noexcept;
}

#endif // GFP_JIT_GF_TABLES_H
