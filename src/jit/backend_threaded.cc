/**
 * @file
 * Portable "threaded-code array" fallback backend.
 *
 * When native emission is compiled out (-DGFP_JIT=OFF) or the host
 * has no template backend, translated dispatch still works: this file
 * interprets the block IR under *exactly* the contract the native
 * code follows — same block-entry budget check, same execution/taken
 * counters, same deopt points with identical (exit_pc, deopt_k), same
 * dirty-window bookkeeping, same GF helper routing.  The driver
 * (jit/core_translation.cc) cannot tell the backends apart, which is
 * what lets the -DGFP_JIT=OFF CI lane run the full differential and
 * jit suites unchanged.
 *
 * It is also the semantic reference: anything ambiguous about the
 * templates is defined to behave like this file.
 */

#include "jit/gf_tables.h"
#include "jit/translator.h"

namespace gfp::jit {

namespace {

inline uint32_t
loadLe(const uint8_t *p, unsigned bytes)
{
    switch (bytes) {
      case 1:
        return p[0];
      case 2:
        return static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8);
      default:
        return static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24);
    }
}

inline void
storeLe(uint8_t *p, unsigned bytes, uint32_t v)
{
    for (unsigned i = 0; i < bytes; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void
setFlagsSub(JitContext &ctx, uint32_t a, uint32_t b)
{
    const uint32_t r = a - b;
    ctx.flags[0] = static_cast<uint8_t>((r >> 31) & 1);
    ctx.flags[1] = static_cast<uint8_t>(r == 0);
    ctx.flags[2] = static_cast<uint8_t>(a >= b);
    ctx.flags[3] = static_cast<uint8_t>((((a ^ b) & (a ^ r)) >> 31) & 1);
}

inline bool
condTaken(const JitContext &ctx, Op op)
{
    const bool n = ctx.flags[0] != 0;
    const bool z = ctx.flags[1] != 0;
    const bool c = ctx.flags[2] != 0;
    const bool v = ctx.flags[3] != 0;
    switch (op) {
      case Op::kBeq: return z;
      case Op::kBne: return !z;
      case Op::kBlt: return n != v;
      case Op::kBge: return n == v;
      case Op::kBgt: return !z && n == v;
      case Op::kBle: return z || n != v;
      case Op::kBlo: return !c;
      case Op::kBhs: return c;
      case Op::kBhi: return c && !z;
      case Op::kBls: return !c || z;
      default:       return true;
    }
}

} // namespace

void
runThreaded(const CompiledProgram &cp, JitContext &ctx,
            uint32_t entry_word)
{
    const std::vector<Block> &blocks = cp.blocks();
    uint32_t *const r = ctx.regs;
    uint8_t *const mem = ctx.mem;
    int32_t bi = cp.blockAt(entry_word);

    // Resolve a control transfer to word index `w`: continue in
    // translated code when it heads a block, exit to the interpreter
    // otherwise.  Returns false to exit.
    auto resolve = [&](uint32_t w) -> bool {
        const int32_t nb = cp.blockAt(w);
        if (nb < 0) {
            ctx.exit_pc = w * 4; // uint32 wrap matches the core's pc math
            ctx.exit_reason = kExitExternal;
            return false;
        }
        bi = nb;
        return true;
    };

    for (;;) {
        const Block &b = blocks[static_cast<uint32_t>(bi)];
        if (ctx.budget < b.len) {
            ctx.exit_pc = b.first * 4;
            ctx.exit_reason = kExitBudget;
            return;
        }
        ctx.budget -= b.len;
        ++ctx.exec_counts[bi];

        // Body: everything except a control-transfer terminator.
        const uint32_t body_len =
            b.term == TermKind::kFallThrough ? b.len : b.len - 1;
        for (uint32_t k = 0; k < body_len; ++k) {
            const Instr &in = b.body[k];

            // Bail-before-commit: nothing below may write state before
            // every check for that instruction has passed.
            auto deopt = [&]() {
                ctx.exit_pc = (b.first + k) * 4;
                ctx.exit_reason = kExitDeopt;
                ctx.deopt_block = static_cast<uint32_t>(bi);
                ctx.deopt_k = k;
            };
            auto loadAt = [&](uint32_t addr, unsigned bytes,
                              uint32_t &out) -> bool {
                if (static_cast<uint64_t>(addr) + bytes > ctx.mem_size) {
                    deopt();
                    return false;
                }
                out = loadLe(mem + addr, bytes);
                return true;
            };
            auto storeAt = [&](uint32_t addr, unsigned bytes,
                               uint32_t v) -> bool {
                if (static_cast<uint64_t>(addr) + bytes > ctx.mem_size) {
                    deopt();
                    return false;
                }
                if (addr < ctx.watch_limit) {
                    // Store into the watched code region: the
                    // interpreter must perform it (epoch bump,
                    // translation invalidation).
                    deopt();
                    return false;
                }
                if (addr < ctx.dirty_lo)
                    ctx.dirty_lo = addr;
                if (addr + bytes > ctx.dirty_hi)
                    ctx.dirty_hi = addr + bytes;
                storeLe(mem + addr, bytes, v);
                return true;
            };

            uint32_t tmp = 0;
            switch (in.op) {
              case Op::kAdd: r[in.rd] = r[in.rs1] + r[in.rs2]; break;
              case Op::kSub: r[in.rd] = r[in.rs1] - r[in.rs2]; break;
              case Op::kAnd: r[in.rd] = r[in.rs1] & r[in.rs2]; break;
              case Op::kOrr: r[in.rd] = r[in.rs1] | r[in.rs2]; break;
              case Op::kEor: r[in.rd] = r[in.rs1] ^ r[in.rs2]; break;
              case Op::kLsl: r[in.rd] = r[in.rs1] << (r[in.rs2] & 31); break;
              case Op::kLsr: r[in.rd] = r[in.rs1] >> (r[in.rs2] & 31); break;
              case Op::kAsr:
                r[in.rd] = static_cast<uint32_t>(
                    static_cast<int32_t>(r[in.rs1]) >> (r[in.rs2] & 31));
                break;
              case Op::kMul: r[in.rd] = r[in.rs1] * r[in.rs2]; break;
              case Op::kMov: r[in.rd] = r[in.rs1]; break;
              case Op::kCmp: setFlagsSub(ctx, r[in.rs1], r[in.rs2]); break;

              case Op::kAddi:
                r[in.rd] = r[in.rs1] + static_cast<uint32_t>(in.imm);
                break;
              case Op::kSubi:
                r[in.rd] = r[in.rs1] - static_cast<uint32_t>(in.imm);
                break;
              case Op::kAndi:
                r[in.rd] = r[in.rs1] & static_cast<uint32_t>(in.imm);
                break;
              case Op::kOrri:
                r[in.rd] = r[in.rs1] | static_cast<uint32_t>(in.imm);
                break;
              case Op::kEori:
                r[in.rd] = r[in.rs1] ^ static_cast<uint32_t>(in.imm);
                break;
              case Op::kLsli: r[in.rd] = r[in.rs1] << (in.imm & 31); break;
              case Op::kLsri: r[in.rd] = r[in.rs1] >> (in.imm & 31); break;
              case Op::kAsri:
                r[in.rd] = static_cast<uint32_t>(
                    static_cast<int32_t>(r[in.rs1]) >> (in.imm & 31));
                break;
              case Op::kMovi:
                r[in.rd] = static_cast<uint32_t>(in.imm) & 0xffff;
                break;
              case Op::kMovt:
                r[in.rd] = (r[in.rd] & 0xffff) |
                           ((static_cast<uint32_t>(in.imm) & 0xffff) << 16);
                break;
              case Op::kCmpi:
                setFlagsSub(ctx, r[in.rs1], static_cast<uint32_t>(in.imm));
                break;

              case Op::kLdr:
                if (!loadAt(r[in.rs1] + static_cast<uint32_t>(in.imm), 4,
                            tmp))
                    return;
                r[in.rd] = tmp;
                break;
              case Op::kLdrh:
                if (!loadAt(r[in.rs1] + static_cast<uint32_t>(in.imm), 2,
                            tmp))
                    return;
                r[in.rd] = tmp;
                break;
              case Op::kLdrb:
                if (!loadAt(r[in.rs1] + static_cast<uint32_t>(in.imm), 1,
                            tmp))
                    return;
                r[in.rd] = tmp;
                break;
              case Op::kLdrr:
                if (!loadAt(r[in.rs1] + r[in.rs2], 4, tmp))
                    return;
                r[in.rd] = tmp;
                break;
              case Op::kLdrhr:
                if (!loadAt(r[in.rs1] + r[in.rs2], 2, tmp))
                    return;
                r[in.rd] = tmp;
                break;
              case Op::kLdrbr:
                if (!loadAt(r[in.rs1] + r[in.rs2], 1, tmp))
                    return;
                r[in.rd] = tmp;
                break;

              case Op::kStr:
                if (!storeAt(r[in.rs1] + static_cast<uint32_t>(in.imm), 4,
                             r[in.rd]))
                    return;
                break;
              case Op::kStrh:
                if (!storeAt(r[in.rs1] + static_cast<uint32_t>(in.imm), 2,
                             r[in.rd]))
                    return;
                break;
              case Op::kStrb:
                if (!storeAt(r[in.rs1] + static_cast<uint32_t>(in.imm), 1,
                             r[in.rd]))
                    return;
                break;
              case Op::kStrr:
                if (!storeAt(r[in.rs1] + r[in.rs2], 4, r[in.rd]))
                    return;
                break;
              case Op::kStrhr:
                if (!storeAt(r[in.rs1] + r[in.rs2], 2, r[in.rd]))
                    return;
                break;
              case Op::kStrbr:
                if (!storeAt(r[in.rs1] + r[in.rs2], 1, r[in.rd]))
                    return;
                break;

              case Op::kNop:
                break;

              case Op::kGfMuls:
                r[in.rd] = gfp_jit_gfmuls(ctx.gf, r[in.rs1], r[in.rs2]);
                break;
              case Op::kGfInvs:
                r[in.rd] = gfp_jit_gfinvs(ctx.gf, r[in.rs1]);
                break;
              case Op::kGfSqs:
                r[in.rd] = gfp_jit_gfsqs(ctx.gf, r[in.rs1]);
                break;
              case Op::kGfPows:
                r[in.rd] = gfp_jit_gfpows(ctx.gf, r[in.rs1], r[in.rs2]);
                break;
              case Op::kGfAdds:
                r[in.rd] = r[in.rs1] ^ r[in.rs2];
                break;
              case Op::kGf32Mul: {
                const uint64_t p = gfp_jit_gf32mul(r[in.rs1], r[in.rs2]);
                // hi first, then lo — rd == rd2 keeps the low word,
                // matching the interpreter's write order.
                r[in.rd] = static_cast<uint32_t>(p >> 32);
                r[in.rd2] = static_cast<uint32_t>(p);
                break;
              }

              default:
                // Terminators are handled below; gfcfg and friends
                // never make it into a block.
                break;
            }
        }

        switch (b.term) {
          case TermKind::kFallThrough:
            if (!resolve(b.next))
                return;
            break;
          case TermKind::kBranch:
            if (!resolve(b.target))
                return;
            break;
          case TermKind::kCondBranch:
            if (condTaken(ctx, b.body.back().op)) {
                ++ctx.taken_counts[bi];
                if (!resolve(b.target))
                    return;
            } else if (!resolve(b.next)) {
                return;
            }
            break;
          case TermKind::kCall:
            r[kRegLr] = (b.first + b.len) * 4;
            if (!resolve(b.target))
                return;
            break;
          case TermKind::kIndirect: {
            const Instr &in = b.body.back();
            const uint32_t t =
                in.op == Op::kRet ? r[kRegLr] : r[in.rs1];
            if ((t & 3u) != 0) {
                ctx.exit_pc = t;
                ctx.exit_reason = kExitExternal;
                return;
            }
            if (!resolve(t / 4))
                return;
            break;
          }
          case TermKind::kHalt:
            ctx.exit_pc = (b.first + b.len) * 4;
            ctx.exit_reason = kExitHalt;
            return;
        }
    }
}

} // namespace gfp::jit
