/**
 * @file
 * AArch64 instruction encoders for the A64 template backend.
 *
 * Pure functions from operands to the 32-bit instruction word, compiled
 * on every host — tests/test_jit.cc golden-byte checks them against
 * known assembler output on x86-64 CI even though the emitted code only
 * *runs* on an AArch64 host.  Only the handful of encodings the
 * templates need; register numbers are architectural (31 = zr/sp where
 * the instruction says so).
 */

#ifndef GFP_JIT_A64_ENCODER_H
#define GFP_JIT_A64_ENCODER_H

#include <cstdint>

namespace gfp::jit::a64 {

/** Condition codes (b.cond / cset). */
enum Cond : uint32_t {
    kEq = 0x0, kNe = 0x1, kCs = 0x2, kCc = 0x3, kMi = 0x4, kPl = 0x5,
    kVs = 0x6, kVc = 0x7, kHi = 0x8, kLs = 0x9, kGe = 0xA, kLt = 0xB,
    kGt = 0xC, kLe = 0xD,
};

inline uint32_t invert(uint32_t cond) { return cond ^ 1u; }

// --- moves ---------------------------------------------------------

/** movz wd/xd, #imm16, lsl #(hw*16). */
inline uint32_t
movz(bool is64, unsigned rd, uint16_t imm, unsigned hw)
{
    return (is64 ? 0xD2800000u : 0x52800000u) | (hw << 21) |
           (static_cast<uint32_t>(imm) << 5) | rd;
}

/** movk wd/xd, #imm16, lsl #(hw*16). */
inline uint32_t
movk(bool is64, unsigned rd, uint16_t imm, unsigned hw)
{
    return (is64 ? 0xF2800000u : 0x72800000u) | (hw << 21) |
           (static_cast<uint32_t>(imm) << 5) | rd;
}

// --- loads/stores, unsigned scaled immediate -----------------------

/** ldr xt, [xn, #imm] (imm multiple of 8). */
inline uint32_t
ldrX(unsigned rt, unsigned rn, unsigned imm)
{
    return 0xF9400000u | ((imm / 8) << 10) | (rn << 5) | rt;
}

/** str xt, [xn, #imm]. */
inline uint32_t
strX(unsigned rt, unsigned rn, unsigned imm)
{
    return 0xF9000000u | ((imm / 8) << 10) | (rn << 5) | rt;
}

/** ldr wt, [xn, #imm] (imm multiple of 4). */
inline uint32_t
ldrW(unsigned rt, unsigned rn, unsigned imm)
{
    return 0xB9400000u | ((imm / 4) << 10) | (rn << 5) | rt;
}

/** str wt, [xn, #imm]. */
inline uint32_t
strW(unsigned rt, unsigned rn, unsigned imm)
{
    return 0xB9000000u | ((imm / 4) << 10) | (rn << 5) | rt;
}

/** ldrb wt, [xn, #imm]. */
inline uint32_t
ldrb(unsigned rt, unsigned rn, unsigned imm)
{
    return 0x39400000u | (imm << 10) | (rn << 5) | rt;
}

/** strb wt, [xn, #imm]. */
inline uint32_t
strb(unsigned rt, unsigned rn, unsigned imm)
{
    return 0x39000000u | (imm << 10) | (rn << 5) | rt;
}

// --- loads/stores, register offset [xn, xm] ------------------------

inline uint32_t
ldrRegW(unsigned rt, unsigned rn, unsigned rm)
{
    return 0xB8606800u | (rm << 16) | (rn << 5) | rt;
}

inline uint32_t
ldrhReg(unsigned rt, unsigned rn, unsigned rm)
{
    return 0x78606800u | (rm << 16) | (rn << 5) | rt;
}

inline uint32_t
ldrbReg(unsigned rt, unsigned rn, unsigned rm)
{
    return 0x38606800u | (rm << 16) | (rn << 5) | rt;
}

inline uint32_t
strRegW(unsigned rt, unsigned rn, unsigned rm)
{
    return 0xB8206800u | (rm << 16) | (rn << 5) | rt;
}

inline uint32_t
strhReg(unsigned rt, unsigned rn, unsigned rm)
{
    return 0x78206800u | (rm << 16) | (rn << 5) | rt;
}

inline uint32_t
strbReg(unsigned rt, unsigned rn, unsigned rm)
{
    return 0x38206800u | (rm << 16) | (rn << 5) | rt;
}

// --- pairs (prologue/epilogue) -------------------------------------

/** stp xt1, xt2, [sp, #-imm]! (pre-index). */
inline uint32_t
stpPre(unsigned rt1, unsigned rt2, unsigned rn, int imm)
{
    const uint32_t imm7 = static_cast<uint32_t>((imm / 8) & 0x7F);
    return 0xA9800000u | (imm7 << 15) | (rt2 << 10) | (rn << 5) | rt1;
}

/** ldp xt1, xt2, [sp], #imm (post-index). */
inline uint32_t
ldpPost(unsigned rt1, unsigned rt2, unsigned rn, int imm)
{
    const uint32_t imm7 = static_cast<uint32_t>((imm / 8) & 0x7F);
    return 0xA8C00000u | (imm7 << 15) | (rt2 << 10) | (rn << 5) | rt1;
}

/** stp xt1, xt2, [xn, #imm] (signed offset). */
inline uint32_t
stpOff(unsigned rt1, unsigned rt2, unsigned rn, int imm)
{
    const uint32_t imm7 = static_cast<uint32_t>((imm / 8) & 0x7F);
    return 0xA9000000u | (imm7 << 15) | (rt2 << 10) | (rn << 5) | rt1;
}

/** ldp xt1, xt2, [xn, #imm]. */
inline uint32_t
ldpOff(unsigned rt1, unsigned rt2, unsigned rn, int imm)
{
    const uint32_t imm7 = static_cast<uint32_t>((imm / 8) & 0x7F);
    return 0xA9400000u | (imm7 << 15) | (rt2 << 10) | (rn << 5) | rt1;
}

// --- integer ALU ---------------------------------------------------

/** add/sub/and/orr/eor wd, wn, wm — shifted-register, shift 0. */
inline uint32_t addW(unsigned d, unsigned n, unsigned m)
{
    return 0x0B000000u | (m << 16) | (n << 5) | d;
}
inline uint32_t subW(unsigned d, unsigned n, unsigned m)
{
    return 0x4B000000u | (m << 16) | (n << 5) | d;
}
inline uint32_t andW(unsigned d, unsigned n, unsigned m)
{
    return 0x0A000000u | (m << 16) | (n << 5) | d;
}
inline uint32_t orrW(unsigned d, unsigned n, unsigned m)
{
    return 0x2A000000u | (m << 16) | (n << 5) | d;
}
inline uint32_t eorW(unsigned d, unsigned n, unsigned m)
{
    return 0x4A000000u | (m << 16) | (n << 5) | d;
}

/** mul wd, wn, wm (madd with wzr accumulator). */
inline uint32_t
mulW(unsigned d, unsigned n, unsigned m)
{
    return 0x1B007C00u | (m << 16) | (n << 5) | d;
}

/** lslv/lsrv/asrv wd, wn, wm — count masked by 31, like the guest. */
inline uint32_t lslvW(unsigned d, unsigned n, unsigned m)
{
    return 0x1AC02000u | (m << 16) | (n << 5) | d;
}
inline uint32_t lsrvW(unsigned d, unsigned n, unsigned m)
{
    return 0x1AC02400u | (m << 16) | (n << 5) | d;
}
inline uint32_t asrvW(unsigned d, unsigned n, unsigned m)
{
    return 0x1AC02800u | (m << 16) | (n << 5) | d;
}

/** cmp wn, wm (subs wzr). */
inline uint32_t
cmpW(unsigned n, unsigned m)
{
    return 0x6B00001Fu | (m << 16) | (n << 5);
}

/** cmp xn, xm. */
inline uint32_t
cmpX(unsigned n, unsigned m)
{
    return 0xEB00001Fu | (m << 16) | (n << 5);
}

/** add xd, xn, #imm12. */
inline uint32_t
addXImm(unsigned d, unsigned n, unsigned imm12)
{
    return 0x91000000u | (imm12 << 10) | (n << 5) | d;
}

/** sub xd, xn, #imm12. */
inline uint32_t
subXImm(unsigned d, unsigned n, unsigned imm12)
{
    return 0xD1000000u | (imm12 << 10) | (n << 5) | d;
}

/** cmp xn, #imm12 (subs xzr). */
inline uint32_t
cmpXImm(unsigned n, unsigned imm12)
{
    return 0xF100001Fu | (imm12 << 10) | (n << 5);
}

/** add xd, xn, xm, lsl #shift. */
inline uint32_t
addXShift(unsigned d, unsigned n, unsigned m, unsigned shift)
{
    return 0x8B000000u | (m << 16) | (shift << 10) | (n << 5) | d;
}

/** and wd, wn, #0xffff (movt's low-half mask). */
inline uint32_t
andWImm16Mask(unsigned d, unsigned n)
{
    return 0x12003C00u | (n << 5) | d;
}

/** tst wn, #3 (alignment check: ands wzr, wn, #3). */
inline uint32_t
tstWImm3(unsigned n)
{
    return 0x7200041Fu | (n << 5);
}

/** lsr xd, xn, #32 (gf32mul high word). */
inline uint32_t
lsrX32(unsigned d, unsigned n)
{
    return 0xD360FC00u | (n << 5) | d;
}

/** cset wd, cond (csinc wd, wzr, wzr, !cond). */
inline uint32_t
csetW(unsigned d, uint32_t cond)
{
    return 0x1A9F07E0u | (invert(cond) << 12) | d;
}

// --- control flow --------------------------------------------------

/** b #(imm26*4). */
inline uint32_t
b(int32_t imm26)
{
    return 0x14000000u | (static_cast<uint32_t>(imm26) & 0x03FFFFFFu);
}

/** b.cond #(imm19*4). */
inline uint32_t
bcond(uint32_t cond, int32_t imm19)
{
    return 0x54000000u |
           ((static_cast<uint32_t>(imm19) & 0x7FFFFu) << 5) | cond;
}

/** cbz/cbnz wt, #(imm19*4). */
inline uint32_t
cbzW(unsigned rt, int32_t imm19)
{
    return 0x34000000u |
           ((static_cast<uint32_t>(imm19) & 0x7FFFFu) << 5) | rt;
}
inline uint32_t
cbnzW(unsigned rt, int32_t imm19)
{
    return 0x35000000u |
           ((static_cast<uint32_t>(imm19) & 0x7FFFFu) << 5) | rt;
}

/** cbz xt, #(imm19*4). */
inline uint32_t
cbzX(unsigned rt, int32_t imm19)
{
    return 0xB4000000u |
           ((static_cast<uint32_t>(imm19) & 0x7FFFFu) << 5) | rt;
}

inline uint32_t br(unsigned rn) { return 0xD61F0000u | (rn << 5); }
inline uint32_t blr(unsigned rn) { return 0xD63F0000u | (rn << 5); }
inline uint32_t ret() { return 0xD65F03C0u; }

} // namespace gfp::jit::a64

#endif // GFP_JIT_A64_ENCODER_H
