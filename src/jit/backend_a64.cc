/**
 * @file
 * AArch64 template backend.
 *
 * Mirrors jit/backend_x64.cc template for template; the encoders live
 * in jit/a64_encoder.h so the golden-byte tests cover them on every
 * host.  Host register convention (AAPCS64, all callee-saved across
 * the GF helper calls):
 *
 *   x19  JitContext*            x22  guest memory size
 *   x20  guest register file    x23  remaining watchdog budget
 *   x21  guest memory base
 *
 * w0/w1/w2 carry guest values, x9/x10 host temporaries, x16 the helper
 * address (the intra-procedure-call register, fittingly).  Guest NZCV
 * lives in the context flag bytes exactly as on x86-64: cmp templates
 * end in four cset+strb pairs (mi/eq/cs/vs are precisely the guest's
 * n/z/c/v — ARM's carry is already the no-borrow convention), branch
 * templates re-test the bytes.
 *
 * The whole emitter compiles on every host so x86-64 CI type-checks and
 * exercises it (tests emit, but only an AArch64 host executes); the
 * translator only installs it when the host really is AArch64.
 */

#include <cstring>

#include "common/logging.h"
#include "jit/a64_encoder.h"
#include "jit/code_cache.h"
#include "jit/gf_tables.h"
#include "jit/translator.h"

namespace gfp::jit {

namespace {

using namespace a64;

constexpr unsigned kCtx = 19, kRegs = 20, kMem = 21, kMemSize = 22,
                   kBudget = 23, kSp = 31;

constexpr unsigned kOffWatch = 24, kOffBudgetC = 32, kOffExec = 40,
                   kOffTaken = 48, kOffEntries = 56, kOffGf = 64,
                   kOffFlagN = 72, kOffFlagZ = 73, kOffFlagC = 74,
                   kOffFlagV = 75, kOffExitPc = 76, kOffExitReason = 80,
                   kOffDeoptBlock = 84, kOffDeoptK = 88, kOffDirtyLo = 96,
                   kOffDirtyHi = 104;

/** Word-granular assembler with the three A64 branch fixup shapes. */
class AsmA64
{
  public:
    std::vector<uint32_t> words;

    enum class Br { kB26, kCond19, kCmp19 };

    size_t
    newLabel()
    {
        labels_.push_back(-1);
        return labels_.size() - 1;
    }

    void
    bind(size_t label)
    {
        GFP_ASSERT(labels_[label] < 0, "label bound twice");
        labels_[label] = static_cast<int64_t>(words.size());
    }

    void emit(uint32_t w) { words.push_back(w); }

    void
    b(size_t label)
    {
        fixups_.push_back({words.size(), label, Br::kB26});
        emit(a64::b(0));
    }

    void
    bcond(uint32_t cond, size_t label)
    {
        fixups_.push_back({words.size(), label, Br::kCond19});
        emit(a64::bcond(cond, 0));
    }

    void
    cbzW(unsigned rt, size_t label)
    {
        fixups_.push_back({words.size(), label, Br::kCmp19});
        emit(a64::cbzW(rt, 0));
    }

    void
    cbnzW(unsigned rt, size_t label)
    {
        fixups_.push_back({words.size(), label, Br::kCmp19});
        emit(a64::cbnzW(rt, 0));
    }

    void
    cbzX(unsigned rt, size_t label)
    {
        fixups_.push_back({words.size(), label, Br::kCmp19});
        emit(a64::cbzX(rt, 0));
    }

    void
    finalize()
    {
        for (const Fixup &f : fixups_) {
            const int64_t at = labels_[f.label];
            GFP_ASSERT(at >= 0, "unbound jit label");
            const int64_t rel = at - static_cast<int64_t>(f.at);
            uint32_t &w = words[f.at];
            if (f.kind == Br::kB26) {
                GFP_ASSERT(rel >= -(1 << 25) && rel < (1 << 25),
                           "b out of range");
                w |= static_cast<uint32_t>(rel) & 0x03FFFFFFu;
            } else {
                GFP_ASSERT(rel >= -(1 << 18) && rel < (1 << 18),
                           "b.cond/cbz out of range");
                w |= (static_cast<uint32_t>(rel) & 0x7FFFFu) << 5;
            }
        }
        fixups_.clear();
    }

  private:
    struct Fixup
    {
        size_t at;
        size_t label;
        Br kind;
    };

    std::vector<int64_t> labels_;
    std::vector<Fixup> fixups_;
};

struct EmitterA64
{
    AsmA64 a;
    const CompiledProgram &cp;
    size_t exit_label = 0;
    std::vector<size_t> block_label;

    explicit EmitterA64(const CompiledProgram &c) : cp(c) {}

    void loadGuest(unsigned w, unsigned g) { a.emit(ldrW(w, kRegs, 4 * g)); }
    void storeGuest(unsigned g, unsigned w) { a.emit(strW(w, kRegs, 4 * g)); }

    /** w<reg> = imm32 via movz(+movk). */
    void
    movImm32(unsigned reg, uint32_t imm)
    {
        a.emit(movz(false, reg, static_cast<uint16_t>(imm), 0));
        if ((imm >> 16) != 0)
            a.emit(movk(false, reg, static_cast<uint16_t>(imm >> 16), 1));
    }

    /** x9 = imm64 (helper addresses). */
    void
    movImm64(unsigned reg, uint64_t imm)
    {
        a.emit(movz(true, reg, static_cast<uint16_t>(imm), 0));
        for (unsigned hw = 1; hw < 4; ++hw) {
            const uint16_t part = static_cast<uint16_t>(imm >> (16 * hw));
            if (part != 0)
                a.emit(movk(true, reg, part, hw));
        }
    }

    void
    movCtx32(unsigned off, uint32_t imm)
    {
        movImm32(1, imm);
        a.emit(strW(1, kCtx, off));
    }

    void
    exitWith(uint32_t pc, uint32_t reason)
    {
        movCtx32(kOffExitPc, pc);
        movCtx32(kOffExitReason, reason);
        a.b(exit_label);
    }

    void
    resolve(uint32_t w)
    {
        const int32_t nb = cp.blockAt(w);
        if (nb >= 0)
            a.b(block_label[static_cast<size_t>(nb)]);
        else
            exitWith(w * 4, kExitExternal);
    }

    /** counters[idx]++ via the table pointer at ctx+off. */
    void
    bumpCounter(unsigned off, uint32_t idx)
    {
        a.emit(ldrX(9, kCtx, off));
        a.emit(ldrX(10, 9, 8 * idx));
        a.emit(addXImm(10, 10, 1));
        a.emit(strX(10, 9, 8 * idx));
    }

    void
    setFlags()
    {
        static constexpr uint32_t cond[4] = {kMi, kEq, kCs, kVs};
        static constexpr unsigned off[4] = {kOffFlagN, kOffFlagZ,
                                            kOffFlagC, kOffFlagV};
        for (int i = 0; i < 4; ++i) {
            a.emit(csetW(2, cond[i]));
            a.emit(strb(2, kCtx, off[i]));
        }
    }

    void
    callHelper(const void *fn)
    {
        movImm64(16, reinterpret_cast<uint64_t>(fn));
        a.emit(blr(16));
    }

    /** w0 = access address; x1 = end; deopt unless end <= mem_size. */
    void
    emitAddress(const Instr &in, bool reg_offset, unsigned bytes,
                size_t deopt)
    {
        loadGuest(0, in.rs1);
        if (reg_offset) {
            loadGuest(1, in.rs2);
            a.emit(addW(0, 0, 1));
        } else if (in.imm != 0) {
            movImm32(1, static_cast<uint32_t>(in.imm));
            a.emit(addW(0, 0, 1));
        }
        a.emit(addXImm(1, 0, bytes));
        a.emit(cmpX(1, kMemSize));
        a.bcond(kHi, deopt);
    }

    void
    emitLoad(const Instr &in, bool reg_offset, unsigned bytes,
             size_t deopt)
    {
        emitAddress(in, reg_offset, bytes, deopt);
        switch (bytes) {
          case 1: a.emit(ldrbReg(2, kMem, 0)); break;
          case 2: a.emit(ldrhReg(2, kMem, 0)); break;
          default: a.emit(ldrRegW(2, kMem, 0)); break;
        }
        storeGuest(in.rd, 2);
    }

    void
    emitStore(const Instr &in, bool reg_offset, unsigned bytes,
              size_t deopt)
    {
        emitAddress(in, reg_offset, bytes, deopt);
        a.emit(ldrX(9, kCtx, kOffWatch));
        a.emit(cmpX(0, 9));
        a.bcond(kCc, deopt); // addr < watch_limit -> SMC deopt
        size_t skip_lo = a.newLabel();
        a.emit(ldrX(9, kCtx, kOffDirtyLo));
        a.emit(cmpX(0, 9));
        a.bcond(kCs, skip_lo);
        a.emit(strX(0, kCtx, kOffDirtyLo));
        a.bind(skip_lo);
        size_t skip_hi = a.newLabel();
        a.emit(ldrX(9, kCtx, kOffDirtyHi));
        a.emit(cmpX(1, 9));
        a.bcond(kLs, skip_hi);
        a.emit(strX(1, kCtx, kOffDirtyHi));
        a.bind(skip_hi);
        loadGuest(2, in.rd); // stores write r[rd]
        switch (bytes) {
          case 1: a.emit(strbReg(2, kMem, 0)); break;
          case 2: a.emit(strhReg(2, kMem, 0)); break;
          default: a.emit(strRegW(2, kMem, 0)); break;
        }
    }

    void
    emitInstr(const Instr &in, size_t deopt)
    {
        switch (in.op) {
          case Op::kAdd: case Op::kSub: case Op::kAnd:
          case Op::kOrr: case Op::kEor: case Op::kMul: {
            loadGuest(0, in.rs1);
            loadGuest(1, in.rs2);
            switch (in.op) {
              case Op::kAdd: a.emit(addW(0, 0, 1)); break;
              case Op::kSub: a.emit(subW(0, 0, 1)); break;
              case Op::kAnd: a.emit(andW(0, 0, 1)); break;
              case Op::kOrr: a.emit(orrW(0, 0, 1)); break;
              case Op::kEor: a.emit(eorW(0, 0, 1)); break;
              default:       a.emit(mulW(0, 0, 1)); break;
            }
            storeGuest(in.rd, 0);
            break;
          }
          case Op::kLsl: case Op::kLsr: case Op::kAsr:
            loadGuest(0, in.rs1);
            loadGuest(1, in.rs2);
            a.emit(in.op == Op::kLsl   ? lslvW(0, 0, 1)
                   : in.op == Op::kLsr ? lsrvW(0, 0, 1)
                                       : asrvW(0, 0, 1));
            storeGuest(in.rd, 0);
            break;
          case Op::kMov:
            loadGuest(0, in.rs1);
            storeGuest(in.rd, 0);
            break;
          case Op::kCmp:
            loadGuest(0, in.rs1);
            loadGuest(1, in.rs2);
            a.emit(cmpW(0, 1));
            setFlags();
            break;

          case Op::kAddi: case Op::kSubi: case Op::kAndi:
          case Op::kOrri: case Op::kEori:
            loadGuest(0, in.rs1);
            movImm32(1, static_cast<uint32_t>(in.imm));
            switch (in.op) {
              case Op::kAddi: a.emit(addW(0, 0, 1)); break;
              case Op::kSubi: a.emit(subW(0, 0, 1)); break;
              case Op::kAndi: a.emit(andW(0, 0, 1)); break;
              case Op::kOrri: a.emit(orrW(0, 0, 1)); break;
              default:        a.emit(eorW(0, 0, 1)); break;
            }
            storeGuest(in.rd, 0);
            break;
          case Op::kLsli: case Op::kLsri: case Op::kAsri:
            loadGuest(0, in.rs1);
            movImm32(1, static_cast<uint32_t>(in.imm) & 31);
            a.emit(in.op == Op::kLsli   ? lslvW(0, 0, 1)
                   : in.op == Op::kLsri ? lsrvW(0, 0, 1)
                                        : asrvW(0, 0, 1));
            storeGuest(in.rd, 0);
            break;
          case Op::kMovi:
            movImm32(0, static_cast<uint32_t>(in.imm) & 0xffff);
            storeGuest(in.rd, 0);
            break;
          case Op::kMovt:
            loadGuest(0, in.rd);
            a.emit(andWImm16Mask(0, 0));
            a.emit(movz(false, 1, static_cast<uint16_t>(in.imm), 1));
            a.emit(orrW(0, 0, 1));
            storeGuest(in.rd, 0);
            break;
          case Op::kCmpi:
            loadGuest(0, in.rs1);
            movImm32(1, static_cast<uint32_t>(in.imm));
            a.emit(cmpW(0, 1));
            setFlags();
            break;

          case Op::kLdr:  emitLoad(in, false, 4, deopt); break;
          case Op::kLdrh: emitLoad(in, false, 2, deopt); break;
          case Op::kLdrb: emitLoad(in, false, 1, deopt); break;
          case Op::kLdrr:  emitLoad(in, true, 4, deopt); break;
          case Op::kLdrhr: emitLoad(in, true, 2, deopt); break;
          case Op::kLdrbr: emitLoad(in, true, 1, deopt); break;
          case Op::kStr:  emitStore(in, false, 4, deopt); break;
          case Op::kStrh: emitStore(in, false, 2, deopt); break;
          case Op::kStrb: emitStore(in, false, 1, deopt); break;
          case Op::kStrr:  emitStore(in, true, 4, deopt); break;
          case Op::kStrhr: emitStore(in, true, 2, deopt); break;
          case Op::kStrbr: emitStore(in, true, 1, deopt); break;

          case Op::kNop:
            break;

          case Op::kGfMuls:
          case Op::kGfPows:
            a.emit(ldrX(0, kCtx, kOffGf));
            loadGuest(1, in.rs1);
            loadGuest(2, in.rs2);
            callHelper(reinterpret_cast<const void *>(
                in.op == Op::kGfMuls ? &gfp_jit_gfmuls : &gfp_jit_gfpows));
            storeGuest(in.rd, 0);
            break;
          case Op::kGfSqs:
          case Op::kGfInvs:
            a.emit(ldrX(0, kCtx, kOffGf));
            loadGuest(1, in.rs1);
            callHelper(reinterpret_cast<const void *>(
                in.op == Op::kGfSqs ? &gfp_jit_gfsqs : &gfp_jit_gfinvs));
            storeGuest(in.rd, 0);
            break;
          case Op::kGfAdds:
            loadGuest(0, in.rs1);
            loadGuest(1, in.rs2);
            a.emit(eorW(0, 0, 1));
            storeGuest(in.rd, 0);
            break;
          case Op::kGf32Mul:
            loadGuest(0, in.rs1);
            loadGuest(1, in.rs2);
            callHelper(reinterpret_cast<const void *>(&gfp_jit_gf32mul));
            a.emit(lsrX32(1, 0));
            storeGuest(in.rd, 1);  // hi first
            storeGuest(in.rd2, 0); // lo second; rd == rd2 keeps lo
            break;

          default:
            GFP_FATAL("unexpected op in jit block body");
        }
    }

    void
    emitCondTest(Op op, size_t taken, size_t not_taken)
    {
        auto flag = [&](unsigned off) { a.emit(ldrb(1, kCtx, off)); };
        auto pair = [&]() {
            a.emit(ldrb(1, kCtx, kOffFlagN));
            a.emit(ldrb(2, kCtx, kOffFlagV));
            a.emit(cmpW(1, 2));
        };
        switch (op) {
          case Op::kBeq: flag(kOffFlagZ); a.cbnzW(1, taken); break;
          case Op::kBne: flag(kOffFlagZ); a.cbzW(1, taken); break;
          case Op::kBlo: flag(kOffFlagC); a.cbzW(1, taken); break;
          case Op::kBhs: flag(kOffFlagC); a.cbnzW(1, taken); break;
          case Op::kBlt: pair(); a.bcond(kNe, taken); break;
          case Op::kBge: pair(); a.bcond(kEq, taken); break;
          case Op::kBgt:
            flag(kOffFlagZ);
            a.cbnzW(1, not_taken);
            pair();
            a.bcond(kEq, taken);
            break;
          case Op::kBle:
            flag(kOffFlagZ);
            a.cbnzW(1, taken);
            pair();
            a.bcond(kNe, taken);
            break;
          case Op::kBhi:
            flag(kOffFlagC);
            a.cbzW(1, not_taken);
            flag(kOffFlagZ);
            a.cbzW(1, taken);
            break;
          case Op::kBls:
            flag(kOffFlagC);
            a.cbzW(1, taken);
            flag(kOffFlagZ);
            a.cbnzW(1, taken);
            break;
          default:
            GFP_FATAL("not a conditional branch");
        }
    }

    void
    emitBlock(uint32_t bi)
    {
        const Block &b = cp.blocks()[bi];
        a.bind(block_label[bi]);

        size_t fits = a.newLabel();
        a.emit(cmpXImm(kBudget, b.len)); // len < 4096, pre-checked
        a.bcond(kCs, fits);
        exitWith(b.first * 4, kExitBudget);
        a.bind(fits);
        a.emit(subXImm(kBudget, kBudget, b.len));
        bumpCounter(kOffExec, bi);

        std::vector<std::pair<size_t, uint32_t>> deopts;
        const uint32_t body_len =
            b.term == TermKind::kFallThrough ? b.len : b.len - 1;
        for (uint32_t k = 0; k < body_len; ++k) {
            size_t deopt = a.newLabel();
            deopts.emplace_back(deopt, k);
            emitInstr(b.body[k], deopt);
        }

        switch (b.term) {
          case TermKind::kFallThrough:
            resolve(b.next);
            break;
          case TermKind::kBranch:
            resolve(b.target);
            break;
          case TermKind::kCondBranch: {
            size_t taken = a.newLabel();
            size_t not_taken = a.newLabel();
            emitCondTest(b.body.back().op, taken, not_taken);
            a.bind(not_taken);
            resolve(b.next);
            a.bind(taken);
            bumpCounter(kOffTaken, bi);
            resolve(b.target);
            break;
          }
          case TermKind::kCall:
            movImm32(1, (b.first + b.len) * 4);
            a.emit(strW(1, kRegs, 4 * kRegLr));
            resolve(b.target);
            break;
          case TermKind::kIndirect: {
            const Instr &in = b.body.back();
            const unsigned src = in.op == Op::kRet ? kRegLr : in.rs1;
            size_t ext = a.newLabel();
            loadGuest(0, src);
            a.emit(tstWImm3(0));
            a.bcond(kNe, ext);
            const uint32_t code_bytes =
                static_cast<uint32_t>(cp.words().size() * 4);
            if (code_bytes < 4096) {
                a.emit(cmpXImm(0, code_bytes));
            } else {
                movImm32(9, code_bytes);
                a.emit(cmpX(0, 9));
            }
            a.bcond(kCs, ext);
            a.emit(ldrX(9, kCtx, kOffEntries));
            a.emit(addXShift(9, 9, 0, 1)); // entries + pc*2 (== word*8)
            a.emit(ldrX(9, 9, 0));
            a.cbzX(9, ext);
            a.emit(br(9));
            a.bind(ext);
            a.emit(strW(0, kCtx, kOffExitPc));
            movCtx32(kOffExitReason, kExitExternal);
            a.b(exit_label);
            break;
          }
          case TermKind::kHalt:
            exitWith((b.first + b.len) * 4, kExitHalt);
            break;
        }

        for (const auto &[label, k] : deopts) {
            a.bind(label);
            movCtx32(kOffExitPc, (b.first + k) * 4);
            movCtx32(kOffExitReason, kExitDeopt);
            movCtx32(kOffDeoptBlock, bi);
            movCtx32(kOffDeoptK, k);
            a.b(exit_label);
        }
    }

    size_t
    emitEnter()
    {
        const size_t off = a.words.size();
        a.emit(stpPre(29, 30, kSp, -64));
        a.emit(stpOff(19, 20, kSp, 16));
        a.emit(stpOff(21, 22, kSp, 32));
        a.emit(strX(23, kSp, 48));
        a.emit(addXImm(kCtx, 0, 0)); // mov x19, x0
        a.emit(ldrX(kRegs, kCtx, 0));
        a.emit(ldrX(kMem, kCtx, 8));
        a.emit(ldrX(kMemSize, kCtx, 16));
        a.emit(ldrX(kBudget, kCtx, kOffBudgetC));
        a.emit(br(1));
        return off;
    }

    void
    emitExit()
    {
        a.bind(exit_label);
        a.emit(strX(kBudget, kCtx, kOffBudgetC));
        a.emit(ldrX(23, kSp, 48));
        a.emit(ldpOff(21, 22, kSp, 32));
        a.emit(ldpOff(19, 20, kSp, 16));
        a.emit(ldpPost(29, 30, kSp, 64));
        a.emit(ret());
    }
};

} // namespace

bool
emitA64(const CompiledProgram &cp, NativeCode &out)
{
    // imm12 budget checks and imm12-scaled counter slots bound the
    // shapes this backend accepts; anything larger falls back to the
    // threaded backend rather than mis-encoding.
    for (const Block &b : cp.blocks())
        if (b.len >= 4096)
            return false;
    if (cp.blocks().size() >= 4096)
        return false;

    EmitterA64 e(cp);
    e.exit_label = e.a.newLabel();
    for (size_t i = 0; i < cp.blocks().size(); ++i)
        e.block_label.push_back(e.a.newLabel());

    const size_t enter_off = e.emitEnter();
    e.emitExit();
    std::vector<size_t> block_off(cp.blocks().size());
    for (uint32_t bi = 0; bi < cp.blocks().size(); ++bi) {
        block_off[bi] = e.a.words.size();
        e.emitBlock(bi);
    }
    e.a.finalize();

    const size_t bytes = e.a.words.size() * 4;
    auto cache = std::make_shared<CodeCache>(bytes);
    std::memcpy(cache->base(), e.a.words.data(), bytes);
    cache->finalize(bytes);

    const uint64_t base = reinterpret_cast<uint64_t>(cache->base());
    out.cache = std::move(cache);
    out.entries.assign(cp.words().size(), 0);
    for (uint32_t bi = 0; bi < cp.blocks().size(); ++bi)
        out.entries[cp.blocks()[bi].first] = base + block_off[bi] * 4;
    out.enter = reinterpret_cast<const void *>(base + enter_off * 4);
    out.arch = "aarch64";
    return true;
}

} // namespace gfp::jit
