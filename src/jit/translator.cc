#include "jit/translator.h"

#include <algorithm>
#include <set>

#include "analysis/certify.h"
#include "common/logging.h"
#include "common/strutil.h"
#include "isa/encoding.h"
#include "jit/code_cache.h"
#include "sim/cost_model.h"

#ifndef GFP_JIT_NATIVE
#define GFP_JIT_NATIVE 1
#endif

namespace gfp::jit {

namespace {

bool
isCondBranch(Op op)
{
    switch (op) {
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBgt: case Op::kBle: case Op::kBlo: case Op::kBhs:
      case Op::kBhi: case Op::kBls:
        return true;
      default:
        return false;
    }
}

bool
isControlTransfer(Op op)
{
    switch (op) {
      case Op::kB: case Op::kBl: case Op::kJr: case Op::kRet:
      case Op::kHalt:
        return true;
      default:
        return isCondBranch(op);
    }
}

/** Ops the JIT refuses to put inside a block.  gfcfg is a translation
 *  barrier (it changes the reduction matrix the GF helper tables are
 *  keyed on, and it can trap on its blob); GF ops on a baseline core
 *  and undecodable words trap unconditionally — all of them exit to
 *  the interpreter, which raises the exact architectural behavior. */
bool
translatable(const Instr &in, CoreKind kind)
{
    if (in.op == Op::kGfCfg)
        return false;
    if (kind == CoreKind::kBaseline && isGfOp(in.op))
        return false;
    return true;
}

} // namespace

std::string
CompiledProgram::summary() const
{
    return strprintf("%s backend, %zu block%s, %u/%zu words translated%s%s",
                  backendName(), blocks_.size(),
                  blocks_.size() == 1 ? "" : "s", translated_words_,
                  words_.size(), policy_note_.empty() ? "" : " — ",
                  policy_note_.c_str());
}

void
CompiledProgram::run(JitContext &ctx, uint32_t entry_word) const
{
    if (native_.enter != nullptr) {
        auto enter = reinterpret_cast<void (*)(JitContext *, const void *)>(
            const_cast<void *>(native_.enter));
        enter(&ctx,
              reinterpret_cast<const void *>(native_.entries[entry_word]));
        return;
    }
    runThreaded(*this, ctx, entry_word);
}

const char *
nativeBackendName()
{
#if GFP_JIT_NATIVE && defined(__x86_64__)
    return "x86-64";
#elif GFP_JIT_NATIVE && defined(__aarch64__)
    return "aarch64";
#else
    return "threaded";
#endif
}

std::shared_ptr<const CompiledProgram>
translate(const Program &prog, CoreKind kind, const TranslateOptions &opts)
{
    auto cp = std::make_shared<CompiledProgram>();
    cp->kind_ = kind;
    cp->words_ = prog.code;
    const uint32_t n = static_cast<uint32_t>(prog.code.size());
    cp->block_at_.assign(n, -1);

    if (opts.policy == TranslatePolicy::kOff) {
        cp->policy_note_ = "translation disabled by policy";
        return cp;
    }
    if (opts.policy == TranslatePolicy::kCertified) {
        CertifyOptions co;
        co.mem_bytes = opts.mem_bytes;
        co.watchdog_max_instrs = opts.watchdog_max_instrs;
        const ProgramCertificate cert = certifyProgram(prog, co);
        if (!cert.jit_safe || !cert.cost.bounded) {
            std::string why = !cert.jit_safe
                                  ? (cert.caveats.empty()
                                         ? std::string("not jit-safe")
                                         : cert.caveats.front())
                                  : "cost unbounded: " + cert.cost.reason;
            cp->policy_note_ = "certificate declined: " + why;
            return cp;
        }
    }

    // Decode every word once; undecodable words are block barriers.
    std::vector<Instr> decoded(n);
    std::vector<bool> ok(n, false);
    for (uint32_t i = 0; i < n; ++i)
        ok[i] = tryDecode(prog.code[i], decoded[i]) &&
                translatable(decoded[i], kind);

    // Leaders, liberally: entry, every label, every direct target,
    // every word after a control transfer or an untranslatable word —
    // so indirect jumps (which can only name labels in a well-formed
    // program) and post-barrier resumption always find a block head.
    std::set<uint32_t> leaders;
    leaders.insert(0);
    for (const auto &[name, addr] : prog.symbols)
        if ((addr & 3u) == 0 && addr / 4 < n)
            leaders.insert(addr / 4);
    for (uint32_t i = 0; i < n; ++i) {
        if (!ok[i]) {
            leaders.insert(i + 1);
            continue;
        }
        const Instr &in = decoded[i];
        if (!isControlTransfer(in.op))
            continue;
        leaders.insert(i + 1);
        if (in.op != Op::kJr && in.op != Op::kRet &&
            in.op != Op::kHalt) {
            const uint32_t target =
                i + 1 + static_cast<uint32_t>(decoded[i].imm);
            if (target < n)
                leaders.insert(target);
        }
    }

    // Grow one straight-line block per translatable leader.
    for (uint32_t lead : leaders) {
        if (lead >= n || !ok[lead])
            continue;
        Block b;
        b.first = lead;
        for (uint32_t i = lead;; ++i) {
            const Instr &in = decoded[i];
            b.body.push_back(in);
            b.cls.push_back(classOf(in.op));
            if (isGfOp(in.op))
                b.has_gf = true;
            if (isControlTransfer(in.op)) {
                // Conditional terminators are costed not-taken in the
                // static base; the taken counter pays the refill delta.
                const bool always_taken = !isCondBranch(in.op);
                b.cycles.push_back(static_cast<uint8_t>(
                    cyclesFor(in.op, always_taken)));
                switch (in.op) {
                  case Op::kB:
                    b.term = TermKind::kBranch;
                    break;
                  case Op::kBl:
                    b.term = TermKind::kCall;
                    break;
                  case Op::kJr:
                  case Op::kRet:
                    b.term = TermKind::kIndirect;
                    break;
                  case Op::kHalt:
                    b.term = TermKind::kHalt;
                    break;
                  default:
                    b.term = TermKind::kCondBranch;
                    break;
                }
                if (b.term == TermKind::kBranch ||
                    b.term == TermKind::kCall ||
                    b.term == TermKind::kCondBranch)
                    b.target = i + 1 + static_cast<uint32_t>(in.imm);
                b.next = i + 1;
                break;
            }
            b.cycles.push_back(
                static_cast<uint8_t>(cyclesFor(in.op, false)));
            if (i + 1 >= n || leaders.count(i + 1) != 0 || !ok[i + 1]) {
                b.term = TermKind::kFallThrough;
                b.next = i + 1;
                break;
            }
        }
        b.len = static_cast<uint32_t>(b.body.size());
        for (uint32_t k = 0; k < b.len; ++k)
            b.base.record(b.cls[k], b.cycles[k]);
        if (b.term == TermKind::kCondBranch) {
            b.taken_extra.cycles = kTakenBranchCycles - kDefaultCycles;
            b.taken_extra.branch_cycles = b.taken_extra.cycles;
        }
        cp->block_at_[b.first] = static_cast<int32_t>(cp->blocks_.size());
        cp->translated_words_ += b.len;
        cp->uses_gf_ = cp->uses_gf_ || b.has_gf;
        cp->blocks_.push_back(std::move(b));
    }

    if (cp->blocks_.empty()) {
        if (cp->policy_note_.empty())
            cp->policy_note_ = "no translatable blocks";
        return cp;
    }

    if (opts.backend == Backend::kAuto) {
#if GFP_JIT_NATIVE && defined(__x86_64__)
        emitX64(*cp, cp->native_);
#elif GFP_JIT_NATIVE && defined(__aarch64__)
        emitA64(*cp, cp->native_);
#endif
    }
    return cp;
}

} // namespace gfp::jit
