/**
 * @file
 * The template-JIT translator: guest program -> CompiledProgram.
 *
 * Translation is a straight-line affair, deliberately: the fused
 * interpreter already wins on decode and dispatch, so the JIT's edge
 * is removing dispatch *entirely* inside basic blocks and across
 * direct branches.  The translator slices the code into blocks at
 * liberal leader points (every label, every branch/call target, every
 * word after a control transfer or gfcfg), computes each block's
 * static retire costs, and hands the block IR (jit/ir.h) to a backend:
 * copy-patched native templates on x86-64/AArch64, or the portable
 * threaded-code-array interpreter everywhere else (and always with
 * -DGFP_JIT=OFF).
 *
 * Eligibility is policy, soundness is not: by default (kCertified) a
 * program is translated only when the abstract-interpretation
 * certifier (analysis/certify.h) proves it jit-safe and bounded —
 * that is the admission decision an IoT node would make.  But the
 * certificates assume a pristine Machine launch, and engine jobs
 * write inputs first, so the generated code still carries every
 * dynamic guard the interpreter enforces: bounds checks on all memory
 * traffic, store-to-code (SMC) checks against the watch limit, budget
 * checks against the watchdog, and code-epoch revalidation at entry.
 * kEager skips the certificates (differential tests use it to cover
 * arbitrary, even hostile, programs); the guards make it exactly as
 * safe, merely less polite about deopting.
 */

#ifndef GFP_JIT_TRANSLATOR_H
#define GFP_JIT_TRANSLATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.h"
#include "jit/context.h"
#include "jit/ir.h"
#include "sim/cpu.h"

namespace gfp::jit {

class CodeCache;

enum class TranslatePolicy : uint8_t {
    /** Translate iff certifyProgram() proves the whole program
     *  jit-safe and cost-bounded; declined programs get an empty
     *  translation (the interpreter runs them). */
    kCertified,
    /** Translate every structurally translatable block, no
     *  certificates consulted.  The dynamic guards keep this sound;
     *  the differential suites use it to cover random programs. */
    kEager,
    kOff,
};

enum class Backend : uint8_t {
    kAuto,     ///< native when built in and the host has one, else threaded
    kThreaded, ///< force the portable threaded-code fallback
};

struct TranslateOptions
{
    TranslatePolicy policy = TranslatePolicy::kCertified;
    Backend backend = Backend::kAuto;

    /** Guest memory size the certificates are checked against. */
    size_t mem_bytes = 256 * 1024;

    /** Watchdog cap the cost certificate is checked against. */
    uint64_t watchdog_max_instrs = 500'000'000;
};

/** Finalized native code: the W^X buffer plus its entry points. */
struct NativeCode
{
    std::shared_ptr<CodeCache> cache;

    /** Absolute host entry address per code word (0 = not a block
     *  head); indirect jumps resolve through this from generated
     *  code, the driver through entry(). */
    std::vector<uint64_t> entries;

    /** `void enter(JitContext *, const void *block_entry)` — saves
     *  host registers, loads the context, and jumps to the block. */
    const void *enter = nullptr;

    const char *arch = nullptr; ///< "x86-64" or "aarch64"
};

/**
 * An immutable compiled guest program, shared (const) across every
 * core/worker that runs it; all mutable run state lives in the
 * per-core jit::CoreTranslation.
 */
class CompiledProgram
{
  public:
    const std::vector<Block> &blocks() const { return blocks_; }

    /** The exact code words that were compiled — entry revalidation
     *  memcmps guest memory against this after an epoch bump. */
    const std::vector<uint32_t> &words() const { return words_; }

    /** Block index whose head is @p word, or -1. */
    int32_t
    blockAt(uint32_t word) const
    {
        return word < block_at_.size() ? block_at_[word] : -1;
    }

    CoreKind kind() const { return kind_; }
    bool usesGf() const { return uses_gf_; }

    /** Instructions covered by translated blocks. */
    uint32_t translatedWords() const { return translated_words_; }

    bool native() const { return native_.enter != nullptr; }
    const NativeCode &nativeCode() const { return native_; }
    const char *backendName() const
    {
        return native_.enter ? native_.arch : "threaded";
    }

    /** Why the policy translated nothing (empty when it did). */
    const std::string &policyNote() const { return policy_note_; }

    /** One line for tools/tests: backend, block and word counts. */
    std::string summary() const;

    /**
     * Execute from block head @p entry_word until the generated code
     * exits (ctx.exit_reason says why).  The caller (CoreTranslation)
     * owns validation, context setup, and the stats/profile
     * reconstruction that follows.
     */
    void run(JitContext &ctx, uint32_t entry_word) const;

  private:
    friend std::shared_ptr<const CompiledProgram>
    translate(const Program &, CoreKind, const TranslateOptions &);

    std::vector<uint32_t> words_;
    std::vector<Block> blocks_;
    std::vector<int32_t> block_at_;
    CoreKind kind_ = CoreKind::kGfProcessor;
    bool uses_gf_ = false;
    uint32_t translated_words_ = 0;
    std::string policy_note_;
    NativeCode native_;
};

/** Translate @p prog for a @p kind core under @p opts. */
std::shared_ptr<const CompiledProgram>
translate(const Program &prog, CoreKind kind,
          const TranslateOptions &opts = {});

/** Native backend this build would use on this host, or "threaded". */
const char *nativeBackendName();

// Backend entry points (jit/backend_*.cc).  Emit native code for every
// block of @p cp into @p out; false when unsupported.
bool emitX64(const CompiledProgram &cp, NativeCode &out);
bool emitA64(const CompiledProgram &cp, NativeCode &out);

/** The portable fallback: interpret the block IR under the same
 *  contract the native code follows (jit/backend_threaded.cc). */
void runThreaded(const CompiledProgram &cp, JitContext &ctx,
                 uint32_t entry_word);

} // namespace gfp::jit

#endif // GFP_JIT_TRANSLATOR_H
