#include "jit/code_cache.h"

#include "common/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define GFP_JIT_HAVE_MMAP 1
#else
#define GFP_JIT_HAVE_MMAP 0
#endif

namespace gfp::jit {

CodeCache::CodeCache(size_t capacity)
{
#if GFP_JIT_HAVE_MMAP
    // Round up to whole pages so finalize() can mprotect exactly what
    // was mapped.
    const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    capacity_ = (capacity + page - 1) / page * page;
    void *p = mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    GFP_ASSERT(p != MAP_FAILED, "JIT code cache mmap(%zu) failed",
               capacity_);
    base_ = static_cast<uint8_t *>(p);
#else
    (void)capacity;
    GFP_FATAL("no executable-memory support on this platform");
#endif
}

CodeCache::~CodeCache()
{
#if GFP_JIT_HAVE_MMAP
    if (base_ != nullptr)
        munmap(base_, capacity_);
#endif
}

void
CodeCache::finalize(size_t used)
{
#if GFP_JIT_HAVE_MMAP
    GFP_ASSERT(!executable_, "code cache finalized twice");
    GFP_ASSERT(used <= capacity_, "emitted %zu bytes into a %zu cache",
               used, capacity_);
    used_ = used;
    const int rc = mprotect(base_, capacity_, PROT_READ | PROT_EXEC);
    GFP_ASSERT(rc == 0, "mprotect(RX) failed on the JIT code cache");
#if defined(__GNUC__) || defined(__clang__)
    __builtin___clear_cache(reinterpret_cast<char *>(base_),
                            reinterpret_cast<char *>(base_ + used_));
#endif
    executable_ = true;
#else
    (void)used;
#endif
}

} // namespace gfp::jit
