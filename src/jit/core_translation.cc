#include "jit/core_translation.h"

#include <cinttypes>
#include <cstring>

#include "common/strutil.h"
#include "sim/cost_model.h"
#include "sim/profiler.h"

namespace gfp::jit {

CoreTranslation::CoreTranslation(std::shared_ptr<const CompiledProgram> cp)
    : cp_(std::move(cp)),
      exec_(cp_->blocks().size(), 0),
      taken_(cp_->blocks().size(), 0)
{
}

JitGfTables &
CoreTranslation::tablesFor(const GFConfig &cfg)
{
    const uint64_t key = cfg.pack();
    for (auto &t : tables_)
        if (t->valid && t->key == key)
            return *t;
    tables_.push_back(std::make_unique<JitGfTables>());
    tables_.back()->ensure(cfg);
    return *tables_.back();
}

bool
CoreTranslation::run(Core &core, RunResult &res, uint64_t max_instrs)
{
    const std::vector<Block> &blocks = cp_->blocks();
    if (blocks.empty())
        return false;

    const uint32_t entry_pc = pc(core);
    if ((entry_pc & 3u) != 0 || cp_->blockAt(entry_pc / 4) < 0)
        return false;

    Memory &mem = memory(core);

    // Revalidate after any code-epoch movement: stores below the watch
    // limit and SEU flips both bump the epoch whether or not they
    // changed the program text, so compare the text itself and keep the
    // verdict until the epoch moves again.  (The memcmp against the
    // word array assumes a little-endian host, like the predecoder's
    // fast loads; on anything else it just never matches — pessimistic,
    // never wrong.)
    const uint64_t epoch = mem.codeEpoch();
    if (epoch != valid_epoch_) {
        if (epoch == failed_epoch_)
            return false;
        const size_t code_bytes = cp_->words().size() * 4;
        if (mem.size() < code_bytes ||
            std::memcmp(mem.data(), cp_->words().data(), code_bytes) != 0) {
            failed_epoch_ = epoch;
            return false;
        }
        valid_epoch_ = epoch;
    }

    // GF helper tables must mirror the live configuration register.  An
    // invalid config means every GF op traps — the interpreter's
    // business, not ours.
    JitGfTables *tables = nullptr;
    if (cp_->usesGf()) {
        if (!core.gfau().configValid())
            return false;
        tables = &tablesFor(core.gfau().config());
    }

    if (res.instrs >= max_instrs)
        return false;

    std::fill(exec_.begin(), exec_.end(), 0);
    std::fill(taken_.begin(), taken_.end(), 0);

    Core::Flags &fl = flags(core);
    ctx_.regs = regs(core).data();
    ctx_.mem = mem.data();
    ctx_.mem_size = mem.size();
    ctx_.watch_limit = mem.watchLimit();
    ctx_.budget = max_instrs - res.instrs;
    ctx_.exec_counts = exec_.data();
    ctx_.taken_counts = taken_.data();
    ctx_.entries =
        cp_->native() ? cp_->nativeCode().entries.data() : nullptr;
    ctx_.gf = tables;
    ctx_.flags[0] = fl.n;
    ctx_.flags[1] = fl.z;
    ctx_.flags[2] = fl.c;
    ctx_.flags[3] = fl.v;
    ctx_.exit_pc = entry_pc;
    ctx_.exit_reason = kExitExternal;
    ctx_.deopt_block = 0;
    ctx_.deopt_k = 0;
    ctx_.dirty_lo = UINT64_MAX;
    ctx_.dirty_hi = 0;

    ++entries_;
    cp_->run(ctx_, entry_pc / 4);

    fl.n = ctx_.flags[0] != 0;
    fl.z = ctx_.flags[1] != 0;
    fl.c = ctx_.flags[2] != 0;
    fl.v = ctx_.flags[3] != 0;

    // A deopted block bumped its counter on entry but committed
    // nothing past deopt_k instructions; count the prefix explicitly.
    if (ctx_.exit_reason == kExitDeopt) {
        ++deopts_;
        exec_[ctx_.deopt_block] -= 1;
    }

    // Reconstruct the exact per-instruction bookkeeping from the block
    // counters.  record() is linear, so base*exec + taken_extra*taken
    // is bit-identical to stepping's per-retire records.
    CycleStats &st = stats(core);
    PcProfile *prof = profile(core);
    uint64_t retired = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
        const uint64_t n = exec_[b];
        const uint64_t t = taken_[b];
        if (n == 0 && t == 0)
            continue;
        const Block &blk = blocks[b];
        retired += n * blk.len;
        st.addScaled(blk.base, n);
        st.addScaled(blk.taken_extra, t);
        if (prof == nullptr)
            continue;
        for (uint32_t k = 0; k < blk.len; ++k) {
            if (blk.term == TermKind::kCondBranch && k == blk.len - 1) {
                // The static cost is the not-taken cycle; taken
                // executions retire the refill cost instead.
                prof->record(blk.pcOf(k), blk.cls[k], blk.cycles[k],
                             n - t);
                prof->record(blk.pcOf(k), blk.cls[k],
                             kTakenBranchCycles, t);
            } else {
                prof->record(blk.pcOf(k), blk.cls[k], blk.cycles[k], n);
            }
        }
    }
    if (ctx_.exit_reason == kExitDeopt) {
        const Block &blk = blocks[ctx_.deopt_block];
        retired += ctx_.deopt_k;
        for (uint32_t k = 0; k < ctx_.deopt_k; ++k) {
            st.record(blk.cls[k], blk.cycles[k]);
            if (prof != nullptr)
                prof->record(blk.pcOf(k), blk.cls[k], blk.cycles[k]);
        }
    }

    mem.touchRange(ctx_.dirty_lo, ctx_.dirty_hi);
    pc(core) = ctx_.exit_pc;
    if (ctx_.exit_reason == kExitHalt)
        halted(core) = true;

    res.instrs += retired;
    return retired > 0;
}

std::string
CoreTranslation::describe() const
{
    return strprintf("%s (%" PRIu64 " entries, %" PRIu64 " deopts)",
                  cp_->summary().c_str(), entries_, deopts_);
}

std::unique_ptr<Translation>
makeCoreTranslation(std::shared_ptr<const CompiledProgram> cp)
{
    if (cp == nullptr)
        return nullptr;
    return std::make_unique<CoreTranslation>(std::move(cp));
}

} // namespace gfp::jit
