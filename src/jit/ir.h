/**
 * @file
 * Block-level intermediate representation of the template JIT.
 *
 * The translator (jit/translator.h) slices the guest program into
 * straight-line blocks at the same leaders the analysis CFG sees (plus
 * a few extra, liberally — every branch/call target, every word after a
 * control transfer or a gfcfg barrier — so indirect jumps and
 * post-barrier resumption always land on a block head).  Each block
 * carries its decoded body, its terminator shape, and the *static* per
 * -execution CycleStats it retires, with a conditional terminator
 * counted not-taken; the per-core driver (jit/core_translation.h)
 * multiplies these by the execution counters the generated code bumps
 * to reconstruct totals bit-identical to single stepping.
 *
 * Both backends consume this IR unchanged: the native templates
 * (jit/backend_x64.cc, jit/backend_a64.cc) copy-patch one host-code
 * template per instruction, and the portable threaded-code fallback
 * (jit/backend_threaded.cc) interprets the same blocks with the same
 * guards when native emission is off (-DGFP_JIT=OFF) or the host
 * architecture has no backend.
 */

#ifndef GFP_JIT_IR_H
#define GFP_JIT_IR_H

#include <cstdint>
#include <vector>

#include "isa/isa.h"
#include "sim/stats.h"

namespace gfp::jit {

/** How a translated block ends. */
enum class TermKind : uint8_t {
    /** No terminator instruction: the next word is a leader or is
     *  untranslatable (gfcfg, undecodable, GF op on a baseline core).
     *  Control continues at `next` — a translated head, or an exit to
     *  the interpreter. */
    kFallThrough,
    kBranch,     ///< unconditional b; last body instr, to `target`
    kCondBranch, ///< bcc; taken to `target`, else to `next`
    kCall,       ///< bl; sets lr, to `target`
    kIndirect,   ///< jr / ret; dynamic target via the entry table
    kHalt,       ///< halt; run ends, pc advances past it
};

/** One straight-line translated block. */
struct Block
{
    uint32_t first = 0; ///< word index of the block head
    uint32_t len = 0;   ///< instructions retired per execution

    TermKind term = TermKind::kFallThrough;
    uint32_t target = 0; ///< taken-target word (kBranch/kCondBranch/kCall)
    uint32_t next = 0;   ///< fall-through / not-taken word

    /** Decoded body, `len` entries, words [first, first+len). */
    std::vector<Instr> body;

    /** Per-instruction class/cycle pairs, parallel to body — the exact
     *  records stepping would make, conditional terminator not-taken. */
    std::vector<InstrClass> cls;
    std::vector<uint8_t> cycles;

    /** Sum of one execution's records (cond terminator not-taken). */
    CycleStats base;

    /** Extra retired when the conditional terminator is taken: one
     *  branch cycle (kTakenBranchCycles - kDefaultCycles), zero ops. */
    CycleStats taken_extra;

    bool has_gf = false; ///< any GF op in the body (gfadds included)

    uint32_t pcOf(uint32_t k) const { return (first + k) * 4; }
    uint32_t termPc() const { return (first + len - 1) * 4; }
};

/** Why generated code handed control back to the driver. */
enum ExitReason : uint32_t {
    kExitHalt = 0,     ///< halt retired; exit_pc is past the halt
    kExitBudget = 1,   ///< next block does not fit the watchdog budget
    kExitExternal = 2, ///< control left the translated region (exit_pc)
    kExitDeopt = 3,    ///< guard failed mid-block; nothing committed
};

} // namespace gfp::jit

#endif // GFP_JIT_IR_H
