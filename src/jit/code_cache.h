/**
 * @file
 * W^X executable-memory arena for the native JIT backends.
 *
 * Strict write-xor-execute lifecycle: the buffer is mmap'd
 * PROT_READ|PROT_WRITE, the emitter fills it, finalize() flips it to
 * PROT_READ|PROT_EXEC (never writable+executable at the same time) and
 * flushes the instruction cache where that matters (AArch64).  This is
 * both the hardening posture CI's sanitizer jobs expect and what keeps
 * the JIT suites clean under ASan — the pages come from mmap, not the
 * C++ heap, so the poisoned-redzone machinery never sees them.
 */

#ifndef GFP_JIT_CODE_CACHE_H
#define GFP_JIT_CODE_CACHE_H

#include <cstddef>
#include <cstdint>

namespace gfp::jit {

class CodeCache
{
  public:
    /** Reserve @p capacity bytes of RW memory; fatal on mmap failure. */
    explicit CodeCache(size_t capacity);
    ~CodeCache();

    CodeCache(const CodeCache &) = delete;
    CodeCache &operator=(const CodeCache &) = delete;

    uint8_t *base() { return base_; }
    const uint8_t *base() const { return base_; }
    size_t capacity() const { return capacity_; }

    /** Seal [base, base+used) as read+execute and flush the icache.
     *  No further writes are legal. */
    void finalize(size_t used);

    bool executable() const { return executable_; }
    size_t used() const { return used_; }

  private:
    uint8_t *base_ = nullptr;
    size_t capacity_ = 0;
    size_t used_ = 0;
    bool executable_ = false;
};

} // namespace gfp::jit

#endif // GFP_JIT_CODE_CACHE_H
