#include "jit/gf_tables.h"

#include <bit>

#include "common/logging.h"
#include "gf/clmul.h"
#include "gfau/units.h"

namespace gfp::jit {

void
JitGfTables::ensure(const GFConfig &cfg)
{
    const uint64_t k = cfg.pack();
    if (valid && k == key)
        return;
    GFP_ASSERT(cfg.valid(), "GF tables for an invalid config (m=%u)",
               cfg.m);

    // Throwaway units: same arithmetic as the GFAU's pools, but their
    // activation counters die with them — translated GF ops do not
    // advance the structural model's telemetry (header note).
    GFMultUnit mu;
    GFSquareUnit su;
    for (unsigned a = 0; a < 256; ++a) {
        sq[a] = su.square(static_cast<uint8_t>(a), cfg);
        for (unsigned b = 0; b < 256; ++b)
            mul[a][b] = mu.multiply(static_cast<uint8_t>(a),
                                    static_cast<uint8_t>(b), cfg);
    }
    mask = cfg.laneMask();

    // Inverse: replay GFArithmeticUnit::inverseLane's Itoh-Tsujii
    // addition chain on e = m - 1 through the tables.  Every
    // multiply/square in the chain is one of the unit evaluations
    // tabulated above, so the outputs match the network bit for bit.
    const unsigned e = cfg.m - 1;
    for (unsigned a0 = 0; a0 < 256; ++a0) {
        const uint8_t a = static_cast<uint8_t>(a0) & mask;
        if (a == 0) {
            inv[a0] = 0;
            continue;
        }
        uint8_t t = a;
        unsigned have = 1;
        if (e > 1) {
            const int top = 31 - std::countl_zero(e);
            for (int i = top - 1; i >= 0; --i) {
                uint8_t t2 = t;
                for (unsigned s = 0; s < have; ++s)
                    t2 = sq[t2];
                t = mul[t2][t];
                have *= 2;
                if ((e >> i) & 1) {
                    t = mul[sq[t]][a];
                    have += 1;
                }
            }
        }
        inv[a0] = sq[t];
    }

    key = k;
    valid = true;
}

} // namespace gfp::jit

using gfp::jit::JitGfTables;

namespace {

inline const JitGfTables *
tables(const void *t)
{
    return static_cast<const JitGfTables *>(t);
}

} // namespace

extern "C" uint32_t
gfp_jit_gfmuls(const void *t, uint32_t a, uint32_t b) noexcept
{
    const JitGfTables *g = tables(t);
    uint32_t out = 0;
    for (unsigned l = 0; l < 4; ++l)
        out |= static_cast<uint32_t>(
                   g->mul[(a >> (8 * l)) & 0xff][(b >> (8 * l)) & 0xff])
               << (8 * l);
    return out;
}

extern "C" uint32_t
gfp_jit_gfsqs(const void *t, uint32_t a) noexcept
{
    const JitGfTables *g = tables(t);
    uint32_t out = 0;
    for (unsigned l = 0; l < 4; ++l)
        out |= static_cast<uint32_t>(g->sq[(a >> (8 * l)) & 0xff])
               << (8 * l);
    return out;
}

extern "C" uint32_t
gfp_jit_gfinvs(const void *t, uint32_t a) noexcept
{
    const JitGfTables *g = tables(t);
    uint32_t out = 0;
    for (unsigned l = 0; l < 4; ++l)
        out |= static_cast<uint32_t>(g->inv[(a >> (8 * l)) & 0xff])
               << (8 * l);
    return out;
}

extern "C" uint32_t
gfp_jit_gfpows(const void *t, uint32_t a, uint32_t e) noexcept
{
    // GFArithmeticUnit::simdPower through the tables: x^0 == 1
    // (including 0^0), 0^e == 0, square-and-multiply otherwise.
    const JitGfTables *g = tables(t);
    uint32_t out = 0;
    for (unsigned l = 0; l < 4; ++l) {
        const uint8_t base =
            static_cast<uint8_t>((a >> (8 * l)) & 0xff) & g->mask;
        const uint8_t exp = static_cast<uint8_t>((e >> (8 * l)) & 0xff);
        uint8_t result;
        if (exp == 0) {
            result = 1;
        } else if (base == 0) {
            result = 0;
        } else {
            result = 1;
            uint8_t s = base;
            for (unsigned b = 0; b < 8; ++b) {
                if ((exp >> b) & 1)
                    result = g->mul[result][s];
                if ((exp >> (b + 1)) == 0)
                    break;
                s = g->sq[s];
            }
        }
        out |= static_cast<uint32_t>(result) << (8 * l);
    }
    return out;
}

extern "C" uint64_t
gfp_jit_gf32mul(uint32_t a, uint32_t b) noexcept
{
    // The reduction stage is data-gated for gf32mul, so this is the
    // pure carry-less product — served by the PCLMUL/PMULL backends
    // (gf/clmul.h) when the host has them.  A 32x32 product has degree
    // <= 62, so the whole result lands in the low word.
    uint64_t hi, lo;
    gfp::clmulWide(a, b, hi, lo);
    (void)hi;
    return lo;
}
