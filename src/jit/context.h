/**
 * @file
 * The mutable run state generated code works against.
 *
 * The native backends address these fields by fixed byte offsets (a
 * pointer to the context rides in a reserved host register), so the
 * layout is pinned with static_asserts; the threaded fallback reads
 * the same struct through plain C++.  One context per core, refilled
 * by the driver before every entry — the compiled code itself is
 * immutable and shared across cores/threads.
 */

#ifndef GFP_JIT_CONTEXT_H
#define GFP_JIT_CONTEXT_H

#include <cstddef>
#include <cstdint>

namespace gfp::jit {

struct JitContext
{
    uint32_t *regs = nullptr;          ///< guest register file (16)
    uint8_t *mem = nullptr;            ///< guest memory base
    uint64_t mem_size = 0;             ///< guest memory size in bytes
    uint64_t watch_limit = 0;          ///< stores below this deopt (SMC)
    uint64_t budget = 0;               ///< instructions left to retire
    uint64_t *exec_counts = nullptr;   ///< per-block execution counters
    uint64_t *taken_counts = nullptr;  ///< per-block cond-taken counters
    const uint64_t *entries = nullptr; ///< per-word entry (0 = none)
    const void *gf = nullptr;          ///< GF helper tables (JitGfTables)
    uint8_t flags[4] = {};             ///< NZCV as bytes (n,z,c,v)
    uint32_t exit_pc = 0;              ///< guest pc at exit
    uint32_t exit_reason = 0;          ///< ExitReason
    uint32_t deopt_block = 0;          ///< block that deopted
    uint32_t deopt_k = 0;              ///< instrs retired in it before
    uint32_t pad_ = 0;
    uint64_t dirty_lo = 0;             ///< store-span low watermark
    uint64_t dirty_hi = 0;             ///< store-span high watermark
};

// Offsets the emitters bake into host instructions.
static_assert(offsetof(JitContext, regs) == 0);
static_assert(offsetof(JitContext, mem) == 8);
static_assert(offsetof(JitContext, mem_size) == 16);
static_assert(offsetof(JitContext, watch_limit) == 24);
static_assert(offsetof(JitContext, budget) == 32);
static_assert(offsetof(JitContext, exec_counts) == 40);
static_assert(offsetof(JitContext, taken_counts) == 48);
static_assert(offsetof(JitContext, entries) == 56);
static_assert(offsetof(JitContext, gf) == 64);
static_assert(offsetof(JitContext, flags) == 72);
static_assert(offsetof(JitContext, exit_pc) == 76);
static_assert(offsetof(JitContext, exit_reason) == 80);
static_assert(offsetof(JitContext, deopt_block) == 84);
static_assert(offsetof(JitContext, deopt_k) == 88);
static_assert(offsetof(JitContext, dirty_lo) == 96);
static_assert(offsetof(JitContext, dirty_hi) == 104);

} // namespace gfp::jit

#endif // GFP_JIT_CONTEXT_H
