/**
 * @file
 * Cycle and instruction statistics for the GFP simulator, broken down by
 * the categories the paper's Table 7 reports: loads, stores, 32-bit GF
 * partial products, SIMD GF operations, "ALUs" (all integer/bitwise
 * data processing) and control flow.
 */

#ifndef GFP_SIM_STATS_H
#define GFP_SIM_STATS_H

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace gfp {

struct CycleStats
{
    uint64_t instrs = 0;
    uint64_t cycles = 0;

    uint64_t load_ops = 0, load_cycles = 0;
    uint64_t store_ops = 0, store_cycles = 0;
    uint64_t alu_ops = 0, alu_cycles = 0;
    uint64_t branch_ops = 0, branch_cycles = 0;
    uint64_t gf_simd_ops = 0, gf_simd_cycles = 0;
    uint64_t gf32_ops = 0, gf32_cycles = 0;
    uint64_t gfcfg_ops = 0, gfcfg_cycles = 0;

    // SEU injection counters (sim/fault_injector.h), per target.
    uint64_t faults_mem = 0;  ///< data-memory bit flips delivered
    uint64_t faults_reg = 0;  ///< register-file bit flips delivered
    uint64_t faults_cfg = 0;  ///< GFAU config-register bit flips delivered

    uint64_t faultsInjected() const
    {
        return faults_mem + faults_reg + faults_cfg;
    }

    void
    record(InstrClass cls, unsigned cycles_taken)
    {
        ++instrs;
        cycles += cycles_taken;
        switch (cls) {
          case InstrClass::kLoad:
            ++load_ops; load_cycles += cycles_taken; break;
          case InstrClass::kStore:
            ++store_ops; store_cycles += cycles_taken; break;
          case InstrClass::kBranch:
            ++branch_ops; branch_cycles += cycles_taken; break;
          case InstrClass::kGfSimd:
            ++gf_simd_ops; gf_simd_cycles += cycles_taken; break;
          case InstrClass::kGf32:
            ++gf32_ops; gf32_cycles += cycles_taken; break;
          case InstrClass::kGfCfg:
            ++gfcfg_ops; gfcfg_cycles += cycles_taken; break;
          case InstrClass::kAlu:
            ++alu_ops; alu_cycles += cycles_taken; break;
        }
    }

    CycleStats &
    operator+=(const CycleStats &o)
    {
        instrs += o.instrs;
        cycles += o.cycles;
        load_ops += o.load_ops;
        load_cycles += o.load_cycles;
        store_ops += o.store_ops;
        store_cycles += o.store_cycles;
        alu_ops += o.alu_ops;
        alu_cycles += o.alu_cycles;
        branch_ops += o.branch_ops;
        branch_cycles += o.branch_cycles;
        gf_simd_ops += o.gf_simd_ops;
        gf_simd_cycles += o.gf_simd_cycles;
        gf32_ops += o.gf32_ops;
        gf32_cycles += o.gf32_cycles;
        gfcfg_ops += o.gfcfg_ops;
        gfcfg_cycles += o.gfcfg_cycles;
        faults_mem += o.faults_mem;
        faults_reg += o.faults_reg;
        faults_cfg += o.faults_cfg;
        return *this;
    }

    CycleStats
    operator-(const CycleStats &o) const
    {
        CycleStats d;
        d.instrs = instrs - o.instrs;
        d.cycles = cycles - o.cycles;
        d.load_ops = load_ops - o.load_ops;
        d.load_cycles = load_cycles - o.load_cycles;
        d.store_ops = store_ops - o.store_ops;
        d.store_cycles = store_cycles - o.store_cycles;
        d.alu_ops = alu_ops - o.alu_ops;
        d.alu_cycles = alu_cycles - o.alu_cycles;
        d.branch_ops = branch_ops - o.branch_ops;
        d.branch_cycles = branch_cycles - o.branch_cycles;
        d.gf_simd_ops = gf_simd_ops - o.gf_simd_ops;
        d.gf_simd_cycles = gf_simd_cycles - o.gf_simd_cycles;
        d.gf32_ops = gf32_ops - o.gf32_ops;
        d.gf32_cycles = gf32_cycles - o.gf32_cycles;
        d.gfcfg_ops = gfcfg_ops - o.gfcfg_ops;
        d.gfcfg_cycles = gfcfg_cycles - o.gfcfg_cycles;
        d.faults_mem = faults_mem - o.faults_mem;
        d.faults_reg = faults_reg - o.faults_reg;
        d.faults_cfg = faults_cfg - o.faults_cfg;
        return d;
    }

    /** Ops in the paper's "ALUs" bucket (data processing + control). */
    uint64_t aluBucketOps() const { return alu_ops + branch_ops; }
    uint64_t aluBucketCycles() const { return alu_cycles + branch_cycles; }

    std::string summary() const;
};

} // namespace gfp

#endif // GFP_SIM_STATS_H
