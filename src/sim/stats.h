/**
 * @file
 * Cycle and instruction statistics for the GFP simulator, broken down by
 * the categories the paper's Table 7 reports: loads, stores, 32-bit GF
 * partial products, SIMD GF operations, "ALUs" (all integer/bitwise
 * data processing) and control flow.
 *
 * The per-class counters *partition* the totals: every opcode class has
 * its own bucket (an audit found nop/halt previously folded into the
 * generic ALU bucket — they now have their own `ctrl` counters; gfcfg's
 * 2-cycle memory read was already tracked in its own bucket), and
 * consistent() asserts that class ops/cycles sum exactly to
 * `instrs`/`cycles`.  The per-PC profiler (sim/profiler.h) relies on
 * the same partition for its attribution invariant.
 */

#ifndef GFP_SIM_STATS_H
#define GFP_SIM_STATS_H

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace gfp {

struct CycleStats
{
    uint64_t instrs = 0;
    uint64_t cycles = 0;

    uint64_t load_ops = 0, load_cycles = 0;
    uint64_t store_ops = 0, store_cycles = 0;
    uint64_t alu_ops = 0, alu_cycles = 0;
    uint64_t branch_ops = 0, branch_cycles = 0;
    uint64_t ctrl_ops = 0, ctrl_cycles = 0;
    uint64_t gf_simd_ops = 0, gf_simd_cycles = 0;
    uint64_t gf32_ops = 0, gf32_cycles = 0;
    uint64_t gfcfg_ops = 0, gfcfg_cycles = 0;

    // SEU injection counters (sim/fault_injector.h), per target.
    uint64_t faults_mem = 0;  ///< data-memory bit flips delivered
    uint64_t faults_reg = 0;  ///< register-file bit flips delivered
    uint64_t faults_cfg = 0;  ///< GFAU config-register bit flips delivered

    uint64_t faultsInjected() const
    {
        return faults_mem + faults_reg + faults_cfg;
    }

    void
    record(InstrClass cls, unsigned cycles_taken)
    {
        ++instrs;
        cycles += cycles_taken;
        switch (cls) {
          case InstrClass::kLoad:
            ++load_ops; load_cycles += cycles_taken; break;
          case InstrClass::kStore:
            ++store_ops; store_cycles += cycles_taken; break;
          case InstrClass::kBranch:
            ++branch_ops; branch_cycles += cycles_taken; break;
          case InstrClass::kCtrl:
            ++ctrl_ops; ctrl_cycles += cycles_taken; break;
          case InstrClass::kGfSimd:
            ++gf_simd_ops; gf_simd_cycles += cycles_taken; break;
          case InstrClass::kGf32:
            ++gf32_ops; gf32_cycles += cycles_taken; break;
          case InstrClass::kGfCfg:
            ++gfcfg_ops; gfcfg_cycles += cycles_taken; break;
          case InstrClass::kAlu:
            ++alu_ops; alu_cycles += cycles_taken; break;
        }
    }

    /** Ops of class @p cls (the bucket record() fills for it). */
    uint64_t
    classOps(InstrClass cls) const
    {
        switch (cls) {
          case InstrClass::kLoad:   return load_ops;
          case InstrClass::kStore:  return store_ops;
          case InstrClass::kBranch: return branch_ops;
          case InstrClass::kCtrl:   return ctrl_ops;
          case InstrClass::kGfSimd: return gf_simd_ops;
          case InstrClass::kGf32:   return gf32_ops;
          case InstrClass::kGfCfg:  return gfcfg_ops;
          case InstrClass::kAlu:    return alu_ops;
        }
        return 0;
    }

    /** Cycles of class @p cls. */
    uint64_t
    classCycles(InstrClass cls) const
    {
        switch (cls) {
          case InstrClass::kLoad:   return load_cycles;
          case InstrClass::kStore:  return store_cycles;
          case InstrClass::kBranch: return branch_cycles;
          case InstrClass::kCtrl:   return ctrl_cycles;
          case InstrClass::kGfSimd: return gf_simd_cycles;
          case InstrClass::kGf32:   return gf32_cycles;
          case InstrClass::kGfCfg:  return gfcfg_cycles;
          case InstrClass::kAlu:    return alu_cycles;
        }
        return 0;
    }

    /** Sum of every class ops bucket — must equal `instrs`. */
    uint64_t
    sumClassOps() const
    {
        return load_ops + store_ops + alu_ops + branch_ops + ctrl_ops +
               gf_simd_ops + gf32_ops + gfcfg_ops;
    }

    /** Sum of every class cycles bucket — must equal `cycles`. */
    uint64_t
    sumClassCycles() const
    {
        return load_cycles + store_cycles + alu_cycles + branch_cycles +
               ctrl_cycles + gf_simd_cycles + gf32_cycles + gfcfg_cycles;
    }

    /** The class buckets partition the totals: no op ever falls through
     *  uncounted and none is double-counted. */
    bool
    consistent() const
    {
        return sumClassOps() == instrs && sumClassCycles() == cycles;
    }

    /**
     * Accumulate @p o scaled by @p n — what n executions of a block
     * with per-execution stats o retire.  The translated dispatch path
     * counts block executions while running and reconstructs the exact
     * per-instruction totals with this afterwards; since record() is
     * linear in its inputs, the result is bit-identical to n rounds of
     * per-instruction record() calls.
     */
    void
    addScaled(const CycleStats &o, uint64_t n)
    {
        instrs += o.instrs * n;
        cycles += o.cycles * n;
        load_ops += o.load_ops * n;
        load_cycles += o.load_cycles * n;
        store_ops += o.store_ops * n;
        store_cycles += o.store_cycles * n;
        alu_ops += o.alu_ops * n;
        alu_cycles += o.alu_cycles * n;
        branch_ops += o.branch_ops * n;
        branch_cycles += o.branch_cycles * n;
        ctrl_ops += o.ctrl_ops * n;
        ctrl_cycles += o.ctrl_cycles * n;
        gf_simd_ops += o.gf_simd_ops * n;
        gf_simd_cycles += o.gf_simd_cycles * n;
        gf32_ops += o.gf32_ops * n;
        gf32_cycles += o.gf32_cycles * n;
        gfcfg_ops += o.gfcfg_ops * n;
        gfcfg_cycles += o.gfcfg_cycles * n;
        faults_mem += o.faults_mem * n;
        faults_reg += o.faults_reg * n;
        faults_cfg += o.faults_cfg * n;
    }

    CycleStats &
    operator+=(const CycleStats &o)
    {
        instrs += o.instrs;
        cycles += o.cycles;
        load_ops += o.load_ops;
        load_cycles += o.load_cycles;
        store_ops += o.store_ops;
        store_cycles += o.store_cycles;
        alu_ops += o.alu_ops;
        alu_cycles += o.alu_cycles;
        branch_ops += o.branch_ops;
        branch_cycles += o.branch_cycles;
        ctrl_ops += o.ctrl_ops;
        ctrl_cycles += o.ctrl_cycles;
        gf_simd_ops += o.gf_simd_ops;
        gf_simd_cycles += o.gf_simd_cycles;
        gf32_ops += o.gf32_ops;
        gf32_cycles += o.gf32_cycles;
        gfcfg_ops += o.gfcfg_ops;
        gfcfg_cycles += o.gfcfg_cycles;
        faults_mem += o.faults_mem;
        faults_reg += o.faults_reg;
        faults_cfg += o.faults_cfg;
        return *this;
    }

    CycleStats
    operator-(const CycleStats &o) const
    {
        CycleStats d;
        d.instrs = instrs - o.instrs;
        d.cycles = cycles - o.cycles;
        d.load_ops = load_ops - o.load_ops;
        d.load_cycles = load_cycles - o.load_cycles;
        d.store_ops = store_ops - o.store_ops;
        d.store_cycles = store_cycles - o.store_cycles;
        d.alu_ops = alu_ops - o.alu_ops;
        d.alu_cycles = alu_cycles - o.alu_cycles;
        d.branch_ops = branch_ops - o.branch_ops;
        d.branch_cycles = branch_cycles - o.branch_cycles;
        d.ctrl_ops = ctrl_ops - o.ctrl_ops;
        d.ctrl_cycles = ctrl_cycles - o.ctrl_cycles;
        d.gf_simd_ops = gf_simd_ops - o.gf_simd_ops;
        d.gf_simd_cycles = gf_simd_cycles - o.gf_simd_cycles;
        d.gf32_ops = gf32_ops - o.gf32_ops;
        d.gf32_cycles = gf32_cycles - o.gf32_cycles;
        d.gfcfg_ops = gfcfg_ops - o.gfcfg_ops;
        d.gfcfg_cycles = gfcfg_cycles - o.gfcfg_cycles;
        d.faults_mem = faults_mem - o.faults_mem;
        d.faults_reg = faults_reg - o.faults_reg;
        d.faults_cfg = faults_cfg - o.faults_cfg;
        return d;
    }

    /** Ops in the paper's "ALUs" bucket (data processing + control). */
    uint64_t aluBucketOps() const { return alu_ops + ctrl_ops + branch_ops; }
    uint64_t aluBucketCycles() const
    {
        return alu_cycles + ctrl_cycles + branch_cycles;
    }

    std::string summary() const;
};

} // namespace gfp

#endif // GFP_SIM_STATS_H
