#include "sim/profiler.h"

#include <algorithm>

namespace gfp {

PcProfile::PcCount
PcProfile::at(uint32_t pc) const
{
    const uint32_t idx = pc >> 2;
    if ((pc & 3u) == 0 && idx < dense_.size())
        return dense_[idx];
    auto it = overflow_.find(pc);
    return it == overflow_.end() ? PcCount() : it->second;
}

std::vector<std::pair<uint32_t, PcProfile::PcCount>>
PcProfile::nonZero() const
{
    std::vector<std::pair<uint32_t, PcCount>> out;
    for (uint32_t i = 0; i < dense_.size(); ++i)
        if (dense_[i].instrs)
            out.emplace_back(4 * i, dense_[i]);
    for (const auto &[pc, c] : overflow_)
        if (c.instrs)
            out.emplace_back(pc, c);
    // dense_ entries are already ascending; overflow pcs interleave only
    // when they are unaligned or beyond the region, so a full sort keeps
    // the contract simple.
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

uint64_t
PcProfile::sumPcInstrs() const
{
    uint64_t s = 0;
    for (const auto &c : dense_)
        s += c.instrs;
    for (const auto &[pc, c] : overflow_)
        s += c.instrs;
    return s;
}

uint64_t
PcProfile::sumPcCycles() const
{
    uint64_t s = 0;
    for (const auto &c : dense_)
        s += c.cycles;
    for (const auto &[pc, c] : overflow_)
        s += c.cycles;
    return s;
}

bool
PcProfile::consistent() const
{
    uint64_t class_ops = 0, class_cycles = 0;
    for (unsigned i = 0; i < kNumInstrClasses; ++i) {
        class_ops += class_ops_[i];
        class_cycles += class_cycles_[i];
    }
    return sumPcInstrs() == total_instrs_ &&
           sumPcCycles() == total_cycles_ && class_ops == total_instrs_ &&
           class_cycles == total_cycles_;
}

} // namespace gfp
