/**
 * @file
 * Guest-execution phase tracing: turns a simulated run into Chrome
 * trace_event spans and markers (common/trace_event.h).
 *
 * A GuestTracer attaches to a Core through its per-retire trace hook
 * and emits:
 *
 *   - one "X" span per *kernel region* — the contiguous stretch of
 *     retired instructions whose pc falls between two code symbols of
 *     the program, named after the symbol that opens it (so `bl
 *     gf_dot` shows up as a `gf_dot` span nested in wall time);
 *   - one "i" instant per gfConfig load (field reconfiguration points
 *     are exactly where the paper's Table 4 kernels switch fields);
 *   - one "i" instant for the final trap, if the run trapped
 *     (reported through finish(), since the hook never sees traps).
 *
 * Guest time is converted to trace microseconds at the paper's 100 MHz
 * clock: 1 cycle = 0.01 us, so span durations read directly as guest
 * time at the published operating point.
 *
 * Attaching a trace hook forces the core onto the stepping path (the
 * fused fast path requires no per-retire hooks), so tracing costs
 * throughput — it is a debugging/visualization mode, not a profiling
 * mode; use PcProfile for overhead-sensitive attribution.
 */

#ifndef GFP_SIM_TRACER_H
#define GFP_SIM_TRACER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace_event.h"
#include "isa/program.h"
#include "sim/cpu.h"

namespace gfp {

class GuestTracer
{
  public:
    /** Track ids used in the emitted trace ("guest" process). */
    static constexpr int kGuestPid = 1;
    static constexpr int kPhaseTid = 1;  ///< kernel-region spans
    static constexpr int kMarkerTid = 2; ///< gfcfg / trap instants

    /**
     * @p clock_mhz converts guest cycles to trace microseconds; the
     * default is the paper's 100 MHz operating point.  The tracer
     * holds references to all three arguments — keep them alive while
     * attached.
     */
    GuestTracer(TraceLog &log, Core &core, const Program &program,
                double clock_mhz = 100.0);

    /** Install the per-retire hook (replaces any existing trace hook). */
    void attach();

    /**
     * Close the open region span, emit the trap marker if @p trap is a
     * real trap, and remove the hook.  Call once after the run.
     */
    void finish(const Trap *trap = nullptr);

  private:
    void onRetire(uint32_t pc, const Instr &in);
    /** Index into regions_ of the region containing @p pc (or -1). */
    int regionOf(uint32_t pc) const;
    double toUs(uint64_t cycles) const
    {
        return static_cast<double>(cycles) / clock_mhz_;
    }

    TraceLog &log_;
    Core &core_;
    const Program &program_;
    double clock_mhz_;

    /** Code symbols sorted by address; region i spans
     *  [regions_[i].addr, regions_[i+1].addr). */
    struct Region
    {
        uint32_t addr = 0;
        std::string name;
    };
    std::vector<Region> regions_;

    int cur_region_ = -1;
    uint64_t region_start_cycle_ = 0;
    uint64_t last_cycle_ = 0;
    bool attached_ = false;
};

} // namespace gfp

#endif // GFP_SIM_TRACER_H
