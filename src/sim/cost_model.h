/**
 * @file
 * The GFP cycle cost model, extracted from the core's execute loop so
 * the simulator and the static WCET certifier (analysis/certify.h)
 * provably share one accounting:
 *
 *   loads/stores            2 cycles (single-ported SRAM, two-stage
 *                           pipeline holds for the data phase)
 *   taken branches + calls  2 cycles (pipeline refill); untaken
 *                           conditionals fall through in 1
 *   jr / ret                2 cycles (always a transfer)
 *   gfConfig                2 cycles (reads its 64-bit blob)
 *   everything else         1 cycle (including every GF instruction)
 *
 * This header is deliberately dependency-free (isa only, no simulator
 * state) so analysis code can include it without linking gfp_sim; the
 * core's execute() consumes the same constants, and the dispatch
 * differential suite pins the two sides together at runtime.
 */

#ifndef GFP_SIM_COST_MODEL_H
#define GFP_SIM_COST_MODEL_H

#include "isa/isa.h"

namespace gfp {

/// Cycles for a data-memory access (load, store, or the gfcfg blob read).
constexpr unsigned kMemCycles = 2;

/// Cycles for a taken control transfer (refill of the two-stage pipe).
constexpr unsigned kTakenBranchCycles = 2;

/// Cycles for everything else, and for an untaken conditional branch.
constexpr unsigned kDefaultCycles = 1;

/**
 * Cycles @p op retires in when it commits, with @p taken resolving the
 * conditional-branch ambiguity.  Unconditional transfers (b, bl, jr,
 * ret) ignore @p taken — they always pay the refill.
 */
constexpr unsigned
cyclesFor(Op op, bool taken)
{
    switch (op) {
      case Op::kLdr: case Op::kStr: case Op::kLdrb: case Op::kStrb:
      case Op::kLdrh: case Op::kStrh: case Op::kLdrr: case Op::kStrr:
      case Op::kLdrbr: case Op::kStrbr: case Op::kLdrhr: case Op::kStrhr:
      case Op::kGfCfg:
        return kMemCycles;
      case Op::kB: case Op::kBl: case Op::kJr: case Op::kRet:
        return kTakenBranchCycles;
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBgt: case Op::kBle: case Op::kBlo: case Op::kBhs:
      case Op::kBhi: case Op::kBls:
        return taken ? kTakenBranchCycles : kDefaultCycles;
      default:
        return kDefaultCycles;
    }
}

/** Upper bound on the cycles one retirement of @p op can cost —
 *  the WCET certifier's per-instruction weight. */
constexpr unsigned
worstCaseCycles(Op op)
{
    return cyclesFor(op, /*taken=*/true);
}

/** Lower bound on the cycles one retirement of @p op can cost. */
constexpr unsigned
bestCaseCycles(Op op)
{
    return cyclesFor(op, /*taken=*/false);
}

} // namespace gfp

#endif // GFP_SIM_COST_MODEL_H
