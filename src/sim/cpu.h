/**
 * @file
 * The two-stage in-order GFP core.
 *
 * Two variants share this model, exactly mirroring the paper's
 * methodology (Sec. 3.3.1):
 *  - the *baseline* core (CoreKind::kBaseline) models the Cortex M0+
 *    class machine the paper compares against: same registers, same ALU
 *    and memory instructions, no GF arithmetic unit (GF opcodes fault);
 *  - the *GF processor* (CoreKind::kGfProcessor) adds the GF arithmetic
 *    unit and the Table 1 instructions.
 *
 * Cycle model (both cores, matching the paper's accounting):
 *   loads/stores           2 cycles
 *   taken branches + calls 2 cycles (two-stage pipeline refill)
 *   gfConfig               2 cycles (reads its 64-bit blob from memory)
 *   everything else        1 cycle (including all SIMD GF instructions
 *                          and the 32-bit partial product)
 */

#ifndef GFP_SIM_CPU_H
#define GFP_SIM_CPU_H

#include <array>
#include <functional>

#include "gfau/gf_unit.h"
#include "isa/isa.h"
#include "sim/memory.h"
#include "sim/stats.h"

namespace gfp {

enum class CoreKind { kBaseline, kGfProcessor };

class Core
{
  public:
    Core(Memory &mem, CoreKind kind);

    CoreKind kind() const { return kind_; }

    /** Reset architectural state; sp defaults to the top of memory. */
    void reset(uint32_t pc = 0);

    bool halted() const { return halted_; }
    uint32_t pc() const { return pc_; }

    uint32_t reg(unsigned idx) const;
    void setReg(unsigned idx, uint32_t value);

    /** Execute one instruction. Returns the cycles it took. */
    unsigned step();

    /**
     * Run until HALT or until @p max_instrs instructions retire.
     * Returns the number of instructions executed; fatal if the limit is
     * hit without halting (runaway program).
     */
    uint64_t run(uint64_t max_instrs = 500'000'000);

    const CycleStats &stats() const { return stats_; }
    void resetStats() { stats_ = CycleStats(); }

    Memory &memory() { return mem_; }
    GFArithmeticUnit &gfau();
    const GFArithmeticUnit &gfau() const;

    /** Optional per-retire hook: (pc, instruction) before side effects. */
    using TraceHook = std::function<void(uint32_t, const Instr &)>;
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }

  private:
    struct Flags
    {
        bool n = false, z = false, c = false, v = false;
    };

    void setFlagsSub(uint32_t a, uint32_t b);
    bool condition(Op op) const;
    unsigned execute(const Instr &in);

    Memory &mem_;
    CoreKind kind_;
    GFArithmeticUnit gfau_;
    std::array<uint32_t, kNumRegs> regs_{};
    uint32_t pc_ = 0;
    Flags flags_;
    bool halted_ = false;
    CycleStats stats_;
    TraceHook trace_;
};

} // namespace gfp

#endif // GFP_SIM_CPU_H
