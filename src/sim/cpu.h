/**
 * @file
 * The two-stage in-order GFP core.
 *
 * Two variants share this model, exactly mirroring the paper's
 * methodology (Sec. 3.3.1):
 *  - the *baseline* core (CoreKind::kBaseline) models the Cortex M0+
 *    class machine the paper compares against: same registers, same ALU
 *    and memory instructions, no GF arithmetic unit (GF opcodes trap);
 *  - the *GF processor* (CoreKind::kGfProcessor) adds the GF arithmetic
 *    unit and the Table 1 instructions.
 *
 * Cycle model (both cores, matching the paper's accounting):
 *   loads/stores           2 cycles
 *   taken branches + calls 2 cycles (two-stage pipeline refill)
 *   gfConfig               2 cycles (reads its 64-bit blob from memory)
 *   everything else        1 cycle (including all SIMD GF instructions
 *                          and the 32-bit partial product)
 *
 * Guest errors never abort the host: out-of-range accesses, illegal
 * instruction words, GF opcodes on the baseline, and corrupted gfConfig
 * blobs stop the core with a structured Trap (sim/trap.h).  A trapped
 * core reports the faulting pc/address/cycle and can be reset() and
 * rerun.  Fault-injection campaigns hook in per retired instruction via
 * setFaultHook and deliver SEUs through injectFault.
 */

#ifndef GFP_SIM_CPU_H
#define GFP_SIM_CPU_H

#include <array>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "gfau/gf_unit.h"
#include "isa/isa.h"
#include "sim/memory.h"
#include "sim/stats.h"
#include "sim/trap.h"

namespace gfp {

class PcProfile;
class Translation;

enum class CoreKind { kBaseline, kGfProcessor };

/**
 * How Core::run() executes the guest program.  Every mode retires the
 * same architectural state, cycle accounting and traps — the dispatch
 * differential suite holds all of them bit-identical; they differ only
 * in host speed.
 */
enum class DispatchMode : uint8_t {
    kPlain,      ///< single-step interpreter only
    kFused,      ///< fused threaded interpreter (default)
    kTranslated, ///< JIT-translated host code, deopt to fused/stepping
};

/** "plain" / "fused" / "translated". */
const char *dispatchModeName(DispatchMode mode);

/** Parse a --dispatch= value; false (out untouched) when unknown. */
bool parseDispatchMode(std::string_view name, DispatchMode &out);

/** Architectural state an SEU can strike (sim/fault_injector.h). */
enum class FaultTarget { kDataMemory, kRegisterFile, kConfigReg };

class Core
{
  public:
    Core(Memory &mem, CoreKind kind);
    ~Core();

    CoreKind kind() const { return kind_; }

    /** NZCV condition flags (public so translations can sync them). */
    struct Flags
    {
        bool n = false, z = false, c = false, v = false;
    };

    /** Reset architectural state; sp defaults to the top of memory.
     *  Clears halted and trapped state (stats are kept). */
    void reset(uint32_t pc = 0);

    bool halted() const { return halted_; }

    /** The core took a trap; see trap() for details. */
    bool trapped() const { return trap_.kind != TrapKind::kNone; }

    /** The last trap taken (kind == kNone if none since reset). */
    const Trap &trap() const { return trap_; }

    /** Halted or trapped — no further step() is legal until reset(). */
    bool stopped() const { return halted_ || trapped(); }

    uint32_t pc() const { return pc_; }

    uint32_t reg(unsigned idx) const;
    void setReg(unsigned idx, uint32_t value);

    /** Outcome of one step: the cycles it took, or the trap it hit. */
    struct StepResult
    {
        unsigned cycles = 0;
        Trap trap;
        bool ok() const { return !trap; }
    };

    /** Execute one instruction; never aborts on guest errors. */
    StepResult step();

    /**
     * Predecode the code region [0, code_bytes): each instruction word
     * is decoded once into a dense cache instead of being re-decoded on
     * every fetch.  Purely a host-side interpreter optimization — the
     * architectural behavior is unchanged: stores or SEU bit flips into
     * the code region invalidate the cache (via the memory's code-watch
     * epoch), undecodable words and fetches outside the region fall
     * back to the fetch-from-memory path and trap exactly as before.
     */
    void enablePredecode(uint32_t code_bytes);
    void disablePredecode();
    bool predecodeEnabled() const { return predecode_enabled_; }

    /**
     * Select the execution path run() uses.
     *
     * kFused (the default) is a threaded interpreter (computed goto
     * where the compiler supports it, a switch otherwise — see
     * dispatchKind()) over a fused micro-op stream derived from the
     * predecoded code.  The fusion pass recognizes hot adjacent pairs —
     * compare + conditional branch, load feeding a GF op,
     * address-generation ALU op feeding a load/store — and Itoh-Tsujii
     * style gfsqs square chains, and retires them in one dispatch.
     *
     * kTranslated additionally runs host code installed with
     * setTranslation() (src/jit) for the program regions it covers,
     * deopting to the fused interpreter for everything else.
     *
     * All modes are purely host-side optimizations: cycle accounting,
     * statistics, trap behavior and code-watch-epoch invalidation are
     * identical to single stepping
     * (tests/test_dispatch_differential.cc proves it).  run() only
     * leaves the stepping path when predecode is enabled and no trace
     * or fault hook is attached; any potentially-trapping situation
     * bails out, commits nothing, and re-executes through step() so
     * the architectural trap is raised exactly.
     */
    void setDispatchMode(DispatchMode mode) { dispatch_mode_ = mode; }
    DispatchMode dispatchMode() const { return dispatch_mode_; }

    /**
     * Install the host-code translation kTranslated dispatch runs
     * (nullptr uninstalls).  The translation is consulted only when
     * the dispatch mode is kTranslated and the fast path is usable at
     * all (predecode on, no trace/fault hook); it must uphold the
     * bail-before-commit contract (see sim/translation.h).
     */
    void setTranslation(std::unique_ptr<Translation> translation);
    Translation *translation() const { return translation_.get(); }

    /** Inner-interpreter flavor this build uses: "computed-goto" or
     *  "switch" (CMake option GFP_THREADED_DISPATCH). */
    static const char *dispatchKind();

    /**
     * One line per fused region of the current micro-op stream, e.g.
     * "0x0040 cmpi+bcc len=2" — consumed by tests and by the gfp-lint
     * --dump-fused gate.  Empty when predecode is disabled.
     */
    std::vector<std::string> fusionDump() const;

    /**
     * Run until HALT, a trap, or until @p max_instrs instructions
     * retire (which yields a Watchdog trap in the result — the core
     * itself stays runnable, the guard is host policy).  The result
     * carries the stats delta of this run.
     */
    RunResult run(uint64_t max_instrs = 500'000'000);

    const CycleStats &stats() const { return stats_; }
    void resetStats() { stats_ = CycleStats(); }

    Memory &memory() { return mem_; }
    GFArithmeticUnit &gfau();
    const GFArithmeticUnit &gfau() const;

    /**
     * Attach a per-PC profiler (sim/profiler.h); nullptr detaches.  The
     * profile receives one record per retired instruction with the same
     * class/cycle pair CycleStats sees, on *both* execution paths —
     * unlike a trace hook, attaching a profile does not force the
     * stepping path, and fused micro-ops are de-aggregated to their
     * constituent PCs so plain and fused profiles match exactly.  The
     * caller owns the profile and must keep it alive while attached.
     * Detached cost is one null check per retire.
     */
    void setProfile(PcProfile *profile) { profile_ = profile; }
    PcProfile *profile() const { return profile_; }

    /** Optional per-retire hook: (pc, instruction) before side effects. */
    using TraceHook = std::function<void(uint32_t, const Instr &)>;
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }

    /**
     * Optional per-cycle fault hook, called after every retired
     * instruction with the core and its cumulative cycle count — the
     * attachment point for FaultInjector.  The hook may mutate state
     * via injectFault and may requestTrap.
     */
    using FaultHook = std::function<void(Core &, uint64_t)>;
    void setFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

    /**
     * Deliver one SEU: flip bit @p bit of the chosen target.
     *  kDataMemory   index = byte address (mod memory size), bit mod 8
     *  kRegisterFile index = register (mod 16), bit mod 32
     *  kConfigReg    bit mod 60 (GF core only; see GFArithmeticUnit)
     * Updates the per-target injection counters in CycleStats.
     */
    void injectFault(FaultTarget target, uint32_t index, unsigned bit);

    /** Ask the core to take @p kind before the next instruction —
     *  used by fault hooks modeling parity/EDAC-signaled upsets. */
    void requestTrap(TrapKind kind) { requested_trap_ = kind; }

  private:
    friend class Translation; // architectural-state access for the JIT

    void setFlagsSub(uint32_t a, uint32_t b);
    bool condition(Op op) const;
    unsigned execute(const Instr &in);
    StepResult takeTrap(TrapKind kind, uint32_t addr);
    void rebuildPredecode();
    void rebuildFusion();
    void runFast(RunResult &res, uint64_t max_instrs);

    /** One predecoded code word; undecodable words stay invalid and
     *  divert to the slow fetch path for the architectural trap.  The
     *  statistics class rides along so the retire path skips a second
     *  opcode switch. */
    struct PredecodedWord
    {
        Instr in;
        InstrClass cls = InstrClass::kAlu;
        bool valid = false;
    };

    /**
     * One fused micro-op per code word: the best fusion *starting* at
     * that word, so branching into the middle of a fused pair simply
     * dispatches the inner instruction's own entry.  handler indexes
     * the fast interpreter's dispatch table (an enum private to
     * cpu.cc; 0 always means "divert to step()"), len is the number of
     * architectural instructions the handler retires, and a/b hold the
     * decoded head/tail instructions.
     */
    struct FusedOp
    {
        uint16_t handler = 0; ///< 0 == bail to the slow path
        uint8_t len = 1;
        Instr a, b;
    };

    Memory &mem_;
    CoreKind kind_;
    GFArithmeticUnit gfau_;
    std::array<uint32_t, kNumRegs> regs_{};
    uint32_t pc_ = 0;
    Flags flags_;
    bool halted_ = false;
    Trap trap_;
    TrapKind pending_trap_ = TrapKind::kNone;   // raised inside execute()
    uint32_t pending_addr_ = 0;
    TrapKind requested_trap_ = TrapKind::kNone; // raised via requestTrap()
    CycleStats stats_;
    PcProfile *profile_ = nullptr;
    TraceHook trace_;
    FaultHook fault_hook_;

    bool predecode_enabled_ = false;
    DispatchMode dispatch_mode_ = DispatchMode::kFused;
    std::unique_ptr<Translation> translation_;
    uint32_t predecode_limit_ = 0;        // byte limit of the code region
    uint64_t predecode_epoch_ = 0;        // memory code epoch at build
    std::vector<PredecodedWord> icache_;  // one entry per code word
    std::vector<FusedOp> fused_;          // one entry per code word
};

} // namespace gfp

#endif // GFP_SIM_CPU_H
