/**
 * @file
 * The seam between the simulator core and the template JIT (src/jit).
 *
 * A Translation is host code compiled from the guest program.  The core
 * stays ignorant of how it was produced: run() merely offers it the
 * current pc each time around the dispatch loop (kTranslated mode only)
 * and the translation either makes forward progress or declines, in
 * which case the fused interpreter and the stepping path take over for
 * that stretch — gfcfg barriers, untranslated code, stale translations
 * after a code-epoch bump.
 *
 * Contract (the same bail-before-commit discipline the fused
 * interpreter follows; tests/test_dispatch_differential.cc and
 * tests/test_jit.cc hold it):
 *
 *  - Architectural state after run() returns — registers, flags, pc,
 *    memory, CycleStats, per-PC profile, halted — must be exactly what
 *    single stepping the same retired instructions would have left.
 *  - A potentially-trapping instruction (out-of-range access, store
 *    into the watched code region, stale GFAU config, …) must not
 *    commit: the translation deopts with pc at the offending
 *    instruction and zero partial effects, so step() replays it and
 *    raises the exact architectural trap (or performs the watched
 *    store with its epoch bump).
 *  - At most `max_instrs - res.instrs` instructions may retire; on
 *    budget exhaustion the translation exits cleanly and run() raises
 *    the watchdog at the right boundary.
 *
 * The base class is a friend of Core and exposes exactly the
 * architectural state a translation needs through protected accessors,
 * so the sim library never links against the JIT.
 */

#ifndef GFP_SIM_TRANSLATION_H
#define GFP_SIM_TRANSLATION_H

#include <string>

#include "sim/cpu.h"

namespace gfp {

class Translation
{
  public:
    virtual ~Translation() = default;

    /**
     * Try to execute translated code starting at the core's current
     * pc, retiring at most `max_instrs - res.instrs` instructions into
     * @p res and the core's stats/profile.  Returns true if any
     * instruction retired.  Declining (wrong pc, stale code epoch,
     * unconfigured GFAU, exhausted budget) is always legal; making
     * partial progress and returning is always legal.
     */
    virtual bool run(Core &core, RunResult &res, uint64_t max_instrs) = 0;

    /** One-line description (backend, block count) for tools/tests. */
    virtual std::string describe() const = 0;

  protected:
    // Architectural-state access for implementations (Core befriends
    // this base; subclasses reach the state through these).
    static std::array<uint32_t, kNumRegs> &regs(Core &c) { return c.regs_; }
    static uint32_t &pc(Core &c) { return c.pc_; }
    static Core::Flags &flags(Core &c) { return c.flags_; }
    static bool &halted(Core &c) { return c.halted_; }
    static CycleStats &stats(Core &c) { return c.stats_; }
    static PcProfile *profile(Core &c) { return c.profile_; }
    static Memory &memory(Core &c) { return c.mem_; }
};

} // namespace gfp

#endif // GFP_SIM_TRANSLATION_H
