#include "sim/stats.h"

#include "common/strutil.h"

namespace gfp {

std::string
CycleStats::summary() const
{
    std::string s = strprintf(
        "instrs=%llu cycles=%llu | LD %llu/%llu ST %llu/%llu "
        "ALU %llu/%llu BR %llu/%llu CTRL %llu/%llu GFSIMD %llu/%llu "
        "GF32 %llu/%llu GFCFG %llu/%llu (ops/cycles)",
        static_cast<unsigned long long>(instrs),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(load_ops),
        static_cast<unsigned long long>(load_cycles),
        static_cast<unsigned long long>(store_ops),
        static_cast<unsigned long long>(store_cycles),
        static_cast<unsigned long long>(alu_ops),
        static_cast<unsigned long long>(alu_cycles),
        static_cast<unsigned long long>(branch_ops),
        static_cast<unsigned long long>(branch_cycles),
        static_cast<unsigned long long>(ctrl_ops),
        static_cast<unsigned long long>(ctrl_cycles),
        static_cast<unsigned long long>(gf_simd_ops),
        static_cast<unsigned long long>(gf_simd_cycles),
        static_cast<unsigned long long>(gf32_ops),
        static_cast<unsigned long long>(gf32_cycles),
        static_cast<unsigned long long>(gfcfg_ops),
        static_cast<unsigned long long>(gfcfg_cycles));
    if (faultsInjected()) {
        s += strprintf(" | SEU mem/reg/cfg %llu/%llu/%llu",
                       static_cast<unsigned long long>(faults_mem),
                       static_cast<unsigned long long>(faults_reg),
                       static_cast<unsigned long long>(faults_cfg));
    }
    return s;
}

} // namespace gfp
