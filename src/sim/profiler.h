/**
 * @file
 * Per-PC instruction/cycle attribution for the GFP core.
 *
 * A PcProfile attaches to a Core with Core::setProfile() and
 * accumulates, for every retired instruction, its pc, opcode class and
 * cycle cost.  Both execution paths feed it with identical records: the
 * stepping path records at retire in Core::step(), and the fused
 * threaded-dispatch path de-aggregates each fused micro-op to its
 * constituent PCs (head at pc, tail at pc+4, square chains at pc+4k)
 * with the same class/cycle pairs stepping would use — so a plain and a
 * fused run of the same program produce bit-identical profiles
 * (tests/test_profiler.cc holds this as an invariant).
 *
 * Attribution is exact, not sampled.  Overhead when detached is a
 * single predicted-not-taken null check per retire; when attached, the
 * hot path is one dense-array index per instruction (PCs inside the
 * configured code region) with a map fallback for stray PCs, so
 * attaching costs a few percent, never a different execution path.
 *
 * The profile's totals are designed to tie out exactly:
 *   sum over PCs of cycles == sum over classes of cycles == cycles()
 * and, when the profile covers a whole run, cycles() equals the
 * CycleStats delta of that run.  consistent() checks the internal
 * equalities.
 */

#ifndef GFP_SIM_PROFILER_H
#define GFP_SIM_PROFILER_H

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "isa/isa.h"

namespace gfp {

class PcProfile
{
  public:
    /** Counts attributed to one program counter. */
    struct PcCount
    {
        uint64_t instrs = 0;
        uint64_t cycles = 0;
        bool operator==(const PcCount &o) const = default;
    };

    /**
     * Size the dense per-PC table to cover [0, code_bytes).  Aligned
     * PCs inside the region hit a flat array; everything else (PCs past
     * the region, unaligned pcs from a corrupted jump) still counts,
     * through the overflow map.  Clears any accumulated counts.
     */
    void
    configure(uint32_t code_bytes)
    {
        dense_.assign(code_bytes / 4, PcCount());
        overflow_.clear();
        class_ops_.fill(0);
        class_cycles_.fill(0);
        total_instrs_ = 0;
        total_cycles_ = 0;
    }

    /** Drop all counts, keeping the configured region. */
    void
    clear()
    {
        for (auto &c : dense_)
            c = PcCount();
        overflow_.clear();
        class_ops_.fill(0);
        class_cycles_.fill(0);
        total_instrs_ = 0;
        total_cycles_ = 0;
    }

    /** Attribute one retired instruction.  Hot path — kept inline. */
    void
    record(uint32_t pc, InstrClass cls, unsigned cycles)
    {
        ++total_instrs_;
        total_cycles_ += cycles;
        const unsigned ci = static_cast<unsigned>(cls);
        ++class_ops_[ci];
        class_cycles_[ci] += cycles;
        const uint32_t idx = pc >> 2;
        if ((pc & 3u) == 0 && idx < dense_.size()) {
            ++dense_[idx].instrs;
            dense_[idx].cycles += cycles;
        } else {
            PcCount &c = overflow_[pc];
            ++c.instrs;
            c.cycles += cycles;
        }
    }

    /**
     * Attribute @p count retirements of the same instruction in one
     * call — how the translated dispatch path replays a block that
     * executed count times.  Equivalent to count record() calls (all
     * counters are linear), just without the per-iteration cost.
     */
    void
    record(uint32_t pc, InstrClass cls, unsigned cycles, uint64_t count)
    {
        if (count == 0)
            return;
        total_instrs_ += count;
        total_cycles_ += cycles * count;
        const unsigned ci = static_cast<unsigned>(cls);
        class_ops_[ci] += count;
        class_cycles_[ci] += cycles * count;
        const uint32_t idx = pc >> 2;
        if ((pc & 3u) == 0 && idx < dense_.size()) {
            dense_[idx].instrs += count;
            dense_[idx].cycles += cycles * count;
        } else {
            PcCount &c = overflow_[pc];
            c.instrs += count;
            c.cycles += cycles * count;
        }
    }

    uint64_t instrs() const { return total_instrs_; }
    uint64_t cycles() const { return total_cycles_; }

    uint64_t
    classOps(InstrClass cls) const
    {
        return class_ops_[static_cast<unsigned>(cls)];
    }
    uint64_t
    classCycles(InstrClass cls) const
    {
        return class_cycles_[static_cast<unsigned>(cls)];
    }

    /** Counts for one pc (zero if never executed). */
    PcCount at(uint32_t pc) const;

    /** Every pc with a nonzero count, ascending by pc. */
    std::vector<std::pair<uint32_t, PcCount>> nonZero() const;

    /** Sum of per-PC instruction counts (dense + overflow). */
    uint64_t sumPcInstrs() const;
    /** Sum of per-PC cycle counts (dense + overflow). */
    uint64_t sumPcCycles() const;

    /** Internal tie-out: per-PC sums and per-class sums both equal the
     *  totals.  A false return means an attribution path dropped or
     *  double-counted a record. */
    bool consistent() const;

  private:
    std::vector<PcCount> dense_;           // pc>>2 indexed, aligned in-region
    std::map<uint32_t, PcCount> overflow_; // everything else
    std::array<uint64_t, kNumInstrClasses> class_ops_{};
    std::array<uint64_t, kNumInstrClasses> class_cycles_{};
    uint64_t total_instrs_ = 0;
    uint64_t total_cycles_ = 0;
};

} // namespace gfp

#endif // GFP_SIM_PROFILER_H
