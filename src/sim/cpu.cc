#include "sim/cpu.h"

#include "common/logging.h"
#include "common/strutil.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "sim/cost_model.h"
#include "sim/profiler.h"
#include "sim/translation.h"

// Inner-interpreter flavor.  GFP_THREADED_DISPATCH is normally set by
// CMake (option of the same name, default ON); computed goto needs the
// GNU labels-as-values extension, so other compilers silently get the
// portable switch loop.
#ifndef GFP_THREADED_DISPATCH
#define GFP_THREADED_DISPATCH 1
#endif
#if GFP_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define GFP_FAST_GOTO 1
#else
#define GFP_FAST_GOTO 0
#endif

namespace gfp {

namespace {

// Dispatch-table indices for the fast interpreter.  The fused forms
// come first (hBail == 0 matches FusedOp's default "divert to step()"),
// then one handler per opcode in Op-enum order.
#define GFP_FAST_OPS(X)                                                     \
    X(Add) X(Sub) X(And) X(Orr) X(Eor) X(Lsl) X(Lsr) X(Asr) X(Mul)         \
    X(Mov) X(Cmp)                                                           \
    X(Addi) X(Subi) X(Andi) X(Orri) X(Eori) X(Lsli) X(Lsri) X(Asri)        \
    X(Movi) X(Movt) X(Cmpi)                                                 \
    X(Ldr) X(Str) X(Ldrb) X(Strb) X(Ldrh) X(Strh)                          \
    X(Ldrr) X(Strr) X(Ldrbr) X(Strbr) X(Ldrhr) X(Strhr)                    \
    X(B) X(Beq) X(Bne) X(Blt) X(Bge) X(Bgt) X(Ble) X(Blo) X(Bhs) X(Bhi)    \
    X(Bls) X(Bl) X(Jr) X(Ret) X(Nop) X(Halt)                               \
    X(GfMuls) X(GfInvs) X(GfSqs) X(GfPows) X(GfAdds) X(Gf32Mul) X(GfCfg)

enum : uint16_t {
    hBail = 0,
    hCmpBcc,
    hCmpiBcc,
    hLdGf,
    hAluLd,
    hAluSt,
    hSqChain,
#define GFP_H(name) h##name,
    GFP_FAST_OPS(GFP_H)
#undef GFP_H
};

constexpr uint16_t hOpBase = hAdd;
static_assert(hOpBase + static_cast<uint16_t>(Op::kHalt) == hHalt,
              "handler table out of sync with the Op enum");
static_assert(hOpBase + static_cast<uint16_t>(Op::kGfCfg) == hGfCfg,
              "handler table out of sync with the Op enum");

bool
isCondBranchOp(Op op)
{
    switch (op) {
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBgt: case Op::kBle: case Op::kBlo: case Op::kBhs:
      case Op::kBhi: case Op::kBls:
        return true;
      default:
        return false;
    }
}

bool
isLoadOp(Op op)
{
    return classOf(op) == InstrClass::kLoad;
}

bool
isStoreOp(Op op)
{
    return classOf(op) == InstrClass::kStore;
}

/** Register-indexed memory forms (address = rs1 + rs2). */
bool
isRegFormMem(Op op)
{
    switch (op) {
      case Op::kLdrr: case Op::kStrr: case Op::kLdrbr:
      case Op::kStrbr: case Op::kLdrhr: case Op::kStrhr:
        return true;
      default:
        return false;
    }
}

/** SIMD GF ops fusable behind a load. */
bool
isSimdGfOp(Op op)
{
    switch (op) {
      case Op::kGfMuls: case Op::kGfInvs: case Op::kGfSqs:
      case Op::kGfPows: case Op::kGfAdds:
        return true;
      default:
        return false;
    }
}

/** SIMD GF ops with a second register source. */
bool
simdReadsRs2(Op op)
{
    return op == Op::kGfMuls || op == Op::kGfPows || op == Op::kGfAdds;
}

/** ALU ops that commonly generate addresses and can never trap. */
bool
isAddrGenAluOp(Op op)
{
    switch (op) {
      case Op::kAdd: case Op::kAddi: case Op::kSub: case Op::kSubi:
      case Op::kLsl: case Op::kLsli: case Op::kLsr: case Op::kLsri:
      case Op::kMov: case Op::kMovi:
        return true;
      default:
        return false;
    }
}

const char *
fusedKindName(uint16_t handler)
{
    switch (handler) {
      case hCmpBcc:  return "cmp+bcc";
      case hCmpiBcc: return "cmpi+bcc";
      case hLdGf:    return "ld+gf";
      case hAluLd:   return "alu+ld";
      case hAluSt:   return "alu+st";
      case hSqChain: return "gfsqs-chain";
      default:       return "single";
    }
}

} // namespace

const char *
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::kPlain:      return "plain";
      case DispatchMode::kFused:      return "fused";
      case DispatchMode::kTranslated: return "translated";
    }
    return "?";
}

bool
parseDispatchMode(std::string_view name, DispatchMode &out)
{
    if (name == "plain")
        out = DispatchMode::kPlain;
    else if (name == "fused")
        out = DispatchMode::kFused;
    else if (name == "translated")
        out = DispatchMode::kTranslated;
    else
        return false;
    return true;
}

Core::Core(Memory &mem, CoreKind kind) : mem_(mem), kind_(kind)
{
    reset();
}

Core::~Core() = default; // here so ~Translation is complete

void
Core::setTranslation(std::unique_ptr<Translation> translation)
{
    translation_ = std::move(translation);
}

void
Core::reset(uint32_t pc)
{
    regs_.fill(0);
    regs_[kRegSp] = static_cast<uint32_t>(mem_.size()) - 16;
    pc_ = pc;
    flags_ = Flags();
    halted_ = false;
    trap_ = Trap();
    pending_trap_ = TrapKind::kNone;
    requested_trap_ = TrapKind::kNone;
}

uint32_t
Core::reg(unsigned idx) const
{
    GFP_ASSERT(idx < kNumRegs);
    return regs_[idx];
}

void
Core::setReg(unsigned idx, uint32_t value)
{
    GFP_ASSERT(idx < kNumRegs);
    regs_[idx] = value;
}

GFArithmeticUnit &
Core::gfau()
{
    GFP_ASSERT(kind_ == CoreKind::kGfProcessor,
               "baseline core has no GF arithmetic unit");
    return gfau_;
}

const GFArithmeticUnit &
Core::gfau() const
{
    GFP_ASSERT(kind_ == CoreKind::kGfProcessor);
    return gfau_;
}

void
Core::setFlagsSub(uint32_t a, uint32_t b)
{
    uint32_t r = a - b;
    flags_.n = (r >> 31) & 1;
    flags_.z = r == 0;
    flags_.c = a >= b; // ARM convention: C set means "no borrow"
    flags_.v = (((a ^ b) & (a ^ r)) >> 31) & 1;
}

bool
Core::condition(Op op) const
{
    switch (op) {
      case Op::kB:
      case Op::kBl:
        return true;
      case Op::kBeq: return flags_.z;
      case Op::kBne: return !flags_.z;
      case Op::kBlt: return flags_.n != flags_.v;
      case Op::kBge: return flags_.n == flags_.v;
      case Op::kBgt: return !flags_.z && flags_.n == flags_.v;
      case Op::kBle: return flags_.z || flags_.n != flags_.v;
      case Op::kBlo: return !flags_.c;
      case Op::kBhs: return flags_.c;
      case Op::kBhi: return flags_.c && !flags_.z;
      case Op::kBls: return !flags_.c || flags_.z;
      default:
        GFP_PANIC("condition() on non-branch %s", opName(op));
    }
}

unsigned
Core::execute(const Instr &in)
{
    auto &r = regs_;
    const uint32_t next_pc = pc_ + 4;
    uint32_t new_pc = next_pc;
    unsigned cycles = kDefaultCycles;

    if (isGfOp(in.op) && kind_ == CoreKind::kBaseline) {
        pending_trap_ = TrapKind::kGfOnBaseline;
        pending_addr_ = static_cast<uint32_t>(in.op);
        return 0;
    }
    // An SEU in the m field of the live config register leaves the
    // datapath in an undefined mode: detect it at the next GF
    // instruction (gfcfg excepted — reloading is how software scrubs).
    if (isGfOp(in.op) && in.op != Op::kGfCfg &&
        kind_ == CoreKind::kGfProcessor && !gfau_.configValid()) {
        pending_trap_ = TrapKind::kGfConfigCorrupt;
        pending_addr_ = 0;
        return 0;
    }

    switch (in.op) {
      case Op::kAdd: r[in.rd] = r[in.rs1] + r[in.rs2]; break;
      case Op::kSub: r[in.rd] = r[in.rs1] - r[in.rs2]; break;
      case Op::kAnd: r[in.rd] = r[in.rs1] & r[in.rs2]; break;
      case Op::kOrr: r[in.rd] = r[in.rs1] | r[in.rs2]; break;
      case Op::kEor: r[in.rd] = r[in.rs1] ^ r[in.rs2]; break;
      case Op::kLsl: r[in.rd] = r[in.rs1] << (r[in.rs2] & 31); break;
      case Op::kLsr: r[in.rd] = r[in.rs1] >> (r[in.rs2] & 31); break;
      case Op::kAsr:
        r[in.rd] = static_cast<uint32_t>(
            static_cast<int32_t>(r[in.rs1]) >> (r[in.rs2] & 31));
        break;
      case Op::kMul: r[in.rd] = r[in.rs1] * r[in.rs2]; break;
      case Op::kMov: r[in.rd] = r[in.rs1]; break;
      case Op::kCmp: setFlagsSub(r[in.rs1], r[in.rs2]); break;

      case Op::kAddi: r[in.rd] = r[in.rs1] + static_cast<uint32_t>(in.imm); break;
      case Op::kSubi: r[in.rd] = r[in.rs1] - static_cast<uint32_t>(in.imm); break;
      case Op::kAndi: r[in.rd] = r[in.rs1] & static_cast<uint32_t>(in.imm); break;
      case Op::kOrri: r[in.rd] = r[in.rs1] | static_cast<uint32_t>(in.imm); break;
      case Op::kEori: r[in.rd] = r[in.rs1] ^ static_cast<uint32_t>(in.imm); break;
      case Op::kLsli: r[in.rd] = r[in.rs1] << (in.imm & 31); break;
      case Op::kLsri: r[in.rd] = r[in.rs1] >> (in.imm & 31); break;
      case Op::kAsri:
        r[in.rd] = static_cast<uint32_t>(
            static_cast<int32_t>(r[in.rs1]) >> (in.imm & 31));
        break;
      case Op::kMovi: r[in.rd] = static_cast<uint32_t>(in.imm) & 0xffff; break;
      case Op::kMovt:
        r[in.rd] = (r[in.rd] & 0xffff) |
                   ((static_cast<uint32_t>(in.imm) & 0xffff) << 16);
        break;
      case Op::kCmpi: setFlagsSub(r[in.rs1], static_cast<uint32_t>(in.imm)); break;

      case Op::kLdr:
        r[in.rd] = mem_.read32(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = kMemCycles;
        break;
      case Op::kStr:
        mem_.write32(r[in.rs1] + static_cast<uint32_t>(in.imm), r[in.rd]);
        cycles = kMemCycles;
        break;
      case Op::kLdrb:
        r[in.rd] = mem_.read8(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = kMemCycles;
        break;
      case Op::kStrb:
        mem_.write8(r[in.rs1] + static_cast<uint32_t>(in.imm),
                    static_cast<uint8_t>(r[in.rd]));
        cycles = kMemCycles;
        break;
      case Op::kLdrh:
        r[in.rd] = mem_.read16(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = kMemCycles;
        break;
      case Op::kStrh:
        mem_.write16(r[in.rs1] + static_cast<uint32_t>(in.imm),
                     static_cast<uint16_t>(r[in.rd]));
        cycles = kMemCycles;
        break;
      case Op::kLdrr:
        r[in.rd] = mem_.read32(r[in.rs1] + r[in.rs2]);
        cycles = kMemCycles;
        break;
      case Op::kStrr:
        mem_.write32(r[in.rs1] + r[in.rs2], r[in.rd]);
        cycles = kMemCycles;
        break;
      case Op::kLdrbr:
        r[in.rd] = mem_.read8(r[in.rs1] + r[in.rs2]);
        cycles = kMemCycles;
        break;
      case Op::kStrbr:
        mem_.write8(r[in.rs1] + r[in.rs2], static_cast<uint8_t>(r[in.rd]));
        cycles = kMemCycles;
        break;
      case Op::kLdrhr:
        r[in.rd] = mem_.read16(r[in.rs1] + r[in.rs2]);
        cycles = kMemCycles;
        break;
      case Op::kStrhr:
        mem_.write16(r[in.rs1] + r[in.rs2], static_cast<uint16_t>(r[in.rd]));
        cycles = kMemCycles;
        break;

      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBgt:
      case Op::kBle:
      case Op::kBlo:
      case Op::kBhs:
      case Op::kBhi:
      case Op::kBls:
      case Op::kBl:
        if (condition(in.op)) {
            if (in.op == Op::kBl)
                r[kRegLr] = next_pc;
            new_pc = next_pc + static_cast<uint32_t>(in.imm) * 4;
            cycles = kTakenBranchCycles;
        }
        break;
      case Op::kJr:
        new_pc = r[in.rs1];
        cycles = kTakenBranchCycles;
        break;
      case Op::kRet:
        new_pc = r[kRegLr];
        cycles = kTakenBranchCycles;
        break;
      case Op::kNop:
        break;
      case Op::kHalt:
        halted_ = true;
        break;

      case Op::kGfMuls:
        r[in.rd] = gfau_.simdMult(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGfInvs:
        r[in.rd] = gfau_.simdInverse(r[in.rs1]);
        break;
      case Op::kGfSqs:
        r[in.rd] = gfau_.simdSquare(r[in.rs1]);
        break;
      case Op::kGfPows:
        r[in.rd] = gfau_.simdPower(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGfAdds:
        r[in.rd] = gfau_.simdAdd(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGf32Mul: {
        uint32_t hi, lo;
        gfau_.mult32(r[in.rs1], r[in.rs2], hi, lo);
        r[in.rd] = hi;
        r[in.rd2] = lo;
        break;
      }
      case Op::kGfCfg: {
        uint64_t blob = mem_.read64(static_cast<uint32_t>(in.imm));
        GFConfig cfg;
        if (!GFConfig::tryUnpack(blob, cfg)) {
            pending_trap_ = TrapKind::kGfConfigCorrupt;
            pending_addr_ = static_cast<uint32_t>(in.imm);
            return 0;
        }
        gfau_.loadConfig(cfg);
        cycles = kMemCycles;
        break;
      }

      default:
        GFP_PANIC("unhandled opcode %s", opName(in.op));
    }

    pc_ = new_pc;
    return cycles;
}

Core::StepResult
Core::takeTrap(TrapKind kind, uint32_t addr)
{
    trap_ = Trap{kind, pc_, addr, stats_.cycles};
    StepResult out;
    out.trap = trap_;
    return out;
}

void
Core::enablePredecode(uint32_t code_bytes)
{
    predecode_enabled_ = true;
    if (code_bytes > mem_.size())
        code_bytes = static_cast<uint32_t>(mem_.size());
    predecode_limit_ = code_bytes & ~3u;
    mem_.watchCode(predecode_limit_);
    rebuildPredecode();
}

void
Core::disablePredecode()
{
    predecode_enabled_ = false;
    predecode_limit_ = 0;
    mem_.watchCode(0);
    icache_.clear();
    fused_.clear();
}

void
Core::rebuildPredecode()
{
    icache_.assign(predecode_limit_ / 4, PredecodedWord());
    for (uint32_t i = 0; i < predecode_limit_ / 4; ++i) {
        PredecodedWord &p = icache_[i];
        p.valid = tryDecode(mem_.read32(4 * i), p.in);
        if (p.valid)
            p.cls = classOf(p.in.op);
    }
    predecode_epoch_ = mem_.codeEpoch();
    rebuildFusion();
}

void
Core::rebuildFusion()
{
    const size_t n = icache_.size();
    fused_.assign(n, FusedOp());

    auto singleHandler = [this](const Instr &in) -> uint16_t {
        // Ops with trap-heavy or rare semantics stay on the slow path:
        // gfcfg validates a memory blob, and every GF op on a baseline
        // core must raise GfOnBaseline.
        if (in.op == Op::kGfCfg)
            return hBail;
        if (kind_ == CoreKind::kBaseline && isGfOp(in.op))
            return hBail;
        return static_cast<uint16_t>(hOpBase +
                                     static_cast<uint16_t>(in.op));
    };

    for (size_t i = 0; i < n; ++i) {
        FusedOp &f = fused_[i];
        if (!icache_[i].valid)
            continue; // stays hBail: step() raises IllegalInstruction
        const Instr &a = icache_[i].in;
        f.handler = singleHandler(a);
        f.len = 1;
        f.a = a;
        if (f.handler == hBail)
            continue;
        const Instr *b =
            (i + 1 < n && icache_[i + 1].valid) ? &icache_[i + 1].in
                                                : nullptr;

        // compare + conditional branch (flag producer feeds consumer)
        if (b && (a.op == Op::kCmp || a.op == Op::kCmpi) &&
            isCondBranchOp(b->op)) {
            f.handler = a.op == Op::kCmp ? hCmpBcc : hCmpiBcc;
            f.len = 2;
            f.b = *b;
            continue;
        }
        // Itoh-Tsujii square-chain run: gfsqs rd, ... ; gfsqs rd, rd ...
        if (kind_ == CoreKind::kGfProcessor && a.op == Op::kGfSqs) {
            size_t j = i + 1;
            while (j < n && j - i < 255 && icache_[j].valid &&
                   icache_[j].in.op == Op::kGfSqs &&
                   icache_[j].in.rd == a.rd && icache_[j].in.rs1 == a.rd)
                ++j;
            if (j - i >= 2) {
                f.handler = hSqChain;
                f.len = static_cast<uint8_t>(j - i);
                continue;
            }
        }
        // load feeding a SIMD GF op
        if (b && kind_ == CoreKind::kGfProcessor && isLoadOp(a.op) &&
            isSimdGfOp(b->op) &&
            (b->rs1 == a.rd || (simdReadsRs2(b->op) && b->rs2 == a.rd))) {
            f.handler = hLdGf;
            f.len = 2;
            f.b = *b;
            continue;
        }
        // address-generation ALU op feeding a load/store
        if (b && isAddrGenAluOp(a.op) &&
            (isLoadOp(b->op) || isStoreOp(b->op)) &&
            (b->rs1 == a.rd || (isRegFormMem(b->op) && b->rs2 == a.rd))) {
            f.handler = isLoadOp(b->op) ? hAluLd : hAluSt;
            f.len = 2;
            f.b = *b;
            continue;
        }
    }
}

const char *
Core::dispatchKind()
{
#if GFP_FAST_GOTO
    return "computed-goto";
#else
    return "switch";
#endif
}

std::vector<std::string>
Core::fusionDump() const
{
    std::vector<std::string> out;
    for (size_t i = 0; i < fused_.size(); ++i) {
        const FusedOp &f = fused_[i];
        if (f.handler == hBail || f.len < 2)
            continue;
        out.push_back(strprintf("0x%04zx %s len=%u", 4 * i,
                                fusedKindName(f.handler),
                                static_cast<unsigned>(f.len)));
    }
    return out;
}

/**
 * The fast path run() uses: a threaded interpreter over the fused
 * micro-op stream.  Invariants that keep it bit-exact with step():
 *
 *  - Every dispatch re-checks the code epoch, the pc, and the watchdog
 *    budget, so self-modifying stores and SEU flips de-fuse before the
 *    next instruction issues.
 *  - A handler that might trap (memory out of range, stale GFAU config,
 *    gfcfg, GF op on the baseline, undecodable word) *returns before
 *    committing anything*; run() then executes that instruction through
 *    step(), which raises the exact architectural trap.
 *  - Statistics are recorded with the same per-instruction record()
 *    calls and the same class/cycle pairs the slow path uses.
 */
void
Core::runFast(RunResult &res, uint64_t max_instrs)
{
    if (requested_trap_ != TrapKind::kNone)
        return;
    if (predecode_epoch_ != mem_.codeEpoch())
        rebuildPredecode();

    auto &r = regs_;
    const size_t msize = mem_.size();
    const uint32_t limit = predecode_limit_;
    const FusedOp *f = nullptr;

    // Every use sites a bounds check first, so the unchecked inline
    // accessors apply; storeFast still bumps the code epoch for writes
    // into the watched region.
    auto memLoad = [this](uint32_t a, unsigned n) -> uint32_t {
        return mem_.loadFast(a, n);
    };
    auto memStore = [this](uint32_t a, unsigned n, uint32_t v) {
        mem_.storeFast(a, n, v);
    };
    auto eaWidth = [](Op op) -> unsigned {
        switch (op) {
          case Op::kLdr: case Op::kStr: case Op::kLdrr: case Op::kStrr:
            return 4;
          case Op::kLdrh: case Op::kStrh: case Op::kLdrhr: case Op::kStrhr:
            return 2;
          default:
            return 1;
        }
    };
    auto simdApply = [this, &r](const Instr &in) -> uint32_t {
        switch (in.op) {
          case Op::kGfMuls: return gfau_.simdMult(r[in.rs1], r[in.rs2]);
          case Op::kGfInvs: return gfau_.simdInverse(r[in.rs1]);
          case Op::kGfSqs:  return gfau_.simdSquare(r[in.rs1]);
          case Op::kGfPows: return gfau_.simdPower(r[in.rs1], r[in.rs2]);
          default:          return gfau_.simdAdd(r[in.rs1], r[in.rs2]);
        }
    };
    // Only the ops isAddrGenAluOp() admits — none can trap.
    auto aluValue = [&r](const Instr &in) -> uint32_t {
        switch (in.op) {
          case Op::kAdd:  return r[in.rs1] + r[in.rs2];
          case Op::kAddi: return r[in.rs1] + static_cast<uint32_t>(in.imm);
          case Op::kSub:  return r[in.rs1] - r[in.rs2];
          case Op::kSubi: return r[in.rs1] - static_cast<uint32_t>(in.imm);
          case Op::kLsl:  return r[in.rs1] << (r[in.rs2] & 31);
          case Op::kLsli: return r[in.rs1] << (in.imm & 31);
          case Op::kLsr:  return r[in.rs1] >> (r[in.rs2] & 31);
          case Op::kLsri: return r[in.rs1] >> (in.imm & 31);
          case Op::kMov:  return r[in.rs1];
          default:        return static_cast<uint32_t>(in.imm) & 0xffff;
        }
    };

// Re-checked before *every* dispatch: stale code epoch, pc outside the
// predecoded region, or an exhausted instruction budget all divert to
// the caller (which steps or raises the watchdog).
#define GFP_CHECKS                                                          \
    do {                                                                    \
        if (predecode_epoch_ != mem_.codeEpoch())                           \
            return;                                                         \
        if (pc_ >= limit || (pc_ & 3u) != 0)                                \
            return;                                                         \
        f = &fused_[pc_ >> 2];                                              \
        if (res.instrs + f->len > max_instrs)                               \
            return;                                                         \
    } while (0)

#if GFP_FAST_GOTO
    // Computed-goto threading: each handler jumps straight to the next
    // one through kLabels, no central loop.  Order must match the
    // handler enum exactly.
    static const void *const kLabels[] = {
        &&L_Bail, &&L_CmpBcc, &&L_CmpiBcc, &&L_LdGf, &&L_AluLd,
        &&L_AluSt, &&L_SqChain,
#define GFP_L(name) &&L_##name,
        GFP_FAST_OPS(GFP_L)
#undef GFP_L
    };
#define GFP_CASE(name) L_##name:
#define GFP_NEXT                                                            \
    do {                                                                    \
        GFP_CHECKS;                                                         \
        goto *kLabels[f->handler];                                          \
    } while (0)
    GFP_CHECKS;
    goto *kLabels[f->handler];
#else
    // Portable fallback: one switch per dispatch inside a tight loop.
#define GFP_CASE(name) case h##name:
#define GFP_NEXT break
    for (;;) {
        GFP_CHECKS;
        switch (f->handler) {
#endif

#define GFP_RETIRE(cls, cyc, target)                                        \
    do {                                                                    \
        const uint32_t retire_pc = pc_;                                     \
        pc_ = (target);                                                     \
        stats_.record(InstrClass::cls, (cyc));                              \
        if (profile_)                                                       \
            profile_->record(retire_pc, InstrClass::cls, (cyc));            \
        ++res.instrs;                                                       \
    } while (0)

#define GFP_ALU(name, expr)                                                 \
    GFP_CASE(name)                                                          \
    {                                                                       \
        const Instr &in = f->a;                                             \
        r[in.rd] = (expr);                                                  \
        GFP_RETIRE(kAlu, 1, pc_ + 4);                                       \
        GFP_NEXT;                                                           \
    }

#define GFP_LD(name, nbytes, addrexpr)                                      \
    GFP_CASE(name)                                                          \
    {                                                                       \
        const Instr &in = f->a;                                             \
        const uint32_t a32 = (addrexpr);                                    \
        if (static_cast<uint64_t>(a32) + (nbytes) > msize)                  \
            return;                                                         \
        r[in.rd] = memLoad(a32, (nbytes));                                  \
        GFP_RETIRE(kLoad, kMemCycles, pc_ + 4);                                      \
        GFP_NEXT;                                                           \
    }

#define GFP_ST(name, nbytes, addrexpr)                                      \
    GFP_CASE(name)                                                          \
    {                                                                       \
        const Instr &in = f->a;                                             \
        const uint32_t a32 = (addrexpr);                                    \
        if (static_cast<uint64_t>(a32) + (nbytes) > msize)                  \
            return;                                                         \
        memStore(a32, (nbytes), r[in.rd]);                                  \
        GFP_RETIRE(kStore, kMemCycles, pc_ + 4);                                     \
        GFP_NEXT;                                                           \
    }

#define GFP_BR(name, taken_expr)                                            \
    GFP_CASE(name)                                                          \
    {                                                                       \
        if (taken_expr) {                                                   \
            GFP_RETIRE(kBranch, kTakenBranchCycles,                     \
                       pc_ + 4 + static_cast<uint32_t>(f->a.imm) * 4);      \
        } else {                                                            \
            GFP_RETIRE(kBranch, kDefaultCycles, pc_ + 4);                                \
        }                                                                   \
        GFP_NEXT;                                                           \
    }

// Fused compare + conditional branch: flags commit, then the branch at
// pc+4 resolves against them (its target is relative to pc+8).
#define GFP_CMPBCC_TAIL                                                     \
    do {                                                                    \
        stats_.record(InstrClass::kAlu, 1);                                 \
        const unsigned br_cyc =                                             \
            condition(f->b.op) ? kTakenBranchCycles : kDefaultCycles;       \
        stats_.record(InstrClass::kBranch, br_cyc);                         \
        if (profile_) {                                                     \
            profile_->record(pc_, InstrClass::kAlu, 1);                     \
            profile_->record(pc_ + 4, InstrClass::kBranch, br_cyc);         \
        }                                                                   \
        if (br_cyc == kTakenBranchCycles)                                   \
            pc_ = pc_ + 8 + static_cast<uint32_t>(f->b.imm) * 4;            \
        else                                                                \
            pc_ += 8;                                                       \
        res.instrs += 2;                                                    \
    } while (0)

    GFP_CASE(Bail)
    {
        return;
    }

    GFP_CASE(CmpBcc)
    {
        setFlagsSub(r[f->a.rs1], r[f->a.rs2]);
        GFP_CMPBCC_TAIL;
        GFP_NEXT;
    }

    GFP_CASE(CmpiBcc)
    {
        setFlagsSub(r[f->a.rs1], static_cast<uint32_t>(f->a.imm));
        GFP_CMPBCC_TAIL;
        GFP_NEXT;
    }

    GFP_CASE(LdGf)
    {
        if (!gfau_.configValid())
            return;
        const Instr &ld = f->a;
        const unsigned n = eaWidth(ld.op);
        const uint32_t a32 = isRegFormMem(ld.op)
                                 ? r[ld.rs1] + r[ld.rs2]
                                 : r[ld.rs1] + static_cast<uint32_t>(ld.imm);
        if (static_cast<uint64_t>(a32) + n > msize)
            return;
        r[ld.rd] = memLoad(a32, n);
        r[f->b.rd] = simdApply(f->b);
        stats_.record(InstrClass::kLoad, kMemCycles);
        stats_.record(InstrClass::kGfSimd, 1);
        if (profile_) {
            profile_->record(pc_, InstrClass::kLoad, kMemCycles);
            profile_->record(pc_ + 4, InstrClass::kGfSimd, 1);
        }
        pc_ += 8;
        res.instrs += 2;
        GFP_NEXT;
    }

    GFP_CASE(AluLd)
    {
        const Instr &alu = f->a;
        const Instr &ld = f->b;
        const uint32_t t = aluValue(alu);
        const uint32_t base = ld.rs1 == alu.rd ? t : r[ld.rs1];
        const unsigned n = eaWidth(ld.op);
        const uint32_t a32 =
            isRegFormMem(ld.op)
                ? base + (ld.rs2 == alu.rd ? t : r[ld.rs2])
                : base + static_cast<uint32_t>(ld.imm);
        if (static_cast<uint64_t>(a32) + n > msize)
            return; // nothing committed; step() replays both instructions
        r[alu.rd] = t;
        r[ld.rd] = memLoad(a32, n);
        stats_.record(InstrClass::kAlu, 1);
        stats_.record(InstrClass::kLoad, kMemCycles);
        if (profile_) {
            profile_->record(pc_, InstrClass::kAlu, 1);
            profile_->record(pc_ + 4, InstrClass::kLoad, kMemCycles);
        }
        pc_ += 8;
        res.instrs += 2;
        GFP_NEXT;
    }

    GFP_CASE(AluSt)
    {
        const Instr &alu = f->a;
        const Instr &st = f->b;
        const uint32_t t = aluValue(alu);
        const uint32_t base = st.rs1 == alu.rd ? t : r[st.rs1];
        const unsigned n = eaWidth(st.op);
        const uint32_t a32 =
            isRegFormMem(st.op)
                ? base + (st.rs2 == alu.rd ? t : r[st.rs2])
                : base + static_cast<uint32_t>(st.imm);
        if (static_cast<uint64_t>(a32) + n > msize)
            return;
        const uint32_t val = st.rd == alu.rd ? t : r[st.rd];
        r[alu.rd] = t;
        // A store into the code region bumps the epoch; the next
        // dispatch's GFP_CHECKS sees it and de-fuses.
        memStore(a32, n, val);
        stats_.record(InstrClass::kAlu, 1);
        stats_.record(InstrClass::kStore, kMemCycles);
        if (profile_) {
            profile_->record(pc_, InstrClass::kAlu, 1);
            profile_->record(pc_ + 4, InstrClass::kStore, kMemCycles);
        }
        pc_ += 8;
        res.instrs += 2;
        GFP_NEXT;
    }

    GFP_CASE(SqChain)
    {
        if (!gfau_.configValid())
            return;
        uint32_t v = gfau_.simdSquare(r[f->a.rs1]);
        for (unsigned k = 1; k < f->len; ++k)
            v = gfau_.simdSquare(v);
        r[f->a.rd] = v;
        for (unsigned k = 0; k < f->len; ++k) {
            stats_.record(InstrClass::kGfSimd, 1);
            if (profile_)
                profile_->record(pc_ + 4u * k, InstrClass::kGfSimd, 1);
        }
        pc_ += 4u * f->len;
        res.instrs += f->len;
        GFP_NEXT;
    }

    GFP_ALU(Add, r[in.rs1] + r[in.rs2])
    GFP_ALU(Sub, r[in.rs1] - r[in.rs2])
    GFP_ALU(And, r[in.rs1] & r[in.rs2])
    GFP_ALU(Orr, r[in.rs1] | r[in.rs2])
    GFP_ALU(Eor, r[in.rs1] ^ r[in.rs2])
    GFP_ALU(Lsl, r[in.rs1] << (r[in.rs2] & 31))
    GFP_ALU(Lsr, r[in.rs1] >> (r[in.rs2] & 31))
    GFP_ALU(Asr, static_cast<uint32_t>(static_cast<int32_t>(r[in.rs1]) >>
                                       (r[in.rs2] & 31)))
    GFP_ALU(Mul, r[in.rs1] * r[in.rs2])
    GFP_ALU(Mov, r[in.rs1])

    GFP_CASE(Cmp)
    {
        setFlagsSub(r[f->a.rs1], r[f->a.rs2]);
        GFP_RETIRE(kAlu, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_ALU(Addi, r[in.rs1] + static_cast<uint32_t>(in.imm))
    GFP_ALU(Subi, r[in.rs1] - static_cast<uint32_t>(in.imm))
    GFP_ALU(Andi, r[in.rs1] & static_cast<uint32_t>(in.imm))
    GFP_ALU(Orri, r[in.rs1] | static_cast<uint32_t>(in.imm))
    GFP_ALU(Eori, r[in.rs1] ^ static_cast<uint32_t>(in.imm))
    GFP_ALU(Lsli, r[in.rs1] << (in.imm & 31))
    GFP_ALU(Lsri, r[in.rs1] >> (in.imm & 31))
    GFP_ALU(Asri, static_cast<uint32_t>(static_cast<int32_t>(r[in.rs1]) >>
                                        (in.imm & 31)))
    GFP_ALU(Movi, static_cast<uint32_t>(in.imm) & 0xffff)
    GFP_ALU(Movt, (r[in.rd] & 0xffff) |
                      ((static_cast<uint32_t>(in.imm) & 0xffff) << 16))

    GFP_CASE(Cmpi)
    {
        setFlagsSub(r[f->a.rs1], static_cast<uint32_t>(f->a.imm));
        GFP_RETIRE(kAlu, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_LD(Ldr, 4, r[in.rs1] + static_cast<uint32_t>(in.imm))
    GFP_ST(Str, 4, r[in.rs1] + static_cast<uint32_t>(in.imm))
    GFP_LD(Ldrb, 1, r[in.rs1] + static_cast<uint32_t>(in.imm))
    GFP_ST(Strb, 1, r[in.rs1] + static_cast<uint32_t>(in.imm))
    GFP_LD(Ldrh, 2, r[in.rs1] + static_cast<uint32_t>(in.imm))
    GFP_ST(Strh, 2, r[in.rs1] + static_cast<uint32_t>(in.imm))
    GFP_LD(Ldrr, 4, r[in.rs1] + r[in.rs2])
    GFP_ST(Strr, 4, r[in.rs1] + r[in.rs2])
    GFP_LD(Ldrbr, 1, r[in.rs1] + r[in.rs2])
    GFP_ST(Strbr, 1, r[in.rs1] + r[in.rs2])
    GFP_LD(Ldrhr, 2, r[in.rs1] + r[in.rs2])
    GFP_ST(Strhr, 2, r[in.rs1] + r[in.rs2])

    GFP_BR(B, true)
    GFP_BR(Beq, flags_.z)
    GFP_BR(Bne, !flags_.z)
    GFP_BR(Blt, flags_.n != flags_.v)
    GFP_BR(Bge, flags_.n == flags_.v)
    GFP_BR(Bgt, !flags_.z && flags_.n == flags_.v)
    GFP_BR(Ble, flags_.z || flags_.n != flags_.v)
    GFP_BR(Blo, !flags_.c)
    GFP_BR(Bhs, flags_.c)
    GFP_BR(Bhi, flags_.c && !flags_.z)
    GFP_BR(Bls, !flags_.c || flags_.z)

    GFP_CASE(Bl)
    {
        r[kRegLr] = pc_ + 4;
        GFP_RETIRE(kBranch, kTakenBranchCycles,
                   pc_ + 4 + static_cast<uint32_t>(f->a.imm) * 4);
        GFP_NEXT;
    }

    GFP_CASE(Jr)
    {
        GFP_RETIRE(kBranch, kTakenBranchCycles, r[f->a.rs1]);
        GFP_NEXT;
    }

    GFP_CASE(Ret)
    {
        GFP_RETIRE(kBranch, kTakenBranchCycles, r[kRegLr]);
        GFP_NEXT;
    }

    GFP_CASE(Nop)
    {
        GFP_RETIRE(kCtrl, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_CASE(Halt)
    {
        halted_ = true;
        GFP_RETIRE(kCtrl, 1, pc_ + 4);
        return;
    }

    // GF singles only ever dispatch on the GF core (the fusion pass
    // maps them to hBail on the baseline); a corrupted configuration
    // register bails so step() raises GfConfigCorrupt.
    GFP_CASE(GfMuls)
    {
        if (!gfau_.configValid())
            return;
        const Instr &in = f->a;
        r[in.rd] = gfau_.simdMult(r[in.rs1], r[in.rs2]);
        GFP_RETIRE(kGfSimd, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_CASE(GfInvs)
    {
        if (!gfau_.configValid())
            return;
        const Instr &in = f->a;
        r[in.rd] = gfau_.simdInverse(r[in.rs1]);
        GFP_RETIRE(kGfSimd, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_CASE(GfSqs)
    {
        if (!gfau_.configValid())
            return;
        const Instr &in = f->a;
        r[in.rd] = gfau_.simdSquare(r[in.rs1]);
        GFP_RETIRE(kGfSimd, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_CASE(GfPows)
    {
        if (!gfau_.configValid())
            return;
        const Instr &in = f->a;
        r[in.rd] = gfau_.simdPower(r[in.rs1], r[in.rs2]);
        GFP_RETIRE(kGfSimd, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_CASE(GfAdds)
    {
        if (!gfau_.configValid())
            return;
        const Instr &in = f->a;
        r[in.rd] = gfau_.simdAdd(r[in.rs1], r[in.rs2]);
        GFP_RETIRE(kGfSimd, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_CASE(Gf32Mul)
    {
        if (!gfau_.configValid())
            return;
        const Instr &in = f->a;
        uint32_t hi, lo;
        gfau_.mult32(r[in.rs1], r[in.rs2], hi, lo);
        r[in.rd] = hi;
        r[in.rd2] = lo;
        GFP_RETIRE(kGf32, 1, pc_ + 4);
        GFP_NEXT;
    }

    GFP_CASE(GfCfg)
    {
        // Never fused (singleHandler maps it to hBail) — defensive.
        return;
    }

#if !GFP_FAST_GOTO
          default:
            return;
        }
    }
#endif

#undef GFP_CHECKS
#undef GFP_CASE
#undef GFP_NEXT
#undef GFP_RETIRE
#undef GFP_ALU
#undef GFP_LD
#undef GFP_ST
#undef GFP_BR
#undef GFP_CMPBCC_TAIL
}

Core::StepResult
Core::step()
{
    GFP_ASSERT(!stopped(), "step() on a stopped core");

    // A fault hook asked for a trap (e.g. a parity-signaled SEU):
    // deliver it before fetching the next instruction.
    if (requested_trap_ != TrapKind::kNone) {
        TrapKind kind = requested_trap_;
        requested_trap_ = TrapKind::kNone;
        return takeTrap(kind, 0);
    }

    // Fast fetch through the predecoded-instruction cache; anything it
    // cannot serve (stale cache, pc outside or unaligned with the code
    // region, undecodable word) diverts to the memory fetch below.
    const Instr *fetched = nullptr;
    InstrClass cls = InstrClass::kAlu;
    if (predecode_enabled_) {
        if (predecode_epoch_ != mem_.codeEpoch())
            rebuildPredecode();
        if (pc_ < predecode_limit_ && (pc_ & 3u) == 0) {
            const PredecodedWord &p = icache_[pc_ >> 2];
            if (p.valid) {
                fetched = &p.in;
                cls = p.cls;
            }
        }
    }

    Instr slow;
    if (!fetched) {
        uint32_t word;
        try {
            word = mem_.read32(pc_);
        } catch (const MemoryFault &f) {
            return takeTrap(TrapKind::kOutOfRangeAccess, f.addr());
        }
        if (!tryDecode(word, slow))
            return takeTrap(TrapKind::kIllegalInstruction, word);
        fetched = &slow;
        cls = classOf(slow.op);
    }
    const Instr &in = *fetched;
    if (trace_)
        trace_(pc_, in);
    const uint32_t retire_pc = pc_;

    StepResult out;
    try {
        out.cycles = execute(in);
    } catch (const MemoryFault &f) {
        return takeTrap(TrapKind::kOutOfRangeAccess, f.addr());
    }
    if (pending_trap_ != TrapKind::kNone) {
        TrapKind kind = pending_trap_;
        pending_trap_ = TrapKind::kNone;
        return takeTrap(kind, pending_addr_);
    }

    stats_.record(cls, out.cycles);
    if (profile_)
        profile_->record(retire_pc, cls, out.cycles);
    if (fault_hook_)
        fault_hook_(*this, stats_.cycles);
    return out;
}

RunResult
Core::run(uint64_t max_instrs)
{
    CycleStats before = stats_;
    RunResult res;
    if (trap_) {
        // A trapped core stays trapped until reset(): report the same
        // trap again instead of re-executing.
        res.trap = trap_;
        return res;
    }
    // The fast path handles everything it can prove trap-free; anything
    // else (and any configuration that needs per-instruction hooks)
    // falls back to single stepping.  A fast-path bail executes exactly
    // one instruction through step() — raising any architectural trap —
    // and then re-enters the fast path, so progress is always made.
    //
    // Translated dispatch layers the same way once more: the JIT runs
    // the blocks it compiled and exits at anything it did not (or no
    // longer may) cover — a gfcfg barrier, a stale translation after a
    // code-epoch bump, a deopt — and the fused interpreter absorbs
    // that stretch before the loop offers the JIT the new pc again.
    const bool fast = dispatch_mode_ != DispatchMode::kPlain &&
                      predecode_enabled_ && !trace_ && !fault_hook_;
    const bool translated = fast && translation_ != nullptr &&
                            dispatch_mode_ == DispatchMode::kTranslated;
    while (!halted_) {
        if (translated && requested_trap_ == TrapKind::kNone) {
            translation_->run(*this, res, max_instrs);
            if (halted_)
                break;
        }
        if (fast) {
            runFast(res, max_instrs);
            if (halted_)
                break;
        }
        if (res.instrs >= max_instrs) {
            // Runaway guard: report a Watchdog trap but leave the core
            // runnable — whether to grant more instructions is host
            // policy, not core state.
            res.trap = Trap{TrapKind::kWatchdog, pc_, 0, stats_.cycles};
            break;
        }
        StepResult s = step();
        if (s.trap) {
            res.trap = s.trap;
            break;
        }
        ++res.instrs;
    }
    res.halted = halted_;
    res.stats = stats_ - before;
    return res;
}

void
Core::injectFault(FaultTarget target, uint32_t index, unsigned bit)
{
    switch (target) {
      case FaultTarget::kDataMemory:
        mem_.flipBit(index % static_cast<uint32_t>(mem_.size()), bit);
        ++stats_.faults_mem;
        break;
      case FaultTarget::kRegisterFile:
        regs_[index % kNumRegs] ^= 1u << (bit % 32);
        ++stats_.faults_reg;
        break;
      case FaultTarget::kConfigReg:
        GFP_ASSERT(kind_ == CoreKind::kGfProcessor,
                   "config-register fault on a baseline core");
        gfau_.injectConfigBitFlip(bit);
        ++stats_.faults_cfg;
        break;
    }
}

} // namespace gfp
