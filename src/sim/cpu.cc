#include "sim/cpu.h"

#include "common/logging.h"
#include "isa/disasm.h"
#include "isa/encoding.h"

namespace gfp {

Core::Core(Memory &mem, CoreKind kind) : mem_(mem), kind_(kind)
{
    reset();
}

void
Core::reset(uint32_t pc)
{
    regs_.fill(0);
    regs_[kRegSp] = static_cast<uint32_t>(mem_.size()) - 16;
    pc_ = pc;
    flags_ = Flags();
    halted_ = false;
}

uint32_t
Core::reg(unsigned idx) const
{
    GFP_ASSERT(idx < kNumRegs);
    return regs_[idx];
}

void
Core::setReg(unsigned idx, uint32_t value)
{
    GFP_ASSERT(idx < kNumRegs);
    regs_[idx] = value;
}

GFArithmeticUnit &
Core::gfau()
{
    GFP_ASSERT(kind_ == CoreKind::kGfProcessor,
               "baseline core has no GF arithmetic unit");
    return gfau_;
}

const GFArithmeticUnit &
Core::gfau() const
{
    GFP_ASSERT(kind_ == CoreKind::kGfProcessor);
    return gfau_;
}

void
Core::setFlagsSub(uint32_t a, uint32_t b)
{
    uint32_t r = a - b;
    flags_.n = (r >> 31) & 1;
    flags_.z = r == 0;
    flags_.c = a >= b; // ARM convention: C set means "no borrow"
    flags_.v = (((a ^ b) & (a ^ r)) >> 31) & 1;
}

bool
Core::condition(Op op) const
{
    switch (op) {
      case Op::kB:
      case Op::kBl:
        return true;
      case Op::kBeq: return flags_.z;
      case Op::kBne: return !flags_.z;
      case Op::kBlt: return flags_.n != flags_.v;
      case Op::kBge: return flags_.n == flags_.v;
      case Op::kBgt: return !flags_.z && flags_.n == flags_.v;
      case Op::kBle: return flags_.z || flags_.n != flags_.v;
      case Op::kBlo: return !flags_.c;
      case Op::kBhs: return flags_.c;
      case Op::kBhi: return flags_.c && !flags_.z;
      case Op::kBls: return !flags_.c || flags_.z;
      default:
        GFP_PANIC("condition() on non-branch %s", opName(op));
    }
}

unsigned
Core::execute(const Instr &in)
{
    auto &r = regs_;
    const uint32_t next_pc = pc_ + 4;
    uint32_t new_pc = next_pc;
    unsigned cycles = 1;

    if (isGfOp(in.op) && kind_ == CoreKind::kBaseline) {
        GFP_FATAL("GF instruction '%s' executed on the baseline core "
                  "(pc=0x%x)", opName(in.op), pc_);
    }

    switch (in.op) {
      case Op::kAdd: r[in.rd] = r[in.rs1] + r[in.rs2]; break;
      case Op::kSub: r[in.rd] = r[in.rs1] - r[in.rs2]; break;
      case Op::kAnd: r[in.rd] = r[in.rs1] & r[in.rs2]; break;
      case Op::kOrr: r[in.rd] = r[in.rs1] | r[in.rs2]; break;
      case Op::kEor: r[in.rd] = r[in.rs1] ^ r[in.rs2]; break;
      case Op::kLsl: r[in.rd] = r[in.rs1] << (r[in.rs2] & 31); break;
      case Op::kLsr: r[in.rd] = r[in.rs1] >> (r[in.rs2] & 31); break;
      case Op::kAsr:
        r[in.rd] = static_cast<uint32_t>(
            static_cast<int32_t>(r[in.rs1]) >> (r[in.rs2] & 31));
        break;
      case Op::kMul: r[in.rd] = r[in.rs1] * r[in.rs2]; break;
      case Op::kMov: r[in.rd] = r[in.rs1]; break;
      case Op::kCmp: setFlagsSub(r[in.rs1], r[in.rs2]); break;

      case Op::kAddi: r[in.rd] = r[in.rs1] + static_cast<uint32_t>(in.imm); break;
      case Op::kSubi: r[in.rd] = r[in.rs1] - static_cast<uint32_t>(in.imm); break;
      case Op::kAndi: r[in.rd] = r[in.rs1] & static_cast<uint32_t>(in.imm); break;
      case Op::kOrri: r[in.rd] = r[in.rs1] | static_cast<uint32_t>(in.imm); break;
      case Op::kEori: r[in.rd] = r[in.rs1] ^ static_cast<uint32_t>(in.imm); break;
      case Op::kLsli: r[in.rd] = r[in.rs1] << (in.imm & 31); break;
      case Op::kLsri: r[in.rd] = r[in.rs1] >> (in.imm & 31); break;
      case Op::kAsri:
        r[in.rd] = static_cast<uint32_t>(
            static_cast<int32_t>(r[in.rs1]) >> (in.imm & 31));
        break;
      case Op::kMovi: r[in.rd] = static_cast<uint32_t>(in.imm) & 0xffff; break;
      case Op::kMovt:
        r[in.rd] = (r[in.rd] & 0xffff) |
                   ((static_cast<uint32_t>(in.imm) & 0xffff) << 16);
        break;
      case Op::kCmpi: setFlagsSub(r[in.rs1], static_cast<uint32_t>(in.imm)); break;

      case Op::kLdr:
        r[in.rd] = mem_.read32(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = 2;
        break;
      case Op::kStr:
        mem_.write32(r[in.rs1] + static_cast<uint32_t>(in.imm), r[in.rd]);
        cycles = 2;
        break;
      case Op::kLdrb:
        r[in.rd] = mem_.read8(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = 2;
        break;
      case Op::kStrb:
        mem_.write8(r[in.rs1] + static_cast<uint32_t>(in.imm),
                    static_cast<uint8_t>(r[in.rd]));
        cycles = 2;
        break;
      case Op::kLdrh:
        r[in.rd] = mem_.read16(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = 2;
        break;
      case Op::kStrh:
        mem_.write16(r[in.rs1] + static_cast<uint32_t>(in.imm),
                     static_cast<uint16_t>(r[in.rd]));
        cycles = 2;
        break;
      case Op::kLdrr:
        r[in.rd] = mem_.read32(r[in.rs1] + r[in.rs2]);
        cycles = 2;
        break;
      case Op::kStrr:
        mem_.write32(r[in.rs1] + r[in.rs2], r[in.rd]);
        cycles = 2;
        break;
      case Op::kLdrbr:
        r[in.rd] = mem_.read8(r[in.rs1] + r[in.rs2]);
        cycles = 2;
        break;
      case Op::kStrbr:
        mem_.write8(r[in.rs1] + r[in.rs2], static_cast<uint8_t>(r[in.rd]));
        cycles = 2;
        break;
      case Op::kLdrhr:
        r[in.rd] = mem_.read16(r[in.rs1] + r[in.rs2]);
        cycles = 2;
        break;
      case Op::kStrhr:
        mem_.write16(r[in.rs1] + r[in.rs2], static_cast<uint16_t>(r[in.rd]));
        cycles = 2;
        break;

      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBgt:
      case Op::kBle:
      case Op::kBlo:
      case Op::kBhs:
      case Op::kBhi:
      case Op::kBls:
      case Op::kBl:
        if (condition(in.op)) {
            if (in.op == Op::kBl)
                r[kRegLr] = next_pc;
            new_pc = next_pc + static_cast<uint32_t>(in.imm) * 4;
            cycles = 2;
        }
        break;
      case Op::kJr:
        new_pc = r[in.rs1];
        cycles = 2;
        break;
      case Op::kRet:
        new_pc = r[kRegLr];
        cycles = 2;
        break;
      case Op::kNop:
        break;
      case Op::kHalt:
        halted_ = true;
        break;

      case Op::kGfMuls:
        r[in.rd] = gfau_.simdMult(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGfInvs:
        r[in.rd] = gfau_.simdInverse(r[in.rs1]);
        break;
      case Op::kGfSqs:
        r[in.rd] = gfau_.simdSquare(r[in.rs1]);
        break;
      case Op::kGfPows:
        r[in.rd] = gfau_.simdPower(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGfAdds:
        r[in.rd] = gfau_.simdAdd(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGf32Mul: {
        uint32_t hi, lo;
        gfau_.mult32(r[in.rs1], r[in.rs2], hi, lo);
        r[in.rd] = hi;
        r[in.rd2] = lo;
        break;
      }
      case Op::kGfCfg:
        gfau_.loadConfig(
            GFConfig::unpack(mem_.read64(static_cast<uint32_t>(in.imm))));
        cycles = 2;
        break;

      default:
        GFP_PANIC("unhandled opcode %s", opName(in.op));
    }

    pc_ = new_pc;
    return cycles;
}

unsigned
Core::step()
{
    GFP_ASSERT(!halted_, "step() on a halted core");
    uint32_t word = mem_.read32(pc_);
    Instr in = decode(word);
    if (trace_)
        trace_(pc_, in);
    unsigned cycles = execute(in);
    stats_.record(classOf(in.op), cycles);
    return cycles;
}

uint64_t
Core::run(uint64_t max_instrs)
{
    uint64_t n = 0;
    while (!halted_) {
        if (n >= max_instrs) {
            GFP_FATAL("program did not halt within %llu instructions "
                      "(pc=0x%x) — runaway loop?",
                      static_cast<unsigned long long>(max_instrs), pc_);
        }
        step();
        ++n;
    }
    return n;
}

} // namespace gfp
