#include "sim/cpu.h"

#include "common/logging.h"
#include "isa/disasm.h"
#include "isa/encoding.h"

namespace gfp {

Core::Core(Memory &mem, CoreKind kind) : mem_(mem), kind_(kind)
{
    reset();
}

void
Core::reset(uint32_t pc)
{
    regs_.fill(0);
    regs_[kRegSp] = static_cast<uint32_t>(mem_.size()) - 16;
    pc_ = pc;
    flags_ = Flags();
    halted_ = false;
    trap_ = Trap();
    pending_trap_ = TrapKind::kNone;
    requested_trap_ = TrapKind::kNone;
}

uint32_t
Core::reg(unsigned idx) const
{
    GFP_ASSERT(idx < kNumRegs);
    return regs_[idx];
}

void
Core::setReg(unsigned idx, uint32_t value)
{
    GFP_ASSERT(idx < kNumRegs);
    regs_[idx] = value;
}

GFArithmeticUnit &
Core::gfau()
{
    GFP_ASSERT(kind_ == CoreKind::kGfProcessor,
               "baseline core has no GF arithmetic unit");
    return gfau_;
}

const GFArithmeticUnit &
Core::gfau() const
{
    GFP_ASSERT(kind_ == CoreKind::kGfProcessor);
    return gfau_;
}

void
Core::setFlagsSub(uint32_t a, uint32_t b)
{
    uint32_t r = a - b;
    flags_.n = (r >> 31) & 1;
    flags_.z = r == 0;
    flags_.c = a >= b; // ARM convention: C set means "no borrow"
    flags_.v = (((a ^ b) & (a ^ r)) >> 31) & 1;
}

bool
Core::condition(Op op) const
{
    switch (op) {
      case Op::kB:
      case Op::kBl:
        return true;
      case Op::kBeq: return flags_.z;
      case Op::kBne: return !flags_.z;
      case Op::kBlt: return flags_.n != flags_.v;
      case Op::kBge: return flags_.n == flags_.v;
      case Op::kBgt: return !flags_.z && flags_.n == flags_.v;
      case Op::kBle: return flags_.z || flags_.n != flags_.v;
      case Op::kBlo: return !flags_.c;
      case Op::kBhs: return flags_.c;
      case Op::kBhi: return flags_.c && !flags_.z;
      case Op::kBls: return !flags_.c || flags_.z;
      default:
        GFP_PANIC("condition() on non-branch %s", opName(op));
    }
}

unsigned
Core::execute(const Instr &in)
{
    auto &r = regs_;
    const uint32_t next_pc = pc_ + 4;
    uint32_t new_pc = next_pc;
    unsigned cycles = 1;

    if (isGfOp(in.op) && kind_ == CoreKind::kBaseline) {
        pending_trap_ = TrapKind::kGfOnBaseline;
        pending_addr_ = static_cast<uint32_t>(in.op);
        return 0;
    }
    // An SEU in the m field of the live config register leaves the
    // datapath in an undefined mode: detect it at the next GF
    // instruction (gfcfg excepted — reloading is how software scrubs).
    if (isGfOp(in.op) && in.op != Op::kGfCfg &&
        kind_ == CoreKind::kGfProcessor && !gfau_.configValid()) {
        pending_trap_ = TrapKind::kGfConfigCorrupt;
        pending_addr_ = 0;
        return 0;
    }

    switch (in.op) {
      case Op::kAdd: r[in.rd] = r[in.rs1] + r[in.rs2]; break;
      case Op::kSub: r[in.rd] = r[in.rs1] - r[in.rs2]; break;
      case Op::kAnd: r[in.rd] = r[in.rs1] & r[in.rs2]; break;
      case Op::kOrr: r[in.rd] = r[in.rs1] | r[in.rs2]; break;
      case Op::kEor: r[in.rd] = r[in.rs1] ^ r[in.rs2]; break;
      case Op::kLsl: r[in.rd] = r[in.rs1] << (r[in.rs2] & 31); break;
      case Op::kLsr: r[in.rd] = r[in.rs1] >> (r[in.rs2] & 31); break;
      case Op::kAsr:
        r[in.rd] = static_cast<uint32_t>(
            static_cast<int32_t>(r[in.rs1]) >> (r[in.rs2] & 31));
        break;
      case Op::kMul: r[in.rd] = r[in.rs1] * r[in.rs2]; break;
      case Op::kMov: r[in.rd] = r[in.rs1]; break;
      case Op::kCmp: setFlagsSub(r[in.rs1], r[in.rs2]); break;

      case Op::kAddi: r[in.rd] = r[in.rs1] + static_cast<uint32_t>(in.imm); break;
      case Op::kSubi: r[in.rd] = r[in.rs1] - static_cast<uint32_t>(in.imm); break;
      case Op::kAndi: r[in.rd] = r[in.rs1] & static_cast<uint32_t>(in.imm); break;
      case Op::kOrri: r[in.rd] = r[in.rs1] | static_cast<uint32_t>(in.imm); break;
      case Op::kEori: r[in.rd] = r[in.rs1] ^ static_cast<uint32_t>(in.imm); break;
      case Op::kLsli: r[in.rd] = r[in.rs1] << (in.imm & 31); break;
      case Op::kLsri: r[in.rd] = r[in.rs1] >> (in.imm & 31); break;
      case Op::kAsri:
        r[in.rd] = static_cast<uint32_t>(
            static_cast<int32_t>(r[in.rs1]) >> (in.imm & 31));
        break;
      case Op::kMovi: r[in.rd] = static_cast<uint32_t>(in.imm) & 0xffff; break;
      case Op::kMovt:
        r[in.rd] = (r[in.rd] & 0xffff) |
                   ((static_cast<uint32_t>(in.imm) & 0xffff) << 16);
        break;
      case Op::kCmpi: setFlagsSub(r[in.rs1], static_cast<uint32_t>(in.imm)); break;

      case Op::kLdr:
        r[in.rd] = mem_.read32(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = 2;
        break;
      case Op::kStr:
        mem_.write32(r[in.rs1] + static_cast<uint32_t>(in.imm), r[in.rd]);
        cycles = 2;
        break;
      case Op::kLdrb:
        r[in.rd] = mem_.read8(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = 2;
        break;
      case Op::kStrb:
        mem_.write8(r[in.rs1] + static_cast<uint32_t>(in.imm),
                    static_cast<uint8_t>(r[in.rd]));
        cycles = 2;
        break;
      case Op::kLdrh:
        r[in.rd] = mem_.read16(r[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles = 2;
        break;
      case Op::kStrh:
        mem_.write16(r[in.rs1] + static_cast<uint32_t>(in.imm),
                     static_cast<uint16_t>(r[in.rd]));
        cycles = 2;
        break;
      case Op::kLdrr:
        r[in.rd] = mem_.read32(r[in.rs1] + r[in.rs2]);
        cycles = 2;
        break;
      case Op::kStrr:
        mem_.write32(r[in.rs1] + r[in.rs2], r[in.rd]);
        cycles = 2;
        break;
      case Op::kLdrbr:
        r[in.rd] = mem_.read8(r[in.rs1] + r[in.rs2]);
        cycles = 2;
        break;
      case Op::kStrbr:
        mem_.write8(r[in.rs1] + r[in.rs2], static_cast<uint8_t>(r[in.rd]));
        cycles = 2;
        break;
      case Op::kLdrhr:
        r[in.rd] = mem_.read16(r[in.rs1] + r[in.rs2]);
        cycles = 2;
        break;
      case Op::kStrhr:
        mem_.write16(r[in.rs1] + r[in.rs2], static_cast<uint16_t>(r[in.rd]));
        cycles = 2;
        break;

      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBgt:
      case Op::kBle:
      case Op::kBlo:
      case Op::kBhs:
      case Op::kBhi:
      case Op::kBls:
      case Op::kBl:
        if (condition(in.op)) {
            if (in.op == Op::kBl)
                r[kRegLr] = next_pc;
            new_pc = next_pc + static_cast<uint32_t>(in.imm) * 4;
            cycles = 2;
        }
        break;
      case Op::kJr:
        new_pc = r[in.rs1];
        cycles = 2;
        break;
      case Op::kRet:
        new_pc = r[kRegLr];
        cycles = 2;
        break;
      case Op::kNop:
        break;
      case Op::kHalt:
        halted_ = true;
        break;

      case Op::kGfMuls:
        r[in.rd] = gfau_.simdMult(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGfInvs:
        r[in.rd] = gfau_.simdInverse(r[in.rs1]);
        break;
      case Op::kGfSqs:
        r[in.rd] = gfau_.simdSquare(r[in.rs1]);
        break;
      case Op::kGfPows:
        r[in.rd] = gfau_.simdPower(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGfAdds:
        r[in.rd] = gfau_.simdAdd(r[in.rs1], r[in.rs2]);
        break;
      case Op::kGf32Mul: {
        uint32_t hi, lo;
        gfau_.mult32(r[in.rs1], r[in.rs2], hi, lo);
        r[in.rd] = hi;
        r[in.rd2] = lo;
        break;
      }
      case Op::kGfCfg: {
        uint64_t blob = mem_.read64(static_cast<uint32_t>(in.imm));
        GFConfig cfg;
        if (!GFConfig::tryUnpack(blob, cfg)) {
            pending_trap_ = TrapKind::kGfConfigCorrupt;
            pending_addr_ = static_cast<uint32_t>(in.imm);
            return 0;
        }
        gfau_.loadConfig(cfg);
        cycles = 2;
        break;
      }

      default:
        GFP_PANIC("unhandled opcode %s", opName(in.op));
    }

    pc_ = new_pc;
    return cycles;
}

Core::StepResult
Core::takeTrap(TrapKind kind, uint32_t addr)
{
    trap_ = Trap{kind, pc_, addr, stats_.cycles};
    StepResult out;
    out.trap = trap_;
    return out;
}

void
Core::enablePredecode(uint32_t code_bytes)
{
    predecode_enabled_ = true;
    if (code_bytes > mem_.size())
        code_bytes = static_cast<uint32_t>(mem_.size());
    predecode_limit_ = code_bytes & ~3u;
    mem_.watchCode(predecode_limit_);
    rebuildPredecode();
}

void
Core::disablePredecode()
{
    predecode_enabled_ = false;
    predecode_limit_ = 0;
    mem_.watchCode(0);
    icache_.clear();
}

void
Core::rebuildPredecode()
{
    icache_.assign(predecode_limit_ / 4, PredecodedWord());
    for (uint32_t i = 0; i < predecode_limit_ / 4; ++i) {
        PredecodedWord &p = icache_[i];
        p.valid = tryDecode(mem_.read32(4 * i), p.in);
        if (p.valid)
            p.cls = classOf(p.in.op);
    }
    predecode_epoch_ = mem_.codeEpoch();
}

Core::StepResult
Core::step()
{
    GFP_ASSERT(!stopped(), "step() on a stopped core");

    // A fault hook asked for a trap (e.g. a parity-signaled SEU):
    // deliver it before fetching the next instruction.
    if (requested_trap_ != TrapKind::kNone) {
        TrapKind kind = requested_trap_;
        requested_trap_ = TrapKind::kNone;
        return takeTrap(kind, 0);
    }

    // Fast fetch through the predecoded-instruction cache; anything it
    // cannot serve (stale cache, pc outside or unaligned with the code
    // region, undecodable word) diverts to the memory fetch below.
    const Instr *fetched = nullptr;
    InstrClass cls = InstrClass::kAlu;
    if (predecode_enabled_) {
        if (predecode_epoch_ != mem_.codeEpoch())
            rebuildPredecode();
        if (pc_ < predecode_limit_ && (pc_ & 3u) == 0) {
            const PredecodedWord &p = icache_[pc_ >> 2];
            if (p.valid) {
                fetched = &p.in;
                cls = p.cls;
            }
        }
    }

    Instr slow;
    if (!fetched) {
        uint32_t word;
        try {
            word = mem_.read32(pc_);
        } catch (const MemoryFault &f) {
            return takeTrap(TrapKind::kOutOfRangeAccess, f.addr());
        }
        if (!tryDecode(word, slow))
            return takeTrap(TrapKind::kIllegalInstruction, word);
        fetched = &slow;
        cls = classOf(slow.op);
    }
    const Instr &in = *fetched;
    if (trace_)
        trace_(pc_, in);

    StepResult out;
    try {
        out.cycles = execute(in);
    } catch (const MemoryFault &f) {
        return takeTrap(TrapKind::kOutOfRangeAccess, f.addr());
    }
    if (pending_trap_ != TrapKind::kNone) {
        TrapKind kind = pending_trap_;
        pending_trap_ = TrapKind::kNone;
        return takeTrap(kind, pending_addr_);
    }

    stats_.record(cls, out.cycles);
    if (fault_hook_)
        fault_hook_(*this, stats_.cycles);
    return out;
}

RunResult
Core::run(uint64_t max_instrs)
{
    CycleStats before = stats_;
    RunResult res;
    if (trap_) {
        // A trapped core stays trapped until reset(): report the same
        // trap again instead of re-executing.
        res.trap = trap_;
        return res;
    }
    while (!halted_) {
        if (res.instrs >= max_instrs) {
            // Runaway guard: report a Watchdog trap but leave the core
            // runnable — whether to grant more instructions is host
            // policy, not core state.
            res.trap = Trap{TrapKind::kWatchdog, pc_, 0, stats_.cycles};
            break;
        }
        StepResult s = step();
        if (s.trap) {
            res.trap = s.trap;
            break;
        }
        ++res.instrs;
    }
    res.halted = halted_;
    res.stats = stats_ - before;
    return res;
}

void
Core::injectFault(FaultTarget target, uint32_t index, unsigned bit)
{
    switch (target) {
      case FaultTarget::kDataMemory:
        mem_.flipBit(index % static_cast<uint32_t>(mem_.size()), bit);
        ++stats_.faults_mem;
        break;
      case FaultTarget::kRegisterFile:
        regs_[index % kNumRegs] ^= 1u << (bit % 32);
        ++stats_.faults_reg;
        break;
      case FaultTarget::kConfigReg:
        GFP_ASSERT(kind_ == CoreKind::kGfProcessor,
                   "config-register fault on a baseline core");
        gfau_.injectConfigBitFlip(bit);
        ++stats_.faults_cfg;
        break;
    }
}

} // namespace gfp
