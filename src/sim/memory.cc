#include "sim/memory.h"

#include <algorithm>
#include <cstring>

#include "common/strutil.h"

namespace gfp {

MemoryFault::MemoryFault(uint32_t addr, unsigned bytes, size_t mem_size)
    : std::runtime_error(strprintf("memory access of %u bytes at 0x%x "
                                   "out of range (size 0x%zx)",
                                   bytes, addr, mem_size)),
      addr_(addr), bytes_(bytes)
{
}

Memory::Memory(size_t size_bytes) : bytes_(size_bytes, 0) {}

void
Memory::check(uint32_t addr, unsigned bytes) const
{
    if (static_cast<uint64_t>(addr) + bytes > bytes_.size())
        throw MemoryFault(addr, bytes, bytes_.size());
}

uint8_t
Memory::read8(uint32_t addr) const
{
    check(addr, 1);
    return bytes_[addr];
}

uint16_t
Memory::read16(uint32_t addr) const
{
    check(addr, 2);
    return static_cast<uint16_t>(bytes_[addr] | (bytes_[addr + 1] << 8));
}

uint32_t
Memory::read32(uint32_t addr) const
{
    check(addr, 4);
    return static_cast<uint32_t>(bytes_[addr]) |
           (static_cast<uint32_t>(bytes_[addr + 1]) << 8) |
           (static_cast<uint32_t>(bytes_[addr + 2]) << 16) |
           (static_cast<uint32_t>(bytes_[addr + 3]) << 24);
}

uint64_t
Memory::read64(uint32_t addr) const
{
    return static_cast<uint64_t>(read32(addr)) |
           (static_cast<uint64_t>(read32(addr + 4)) << 32);
}

void
Memory::write8(uint32_t addr, uint8_t value)
{
    check(addr, 1);
    bytes_[addr] = value;
    touch(addr, 1);
}

void
Memory::write16(uint32_t addr, uint16_t value)
{
    check(addr, 2);
    bytes_[addr] = static_cast<uint8_t>(value);
    bytes_[addr + 1] = static_cast<uint8_t>(value >> 8);
    touch(addr, 2);
}

void
Memory::write32(uint32_t addr, uint32_t value)
{
    check(addr, 4);
    for (unsigned i = 0; i < 4; ++i)
        bytes_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    touch(addr, 4);
}

void
Memory::write64(uint32_t addr, uint64_t value)
{
    write32(addr, static_cast<uint32_t>(value));
    write32(addr + 4, static_cast<uint32_t>(value >> 32));
}

void
Memory::flipBit(uint32_t addr, unsigned bit)
{
    check(addr, 1);
    bytes_[addr] ^= static_cast<uint8_t>(1u << (bit % 8));
    touch(addr, 1);
}

void
Memory::writeBlock(uint32_t addr, const std::vector<uint8_t> &data)
{
    check(addr, static_cast<unsigned>(data.size()));
    std::copy(data.begin(), data.end(), bytes_.begin() + addr);
    touch(addr, static_cast<unsigned>(data.size()));
}

void
Memory::restore(const std::vector<uint8_t> &image)
{
    if (image.size() != bytes_.size())
        throw MemoryFault(0, static_cast<unsigned>(image.size()),
                          bytes_.size());
    // Only the dirty window can differ from the snapshot: bytes outside
    // it were not modified since construction / the previous restore(),
    // so they already equal the image.
    const size_t lo = static_cast<size_t>(
        std::min<uint64_t>(dirty_lo_, bytes_.size()));
    const size_t hi = static_cast<size_t>(
        std::min<uint64_t>(dirty_hi_, bytes_.size()));
    if (lo < hi) {
        const size_t watched = std::min<size_t>(watch_limit_, hi);
        if (lo < watched &&
            std::memcmp(bytes_.data() + lo, image.data() + lo,
                        watched - lo) != 0)
            ++code_epoch_;
        std::memcpy(bytes_.data() + lo, image.data() + lo, hi - lo);
    }
    dirty_lo_ = UINT64_MAX;
    dirty_hi_ = 0;
}

std::vector<uint8_t>
Memory::readBlock(uint32_t addr, size_t len) const
{
    check(addr, static_cast<unsigned>(len));
    return std::vector<uint8_t>(bytes_.begin() + addr,
                                bytes_.begin() + addr + len);
}

} // namespace gfp
