#include "sim/memory.h"

#include <algorithm>

#include "common/strutil.h"

namespace gfp {

MemoryFault::MemoryFault(uint32_t addr, unsigned bytes, size_t mem_size)
    : std::runtime_error(strprintf("memory access of %u bytes at 0x%x "
                                   "out of range (size 0x%zx)",
                                   bytes, addr, mem_size)),
      addr_(addr), bytes_(bytes)
{
}

Memory::Memory(size_t size_bytes) : bytes_(size_bytes, 0) {}

void
Memory::check(uint32_t addr, unsigned bytes) const
{
    if (static_cast<uint64_t>(addr) + bytes > bytes_.size())
        throw MemoryFault(addr, bytes, bytes_.size());
}

uint8_t
Memory::read8(uint32_t addr) const
{
    check(addr, 1);
    return bytes_[addr];
}

uint16_t
Memory::read16(uint32_t addr) const
{
    check(addr, 2);
    return static_cast<uint16_t>(bytes_[addr] | (bytes_[addr + 1] << 8));
}

uint32_t
Memory::read32(uint32_t addr) const
{
    check(addr, 4);
    return static_cast<uint32_t>(bytes_[addr]) |
           (static_cast<uint32_t>(bytes_[addr + 1]) << 8) |
           (static_cast<uint32_t>(bytes_[addr + 2]) << 16) |
           (static_cast<uint32_t>(bytes_[addr + 3]) << 24);
}

uint64_t
Memory::read64(uint32_t addr) const
{
    return static_cast<uint64_t>(read32(addr)) |
           (static_cast<uint64_t>(read32(addr + 4)) << 32);
}

void
Memory::write8(uint32_t addr, uint8_t value)
{
    check(addr, 1);
    bytes_[addr] = value;
    touch(addr);
}

void
Memory::write16(uint32_t addr, uint16_t value)
{
    check(addr, 2);
    bytes_[addr] = static_cast<uint8_t>(value);
    bytes_[addr + 1] = static_cast<uint8_t>(value >> 8);
    touch(addr);
}

void
Memory::write32(uint32_t addr, uint32_t value)
{
    check(addr, 4);
    for (unsigned i = 0; i < 4; ++i)
        bytes_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    touch(addr);
}

void
Memory::write64(uint32_t addr, uint64_t value)
{
    write32(addr, static_cast<uint32_t>(value));
    write32(addr + 4, static_cast<uint32_t>(value >> 32));
}

void
Memory::flipBit(uint32_t addr, unsigned bit)
{
    check(addr, 1);
    bytes_[addr] ^= static_cast<uint8_t>(1u << (bit % 8));
    touch(addr);
}

void
Memory::writeBlock(uint32_t addr, const std::vector<uint8_t> &data)
{
    check(addr, static_cast<unsigned>(data.size()));
    std::copy(data.begin(), data.end(), bytes_.begin() + addr);
    touch(addr);
}

std::vector<uint8_t>
Memory::readBlock(uint32_t addr, size_t len) const
{
    check(addr, static_cast<unsigned>(len));
    return std::vector<uint8_t>(bytes_.begin() + addr,
                                bytes_.begin() + addr + len);
}

} // namespace gfp
