/**
 * @file
 * Convenience harness bundling an assembled program, memory, and a core.
 *
 * Typical use by kernels, tests, and benchmarks (trusted programs,
 * where a trap means the host generated bad code — runOk() escalates
 * it to a fatal):
 *
 *     Machine mach(asm_source, CoreKind::kGfProcessor);
 *     mach.writeBytes("input", codeword);
 *     mach.setArgs({n_symbols});
 *     CycleStats s = mach.runOk();
 *     auto synd = mach.readBytes("syndromes", 2 * t);
 *
 * Untrusted or fault-injected guests use runToHalt(), which returns a
 * RunResult whose Trap must be checked — no guest behavior (nor any
 * injected SEU) can abort the host through this path:
 *
 *     RunResult r = mach.runToHalt();
 *     if (!r.ok()) { ... r.trap.describe() ... }
 */

#ifndef GFP_SIM_MACHINE_H
#define GFP_SIM_MACHINE_H

#include <initializer_list>
#include <memory>
#include <string>

#include "isa/program.h"
#include "sim/cpu.h"
#include "sim/memory.h"

namespace gfp {

class Machine
{
  public:
    Machine(const std::string &asm_source, CoreKind kind,
            size_t mem_bytes = 256 * 1024);
    Machine(Program program, CoreKind kind, size_t mem_bytes = 256 * 1024);

    Core &core() { return *core_; }
    Memory &memory() { return mem_; }
    const Program &program() const { return program_; }

    /** Byte address of a label; fatal if undefined. */
    uint32_t addr(const std::string &label) const
    {
        return program_.symbol(label);
    }

    /** Set r0..r3 call arguments. */
    void setArgs(std::initializer_list<uint32_t> args);

    /** Reset core state (pc=0, fresh stats) without reloading memory. */
    void reset();

    /**
     * Restore the machine to its just-constructed state: memory zeroed
     * and the program image reloaded, core and GFAU back at power-on,
     * statistics cleared.  This is the rerun contract the batch engine
     * relies on — after fullReset() no trace of the previous job
     * remains, whether it halted cleanly, trapped, scribbled over its
     * own code, or took SEUs in the GFAU configuration register.
     */
    void fullReset();

    /**
     * Run to HALT, a trap, or the @p max_instrs watchdog.  Returns a
     * RunResult carrying the stop reason and the cycle statistics of
     * this run; never aborts the host on a guest fault.
     */
    RunResult runToHalt(uint64_t max_instrs = 500'000'000);

    /**
     * Run a *trusted* program to HALT and return the cycle statistics.
     * Any trap is escalated to GFP_FATAL: the host generated the
     * program, so a trap here is host misuse, not guest input.
     */
    CycleStats runOk(uint64_t max_instrs = 500'000'000);

    // -- memory helpers (labels resolve through the symbol table) --
    uint32_t readWord(const std::string &label, unsigned index = 0) const;
    void writeWord(const std::string &label, uint32_t value,
                   unsigned index = 0);
    std::vector<uint8_t> readBytes(const std::string &label,
                                   size_t len) const;
    void writeBytes(const std::string &label,
                    const std::vector<uint8_t> &bytes);

  private:
    void loadProgram();

    Program program_;
    Memory mem_;
    std::vector<uint8_t> pristine_; ///< memory image after construction
    std::unique_ptr<Core> core_;
};

} // namespace gfp

#endif // GFP_SIM_MACHINE_H
