/**
 * @file
 * The trap architecture of the GFP simulator.
 *
 * The paper targets low-power IoT nodes where single-event upsets and
 * corrupted codewords are the operating reality, so *guest-attributable*
 * errors — anything a simulated program (or an injected fault) can
 * cause — must never abort the host process.  They surface instead as
 * structured Traps carried in a RunResult:
 *
 *   kOutOfRangeAccess   load/store/fetch outside the memory array
 *   kIllegalInstruction undecodable instruction word
 *   kGfOnBaseline       a GF instruction reached the baseline core
 *   kGfConfigCorrupt    gfConfig blob or live 56-bit GFAU register
 *                       carries an invalid field width
 *   kWatchdog           the max_instrs runaway guard expired
 *   kInjectedFault      a scheduled SEU was delivered with the
 *                       trap-on-inject policy enabled (models a
 *                       parity/EDAC-signaled upset)
 *
 * Host-attributable misuse (bad constructor arguments, undefined
 * labels, malformed assembly) stays fatal — see common/logging.h.
 */

#ifndef GFP_SIM_TRAP_H
#define GFP_SIM_TRAP_H

#include <cstdint>
#include <string>

#include "sim/stats.h"

namespace gfp {

enum class TrapKind : uint8_t {
    kNone = 0,
    kOutOfRangeAccess,
    kIllegalInstruction,
    kGfOnBaseline,
    kGfConfigCorrupt,
    kWatchdog,
    kInjectedFault,
};

const char *trapKindName(TrapKind kind);

/** One delivered trap: what happened, where, and when. */
struct Trap
{
    TrapKind kind = TrapKind::kNone;

    /** pc of the faulting instruction (the instruction did not retire,
     *  except for kWatchdog/kInjectedFault where pc is the next fetch). */
    uint32_t pc = 0;

    /** Fault detail: the out-of-range address, the undecodable
     *  instruction word, or the gfcfg blob address, as applicable. */
    uint32_t addr = 0;

    /** Core cycle count when the trap was taken. */
    uint64_t cycle = 0;

    explicit operator bool() const { return kind != TrapKind::kNone; }

    /** One-line human-readable rendering. */
    std::string describe() const;
};

/**
 * Outcome of Core::run / Machine::runToHalt.  Exactly one of
 * (halted, trap) describes why the run ended; `stats` is the cycle
 * statistics delta of this run (valid either way — a trapped run still
 * reports the work done up to the trap).
 */
struct RunResult
{
    bool halted = false;
    uint64_t instrs = 0;
    Trap trap;
    CycleStats stats;

    /** Ran to HALT with no trap. */
    bool ok() const { return halted && !trap; }
};

} // namespace gfp

#endif // GFP_SIM_TRAP_H
