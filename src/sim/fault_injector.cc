#include "sim/fault_injector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace gfp {

void
FaultInjector::schedule(const FaultEvent &event)
{
    GFP_ASSERT(next_ == 0, "schedule() after injection started");
    schedule_.push_back(event);
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
}

void
FaultInjector::setSchedule(std::vector<FaultEvent> events)
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
    schedule_ = std::move(events);
    next_ = 0;
    fired_ = 0;
}

std::vector<FaultEvent>
FaultInjector::randomCampaign(uint64_t seed, unsigned n_events,
                              uint64_t cycle_horizon, size_t mem_bytes,
                              const std::vector<FaultTarget> &targets)
{
    GFP_ASSERT(!targets.empty(), "campaign needs at least one target");
    GFP_ASSERT(cycle_horizon > 0 && mem_bytes > 0);
    Rng rng(seed);
    std::vector<FaultEvent> events;
    events.reserve(n_events);
    for (unsigned i = 0; i < n_events; ++i) {
        FaultEvent e;
        e.cycle = rng.below(cycle_horizon);
        e.target = targets[rng.below(targets.size())];
        switch (e.target) {
          case FaultTarget::kDataMemory:
            e.index = static_cast<uint32_t>(rng.below(mem_bytes));
            e.bit = static_cast<unsigned>(rng.below(8));
            break;
          case FaultTarget::kRegisterFile:
            e.index = static_cast<uint32_t>(rng.below(kNumRegs));
            e.bit = static_cast<unsigned>(rng.below(32));
            break;
          case FaultTarget::kConfigReg:
            e.index = 0;
            e.bit = static_cast<unsigned>(rng.below(60));
            break;
        }
        events.push_back(e);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
    return events;
}

void
FaultInjector::attach(Core &core)
{
    core.setFaultHook([this](Core &c, uint64_t cycle) {
        onRetire(c, cycle);
    });
}

void
FaultInjector::onRetire(Core &core, uint64_t cycle)
{
    bool delivered = false;
    while (next_ < schedule_.size() && schedule_[next_].cycle <= cycle) {
        const FaultEvent &e = schedule_[next_];
        core.injectFault(e.target, e.index, e.bit);
        ++next_;
        ++fired_;
        delivered = true;
    }
    if (delivered && trap_on_inject_)
        core.requestTrap(TrapKind::kInjectedFault);
}

} // namespace gfp
