#include "sim/machine.h"

#include "common/logging.h"
#include "isa/assembler.h"

namespace gfp {

Machine::Machine(const std::string &asm_source, CoreKind kind,
                 size_t mem_bytes)
    : Machine(Assembler::assemble(asm_source), kind, mem_bytes)
{
}

Machine::Machine(Program program, CoreKind kind, size_t mem_bytes)
    : program_(std::move(program)), mem_(mem_bytes)
{
    if (program_.footprint() + 64 > mem_bytes) {
        GFP_FATAL("program footprint %zu bytes exceeds memory %zu",
                  program_.footprint(), mem_bytes);
    }
    loadProgram();
    pristine_ = mem_.snapshot();
    core_ = std::make_unique<Core>(mem_, kind);
    core_->enablePredecode(static_cast<uint32_t>(4 * program_.code.size()));
}

void
Machine::loadProgram()
{
    for (size_t i = 0; i < program_.code.size(); ++i)
        mem_.write32(static_cast<uint32_t>(4 * i), program_.code[i]);
    mem_.writeBlock(program_.data_base, program_.data);
}

void
Machine::setArgs(std::initializer_list<uint32_t> args)
{
    GFP_ASSERT(args.size() <= 4, "at most 4 register arguments");
    unsigned i = 0;
    for (uint32_t a : args)
        core_->setReg(i++, a);
}

void
Machine::reset()
{
    core_->reset();
    core_->resetStats();
}

void
Machine::fullReset()
{
    // Restore the post-construction image in one memcpy rather than
    // zero-fill + per-word program reload.  When the previous job left
    // the program text untouched, the code epoch is preserved and the
    // core's predecoded (and fused) instruction stream stays valid —
    // the batch engine's per-job reset no longer rebuilds it.
    mem_.restore(pristine_);
    if (core_->kind() == CoreKind::kGfProcessor)
        core_->gfau().powerOnReset();
    core_->reset();
    core_->resetStats();
}

RunResult
Machine::runToHalt(uint64_t max_instrs)
{
    return core_->run(max_instrs);
}

CycleStats
Machine::runOk(uint64_t max_instrs)
{
    RunResult r = core_->run(max_instrs);
    if (!r.ok())
        GFP_FATAL("trusted guest program stopped abnormally: %s",
                  r.trap.describe().c_str());
    return r.stats;
}

// The label helpers run on behalf of the *host* (loading inputs,
// reading results), so an out-of-range access here is host misuse and
// escalates to fatal rather than becoming a trap.

uint32_t
Machine::readWord(const std::string &label, unsigned index) const
{
    try {
        return mem_.read32(program_.symbol(label) + 4 * index);
    } catch (const MemoryFault &f) {
        GFP_FATAL("readWord('%s', %u): %s", label.c_str(), index, f.what());
    }
}

void
Machine::writeWord(const std::string &label, uint32_t value, unsigned index)
{
    try {
        mem_.write32(program_.symbol(label) + 4 * index, value);
    } catch (const MemoryFault &f) {
        GFP_FATAL("writeWord('%s', %u): %s", label.c_str(), index, f.what());
    }
}

std::vector<uint8_t>
Machine::readBytes(const std::string &label, size_t len) const
{
    try {
        return mem_.readBlock(program_.symbol(label), len);
    } catch (const MemoryFault &f) {
        GFP_FATAL("readBytes('%s', %zu): %s", label.c_str(), len, f.what());
    }
}

void
Machine::writeBytes(const std::string &label,
                    const std::vector<uint8_t> &bytes)
{
    try {
        mem_.writeBlock(program_.symbol(label), bytes);
    } catch (const MemoryFault &f) {
        GFP_FATAL("writeBytes('%s'): %s", label.c_str(), f.what());
    }
}

} // namespace gfp
