#include "sim/machine.h"

#include "common/logging.h"
#include "isa/assembler.h"

namespace gfp {

Machine::Machine(const std::string &asm_source, CoreKind kind,
                 size_t mem_bytes)
    : Machine(Assembler::assemble(asm_source), kind, mem_bytes)
{
}

Machine::Machine(Program program, CoreKind kind, size_t mem_bytes)
    : program_(std::move(program)), mem_(mem_bytes)
{
    if (program_.footprint() + 64 > mem_bytes) {
        GFP_FATAL("program footprint %zu bytes exceeds memory %zu",
                  program_.footprint(), mem_bytes);
    }
    loadProgram();
    core_ = std::make_unique<Core>(mem_, kind);
}

void
Machine::loadProgram()
{
    for (size_t i = 0; i < program_.code.size(); ++i)
        mem_.write32(static_cast<uint32_t>(4 * i), program_.code[i]);
    mem_.writeBlock(program_.data_base, program_.data);
}

void
Machine::setArgs(std::initializer_list<uint32_t> args)
{
    GFP_ASSERT(args.size() <= 4, "at most 4 register arguments");
    unsigned i = 0;
    for (uint32_t a : args)
        core_->setReg(i++, a);
}

void
Machine::reset()
{
    core_->reset();
    core_->resetStats();
}

CycleStats
Machine::runToHalt(uint64_t max_instrs)
{
    CycleStats before = core_->stats();
    core_->run(max_instrs);
    return core_->stats() - before;
}

uint32_t
Machine::readWord(const std::string &label, unsigned index) const
{
    return mem_.read32(program_.symbol(label) + 4 * index);
}

void
Machine::writeWord(const std::string &label, uint32_t value, unsigned index)
{
    mem_.write32(program_.symbol(label) + 4 * index, value);
}

std::vector<uint8_t>
Machine::readBytes(const std::string &label, size_t len) const
{
    return mem_.readBlock(program_.symbol(label), len);
}

void
Machine::writeBytes(const std::string &label,
                    const std::vector<uint8_t> &bytes)
{
    mem_.writeBlock(program_.symbol(label), bytes);
}

} // namespace gfp
