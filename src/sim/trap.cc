#include "sim/trap.h"

#include "common/strutil.h"

namespace gfp {

const char *
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::kNone:               return "None";
      case TrapKind::kOutOfRangeAccess:   return "OutOfRangeAccess";
      case TrapKind::kIllegalInstruction: return "IllegalInstruction";
      case TrapKind::kGfOnBaseline:       return "GfOnBaseline";
      case TrapKind::kGfConfigCorrupt:    return "GfConfigCorrupt";
      case TrapKind::kWatchdog:           return "Watchdog";
      case TrapKind::kInjectedFault:      return "InjectedFault";
    }
    return "?";
}

std::string
Trap::describe() const
{
    return strprintf("%s at pc=0x%x addr=0x%x cycle=%llu",
                     trapKindName(kind), pc, addr,
                     static_cast<unsigned long long>(cycle));
}

} // namespace gfp
