/**
 * @file
 * Deterministic single-event-upset (SEU) injection for the GFP core.
 *
 * The paper's IoT deployment model puts the processor in noisy, low
 * power environments where bit upsets are routine, and the reverse
 * engineering literature on GF(2^m) reduction polynomials shows that a
 * corrupted field configuration yields a *valid-looking but wrong*
 * field — so upsets must be injectable (to measure) and detectable (to
 * recover), never assumed away.
 *
 * A FaultInjector holds a schedule of FaultEvents and attaches to a
 * Core through its per-cycle fault hook.  After every retired
 * instruction, events whose cycle has been reached are delivered via
 * Core::injectFault, which flips one bit of data memory, the register
 * file, or the live 60-bit GFAU configuration register and counts the
 * flip in CycleStats.  Schedules derive from an explicit list or from
 * a seeded generator, so every campaign replays bit-for-bit.
 *
 * Schedule format: each event is {cycle, target, index, bit} and fires
 * at the first retire whose cumulative cycle count >= cycle (events at
 * cycle 0 therefore land right after the first instruction).  Each
 * event fires exactly once, even across Machine::reset() retries.
 */

#ifndef GFP_SIM_FAULT_INJECTOR_H
#define GFP_SIM_FAULT_INJECTOR_H

#include <cstdint>
#include <vector>

#include "sim/cpu.h"

namespace gfp {

/** One scheduled upset. */
struct FaultEvent
{
    uint64_t cycle = 0;       ///< fire at the first retire >= this cycle
    FaultTarget target = FaultTarget::kDataMemory;
    uint32_t index = 0;       ///< byte address / register number
    unsigned bit = 0;         ///< bit to flip within the target
};

class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Add one event to the schedule (kept sorted by cycle). */
    void schedule(const FaultEvent &event);

    /** Replace the schedule wholesale. */
    void setSchedule(std::vector<FaultEvent> events);

    /**
     * Seeded campaign generator: @p n_events upsets uniformly spread
     * over [0, cycle_horizon) cycles, striking the targets listed in
     * @p targets (pass kConfigReg only for a GF-processor core).
     * Memory indices are drawn below @p mem_bytes.  Deterministic in
     * @p seed.
     */
    static std::vector<FaultEvent> randomCampaign(
        uint64_t seed, unsigned n_events, uint64_t cycle_horizon,
        size_t mem_bytes, const std::vector<FaultTarget> &targets);

    /**
     * When enabled, every delivered event also requests an
     * InjectedFault trap — modeling a parity/EDAC-protected structure
     * that *signals* the upset instead of silently absorbing it.
     */
    void setTrapOnInject(bool on) { trap_on_inject_ = on; }

    /** Install this injector as @p core's fault hook.  The injector
     *  must outlive the core's use of the hook. */
    void attach(Core &core);

    /** Events delivered so far (each event fires exactly once). */
    uint64_t firedCount() const { return fired_; }

    /** Events still waiting for their cycle. */
    size_t pendingCount() const { return schedule_.size() - next_; }

  private:
    void onRetire(Core &core, uint64_t cycle);

    std::vector<FaultEvent> schedule_; // sorted by cycle
    size_t next_ = 0;                  // first un-fired event
    uint64_t fired_ = 0;
    bool trap_on_inject_ = false;
};

} // namespace gfp

#endif // GFP_SIM_FAULT_INJECTOR_H
