/**
 * @file
 * Flat little-endian byte-addressable memory for the GFP simulator.
 *
 * Out-of-range accesses throw MemoryFault.  The Core catches it and
 * converts it into a structured Trap (guest error, host survives);
 * host-facing helpers (Machine::readWord etc.) catch it and escalate to
 * GFP_FATAL, because an out-of-range *host* access is host misuse.
 */

#ifndef GFP_SIM_MEMORY_H
#define GFP_SIM_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace gfp {

/** Thrown on an out-of-range access; carries the faulting address. */
class MemoryFault : public std::runtime_error
{
  public:
    MemoryFault(uint32_t addr, unsigned bytes, size_t mem_size);

    uint32_t addr() const { return addr_; }
    unsigned bytes() const { return bytes_; }

  private:
    uint32_t addr_;
    unsigned bytes_;
};

class Memory
{
  public:
    explicit Memory(size_t size_bytes = 256 * 1024);

    size_t size() const { return bytes_.size(); }

    /**
     * Watch [0, limit) for modification — the code region, so the
     * core's predecoded-instruction cache can be invalidated on
     * self-modifying stores or SEU bit flips without re-checking
     * instruction memory every fetch.  Any write or flipBit below
     * @p limit bumps codeEpoch().
     */
    void watchCode(uint32_t limit) { watch_limit_ = limit; }
    uint32_t watchLimit() const { return watch_limit_; }
    uint64_t codeEpoch() const { return code_epoch_; }

    /**
     * Raw backing store, for host code (the JIT) that performs its own
     * bounds and code-watch checks before every access.  Writers must
     * report what they modified through touchRange() so the dirty
     * window and the code epoch stay truthful.
     */
    uint8_t *data() { return bytes_.data(); }
    const uint8_t *data() const { return bytes_.data(); }

    /**
     * Record an externally performed modification of [lo, hi) — the
     * bulk form of what the checked accessors do per write.  Bumps the
     * code epoch if the range reaches below the watched code limit
     * (the JIT deopts rather than write there, so in practice it never
     * does) and widens the dirty window restore() compares.
     */
    void
    touchRange(uint64_t lo, uint64_t hi)
    {
        if (lo >= hi)
            return;
        if (lo < watch_limit_)
            ++code_epoch_;
        if (lo < dirty_lo_)
            dirty_lo_ = lo;
        if (hi > dirty_hi_)
            dirty_hi_ = hi;
    }

    uint8_t read8(uint32_t addr) const;
    uint16_t read16(uint32_t addr) const;
    uint32_t read32(uint32_t addr) const;
    uint64_t read64(uint32_t addr) const;

    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);
    void write64(uint32_t addr, uint64_t value);

    /** Flip one bit (SEU model); @p bit is taken modulo 8. */
    void flipBit(uint32_t addr, unsigned bit);

    /** Bulk copy into memory (program loading, input buffers). */
    void writeBlock(uint32_t addr, const std::vector<uint8_t> &data);

    /** Bulk copy out of memory (result buffers). */
    std::vector<uint8_t> readBlock(uint32_t addr, size_t len) const;

    void
    fill(uint8_t value)
    {
        std::fill(bytes_.begin(), bytes_.end(), value);
        touch(0, static_cast<unsigned>(bytes_.size()));
    }

    /**
     * Unchecked little-endian accessors for the core's fast dispatch
     * path, which bounds-checks an access *before* committing to it so
     * it can divert to the trap-exact slow path without the throw/catch
     * machinery.  @p bytes must be 1, 2 or 4 and addr+bytes must be in
     * range.  storeFast still advances the code epoch for writes into
     * the watched region, so self-modifying stores de-fuse exactly.
     */
    uint32_t
    loadFast(uint32_t addr, unsigned bytes) const
    {
        const uint8_t *p = bytes_.data() + addr;
        switch (bytes) {
          case 1:
            return p[0];
          case 2:
            return static_cast<uint32_t>(p[0]) |
                   (static_cast<uint32_t>(p[1]) << 8);
          default:
            return static_cast<uint32_t>(p[0]) |
                   (static_cast<uint32_t>(p[1]) << 8) |
                   (static_cast<uint32_t>(p[2]) << 16) |
                   (static_cast<uint32_t>(p[3]) << 24);
        }
    }

    void
    storeFast(uint32_t addr, unsigned bytes, uint32_t value)
    {
        uint8_t *p = bytes_.data() + addr;
        switch (bytes) {
          case 1:
            p[0] = static_cast<uint8_t>(value);
            break;
          case 2:
            p[0] = static_cast<uint8_t>(value);
            p[1] = static_cast<uint8_t>(value >> 8);
            break;
          default:
            for (unsigned i = 0; i < 4; ++i)
                p[i] = static_cast<uint8_t>(value >> (8 * i));
            break;
        }
        touch(addr, bytes);
    }

    /** A copy of the full contents, for later restore(). */
    std::vector<uint8_t> snapshot() const { return bytes_; }

    /**
     * Restore the contents to @p image (must be the same size; an
     * earlier snapshot() of *this* memory — every modification since
     * that snapshot is tracked in a dirty window, so only the window
     * is compared and copied instead of the whole array; that is what
     * makes the batch engine's per-job recycling cheap).  The code
     * epoch is bumped only when the watched code region actually
     * differs, so restoring an image whose program text is unchanged
     * keeps predecoded (and fused) instructions valid.
     */
    void restore(const std::vector<uint8_t> &image);

  private:
    void check(uint32_t addr, unsigned bytes) const;

    /** Record a modification of [addr, addr+bytes) for code watching
     *  and for the dirty window restore() uses. */
    void
    touch(uint32_t addr, unsigned bytes)
    {
        if (addr < watch_limit_)
            ++code_epoch_;
        if (addr < dirty_lo_)
            dirty_lo_ = addr;
        const uint64_t end = static_cast<uint64_t>(addr) + bytes;
        if (end > dirty_hi_)
            dirty_hi_ = end;
    }

    std::vector<uint8_t> bytes_;
    uint32_t watch_limit_ = 0;
    uint64_t code_epoch_ = 0;
    // Dirty window: bytes modified since construction or the last
    // restore().  Empty when dirty_lo_ >= dirty_hi_.
    uint64_t dirty_lo_ = UINT64_MAX;
    uint64_t dirty_hi_ = 0;
};

} // namespace gfp

#endif // GFP_SIM_MEMORY_H
