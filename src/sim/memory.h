/**
 * @file
 * Flat little-endian byte-addressable memory for the GFP simulator.
 *
 * Out-of-range accesses throw MemoryFault.  The Core catches it and
 * converts it into a structured Trap (guest error, host survives);
 * host-facing helpers (Machine::readWord etc.) catch it and escalate to
 * GFP_FATAL, because an out-of-range *host* access is host misuse.
 */

#ifndef GFP_SIM_MEMORY_H
#define GFP_SIM_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace gfp {

/** Thrown on an out-of-range access; carries the faulting address. */
class MemoryFault : public std::runtime_error
{
  public:
    MemoryFault(uint32_t addr, unsigned bytes, size_t mem_size);

    uint32_t addr() const { return addr_; }
    unsigned bytes() const { return bytes_; }

  private:
    uint32_t addr_;
    unsigned bytes_;
};

class Memory
{
  public:
    explicit Memory(size_t size_bytes = 256 * 1024);

    size_t size() const { return bytes_.size(); }

    /**
     * Watch [0, limit) for modification — the code region, so the
     * core's predecoded-instruction cache can be invalidated on
     * self-modifying stores or SEU bit flips without re-checking
     * instruction memory every fetch.  Any write or flipBit below
     * @p limit bumps codeEpoch().
     */
    void watchCode(uint32_t limit) { watch_limit_ = limit; }
    uint64_t codeEpoch() const { return code_epoch_; }

    uint8_t read8(uint32_t addr) const;
    uint16_t read16(uint32_t addr) const;
    uint32_t read32(uint32_t addr) const;
    uint64_t read64(uint32_t addr) const;

    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);
    void write64(uint32_t addr, uint64_t value);

    /** Flip one bit (SEU model); @p bit is taken modulo 8. */
    void flipBit(uint32_t addr, unsigned bit);

    /** Bulk copy into memory (program loading, input buffers). */
    void writeBlock(uint32_t addr, const std::vector<uint8_t> &data);

    /** Bulk copy out of memory (result buffers). */
    std::vector<uint8_t> readBlock(uint32_t addr, size_t len) const;

    void
    fill(uint8_t value)
    {
        std::fill(bytes_.begin(), bytes_.end(), value);
        touch(0);
    }

  private:
    void check(uint32_t addr, unsigned bytes) const;

    /** Record a modification starting at @p addr for code watching. */
    void
    touch(uint32_t addr)
    {
        if (addr < watch_limit_)
            ++code_epoch_;
    }

    std::vector<uint8_t> bytes_;
    uint32_t watch_limit_ = 0;
    uint64_t code_epoch_ = 0;
};

} // namespace gfp

#endif // GFP_SIM_MEMORY_H
