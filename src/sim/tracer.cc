#include "sim/tracer.h"

#include <algorithm>

#include "common/strutil.h"
#include "sim/trap.h"

namespace gfp {

GuestTracer::GuestTracer(TraceLog &log, Core &core, const Program &program,
                         double clock_mhz)
    : log_(log), core_(core), program_(program), clock_mhz_(clock_mhz)
{
    const uint32_t code_end =
        static_cast<uint32_t>(program_.code.size()) * 4;
    for (const auto &[name, addr] : program_.symbols)
        if (addr < code_end)
            regions_.push_back(Region{addr, name});
    std::sort(regions_.begin(), regions_.end(),
              [](const Region &a, const Region &b) {
                  return a.addr < b.addr;
              });
    // The entry point is a region even when unlabeled.
    if (regions_.empty() || regions_.front().addr != 0)
        regions_.insert(regions_.begin(), Region{0, "_entry"});

    log_.processName(kGuestPid, "gfp guest");
    log_.threadName(kGuestPid, kPhaseTid, "kernel phases");
    log_.threadName(kGuestPid, kMarkerTid, "events");
}

int
GuestTracer::regionOf(uint32_t pc) const
{
    // First region with addr > pc, minus one.
    size_t lo = 0, hi = regions_.size();
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (regions_[mid].addr <= pc)
            lo = mid + 1;
        else
            hi = mid;
    }
    return static_cast<int>(lo) - 1;
}

void
GuestTracer::attach()
{
    cur_region_ = -1;
    region_start_cycle_ = core_.stats().cycles;
    last_cycle_ = region_start_cycle_;
    core_.setTraceHook(
        [this](uint32_t pc, const Instr &in) { onRetire(pc, in); });
    attached_ = true;
}

void
GuestTracer::onRetire(uint32_t pc, const Instr &in)
{
    // The hook fires before execute(), so stats().cycles is the cycle
    // count at which this instruction *starts*.
    const uint64_t now = core_.stats().cycles;
    last_cycle_ = now;

    const int region = regionOf(pc);
    if (region != cur_region_) {
        if (cur_region_ >= 0 && now > region_start_cycle_) {
            log_.complete(regions_[cur_region_].name, "kernel",
                          toUs(region_start_cycle_),
                          toUs(now) - toUs(region_start_cycle_), kGuestPid,
                          kPhaseTid);
        }
        cur_region_ = region;
        region_start_cycle_ = now;
    }

    if (in.op == Op::kGfCfg) {
        log_.instant("gfConfig", "reconfig", toUs(now), kGuestPid,
                     kMarkerTid,
                     {{"blob_addr", strprintf("0x%x", in.imm)}});
    }
}

void
GuestTracer::finish(const Trap *trap)
{
    if (!attached_)
        return;
    // Cycles retired after the last hook call (the final instruction's
    // own cost) extend the open span to the core's cycle count.
    const uint64_t end = core_.stats().cycles;
    if (cur_region_ >= 0 && end > region_start_cycle_) {
        log_.complete(regions_[cur_region_].name, "kernel",
                      toUs(region_start_cycle_),
                      toUs(end) - toUs(region_start_cycle_), kGuestPid,
                      kPhaseTid);
    }
    if (trap && *trap) {
        log_.instant(strprintf("trap:%s", trapKindName(trap->kind)), "trap",
                     toUs(trap->cycle), kGuestPid, kMarkerTid,
                     {{"pc", strprintf("0x%x", trap->pc)},
                      {"addr", strprintf("0x%x", trap->addr)}});
    }
    core_.setTraceHook(nullptr);
    attached_ = false;
    cur_region_ = -1;
}

} // namespace gfp
