#include "hwmodel/synthesis.h"

#include "common/strutil.h"

namespace gfp {

std::string
paperVsMeasuredRow(const std::string &label, double paper, double measured,
                   const std::string &unit)
{
    double ratio = paper != 0 ? measured / paper : 0;
    return strprintf("%-28s paper %10.2f %-6s  measured %10.2f %-6s  "
                     "(x%.2f)",
                     label.c_str(), paper, unit.c_str(), measured,
                     unit.c_str(), ratio);
}

} // namespace gfp
