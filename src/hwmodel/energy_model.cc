#include "hwmodel/energy_model.h"

namespace gfp {

EnergyModel
EnergyModel::nominal()
{
    ProcessorSynthesis p;
    // uW / MHz is pJ/cycle exactly.
    return EnergyModel(p.shell_power_uw / p.frequency_mhz,
                       p.gfau_power_uw / p.frequency_mhz,
                       p.nominal_voltage, p.frequency_mhz);
}

EnergyModel
EnergyModel::scaled07v()
{
    ProcessorSynthesis p;
    // The paper publishes the scaled total and GFAU power; the shell is
    // their difference (231 - 75 = 156 uW).
    const double shell_uw = p.total_power_uw_at_07v - p.gfau_power_uw_at_07v;
    return EnergyModel(shell_uw / p.frequency_mhz,
                       p.gfau_power_uw_at_07v / p.frequency_mhz,
                       p.scaled_voltage, p.frequency_mhz);
}

double
EnergyModel::runEnergyPj(const CycleStats &stats) const
{
    return shell_pj_per_cycle_ * static_cast<double>(stats.cycles) +
           gfauEnergyPj(stats);
}

double
EnergyModel::gfauEnergyPj(const CycleStats &stats) const
{
    const uint64_t gf_cycles =
        stats.gf_simd_cycles + stats.gf32_cycles + stats.gfcfg_cycles;
    return gfau_pj_per_cycle_ * static_cast<double>(gf_cycles);
}

double
EnergyModel::averagePowerUw(const CycleStats &stats) const
{
    if (stats.cycles == 0)
        return 0.0;
    // pJ / (cycles / MHz) us = pJ/us = uW.
    const double us = static_cast<double>(stats.cycles) / clock_mhz_;
    return runEnergyPj(stats) / us;
}

} // namespace gfp
