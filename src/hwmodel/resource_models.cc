#include "hwmodel/resource_models.h"

#include "common/strutil.h"

namespace gfp {

std::string
GateCost::describe()const
{
    return strprintf("AND %.0f  XOR %.0f  MUX %.0f  FF %.0f  "
                     "(area %.2f AND-eq)",
                     and_gates, xor_gates, mux_gates, flipflops,
                     areaUnits());
}

GateCost
systolicMultCost(unsigned m)
{
    GateCost c;
    double md = m;
    c.and_gates = 2 * md * md;
    c.xor_gates = 2 * md * md;
    // FF: operand a (m-1)m, operand b (m-1)m/2, intermediate (m-1)m.
    c.flipflops = (md - 1) * md + (md - 1) * md / 2 + (md - 1) * md;
    return c;
}

GateCost
linearTransformMultCost(unsigned m)
{
    GateCost c;
    double md = m;
    c.and_gates = 2 * md * md - md;
    c.xor_gates = 2 * md * md - 3 * md + 1;
    // Pure combinational logic: no pipeline flip-flops.
    return c;
}

double
systolicMultAreaClosedForm(unsigned m)
{
    return 16.5 * m * m - 10.0 * m;
}

double
linearMultAreaClosedForm(unsigned m)
{
    return 6.5 * m * m - 7.75 * m;
}

double
systolicMultConfigFf(unsigned m)
{
    return m;
}

double
linearMultConfigFf(unsigned m)
{
    return static_cast<double>(m) * (m - 1);
}

GateCost
systolicEuclidInverseCost(unsigned m)
{
    GateCost c;
    double md = m;
    c.xor_gates = md * (6 * md + 3);
    c.and_gates = md * (6 * md + 7);
    c.mux_gates = md * (6 * md + 5);
    c.flipflops = md * (6 * md + 4);
    return c;
}

GateCost
itaInverseCost(unsigned m)
{
    GateCost c;
    double md = m;
    c.and_gates = 15 * md * md - 11 * md;
    c.xor_gates = 15 * md * md - 13 * md + 4;
    return c;
}

double
systolicInverseAreaClosedForm(unsigned m)
{
    return 57.0 * m * m;
}

double
itaInverseAreaClosedForm(unsigned m)
{
    return 48.75 * m * m;
}

} // namespace gfp
