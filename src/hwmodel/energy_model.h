/**
 * @file
 * Per-cycle energy attribution from the 28nm calibration constants.
 *
 * The paper reports average power at the 100 MHz / 0.9 V operating
 * point (Table 11): 279 uW for the two-stage processor shell and
 * 152 uW for the GF arithmetic unit.  Average power at a fixed clock
 * is energy per cycle — 1 uW at 1 MHz is exactly 1 pJ/cycle — so the
 * published figures convert to:
 *
 *   shell  279 uW / 100 MHz = 2.79 pJ per cycle (every cycle: fetch,
 *          decode, registers, and the integer datapath are alive
 *          regardless of what retires)
 *   GFAU   152 uW / 100 MHz = 1.52 pJ per cycle in which the GF unit
 *          is exercised (gfsimd / gf32 / gfcfg-class cycles)
 *
 * EnergyModel joins these rates against cycle counts — a whole-run
 * CycleStats or a single profiled pc's class/cycle pair — to produce
 * Table 7/11-style energy breakdowns automatically.  The 0.7 V model
 * uses the paper's SPICE-measured scaled powers (231 uW total, 75 uW
 * GFAU), not a naive V^2 scaling.
 *
 * This is attribution of *published averages*, not microarchitectural
 * power simulation: within a class every cycle costs the same.
 */

#ifndef GFP_HWMODEL_ENERGY_MODEL_H
#define GFP_HWMODEL_ENERGY_MODEL_H

#include "hwmodel/synthesis.h"
#include "isa/isa.h"
#include "sim/stats.h"

namespace gfp {

class EnergyModel
{
  public:
    /** The 0.9 V / 100 MHz operating point of Table 11. */
    static EnergyModel nominal();

    /** The paper's SPICE-measured 0.7 V point (Sec. 3.4). */
    static EnergyModel scaled07v();

    /** pJ burned by one cycle of class @p cls: the shell rate, plus
     *  the GFAU rate when the cycle exercises the GF unit. */
    double
    cyclePj(InstrClass cls) const
    {
        return shell_pj_per_cycle_ +
               (usesGfau(cls) ? gfau_pj_per_cycle_ : 0.0);
    }

    /** pJ for @p cycles cycles of class @p cls. */
    double
    energyPj(InstrClass cls, uint64_t cycles) const
    {
        return cyclePj(cls) * static_cast<double>(cycles);
    }

    /** Total pJ for a whole run's statistics. */
    double runEnergyPj(const CycleStats &stats) const;

    /** Of runEnergyPj, the pJ attributable to the GF unit. */
    double gfauEnergyPj(const CycleStats &stats) const;

    /** Average power in uW if the run executes back-to-back at the
     *  model's clock (energy / time; sanity-checks against Table 11). */
    double averagePowerUw(const CycleStats &stats) const;

    double shellPjPerCycle() const { return shell_pj_per_cycle_; }
    double gfauPjPerCycle() const { return gfau_pj_per_cycle_; }
    double voltage() const { return voltage_; }
    double clockMhz() const { return clock_mhz_; }

    static bool
    usesGfau(InstrClass cls)
    {
        return cls == InstrClass::kGfSimd || cls == InstrClass::kGf32 ||
               cls == InstrClass::kGfCfg;
    }

  private:
    EnergyModel(double shell_pj, double gfau_pj, double voltage,
                double clock_mhz)
        : shell_pj_per_cycle_(shell_pj), gfau_pj_per_cycle_(gfau_pj),
          voltage_(voltage), clock_mhz_(clock_mhz)
    {
    }

    double shell_pj_per_cycle_;
    double gfau_pj_per_cycle_;
    double voltage_;
    double clock_mhz_;
};

} // namespace gfp

#endif // GFP_HWMODEL_ENERGY_MODEL_H
