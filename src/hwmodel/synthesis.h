/**
 * @file
 * The 28nm synthesis calibration layer: the paper's published
 * cell/area/power/timing figures (Tables 3, 10, 11) and the derived
 * quantities the evaluation reports (energy per bit, voltage scaling,
 * area comparisons).  These numbers are *calibration constants* from
 * the paper's Design Compiler / PrimeTime runs — we cannot synthesize,
 * so we model around them and validate internal consistency instead
 * (e.g. 16 x 199.59 um^2 == the reported 3193 um^2 multiplier array).
 */

#ifndef GFP_HWMODEL_SYNTHESIS_H
#define GFP_HWMODEL_SYNTHESIS_H

#include <string>

namespace gfp {

/** One primitive computation unit, post-synthesis (Table 3). */
struct UnitSynthesis
{
    const char *name;
    unsigned cells;
    double area_um2;
    double critical_path_ns;
    unsigned count; ///< instances in the preferred configuration
};

/** Table 3 / Table 10 constants. */
struct GfauSynthesis
{
    UnitSynthesis mult{"GF mult", 263, 199.59, 0.4, 16};
    UnitSynthesis square{"GF square", 73, 63.48, 0.2, 28};

    /** Instruction/interconnect control block area (Table 10). */
    double control_area_um2 = 1005.0;

    /** Total GFAU area as published (Table 10).  NOTE: the paper's
     *  printed total (5760) differs from the column sum (5975); we
     *  reproduce the printed value and surface the discrepancy. */
    double total_area_um2 = 5760.0;

    /** Worst path: the SIMD multiplicative inverse network. */
    double critical_path_ns = 2.91;

    double multArrayArea() const { return mult.count * mult.area_um2; }
    double squareArrayArea() const
    {
        return square.count * square.area_um2;
    }
    double columnSumArea() const
    {
        return multArrayArea() + squareArrayArea() + control_area_um2;
    }
};

/** Table 11: the full processor at 0.9 V, 100 MHz, 28nm. */
struct ProcessorSynthesis
{
    // Two-stage processor shell.
    unsigned shell_comb_gates = 3482;
    double shell_comb_area_um2 = 2258.0;
    unsigned shell_rf_gates = 694;
    double shell_rf_area_um2 = 2254.0;
    unsigned shell_total_gates = 4176;
    double shell_total_area_um2 = 4512.0;
    double shell_power_uw = 279.0;

    // GF arithmetic unit.
    unsigned gfau_gates = 7494;
    double gfau_area_um2 = 5760.0;
    double gfau_power_uw = 152.0;

    // Design total.
    unsigned total_gates = 11670;
    double total_area_um2 = 10272.0;
    double total_power_uw = 431.0;

    double nominal_voltage = 0.9;
    double frequency_mhz = 100.0;
    double max_frequency_mhz = 300.0;

    /** Scaled power at 0.7 V (the paper's SPICE result: the GFAU drops
     *  to 75 uW and the processor to 231 uW — a 1.86x energy gain). */
    double scaled_voltage = 0.7;
    double gfau_power_uw_at_07v = 75.0;
    double total_power_uw_at_07v = 231.0;

    /** Naive dynamic-only scaling P * (V'/V)^2, for comparison with
     *  the paper's SPICE-measured figure. */
    double
    dynamicScaledPowerUw(double new_voltage) const
    {
        double r = new_voltage / nominal_voltage;
        return total_power_uw * r * r;
    }

    double
    voltageScalingEnergyGain() const
    {
        return total_power_uw / total_power_uw_at_07v;
    }

    /** Throughput in Mbit/s for a kernel that processes @p bits_per_run
     *  in @p cycles_per_run cycles at frequency_mhz. */
    double
    throughputMbps(double bits_per_run, double cycles_per_run) const
    {
        return bits_per_run / cycles_per_run * frequency_mhz;
    }

    /** Energy efficiency in pJ/bit at the given throughput. */
    double
    energyPerBitPj(double throughput_mbps) const
    {
        return total_power_uw / throughput_mbps;
    }
};

/** Cited comparison points (Tables 8, 9, 12, 13 and Sec. 3.5). */
struct Literature
{
    // Table 8: GF(2^233)-class multiply/square cycle counts.
    struct { unsigned mult_228 = 4359, mult_256 = 5398;
             unsigned sqr_228 = 348, sqr_256 = 389; } erdem_arm7;
    struct { unsigned mult = 3672, sqr = 395, add = 68,
             mult_precomp = 675; } clercq_m0plus;

    // Table 9: Clercq point operations on the M0+.
    struct { unsigned point_add = 34426; unsigned inverse = 139000; }
        clercq_points;

    // Paper's own Table 9 processor results (reference columns).
    struct { unsigned mult = 599, sqr = 136, add = 66;
             unsigned point_add = 6742, point_double = 3499,
             inverse = 39972; } paper_direct;
    struct { unsigned mult = 439, point_add = 5302,
             point_double = 2859, inverse = 38372; } paper_karatsuba;
    unsigned paper_scalar_mult_cycles = 617120;
    unsigned paper_scalar_support_cycles = 157442;

    // Table 12: Intel NanoAES, scaled to 28nm.
    struct { double enc_area = 2800, dec_area = 3482,
             total_area = 6282; } nano_aes;

    // Table 13: Zhang compact AES ASIC, scaled to 28nm.
    struct { double power_uw = 236; double throughput_mbps = 38;
             double pj_per_bit = 6.21; } zhang_aes;

    // Sec. 3.5: Mathew 64b GF multiplier, scaled to 28nm @0.9V 100MHz.
    struct { double power_mw = 1.25; double area_ratio_vs_us = 0.77; }
        mathew_gf64;

    // Paper's AES headline: 12.2 Mbps, 35.5 pJ/b at 431 uW.
    double paper_aes_throughput_mbps = 12.2;
    double paper_aes_pj_per_bit = 35.5;
};

/** Render a one-line "paper vs measured" row for reports. */
std::string paperVsMeasuredRow(const std::string &label, double paper,
                               double measured,
                               const std::string &unit);

} // namespace gfp

#endif // GFP_HWMODEL_SYNTHESIS_H
