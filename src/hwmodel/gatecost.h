/**
 * @file
 * Gate-level cost accounting for the GFAU hardware comparisons.
 *
 * The paper expresses all of its resource comparisons (Tables 2 and 4)
 * in counts of AND / XOR / MUX gates and flip-flops, weighted by their
 * relative area in a 28nm library:
 *
 *     AND : MUX : XOR : FF  =  1 : 2.25 : 2.25 : 4
 *
 * so a "total area" is reported in AND-gate-equivalent units.  We keep
 * the same convention; absolute um^2 figures come from the paper's
 * published synthesis calibration points (unit_model.h).
 */

#ifndef GFP_HWMODEL_GATECOST_H
#define GFP_HWMODEL_GATECOST_H

#include <string>

namespace gfp {

struct GateCost
{
    double and_gates = 0;
    double xor_gates = 0;
    double mux_gates = 0;
    double flipflops = 0;

    static constexpr double kAndWeight = 1.0;
    static constexpr double kXorWeight = 2.25;
    static constexpr double kMuxWeight = 2.25;
    static constexpr double kFfWeight = 4.0;

    /** Weighted area in AND-gate equivalents. */
    double
    areaUnits() const
    {
        return and_gates * kAndWeight + xor_gates * kXorWeight +
               mux_gates * kMuxWeight + flipflops * kFfWeight;
    }

    GateCost
    operator+(const GateCost &o) const
    {
        return {and_gates + o.and_gates, xor_gates + o.xor_gates,
                mux_gates + o.mux_gates, flipflops + o.flipflops};
    }

    std::string describe() const;
};

} // namespace gfp

#endif // GFP_HWMODEL_GATECOST_H
