/**
 * @file
 * Analytic resource models reproducing the paper's design-space
 * comparisons:
 *
 *  - Table 2: GF multiplication — bit-pipelined systolic (Jain/Song/
 *    Parhi LSB-first) vs. this work's single-step linear-transform
 *    reduction;
 *  - Table 4: multiplicative inverse — pipelined systolic extended-
 *    Euclidean vs. the Itoh-Tsujii network built from existing units.
 *
 * Formulas are the paper's own, parameterized by field width m, so the
 * crossover/ratio *shape* is fully reproducible.
 */

#ifndef GFP_HWMODEL_RESOURCE_MODELS_H
#define GFP_HWMODEL_RESOURCE_MODELS_H

#include "hwmodel/gatecost.h"

namespace gfp {

/** Table 2, "Systolic / Bit-pipelined" column. */
GateCost systolicMultCost(unsigned m);

/** Table 2, "This work / Single Step Linear Transform" column. */
GateCost linearTransformMultCost(unsigned m);

/** Table 2 closed forms for the weighted totals. */
double systolicMultAreaClosedForm(unsigned m);   // 16.5 m^2 - 10 m
double linearMultAreaClosedForm(unsigned m);     // 6.5 m^2 - 7.75 m

/** Configuration-datapath flip-flops (shared across ALUs), Table 2. */
double systolicMultConfigFf(unsigned m);         // m
double linearMultConfigFf(unsigned m);           // m (m - 1)

/** Table 4, systolic extended-Euclidean inverse (pipelined). */
GateCost systolicEuclidInverseCost(unsigned m);

/** Table 4, Itoh-Tsujii inverse (this work). */
GateCost itaInverseCost(unsigned m);

/** Table 4 closed forms (m^2 terms only, as the paper notes). */
double systolicInverseAreaClosedForm(unsigned m); // 57 m^2
double itaInverseAreaClosedForm(unsigned m);      // 48.75 m^2

} // namespace gfp

#endif // GFP_HWMODEL_RESOURCE_MODELS_H
