/**
 * @file
 * Certificate emitters (analysis/certify.h) on top of the abstract
 * interpreter.  See the header for the contract; the interesting code
 * here is the WCET engine: a bottom-up walk of the call graph that
 * collapses natural loops innermost-first (loop weight = proven head
 * visits x longest acyclic body path) and then takes the longest path
 * through each function's loop-collapsed DAG.  Instruction weights are
 * the worst-case cycle costs the simulator itself retires
 * (sim/cost_model.h), so the static bound and the dynamic counter are
 * the same accounting by construction.
 */

#include "analysis/certify.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/config_verifier.h"
#include "analysis/lint.h"
#include "gfau/config_reg.h"
#include "hwmodel/energy_model.h"
#include "isa/isa.h"
#include "sim/cost_model.h"

namespace gfp {

namespace {

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    const uint64_t s = a + b;
    return s < a ? std::numeric_limits<uint64_t>::max() : s;
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > std::numeric_limits<uint64_t>::max() / b)
        return std::numeric_limits<uint64_t>::max();
    return a * b;
}

/** Per-path cost vector; each component is maximized independently,
 *  which upper-bounds every concrete path on every component. */
struct Weights
{
    uint64_t instrs = 0;
    uint64_t cycles = 0;
    uint64_t gf_cycles = 0;

    Weights operator+(const Weights &o) const
    {
        return {satAdd(instrs, o.instrs), satAdd(cycles, o.cycles),
                satAdd(gf_cycles, o.gf_cycles)};
    }
    Weights scaled(uint64_t k) const
    {
        return {satMul(instrs, k), satMul(cycles, k), satMul(gf_cycles, k)};
    }
    void maxWith(const Weights &o)
    {
        instrs = std::max(instrs, o.instrs);
        cycles = std::max(cycles, o.cycles);
        gf_cycles = std::max(gf_cycles, o.gf_cycles);
    }
};

/** Worst-case weight of retiring the instruction at @p nd once,
 *  excluding any callee cost. */
Weights
ownWeight(const CfgNode &nd)
{
    if (!nd.valid)
        return {1, kDefaultCycles, 0};
    const unsigned cyc = worstCaseCycles(nd.in.op);
    const bool gf = EnergyModel::usesGfau(classOf(nd.in.op));
    return {1, cyc, gf ? cyc : 0};
}

/**
 * Bottom-up WCET over the call graph.  costOf(entry) returns the
 * worst-case weight of one activation of the function entered at
 * @p entry, or nullopt (with reason() set) when the analysis declines:
 * recursion, irreducible control flow, an unbounded loop, or an
 * unrefined indirect jump.
 */
class WcetEngine
{
  public:
    WcetEngine(const AbsInterp &ai) : ai_(ai), cfg_(ai.cfg()) {}

    std::optional<Weights> costOf(uint32_t entry);
    const std::string &reason() const { return reason_; }

  private:
    std::optional<Weights> compute(uint32_t entry);

    /** Longest path through a region (function body or one loop body)
     *  whose cycles have been collapsed into single items. */
    std::optional<Weights>
    regionLongestPath(const std::set<uint32_t> &nodes, uint32_t start,
                      const std::vector<const LoopBound *> &loops,
                      const std::map<uint32_t, Weights> &loop_weight,
                      const std::map<uint32_t, Weights> &node_weight,
                      bool drop_edges_to_start);

    /** Innermost loop (among @p loops, excluding head @p self) whose
     *  member set contains @p v; nullptr when v is a plain node. */
    static const LoopBound *
    innermostLoop(uint32_t v, const std::vector<const LoopBound *> &loops,
                  uint32_t self);

    const AbsInterp &ai_;
    const ControlFlowGraph &cfg_;
    std::map<uint32_t, std::optional<Weights>> memo_;
    std::set<uint32_t> in_progress_;
    std::string reason_;
};

std::optional<Weights>
WcetEngine::costOf(uint32_t entry)
{
    auto it = memo_.find(entry);
    if (it != memo_.end())
        return it->second;
    if (in_progress_.count(entry)) {
        if (reason_.empty())
            reason_ = "recursive call through " + cfg_.describeNode(entry);
        return std::nullopt;
    }
    in_progress_.insert(entry);
    auto r = compute(entry);
    in_progress_.erase(entry);
    memo_[entry] = r;
    return r;
}

const LoopBound *
WcetEngine::innermostLoop(uint32_t v,
                          const std::vector<const LoopBound *> &loops,
                          uint32_t self)
{
    const LoopBound *best = nullptr;
    for (const LoopBound *L : loops) {
        if (L->head == self)
            continue;
        if (!std::binary_search(L->members.begin(), L->members.end(), v))
            continue;
        if (!best || L->members.size() < best->members.size())
            best = L;
    }
    return best;
}

std::optional<Weights>
WcetEngine::regionLongestPath(const std::set<uint32_t> &nodes, uint32_t start,
                              const std::vector<const LoopBound *> &loops,
                              const std::map<uint32_t, Weights> &loop_weight,
                              const std::map<uint32_t, Weights> &node_weight,
                              bool drop_edges_to_start)
{
    // Items: plain nodes map to themselves; nodes inside one of the
    // region's sub-loops map to that loop's head.  The item graph of a
    // reducible region with every sub-loop collapsed is acyclic.
    auto itemOf = [&](uint32_t v) -> uint32_t {
        const LoopBound *L = innermostLoop(v, loops, start);
        return L ? L->head : v;
    };
    // For nesting, map to the OUTERMOST sub-loop of this region: the
    // loops vector passed in holds only immediate sub-regions, so the
    // innermost-containing lookup over it is exactly that.

    std::map<uint32_t, std::vector<uint32_t>> succ;
    std::map<uint32_t, unsigned> indeg;
    std::set<uint32_t> items;
    for (uint32_t u : nodes)
        items.insert(itemOf(u));
    for (uint32_t u : nodes) {
        const uint32_t a = itemOf(u);
        for (uint32_t v : cfg_.intraSucc(u)) {
            if (!nodes.count(v))
                continue; // region exit
            const uint32_t b = itemOf(v);
            if (a == b)
                continue;
            if (drop_edges_to_start && b == itemOf(start))
                continue; // back edge of the loop being collapsed
            succ[a].push_back(b);
        }
    }
    for (auto &[a, vs] : succ) {
        std::sort(vs.begin(), vs.end());
        vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
        for (uint32_t b : vs)
            ++indeg[b];
    }

    auto weightOf = [&](uint32_t item) -> Weights {
        auto lw = loop_weight.find(item);
        if (lw != loop_weight.end() && item != start)
            return lw->second;
        // `start` of a loop region is the head *node*, priced as a node
        // even when a same-head entry exists in loop_weight.
        auto nw = node_weight.find(item);
        return nw != node_weight.end() ? nw->second : Weights{};
    };

    // Kahn topological order; a leftover item means a cycle survived
    // loop collapse (should be unreachable given the irreducibility
    // pre-check — decline rather than under-approximate).
    std::vector<uint32_t> order;
    std::vector<uint32_t> ready;
    for (uint32_t it2 : items)
        if (indeg.find(it2) == indeg.end())
            ready.push_back(it2);
    while (!ready.empty()) {
        uint32_t a = ready.back();
        ready.pop_back();
        order.push_back(a);
        auto sit = succ.find(a);
        if (sit == succ.end())
            continue;
        for (uint32_t b : sit->second)
            if (--indeg[b] == 0)
                ready.push_back(b);
    }
    if (order.size() != items.size()) {
        if (reason_.empty())
            reason_ = "cycle survived loop collapse near " +
                      cfg_.describeNode(start);
        return std::nullopt;
    }

    const uint32_t start_item = itemOf(start);
    std::map<uint32_t, Weights> dist;
    std::set<uint32_t> seen;
    dist[start_item] = weightOf(start_item);
    seen.insert(start_item);
    Weights best = dist[start_item];
    for (uint32_t a : order) {
        if (!seen.count(a))
            continue;
        best.maxWith(dist[a]);
        auto sit = succ.find(a);
        if (sit == succ.end())
            continue;
        for (uint32_t b : sit->second) {
            Weights w = dist[a] + weightOf(b);
            if (!seen.count(b)) {
                dist[b] = w;
                seen.insert(b);
            } else {
                dist[b].maxWith(w);
            }
        }
    }
    return best;
}

std::optional<Weights>
WcetEngine::compute(uint32_t entry)
{
    if (ai_.irreducibleFunctions().count(entry)) {
        if (reason_.empty())
            reason_ = "irreducible control flow in " +
                      cfg_.describeNode(entry);
        return std::nullopt;
    }

    // Region nodes: the function body, restricted to what the abstract
    // interpreter still considers reachable (it may have pruned
    // infeasible branch edges the raw CFG keeps).
    std::set<uint32_t> body;
    for (uint32_t v : cfg_.functionNodes(entry))
        if (ai_.inState(v).reachable)
            body.insert(v);
    if (body.empty())
        return Weights{};

    // Per-node weights, with callee costs folded into call sites.
    std::map<uint32_t, Weights> node_weight;
    for (uint32_t v : body) {
        const CfgNode &nd = cfg_.node(v);
        Weights w = ownWeight(nd);
        if (nd.valid && nd.is_indirect && !cfg_.indirectRefined(v)) {
            if (reason_.empty())
                reason_ = "unrefined indirect jump at " +
                          cfg_.describeNode(v);
            return std::nullopt;
        }
        if (nd.valid && nd.is_call && nd.target_in_code) {
            auto callee = costOf(nd.target);
            if (!callee)
                return std::nullopt;
            w = w + *callee;
        }
        node_weight[v] = w;
    }

    // Loops of this region, all of which must be bounded.
    std::vector<const LoopBound *> loops;
    for (const LoopBound &L : ai_.loops()) {
        if (!body.count(L.head))
            continue;
        if (!L.bounded) {
            if (reason_.empty())
                reason_ = "unbounded loop at " + cfg_.describeNode(L.head) +
                          " (" + L.reason + ")";
            return std::nullopt;
        }
        loops.push_back(&L);
    }
    // Innermost-first, so nested loop weights exist before their parent
    // collapses them.
    std::sort(loops.begin(), loops.end(),
              [](const LoopBound *a, const LoopBound *b) {
                  return a->members.size() < b->members.size();
              });

    std::map<uint32_t, Weights> loop_weight;
    for (const LoopBound *L : loops) {
        std::set<uint32_t> lnodes;
        for (uint32_t v : L->members)
            if (body.count(v))
                lnodes.insert(v);
        if (!lnodes.count(L->head))
            continue; // head pruned: loop cannot execute
        // Immediate sub-loops of L: strictly smaller loops whose head is
        // one of L's members.
        std::vector<const LoopBound *> subs;
        for (const LoopBound *M : loops) {
            if (M == L || M->members.size() >= L->members.size())
                continue;
            if (std::binary_search(L->members.begin(), L->members.end(),
                                   M->head) &&
                M->head != L->head)
                subs.push_back(M);
        }
        auto iter = regionLongestPath(lnodes, L->head, subs, loop_weight,
                                      node_weight,
                                      /*drop_edges_to_start=*/true);
        if (!iter)
            return std::nullopt;
        loop_weight[L->head] = iter->scaled(L->max_head_visits);
    }

    // Function level: collapse only the top-level loops (those not
    // nested inside another loop of this region).
    std::vector<const LoopBound *> top;
    for (const LoopBound *L : loops) {
        bool nested = false;
        for (const LoopBound *M : loops)
            if (M != L && M->head != L->head &&
                std::binary_search(M->members.begin(), M->members.end(),
                                   L->head))
                nested = true;
        if (!nested)
            top.push_back(L);
    }
    return regionLongestPath(body, entry, top, loop_weight, node_weight,
                             /*drop_edges_to_start=*/false);
}

/** Static read of the 8-byte gfcfg blob at @p addr from the program
 *  image (little-endian), when it lies fully inside initialized data or
 *  the code section. */
bool
readStaticBlob(const Program &prog, uint32_t addr, uint64_t &out)
{
    uint64_t v = 0;
    for (unsigned b = 0; b < 8; ++b) {
        const uint64_t a = uint64_t{addr} + b;
        uint8_t byte;
        if (a < uint64_t{prog.code.size()} * 4) {
            byte = static_cast<uint8_t>(prog.code[a / 4] >> (8 * (a % 4)));
        } else if (a >= prog.data_base &&
                   a - prog.data_base < prog.data.size()) {
            byte = prog.data[a - prog.data_base];
        } else {
            return false;
        }
        v |= uint64_t{byte} << (8 * b);
    }
    out = v;
    return true;
}

ConfigCertificate
certifyConfigSite(const Program &prog, const AbsInterp &ai, uint32_t idx,
                  uint32_t addr, size_t mem_bytes)
{
    ConfigCertificate cc;
    cc.idx = idx;
    cc.addr = addr;

    if (uint64_t{addr} + 8 > mem_bytes) {
        cc.verdict = ConfigVerdict::kBlobOob;
        cc.message = "blob outside memory: gfcfg traps OutOfRangeAccess";
        return cc;
    }
    for (unsigned b = 0; b < 8; ++b)
        if (ai.storesMayTouch(addr + b, 1))
            cc.tainted_bytes |= static_cast<uint8_t>(1u << b);
    if (cc.tainted_bytes != 0) {
        cc.verdict = ConfigVerdict::kTainted;
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "stores may rewrite blob bytes (mask 0x%02x)",
                      cc.tainted_bytes);
        cc.message = buf;
        return cc;
    }

    uint64_t blob = 0;
    if (!readStaticBlob(prog, addr, blob)) {
        // Inside memory, beyond the image, untouched by any store: the
        // bytes are the zero-initialized power-on state, and the
        // all-zero blob has an invalid width.
        cc.verdict = ConfigVerdict::kInvalid;
        cc.message = "uninitialized (zero) blob: gfcfg traps "
                     "GfConfigCorrupt";
        return cc;
    }

    GFConfig gcfg;
    if (!GFConfig::tryUnpack(blob, gcfg)) {
        cc.verdict = ConfigVerdict::kInvalid;
        cc.message = "invalid field width: gfcfg traps GfConfigCorrupt";
        return cc;
    }
    cc.m = gcfg.m;
    const ConfigClassification cls = classifyConfig(gcfg);
    switch (cls.cls) {
      case ConfigClass::kField: {
        cc.verdict = ConfigVerdict::kVerifiedField;
        char buf[64];
        std::snprintf(buf, sizeof buf, "GF(2^%u), polynomial 0x%x", cls.m,
                      cls.poly);
        cc.message = buf;
        break;
      }
      case ConfigClass::kCirculant: {
        cc.verdict = ConfigVerdict::kVerifiedCirculant;
        char buf[48];
        std::snprintf(buf, sizeof buf, "circulant ring mod x^%u+1", cls.m);
        cc.message = buf;
        break;
      }
      case ConfigClass::kInvalid:
        cc.verdict = ConfigVerdict::kInvalid;
        cc.message = "invalid field width: gfcfg traps GfConfigCorrupt";
        break;
      case ConfigClass::kUnknown:
        cc.verdict = ConfigVerdict::kRefuted;
        cc.message = "P matrix matches no irreducible polynomial and is "
                     "not the circulant configuration";
        break;
    }
    return cc;
}

} // namespace

const char *
configVerdictName(ConfigVerdict v)
{
    switch (v) {
      case ConfigVerdict::kVerifiedField:     return "verified-field";
      case ConfigVerdict::kVerifiedCirculant: return "verified-circulant";
      case ConfigVerdict::kRefuted:           return "refuted";
      case ConfigVerdict::kInvalid:           return "invalid";
      case ConfigVerdict::kTainted:           return "tainted";
      case ConfigVerdict::kOutOfImage:        return "out-of-image";
      case ConfigVerdict::kBlobOob:           return "blob-oob";
    }
    return "?";
}

unsigned
ProgramCertificate::reachableBlocks() const
{
    unsigned n = 0;
    for (const auto &b : blocks)
        n += b.reachable;
    return n;
}

unsigned
ProgramCertificate::trapFreeBlocks() const
{
    unsigned n = 0;
    for (const auto &b : blocks)
        n += b.reachable && b.trapFree();
    return n;
}

unsigned
ProgramCertificate::boundedLoops() const
{
    unsigned n = 0;
    for (const auto &l : loops)
        n += l.bounded;
    return n;
}

std::string
ProgramCertificate::summary() const
{
    std::ostringstream os;
    os << (trap_free ? "trap-free" : "NOT trap-free") << ", "
       << (jit_safe ? "jit-safe" : "not jit-safe") << "; blocks "
       << trapFreeBlocks() << "/" << reachableBlocks() << " certified; loops "
       << boundedLoops() << "/" << loops.size() << " bounded";
    if (cost.bounded) {
        os << "; wcet " << cost.cycle_bound << " cycles ("
           << cost.instr_bound << " instrs, " << cost.gf_cycle_bound
           << " GFAU cycles), energy <= " << cost.energy_nominal_pj / 1000.0
           << " nJ @0.9V / " << cost.energy_07v_pj / 1000.0 << " nJ @0.7V";
    } else {
        os << "; wcet unbounded (" << cost.reason << "), watchdog fallback "
           << cost.instr_bound << " instrs";
    }
    return os.str();
}

ProgramCertificate
certifyProgram(const Program &prog, const CertifyOptions &opts)
{
    ProgramCertificate pc;

    ControlFlowGraph cfg(prog);
    AbsIntOptions aopts;
    aopts.mem_bytes = opts.mem_bytes;
    AbsInterp ai(cfg, aopts);
    ai.run();

    pc.loops = ai.loops();
    pc.refined_indirects = ai.refinedIndirects();

    const uint32_t n = static_cast<uint32_t>(cfg.size());
    const uint64_t code_bytes = uint64_t{n} * 4;

    // ------------------------------------------------------------------
    // Config certificates (one per reachable gfcfg site).
    std::map<uint32_t, unsigned> config_at; // node idx -> pc.configs slot
    if (opts.check_configs) {
        for (uint32_t i = 0; i < n; ++i) {
            const CfgNode &nd = cfg.node(i);
            if (!nd.valid || nd.in.op != Op::kGfCfg ||
                !ai.inState(i).reachable)
                continue;
            config_at[i] = static_cast<unsigned>(pc.configs.size());
            pc.configs.push_back(certifyConfigSite(
                prog, ai, i, static_cast<uint32_t>(nd.in.imm),
                opts.mem_bytes));
        }
    }

    // ------------------------------------------------------------------
    // The linter contributes the lr-integrity refutation, which the
    // value analysis deliberately trusts otherwise.
    std::set<uint32_t> lr_suspect_words;
    {
        LintOptions lopts;
        lopts.mem_bytes = opts.mem_bytes;
        lopts.check_config_blobs = false; // done above, flow-sensitively
        lopts.max_findings = 0;
        const LintReport lint = lintProgram(prog, lopts);
        for (const Finding &f : lint.findings)
            if (f.rule == LintRule::kLrClobbered)
                lr_suspect_words.insert(f.pc / 4);
    }

    // ------------------------------------------------------------------
    // Block certificates.
    auto describeIdx = [&](uint32_t i) { return cfg.describeNode(i); };
    for (uint32_t i = 0; i < n;) {
        uint32_t end = i + 1;
        while (end < n && !cfg.node(end).leader)
            ++end;
        BlockCertificate bc;
        bc.first = i;
        bc.last = end - 1;
        for (uint32_t w = i; w < end; ++w) {
            if (!ai.inState(w).reachable)
                continue;
            bc.reachable = true;
            const CfgNode &nd = cfg.node(w);
            if (!nd.valid) {
                bc.decode_ok = false;
                bc.obstacles.push_back("undecodable word at " +
                                       describeIdx(w));
                continue;
            }
            pc.has_gf_ops = pc.has_gf_ops || isGfOp(nd.in.op);
            if (nd.has_target && !nd.target_in_code) {
                bc.branch_ok = false;
                bc.obstacles.push_back("branch target outside code at " +
                                       describeIdx(w));
            }
            if (nd.is_indirect && !ai.indirectTargetsOk(w)) {
                bc.branch_ok = false;
                bc.obstacles.push_back("indirect jump with unproven "
                                       "targets at " + describeIdx(w));
            }
            if (nd.falls_through && w + 1 == n) {
                bc.branch_ok = false;
                bc.obstacles.push_back("execution can fall off the end of "
                                       "the code section at " +
                                       describeIdx(w));
            }
            if (lr_suspect_words.count(w)) {
                bc.branch_ok = false;
                bc.obstacles.push_back("lr may be clobbered across the "
                                       "call at " + describeIdx(w));
            }
            if (const MemAccess *a = ai.memAccessAt(w)) {
                if (nd.in.op == Op::kGfCfg) {
                    auto cit = config_at.find(w);
                    if (cit != config_at.end()) {
                        const ConfigCertificate &cc = pc.configs[cit->second];
                        if (!cc.trapFree()) {
                            bc.gfcfg_ok = false;
                            bc.obstacles.push_back(
                                "gfcfg at " + describeIdx(w) + ": " +
                                cc.message);
                        }
                    }
                } else if (!a->proven) {
                    bc.mem_ok = false;
                    bc.obstacles.push_back("unproven address for the "
                                           "access at " + describeIdx(w));
                } else {
                    if (uint64_t{a->addr.hi} + a->size > opts.mem_bytes) {
                        bc.mem_ok = false;
                        bc.obstacles.push_back(
                            "access may leave memory (" +
                            a->addr.describe() + " size " +
                            std::to_string(a->size) + ") at " +
                            describeIdx(w));
                    }
                    if (a->is_store && a->addr.lo < code_bytes) {
                        bc.no_smc = false;
                        bc.obstacles.push_back(
                            "store may hit the code section (" +
                            a->addr.describe() + ") at " + describeIdx(w));
                    }
                }
            }
            if (nd.in.op != Op::kGfCfg && usesReductionMatrix(nd.in.op) &&
                !ai.inState(w).cfg_loaded) {
                bc.gf_configured = false;
                bc.obstacles.push_back("GF op may execute in the power-on "
                                       "default field at " + describeIdx(w));
            }
        }
        pc.blocks.push_back(std::move(bc));
        i = end;
    }

    // ------------------------------------------------------------------
    // WCET / energy.
    WcetEngine wcet(ai);
    auto w = wcet.costOf(0);
    pc.cost.watchdog = opts.watchdog_max_instrs;
    if (w) {
        pc.cost.bounded = true;
        pc.cost.instr_bound = w->instrs;
        pc.cost.cycle_bound = w->cycles;
        pc.cost.gf_cycle_bound = w->gf_cycles;
        pc.cost.within_watchdog = w->instrs <= opts.watchdog_max_instrs;
        if (!pc.cost.within_watchdog)
            pc.cost.reason = "proven instruction bound exceeds the "
                             "watchdog";
    } else {
        pc.cost.bounded = false;
        pc.cost.reason = wcet.reason().empty() ? "analysis declined"
                                               : wcet.reason();
        // Sound fallback: the watchdog retires at most `watchdog`
        // instructions before trapping, each at most kMemCycles cycles.
        pc.cost.instr_bound = opts.watchdog_max_instrs;
        pc.cost.cycle_bound = satMul(opts.watchdog_max_instrs, kMemCycles);
        pc.cost.gf_cycle_bound = pc.cost.cycle_bound;
        pc.cost.within_watchdog = false;
    }
    {
        const EnergyModel nom = EnergyModel::nominal();
        const EnergyModel low = EnergyModel::scaled07v();
        pc.cost.energy_nominal_pj =
            nom.shellPjPerCycle() * static_cast<double>(pc.cost.cycle_bound) +
            nom.gfauPjPerCycle() *
                static_cast<double>(pc.cost.gf_cycle_bound);
        pc.cost.energy_07v_pj =
            low.shellPjPerCycle() * static_cast<double>(pc.cost.cycle_bound) +
            low.gfauPjPerCycle() *
                static_cast<double>(pc.cost.gf_cycle_bound);
    }

    // ------------------------------------------------------------------
    // Aggregate verdicts + caveats.
    bool all_trap_free = true;
    bool all_jit_safe = true;
    for (const auto &b : pc.blocks) {
        if (!b.reachable)
            continue;
        all_trap_free = all_trap_free && b.trapFree();
        all_jit_safe = all_jit_safe && b.jitSafe();
        if (!b.trapFree() || !b.jitSafe())
            for (const auto &o : b.obstacles)
                pc.caveats.push_back(o);
    }
    bool configs_ok = true;
    for (const auto &c : pc.configs) {
        configs_ok = configs_ok && c.ok();
        if (!c.ok())
            pc.caveats.push_back(std::string("gfcfg config ") +
                                 configVerdictName(c.verdict) + ": " +
                                 c.message);
    }
    if (!pc.cost.within_watchdog)
        pc.caveats.push_back("watchdog may fire: " + pc.cost.reason);

    pc.trap_free = all_trap_free && pc.cost.within_watchdog;
    pc.jit_safe = pc.trap_free && all_jit_safe && configs_ok;
    return pc;
}

} // namespace gfp
