#include "analysis/cfg.h"

#include <algorithm>
#include <deque>

#include "common/strutil.h"
#include "isa/encoding.h"

namespace gfp {

uint16_t
regUses(const Instr &in)
{
    auto m = [](unsigned r) { return static_cast<uint16_t>(1u << r); };
    switch (in.op) {
      // Three-register ALU / GF.
      case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOrr:
      case Op::kEor: case Op::kLsl: case Op::kLsr: case Op::kAsr:
      case Op::kMul:
      case Op::kGfMuls: case Op::kGfPows: case Op::kGfAdds:
      case Op::kGf32Mul:
        return m(in.rs1) | m(in.rs2);
      case Op::kMov: case Op::kGfInvs: case Op::kGfSqs:
        return m(in.rs1);
      case Op::kCmp:
        return m(in.rs1) | m(in.rs2);
      case Op::kCmpi:
        return m(in.rs1);
      // Immediate ALU reads rs1; movi reads nothing; movt reads rd.
      case Op::kAddi: case Op::kSubi: case Op::kAndi: case Op::kOrri:
      case Op::kEori: case Op::kLsli: case Op::kLsri: case Op::kAsri:
        return m(in.rs1);
      case Op::kMovi:
        return 0;
      case Op::kMovt:
        return m(in.rd);
      // Loads read the address registers; stores also read the data.
      case Op::kLdr: case Op::kLdrb: case Op::kLdrh:
        return m(in.rs1);
      case Op::kLdrr: case Op::kLdrbr: case Op::kLdrhr:
        return m(in.rs1) | m(in.rs2);
      case Op::kStr: case Op::kStrb: case Op::kStrh:
        return m(in.rd) | m(in.rs1);
      case Op::kStrr: case Op::kStrbr: case Op::kStrhr:
        return m(in.rd) | m(in.rs1) | m(in.rs2);
      case Op::kJr:
        return m(in.rs1);
      case Op::kRet:
        return m(kRegLr);
      default:
        return 0;
    }
}

uint16_t
regDefs(const Instr &in)
{
    auto m = [](unsigned r) { return static_cast<uint16_t>(1u << r); };
    switch (in.op) {
      case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOrr:
      case Op::kEor: case Op::kLsl: case Op::kLsr: case Op::kAsr:
      case Op::kMul: case Op::kMov:
      case Op::kAddi: case Op::kSubi: case Op::kAndi: case Op::kOrri:
      case Op::kEori: case Op::kLsli: case Op::kLsri: case Op::kAsri:
      case Op::kMovi: case Op::kMovt:
      case Op::kLdr: case Op::kLdrb: case Op::kLdrh:
      case Op::kLdrr: case Op::kLdrbr: case Op::kLdrhr:
      case Op::kGfMuls: case Op::kGfInvs: case Op::kGfSqs:
      case Op::kGfPows: case Op::kGfAdds:
        return m(in.rd);
      case Op::kGf32Mul:
        return m(in.rd) | m(in.rd2);
      case Op::kBl:
        return m(kRegLr);
      default:
        return 0;
    }
}

bool
usesReductionMatrix(Op op)
{
    switch (op) {
      case Op::kGfMuls:
      case Op::kGfInvs:
      case Op::kGfSqs:
      case Op::kGfPows:
        return true;
      default:
        return false;
    }
}

ControlFlowGraph::ControlFlowGraph(const Program &prog) : prog_(&prog)
{
    decodeAll();
    markStructure();
    computeMayReturn();
    computeReachable();
}

void
ControlFlowGraph::decodeAll()
{
    nodes_.resize(prog_->code.size());
    for (uint32_t i = 0; i < nodes_.size(); ++i) {
        CfgNode &n = nodes_[i];
        n.pc_ = i * 4;
        n.valid = tryDecode(prog_->code[i], n.in);
    }
    for (const auto &[name, addr] : prog_->symbols) {
        if (addr % 4 == 0 && addr / 4 < nodes_.size())
            labeled_.push_back(addr / 4);
    }
    std::sort(labeled_.begin(), labeled_.end());
    labeled_.erase(std::unique(labeled_.begin(), labeled_.end()),
                   labeled_.end());
}

void
ControlFlowGraph::markStructure()
{
    const uint32_t n = static_cast<uint32_t>(nodes_.size());
    for (uint32_t i = 0; i < n; ++i) {
        CfgNode &nd = nodes_[i];
        if (!nd.valid)
            continue;
        const Op op = nd.in.op;
        if (isPcRelBranch(op)) {
            // Branch targets are word offsets relative to the next
            // instruction.
            int64_t t = int64_t{i} + 1 + nd.in.imm;
            nd.has_target = true;
            nd.target_in_code = t >= 0 && t < int64_t{n};
            nd.target = nd.target_in_code ? static_cast<uint32_t>(t) : 0;
            nd.is_call = op == Op::kBl;
            // Everything but the unconditional `b` can fall through —
            // conditionals when untaken, `bl` when the callee returns.
            nd.falls_through = op != Op::kB;
            if (nd.is_call && nd.target_in_code) {
                call_sites_.push_back(i);
                entries_.push_back(nd.target);
            }
        } else if (op == Op::kJr) {
            if (nd.in.rs1 == kRegLr)
                nd.is_return = true;
            else
                nd.is_indirect = true;
        } else if (op == Op::kRet) {
            nd.is_return = true;
        } else if (op == Op::kHalt) {
            nd.is_halt = true;
        } else {
            nd.falls_through = true;
        }
    }
    std::sort(entries_.begin(), entries_.end());
    entries_.erase(std::unique(entries_.begin(), entries_.end()),
                   entries_.end());

    // Basic-block leaders: entry, every branch/call target, every
    // labeled instruction, and every instruction after a control
    // transfer.
    auto lead = [&](uint32_t idx) {
        if (idx < n)
            nodes_[idx].leader = true;
    };
    lead(0);
    for (uint32_t i : labeled_)
        lead(i);
    for (uint32_t i = 0; i < n; ++i) {
        const CfgNode &nd = nodes_[i];
        if (!nd.valid) {
            lead(i + 1);
            continue;
        }
        if (nd.has_target && nd.target_in_code)
            lead(nd.target);
        if (nd.has_target || nd.is_return || nd.is_indirect || nd.is_halt)
            lead(i + 1);
    }
}

std::vector<uint32_t>
ControlFlowGraph::intraSucc(uint32_t idx) const
{
    std::vector<uint32_t> out;
    const uint32_t n = static_cast<uint32_t>(nodes_.size());
    const CfgNode &nd = nodes_[idx];
    if (!nd.valid)
        return out;
    if (nd.is_indirect) {
        // Refined target set when the analyzer proved one, otherwise
        // the over-approximation: any labeled instruction.
        auto it = indirect_targets_.find(idx);
        out = it != indirect_targets_.end() ? it->second : labeled_;
        return out;
    }
    if (nd.is_return || nd.is_halt)
        return out;
    if (nd.is_call) {
        // Call summarized as an edge to the return site, taken when the
        // callee can return.  An out-of-code target is a separate lint
        // finding; assume it returns so diagnostics don't cascade.
        bool returns = !nd.target_in_code || may_return_[nd.target];
        if (returns && idx + 1 < n)
            out.push_back(idx + 1);
        return out;
    }
    if (nd.has_target && nd.target_in_code)
        out.push_back(nd.target);
    if (nd.falls_through && idx + 1 < n)
        out.push_back(idx + 1);
    return out;
}

void
ControlFlowGraph::refineIndirectTargets(uint32_t idx,
                                        std::vector<uint32_t> targets)
{
    if (idx >= nodes_.size() || !nodes_[idx].is_indirect)
        return;
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    for (uint32_t t : targets) {
        if (t < nodes_.size())
            nodes_[t].leader = true;
    }
    indirect_targets_[idx] = std::move(targets);
    // The refined edge set can only shrink mayReturn/reachable, but
    // both feed intraSucc (call return-site edges), so recompute from
    // scratch rather than patching.
    computeMayReturn();
    computeReachable();
}

void
ControlFlowGraph::computeMayReturn()
{
    // "A walk started at this node reaches a ret/jr-lr."  The relation
    // feeds back into intraSucc (a call's return-site edge exists only
    // if the callee may return), so iterate to the monotone fixpoint.
    may_return_.assign(nodes_.size(), false);
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t i = static_cast<uint32_t>(nodes_.size()); i-- > 0;) {
            if (may_return_[i] || !nodes_[i].valid)
                continue;
            bool v = nodes_[i].is_return;
            if (!v) {
                for (uint32_t s : intraSucc(i)) {
                    if (may_return_[s]) {
                        v = true;
                        break;
                    }
                }
            }
            if (v) {
                may_return_[i] = true;
                changed = true;
            }
        }
    }
}

bool
ControlFlowGraph::mayReturn(uint32_t entry) const
{
    return entry < may_return_.size() && may_return_[entry];
}

std::vector<uint32_t>
ControlFlowGraph::functionNodes(uint32_t entry) const
{
    std::vector<uint32_t> out;
    if (entry >= nodes_.size())
        return out;
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<uint32_t> work{entry};
    seen[entry] = true;
    while (!work.empty()) {
        uint32_t i = work.front();
        work.pop_front();
        out.push_back(i);
        for (uint32_t s : intraSucc(i)) {
            if (!seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
ControlFlowGraph::computeReachable()
{
    reachable_.assign(nodes_.size(), false);
    if (nodes_.empty())
        return;
    std::deque<uint32_t> work{0};
    reachable_[0] = true;
    auto push = [&](uint32_t i) {
        if (i < nodes_.size() && !reachable_[i]) {
            reachable_[i] = true;
            work.push_back(i);
        }
    };
    while (!work.empty()) {
        uint32_t i = work.front();
        work.pop_front();
        for (uint32_t s : intraSucc(i))
            push(s);
        // Calls additionally make the callee body reachable.
        const CfgNode &nd = nodes_[i];
        if (nd.is_call && nd.target_in_code)
            push(nd.target);
    }
}

std::vector<std::vector<uint32_t>>
ControlFlowGraph::cyclicSccs() const
{
    // Iterative Tarjan over the intraprocedural edges, reachable nodes
    // only.
    const uint32_t n = static_cast<uint32_t>(nodes_.size());
    std::vector<int64_t> index(n, -1), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<uint32_t> stack;
    std::vector<std::vector<uint32_t>> sccs;
    int64_t counter = 0;

    struct Frame
    {
        uint32_t node;
        std::vector<uint32_t> succ;
        size_t next = 0;
    };

    for (uint32_t root = 0; root < n; ++root) {
        if (index[root] >= 0 || !reachable_[root])
            continue;
        std::vector<Frame> frames;
        frames.push_back({root, intraSucc(root), 0});
        index[root] = low[root] = counter++;
        stack.push_back(root);
        on_stack[root] = true;
        while (!frames.empty()) {
            Frame &f = frames.back();
            if (f.next < f.succ.size()) {
                uint32_t w = f.succ[f.next++];
                if (!reachable_[w])
                    continue;
                if (index[w] < 0) {
                    index[w] = low[w] = counter++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    frames.push_back({w, intraSucc(w), 0});
                } else if (on_stack[w]) {
                    low[f.node] = std::min(low[f.node], index[w]);
                }
            } else {
                uint32_t v = f.node;
                if (low[v] == index[v]) {
                    std::vector<uint32_t> scc;
                    uint32_t w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[w] = false;
                        scc.push_back(w);
                    } while (w != v);
                    bool cyclic = scc.size() > 1;
                    if (!cyclic) {
                        for (uint32_t s : intraSucc(v)) {
                            if (s == v) {
                                cyclic = true;
                                break;
                            }
                        }
                    }
                    if (cyclic) {
                        std::sort(scc.begin(), scc.end());
                        sccs.push_back(std::move(scc));
                    }
                }
                frames.pop_back();
                if (!frames.empty()) {
                    Frame &p = frames.back();
                    low[p.node] = std::min(low[p.node], low[v]);
                }
            }
        }
    }
    return sccs;
}

std::string
ControlFlowGraph::describeNode(uint32_t idx) const
{
    const uint32_t pc = idx * 4;
    std::string best;
    uint32_t best_addr = 0;
    for (const auto &[name, addr] : prog_->symbols) {
        if (addr <= pc && addr / 4 < nodes_.size() &&
            (best.empty() || addr > best_addr)) {
            best = name;
            best_addr = addr;
        }
    }
    if (best.empty())
        return strprintf("pc 0x%x", pc);
    if (best_addr == pc)
        return best;
    return strprintf("%s+0x%x", best.c_str(), pc - best_addr);
}

} // namespace gfp
