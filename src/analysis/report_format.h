/**
 * @file
 * Machine-readable renderings of gfp-lint's output: a compact JSON
 * schema for scripting, and SARIF 2.1.0 for code-scanning UIs and CI
 * annotation.  One report covers a whole lint run (several programs),
 * each with its lint findings and, when certification ran, its
 * ProgramCertificate (analysis/certify.h).
 *
 * SARIF mapping:
 *   - every lint Finding becomes a result with ruleId = lintRuleName()
 *     and level error/warning, located at its source line (via the
 *     assembler's debug info) in the originating file;
 *   - certificate obstacles become "trap-freedom" / "jit-safety"
 *     warnings anchored at the block's first word;
 *   - an unbounded WCET becomes a "wcet-unbounded" warning, a bounded
 *     one a "wcet-bound" note carrying the cycle/energy numbers;
 *   - refuted gfcfg configurations become "config-certificate"
 *     warnings.
 */

#ifndef GFP_ANALYSIS_REPORT_FORMAT_H
#define GFP_ANALYSIS_REPORT_FORMAT_H

#include <string>
#include <vector>

#include "analysis/certify.h"
#include "analysis/lint.h"
#include "common/trace_event.h" // jsonEscape

namespace gfp {

enum class ReportFormat : uint8_t { kHuman, kJson, kSarif };

/** Parse "human" / "json" / "sarif"; false on anything else. */
bool parseReportFormat(const std::string &name, ReportFormat &out);

/** One linted (and possibly certified) program in a run. */
struct ProgramReport
{
    std::string name;  ///< display name ("kernel:aes_ecb", file path...)
    std::string file;  ///< originating source path; may be empty
    LintReport lint;
    bool certified = false;      ///< cert below is populated
    ProgramCertificate cert;
    const Program *prog = nullptr; ///< for word -> line mapping; optional

    /** Location URI for SARIF: the file when known, else the name. */
    const std::string &uri() const { return file.empty() ? name : file; }
};

/** The whole run as compact JSON (schema in docs/ANALYSIS.md). */
std::string renderJson(const std::vector<ProgramReport> &reports);

/** The whole run as a SARIF 2.1.0 log. */
std::string renderSarif(const std::vector<ProgramReport> &reports);

} // namespace gfp

#endif // GFP_ANALYSIS_REPORT_FORMAT_H
