/**
 * @file
 * Guest-program static analyzer ("gfp-lint" pass 1).
 *
 * Runs a set of dataflow lints over the control-flow graph of an
 * assembled Program, catching the guest failures the trap architecture
 * (sim/trap.h) only reports at runtime — before a single simulated
 * cycle:
 *
 *   kUndecodable        reachable word that does not decode
 *   kBadBranchTarget    direct branch/call target outside the code
 *   kFallOffEnd         reachable path falls past the end of the code
 *                       section (missing halt)
 *   kUseBeforeDef       register read while possibly never written
 *                       (entry state: r0..r3 arguments + sp)
 *   kGfBeforeConfig     reduction-dependent GF instruction reachable
 *                       before any gfcfg (silently computes in the
 *                       power-on default field)
 *   kUnreachable        code no path from the entry reaches
 *   kOobAddress         constant-propagated load/store address outside
 *                       the memory array (would trap OutOfRangeAccess)
 *   kAddrBeyondImage    constant address past the program image but
 *                       inside memory (legal, usually a bug)
 *   kStoreToCode        constant-address store into the code section
 *                       (self-modifying code)
 *   kInfiniteLoop       loop with no exit edge, or a branch-to-self
 *                       with no flag update in between
 *   kMaybeInfiniteLoop  loop whose only exits are conditional branches
 *                       but whose body never updates the flags
 *   kCallNoReturn       bl to a function from which no ret/jr lr is
 *                       reachable
 *   kLrClobbered        called function may return with lr overwritten
 *                       (nested bl without save, or lr used as scratch)
 *   kConfigBlobOob      gfcfg blob address outside memory
 *   kBadConfigBlob      initialized gfcfg blob carries an invalid field
 *                       width (would trap GfConfigCorrupt)
 *   kSuspectConfigBlob  blob loads but its P matrix matches no
 *                       irreducible polynomial and is not the circulant
 *                       ring configuration (silent wrong-field class)
 *
 * Findings carry a severity and the 1-based source line (via the
 * assembler's Program::line_of_word debug info).  The analysis is
 * purely static — it never constructs a simulator.
 */

#ifndef GFP_ANALYSIS_LINT_H
#define GFP_ANALYSIS_LINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"

namespace gfp {

enum class LintRule : uint8_t {
    kUndecodable,
    kBadBranchTarget,
    kFallOffEnd,
    kUseBeforeDef,
    kGfBeforeConfig,
    kUnreachable,
    kOobAddress,
    kAddrBeyondImage,
    kStoreToCode,
    kInfiniteLoop,
    kMaybeInfiniteLoop,
    kCallNoReturn,
    kLrClobbered,
    kConfigBlobOob,
    kBadConfigBlob,
    kSuspectConfigBlob,
};

/** Stable kebab-case name for a rule ("use-before-def", ...). */
const char *lintRuleName(LintRule rule);

enum class Severity : uint8_t { kWarning, kError };

struct Finding
{
    LintRule rule;
    Severity severity;
    uint32_t pc = 0;   ///< byte address of the offending instruction
    int line = 0;      ///< 1-based source line; 0 when unknown
    std::string message;

    /** "line 12: error: ... [use-before-def]" (pc-based when no line). */
    std::string describe() const;
};

struct LintOptions
{
    /** Memory array size the program will run against (address-range
     *  checks); the Machine default. */
    size_t mem_bytes = 256 * 1024;

    /** Treat r0..r3 as defined at entry (the Machine::setArgs calling
     *  convention).  sp is always defined (reset() seeds it). */
    bool entry_args_defined = true;

    /** Validate gfcfg blob contents against the algebraic verifier. */
    bool check_config_blobs = true;

    /** Stop after this many findings (0 = unlimited). */
    size_t max_findings = 200;
};

struct LintReport
{
    std::vector<Finding> findings;

    unsigned errorCount() const;
    unsigned warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }
    bool clean() const { return findings.empty(); }

    /** "3 errors, 1 warning" */
    std::string summary() const;
};

/** Run every lint over @p prog. */
LintReport lintProgram(const Program &prog, const LintOptions &opts = {});

} // namespace gfp

#endif // GFP_ANALYSIS_LINT_H
