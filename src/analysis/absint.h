/**
 * @file
 * Abstract interpretation over an assembled GFP Program — the value
 * analysis underneath the certificate emitters (analysis/certify.h).
 *
 * The domain is a reduced product per register:
 *
 *   - an unsigned interval [lo, hi] (no wraparound representation; an
 *     operation whose result may straddle 2^32 goes to top), and
 *   - known-bits: two masks recording the bits proven 0 and proven 1
 *     (tri-state per bit), which is what address-alignment and
 *     field-mask reasoning want.
 *
 * The fixpoint runs over the instruction-granularity CFG (cfg.h) with
 * the same interprocedural shape as the linter: calls propagate the
 * caller state into the callee entry and a may-def-clobbered state to
 * the return site.  Widening (with a small threshold ladder) fires at
 * retreating-edge targets and function entries after a short delay;
 * two narrowing sweeps follow convergence.  Conditional branches refine
 * the compared register on both out-edges using the tracked cmp/cmpi
 * operands, which is also how constant branch directions prune
 * infeasible edges.
 *
 * On top of the fixpoint:
 *
 *   - loop-bound inference: natural loops (dominator back edges), a
 *     single-definition affine induction variable (addi/subi with
 *     rd == rs1), and an exit guard whose cmp dominates every back
 *     edge yield a proven bound on head visits.  Proven iteration
 *     ranges are fed back as head-state clamps and the fixpoint rerun,
 *     which is what rescues down-counted loops from widening.
 *   - indirect-jump refinement: a `jr rX` whose register is proven
 *     constant, or whose block-local defining load reads a
 *     store-untouched jump table at proven addresses, gets precise CFG
 *     edges via ControlFlowGraph::refineIndirectTargets.
 *
 * Value-tracked memory is limited to word-aligned cells at constant
 * addresses (AbsState::cell), kept consistent across calls by
 * assume-guarantee store/return summaries; all other loads are typed
 * top.  Loop bounds additionally recognize a memory-held induction
 * variable (load / step / store-back / compare in a straight-line
 * window) and derive affine travel clamps for registers stepped once
 * per iteration of a bounded loop.
 *
 * Soundness caveats (mirrored in docs/ANALYSIS.md): relational facts
 * between registers are not tracked (e.g. r1 <= r2 from a guard), lr
 * save/restore through memory is trusted (the linter's lr-integrity
 * pass guards it), and self-modifying code voids every certificate —
 * certify.h declines when a store may hit the code section.
 */

#ifndef GFP_ANALYSIS_ABSINT_H
#define GFP_ANALYSIS_ABSINT_H

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "isa/isa.h"
#include "isa/program.h"

namespace gfp {

/** Unsigned value interval [lo, hi]; lo <= hi always holds. */
struct Interval
{
    uint32_t lo = 0;
    uint32_t hi = 0xffffffffu;

    static Interval top() { return {}; }
    static Interval constant(uint32_t v) { return {v, v}; }
    static Interval range(uint32_t lo, uint32_t hi) { return {lo, hi}; }

    bool isTop() const { return lo == 0 && hi == 0xffffffffu; }
    bool isConst() const { return lo == hi; }
    bool contains(uint32_t v) const { return lo <= v && v <= hi; }
    uint64_t width() const { return uint64_t{hi} - lo + 1; }
    bool operator==(const Interval &o) const = default;

    std::string describe() const;
};

/** Tri-state bit knowledge: bits proven 0 and bits proven 1. */
struct KnownBits
{
    uint32_t zeros = 0;
    uint32_t ones = 0;

    uint32_t known() const { return zeros | ones; }
    bool matches(uint32_t v) const
    {
        return (v & zeros) == 0 && (v & ones) == ones;
    }
    bool operator==(const KnownBits &o) const = default;
};

/** Reduced product of Interval and KnownBits. */
struct AbsValue
{
    Interval iv;
    KnownBits kb;

    static AbsValue top() { return {}; }
    static AbsValue constant(uint32_t v);
    static AbsValue range(uint32_t lo, uint32_t hi);

    bool isConst(uint32_t *v = nullptr) const;
    /** Propagate knowledge between the two component domains. */
    void reduce();

    bool operator==(const AbsValue &o) const = default;
    std::string describe() const;
};

/** Per-program-point abstract state. */
struct AbsState
{
    /** False = bottom: no execution reaches this point (yet). */
    bool reachable = false;

    std::array<AbsValue, kNumRegs> reg{};

    /**
     * Tracked memory cells: word-aligned 4-byte locations at *constant*
     * addresses whose content is known at this point.  Absence means
     * top (unknown); joins intersect the key sets.  This is what makes
     * register spills analyzable — the kernels' helper routines park
     * pointer arguments and loop counters in named save slots, and
     * without cell tracking every reload would be top.  Stores with
     * imprecise addresses and calls (via per-function may-store
     * summaries) invalidate overlapping cells.
     */
    std::map<uint32_t, AbsValue> cell;

    /** Must-analysis: a gfcfg definitely retired on every path here
     *  (so the GFAU is explicitly, not just default-, configured). */
    bool cfg_loaded = false;

    /** Operands of the dominating cmp/cmpi feeding the NZCV flags:
     *  lhs register, and either a constant or a register rhs.
     *  cmp_lhs < 0 when the flags' origin is unknown. */
    int cmp_lhs = -1;
    int cmp_rhs_reg = -1;  ///< >= 0: rhs is a register
    uint32_t cmp_rhs_k = 0; ///< rhs constant when cmp_rhs_reg < 0

    bool operator==(const AbsState &o) const = default;
};

/** One natural loop with its inferred head-visit bound. */
struct LoopBound
{
    uint32_t head = 0;               ///< word index of the loop header
    std::vector<uint32_t> members;   ///< sorted word indices
    std::vector<uint32_t> back_sources; ///< sources of the back edges

    bool bounded = false;
    uint64_t max_head_visits = 0;    ///< valid when bounded

    int iv_reg = -1;                 ///< induction register (when bounded)
    uint32_t guard = ~0u;            ///< word index of the proving guard
    std::string reason;              ///< how bounded / why not

    std::string describe(const ControlFlowGraph &cfg) const;
};

/** A reachable load/store/gfcfg with its proven address range. */
struct MemAccess
{
    uint32_t idx = 0;        ///< word index of the instruction
    Interval addr;           ///< byte address interval (top if unproven)
    unsigned size = 0;       ///< access width in bytes
    bool is_store = false;
    bool proven = false;     ///< addr is better than top
};

struct AbsIntOptions
{
    /** Guest memory size; must match the Machine the program runs on. */
    size_t mem_bytes = 256 * 1024;

    /** Attempt indirect-jump target refinement (and rerun the fixpoint
     *  when it succeeds). */
    bool refine_indirect = true;

    /** Give up enumerating a jump table wider than this many bytes. */
    uint32_t max_table_bytes = 4096;
};

/**
 * The abstract interpreter.  Construction is cheap; run() performs the
 * fixpoint rounds (initial, post-indirect-refinement, post-clamp) and
 * the loop-bound inference.  All queries below are valid after run().
 *
 * The ControlFlowGraph is held by reference and *mutated* when
 * indirect-jump refinement succeeds.
 */
class AbsInterp
{
  public:
    AbsInterp(ControlFlowGraph &cfg, AbsIntOptions opts = {});

    void run();

    const ControlFlowGraph &cfg() const { return cfg_; }
    const AbsIntOptions &options() const { return opts_; }

    /** Abstract state on entry to node @p idx (bottom if unreachable). */
    const AbsState &inState(uint32_t idx) const { return in_[idx]; }

    /** All natural loops found, with bounds where proven. */
    const std::vector<LoopBound> &loops() const { return loops_; }
    const LoopBound *loopWithHead(uint32_t head) const;

    /** Functions (entry word indices) whose body contains a retreating
     *  edge that is not a dominator back edge — irreducible control
     *  flow the loop bounder must decline. */
    const std::set<uint32_t> &irreducibleFunctions() const
    {
        return irreducible_;
    }

    /** Every reachable memory access with its address interval. */
    const std::vector<MemAccess> &memAccesses() const { return mem_; }
    const MemAccess *memAccessAt(uint32_t idx) const;

    /** May any reachable store write into [addr, addr + len)? */
    bool storesMayTouch(uint32_t addr, uint32_t len) const;

    /** True if some reachable store has a completely unproven address
     *  (and therefore may touch anything). */
    bool storesUnbounded() const { return stores_unbounded_; }

    /** Indirect jumps whose target set was proven and installed into
     *  the CFG. */
    unsigned refinedIndirects() const { return refined_indirects_; }

    /** True if every possible target of the (reachable) indirect jump
     *  at @p idx was proven to be a valid, decodable code word. */
    bool indirectTargetsOk(uint32_t idx) const
    {
        return indirect_ok_.count(idx) != 0;
    }

    /** Registers the function entered at @p entry may write (bits
     *  0..15), bit 16 = may execute gfcfg; ~0u for unknown entries. */
    uint32_t mayDef(uint32_t entry) const;

    /** True if the function at @p entry executes gfcfg on every path
     *  to a return. */
    bool mustConfig(uint32_t entry) const;

  private:
    struct EdgeState;  // transfer output, defined in absint.cc

    /** Byte spans a function's stores (transitively, through callees)
     *  may write; `unbounded` when any reachable store is unproven. */
    struct StoreSummary
    {
        bool unbounded = false;
        std::vector<std::pair<uint64_t, uint64_t>> spans; ///< [lo, hi]

        bool coveredBy(const StoreSummary &outer) const;
    };

    void computeSummaries();
    void computeWidenPoints();
    void runOnce();
    void narrow();
    void collectMemAccesses();
    /** Extract per-function may-store summaries from the current
     *  solution's memory accesses (call-graph-transitive). */
    std::map<uint32_t, StoreSummary> extractStoreSummaries() const;
    /** Extract per-function return-value summaries: the join of the
     *  register states at every reachable return of the function. */
    std::map<uint32_t, std::array<AbsValue, kNumRegs>>
    extractRetSummaries() const;
    /** Assume-guarantee iteration: rerun the fixpoint with extracted
     *  store/return summaries until the extraction is covered by the
     *  assumption. */
    void stabilizeStoreSummaries();
    void refineIndirectJumps();
    void inferLoopBounds();
    bool deriveClamps();

    // Transfer: compute the per-successor out states of node idx given
    // its in state.  Implemented in absint.cc.
    template <typename Emit>
    void flowNode(uint32_t idx, const AbsState &in, Emit &&emit) const;

    AbsState entryState() const;

    ControlFlowGraph &cfg_;
    AbsIntOptions opts_;

    std::vector<AbsState> in_;
    std::vector<bool> widen_point_;
    std::vector<LoopBound> loops_;
    std::set<uint32_t> irreducible_;
    std::vector<MemAccess> mem_;
    std::map<uint32_t, unsigned> mem_index_;  ///< idx -> mem_ position
    bool stores_unbounded_ = false;
    unsigned refined_indirects_ = 0;
    std::set<uint32_t> indirect_ok_;

    /// Function summaries, lint-style: must/may defined masks with
    /// bit 16 = gfcfg executed.
    std::map<uint32_t, uint32_t> must_def_;
    std::map<uint32_t, uint32_t> may_def_;

    /// Assumed per-function may-store summaries; a missing entry means
    /// "may store anywhere" (calls then drop every tracked cell).
    std::map<uint32_t, StoreSummary> store_summary_;

    /// Assumed per-function return-value summaries: what each clobbered
    /// register may hold after the call returns.  Missing entry = all
    /// top.  lr is always top at return sites regardless (its concrete
    /// value is the caller-specific return address).
    std::map<uint32_t, std::array<AbsValue, kNumRegs>> ret_summary_;

    /// Proven head-state clamps: head idx -> (reg -> interval), applied
    /// to every state joined into the head.  pending_ holds the clamps
    /// derived by the latest loop-inference pass, before installation.
    std::map<uint32_t, std::map<int, Interval>> clamps_;
    std::map<uint32_t, std::map<int, Interval>> pending_clamps_;
};

} // namespace gfp

#endif // GFP_ANALYSIS_ABSINT_H
