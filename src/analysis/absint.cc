#include "analysis/absint.h"

#include <algorithm>
#include <bit>
#include <deque>

#include "common/strutil.h"

namespace gfp {

// ---------------------------------------------------------------------------
// Interval arithmetic.  All helpers keep the no-wraparound contract: a
// result that could straddle 2^32 collapses to top, except when *every*
// concrete result wraps, in which case the wrapped interval is exact.

namespace {

constexpr uint64_t kTwo32 = uint64_t{1} << 32;

Interval
ivAdd(Interval a, Interval b)
{
    const uint64_t lo = uint64_t{a.lo} + b.lo;
    const uint64_t hi = uint64_t{a.hi} + b.hi;
    if (hi < kTwo32)
        return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
    if (lo >= kTwo32)
        return {static_cast<uint32_t>(lo - kTwo32),
                static_cast<uint32_t>(hi - kTwo32)};
    return Interval::top();
}

Interval
ivSub(Interval a, Interval b)
{
    const int64_t lo = int64_t{a.lo} - b.hi;
    const int64_t hi = int64_t{a.hi} - b.lo;
    if (lo >= 0)
        return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
    if (hi < 0)
        return {static_cast<uint32_t>(lo + int64_t{kTwo32}),
                static_cast<uint32_t>(hi + int64_t{kTwo32})};
    return Interval::top();
}

Interval
ivMul(Interval a, Interval b)
{
    const uint64_t hi = uint64_t{a.hi} * b.hi;
    if (hi >= kTwo32)
        return Interval::top();
    return {a.lo * b.lo, static_cast<uint32_t>(hi)};
}

/// All-ones mask from bit 0 through the highest set bit of m.
uint32_t
smear(uint32_t m)
{
    m |= m >> 1;
    m |= m >> 2;
    m |= m >> 4;
    m |= m >> 8;
    m |= m >> 16;
    return m;
}

Interval
ivAnd(Interval a, Interval b)
{
    return {0, std::min(a.hi, b.hi)};
}

Interval
ivOrr(Interval a, Interval b)
{
    return {std::max(a.lo, b.lo), smear(a.hi | b.hi)};
}

Interval
ivEor(Interval a, Interval b)
{
    return {0, smear(a.hi | b.hi)};
}

// ---------------------------------------------------------------------------
// Known-bits transfer.

KnownBits
kbAnd(KnownBits a, KnownBits b)
{
    return {a.zeros | b.zeros, a.ones & b.ones};
}

KnownBits
kbOrr(KnownBits a, KnownBits b)
{
    return {a.zeros & b.zeros, a.ones | b.ones};
}

KnownBits
kbEor(KnownBits a, KnownBits b)
{
    const uint32_t known = a.known() & b.known();
    const uint32_t v = (a.ones ^ b.ones) & known;
    return {known & ~v, v};
}

/// add/sub/mul: the low bits below the shorter fully-known low run of
/// the operands are exact (no carry flows into bit 0).
template <typename F>
KnownBits
kbLowRun(KnownBits a, KnownBits b, F f)
{
    const unsigned run = std::min(std::countr_one(a.known()),
                                  std::countr_one(b.known()));
    if (run == 0)
        return {};
    const uint32_t mask = run >= 32 ? ~0u : ((1u << run) - 1);
    const uint32_t v = f(a.ones, b.ones) & mask;
    return {mask & ~v, v};
}

KnownBits
kbShl(KnownBits a, unsigned sh)
{
    const uint32_t low = sh ? ((1u << sh) - 1) : 0;
    return {(a.zeros << sh) | low, a.ones << sh};
}

KnownBits
kbShr(KnownBits a, unsigned sh)
{
    const uint32_t high = sh ? ~(~0u >> sh) : 0;
    return {(a.zeros >> sh) | high, a.ones >> sh};
}

} // namespace

std::string
Interval::describe() const
{
    if (isTop())
        return "T";
    if (isConst())
        return strprintf("0x%x", lo);
    return strprintf("[0x%x, 0x%x]", lo, hi);
}

AbsValue
AbsValue::constant(uint32_t v)
{
    AbsValue out;
    out.iv = Interval::constant(v);
    out.kb = {~v, v};
    return out;
}

AbsValue
AbsValue::range(uint32_t lo, uint32_t hi)
{
    AbsValue out;
    out.iv = Interval::range(lo, hi);
    out.reduce();
    return out;
}

bool
AbsValue::isConst(uint32_t *v) const
{
    if (!iv.isConst())
        return false;
    if (v)
        *v = iv.lo;
    return true;
}

void
AbsValue::reduce()
{
    // known-bits -> interval: forced ones give a floor, forced zeros
    // cap the ceiling.
    const uint32_t minv = kb.ones;
    const uint32_t maxv = kb.ones | ~kb.known();
    if (minv > iv.lo)
        iv.lo = minv;
    if (maxv < iv.hi)
        iv.hi = maxv;
    if (iv.lo > iv.hi) {
        // Contradictory knowledge only arises on an infeasible path;
        // fall back to the known-bits hull to stay well-formed.
        iv = {minv, maxv};
    }
    // interval -> known-bits: bits above the ceiling's width are zero,
    // and a constant is fully known.
    if (iv.isConst()) {
        kb = {~iv.lo, iv.lo};
        return;
    }
    const unsigned w = std::bit_width(iv.hi);
    if (w < 32)
        kb.zeros |= ~((1u << w) - 1);
}

std::string
AbsValue::describe() const
{
    std::string s = iv.describe();
    if (!iv.isConst() && kb.known() != 0)
        s += strprintf(" kb(0:%08x 1:%08x)", kb.zeros, kb.ones);
    return s;
}

// ---------------------------------------------------------------------------
// Lattice operations on AbsValue / AbsState.

namespace {

AbsValue
joinValue(const AbsValue &a, const AbsValue &b)
{
    AbsValue out;
    out.iv = {std::min(a.iv.lo, b.iv.lo), std::max(a.iv.hi, b.iv.hi)};
    out.kb = {a.kb.zeros & b.kb.zeros, a.kb.ones & b.kb.ones};
    out.reduce();
    return out;
}

/// Widening thresholds: small-type ceilings plus the memory size, so
/// address-shaped values stabilize at a bound certify() can still use.
AbsValue
widenValue(const AbsValue &old, const AbsValue &next, uint32_t mem_bytes)
{
    AbsValue out = next;
    if (next.iv.lo < old.iv.lo)
        out.iv.lo = 0;
    else
        out.iv.lo = old.iv.lo;
    if (next.iv.hi > old.iv.hi) {
        const uint32_t ladder[] = {0xffu, 0xffffu, mem_bytes - 1,
                                   mem_bytes, 0xffffffu, 0xffffffffu};
        uint32_t pick = 0xffffffffu;
        for (uint32_t t : ladder) {
            if (t >= next.iv.hi) {
                pick = t;
                break;
            }
        }
        out.iv.hi = pick;
    } else {
        out.iv.hi = old.iv.hi;
    }
    out.reduce();
    return out;
}

bool
joinState(AbsState &into, const AbsState &from)
{
    if (!from.reachable)
        return false;
    if (!into.reachable) {
        into = from;
        return true;
    }
    AbsState old = into;
    for (unsigned r = 0; r < kNumRegs; ++r)
        into.reg[r] = joinValue(into.reg[r], from.reg[r]);
    // Cells: key intersection (absent = top), value join; a join that
    // reaches top drops the key to keep the maps small.
    for (auto it = into.cell.begin(); it != into.cell.end();) {
        auto fit = from.cell.find(it->first);
        if (fit == from.cell.end()) {
            it = into.cell.erase(it);
            continue;
        }
        it->second = joinValue(it->second, fit->second);
        if (it->second == AbsValue::top())
            it = into.cell.erase(it);
        else
            ++it;
    }
    into.cfg_loaded = into.cfg_loaded && from.cfg_loaded;
    if (into.cmp_lhs != from.cmp_lhs ||
        into.cmp_rhs_reg != from.cmp_rhs_reg ||
        (into.cmp_rhs_reg < 0 && into.cmp_rhs_k != from.cmp_rhs_k)) {
        into.cmp_lhs = -1;
        into.cmp_rhs_reg = -1;
        into.cmp_rhs_k = 0;
    }
    return !(into == old);
}

// ---------------------------------------------------------------------------
// Branch-condition refinement.

enum class Rel { kEq, kNe, kUlt, kUle, kUgt, kUge, kSlt, kSle, kSgt, kSge };

bool
relOf(Op op, Rel *out)
{
    switch (op) {
      case Op::kBeq: *out = Rel::kEq; return true;
      case Op::kBne: *out = Rel::kNe; return true;
      case Op::kBlt: *out = Rel::kSlt; return true;
      case Op::kBge: *out = Rel::kSge; return true;
      case Op::kBgt: *out = Rel::kSgt; return true;
      case Op::kBle: *out = Rel::kSle; return true;
      case Op::kBlo: *out = Rel::kUlt; return true;
      case Op::kBhs: *out = Rel::kUge; return true;
      case Op::kBhi: *out = Rel::kUgt; return true;
      case Op::kBls: *out = Rel::kUle; return true;
      default: return false;
    }
}

Rel
negateRel(Rel r)
{
    switch (r) {
      case Rel::kEq:  return Rel::kNe;
      case Rel::kNe:  return Rel::kEq;
      case Rel::kUlt: return Rel::kUge;
      case Rel::kUle: return Rel::kUgt;
      case Rel::kUgt: return Rel::kUle;
      case Rel::kUge: return Rel::kUlt;
      case Rel::kSlt: return Rel::kSge;
      case Rel::kSle: return Rel::kSgt;
      case Rel::kSgt: return Rel::kSle;
      case Rel::kSge: return Rel::kSlt;
    }
    return r;
}

/// Relation seen from the right operand: a R b  <=>  b swap(R) a.
Rel
swapRel(Rel r)
{
    switch (r) {
      case Rel::kUlt: return Rel::kUgt;
      case Rel::kUle: return Rel::kUge;
      case Rel::kUgt: return Rel::kUlt;
      case Rel::kUge: return Rel::kUle;
      case Rel::kSlt: return Rel::kSgt;
      case Rel::kSle: return Rel::kSge;
      case Rel::kSgt: return Rel::kSlt;
      case Rel::kSge: return Rel::kSle;
      default: return r; // eq/ne are symmetric
    }
}

/// Trim a single value out of an interval edge; false = empty.
bool
trimNe(Interval &a, uint32_t k)
{
    if (a.isConst())
        return a.lo != k;
    if (a.lo == k)
        ++a.lo;
    else if (a.hi == k)
        --a.hi;
    return true;
}

/// Refine both operand intervals under "a rel b"; false = infeasible.
/// Signed relations only refine when both operands are provably in
/// [0, 2^31), where signed and unsigned order agree.
bool
refinePair(Interval &a, Interval &b, Rel rel)
{
    switch (rel) {
      case Rel::kSlt: case Rel::kSle: case Rel::kSgt: case Rel::kSge:
        if (a.hi >= 0x80000000u || b.hi >= 0x80000000u)
            return true; // can't reason; no refinement, still feasible
        switch (rel) {
          case Rel::kSlt: rel = Rel::kUlt; break;
          case Rel::kSle: rel = Rel::kUle; break;
          case Rel::kSgt: rel = Rel::kUgt; break;
          default:        rel = Rel::kUge; break;
        }
        break;
      default:
        break;
    }
    switch (rel) {
      case Rel::kEq: {
        const uint32_t lo = std::max(a.lo, b.lo);
        const uint32_t hi = std::min(a.hi, b.hi);
        if (lo > hi)
            return false;
        a = b = {lo, hi};
        return true;
      }
      case Rel::kNe:
        if (b.isConst() && !trimNe(a, b.lo))
            return false;
        if (a.isConst() && !trimNe(b, a.lo))
            return false;
        return true;
      case Rel::kUlt:
        if (b.hi == 0)
            return false;
        a.hi = std::min(a.hi, b.hi - 1);
        if (a.lo == 0xffffffffu)
            return false;
        b.lo = std::max(b.lo, a.lo + 1);
        return a.lo <= a.hi && b.lo <= b.hi;
      case Rel::kUle:
        a.hi = std::min(a.hi, b.hi);
        b.lo = std::max(b.lo, a.lo);
        return a.lo <= a.hi && b.lo <= b.hi;
      case Rel::kUgt:
        return refinePair(b, a, Rel::kUlt);
      case Rel::kUge:
        return refinePair(b, a, Rel::kUle);
      default:
        return true;
    }
}

/// Apply the cmp-tracked relation to @p st; false = edge infeasible.
bool
applyRel(AbsState &st, Rel rel)
{
    if (st.cmp_lhs < 0)
        return true;
    Interval a = st.reg[st.cmp_lhs].iv;
    Interval b = st.cmp_rhs_reg >= 0 ? st.reg[st.cmp_rhs_reg].iv
                                     : Interval::constant(st.cmp_rhs_k);
    if (!refinePair(a, b, rel))
        return false;
    st.reg[st.cmp_lhs].iv = a;
    st.reg[st.cmp_lhs].reduce();
    if (st.cmp_rhs_reg >= 0) {
        st.reg[st.cmp_rhs_reg].iv = b;
        st.reg[st.cmp_rhs_reg].reduce();
    }
    return true;
}

/// Dataflow masks, lint-compatible: bit 16 = "gfcfg executed".
constexpr uint32_t kCfgBit = 1u << 16;
constexpr uint32_t kAllDefined = (1u << 17) - 1;

uint32_t
defs32(const CfgNode &nd)
{
    uint32_t d = regDefs(nd.in);
    if (nd.in.op == Op::kGfCfg)
        d |= kCfgBit;
    return d;
}

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/// Cap on tracked memory cells per state, to bound join/copy cost.
constexpr size_t kMaxCells = 64;

/// Drop every tracked 4-byte cell overlapping the byte span [lo, hi].
void
invalidateCells(std::map<uint32_t, AbsValue> &cells, uint64_t lo, uint64_t hi)
{
    auto it = cells.lower_bound(lo >= 3 ? static_cast<uint32_t>(lo - 3) : 0);
    while (it != cells.end() && it->first <= hi)
        it = cells.erase(it);
}

} // namespace

// ---------------------------------------------------------------------------
// Transfer function.

template <typename Emit>
void
AbsInterp::flowNode(uint32_t idx, const AbsState &st, Emit &&emit) const
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    const CfgNode &nd = cfg_.node(idx);
    if (!nd.valid || !st.reachable)
        return;
    const Instr &in = nd.in;
    const Op op = in.op;

    AbsState out = st;
    auto &reg = out.reg;
    const uint32_t immu = static_cast<uint32_t>(in.imm);

    auto binop = [&](Interval (*fi)(Interval, Interval),
                     KnownBits (*fk)(KnownBits, KnownBits)) {
        AbsValue v;
        v.iv = fi(st.reg[in.rs1].iv, st.reg[in.rs2].iv);
        v.kb = fk ? fk(st.reg[in.rs1].kb, st.reg[in.rs2].kb) : KnownBits{};
        v.reduce();
        reg[in.rd] = v;
    };
    auto immval = AbsValue::constant(immu);
    auto immop = [&](Interval (*fi)(Interval, Interval),
                     KnownBits (*fk)(KnownBits, KnownBits)) {
        AbsValue v;
        v.iv = fi(st.reg[in.rs1].iv, immval.iv);
        v.kb = fk ? fk(st.reg[in.rs1].kb, immval.kb) : KnownBits{};
        v.reduce();
        reg[in.rd] = v;
    };
    auto kbAddWrap = [](KnownBits a, KnownBits b) {
        return kbLowRun(a, b, [](uint32_t x, uint32_t y) { return x + y; });
    };
    auto kbSubWrap = [](KnownBits a, KnownBits b) {
        return kbLowRun(a, b, [](uint32_t x, uint32_t y) { return x - y; });
    };
    auto kbMulWrap = [](KnownBits a, KnownBits b) {
        return kbLowRun(a, b, [](uint32_t x, uint32_t y) { return x * y; });
    };
    auto shiftop = [&](bool is_imm, bool left, bool arith) {
        const AbsValue &a = st.reg[in.rs1];
        uint32_t sh = 0;
        bool sh_const = is_imm ? (sh = immu & 31, true)
                               : st.reg[in.rs2].isConst(&sh);
        sh &= 31;
        AbsValue v; // top
        if (sh_const) {
            if (left) {
                v.iv = ivMul(a.iv, Interval::constant(1u << sh));
                v.kb = kbShl(a.kb, sh);
            } else if (!arith || a.iv.hi < 0x80000000u ||
                       (a.kb.zeros & 0x80000000u)) {
                v.iv = {a.iv.lo >> sh, a.iv.hi >> sh};
                v.kb = kbShr(a.kb, sh);
            }
        } else if (!left && (!arith || a.iv.hi < 0x80000000u)) {
            v.iv = {0, a.iv.hi}; // right shift by unknown amount shrinks
        }
        v.reduce();
        reg[in.rd] = v;
    };

    switch (op) {
      case Op::kAdd:  binop(ivAdd, nullptr); reg[in.rd].kb =
                          kbAddWrap(st.reg[in.rs1].kb, st.reg[in.rs2].kb);
                      reg[in.rd].reduce(); break;
      case Op::kSub:  binop(ivSub, nullptr); reg[in.rd].kb =
                          kbSubWrap(st.reg[in.rs1].kb, st.reg[in.rs2].kb);
                      reg[in.rd].reduce(); break;
      case Op::kAnd:  binop(ivAnd, kbAnd); break;
      case Op::kOrr:  binop(ivOrr, kbOrr); break;
      case Op::kEor:
      case Op::kGfAdds: // gfadds is architecturally a pure XOR
        binop(ivEor, kbEor);
        break;
      case Op::kMul:  binop(ivMul, nullptr); reg[in.rd].kb =
                          kbMulWrap(st.reg[in.rs1].kb, st.reg[in.rs2].kb);
                      reg[in.rd].reduce(); break;
      case Op::kMov:  reg[in.rd] = st.reg[in.rs1]; break;
      case Op::kLsl:  shiftop(false, true, false); break;
      case Op::kLsr:  shiftop(false, false, false); break;
      case Op::kAsr:  shiftop(false, false, true); break;

      case Op::kAddi: {
        AbsValue v;
        v.iv = ivAdd(st.reg[in.rs1].iv, immval.iv);
        v.kb = kbAddWrap(st.reg[in.rs1].kb, immval.kb);
        v.reduce();
        reg[in.rd] = v;
        break;
      }
      case Op::kSubi: {
        AbsValue v;
        v.iv = ivSub(st.reg[in.rs1].iv, immval.iv);
        v.kb = kbSubWrap(st.reg[in.rs1].kb, immval.kb);
        v.reduce();
        reg[in.rd] = v;
        break;
      }
      case Op::kAndi: immop(ivAnd, kbAnd); break;
      case Op::kOrri: immop(ivOrr, kbOrr); break;
      case Op::kEori: immop(ivEor, kbEor); break;
      case Op::kLsli: shiftop(true, true, false); break;
      case Op::kLsri: shiftop(true, false, false); break;
      case Op::kAsri: shiftop(true, false, true); break;
      case Op::kMovi: reg[in.rd] = AbsValue::constant(immu & 0xffff); break;
      case Op::kMovt: {
        const AbsValue &old = st.reg[in.rd];
        AbsValue v;
        const uint32_t hi16 = (immu & 0xffff) << 16;
        v.kb.ones = (old.kb.ones & 0xffff) | hi16;
        v.kb.zeros = (old.kb.zeros & 0xffff) | (~hi16 & 0xffff0000u);
        if (old.iv.hi <= 0xffff)
            v.iv = {old.iv.lo + hi16, old.iv.hi + hi16};
        v.reduce();
        reg[in.rd] = v;
        break;
      }

      case Op::kCmp:
        out.cmp_lhs = in.rs1;
        out.cmp_rhs_reg = in.rs2;
        out.cmp_rhs_k = 0;
        break;
      case Op::kCmpi:
        out.cmp_lhs = in.rs1;
        out.cmp_rhs_reg = -1;
        out.cmp_rhs_k = immu;
        break;

      case Op::kLdrb: case Op::kLdrbr:
        reg[in.rd] = AbsValue::range(0, 0xff);
        break;
      case Op::kLdrh: case Op::kLdrhr:
        reg[in.rd] = AbsValue::range(0, 0xffff);
        break;
      case Op::kLdr: case Op::kLdrr: {
        reg[in.rd] = AbsValue::top();
        const Interval a = op == Op::kLdrr
            ? ivAdd(st.reg[in.rs1].iv, st.reg[in.rs2].iv)
            : ivAdd(st.reg[in.rs1].iv, immval.iv);
        if (a.isConst() && (a.lo & 3u) == 0) {
            auto it = st.cell.find(a.lo);
            if (it != st.cell.end())
                reg[in.rd] = it->second;
        }
        break;
      }

      case Op::kStr: case Op::kStrr:
      case Op::kStrh: case Op::kStrhr:
      case Op::kStrb: case Op::kStrbr: {
        const bool reg_form =
            op == Op::kStrr || op == Op::kStrhr || op == Op::kStrbr;
        const unsigned size = (op == Op::kStr || op == Op::kStrr) ? 4
                            : (op == Op::kStrh || op == Op::kStrhr) ? 2
                                                                    : 1;
        const Interval a = reg_form
            ? ivAdd(st.reg[in.rs1].iv, st.reg[in.rs2].iv)
            : ivAdd(st.reg[in.rs1].iv, immval.iv);
        if (a.isTop()) {
            out.cell.clear();
        } else {
            invalidateCells(out.cell, a.lo, uint64_t{a.hi} + size - 1);
            if (size == 4 && a.isConst() && (a.lo & 3u) == 0 &&
                out.cell.size() < kMaxCells)
                out.cell[a.lo] = st.reg[in.rd];
        }
        break;
      }

      case Op::kGfCfg:
        out.cfg_loaded = true;
        break;

      default:
        // Stores and remaining GF ops: clobber whatever they define.
        for (unsigned r = 0; r < kNumRegs; ++r)
            if (regDefs(in) & (1u << r))
                reg[r] = AbsValue::top();
        break;
    }

    // A redefinition of a cmp operand makes the flags' origin stale for
    // refinement purposes.
    const uint32_t d = defs32(nd);
    if (out.cmp_lhs >= 0 && op != Op::kCmp && op != Op::kCmpi) {
        if ((d & (1u << out.cmp_lhs)) ||
            (out.cmp_rhs_reg >= 0 && (d & (1u << out.cmp_rhs_reg)))) {
            out.cmp_lhs = -1;
            out.cmp_rhs_reg = -1;
        }
    }

    // Control flow.
    if (nd.is_call) {
        if (nd.target_in_code) {
            AbsState callee = out;
            callee.reg[kRegLr] = AbsValue::top();
            emit(nd.target, callee);
            if (cfg_.mayReturn(nd.target) && idx + 1 < n) {
                AbsState ret = out;
                auto it = may_def_.find(nd.target);
                const uint32_t clobber =
                    (it != may_def_.end() ? it->second : 0xffffu) |
                    (1u << kRegLr);
                auto rs = ret_summary_.find(nd.target);
                for (unsigned r = 0; r < kNumRegs; ++r)
                    if (clobber & (1u << r))
                        ret.reg[r] =
                            (r != kRegLr && rs != ret_summary_.end())
                                ? rs->second[r]
                                : AbsValue::top();
                auto mt = must_def_.find(nd.target);
                if (mt != must_def_.end() && (mt->second & kCfgBit))
                    ret.cfg_loaded = true;
                auto ss = store_summary_.find(nd.target);
                if (ss == store_summary_.end() || ss->second.unbounded) {
                    ret.cell.clear();
                } else {
                    for (const auto &[slo, shi] : ss->second.spans)
                        invalidateCells(ret.cell, slo, shi);
                }
                ret.cmp_lhs = -1;
                ret.cmp_rhs_reg = -1;
                emit(idx + 1, ret);
            }
        } else if (idx + 1 < n) {
            // Out-of-code callee: a structural lint error; assume it
            // returns having clobbered everything, so diagnostics
            // downstream don't cascade.
            AbsState ret = out;
            for (unsigned r = 0; r < kNumRegs; ++r)
                ret.reg[r] = AbsValue::top();
            ret.cell.clear();
            ret.cmp_lhs = -1;
            ret.cmp_rhs_reg = -1;
            emit(idx + 1, ret);
        }
        return;
    }
    if (nd.is_return || nd.is_halt)
        return;
    if (nd.is_indirect) {
        for (uint32_t s : cfg_.intraSucc(idx))
            emit(s, out);
        return;
    }
    Rel rel;
    if (nd.has_target && relOf(op, &rel)) {
        // Conditional: refine each out-edge by the branch condition;
        // an infeasible refinement prunes the edge.
        if (nd.target_in_code) {
            AbsState taken = out;
            if (applyRel(taken, rel))
                emit(nd.target, taken);
        }
        AbsState fall = out;
        if (applyRel(fall, negateRel(rel)) && idx + 1 < n)
            emit(idx + 1, fall);
        return;
    }
    if (nd.has_target) { // unconditional b
        if (nd.target_in_code)
            emit(nd.target, out);
        return;
    }
    if (nd.falls_through && idx + 1 < n)
        emit(idx + 1, out);
}

// ---------------------------------------------------------------------------
// The interpreter driver.

AbsInterp::AbsInterp(ControlFlowGraph &cfg, AbsIntOptions opts)
    : cfg_(cfg), opts_(opts)
{
}

AbsState
AbsInterp::entryState() const
{
    // Machine/Core reset contract: all registers zero, sp = top of
    // memory - 16, r0..r3 may be overwritten by setArgs -> top.
    AbsState st;
    st.reachable = true;
    for (unsigned r = 0; r < 4; ++r)
        st.reg[r] = AbsValue::top();
    for (unsigned r = 4; r < kNumRegs; ++r)
        st.reg[r] = AbsValue::constant(0);
    st.reg[kRegSp] = AbsValue::constant(
        static_cast<uint32_t>(opts_.mem_bytes) - 16);
    return st;
}

void
AbsInterp::computeSummaries()
{
    // Same shape as the linter's summaries: greatest-fixpoint must-def
    // (optimistic), least-fixpoint may-def, with bit 16 = gfcfg.
    must_def_.clear();
    may_def_.clear();
    for (uint32_t e : cfg_.functionEntries()) {
        must_def_[e] = kAllDefined;
        may_def_[e] = 0;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &[entry, summary] : must_def_) {
            std::vector<uint32_t> nodes = cfg_.functionNodes(entry);
            std::map<uint32_t, uint32_t> out_state;
            for (uint32_t idx : nodes)
                out_state[idx] = kAllDefined;
            std::map<uint32_t, std::vector<uint32_t>> preds;
            for (uint32_t idx : nodes)
                for (uint32_t s : cfg_.intraSucc(idx))
                    if (out_state.count(s))
                        preds[s].push_back(idx);
            bool local = true;
            while (local) {
                local = false;
                for (uint32_t idx : nodes) {
                    uint32_t in = idx == entry ? 0u : kAllDefined;
                    if (idx != entry)
                        for (uint32_t p : preds[idx])
                            in &= out_state[p];
                    const CfgNode &nd = cfg_.node(idx);
                    uint32_t o = in | defs32(nd);
                    if (nd.is_call && nd.target_in_code) {
                        auto it = must_def_.find(nd.target);
                        if (it != must_def_.end())
                            o |= it->second;
                    }
                    if (o != out_state[idx]) {
                        out_state[idx] = o;
                        local = true;
                    }
                }
            }
            uint32_t s = kAllDefined;
            bool any_ret = false;
            for (uint32_t idx : nodes) {
                if (cfg_.node(idx).is_return) {
                    s &= out_state[idx];
                    any_ret = true;
                }
            }
            if (!any_ret)
                s = kAllDefined;
            if (s != summary) {
                summary = s;
                changed = true;
            }

            uint32_t md = may_def_[entry];
            for (uint32_t idx : nodes) {
                const CfgNode &nd = cfg_.node(idx);
                md |= defs32(nd);
                if (nd.is_call && nd.target_in_code) {
                    auto it = may_def_.find(nd.target);
                    if (it != may_def_.end())
                        md |= it->second;
                }
            }
            if (md != may_def_[entry]) {
                may_def_[entry] = md;
                changed = true;
            }
        }
    }
}

uint32_t
AbsInterp::mayDef(uint32_t entry) const
{
    auto it = may_def_.find(entry);
    return it != may_def_.end() ? it->second : ~0u;
}

bool
AbsInterp::mustConfig(uint32_t entry) const
{
    auto it = must_def_.find(entry);
    return it != must_def_.end() && (it->second & kCfgBit);
}

void
AbsInterp::computeWidenPoints()
{
    // Retreating-edge targets of a DFS over the static edge relation
    // (intraprocedural successors + call-entry edges), plus every
    // function entry (recursion cycles bypass intra heads).
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    widen_point_.assign(n, false);
    if (n == 0)
        return;
    for (uint32_t e : cfg_.functionEntries())
        widen_point_[e] = true;

    auto staticSucc = [&](uint32_t i) {
        std::vector<uint32_t> s = cfg_.intraSucc(i);
        const CfgNode &nd = cfg_.node(i);
        if (nd.is_call && nd.target_in_code)
            s.push_back(nd.target);
        return s;
    };

    std::vector<uint8_t> color(n, 0); // 0 white, 1 grey, 2 black
    struct Frame
    {
        uint32_t node;
        std::vector<uint32_t> succ;
        size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({0, staticSucc(0), 0});
    color[0] = 1;
    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.next < f.succ.size()) {
            uint32_t s = f.succ[f.next++];
            if (color[s] == 1)
                widen_point_[s] = true;
            else if (color[s] == 0) {
                color[s] = 1;
                stack.push_back({s, staticSucc(s), 0});
            }
        } else {
            color[f.node] = 2;
            stack.pop_back();
        }
    }
}

void
AbsInterp::runOnce()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    in_.assign(n, AbsState{});
    if (n == 0)
        return;

    constexpr unsigned kWidenDelay = 3;
    std::vector<unsigned> bumps(n, 0);
    std::deque<uint32_t> work;
    std::vector<bool> queued(n, false);

    auto applyClamps = [&](uint32_t idx, AbsState &st) {
        auto it = clamps_.find(idx);
        if (it == clamps_.end())
            return true;
        for (const auto &[r, clamp] : it->second) {
            Interval &iv = st.reg[r].iv;
            iv.lo = std::max(iv.lo, clamp.lo);
            iv.hi = std::min(iv.hi, clamp.hi);
            if (iv.lo > iv.hi)
                return false; // this inflow can't actually happen
            st.reg[r].reduce();
        }
        return true;
    };

    auto push = [&](uint32_t idx, AbsState st) {
        if (!st.reachable || idx >= n)
            return;
        if (!applyClamps(idx, st))
            return;
        bool changed;
        if (!in_[idx].reachable) {
            in_[idx] = std::move(st);
            changed = true;
        } else {
            AbsState joined = in_[idx];
            changed = joinState(joined, st);
            if (changed && widen_point_[idx] && ++bumps[idx] > kWidenDelay) {
                for (unsigned r = 0; r < kNumRegs; ++r)
                    joined.reg[r] = widenValue(
                        in_[idx].reg[r], joined.reg[r],
                        static_cast<uint32_t>(opts_.mem_bytes));
                // Joined cell keys are a subset of the old keys, so the
                // pointwise widen is total over the joined map.
                for (auto it = joined.cell.begin();
                     it != joined.cell.end();) {
                    auto old = in_[idx].cell.find(it->first);
                    it->second = widenValue(
                        old != in_[idx].cell.end() ? old->second
                                                   : AbsValue::top(),
                        it->second,
                        static_cast<uint32_t>(opts_.mem_bytes));
                    if (it->second == AbsValue::top())
                        it = joined.cell.erase(it);
                    else
                        ++it;
                }
            }
            changed = !(joined == in_[idx]);
            if (changed)
                in_[idx] = std::move(joined);
        }
        if (changed && !queued[idx]) {
            queued[idx] = true;
            work.push_back(idx);
        }
    };

    push(0, entryState());
    while (!work.empty()) {
        uint32_t i = work.front();
        work.pop_front();
        queued[i] = false;
        flowNode(i, in_[i],
                 [&](uint32_t s, const AbsState &st) { push(s, st); });
    }

    narrow();
}

void
AbsInterp::narrow()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());

    // Predecessor lists under the *current* solution (infeasible edges
    // pruned by the transfer stay pruned).
    std::vector<std::vector<uint32_t>> preds(n);
    for (uint32_t i = 0; i < n; ++i) {
        if (!in_[i].reachable)
            continue;
        flowNode(i, in_[i], [&](uint32_t s, const AbsState &) {
            if (s < n)
                preds[s].push_back(i);
        });
    }
    for (auto &p : preds) {
        std::sort(p.begin(), p.end());
        p.erase(std::unique(p.begin(), p.end()), p.end());
    }

    // Reverse-postorder over the same edges.
    std::vector<uint32_t> rpo;
    {
        std::vector<uint8_t> seen(n, 0);
        struct Frame
        {
            uint32_t node;
            std::vector<uint32_t> succ;
            size_t next = 0;
        };
        auto succOf = [&](uint32_t i) {
            std::vector<uint32_t> s;
            if (in_[i].reachable)
                flowNode(i, in_[i], [&](uint32_t t, const AbsState &) {
                    s.push_back(t);
                });
            return s;
        };
        std::vector<Frame> stack;
        if (n > 0 && in_[0].reachable) {
            stack.push_back({0, succOf(0), 0});
            seen[0] = 1;
        }
        while (!stack.empty()) {
            Frame &f = stack.back();
            if (f.next < f.succ.size()) {
                uint32_t s = f.succ[f.next++];
                if (s < n && !seen[s]) {
                    seen[s] = 1;
                    stack.push_back({s, succOf(s), 0});
                }
            } else {
                rpo.push_back(f.node);
                stack.pop_back();
            }
        }
        std::reverse(rpo.begin(), rpo.end());
    }

    auto applyClamps = [&](uint32_t idx, AbsState &st) {
        auto it = clamps_.find(idx);
        if (it == clamps_.end())
            return true;
        for (const auto &[r, clamp] : it->second) {
            Interval &iv = st.reg[r].iv;
            iv.lo = std::max(iv.lo, clamp.lo);
            iv.hi = std::min(iv.hi, clamp.hi);
            if (iv.lo > iv.hi)
                return false;
            st.reg[r].reduce();
        }
        return true;
    };

    // Two decreasing sweeps: recompute each in-state as the plain join
    // of its predecessors' contributions (no widening).  Every
    // recomputation of a post-fixpoint stays above the least fixpoint,
    // so this only sharpens.
    for (int pass = 0; pass < 2; ++pass) {
        for (uint32_t idx : rpo) {
            AbsState acc;
            if (idx == 0) {
                acc = entryState();
                if (!applyClamps(idx, acc))
                    acc = AbsState{};
            }
            for (uint32_t p : preds[idx]) {
                if (!in_[p].reachable)
                    continue;
                flowNode(p, in_[p], [&](uint32_t s, const AbsState &st) {
                    if (s != idx)
                        return;
                    AbsState c = st;
                    if (applyClamps(idx, c))
                        joinState(acc, c);
                });
            }
            if (acc.reachable)
                in_[idx] = std::move(acc);
        }
    }
}

void
AbsInterp::collectMemAccesses()
{
    mem_.clear();
    mem_index_.clear();
    stores_unbounded_ = false;
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    const auto &reach = cfg_.reachable();

    for (uint32_t i = 0; i < n; ++i) {
        const CfgNode &nd = cfg_.node(i);
        if (!reach[i] || !nd.valid || !in_[i].reachable)
            continue;
        const Instr &in = nd.in;
        MemAccess a;
        a.idx = i;
        bool reg_form = false;
        switch (in.op) {
          case Op::kLdr:  a.size = 4; break;
          case Op::kStr:  a.size = 4; a.is_store = true; break;
          case Op::kLdrh: a.size = 2; break;
          case Op::kStrh: a.size = 2; a.is_store = true; break;
          case Op::kLdrb: a.size = 1; break;
          case Op::kStrb: a.size = 1; a.is_store = true; break;
          case Op::kLdrr:  a.size = 4; reg_form = true; break;
          case Op::kStrr:  a.size = 4; a.is_store = true; reg_form = true; break;
          case Op::kLdrhr: a.size = 2; reg_form = true; break;
          case Op::kStrhr: a.size = 2; a.is_store = true; reg_form = true; break;
          case Op::kLdrbr: a.size = 1; reg_form = true; break;
          case Op::kStrbr: a.size = 1; a.is_store = true; reg_form = true; break;
          case Op::kGfCfg:
            a.size = 8;
            a.addr = Interval::constant(static_cast<uint32_t>(in.imm));
            a.proven = true;
            mem_index_[i] = static_cast<unsigned>(mem_.size());
            mem_.push_back(a);
            continue;
          default:
            continue;
        }
        const AbsState &st = in_[i];
        a.addr = reg_form
            ? ivAdd(st.reg[in.rs1].iv, st.reg[in.rs2].iv)
            : ivAdd(st.reg[in.rs1].iv,
                    Interval::constant(static_cast<uint32_t>(in.imm)));
        a.proven = !a.addr.isTop();
        if (a.is_store && !a.proven)
            stores_unbounded_ = true;
        mem_index_[i] = static_cast<unsigned>(mem_.size());
        mem_.push_back(a);
    }
}

const MemAccess *
AbsInterp::memAccessAt(uint32_t idx) const
{
    auto it = mem_index_.find(idx);
    return it != mem_index_.end() ? &mem_[it->second] : nullptr;
}

bool
AbsInterp::storesMayTouch(uint32_t addr, uint32_t len) const
{
    if (len == 0)
        return false;
    const uint64_t lo = addr, hi = uint64_t{addr} + len - 1;
    for (const MemAccess &a : mem_) {
        if (!a.is_store)
            continue;
        const uint64_t alo = a.addr.lo;
        const uint64_t ahi = uint64_t{a.addr.hi} + a.size - 1;
        if (alo <= hi && lo <= ahi)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Per-function may-store summaries (assume-guarantee).

bool
AbsInterp::StoreSummary::coveredBy(const StoreSummary &outer) const
{
    if (outer.unbounded)
        return true;
    if (unbounded)
        return false;
    // Both span lists are coalesced (sorted, disjoint, non-adjacent), so
    // containment in a single outer span is an exact check.
    for (const auto &[lo, hi] : spans) {
        bool ok = false;
        for (const auto &[olo, ohi] : outer.spans)
            if (olo <= lo && hi <= ohi) {
                ok = true;
                break;
            }
        if (!ok)
            return false;
    }
    return true;
}

namespace {

/// Sort and merge overlapping-or-adjacent spans; collapse to a single
/// hull past a size cap so summary application stays cheap.
void
coalesceSpans(std::vector<std::pair<uint64_t, uint64_t>> &spans)
{
    if (spans.empty())
        return;
    std::sort(spans.begin(), spans.end());
    std::vector<std::pair<uint64_t, uint64_t>> merged;
    merged.push_back(spans.front());
    for (size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].first <= merged.back().second + 1)
            merged.back().second =
                std::max(merged.back().second, spans[i].second);
        else
            merged.push_back(spans[i]);
    }
    if (merged.size() > 32)
        merged = {{merged.front().first, merged.back().second}};
    spans = std::move(merged);
}

} // namespace

std::map<uint32_t, AbsInterp::StoreSummary>
AbsInterp::extractStoreSummaries() const
{
    std::set<uint32_t> entries{0};
    for (uint32_t e : cfg_.functionEntries())
        entries.insert(e);

    // Own-body spans and the (reachable) call edges per function.
    std::map<uint32_t, StoreSummary> sum;
    std::map<uint32_t, std::set<uint32_t>> callees;
    for (uint32_t e : entries) {
        StoreSummary &s = sum[e];
        for (uint32_t i : cfg_.functionNodes(e)) {
            const CfgNode &nd = cfg_.node(i);
            if (!nd.valid || !in_[i].reachable)
                continue;
            if (nd.is_call) {
                if (nd.target_in_code)
                    callees[e].insert(nd.target);
                else
                    s.unbounded = true; // unknown code: assume anything
                continue;
            }
            const MemAccess *a = memAccessAt(i);
            if (!a || !a->is_store)
                continue;
            if (!a->proven) {
                s.unbounded = true;
                continue;
            }
            s.spans.emplace_back(a->addr.lo,
                                 uint64_t{a->addr.hi} + a->size - 1);
        }
        coalesceSpans(s.spans);
    }

    // Transitive closure over the call graph.  Merging rounds bounded by
    // the longest acyclic call chain (cycles converge the same way).
    for (size_t round = 0; round <= entries.size(); ++round) {
        for (auto &[e, s] : sum) {
            if (s.unbounded)
                continue;
            for (uint32_t c : callees[e]) {
                auto it = sum.find(c);
                if (it == sum.end() || it->second.unbounded) {
                    s.unbounded = true;
                    break;
                }
                s.spans.insert(s.spans.end(), it->second.spans.begin(),
                               it->second.spans.end());
            }
            coalesceSpans(s.spans);
        }
    }
    for (auto &[e, s] : sum)
        if (s.unbounded)
            s.spans.clear();
    return sum;
}

std::map<uint32_t, std::array<AbsValue, kNumRegs>>
AbsInterp::extractRetSummaries() const
{
    std::set<uint32_t> entries{0};
    for (uint32_t e : cfg_.functionEntries())
        entries.insert(e);

    std::map<uint32_t, std::array<AbsValue, kNumRegs>> sum;
    for (uint32_t e : entries) {
        bool any = false;
        std::array<AbsValue, kNumRegs> acc{};
        for (uint32_t i : cfg_.functionNodes(e)) {
            const CfgNode &nd = cfg_.node(i);
            if (!nd.valid || !nd.is_return || !in_[i].reachable)
                continue;
            if (!any) {
                acc = in_[i].reg;
                any = true;
            } else {
                for (unsigned r = 0; r < kNumRegs; ++r)
                    acc[r] = joinValue(acc[r], in_[i].reg[r]);
            }
        }
        if (any)
            sum[e] = acc;
    }
    return sum;
}

void
AbsInterp::stabilizeStoreSummaries()
{
    // Assume-guarantee iteration.  Start *optimistically* — assume every
    // function stores nothing, so calls preserve all tracked cells —
    // because the precise solution is often self-supporting yet
    // unreachable from the pessimistic side: a callee's stores are only
    // proven when a spilled pointer cell survives the calls around it,
    // which in turn needs the callee's summary bounded.  Each round
    // reruns the fixpoint under the assumed summaries and extracts what
    // the resulting solution actually stores; the round is accepted only
    // if the extraction is covered by the assumption (the coinductive
    // soundness condition), otherwise the extraction becomes the next
    // assumption.  Assumptions only grow, so this descends toward the
    // conservative solution and the fallback rerun is the floor.
    store_summary_.clear();
    store_summary_[0] = {};
    for (uint32_t e : cfg_.functionEntries())
        store_summary_[e] = {};
    ret_summary_.clear(); // missing entry = all top: pessimistic start
    for (int round = 0; round < 4; ++round) {
        runOnce();
        collectMemAccesses();
        const auto got = extractStoreSummaries();
        const auto got_ret = extractRetSummaries();
        bool covered = true;
        for (const auto &[e, s] : got) {
            auto it = store_summary_.find(e);
            if (it == store_summary_.end() || !s.coveredBy(it->second)) {
                covered = false;
                break;
            }
        }
        // Return-value coverage: an assumed entry must be at least as
        // wide as what the solution's returns actually produce.  A
        // missing assumed entry is top and covers anything.
        for (auto it = ret_summary_.begin();
             covered && it != ret_summary_.end(); ++it) {
            auto g = got_ret.find(it->first);
            if (g == got_ret.end())
                continue; // no reachable return under the new solution
            for (unsigned r = 0; r < kNumRegs; ++r)
                if (joinValue(it->second[r], g->second[r]) !=
                    it->second[r]) {
                    covered = false;
                    break;
                }
        }
        if (covered)
            return;
        store_summary_ = got;
        ret_summary_ = got_ret;
    }
    store_summary_.clear();
    ret_summary_.clear();
    runOnce();
    collectMemAccesses();
}

void
AbsInterp::refineIndirectJumps()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    const Program &prog = cfg_.program();
    const uint64_t image_end = prog.footprint();
    bool any = false;

    for (uint32_t i = 0; i < n; ++i) {
        const CfgNode &nd = cfg_.node(i);
        if (!nd.is_indirect || !in_[i].reachable || cfg_.indirectRefined(i))
            continue;

        std::vector<uint32_t> candidates; // candidate pc values
        bool have = false;
        uint32_t c;
        if (in_[i].reg[nd.in.rs1].isConst(&c)) {
            candidates.push_back(c);
            have = true;
        } else {
            // Block-local jump-table pattern: the defining load of the
            // jump register reads a store-untouched table inside the
            // initialized data image at enumerable addresses.
            uint32_t def = ~0u;
            for (uint32_t j = i; j-- > 0;) {
                const CfgNode &dj = cfg_.node(j);
                if (!dj.valid || !dj.falls_through || dj.has_target)
                    break;
                if (defs32(dj) & (1u << nd.in.rs1)) {
                    def = j;
                    break;
                }
                if (dj.leader)
                    break;
            }
            if (def != ~0u && (cfg_.node(def).in.op == Op::kLdr ||
                               cfg_.node(def).in.op == Op::kLdrr) &&
                in_[def].reachable) {
                const Instr &ld = cfg_.node(def).in;
                const AbsState &ds = in_[def];
                Interval addr;
                KnownBits akb;
                if (ld.op == Op::kLdr) {
                    const AbsValue imm =
                        AbsValue::constant(static_cast<uint32_t>(ld.imm));
                    addr = ivAdd(ds.reg[ld.rs1].iv, imm.iv);
                    akb = kbLowRun(ds.reg[ld.rs1].kb, imm.kb,
                                   [](uint32_t x, uint32_t y) {
                                       return x + y;
                                   });
                } else {
                    addr = ivAdd(ds.reg[ld.rs1].iv, ds.reg[ld.rs2].iv);
                    akb = kbLowRun(ds.reg[ld.rs1].kb, ds.reg[ld.rs2].kb,
                                   [](uint32_t x, uint32_t y) {
                                       return x + y;
                                   });
                }
                const uint64_t span = addr.isTop() ? ~0ull : addr.width();
                if (span <= opts_.max_table_bytes &&
                    addr.lo >= prog.data_base &&
                    uint64_t{addr.hi} + 4 <= image_end &&
                    !storesMayTouch(addr.lo,
                                    static_cast<uint32_t>(span) + 3)) {
                    have = true;
                    for (uint64_t a = addr.lo; a <= addr.hi; ++a) {
                        if (!akb.matches(static_cast<uint32_t>(a)))
                            continue;
                        uint32_t word = 0;
                        for (unsigned b = 0; b < 4; ++b)
                            word |= uint32_t{prog.data[a - prog.data_base +
                                                       b]}
                                    << (8 * b);
                        candidates.push_back(word);
                    }
                    if (candidates.empty())
                        have = false; // nothing enumerable: stay safe
                }
            }
        }
        if (!have)
            continue;

        std::vector<uint32_t> targets;
        bool all_ok = true;
        for (uint32_t pc : candidates) {
            if (pc % 4 == 0 && pc / 4 < n && cfg_.node(pc / 4).valid)
                targets.push_back(pc / 4);
            else
                all_ok = false;
        }
        cfg_.refineIndirectTargets(i, std::move(targets));
        ++refined_indirects_;
        if (all_ok)
            indirect_ok_.insert(i);
        any = true;
    }

    if (any) {
        // Edges changed: structure-derived inputs must be rebuilt.
        computeSummaries();
        computeWidenPoints();
    }
}

// ---------------------------------------------------------------------------
// Loop-bound inference.

namespace {

/// Dense per-function dominator bitsets over @p nodes (sorted), rooted
/// at nodes[0]'s position of @p entry.
struct DomSets
{
    std::vector<uint32_t> nodes;          // sorted function nodes
    std::map<uint32_t, unsigned> pos;     // node -> dense index
    std::vector<std::vector<uint64_t>> dom;
    unsigned words = 0;

    bool dominates(uint32_t a, uint32_t b) const
    {
        auto ia = pos.find(a), ib = pos.find(b);
        if (ia == pos.end() || ib == pos.end())
            return false;
        return (dom[ib->second][ia->second / 64] >>
                (ia->second % 64)) & 1;
    }
};

DomSets
computeDominators(const ControlFlowGraph &cfg, uint32_t entry,
                  const std::vector<uint32_t> &nodes)
{
    DomSets d;
    d.nodes = nodes;
    for (unsigned i = 0; i < nodes.size(); ++i)
        d.pos[nodes[i]] = i;
    const unsigned m = static_cast<unsigned>(nodes.size());
    d.words = (m + 63) / 64;

    std::vector<std::vector<unsigned>> preds(m);
    for (unsigned i = 0; i < m; ++i)
        for (uint32_t s : cfg.intraSucc(nodes[i])) {
            auto it = d.pos.find(s);
            if (it != d.pos.end())
                preds[it->second].push_back(i);
        }

    const unsigned e = d.pos.at(entry);
    std::vector<uint64_t> all(d.words, ~0ull);
    if (m % 64)
        all[d.words - 1] = (~0ull) >> (64 - m % 64);
    d.dom.assign(m, all);
    std::vector<uint64_t> only_e(d.words, 0);
    only_e[e / 64] = 1ull << (e % 64);
    d.dom[e] = only_e;

    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned i = 0; i < m; ++i) {
            if (i == e)
                continue;
            std::vector<uint64_t> nv = all;
            if (preds[i].empty())
                nv.assign(d.words, 0); // unreachable within the function
            for (unsigned p : preds[i])
                for (unsigned w = 0; w < d.words; ++w)
                    nv[w] &= d.dom[p][w];
            nv[i / 64] |= 1ull << (i % 64);
            if (nv != d.dom[i]) {
                d.dom[i] = std::move(nv);
                changed = true;
            }
        }
    }
    return d;
}

} // namespace

std::string
LoopBound::describe(const ControlFlowGraph &cfg) const
{
    if (bounded)
        return strprintf("loop at %s: <= %llu head visits (%s)",
                         cfg.describeNode(head).c_str(),
                         static_cast<unsigned long long>(max_head_visits),
                         reason.c_str());
    return strprintf("loop at %s: unbounded (%s)",
                     cfg.describeNode(head).c_str(), reason.c_str());
}

const LoopBound *
AbsInterp::loopWithHead(uint32_t head) const
{
    for (const LoopBound &l : loops_)
        if (l.head == head)
            return &l;
    return nullptr;
}

void
AbsInterp::inferLoopBounds()
{
    loops_.clear();
    irreducible_.clear();
    pending_clamps_.clear();
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    if (n == 0)
        return;
    const auto &reach = cfg_.reachable();

    // Global predecessor lists under the current solution, for the
    // loop-entry (initial-value) state joins.
    std::vector<std::vector<uint32_t>> gpreds(n);
    for (uint32_t i = 0; i < n; ++i) {
        if (!in_[i].reachable || !reach[i])
            continue;
        flowNode(i, in_[i], [&](uint32_t s, const AbsState &) {
            if (s < n)
                gpreds[s].push_back(i);
        });
    }

    std::vector<uint32_t> entries{0};
    for (uint32_t e : cfg_.functionEntries())
        if (e != 0 && reach[e])
            entries.push_back(e);

    std::set<uint32_t> heads_seen;

    for (uint32_t entry : entries) {
        std::vector<uint32_t> nodes = cfg_.functionNodes(entry);
        if (nodes.empty())
            continue;
        DomSets dom = computeDominators(cfg_, entry, nodes);
        std::set<uint32_t> in_fn(nodes.begin(), nodes.end());

        // Back edges + irreducibility via DFS retreating edges.
        std::vector<std::pair<uint32_t, uint32_t>> back; // (src, head)
        {
            std::map<uint32_t, uint8_t> color;
            struct Frame
            {
                uint32_t node;
                std::vector<uint32_t> succ;
                size_t next = 0;
            };
            auto succOf = [&](uint32_t i) {
                std::vector<uint32_t> s;
                for (uint32_t t : cfg_.intraSucc(i))
                    if (in_fn.count(t))
                        s.push_back(t);
                return s;
            };
            std::vector<Frame> stack;
            stack.push_back({entry, succOf(entry), 0});
            color[entry] = 1;
            while (!stack.empty()) {
                Frame &f = stack.back();
                if (f.next < f.succ.size()) {
                    uint32_t s = f.succ[f.next++];
                    if (color[s] == 1) {
                        if (dom.dominates(s, f.node))
                            back.push_back({f.node, s});
                        else
                            irreducible_.insert(entry);
                    } else if (color[s] == 0) {
                        color[s] = 1;
                        stack.push_back({s, succOf(s), 0});
                    }
                } else {
                    color[f.node] = 2;
                    stack.pop_back();
                }
            }
        }

        // Natural loops, merged by head.
        std::map<uint32_t, LoopBound> by_head;
        std::map<uint32_t, std::vector<uint32_t>> rev; // preds within fn
        for (uint32_t i : nodes)
            for (uint32_t s : cfg_.intraSucc(i))
                if (in_fn.count(s))
                    rev[s].push_back(i);
        for (const auto &[src, head] : back) {
            LoopBound &L = by_head[head];
            L.head = head;
            L.back_sources.push_back(src);
            std::set<uint32_t> members{head};
            std::deque<uint32_t> work;
            if (src != head) {
                members.insert(src);
                work.push_back(src);
            }
            while (!work.empty()) {
                uint32_t i = work.front();
                work.pop_front();
                for (uint32_t p : rev[i]) {
                    if (!members.count(p)) {
                        members.insert(p);
                        work.push_back(p);
                    }
                }
            }
            for (uint32_t mnode : members)
                L.members.push_back(mnode);
            std::sort(L.members.begin(), L.members.end());
            L.members.erase(
                std::unique(L.members.begin(), L.members.end()),
                L.members.end());
        }

        // Bound one loop: find an affine induction variable with a
        // single in-loop definition, and an exit guard whose cmp
        // dominates every back edge; the guard's continue-relation,
        // the step, and the loop-entry value interval give the bound
        // on head visits (plus, for guards testing the post-step
        // value, a proven head-range clamp fed back into the next
        // fixpoint round).
        auto inferOne = [&](LoopBound &L) {
            const std::set<uint32_t> mem(L.members.begin(),
                                         L.members.end());
            std::set<uint32_t> nested;
            for (const auto &[h2, L2] : by_head) {
                if (h2 == L.head || !mem.count(h2))
                    continue;
                nested.insert(L2.members.begin(), L2.members.end());
            }

            // Loop-entry state: join of contributions from outside-loop
            // predecessors (plus the reset state when the head is the
            // program entry).
            AbsState init;
            for (uint32_t p : gpreds[L.head]) {
                if (mem.count(p) || !in_[p].reachable)
                    continue;
                flowNode(p, in_[p],
                         [&](uint32_t s, const AbsState &st) {
                             if (s == L.head)
                                 joinState(init, st);
                         });
            }
            if (L.head == 0)
                joinState(init, entryState());
            if (!init.reachable) {
                L.reason = "loop head has no analyzable entry state";
                return;
            }

            bool have = false;
            uint64_t best = 0;
            std::string best_desc;
            int best_reg = -1;
            uint32_t best_guard = ~0u;
            std::map<int, Interval> clamp_acc;

            for (uint32_t g : L.members) {
                const CfgNode &gn = cfg_.node(g);
                if (!gn.valid || nested.count(g))
                    continue;
                Rel rel;
                if (!gn.has_target || !relOf(gn.in.op, &rel))
                    continue;
                const bool t_in =
                    gn.target_in_code && mem.count(gn.target);
                const bool f_in = (g + 1 < n) && mem.count(g + 1);
                if (t_in == f_in)
                    continue; // not an exit guard
                const Rel cont = t_in ? rel : negateRel(rel);
                const AbsState &gs = in_[g];
                if (!gs.reachable || gs.cmp_lhs < 0)
                    continue;

                struct Orient
                {
                    int ivr;
                    Rel cont;
                    int other_reg;
                    uint32_t k;
                };
                std::vector<Orient> orients;
                orients.push_back({gs.cmp_lhs, cont, gs.cmp_rhs_reg,
                                   gs.cmp_rhs_k});
                if (gs.cmp_rhs_reg >= 0)
                    orients.push_back(
                        {gs.cmp_rhs_reg, swapRel(cont), gs.cmp_lhs, 0});

                for (const Orient &o : orients) {
                    const int r = o.ivr;
                    // Exactly one in-loop definition of r, and it is
                    // an affine step (addi/subi r, r, #imm) outside
                    // any nested loop.
                    uint32_t def = ~0u;
                    bool ok = true;
                    for (uint32_t mi : L.members) {
                        const CfgNode &dn = cfg_.node(mi);
                        if (!dn.valid)
                            continue;
                        uint32_t d32 = defs32(dn);
                        if (dn.is_call)
                            d32 |= dn.target_in_code
                                       ? mayDef(dn.target)
                                       : 0xffffu;
                        if (!(d32 & (1u << r)))
                            continue;
                        if (def != ~0u || dn.is_call) {
                            ok = false;
                            break;
                        }
                        def = mi;
                    }
                    if (!ok || def == ~0u || nested.count(def))
                        continue;
                    const Instr &di = cfg_.node(def).in;
                    if (!((di.op == Op::kAddi || di.op == Op::kSubi) &&
                          di.rd == r && di.rs1 == r))
                        continue;
                    const int64_t step = di.op == Op::kAddi
                                             ? int64_t{di.imm}
                                             : -int64_t{di.imm};
                    if (step == 0)
                        continue;
                    bool domok = true;
                    for (uint32_t b : L.back_sources) {
                        if (!dom.dominates(def, b) ||
                            !dom.dominates(g, b)) {
                            domok = false;
                            break;
                        }
                    }
                    if (!domok)
                        continue;
                    const bool post = dom.dominates(def, g);

                    // Comparison bound: a constant, or a loop-invariant
                    // register's interval.
                    Interval R;
                    if (o.other_reg >= 0) {
                        const int q = o.other_reg;
                        bool inv = true;
                        for (uint32_t mi : L.members) {
                            const CfgNode &dn = cfg_.node(mi);
                            if (!dn.valid)
                                continue;
                            uint32_t d32 = defs32(dn);
                            if (dn.is_call)
                                d32 |= dn.target_in_code
                                           ? mayDef(dn.target)
                                           : 0xffffu;
                            if (d32 & (1u << q)) {
                                inv = false;
                                break;
                            }
                        }
                        if (!inv)
                            continue;
                        R = gs.reg[q].iv;
                    } else {
                        R = Interval::constant(o.k);
                    }
                    const Interval C = init.reg[r].iv;
                    const uint64_t s_abs =
                        step > 0 ? static_cast<uint64_t>(step)
                                 : static_cast<uint64_t>(-step);

                    // Signed relations demand both sides provably
                    // non-negative; then they coincide with the
                    // unsigned ones under a 2^31 value ceiling.
                    Rel cn = o.cont;
                    uint64_t limit = kTwo32;
                    bool usable = true;
                    switch (cn) {
                      case Rel::kSlt: case Rel::kSle:
                      case Rel::kSgt: case Rel::kSge:
                        if (C.hi >= 0x80000000u || R.hi >= 0x80000000u) {
                            usable = false;
                        } else {
                            limit = uint64_t{1} << 31;
                            switch (cn) {
                              case Rel::kSlt: cn = Rel::kUlt; break;
                              case Rel::kSle: cn = Rel::kUle; break;
                              case Rel::kSgt: cn = Rel::kUgt; break;
                              default:        cn = Rel::kUge; break;
                            }
                        }
                        break;
                      default:
                        break;
                    }
                    if (!usable)
                        continue;

                    uint64_t visits = 0;
                    bool okb = false;
                    Interval clamp = Interval::top();
                    bool have_clamp = false;

                    switch (cn) {
                      case Rel::kNe: {
                        // Exact-hit exit: needs constant endpoints and
                        // a step that divides the distance.
                        if (!R.isConst() || !C.isConst())
                            break;
                        const uint64_t c = C.lo, k = R.lo;
                        if (step < 0) {
                            if (c < k + (post ? 1 : 0) ||
                                (c - k) % s_abs)
                                break;
                            visits = (c - k) / s_abs + (post ? 0 : 1);
                            clamp = post
                                ? Interval{static_cast<uint32_t>(
                                               k + s_abs),
                                           static_cast<uint32_t>(c)}
                                : Interval{static_cast<uint32_t>(k),
                                           static_cast<uint32_t>(c)};
                        } else {
                            if (k < c + (post ? 1 : 0) ||
                                (k - c) % s_abs)
                                break;
                            visits = (k - c) / s_abs + (post ? 0 : 1);
                            clamp = post
                                ? Interval{static_cast<uint32_t>(c),
                                           static_cast<uint32_t>(
                                               k - s_abs)}
                                : Interval{static_cast<uint32_t>(c),
                                           static_cast<uint32_t>(k)};
                        }
                        okb = have_clamp = true;
                        break;
                      }
                      case Rel::kUlt: case Rel::kUle: {
                        if (step < 0)
                            break;
                        uint64_t k = R.hi;
                        if (cn == Rel::kUle) {
                            if (k + 1 >= limit)
                                break; // "<= max": never exits here
                            k += 1;
                        }
                        // Continue while v < k.  No-wrap: the largest
                        // value ever taken is k - 1 + step.
                        if (k + s_abs > limit)
                            break;
                        const uint64_t t =
                            C.lo < k ? ceilDiv(k - C.lo, s_abs) : 0;
                        visits = post ? std::max<uint64_t>(1, t) : t + 1;
                        if (k >= 1) {
                            clamp = {C.lo,
                                     std::max(C.hi,
                                              static_cast<uint32_t>(
                                                  k - 1))};
                            have_clamp = post;
                        }
                        okb = true;
                        break;
                      }
                      case Rel::kUgt: case Rel::kUge: {
                        if (step > 0)
                            break;
                        uint64_t k = R.lo;
                        if (cn == Rel::kUgt) {
                            if (k + 1 >= limit)
                                break; // "> max": infeasible to stay
                            k += 1;
                        }
                        if (k == 0)
                            break; // ">= 0": never exits here
                        // Continue while v >= k.  No-wrap: the smallest
                        // value ever taken is k - step.
                        if (k < s_abs)
                            break;
                        const uint64_t t =
                            C.hi >= k ? ceilDiv(C.hi - k + 1, s_abs) : 0;
                        visits = post ? std::max<uint64_t>(1, t) : t + 1;
                        clamp = {std::min(C.lo,
                                          static_cast<uint32_t>(k)),
                                 C.hi};
                        have_clamp = post;
                        okb = true;
                        break;
                      }
                      default:
                        break;
                    }
                    if (!okb)
                        continue;

                    if (!have || visits < best) {
                        best = visits;
                        best_reg = r;
                        best_guard = g;
                        best_desc = strprintf(
                            "induction %s step %+lld, %s guard at %s, "
                            "entry %s",
                            regName(r).c_str(),
                            static_cast<long long>(step),
                            opName(gn.in.op),
                            cfg_.describeNode(g).c_str(),
                            C.describe().c_str());
                    }
                    have = true;
                    if (have_clamp) {
                        auto [it, fresh] =
                            clamp_acc.try_emplace(r, clamp);
                        if (!fresh) {
                            Interval &cur = it->second;
                            const uint32_t lo =
                                std::max(cur.lo, clamp.lo);
                            const uint32_t hi =
                                std::min(cur.hi, clamp.hi);
                            if (lo <= hi)
                                cur = {lo, hi};
                        }
                    }
                }
            }

            // Memory-held induction variable: kernels that park a loop
            // counter in a save slot round-trip it through memory each
            // iteration — load, step, store back, compare — so no
            // register has a unique affine def.  Recognize the
            // straight-line window
            //     ldr r,[A]; ...; addi/subi r,r,#c; str r,[A]; cmp; bcc
            // ending at an exit guard, with the 4-byte cell A written
            // nowhere else in the loop (including through callee store
            // summaries); then cell A is the induction variable, its
            // loop-entry value comes from the tracked cell at the head's
            // outside predecessors, and the guard tests the post-step
            // value.
            if (!have) {
                for (uint32_t g : L.members) {
                    const CfgNode &gn = cfg_.node(g);
                    if (!gn.valid || nested.count(g))
                        continue;
                    Rel rel;
                    if (!gn.has_target || !relOf(gn.in.op, &rel))
                        continue;
                    const bool t_in =
                        gn.target_in_code && mem.count(gn.target);
                    const bool f_in = (g + 1 < n) && mem.count(g + 1);
                    if (t_in == f_in)
                        continue;
                    const Rel cont = t_in ? rel : negateRel(rel);
                    const AbsState &gs = in_[g];
                    if (!gs.reachable || gs.cmp_lhs < 0 ||
                        gs.cmp_rhs_reg >= 0)
                        continue;
                    const int r = gs.cmp_lhs;
                    bool domok = true;
                    for (uint32_t b : L.back_sources)
                        if (!dom.dominates(g, b)) {
                            domok = false;
                            break;
                        }
                    if (!domok)
                        continue;

                    // Backward straight-line walk from the guard: the
                    // first def of r reached must be the affine step, the
                    // next one the reload of the stored cell.
                    uint32_t lo_node = ~0u, d_node = ~0u, s_node = ~0u;
                    uint32_t A = 0;
                    int64_t step = 0;
                    for (uint32_t j = g; lo_node == ~0u && j > 0;) {
                        const auto &gp = gpreds[j];
                        if (gp.empty() ||
                            !std::all_of(gp.begin(), gp.end(),
                                         [&](uint32_t p) {
                                             return p == j - 1;
                                         }))
                            break;
                        --j;
                        if (!mem.count(j) || nested.count(j))
                            break;
                        const CfgNode &dn = cfg_.node(j);
                        if (!dn.valid || dn.is_call || dn.has_target ||
                            !dn.falls_through)
                            break;
                        const Instr &di = dn.in;
                        if ((di.op == Op::kStr || di.op == Op::kStrr) &&
                            di.rd == r && s_node == ~0u &&
                            d_node == ~0u) {
                            const MemAccess *a = memAccessAt(j);
                            if (a && a->proven && a->addr.isConst() &&
                                (a->addr.lo & 3u) == 0) {
                                s_node = j;
                                A = a->addr.lo;
                            }
                            continue;
                        }
                        if (!(defs32(dn) & (1u << r)))
                            continue;
                        if (d_node == ~0u) {
                            if ((di.op == Op::kAddi ||
                                 di.op == Op::kSubi) &&
                                di.rd == r && di.rs1 == r &&
                                di.imm != 0 && s_node != ~0u) {
                                d_node = j;
                                step = di.op == Op::kAddi
                                           ? int64_t{di.imm}
                                           : -int64_t{di.imm};
                            } else {
                                break;
                            }
                        } else {
                            const MemAccess *a = memAccessAt(j);
                            if ((di.op == Op::kLdr ||
                                 di.op == Op::kLdrr) &&
                                di.rd == r && a && a->proven &&
                                a->addr.isConst() && a->addr.lo == A)
                                lo_node = j;
                            break;
                        }
                    }

                    if (lo_node == ~0u)
                        continue;

                    // The cell must be written only by the window store:
                    // every other in-loop store misses [A, A+3], and
                    // every in-loop call's store summary excludes it.
                    bool cell_ok = true;
                    for (uint32_t mi : L.members) {
                        const CfgNode &dn = cfg_.node(mi);
                        if (!dn.valid || !in_[mi].reachable)
                            continue;
                        if (dn.is_call) {
                            auto it = dn.target_in_code
                                          ? store_summary_.find(dn.target)
                                          : store_summary_.end();
                            if (it == store_summary_.end() ||
                                it->second.unbounded) {
                                cell_ok = false;
                                break;
                            }
                            for (const auto &[slo, shi] :
                                 it->second.spans)
                                if (slo <= uint64_t{A} + 3 && A <= shi) {
                                    cell_ok = false;
                                    break;
                                }
                            if (!cell_ok)
                                break;
                            continue;
                        }
                        const MemAccess *a = memAccessAt(mi);
                        if (!a || !a->is_store || mi == s_node)
                            continue;
                        if (!a->proven) {
                            cell_ok = false;
                            break;
                        }
                        const uint64_t ahi =
                            uint64_t{a->addr.hi} + a->size - 1;
                        if (a->addr.lo <= uint64_t{A} + 3 && A <= ahi) {
                            cell_ok = false;
                            break;
                        }
                    }
                    if (!cell_ok)
                        continue;

                    auto ci = init.cell.find(A);
                    if (ci == init.cell.end())
                        continue;
                    const Interval C = ci->second.iv;
                    const Interval R = Interval::constant(gs.cmp_rhs_k);
                    const uint64_t s_abs =
                        step > 0 ? static_cast<uint64_t>(step)
                                 : static_cast<uint64_t>(-step);

                    Rel cn = cont;
                    uint64_t limit = kTwo32;
                    switch (cn) {
                      case Rel::kSlt: case Rel::kSle:
                      case Rel::kSgt: case Rel::kSge:
                        if (C.hi >= 0x80000000u || R.hi >= 0x80000000u)
                            continue;
                        limit = uint64_t{1} << 31;
                        switch (cn) {
                          case Rel::kSlt: cn = Rel::kUlt; break;
                          case Rel::kSle: cn = Rel::kUle; break;
                          case Rel::kSgt: cn = Rel::kUgt; break;
                          default:        cn = Rel::kUge; break;
                        }
                        break;
                      default:
                        break;
                    }

                    // Guard tests the post-step value (the store and the
                    // cmp both sit after the affine def in the window).
                    uint64_t visits = 0;
                    bool okb = false;
                    switch (cn) {
                      case Rel::kNe: {
                        if (!R.isConst() || !C.isConst())
                            break;
                        const uint64_t c = C.lo, k = R.lo;
                        if (step < 0) {
                            if (c < k + 1 || (c - k) % s_abs)
                                break;
                            visits = (c - k) / s_abs;
                        } else {
                            if (k < c + 1 || (k - c) % s_abs)
                                break;
                            visits = (k - c) / s_abs;
                        }
                        okb = true;
                        break;
                      }
                      case Rel::kUlt: case Rel::kUle: {
                        if (step < 0)
                            break;
                        uint64_t k = R.hi;
                        if (cn == Rel::kUle) {
                            if (k + 1 >= limit)
                                break;
                            k += 1;
                        }
                        if (k + s_abs > limit)
                            break;
                        const uint64_t t =
                            C.lo < k ? ceilDiv(k - C.lo, s_abs) : 0;
                        visits = std::max<uint64_t>(1, t);
                        okb = true;
                        break;
                      }
                      case Rel::kUgt: case Rel::kUge: {
                        if (step > 0)
                            break;
                        uint64_t k = R.lo;
                        if (cn == Rel::kUgt) {
                            if (k + 1 >= limit)
                                break;
                            k += 1;
                        }
                        if (k == 0 || k < s_abs)
                            break;
                        const uint64_t t =
                            C.hi >= k ? ceilDiv(C.hi - k + 1, s_abs) : 0;
                        visits = std::max<uint64_t>(1, t);
                        okb = true;
                        break;
                      }
                      default:
                        break;
                    }
                    if (!okb)
                        continue;

                    if (!have || visits < best) {
                        best = visits;
                        best_reg = r;
                        best_guard = g;
                        best_desc = strprintf(
                            "memory induction cell 0x%x step %+lld via "
                            "%s, %s guard at %s, entry %s",
                            A, static_cast<long long>(step),
                            regName(r).c_str(), opName(gn.in.op),
                            cfg_.describeNode(g).c_str(),
                            C.describe().c_str());
                    }
                    have = true;
                }
            }

            if (have) {
                L.bounded = true;
                L.max_head_visits = best;
                L.iv_reg = best_reg;
                L.guard = best_guard;
                L.reason = best_desc;

                // Derived affine clamps: in a loop with at most `best`
                // head visits, a register whose only in-loop definition
                // is an affine step (never clobbered by a call, not in a
                // nested loop) advances monotonically at most best - 1
                // times before any head visit, so its head value stays
                // within the entry interval extended by that travel.
                // This is what bounds derived pointers (e.g. a round-key
                // cursor stepped by 16) that are not the loop's guard
                // subject.
                if (best > 0) {
                    for (int q = 0; q < static_cast<int>(kNumRegs);
                         ++q) {
                        uint32_t def = ~0u;
                        bool ok = true;
                        for (uint32_t mi : L.members) {
                            const CfgNode &dn = cfg_.node(mi);
                            if (!dn.valid)
                                continue;
                            uint32_t d32 = defs32(dn);
                            if (dn.is_call)
                                d32 |= dn.target_in_code
                                           ? mayDef(dn.target)
                                           : 0xffffu;
                            if (!(d32 & (1u << q)))
                                continue;
                            if (def != ~0u || dn.is_call) {
                                ok = false;
                                break;
                            }
                            def = mi;
                        }
                        if (!ok || def == ~0u || nested.count(def))
                            continue;
                        const Instr &di = cfg_.node(def).in;
                        if (!((di.op == Op::kAddi ||
                               di.op == Op::kSubi) &&
                              di.rd == q && di.rs1 == q && di.imm > 0))
                            continue;
                        const Interval I = init.reg[q].iv;
                        if (I.isTop())
                            continue;
                        const uint64_t travel =
                            uint64_t{static_cast<uint32_t>(di.imm)} *
                            (best - 1);
                        Interval clamp;
                        if (di.op == Op::kAddi) {
                            const uint64_t hi = uint64_t{I.hi} + travel;
                            if (hi >= kTwo32)
                                continue; // may wrap: no safe clamp
                            clamp = {I.lo, static_cast<uint32_t>(hi)};
                        } else {
                            if (travel > I.lo)
                                continue; // may wrap below zero
                            clamp = {static_cast<uint32_t>(I.lo - travel),
                                     I.hi};
                        }
                        auto [it, fresh] =
                            clamp_acc.try_emplace(q, clamp);
                        if (!fresh) {
                            Interval &cur = it->second;
                            const uint32_t lo =
                                std::max(cur.lo, clamp.lo);
                            const uint32_t hi =
                                std::min(cur.hi, clamp.hi);
                            if (lo <= hi)
                                cur = {lo, hi};
                        }
                    }
                }

                if (!clamp_acc.empty())
                    pending_clamps_[L.head] = clamp_acc;
            } else if (L.reason.empty()) {
                L.reason = "no provable induction/guard pair";
            }
        };

        const bool fn_irreducible = irreducible_.count(entry) != 0;
        for (auto &[head, L] : by_head) {
            if (heads_seen.count(head))
                continue;
            heads_seen.insert(head);
            std::sort(L.back_sources.begin(), L.back_sources.end());
            L.back_sources.erase(std::unique(L.back_sources.begin(),
                                             L.back_sources.end()),
                                 L.back_sources.end());
            if (fn_irreducible) {
                L.reason = "function has irreducible control flow";
                loops_.push_back(L);
                continue;
            }
            inferOne(L);
            loops_.push_back(L);
        }
    }

    std::sort(loops_.begin(), loops_.end(),
              [](const LoopBound &a, const LoopBound &b) {
                  return a.head < b.head;
              });
}

bool
AbsInterp::deriveClamps()
{
    // Install the clamps the latest loop inference proved, intersected
    // with whatever is already installed (clamps only ever shrink, so
    // the clamp rounds terminate).
    auto next = clamps_;
    for (const auto &[head, regs] : pending_clamps_) {
        for (const auto &[r, iv] : regs) {
            auto [it, fresh] = next[head].try_emplace(r, iv);
            if (!fresh) {
                const uint32_t lo = std::max(it->second.lo, iv.lo);
                const uint32_t hi = std::min(it->second.hi, iv.hi);
                if (lo <= hi)
                    it->second = {lo, hi};
            }
        }
    }
    if (next == clamps_)
        return false;
    clamps_ = std::move(next);
    return true;
}

void
AbsInterp::run()
{
    computeSummaries();
    computeWidenPoints();
    runOnce();
    collectMemAccesses();
    stabilizeStoreSummaries();

    if (opts_.refine_indirect) {
        refineIndirectJumps();
        if (refined_indirects_ != 0) {
            runOnce();
            collectMemAccesses();
            stabilizeStoreSummaries();
        }
    }

    inferLoopBounds();
    // Feed proven head ranges back and resolve: each round can tighten
    // loop entry values (e.g. a down-counted inner loop's exact-hit
    // clamp proving its byte-index loads in range), which can tighten
    // further bounds.  Clamps shrink monotonically; three rounds is
    // plenty for the nesting depth of real kernels.
    for (int round = 0; round < 3 && deriveClamps(); ++round) {
        runOnce();
        collectMemAccesses();
        inferLoopBounds();
    }

    // Final assume-guarantee check: the solution must justify the store
    // summaries it was computed under.  Clamps only tighten accesses, so
    // this holds by construction; if it ever fires, fall back to the
    // conservative no-summary, no-clamp solution.
    if (!store_summary_.empty() || !ret_summary_.empty()) {
        const auto got = extractStoreSummaries();
        const auto got_ret = extractRetSummaries();
        bool covered = true;
        for (const auto &[e, s] : got) {
            auto it = store_summary_.find(e);
            if (it == store_summary_.end() || !s.coveredBy(it->second)) {
                covered = false;
                break;
            }
        }
        for (auto it = ret_summary_.begin();
             covered && it != ret_summary_.end(); ++it) {
            auto g = got_ret.find(it->first);
            if (g == got_ret.end())
                continue;
            for (unsigned r = 0; r < kNumRegs; ++r)
                if (joinValue(it->second[r], g->second[r]) !=
                    it->second[r]) {
                    covered = false;
                    break;
                }
        }
        if (!covered) {
            store_summary_.clear();
            ret_summary_.clear();
            clamps_.clear();
            pending_clamps_.clear();
            runOnce();
            collectMemAccesses();
            inferLoopBounds();
        }
    }
}

} // namespace gfp
