/** @file Implementation of the JSON / SARIF report renderers. */

#include "analysis/report_format.h"

#include <cstdio>
#include <sstream>

namespace gfp {

namespace {

const char *
severityName(Severity s)
{
    return s == Severity::kError ? "error" : "warning";
}

std::string
numStr(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

/** 1-based source line of block word @p idx, or 0. */
int
lineOf(const ProgramReport &r, uint32_t word_idx)
{
    return r.prog ? r.prog->lineOfWord(word_idx) : 0;
}

void
appendCertJson(std::ostringstream &os, const ProgramReport &r)
{
    const ProgramCertificate &c = r.cert;
    os << "\"certificate\":{"
       << "\"trap_free\":" << (c.trap_free ? "true" : "false")
       << ",\"jit_safe\":" << (c.jit_safe ? "true" : "false")
       << ",\"has_gf_ops\":" << (c.has_gf_ops ? "true" : "false")
       << ",\"refined_indirects\":" << c.refined_indirects
       << ",\"blocks\":{\"total\":" << c.blocks.size()
       << ",\"reachable\":" << c.reachableBlocks()
       << ",\"trap_free\":" << c.trapFreeBlocks() << "}"
       << ",\"loops\":{\"total\":" << c.loops.size()
       << ",\"bounded\":" << c.boundedLoops() << "}";

    os << ",\"wcet\":{"
       << "\"bounded\":" << (c.cost.bounded ? "true" : "false")
       << ",\"instr_bound\":" << c.cost.instr_bound
       << ",\"cycle_bound\":" << c.cost.cycle_bound
       << ",\"gf_cycle_bound\":" << c.cost.gf_cycle_bound
       << ",\"energy_nominal_pj\":" << numStr(c.cost.energy_nominal_pj)
       << ",\"energy_07v_pj\":" << numStr(c.cost.energy_07v_pj)
       << ",\"watchdog\":" << c.cost.watchdog << ",\"within_watchdog\":"
       << (c.cost.within_watchdog ? "true" : "false") << ",\"reason\":\""
       << jsonEscape(c.cost.reason) << "\"}";

    os << ",\"configs\":[";
    for (size_t i = 0; i < c.configs.size(); ++i) {
        const ConfigCertificate &cc = c.configs[i];
        if (i)
            os << ",";
        os << "{\"word\":" << cc.idx << ",\"addr\":" << cc.addr
           << ",\"verdict\":\"" << configVerdictName(cc.verdict)
           << "\",\"m\":" << cc.m << ",\"tainted_bytes\":"
           << unsigned{cc.tainted_bytes} << ",\"message\":\""
           << jsonEscape(cc.message) << "\"}";
    }
    os << "]";

    os << ",\"caveats\":[";
    for (size_t i = 0; i < c.caveats.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(c.caveats[i]) << "\"";
    }
    os << "]}";
}

struct SarifResult
{
    std::string rule;
    std::string level; ///< "error" | "warning" | "note"
    std::string text;
    std::string uri;
    int line = 0;
};

void
collectSarifResults(const ProgramReport &r, std::vector<SarifResult> &out)
{
    for (const Finding &f : r.lint.findings) {
        out.push_back({lintRuleName(f.rule), severityName(f.severity),
                       r.name + ": " + f.message, r.uri(), f.line});
    }
    if (!r.certified)
        return;
    const ProgramCertificate &c = r.cert;
    for (const BlockCertificate &b : c.blocks) {
        if (!b.reachable)
            continue;
        for (const std::string &o : b.obstacles) {
            const char *rule =
                b.trapFree() ? "jit-safety" : "trap-freedom";
            out.push_back({rule, "warning", r.name + ": " + o, r.uri(),
                           lineOf(r, b.first)});
        }
    }
    for (const ConfigCertificate &cc : c.configs) {
        if (cc.ok())
            continue;
        out.push_back({"config-certificate", "warning",
                       r.name + ": gfcfg configuration " +
                           configVerdictName(cc.verdict) + ": " + cc.message,
                       r.uri(), lineOf(r, cc.idx)});
    }
    if (c.cost.bounded) {
        out.push_back({"wcet-bound", "note", r.name + ": " + c.summary(),
                       r.uri(), 0});
    } else {
        out.push_back({"wcet-unbounded", "warning",
                       r.name + ": WCET unbounded: " + c.cost.reason +
                           " (watchdog fallback applies)",
                       r.uri(), 0});
    }
}

} // namespace

bool
parseReportFormat(const std::string &name, ReportFormat &out)
{
    if (name == "human")
        out = ReportFormat::kHuman;
    else if (name == "json")
        out = ReportFormat::kJson;
    else if (name == "sarif")
        out = ReportFormat::kSarif;
    else
        return false;
    return true;
}

std::string
renderJson(const std::vector<ProgramReport> &reports)
{
    std::ostringstream os;
    os << "{\"tool\":\"gfp-lint\",\"programs\":[";
    for (size_t p = 0; p < reports.size(); ++p) {
        const ProgramReport &r = reports[p];
        if (p)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(r.name) << "\",\"file\":\""
           << jsonEscape(r.file) << "\",\"findings\":[";
        for (size_t i = 0; i < r.lint.findings.size(); ++i) {
            const Finding &f = r.lint.findings[i];
            if (i)
                os << ",";
            os << "{\"rule\":\"" << lintRuleName(f.rule)
               << "\",\"severity\":\"" << severityName(f.severity)
               << "\",\"pc\":" << f.pc << ",\"line\":" << f.line
               << ",\"message\":\"" << jsonEscape(f.message) << "\"}";
        }
        os << "]";
        if (r.certified) {
            os << ",";
            appendCertJson(os, r);
        }
        os << "}";
    }
    os << "]}";
    return os.str();
}

std::string
renderSarif(const std::vector<ProgramReport> &reports)
{
    std::vector<SarifResult> results;
    for (const ProgramReport &r : reports)
        collectSarifResults(r, results);

    // Rule metadata: every distinct ruleId that appears.
    std::vector<std::string> rules;
    for (const SarifResult &res : results) {
        bool seen = false;
        for (const std::string &id : rules)
            seen = seen || id == res.rule;
        if (!seen)
            rules.push_back(res.rule);
    }

    std::ostringstream os;
    os << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
          "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
          "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
          "\"name\":\"gfp-lint\",\"informationUri\":"
          "\"https://example.invalid/gfp\",\"rules\":[";
    for (size_t i = 0; i < rules.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"id\":\"" << jsonEscape(rules[i]) << "\"}";
    }
    os << "]}},\"results\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        const SarifResult &res = results[i];
        if (i)
            os << ",";
        os << "{\"ruleId\":\"" << jsonEscape(res.rule) << "\",\"level\":\""
           << res.level << "\",\"message\":{\"text\":\""
           << jsonEscape(res.text) << "\"},\"locations\":[{"
           << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
           << jsonEscape(res.uri) << "\"}";
        if (res.line > 0)
            os << ",\"region\":{\"startLine\":" << res.line << "}";
        os << "}}]}";
    }
    os << "]}]}";
    return os.str();
}

} // namespace gfp
