/**
 * @file
 * Algebraic verifier for GFAU reduction-matrix configurations
 * ("gfp-lint" pass 2).
 *
 * The hardware reduction stage (gfau/units.h, paper Fig. 5) maps a
 * (2m-1)-bit carry-less full product v to an m-bit element by a GF(2)
 * linear map: the low m bits pass through, and full-product bit m+j
 * adds P column j.  Correct field arithmetic requires that map to equal
 * reduction modulo the irreducible polynomial r(x), which is *also*
 * GF(2)-linear in v.  Two linear maps over GF(2)^(2m-1) are equal iff
 * they agree on the 2m-1 basis vectors — so a symbolic proof over all
 * 2^(2m-1) products collapses to comparing 2m-1 columns:
 *
 *     hardware column i   =  e_i            (i < m)
 *     hardware column m+j =  P[j]           (j < m-1)
 *     golden  column i    =  x^i mod r(x)
 *
 * The golden columns are computed here by direct polynomial division,
 * independent of both the simulator and GFConfig::derive (the code
 * under test).  A second, structural check drives the actual
 * ReductionStage::reduce bit-twiddling on the basis and on all pairwise
 * superpositions, proving the *implementation* realizes its linear
 * abstraction; an optional exhaustive mode sweeps every product.
 *
 * classifyConfig() is the linter's entry point: given a config register
 * image decoded from a guest's gfcfg blob, decide whether its P matrix
 * is a correct field reduction (and for which polynomial), the legal
 * circulant x^m+1 ring configuration the AES kernels use, or neither.
 */

#ifndef GFP_ANALYSIS_CONFIG_VERIFIER_H
#define GFP_ANALYSIS_CONFIG_VERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "gfau/config_reg.h"

namespace gfp {

/** x^e mod r(x) for a degree-m polynomial r, by direct long division.
 *  This is the verifier's own golden reduction — deliberately not
 *  GFField::reduce or GFConfig::derive. */
uint32_t polyModReduce(uint32_t e_power, unsigned m, uint32_t poly);

/** Outcome of one matrix proof. */
struct MatrixProof
{
    bool ok = true;
    unsigned m = 0;
    uint32_t poly = 0;
    std::string detail; ///< first mismatch, empty when ok

    std::string describe() const;
};

/**
 * Prove (or refute) that @p cfg's P matrix implements reduction modulo
 * @p poly (degree @p cfg.m) for *all* (2m-1)-bit products, by the
 * basis-column argument above.  Pure matrix comparison; the hardware
 * model is not involved.
 */
MatrixProof verifyReductionMatrix(const GFConfig &cfg, uint32_t poly);

/**
 * Prove the structural ReductionStage implementation conforms to the
 * linear map encoded by @p cfg and that that map reduces mod @p poly:
 * basis vectors + all pairwise superpositions (linearity witness); with
 * @p exhaustive, additionally sweep every (2m-1)-bit product.
 */
MatrixProof verifyReductionStage(const GFConfig &cfg, uint32_t poly,
                                 bool exhaustive = false);

/** Aggregate result of sweeping every supported field. */
struct VerifySummary
{
    unsigned fields_checked = 0;
    std::vector<MatrixProof> failures;
    bool ok() const { return failures.empty(); }
};

/**
 * Run both proofs for every irreducible polynomial of every supported
 * degree (m = 2..8; 69 fields in total), deriving each configuration
 * with GFConfig::derive — i.e. verify the software the guest-side
 * config flow relies on, against this file's independent algebra.
 */
VerifySummary verifyAllFields(bool exhaustive = false);

/** What a configuration register image actually computes. */
enum class ConfigClass : uint8_t {
    kInvalid,   ///< field width outside 2..8 (would trap GfConfigCorrupt)
    kField,     ///< P == reduction matrix of an irreducible polynomial
    kCirculant, ///< P == reduction mod x^m + 1 (legal ring config)
    kUnknown,   ///< valid width but P matches no known reduction
};

struct ConfigClassification
{
    ConfigClass cls = ConfigClass::kUnknown;
    unsigned m = 0;
    uint32_t poly = 0; ///< the matching polynomial, for kField
};

/** Classify @p cfg by searching the irreducible catalog (gf/polys.h)
 *  and the circulant pattern.  Unused high P columns are ignored, as
 *  the mapping circuit never routes them for width m. */
ConfigClassification classifyConfig(const GFConfig &cfg);

} // namespace gfp

#endif // GFP_ANALYSIS_CONFIG_VERIFIER_H
