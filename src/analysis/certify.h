/**
 * @file
 * Certificate emitters on top of the abstract interpreter
 * (analysis/absint.h) — the static half of the paper's IoT cost story:
 * a battery-budgeted node wants *proven* worst-case cycle/energy and
 * trap behavior before admitting a kernel, not just measurements.
 *
 * Three certificate families:
 *
 *  - Trap-freedom (per basic block, `BlockCertificate`): no reachable
 *    out-of-range access, undecodable word, fetch past the code end,
 *    or gfcfg trap in the block.  Alongside trap-freedom proper the
 *    block proves the JIT-relevant disciplines: no store into the code
 *    section (self-modifying code voids translations) and no
 *    reduction-matrix GF op before an explicit gfcfg (the silent
 *    power-on-default-field hazard).
 *
 *  - Worst-case cost (`CostCertificate`): a longest-path bound over
 *    the loop-bounded CFG, weighted with the exact per-instruction
 *    cycle costs the simulator retires (sim/cost_model.h) and priced
 *    with hwmodel/energy_model.h pJ/cycle rates at both published
 *    operating points.  When any loop bound, indirect jump, or
 *    recursion defeats the analysis, the certificate falls back to
 *    the watchdog cap and says so.
 *
 *  - Config certificates (`ConfigCertificate`): per gfcfg site, track
 *    which blob bytes stores may overwrite (taint) and push the static
 *    blob through the algebraic verifier (config_verifier.h); configs
 *    the verifier cannot classify are refuted rather than admitted.
 *
 * Soundness boundary (see docs/ANALYSIS.md): certificates describe a
 * program launched by Machine::reset/setArgs on a memory of exactly
 * `mem_bytes`, with no SEU injection, and trust the lr save/restore
 * idiom the linter's lr-integrity pass checks.
 */

#ifndef GFP_ANALYSIS_CERTIFY_H
#define GFP_ANALYSIS_CERTIFY_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "isa/program.h"

namespace gfp {

struct CertifyOptions
{
    /** Guest memory size the program will run with. */
    size_t mem_bytes = 256 * 1024;

    /** The runaway guard the host will pass to Core::run; the cost
     *  certificate is checked against it, and unbounded programs fall
     *  back to it. */
    uint64_t watchdog_max_instrs = 500'000'000;

    /** Analyze gfcfg blobs (taint + algebraic classification). */
    bool check_configs = true;
};

/** Per-basic-block safety certificate — the unit the future JIT
 *  consumes to elide guard checks. */
struct BlockCertificate
{
    uint32_t first = 0;        ///< first word index of the block
    uint32_t last = 0;         ///< last word index (inclusive)
    bool reachable = false;

    bool decode_ok = true;     ///< every reachable word decodes
    bool branch_ok = true;     ///< all transfers land on valid code
    bool mem_ok = true;        ///< every access proven in bounds
    bool gfcfg_ok = true;      ///< no gfcfg trap (blob address + width)
    bool no_smc = true;        ///< no store can hit the code section
    bool gf_configured = true; ///< no reduction GF op before a gfcfg

    /** Human-readable reasons for any failed property. */
    std::vector<std::string> obstacles;

    /** No architectural trap can originate in this block. */
    bool trapFree() const
    {
        return decode_ok && branch_ok && mem_ok && gfcfg_ok;
    }
    /** Trap-free plus the translation-validity disciplines. */
    bool jitSafe() const
    {
        return trapFree() && no_smc && gf_configured;
    }
};

enum class ConfigVerdict : uint8_t {
    kVerifiedField,     ///< blob is an irreducible-polynomial matrix
    kVerifiedCirculant, ///< blob is the circulant ring configuration
    kRefuted,           ///< valid width, but no algebraic classification
    kInvalid,           ///< invalid field width: traps GfConfigCorrupt
    kTainted,           ///< stores may rewrite blob bytes before load
    kOutOfImage,        ///< blob outside initialized data: unverifiable
    kBlobOob,           ///< blob address outside memory: traps
};

const char *configVerdictName(ConfigVerdict v);

/** One gfcfg site's verdict. */
struct ConfigCertificate
{
    uint32_t idx = 0;          ///< word index of the gfcfg
    uint32_t addr = 0;         ///< blob byte address
    ConfigVerdict verdict = ConfigVerdict::kRefuted;
    uint8_t tainted_bytes = 0; ///< bit b = blob byte b may be stored to
    unsigned m = 0;            ///< field width when unpackable
    std::string message;

    /** The algebraic verifier accepts this configuration. */
    bool ok() const
    {
        return verdict == ConfigVerdict::kVerifiedField ||
               verdict == ConfigVerdict::kVerifiedCirculant;
    }
    /** Executing the gfcfg cannot trap. */
    bool trapFree() const
    {
        return ok() || verdict == ConfigVerdict::kRefuted;
    }
};

/** Worst-case execution cost bounds for the whole program. */
struct CostCertificate
{
    /** True: the bounds below are proven from loop bounds; false: the
     *  analysis declined (see reason) and the bounds are the watchdog
     *  fallback. */
    bool bounded = false;

    uint64_t instr_bound = 0;    ///< retired instructions
    uint64_t cycle_bound = 0;    ///< cycles (cost_model.h weights)
    uint64_t gf_cycle_bound = 0; ///< of cycle_bound, GFAU-active cycles

    double energy_nominal_pj = 0; ///< at 0.9 V / 100 MHz
    double energy_07v_pj = 0;     ///< at the scaled 0.7 V point

    uint64_t watchdog = 0;       ///< the cap certified against
    bool within_watchdog = false; ///< instr_bound <= watchdog, proven

    std::string reason;          ///< why unbounded, when !bounded
};

/** Everything certifyProgram() proves about one assembled program. */
struct ProgramCertificate
{
    std::vector<BlockCertificate> blocks;
    std::vector<ConfigCertificate> configs;
    std::vector<LoopBound> loops;
    CostCertificate cost;

    unsigned refined_indirects = 0;
    bool has_gf_ops = false;

    /** Every reachable block is trap-free AND the watchdog cannot
     *  fire: no trap of any kind is reachable (on the GF core, absent
     *  injected faults). */
    bool trap_free = false;

    /** trap_free plus no-SMC, config discipline, and accepted gfcfg
     *  configurations program-wide. */
    bool jit_safe = false;

    /** Decline explanations, one per obstacle keeping trap_free or
     *  jit_safe false. */
    std::vector<std::string> caveats;

    unsigned reachableBlocks() const;
    unsigned trapFreeBlocks() const;
    unsigned boundedLoops() const;

    /** One-paragraph human rendering. */
    std::string summary() const;
};

/** Run the abstract interpreter and emit all certificates. */
ProgramCertificate certifyProgram(const Program &prog,
                                  const CertifyOptions &opts = {});

} // namespace gfp

#endif // GFP_ANALYSIS_CERTIFY_H
