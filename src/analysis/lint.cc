#include "analysis/lint.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>

#include "analysis/cfg.h"
#include "analysis/config_verifier.h"
#include "common/strutil.h"
#include "gfau/config_reg.h"

namespace gfp {

const char *
lintRuleName(LintRule rule)
{
    switch (rule) {
      case LintRule::kUndecodable:        return "undecodable";
      case LintRule::kBadBranchTarget:    return "bad-branch-target";
      case LintRule::kFallOffEnd:         return "fall-off-end";
      case LintRule::kUseBeforeDef:       return "use-before-def";
      case LintRule::kGfBeforeConfig:     return "gf-before-config";
      case LintRule::kUnreachable:        return "unreachable";
      case LintRule::kOobAddress:         return "oob-address";
      case LintRule::kAddrBeyondImage:    return "addr-beyond-image";
      case LintRule::kStoreToCode:        return "store-to-code";
      case LintRule::kInfiniteLoop:       return "infinite-loop";
      case LintRule::kMaybeInfiniteLoop:  return "maybe-infinite-loop";
      case LintRule::kCallNoReturn:       return "call-no-return";
      case LintRule::kLrClobbered:        return "lr-clobbered";
      case LintRule::kConfigBlobOob:      return "config-blob-oob";
      case LintRule::kBadConfigBlob:      return "bad-config-blob";
      case LintRule::kSuspectConfigBlob:  return "suspect-config-blob";
    }
    return "?";
}

std::string
Finding::describe() const
{
    const char *sev = severity == Severity::kError ? "error" : "warning";
    if (line > 0)
        return strprintf("line %d: %s: %s [%s]", line, sev, message.c_str(),
                         lintRuleName(rule));
    return strprintf("pc 0x%x: %s: %s [%s]", pc, sev, message.c_str(),
                     lintRuleName(rule));
}

unsigned
LintReport::errorCount() const
{
    unsigned n = 0;
    for (const Finding &f : findings)
        n += f.severity == Severity::kError;
    return n;
}

unsigned
LintReport::warningCount() const
{
    return static_cast<unsigned>(findings.size()) - errorCount();
}

std::string
LintReport::summary() const
{
    unsigned e = errorCount(), w = warningCount();
    return strprintf("%u error%s, %u warning%s", e, e == 1 ? "" : "s", w,
                     w == 1 ? "" : "s");
}

namespace {

/// Dataflow masks: bits 0..15 are the architectural registers, bit 16
/// is the "GFAU explicitly configured" pseudo-register written by
/// gfcfg and read by the reduction-dependent GF ops.
constexpr uint32_t kCfgBit = 1u << 16;
constexpr uint32_t kAllDefined = (1u << 17) - 1;

uint32_t
defs32(const CfgNode &nd)
{
    uint32_t d = regDefs(nd.in);
    if (nd.in.op == Op::kGfCfg)
        d |= kCfgBit;
    return d;
}

uint32_t
uses32(const CfgNode &nd)
{
    uint32_t u = regUses(nd.in);
    if (usesReductionMatrix(nd.in.op))
        u |= kCfgBit;
    return u;
}

std::string
maskRegNames(uint32_t mask)
{
    std::string out;
    for (unsigned r = 0; r < kNumRegs; ++r) {
        if (mask & (1u << r)) {
            if (!out.empty())
                out += ", ";
            out += regName(r);
        }
    }
    return out;
}

class Linter
{
  public:
    Linter(const Program &prog, const LintOptions &opts)
        : prog_(prog), opts_(opts), cfg_(prog)
    {
    }

    LintReport run();

  private:
    void add(LintRule rule, Severity sev, uint32_t word_idx,
             std::string message);
    void checkStructure();
    void checkUnreachable();
    void computeFunctionSummaries();
    void checkUseBeforeDef();
    void runConstProp();
    void checkAddresses();
    void checkConfigBlob(uint32_t idx);
    void checkLoops();
    void checkCalls();

    const Program &prog_;
    const LintOptions &opts_;
    ControlFlowGraph cfg_;
    LintReport report_;

    /// Per function entry: registers definitely written on every path
    /// from entry to a return (must-def), and registers possibly
    /// written (may-def).  Used to summarize calls.
    std::map<uint32_t, uint32_t> must_def_;
    std::map<uint32_t, uint32_t> may_def_;

    /// Constant-propagation lattice value per register.
    struct CVal
    {
        bool known = false;
        uint32_t v = 0;
        bool operator==(const CVal &o) const
        {
            return known == o.known && (!known || v == o.v);
        }
    };
    struct CState
    {
        std::array<CVal, kNumRegs> reg{};
        bool operator==(const CState &o) const { return reg == o.reg; }
    };
    std::vector<CState> const_in_;
    std::vector<bool> const_visited_;
};

void
Linter::add(LintRule rule, Severity sev, uint32_t word_idx,
            std::string message)
{
    Finding f;
    f.rule = rule;
    f.severity = sev;
    f.pc = word_idx * 4;
    f.line = prog_.lineOfWord(word_idx);
    f.message = std::move(message);
    report_.findings.push_back(std::move(f));
}

LintReport
Linter::run()
{
    checkStructure();
    checkUnreachable();
    computeFunctionSummaries();
    checkUseBeforeDef();
    runConstProp();
    checkAddresses();
    checkLoops();
    checkCalls();

    std::stable_sort(report_.findings.begin(), report_.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.pc < b.pc;
                     });
    if (opts_.max_findings && report_.findings.size() > opts_.max_findings)
        report_.findings.resize(opts_.max_findings);
    return std::move(report_);
}

void
Linter::checkStructure()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    const auto &reach = cfg_.reachable();
    for (uint32_t i = 0; i < n; ++i) {
        const CfgNode &nd = cfg_.node(i);
        if (!reach[i])
            continue;
        if (!nd.valid) {
            add(LintRule::kUndecodable, Severity::kError, i,
                strprintf("reachable word 0x%08x at %s does not decode",
                          prog_.code[i], cfg_.describeNode(i).c_str()));
            continue;
        }
        if (nd.has_target && !nd.target_in_code) {
            add(LintRule::kBadBranchTarget, Severity::kError, i,
                strprintf("%s target lands outside the code section",
                          opName(nd.in.op)));
        }
        // A reachable path that runs past the last code word executes
        // whatever bytes follow (a missing halt).
        bool continues = nd.is_call
            ? (!nd.target_in_code || cfg_.mayReturn(nd.target))
            : nd.falls_through;
        if (continues && i + 1 == n) {
            add(LintRule::kFallOffEnd, Severity::kError, i,
                strprintf("execution can fall past the end of the code "
                          "section after %s (missing halt?)",
                          cfg_.describeNode(i).c_str()));
        }
    }
}

void
Linter::checkUnreachable()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    const auto &reach = cfg_.reachable();
    std::set<uint32_t> labeled(cfg_.labeledNodes().begin(),
                               cfg_.labeledNodes().end());
    // Runs of unreachable code are split at labels, and a run that
    // *starts* at a label is not reported: labeled code is addressable
    // (typically an uncalled routine of a shared helper library), while
    // unlabeled dead code can never execute under any caller.
    uint32_t i = 0;
    while (i < n) {
        if (reach[i]) {
            ++i;
            continue;
        }
        uint32_t start = i;
        ++i;
        while (i < n && !reach[i] && !labeled.count(i))
            ++i;
        if (labeled.count(start))
            continue;
        add(LintRule::kUnreachable, Severity::kWarning, start,
            strprintf("%u unreachable instruction%s starting at %s",
                      i - start, i - start == 1 ? "" : "s",
                      cfg_.describeNode(start).c_str()));
    }
}

void
Linter::computeFunctionSummaries()
{
    // Greatest-fixpoint must-def summaries (optimistic init: everything
    // defined), least-fixpoint may-def summaries (init: nothing).  The
    // two feed the call transfer function below and in the global pass.
    for (uint32_t e : cfg_.functionEntries()) {
        must_def_[e] = kAllDefined;
        may_def_[e] = 0;
    }

    auto transfer = [&](uint32_t idx, uint32_t in) {
        const CfgNode &nd = cfg_.node(idx);
        uint32_t out = in | defs32(nd);
        if (nd.is_call && nd.target_in_code) {
            auto it = must_def_.find(nd.target);
            if (it != must_def_.end())
                out |= it->second;
        }
        return out;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &[entry, summary] : must_def_) {
            std::vector<uint32_t> nodes = cfg_.functionNodes(entry);
            // Dense per-function maps.
            std::map<uint32_t, uint32_t> out_state;
            for (uint32_t idx : nodes)
                out_state[idx] = kAllDefined;
            std::map<uint32_t, std::vector<uint32_t>> preds;
            for (uint32_t idx : nodes)
                for (uint32_t s : cfg_.intraSucc(idx))
                    if (out_state.count(s))
                        preds[s].push_back(idx);
            bool local = true;
            while (local) {
                local = false;
                for (uint32_t idx : nodes) {
                    uint32_t in = idx == entry ? 0u : kAllDefined;
                    if (idx != entry)
                        for (uint32_t p : preds[idx])
                            in &= out_state[p];
                    uint32_t out = transfer(idx, in);
                    if (out != out_state[idx]) {
                        out_state[idx] = out;
                        local = true;
                    }
                }
            }
            uint32_t s = kAllDefined;
            bool any_ret = false;
            for (uint32_t idx : nodes) {
                if (cfg_.node(idx).is_return) {
                    s &= out_state[idx];
                    any_ret = true;
                }
            }
            if (!any_ret)
                s = kAllDefined; // never returns; summary is unused
            if (s != summary) {
                summary = s;
                changed = true;
            }

            // May-def grows monotonically from 0.
            uint32_t md = may_def_[entry];
            for (uint32_t idx : nodes) {
                const CfgNode &nd = cfg_.node(idx);
                md |= defs32(nd);
                if (nd.is_call && nd.target_in_code) {
                    auto it = may_def_.find(nd.target);
                    if (it != may_def_.end())
                        md |= it->second;
                }
            }
            if (md != may_def_[entry]) {
                may_def_[entry] = md;
                changed = true;
            }
        }
    }
}

void
Linter::checkUseBeforeDef()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    if (n == 0)
        return;

    // Forward must-defined analysis over the whole program, meeting by
    // intersection; calls are entered (so callee bodies are checked
    // against the meet of their call-site states) *and* summarized (so
    // the return site credits the callee's must-defs).
    std::vector<uint32_t> in(n, kAllDefined);
    uint32_t entry_mask = 1u << kRegSp;
    if (opts_.entry_args_defined)
        entry_mask |= 0xf; // r0..r3 (Machine::setArgs)
    in[0] = entry_mask;

    std::deque<uint32_t> work{0};
    std::vector<bool> queued(n, false);
    queued[0] = true;
    auto push = [&](uint32_t idx, uint32_t state) {
        uint32_t next = in[idx] & state;
        if (next != in[idx]) {
            in[idx] = next;
            if (!queued[idx]) {
                queued[idx] = true;
                work.push_back(idx);
            }
        }
    };
    while (!work.empty()) {
        uint32_t i = work.front();
        work.pop_front();
        queued[i] = false;
        const CfgNode &nd = cfg_.node(i);
        if (!nd.valid)
            continue;
        uint32_t out = in[i] | defs32(nd);
        if (nd.is_call && nd.target_in_code) {
            // Callee entry sees the pre-call state plus lr.
            push(nd.target, in[i] | (1u << kRegLr));
            auto it = must_def_.find(nd.target);
            if (it != must_def_.end())
                out |= it->second;
        }
        for (uint32_t s : cfg_.intraSucc(i))
            push(s, out);
    }

    const auto &reach = cfg_.reachable();
    for (uint32_t i = 0; i < n; ++i) {
        const CfgNode &nd = cfg_.node(i);
        if (!reach[i] || !nd.valid)
            continue;
        uint32_t missing = uses32(nd) & ~in[i];
        if (missing & 0xffff) {
            add(LintRule::kUseBeforeDef, Severity::kWarning, i,
                strprintf("%s reads %s, which may be used before being "
                          "written",
                          opName(nd.in.op),
                          maskRegNames(missing & 0xffff).c_str()));
        }
        if (missing & kCfgBit) {
            add(LintRule::kGfBeforeConfig, Severity::kWarning, i,
                strprintf("%s may execute before any gfcfg; it would "
                          "silently use the power-on default field "
                          "GF(2^8)/0x11d",
                          opName(nd.in.op)));
        }
    }
}

void
Linter::runConstProp()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    const_in_.assign(n, CState{});
    const_visited_.assign(n, false);
    if (n == 0)
        return;

    auto meet = [](CState &into, const CState &from) {
        bool changed = false;
        for (unsigned r = 0; r < kNumRegs; ++r) {
            CVal &a = into.reg[r];
            const CVal &b = from.reg[r];
            if (a.known && (!b.known || a.v != b.v)) {
                a.known = false;
                changed = true;
            }
        }
        return changed;
    };

    std::deque<uint32_t> work{0};
    std::vector<bool> queued(n, false);
    queued[0] = true;
    const_visited_[0] = true; // entry: everything unknown

    auto push = [&](uint32_t idx, const CState &state) {
        bool changed;
        if (!const_visited_[idx]) {
            const_in_[idx] = state;
            const_visited_[idx] = true;
            changed = true;
        } else {
            changed = meet(const_in_[idx], state);
        }
        if (changed && !queued[idx]) {
            queued[idx] = true;
            work.push_back(idx);
        }
    };

    while (!work.empty()) {
        uint32_t i = work.front();
        work.pop_front();
        queued[i] = false;
        const CfgNode &nd = cfg_.node(i);
        if (!nd.valid)
            continue;
        CState out = const_in_[i];
        const Instr &in = nd.in;
        auto &reg = out.reg;
        auto unknown = [&](unsigned r) { reg[r] = CVal{}; };
        auto setc = [&](unsigned r, uint32_t v) { reg[r] = CVal{true, v}; };
        auto binop = [&](auto f) {
            if (reg[in.rs1].known && reg[in.rs2].known)
                setc(in.rd, f(reg[in.rs1].v, reg[in.rs2].v));
            else
                unknown(in.rd);
        };
        auto immop = [&](auto f) {
            if (reg[in.rs1].known)
                setc(in.rd, f(reg[in.rs1].v, static_cast<uint32_t>(in.imm)));
            else
                unknown(in.rd);
        };
        switch (in.op) {
          case Op::kAdd: binop([](uint32_t a, uint32_t b) { return a + b; }); break;
          case Op::kSub: binop([](uint32_t a, uint32_t b) { return a - b; }); break;
          case Op::kAnd: binop([](uint32_t a, uint32_t b) { return a & b; }); break;
          case Op::kOrr: binop([](uint32_t a, uint32_t b) { return a | b; }); break;
          case Op::kEor: binop([](uint32_t a, uint32_t b) { return a ^ b; }); break;
          case Op::kMul: binop([](uint32_t a, uint32_t b) { return a * b; }); break;
          case Op::kLsl: binop([](uint32_t a, uint32_t b) { return a << (b & 31); }); break;
          case Op::kLsr: binop([](uint32_t a, uint32_t b) { return a >> (b & 31); }); break;
          case Op::kAsr:
            binop([](uint32_t a, uint32_t b) {
                return static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                             (b & 31));
            });
            break;
          case Op::kMov:
            reg[in.rd] = reg[in.rs1];
            break;
          case Op::kAddi: immop([](uint32_t a, uint32_t b) { return a + b; }); break;
          case Op::kSubi: immop([](uint32_t a, uint32_t b) { return a - b; }); break;
          case Op::kAndi: immop([](uint32_t a, uint32_t b) { return a & b; }); break;
          case Op::kOrri: immop([](uint32_t a, uint32_t b) { return a | b; }); break;
          case Op::kEori: immop([](uint32_t a, uint32_t b) { return a ^ b; }); break;
          case Op::kLsli: immop([](uint32_t a, uint32_t b) { return a << (b & 31); }); break;
          case Op::kLsri: immop([](uint32_t a, uint32_t b) { return a >> (b & 31); }); break;
          case Op::kAsri:
            immop([](uint32_t a, uint32_t b) {
                return static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                             (b & 31));
            });
            break;
          case Op::kMovi:
            setc(in.rd, static_cast<uint32_t>(in.imm) & 0xffff);
            break;
          case Op::kMovt:
            if (reg[in.rd].known)
                setc(in.rd, (reg[in.rd].v & 0xffff) |
                                ((static_cast<uint32_t>(in.imm) & 0xffff)
                                 << 16));
            else
                unknown(in.rd);
            break;
          default:
            // Loads, GF ops: destination becomes unknown.  Everything
            // else writes no register here.
            for (unsigned r = 0; r < kNumRegs; ++r)
                if (regDefs(in) & (1u << r))
                    unknown(r);
            break;
        }

        if (nd.is_call && nd.target_in_code) {
            // Callee sees the pre-call constants (lr holds a code
            // address we do not track).
            CState callee = const_in_[i];
            callee.reg[kRegLr] = CVal{};
            push(nd.target, callee);
            // After the call, anything the callee may write is unknown.
            auto it = may_def_.find(nd.target);
            uint32_t clobber = (1u << kRegLr) |
                               (it != may_def_.end() ? it->second : 0xffffu);
            for (unsigned r = 0; r < kNumRegs; ++r)
                if (clobber & (1u << r))
                    out.reg[r] = CVal{};
        }
        for (uint32_t s : cfg_.intraSucc(i))
            push(s, out);
    }
}

void
Linter::checkAddresses()
{
    const uint32_t n = static_cast<uint32_t>(cfg_.size());
    const auto &reach = cfg_.reachable();
    const uint64_t code_bytes = uint64_t{n} * 4;
    const uint64_t image_end = prog_.footprint();

    for (uint32_t i = 0; i < n; ++i) {
        const CfgNode &nd = cfg_.node(i);
        if (!reach[i] || !nd.valid || !const_visited_[i])
            continue;
        const Instr &in = nd.in;
        const auto &reg = const_in_[i].reg;

        if (in.op == Op::kGfCfg) {
            if (opts_.check_config_blobs)
                checkConfigBlob(i);
            continue;
        }

        bool is_store = false;
        unsigned size = 0;
        bool have_addr = false;
        uint32_t addr = 0;
        switch (in.op) {
          case Op::kLdr: case Op::kStr: size = 4; break;
          case Op::kLdrh: case Op::kStrh: size = 2; break;
          case Op::kLdrb: case Op::kStrb: size = 1; break;
          case Op::kLdrr: case Op::kStrr: size = 4; break;
          case Op::kLdrhr: case Op::kStrhr: size = 2; break;
          case Op::kLdrbr: case Op::kStrbr: size = 1; break;
          default: continue;
        }
        switch (in.op) {
          case Op::kStr: case Op::kStrh: case Op::kStrb:
          case Op::kStrr: case Op::kStrhr: case Op::kStrbr:
            is_store = true;
            break;
          default: break;
        }
        switch (in.op) {
          case Op::kLdr: case Op::kStr: case Op::kLdrh: case Op::kStrh:
          case Op::kLdrb: case Op::kStrb:
            if (reg[in.rs1].known) {
                have_addr = true;
                addr = reg[in.rs1].v + static_cast<uint32_t>(in.imm);
            }
            break;
          default:
            if (reg[in.rs1].known && reg[in.rs2].known) {
                have_addr = true;
                addr = reg[in.rs1].v + reg[in.rs2].v;
            }
            break;
        }
        if (!have_addr)
            continue;

        const uint64_t end = uint64_t{addr} + size;
        if (end > opts_.mem_bytes) {
            add(LintRule::kOobAddress, Severity::kError, i,
                strprintf("%s at constant address 0x%x is outside the "
                          "%zu-byte memory (would trap OutOfRangeAccess)",
                          opName(in.op), addr, opts_.mem_bytes));
        } else if (is_store && addr < code_bytes) {
            add(LintRule::kStoreToCode, Severity::kWarning, i,
                strprintf("%s at constant address 0x%x writes into the "
                          "code section (self-modifying code)",
                          opName(in.op), addr));
        } else if (addr >= image_end) {
            add(LintRule::kAddrBeyondImage, Severity::kWarning, i,
                strprintf("%s at constant address 0x%x is past the "
                          "program image (footprint 0x%zx); such scratch "
                          "memory is legal but usually a bug",
                          opName(in.op), addr,
                          static_cast<size_t>(image_end)));
        }
    }
}

void
Linter::checkConfigBlob(uint32_t idx)
{
    const CfgNode &nd = cfg_.node(idx);
    const uint32_t addr = static_cast<uint32_t>(nd.in.imm);
    if (uint64_t{addr} + 8 > opts_.mem_bytes) {
        add(LintRule::kConfigBlobOob, Severity::kError, idx,
            strprintf("gfcfg blob address 0x%x is outside the %zu-byte "
                      "memory",
                      addr, opts_.mem_bytes));
        return;
    }

    const uint64_t image_end = prog_.footprint();
    if (addr < prog_.data_base || uint64_t{addr} + 8 > image_end) {
        add(LintRule::kSuspectConfigBlob, Severity::kWarning, idx,
            strprintf("gfcfg reads its blob from 0x%x, outside the "
                      "initialized data section [0x%x, 0x%zx); contents "
                      "cannot be validated statically",
                      addr, prog_.data_base,
                      static_cast<size_t>(image_end)));
        return;
    }

    uint64_t blob = 0;
    for (unsigned b = 0; b < 8; ++b)
        blob |= uint64_t{prog_.data[addr - prog_.data_base + b]} << (8 * b);

    if (blob == 0) {
        add(LintRule::kSuspectConfigBlob, Severity::kWarning, idx,
            strprintf("gfcfg blob at 0x%x is all-zero — invalid unless "
                      "the host patches it before launch",
                      addr));
        return;
    }

    GFConfig cfg;
    if (!GFConfig::tryUnpack(blob, cfg)) {
        add(LintRule::kBadConfigBlob, Severity::kError, idx,
            strprintf("gfcfg blob at 0x%x carries invalid field width "
                      "m=%u (would trap GfConfigCorrupt)",
                      addr, cfg.m));
        return;
    }

    ConfigClassification cls = classifyConfig(cfg);
    if (cls.cls == ConfigClass::kUnknown) {
        add(LintRule::kSuspectConfigBlob, Severity::kWarning, idx,
            strprintf("gfcfg blob at 0x%x (m=%u) matches no irreducible "
                      "polynomial's reduction matrix and is not the "
                      "circulant ring configuration",
                      addr, cfg.m));
    }
}

void
Linter::checkLoops()
{
    // A branch that targets itself is a special case the SCC heuristics
    // below cannot see through (it may sit inside a larger loop that
    // does update flags): between two executions of the *same* branch
    // nothing runs, so a taken iteration repeats forever.
    const auto &reach = cfg_.reachable();
    for (uint32_t i = 0; i < cfg_.size(); ++i) {
        const CfgNode &nd = cfg_.node(i);
        if (!reach[i] || !nd.valid || !nd.has_target || !nd.target_in_code)
            continue;
        if (nd.target == i && nd.in.op != Op::kBl) {
            add(LintRule::kInfiniteLoop, Severity::kError, i,
                strprintf("%s at %s branches to itself%s",
                          opName(nd.in.op), cfg_.describeNode(i).c_str(),
                          nd.in.op == Op::kB
                              ? ""
                              : " and nothing can change the flags it "
                                "tests"));
        }
    }

    for (const auto &scc : cfg_.cyclicSccs()) {
        if (scc.size() == 1)
            continue; // self-loops handled above
        std::set<uint32_t> members(scc.begin(), scc.end());
        bool has_exit = false;
        bool has_flag_setter = false;
        bool has_call = false;
        bool has_indirect = false;
        for (uint32_t i : scc) {
            const CfgNode &nd = cfg_.node(i);
            const Op op = nd.in.op;
            if (op == Op::kCmp || op == Op::kCmpi)
                has_flag_setter = true;
            if (nd.is_call)
                has_call = true; // callee may cmp — flags are global
            if (nd.is_indirect)
                has_indirect = true;
            std::vector<uint32_t> succ = cfg_.intraSucc(i);
            if (succ.empty() && nd.valid)
                has_exit = true; // halt / ret / non-returning call
            for (uint32_t s : succ)
                if (!members.count(s))
                    has_exit = true;
        }
        if (has_indirect)
            continue; // over-approximated edges; stay quiet

        const std::string where = cfg_.describeNode(scc[0]);
        if (!has_exit) {
            add(LintRule::kInfiniteLoop, Severity::kError, scc[0],
                strprintf("loop at %s (%zu instruction%s) has no exit "
                          "path",
                          where.c_str(), scc.size(),
                          scc.size() == 1 ? "" : "s"));
        } else if (!has_flag_setter && !has_call) {
            // The loop can only leave through conditional branches, but
            // nothing inside ever updates the flags — the exit
            // condition is frozen at loop entry.
            add(LintRule::kMaybeInfiniteLoop, Severity::kWarning, scc[0],
                strprintf("loop at %s never updates the flags; its "
                          "conditional exit is decided before the loop "
                          "is entered",
                          where.c_str()));
        }
    }
}

void
Linter::checkCalls()
{
    const auto &reach = cfg_.reachable();

    std::set<uint32_t> reported;
    for (uint32_t cs : cfg_.callSites()) {
        if (!reach[cs])
            continue;
        const CfgNode &nd = cfg_.node(cs);
        if (!nd.target_in_code || cfg_.mayReturn(nd.target))
            continue;
        if (!reported.insert(nd.target).second)
            continue;
        add(LintRule::kCallNoReturn, Severity::kWarning, cs,
            strprintf("call to %s never returns (no ret/jr lr reachable "
                      "from it)",
                      cfg_.describeNode(nd.target).c_str()));
    }

    // lr-integrity: a called function must reach its returns with the
    // lr value it was entered with — a nested bl (or using lr as
    // scratch) without a save/restore sends `ret` somewhere stale.
    for (uint32_t entry : cfg_.functionEntries()) {
        if (!reach[entry] || !cfg_.mayReturn(entry))
            continue;
        std::vector<uint32_t> nodes = cfg_.functionNodes(entry);
        std::map<uint32_t, char> dirty_in;
        for (uint32_t idx : nodes)
            dirty_in[idx] = 0;
        bool changed = true;
        while (changed) {
            changed = false;
            for (uint32_t idx : nodes) {
                const CfgNode &nd = cfg_.node(idx);
                if (!nd.valid)
                    continue;
                char out = dirty_in[idx];
                if (nd.is_call) {
                    out = 1;
                } else if (regDefs(nd.in) & (1u << kRegLr)) {
                    // Word loads and register moves into lr are the
                    // restore idioms; anything else taints it.
                    const Op op = nd.in.op;
                    bool restore = op == Op::kLdr || op == Op::kLdrr ||
                                   op == Op::kMov;
                    out = restore ? 0 : 1;
                }
                for (uint32_t s : cfg_.intraSucc(idx)) {
                    auto it = dirty_in.find(s);
                    if (it != dirty_in.end() && out && !it->second) {
                        it->second = 1;
                        changed = true;
                    }
                }
            }
        }
        for (uint32_t idx : nodes) {
            const CfgNode &nd = cfg_.node(idx);
            if (nd.is_return && dirty_in[idx]) {
                add(LintRule::kLrClobbered, Severity::kWarning, idx,
                    strprintf("function %s may return through a "
                              "clobbered lr (nested bl without a "
                              "save/restore?)",
                              cfg_.describeNode(entry).c_str()));
                break; // one finding per function
            }
        }
    }
}

} // namespace

LintReport
lintProgram(const Program &prog, const LintOptions &opts)
{
    Linter linter(prog, opts);
    return linter.run();
}

} // namespace gfp
