#include "analysis/config_verifier.h"

#include <cstdio>

#include "gf/polys.h"
#include "gfau/units.h"

namespace gfp {

uint32_t
polyModReduce(uint32_t e_power, unsigned m, uint32_t poly)
{
    // Long division of x^e_power by r(x): repeatedly cancel the top
    // term with x^(deg-m) * r(x) until the degree drops below m.
    if (e_power < 64 && m > 0) {
        uint64_t v = 1ull << e_power;
        uint64_t r = poly;
        for (int bit = 63; bit >= static_cast<int>(m); --bit)
            if (v & (1ull << bit))
                v ^= r << (bit - m);
        return static_cast<uint32_t>(v);
    }
    return 0;
}

std::string
MatrixProof::describe() const
{
    char buf[160];
    if (ok) {
        std::snprintf(buf, sizeof(buf),
                      "m=%u poly=0x%x: reduction matrix proven correct", m,
                      poly);
    } else {
        std::snprintf(buf, sizeof(buf), "m=%u poly=0x%x: FAIL (%s)", m, poly,
                      detail.c_str());
    }
    return buf;
}

namespace {

/// Column i of the hardware's linear reduction map for width cfg.m:
/// identity for the low m bits, P column j for product bit m+j.
uint32_t
hardwareColumn(const GFConfig &cfg, unsigned i)
{
    if (i < cfg.m)
        return 1u << i;
    return cfg.p_cols[i - cfg.m];
}

/// The matrix-model reduction: apply the hardware columns to every set
/// bit of a full product.  Used as the linear abstraction the
/// structural ReductionStage is checked against.
uint32_t
matrixReduce(const GFConfig &cfg, uint32_t full_product)
{
    uint32_t out = 0;
    for (unsigned i = 0; i < 2 * cfg.m - 1; ++i)
        if (full_product & (1u << i))
            out ^= hardwareColumn(cfg, i);
    return out;
}

MatrixProof
fail(const GFConfig &cfg, uint32_t poly, std::string detail)
{
    MatrixProof p;
    p.ok = false;
    p.m = cfg.m;
    p.poly = poly;
    p.detail = std::move(detail);
    return p;
}

std::string
columnMismatch(const char *what, unsigned bit, uint32_t got, uint32_t want)
{
    char buf[120];
    std::snprintf(buf, sizeof(buf),
                  "%s for product bit %u is 0x%02x, expected x^%u mod r = "
                  "0x%02x",
                  what, bit, got, bit, want);
    return buf;
}

} // namespace

MatrixProof
verifyReductionMatrix(const GFConfig &cfg, uint32_t poly)
{
    MatrixProof proof;
    proof.m = cfg.m;
    proof.poly = poly;

    if (!cfg.valid())
        return fail(cfg, poly, "field width outside 2..8");
    unsigned deg = 31;
    while (deg > 0 && !(poly & (1u << deg)))
        --deg;
    if (deg != cfg.m)
        return fail(cfg, poly, "polynomial degree does not match width m");

    // Both maps are GF(2)-linear in the (2m-1)-bit product, so equality
    // on the 2m-1 basis vectors proves equality on all 2^(2m-1) inputs.
    for (unsigned i = 0; i < 2 * cfg.m - 1; ++i) {
        uint32_t hw = hardwareColumn(cfg, i);
        uint32_t golden = polyModReduce(i, cfg.m, poly);
        if (hw != golden)
            return fail(cfg, poly,
                        columnMismatch("hardware column", i, hw, golden));
    }
    return proof;
}

MatrixProof
verifyReductionStage(const GFConfig &cfg, uint32_t poly, bool exhaustive)
{
    MatrixProof proof;
    proof.m = cfg.m;
    proof.poly = poly;

    if (!cfg.valid())
        return fail(cfg, poly, "field width outside 2..8");

    const unsigned bits = 2 * cfg.m - 1;

    // (1) Basis: the implementation agrees with the golden reduction on
    //     every single-bit product.
    for (unsigned i = 0; i < bits; ++i) {
        uint32_t got = ReductionStage::reduce(
            static_cast<uint16_t>(1u << i), cfg);
        uint32_t want = polyModReduce(i, cfg.m, poly);
        if (got != want)
            return fail(cfg, poly,
                        columnMismatch("ReductionStage basis output", i, got,
                                       want));
    }

    // (2) Linearity witness: on every two-bit superposition the
    //     implementation equals the XOR of its basis responses.  Basis
    //     agreement + linearity is what licenses extrapolating the
    //     basis proof to all products.
    for (unsigned i = 0; i < bits; ++i) {
        for (unsigned j = i + 1; j < bits; ++j) {
            uint16_t v = static_cast<uint16_t>((1u << i) | (1u << j));
            uint32_t got = ReductionStage::reduce(v, cfg);
            uint32_t want = matrixReduce(cfg, v);
            if (got != want) {
                char buf[120];
                std::snprintf(buf, sizeof(buf),
                              "reduction of bits {%u,%u} is 0x%02x, not the "
                              "XOR of its basis responses 0x%02x — stage is "
                              "not linear",
                              i, j, got, want);
                return fail(cfg, poly, buf);
            }
        }
    }

    if (exhaustive) {
        // (3) Belt and braces: sweep every (2m-1)-bit product.
        for (uint32_t v = 0; v < (1u << bits); ++v) {
            uint32_t got = ReductionStage::reduce(static_cast<uint16_t>(v),
                                                  cfg);
            uint32_t want = matrixReduce(cfg, v);
            if (got != want) {
                char buf[96];
                std::snprintf(buf, sizeof(buf),
                              "exhaustive sweep: reduce(0x%04x) = 0x%02x, "
                              "matrix model says 0x%02x",
                              v, got, want);
                return fail(cfg, poly, buf);
            }
        }
    }
    return proof;
}

VerifySummary
verifyAllFields(bool exhaustive)
{
    VerifySummary summary;
    for (unsigned m = 2; m <= 8; ++m) {
        for (uint32_t poly : irreduciblePolys(m)) {
            GFConfig cfg = GFConfig::derive(m, poly);
            MatrixProof alg = verifyReductionMatrix(cfg, poly);
            if (!alg.ok)
                summary.failures.push_back(alg);
            MatrixProof impl = verifyReductionStage(cfg, poly, exhaustive);
            if (!impl.ok)
                summary.failures.push_back(impl);
            ++summary.fields_checked;
        }
    }
    return summary;
}

ConfigClassification
classifyConfig(const GFConfig &cfg)
{
    ConfigClassification result;
    result.m = cfg.m;
    if (!cfg.valid()) {
        result.cls = ConfigClass::kInvalid;
        return result;
    }

    // A width-m config only ever routes P columns 0..m-2; compare those.
    for (uint32_t poly : irreduciblePolys(cfg.m)) {
        bool match = true;
        for (unsigned j = 0; j + 1 < cfg.m && match; ++j)
            match = cfg.p_cols[j] == (polyModReduce(cfg.m + j, cfg.m, poly) &
                                      0xff);
        if (match) {
            result.cls = ConfigClass::kField;
            result.poly = poly;
            return result;
        }
    }

    // Circulant ring mod x^m + 1: bit m+j wraps to bit j.
    bool circulant = true;
    for (unsigned j = 0; j + 1 < cfg.m && circulant; ++j)
        circulant = cfg.p_cols[j] == (1u << j);
    if (circulant) {
        result.cls = ConfigClass::kCirculant;
        return result;
    }

    result.cls = ConfigClass::kUnknown;
    return result;
}

} // namespace gfp
