/**
 * @file
 * Control-flow graph over an assembled GFP Program, the substrate for
 * the guest-program static analyzer (analysis/lint.h).
 *
 * The graph is built at instruction granularity — GFP programs are
 * small (kernels are a few hundred words), so one node per code word is
 * simpler and loses nothing.  Structure captured:
 *
 *  - decode of every code word (undecodable words become invalid nodes
 *    with no successors — exactly the words the core would trap on);
 *  - direct edges: fall-through, conditional/unconditional PC-relative
 *    branch targets;
 *  - calls: `bl` sites and their targets form a call graph; for
 *    intraprocedural walks a call is summarized as an edge to its
 *    return site, taken only if the callee can actually return
 *    (mayReturn fixpoint below);
 *  - returns: `ret` and `jr lr` end a function;
 *  - indirect jumps: `jr rX` is over-approximated as "may go to any
 *    labeled instruction" — the only addresses a well-formed program
 *    can name are its labels;
 *  - interprocedural reachability from the entry point at pc 0.
 *
 * Everything here is derived purely from the Program bytes + symbol
 * table; the simulator is never consulted.
 */

#ifndef GFP_ANALYSIS_CFG_H
#define GFP_ANALYSIS_CFG_H

#include <cstdint>
#include <map>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"

namespace gfp {

/** Registers read by @p in, as a bit mask (bit i = register i). */
uint16_t regUses(const Instr &in);

/** Registers written by @p in, as a bit mask. */
uint16_t regDefs(const Instr &in);

/** True for the GF ops whose result depends on the reduction matrix
 *  (gfmuls/gfinvs/gfsqs/gfpows).  gfadds is a pure XOR and gf32mul
 *  data-gates the reduction stage, so neither needs a configuration. */
bool usesReductionMatrix(Op op);

/** One code word of the program under analysis. */
struct CfgNode
{
    Instr in;                  ///< decoded instruction (when valid)
    bool valid = false;        ///< word decodes to an instruction
    bool leader = false;       ///< starts a basic block
    bool falls_through = false; ///< execution can continue at idx + 1
    bool has_target = false;   ///< direct branch/call target below
    uint32_t target = 0;       ///< word index of the branch/call target
    bool target_in_code = true; ///< target lands inside the code section
    bool is_call = false;      ///< bl
    bool is_return = false;    ///< ret, or jr lr
    bool is_indirect = false;  ///< jr rX with rX != lr
    bool is_halt = false;

    uint32_t pc() const { return pc_; }
    uint32_t pc_ = 0;
};

class ControlFlowGraph
{
  public:
    /** Build the CFG for @p prog.  Never fails: undecodable words and
     *  out-of-range targets are recorded, not rejected. */
    explicit ControlFlowGraph(const Program &prog);

    const Program &program() const { return *prog_; }
    size_t size() const { return nodes_.size(); }
    const CfgNode &node(uint32_t idx) const { return nodes_[idx]; }
    const std::vector<CfgNode> &nodes() const { return nodes_; }

    /** Word indices of every labeled instruction (indirect-jump
     *  over-approximation set). */
    const std::vector<uint32_t> &labeledNodes() const { return labeled_; }

    /** Word indices of every `bl` instruction. */
    const std::vector<uint32_t> &callSites() const { return call_sites_; }

    /** Word indices of every distinct `bl` target (function entries). */
    const std::vector<uint32_t> &functionEntries() const { return entries_; }

    /**
     * Intraprocedural successors of node @p idx: fall-through and
     * branch-target edges; a call contributes its return site when the
     * callee mayReturn(); returns and halts have none; an indirect jump
     * contributes every labeled node.  Invalid nodes have none.
     */
    std::vector<uint32_t> intraSucc(uint32_t idx) const;

    /** True if the function entered at @p entry can reach a ret/jr-lr.
     *  Queries on non-entry nodes return the value for the walk started
     *  there, which is what a fall-into-function analysis wants. */
    bool mayReturn(uint32_t entry) const;

    /** Nodes of the function entered at @p entry: reachable from it via
     *  intraprocedural edges (calls summarized, returns terminal). */
    std::vector<uint32_t> functionNodes(uint32_t entry) const;

    /** Interprocedural reachability from pc 0: calls enter the callee,
     *  returns resume at every return site of the callee's callers. */
    const std::vector<bool> &reachable() const { return reachable_; }

    /**
     * Replace the labeled-nodes over-approximation of the indirect jump
     * at @p idx with a proven target set (from the abstract
     * interpreter's const-propagation of the jump register / jump
     * table).  Downstream structure (mayReturn, reachability) is
     * recomputed; the refined targets become block leaders.  Passing an
     * empty set is legal and means "no in-code target is feasible" —
     * the node then has no successors, like a halt.
     */
    void refineIndirectTargets(uint32_t idx, std::vector<uint32_t> targets);

    /** True if refineIndirectTargets() has been applied to @p idx. */
    bool indirectRefined(uint32_t idx) const
    {
        return indirect_targets_.count(idx) != 0;
    }

    /**
     * Strongly connected components of the *intraprocedural* edge
     * relation, restricted to reachable nodes.  Each inner vector is
     * one SCC; only SCCs that contain a cycle (more than one node, or a
     * self-loop) are returned.
     */
    std::vector<std::vector<uint32_t>> cyclicSccs() const;

    /** Human-readable location of node @p idx: nearest preceding label
     *  plus offset, e.g. "loop+0x8", or the raw pc. */
    std::string describeNode(uint32_t idx) const;

  private:
    void decodeAll();
    void markStructure();
    void computeMayReturn();
    void computeReachable();

    const Program *prog_;
    std::vector<CfgNode> nodes_;
    std::map<uint32_t, std::vector<uint32_t>> indirect_targets_;
    std::vector<uint32_t> labeled_;
    std::vector<uint32_t> call_sites_;
    std::vector<uint32_t> entries_;
    std::vector<bool> may_return_;  ///< per node: a walk from here rets
    std::vector<bool> reachable_;
};

} // namespace gfp

#endif // GFP_ANALYSIS_CFG_H
