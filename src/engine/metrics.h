/**
 * @file
 * A small metrics registry for the batch engine: named counters,
 * gauges, and histograms, snapshotted to JSON.
 *
 * The registry is deliberately schema-free — callers create a metric
 * by touching its name — and thread-safe, so engine workers can record
 * into it concurrently.  Conventions used by BatchEngine (documented
 * in docs/PROFILING.md):
 *
 *   counters    jobs_total, jobs_failed_total, trap_<kind>_total
 *               (run()-scoped; recorded when a run's telemetry lands);
 *               jobs_submitted_total, jobs_completed_total,
 *               jobs_trapped_total (recorded live at submission and
 *               batch completion, so they accumulate across
 *               submitBatch()/wait() cycles — the scheduler invariant
 *               is submitted == completed + trapped once drained)
 *   gauges      workers, jobs_per_sec, queue_depth_peak,
 *               worker<i>_utilization (busy time / wall time),
 *               shard<i>_queue_depth (per-shard pending jobs; zero
 *               once the pool is drained),
 *               steals / jobs_stolen / steal_failures and
 *               worker<i>_steals (work-stealing activity; run-scoped
 *               after run(), cumulative across submitBatch()/wait())
 *   histograms  job_host_us (per-job host wall-clock, microseconds),
 *               job_guest_cycles,
 *               submit_batch_jobs (jobs pushed into a shard per
 *               submission lock acquisition)
 *
 * Histograms keep count/sum/min/max plus power-of-two buckets
 * (le 1, 2, 4, ... 2^30), enough for latency shape without a
 * quantile sketch.
 */

#ifndef GFP_ENGINE_METRICS_H
#define GFP_ENGINE_METRICS_H

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gfp {

class Metrics
{
  public:
    static constexpr unsigned kHistBuckets = 31; ///< le 2^0 .. 2^29, +inf

    struct Histogram
    {
        uint64_t count = 0;
        double sum = 0;
        double min = 0;
        double max = 0;
        /** bucket[i] counts observations <= 2^i; the last is +inf. */
        std::array<uint64_t, kHistBuckets> buckets{};
    };

    /** Add @p delta (default 1) to a monotonic counter. */
    void add(const std::string &name, double delta = 1.0);

    /** Set a gauge to its current value. */
    void set(const std::string &name, double value);

    /** Record one observation into a histogram. */
    void observe(const std::string &name, double value);

    double counter(const std::string &name) const;
    double gauge(const std::string &name) const;
    Histogram histogram(const std::string &name) const;

    /**
     * Estimate the @p q quantile (0 < q < 1, e.g. 0.5 / 0.99) of a
     * histogram from its power-of-two buckets by log-linear
     * interpolation inside the containing bucket, clamped to the
     * observed [min, max].  Exact when all mass is in one bucket;
     * otherwise within a factor of 2 by construction — enough for the
     * p50/p99 latency reporting the serving layer does.  Returns 0 for
     * an empty histogram.
     */
    static double quantile(const Histogram &h, double q);

    void clear();

    /** {"counters": {...}, "gauges": {...}, "histograms": {...}} */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace gfp

#endif // GFP_ENGINE_METRICS_H
