/**
 * @file
 * Multi-threaded batch execution engine.
 *
 * The ROADMAP's production target is serving decode/crypto traffic at
 * scale, but a single Machine interprets one guest program at a time on
 * one thread.  A BatchEngine runs many *independent* jobs — RS/BCH
 * codeword decodes, AES blocks, ECDH exchanges — over a pool of worker
 * threads.  Each worker owns one reusable Machine built from the shared
 * Program and recycles it with Machine::fullReset() between jobs
 * (reset-and-rerun; the program is assembled exactly once per engine,
 * predecoded once per worker).
 *
 * Isolation guarantees:
 *  - jobs are data-driven (label-addressed input/output byte blocks),
 *    so nothing host-side is shared between workers during a run;
 *  - a faulting job (trap, watchdog, injected SEU) yields a JobResult
 *    carrying the Trap and no outputs — it never aborts the host, and
 *    fullReset() guarantees the *next* job on that worker starts from a
 *    pristine machine, so one bad job cannot poison the batch;
 *  - results are returned in job order regardless of which worker ran
 *    a job, and are bit-for-bit identical to serial execution.
 *
 * Typical use:
 *
 *     BatchEngine eng(syndromeBatchProgram(field, n, 2 * t));
 *     std::vector<Job> jobs;
 *     for (const auto &rx : received_words)
 *         jobs.push_back(syndromeJob(rx, 2 * t));
 *     for (const JobResult &r : eng.run(jobs))
 *         if (r.ok()) use(r.bytes("synd"));
 */

#ifndef GFP_ENGINE_BATCH_ENGINE_H
#define GFP_ENGINE_BATCH_ENGINE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/trace_event.h"

#include "engine/metrics.h"
#include "isa/program.h"
#include "sim/cpu.h"
#include "sim/fault_injector.h"
#include "sim/machine.h"

namespace gfp {

/**
 * One independent guest job: inputs to write before the run, outputs to
 * read back after a clean halt.  All labels resolve through the shared
 * program's symbol table; an unknown label is host misuse and fatal.
 */
struct Job
{
    /** r0..r3 call arguments (at most 4). */
    std::vector<uint32_t> args;

    /** Byte blocks written to labeled buffers before the run. */
    std::vector<std::pair<std::string, std::vector<uint8_t>>> inputs;

    /** Single words written to labeled buffers before the run. */
    std::vector<std::pair<std::string, uint32_t>> word_inputs;

    /** Labeled byte blocks to read back: (label, length). */
    std::vector<std::pair<std::string, size_t>> outputs;

    /** Labeled single words to read back. */
    std::vector<std::string> word_outputs;

    /** Optional SEU schedule delivered during this job only (see
     *  sim/fault_injector.h); the injected flips are confined to this
     *  job's machine state and wiped by the inter-job fullReset(). */
    std::vector<FaultEvent> faults;

    /** Per-job watchdog override; 0 uses the engine default. */
    uint64_t max_instrs = 0;
};

/** Outcome of one job.  Trap-isolating: a faulted job reports its Trap
 *  and carries no outputs, and neighboring jobs are unaffected. */
struct JobResult
{
    Trap trap;           ///< kind == kNone when the job halted cleanly
    CycleStats stats;    ///< guest cycle statistics of this job's run
    unsigned worker = 0; ///< index of the worker that ran the job

    /** Host wall-clock telemetry, relative to the start of the run()
     *  (or runSerial()) call that produced this result: when this job
     *  began on its worker and how long it held the worker.  Feeds the
     *  engine's Metrics histograms and trace export. */
    double start_seconds = 0;
    double host_seconds = 0;

    /** Outputs read back after a clean halt (empty if trapped). */
    std::map<std::string, std::vector<uint8_t>> outputs;
    std::map<std::string, uint32_t> words;

    bool ok() const { return !trap; }

    /** Convenience accessors; fatal if the label was not requested. */
    const std::vector<uint8_t> &bytes(const std::string &label) const;
    uint32_t word(const std::string &label) const;
};

/** A program plus the core variant it targets — what an engine runs. */
struct BatchProgram
{
    Program program;
    CoreKind kind = CoreKind::kGfProcessor;
};

class BatchEngine
{
  public:
    /** Trace pid for engine worker tracks (the guest tracer uses 1). */
    static constexpr int kEnginePid = 2;

    struct Options
    {
        /** Worker threads; 0 picks std::thread::hardware_concurrency().
         */
        unsigned threads = 0;

        /** Default per-job instruction watchdog. */
        uint64_t max_instrs = 500'000'000;

        /** Memory size of each worker's machine. */
        size_t mem_bytes = 256 * 1024;

        /** Use the fused threaded-dispatch fast path on each worker's
         *  core (bit-exact with single stepping; off is only useful for
         *  differential testing and debugging). */
        bool fast_dispatch = true;
    };

    BatchEngine(BatchProgram bp, Options opts);
    BatchEngine(Program program, CoreKind kind, Options opts);
    BatchEngine(const std::string &asm_source, CoreKind kind,
                Options opts);
    // Defaulted-Options overloads (a `= {}` default argument for a
    // nested aggregate with member initializers trips GCC here).
    explicit BatchEngine(BatchProgram bp);
    BatchEngine(Program program, CoreKind kind);
    BatchEngine(const std::string &asm_source, CoreKind kind);

    /** Worker threads a run() will use. */
    unsigned threads() const { return threads_; }

    const Program &program() const { return program_; }
    CoreKind kind() const { return kind_; }

    /**
     * Run all jobs across the worker pool.  Results are indexed like
     * @p jobs.  Never throws on guest faults; a trapped job is reported
     * in its JobResult.
     */
    std::vector<JobResult> run(const std::vector<Job> &jobs);

    /**
     * Run the same jobs in order on a single reusable machine — the
     * differential reference for the parallel path (tests assert
     * bit-for-bit parity between run() and runSerial()).
     */
    std::vector<JobResult> runSerial(const std::vector<Job> &jobs);

    /** Per-worker aggregated guest cycle statistics of the last run()
     *  (runSerial() fills a single slot). */
    const std::vector<CycleStats> &workerStats() const
    {
        return worker_stats_;
    }

    /**
     * Telemetry of the last run() / runSerial(): job and trap
     * counters, jobs/s, per-worker utilization gauges, and host-side
     * latency histograms (see engine/metrics.h for the naming
     * conventions).  Reset at the start of every run.
     */
    const Metrics &metrics() const { return metrics_; }

    /**
     * Attach a trace log (common/trace_event.h); every subsequent run
     * appends one "X" span per job on its worker's track (pid 2, one
     * tid per worker; args carry queue wait and trap kind) plus a
     * queue-depth counter series.  nullptr detaches.  The caller owns
     * the log and must keep it alive while attached.
     */
    void setTraceLog(TraceLog *log) { trace_log_ = log; }

  private:
    /** Recycle @p machine and run one job on it; start/host seconds
     *  are measured against @p epoch. */
    JobResult runOne(Machine &machine, const Job &job,
                     std::chrono::steady_clock::time_point epoch) const;

    /** Fill metrics_ and the attached trace log from a finished run. */
    void recordRunTelemetry(const std::vector<JobResult> &results,
                            double elapsed_seconds, unsigned n_workers);

    Program program_;
    CoreKind kind_;
    Options opts_;
    unsigned threads_;
    std::vector<CycleStats> worker_stats_;
    Metrics metrics_;
    TraceLog *trace_log_ = nullptr;
};

} // namespace gfp

#endif // GFP_ENGINE_BATCH_ENGINE_H
