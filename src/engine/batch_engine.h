/**
 * @file
 * Multi-threaded batch execution engine with sharded work stealing.
 *
 * The ROADMAP's production target is serving decode/crypto traffic at
 * scale, but a single Machine interprets one guest program at a time on
 * one thread.  A BatchEngine runs many *independent* jobs — RS/BCH
 * codeword decodes, AES blocks, ECDH exchanges — over a persistent pool
 * of worker threads.  Each worker owns one reusable Machine built from
 * the shared Program and recycles it with Machine::fullReset() between
 * jobs (reset-and-rerun; the program is assembled exactly once per
 * engine, predecoded once per worker).
 *
 * Scheduling topology (this replaced a single contended work queue and
 * a shared results vector):
 *
 *  - every worker owns a *shard*: a deque of pending jobs behind its
 *    own lock, so submission and claiming never cross one global lock;
 *  - submitBatch() slices a batch into per-shard runs — N jobs pushed
 *    per lock acquisition — instead of queueing jobs one at a time;
 *  - a worker drains its own shard oldest-first; when empty it *steals*
 *    the newer half of a victim's shard (Chase–Lev-style ends: owner at
 *    the front, thieves at the back; per-shard locks stand in for the
 *    lock-free protocol because batches are pushed by external
 *    producers, which breaks the single-owner-push invariant the
 *    original algorithm needs);
 *  - each worker appends finished JobResults to a per-worker *result
 *    arena* of the owning batch; arenas are drained into the job-ordered
 *    result vector only when the batch completes, so workers never
 *    contend on a shared results structure;
 *  - completion is an async signal (atomic countdown + condition
 *    variable), not a join: producers on any thread submitBatch() and
 *    wait() on their own tickets concurrently.
 *
 * Isolation guarantees (unchanged from the single-queue engine):
 *  - jobs are data-driven (label-addressed input/output byte blocks),
 *    so nothing host-side is shared between workers during a run;
 *  - a faulting job (trap, watchdog, injected SEU) yields a JobResult
 *    carrying the Trap and no outputs — it never aborts the host, and
 *    fullReset() guarantees the *next* job on that worker starts from a
 *    pristine machine, so one bad job cannot poison the batch, even
 *    when the bad job reached its worker over the steal path;
 *  - results are returned in job order regardless of which worker ran
 *    a job, and are bit-for-bit identical to serial execution.
 *
 * Typical synchronous use:
 *
 *     BatchEngine eng(syndromeBatchProgram(field, n, 2 * t));
 *     std::vector<Job> jobs;
 *     for (const auto &rx : received_words)
 *         jobs.push_back(syndromeJob(rx, 2 * t));
 *     for (const JobResult &r : eng.run(jobs))
 *         if (r.ok()) use(r.bytes("synd"));
 *
 * Pipelined use (submission decoupled from completion):
 *
 *     auto t1 = eng.submitBatch(makeJobs(block1));
 *     auto t2 = eng.submitBatch(makeJobs(block2));  // any thread
 *     auto r1 = eng.wait(t1);                       // job-ordered
 *     auto r2 = eng.wait(t2);
 */

#ifndef GFP_ENGINE_BATCH_ENGINE_H
#define GFP_ENGINE_BATCH_ENGINE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/trace_event.h"

#include "engine/metrics.h"
#include "isa/program.h"
#include "sim/cpu.h"
#include "sim/fault_injector.h"
#include "sim/machine.h"

namespace gfp {

namespace jit {
class CompiledProgram;
}

/**
 * One independent guest job: inputs to write before the run, outputs to
 * read back after a clean halt.  All labels resolve through the shared
 * program's symbol table; an unknown label is host misuse and fatal.
 */
struct Job
{
    /** r0..r3 call arguments (at most 4). */
    std::vector<uint32_t> args;

    /** Byte blocks written to labeled buffers before the run. */
    std::vector<std::pair<std::string, std::vector<uint8_t>>> inputs;

    /** Single words written to labeled buffers before the run. */
    std::vector<std::pair<std::string, uint32_t>> word_inputs;

    /** Labeled byte blocks to read back: (label, length). */
    std::vector<std::pair<std::string, size_t>> outputs;

    /** Labeled single words to read back. */
    std::vector<std::string> word_outputs;

    /** Optional SEU schedule delivered during this job only (see
     *  sim/fault_injector.h); the injected flips are confined to this
     *  job's machine state and wiped by the inter-job fullReset(). */
    std::vector<FaultEvent> faults;

    /** Per-job watchdog override; 0 uses the engine default. */
    uint64_t max_instrs = 0;
};

/** Outcome of one job.  Trap-isolating: a faulted job reports its Trap
 *  and carries no outputs, and neighboring jobs are unaffected. */
struct JobResult
{
    Trap trap;           ///< kind == kNone when the job halted cleanly
    CycleStats stats;    ///< guest cycle statistics of this job's run
    unsigned worker = 0; ///< index of the worker that ran the job

    /** Host wall-clock telemetry, relative to the submission instant of
     *  the batch that carried this job: when this job began on its
     *  worker and how long it held the worker.  Feeds the engine's
     *  Metrics histograms and trace export. */
    double start_seconds = 0;
    double host_seconds = 0;

    /** Outputs read back after a clean halt (empty if trapped). */
    std::map<std::string, std::vector<uint8_t>> outputs;
    std::map<std::string, uint32_t> words;

    bool ok() const { return !trap; }

    /** Convenience accessors; fatal if the label was not requested. */
    const std::vector<uint8_t> &bytes(const std::string &label) const;
    uint32_t word(const std::string &label) const;
};

/** A program plus the core variant it targets — what an engine runs. */
struct BatchProgram
{
    Program program;
    CoreKind kind = CoreKind::kGfProcessor;
};

class BatchEngine
{
  public:
    /** Trace pid for engine worker tracks (the guest tracer uses 1). */
    static constexpr int kEnginePid = 2;

    /** Handle for an in-flight batch; redeem with wait(). */
    using Ticket = uint64_t;

    struct Options
    {
        /** Worker threads; 0 picks std::thread::hardware_concurrency().
         */
        unsigned threads = 0;

        /** Default per-job instruction watchdog. */
        uint64_t max_instrs = 500'000'000;

        /** Memory size of each worker's machine. */
        size_t mem_bytes = 256 * 1024;

        /**
         * Dispatch mode for each worker's core (every mode is
         * bit-exact with single stepping; kPlain is only useful for
         * differential testing and debugging).  kTranslated compiles
         * the program once with the certificate-gated template JIT
         * (src/jit) and shares the translation across workers;
         * programs the certifier declines simply run fused.
         */
        DispatchMode dispatch = DispatchMode::kFused;

        /** Pin worker w to host CPU (w mod hardware_concurrency) so a
         *  worker's Machine (and its predecode cache) stays cache-warm
         *  on one core.  Linux only; silently ignored elsewhere. */
        bool pin_workers = false;
    };

    BatchEngine(BatchProgram bp, Options opts);
    BatchEngine(Program program, CoreKind kind, Options opts);
    BatchEngine(const std::string &asm_source, CoreKind kind,
                Options opts);
    // Defaulted-Options overloads (a `= {}` default argument for a
    // nested aggregate with member initializers trips GCC here).
    explicit BatchEngine(BatchProgram bp);
    BatchEngine(Program program, CoreKind kind);
    BatchEngine(const std::string &asm_source, CoreKind kind);

    /** Drains queued work, then stops and joins the worker pool.
     *  Results of tickets never redeemed with wait() are discarded. */
    ~BatchEngine();

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /** Worker threads (and shards) the pool uses. */
    unsigned threads() const { return threads_; }

    const Program &program() const { return program_; }
    CoreKind kind() const { return kind_; }

    /**
     * Run all jobs across the worker pool.  Results are indexed like
     * @p jobs.  Never throws on guest faults; a trapped job is reported
     * in its JobResult.  Equivalent to submitBatch() + wait(), plus the
     * legacy per-run telemetry contract: the Metrics registry is
     * cleared first and describes only this run.
     */
    std::vector<JobResult> run(const std::vector<Job> &jobs);

    /**
     * Run the same jobs in order on a single reusable machine — the
     * differential reference for the parallel path (tests assert
     * bit-for-bit parity between run() and runSerial()).
     */
    std::vector<JobResult> runSerial(const std::vector<Job> &jobs);

    /**
     * Asynchronously submit a batch: jobs are sliced into per-shard
     * runs (one shard lock acquisition per run) and the pool starts on
     * them immediately.  Thread-safe — any number of producer threads
     * may submit concurrently; each batch is tracked by its own ticket
     * and executes each job exactly once.  Unlike run(), the Metrics
     * registry is NOT cleared, so counters accumulate across batches
     * (that is what sustained-service callers want to watch).
     */
    Ticket submitBatch(std::vector<Job> jobs);

    /**
     * Block until every job of @p ticket has executed, then return its
     * results in job order (per-worker arenas are drained and merged
     * here, on the waiting thread).  Each ticket can be redeemed once;
     * an unknown or already-redeemed ticket is host misuse and fatal.
     */
    std::vector<JobResult> wait(Ticket ticket);

    /**
     * Jobs submitted but not yet claimed by a worker — the queue-depth
     * signal admission-control layers watch (src/service uses it to
     * reject with retry-after once a watermark is crossed).  Lock-free
     * and monotonic-consistent: the value was exact at some instant
     * between call and return.
     */
    size_t pendingJobs() const
    {
        return pending_.load(std::memory_order_acquire);
    }

    /**
     * Ask every worker to tear down and rebuild its Machine before its
     * next job (lazy, per worker).  The per-job fullReset() already
     * guarantees a pristine machine; this additionally discards the
     * host-side allocations (memory arrays, predecode cache) — the
     * engine-level analogue of fullReset() for long-running services.
     */
    void refreshWorkers();

    /** Per-worker aggregated guest cycle statistics of the last run()
     *  (or last wait(); runSerial() fills a single slot). */
    const std::vector<CycleStats> &workerStats() const
    {
        return worker_stats_;
    }

    /**
     * Telemetry registry.  run()/runSerial() clear it first, so after a
     * synchronous run it describes exactly that run; across
     * submitBatch()/wait() it accumulates.  Naming conventions are
     * documented in engine/metrics.h (job/trap counters, jobs/s,
     * utilization and shard-depth gauges, steal counters, latency and
     * submission-batch histograms).
     */
    const Metrics &metrics() const { return metrics_; }

    /**
     * Attach a trace log (common/trace_event.h); every subsequent run
     * appends one "X" span per job on its worker's track (pid 2, one
     * tid per worker; args carry queue wait and trap kind) plus a
     * queue-depth counter series.  nullptr detaches.  The caller owns
     * the log and must keep it alive while attached.
     */
    void setTraceLog(TraceLog *log) { trace_log_ = log; }

  private:
    struct Batch;

    /** One pending job reference in a shard.  The raw Batch pointer is
     *  safe: a batch is only released after all of its tasks executed
     *  (remaining == 0) *and* the owner redeemed the ticket. */
    struct Task
    {
        Batch *batch;
        uint32_t index;
    };

    /** A worker's job shard: its own lock, deque, and a mirrored depth
     *  for lock-free gauge reads.  Cache-line-aligned so neighboring
     *  shards never false-share. */
    struct alignas(64) Shard
    {
        std::mutex mu;
        std::deque<Task> q;
        std::atomic<size_t> depth{0};
    };

    void startPool();
    void workerLoop(unsigned w);
    bool popLocal(unsigned w, Task &out);
    bool stealInto(unsigned w, Task &out);
    void execute(unsigned w, const Task &task);
    void finishBatch(Batch &batch);
    void publishPoolGauges();

    /** Recycle @p machine and run one job on it; start/host seconds
     *  are measured against @p epoch. */
    JobResult runOne(Machine &machine, const Job &job,
                     std::chrono::steady_clock::time_point epoch) const;

    /** Apply opts_.dispatch to a (re)built worker machine: set the
     *  mode and, for kTranslated, install the shared translation. */
    void configureDispatch(Machine &machine) const;

    /** Fill metrics_ and the attached trace log from a finished run. */
    void recordRunTelemetry(const std::vector<JobResult> &results,
                            double elapsed_seconds, unsigned n_workers);

    Program program_;
    CoreKind kind_;
    Options opts_;
    unsigned threads_;

    /** Shared immutable translation (kTranslated only; may hold zero
     *  blocks when the certifier declined the program). */
    std::shared_ptr<const jit::CompiledProgram> translation_;

    // ---- pool state ----
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> pool_;
    std::mutex pool_mu_;   ///< guards pool start and batch registry
    bool pool_started_ = false;
    std::map<Ticket, std::shared_ptr<Batch>> batches_;
    Ticket next_ticket_ = 1;
    std::atomic<unsigned> next_shard_{0}; ///< rotates batch placement
    std::atomic<uint64_t> machine_epoch_{0}; ///< refreshWorkers() ticks

    // ---- idle/wakeup protocol: pending_ counts queued-but-unclaimed
    // jobs; workers sleep on idle_cv_ only when it reads zero ----
    std::mutex idle_mu_;
    std::condition_variable idle_cv_;
    std::atomic<size_t> pending_{0};
    bool stop_ = false;

    // ---- steal telemetry (engine-lifetime; published as gauges) ----
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> worker_steals_;
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> jobs_stolen_{0};
    std::atomic<uint64_t> steal_failures_{0};

    std::mutex stats_mu_; ///< guards worker_stats_ writes from wait()
    std::vector<CycleStats> worker_stats_;
    Metrics metrics_;
    TraceLog *trace_log_ = nullptr;
};

} // namespace gfp

#endif // GFP_ENGINE_BATCH_ENGINE_H
