#include "engine/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/strutil.h"
#include "common/trace_event.h"

namespace gfp {

void
Metrics::add(const std::string &name, double delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
}

void
Metrics::set(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
}

void
Metrics::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    Histogram &h = histograms_[name];
    if (h.count == 0) {
        h.min = value;
        h.max = value;
    } else {
        h.min = std::min(h.min, value);
        h.max = std::max(h.max, value);
    }
    ++h.count;
    h.sum += value;
    unsigned b = 0;
    while (b + 1 < kHistBuckets && value > std::ldexp(1.0, b))
        ++b;
    ++h.buckets[b];
}

double
Metrics::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

double
Metrics::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

Metrics::Histogram
Metrics::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram() : it->second;
}

double
Metrics::quantile(const Histogram &h, double q)
{
    if (h.count == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const double target = q * static_cast<double>(h.count);
    uint64_t below = 0;
    for (unsigned b = 0; b < kHistBuckets; ++b) {
        if (!h.buckets[b])
            continue;
        const double in_bucket = static_cast<double>(h.buckets[b]);
        if (static_cast<double>(below) + in_bucket >= target) {
            // Bucket b covers (2^(b-1), 2^b]; interpolate on the log
            // scale between its bounds (the +inf bucket degenerates to
            // the observed max).
            if (b + 1 == kHistBuckets)
                return h.max;
            const double hi = std::ldexp(1.0, b);
            const double lo = b == 0 ? hi / 2 : std::ldexp(1.0, b - 1);
            const double frac =
                in_bucket > 0
                    ? (target - static_cast<double>(below)) / in_bucket
                    : 1.0;
            const double v = lo * std::pow(hi / lo, frac);
            return std::min(std::max(v, h.min), h.max);
        }
        below += h.buckets[b];
    }
    return h.max;
}

void
Metrics::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

namespace {

std::string
jsonNumber(double v)
{
    if (std::isfinite(v) &&
        v == static_cast<double>(static_cast<long long>(v)))
        return strprintf("%lld", static_cast<long long>(v));
    return strprintf("%.6g", v);
}

} // namespace

std::string
Metrics::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters_) {
        out += strprintf("%s\n    \"%s\": %s", first ? "" : ",",
                         jsonEscape(name).c_str(), jsonNumber(v).c_str());
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges_) {
        out += strprintf("%s\n    \"%s\": %s", first ? "" : ",",
                         jsonEscape(name).c_str(), jsonNumber(v).c_str());
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        out += strprintf(
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, "
            "\"min\": %s, \"max\": %s, \"buckets\": {",
            first ? "" : ",", jsonEscape(name).c_str(),
            static_cast<unsigned long long>(h.count),
            jsonNumber(h.sum).c_str(), jsonNumber(h.min).c_str(),
            jsonNumber(h.max).c_str());
        bool bfirst = true;
        for (unsigned b = 0; b < kHistBuckets; ++b) {
            if (!h.buckets[b])
                continue;
            std::string le = b + 1 < kHistBuckets
                                 ? strprintf("%.0f", std::ldexp(1.0, b))
                                 : "+inf";
            out += strprintf("%s\"%s\": %llu", bfirst ? "" : ", ",
                             le.c_str(),
                             static_cast<unsigned long long>(h.buckets[b]));
            bfirst = false;
        }
        out += "}}";
        first = false;
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
Metrics::writeTo(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << toJson();
    return static_cast<bool>(f);
}

} // namespace gfp
