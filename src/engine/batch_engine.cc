#include "engine/batch_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strutil.h"
#include "isa/assembler.h"
#include "jit/core_translation.h"
#include "jit/translator.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace gfp {

const std::vector<uint8_t> &
JobResult::bytes(const std::string &label) const
{
    auto it = outputs.find(label);
    if (it == outputs.end())
        GFP_FATAL("job result has no byte output '%s'", label.c_str());
    return it->second;
}

uint32_t
JobResult::word(const std::string &label) const
{
    auto it = words.find(label);
    if (it == words.end())
        GFP_FATAL("job result has no word output '%s'", label.c_str());
    return it->second;
}

namespace {

unsigned
resolveThreads(unsigned requested)
{
    if (requested)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
pinToCpu(unsigned worker_idx)
{
#if defined(__linux__)
    unsigned hw = std::thread::hardware_concurrency();
    if (!hw)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(worker_idx % hw, &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)worker_idx;
#endif
}

} // anonymous namespace

/** One finished job in a worker's arena, tagged with its batch index. */
struct IndexedResult
{
    uint32_t index;
    JobResult result;
};

/**
 * One in-flight batch.  Worker w appends only to arenas[w], so arena
 * writes are unsynchronized; readers (the worker that completes the
 * batch, and the waiter) only look after the acq_rel countdown on
 * `remaining` reached zero, which orders every arena write before them.
 */
struct BatchEngine::Batch
{
    std::vector<Job> jobs;
    std::chrono::steady_clock::time_point epoch;
    std::atomic<size_t> remaining{0};
    std::vector<std::vector<IndexedResult>> arenas;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
};

BatchEngine::BatchEngine(BatchProgram bp, Options opts)
    : program_(std::move(bp.program)), kind_(bp.kind), opts_(opts),
      threads_(resolveThreads(opts.threads))
{
    if (opts_.dispatch == DispatchMode::kTranslated) {
        // Compile once, share everywhere: the translation is immutable
        // host code plus lookup tables; all mutable run state lives in
        // each worker's CoreTranslation.  The certificate-gated policy
        // translates nothing when the certifier declines the program —
        // those workers simply run fused.
        jit::TranslateOptions topts;
        topts.mem_bytes = opts_.mem_bytes;
        topts.watchdog_max_instrs = opts_.max_instrs;
        translation_ = jit::translate(program_, kind_, topts);
    }
}

BatchEngine::BatchEngine(Program program, CoreKind kind, Options opts)
    : BatchEngine(BatchProgram{std::move(program), kind}, opts)
{
}

BatchEngine::BatchEngine(const std::string &asm_source, CoreKind kind,
                         Options opts)
    : BatchEngine(BatchProgram{Assembler::assemble(asm_source), kind}, opts)
{
}

BatchEngine::BatchEngine(BatchProgram bp)
    : BatchEngine(std::move(bp), Options())
{
}

BatchEngine::BatchEngine(Program program, CoreKind kind)
    : BatchEngine(BatchProgram{std::move(program), kind}, Options())
{
}

BatchEngine::BatchEngine(const std::string &asm_source, CoreKind kind)
    : BatchEngine(BatchProgram{Assembler::assemble(asm_source), kind},
                  Options())
{
}

BatchEngine::~BatchEngine()
{
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        if (!pool_started_)
            return;
    }
    {
        std::lock_guard<std::mutex> lk(idle_mu_);
        stop_ = true;
    }
    idle_cv_.notify_all();
    for (auto &t : pool_)
        t.join();
}

void
BatchEngine::startPool()
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (pool_started_)
        return;
    shards_.reserve(threads_);
    worker_steals_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
        shards_.push_back(std::make_unique<Shard>());
        worker_steals_.push_back(
            std::make_unique<std::atomic<uint64_t>>(0));
    }
    pool_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        pool_.emplace_back([this, w] { workerLoop(w); });
    pool_started_ = true;
}

bool
BatchEngine::popLocal(unsigned w, Task &out)
{
    Shard &sh = *shards_[w];
    std::lock_guard<std::mutex> lk(sh.mu);
    if (sh.q.empty())
        return false;
    out = sh.q.front();
    sh.q.pop_front();
    sh.depth.fetch_sub(1, std::memory_order_relaxed);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
}

bool
BatchEngine::stealInto(unsigned w, Task &out)
{
    for (unsigned off = 1; off < threads_; ++off) {
        const unsigned v = (w + off) % threads_;
        Shard &victim = *shards_[v];
        std::vector<Task> loot;
        {
            std::lock_guard<std::mutex> lk(victim.mu);
            const size_t depth = victim.q.size();
            if (depth == 0)
                continue;
            // Chase–Lev ends: the owner drains the front, so take the
            // newer half from the back (order preserved).
            const size_t k = (depth + 1) / 2;
            loot.assign(victim.q.end() - static_cast<ptrdiff_t>(k),
                        victim.q.end());
            victim.q.erase(victim.q.end() - static_cast<ptrdiff_t>(k),
                           victim.q.end());
            victim.depth.fetch_sub(k, std::memory_order_relaxed);
        }
        out = loot.front();
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        if (loot.size() > 1) {
            Shard &own = *shards_[w];
            std::lock_guard<std::mutex> lk(own.mu);
            own.q.insert(own.q.end(), loot.begin() + 1, loot.end());
            own.depth.fetch_add(loot.size() - 1,
                                std::memory_order_relaxed);
        }
        steals_.fetch_add(1, std::memory_order_relaxed);
        worker_steals_[w]->fetch_add(1, std::memory_order_relaxed);
        jobs_stolen_.fetch_add(loot.size(), std::memory_order_relaxed);
        return true;
    }
    steal_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
BatchEngine::configureDispatch(Machine &machine) const
{
    machine.core().setDispatchMode(opts_.dispatch);
    if (translation_)
        machine.core().setTranslation(
            jit::makeCoreTranslation(translation_));
}

void
BatchEngine::workerLoop(unsigned w)
{
    if (opts_.pin_workers)
        pinToCpu(w);
    uint64_t epoch = machine_epoch_.load(std::memory_order_acquire);
    auto machine =
        std::make_unique<Machine>(program_, kind_, opts_.mem_bytes);
    configureDispatch(*machine);
    for (;;) {
        const uint64_t e = machine_epoch_.load(std::memory_order_acquire);
        if (e != epoch) {
            // refreshWorkers(): rebuild the Machine from scratch — the
            // engine-level fullReset analogue for long-running pools.
            epoch = e;
            machine =
                std::make_unique<Machine>(program_, kind_, opts_.mem_bytes);
            configureDispatch(*machine);
        }
        Task task;
        if (popLocal(w, task) || stealInto(w, task)) {
            Batch &batch = *task.batch;
            IndexedResult entry;
            entry.index = task.index;
            entry.result =
                runOne(*machine, batch.jobs[task.index], batch.epoch);
            entry.result.worker = w;
            batch.arenas[w].push_back(std::move(entry));
            if (batch.remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1)
                finishBatch(batch);
            continue;
        }
        std::unique_lock<std::mutex> lk(idle_mu_);
        if (stop_ && pending_.load(std::memory_order_acquire) == 0)
            break;
        idle_cv_.wait(lk, [this] {
            return stop_ ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_ && pending_.load(std::memory_order_acquire) == 0)
            break;
    }
}

void
BatchEngine::finishBatch(Batch &batch)
{
    // The acq_rel countdown that brought us here ordered every other
    // worker's arena writes before this scan.
    size_t clean = 0, trapped = 0;
    for (const auto &arena : batch.arenas)
        for (const auto &entry : arena)
            (entry.result.ok() ? clean : trapped) += 1;
    metrics_.add("jobs_completed_total", static_cast<double>(clean));
    metrics_.add("jobs_trapped_total", static_cast<double>(trapped));
    publishPoolGauges();
    {
        // Notify under the lock: the waiter may destroy the batch the
        // moment it observes done, so nothing may touch it after the
        // lock is released.
        std::lock_guard<std::mutex> lk(batch.mu);
        batch.done = true;
        batch.cv.notify_all();
    }
}

void
BatchEngine::publishPoolGauges()
{
    for (unsigned w = 0; w < threads_; ++w) {
        metrics_.set(strprintf("shard%u_queue_depth", w),
                     static_cast<double>(
                         shards_[w]->depth.load(std::memory_order_relaxed)));
        metrics_.set(strprintf("worker%u_steals", w),
                     static_cast<double>(worker_steals_[w]->load(
                         std::memory_order_relaxed)));
    }
    metrics_.set("steals", static_cast<double>(
                               steals_.load(std::memory_order_relaxed)));
    metrics_.set("jobs_stolen",
                 static_cast<double>(
                     jobs_stolen_.load(std::memory_order_relaxed)));
    metrics_.set("steal_failures",
                 static_cast<double>(
                     steal_failures_.load(std::memory_order_relaxed)));
}

BatchEngine::Ticket
BatchEngine::submitBatch(std::vector<Job> jobs)
{
    startPool();
    auto batch = std::make_shared<Batch>();
    batch->jobs = std::move(jobs);
    batch->epoch = std::chrono::steady_clock::now();
    const size_t n = batch->jobs.size();
    batch->remaining.store(n, std::memory_order_relaxed);
    batch->arenas.resize(threads_);

    Ticket ticket;
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        ticket = next_ticket_++;
        batches_.emplace(ticket, batch);
    }
    if (n == 0) {
        std::lock_guard<std::mutex> lk(batch->mu);
        batch->done = true;
        return ticket;
    }
    metrics_.add("jobs_submitted_total", static_cast<double>(n));

    // Slice the batch into at most one contiguous run per shard — N
    // jobs enter a shard per lock acquisition, instead of one.  The
    // starting shard rotates per batch so small batches spread out.
    const size_t slices = std::min<size_t>(threads_, n);
    const unsigned start =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % threads_;
    size_t base = 0;
    for (size_t s = 0; s < slices; ++s) {
        const size_t count = n / slices + (s < n % slices ? 1 : 0);
        const unsigned idx = (start + static_cast<unsigned>(s)) % threads_;
        Shard &sh = *shards_[idx];
        {
            std::lock_guard<std::mutex> lk(sh.mu);
            for (size_t i = base; i < base + count; ++i)
                sh.q.push_back(
                    Task{batch.get(), static_cast<uint32_t>(i)});
            sh.depth.fetch_add(count, std::memory_order_relaxed);
        }
        metrics_.observe("submit_batch_jobs", static_cast<double>(count));
        metrics_.set(strprintf("shard%u_queue_depth", idx),
                     static_cast<double>(
                         sh.depth.load(std::memory_order_relaxed)));
        base += count;
    }
    pending_.fetch_add(n, std::memory_order_acq_rel);
    {
        // Taking the idle lock (even empty) orders the pending_ bump
        // against any worker mid-way into its sleep decision.
        std::lock_guard<std::mutex> lk(idle_mu_);
    }
    idle_cv_.notify_all();
    return ticket;
}

std::vector<JobResult>
BatchEngine::wait(Ticket ticket)
{
    std::shared_ptr<Batch> batch;
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        auto it = batches_.find(ticket);
        GFP_ASSERT(it != batches_.end(),
                   "unknown or already-redeemed batch ticket %llu",
                   static_cast<unsigned long long>(ticket));
        batch = it->second;
        batches_.erase(it);
    }
    {
        std::unique_lock<std::mutex> lk(batch->mu);
        batch->cv.wait(lk, [&] { return batch->done; });
    }

    // Drain the per-worker arenas into the job-ordered result vector.
    // The exactly-once contract is asserted structurally: every index
    // appears exactly once across all arenas.
    std::vector<JobResult> results(batch->jobs.size());
    std::vector<CycleStats> stats(threads_, CycleStats());
    std::vector<uint8_t> seen(batch->jobs.size(), 0);
    size_t merged = 0;
    for (auto &arena : batch->arenas) {
        for (auto &entry : arena) {
            GFP_ASSERT(entry.index < results.size() && !seen[entry.index],
                       "job %u executed more than once", entry.index);
            seen[entry.index] = 1;
            stats[entry.result.worker] += entry.result.stats;
            results[entry.index] = std::move(entry.result);
            ++merged;
        }
    }
    GFP_ASSERT(merged == results.size(),
               "batch executed %zu of %zu jobs", merged, results.size());
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        worker_stats_ = std::move(stats);
    }
    return results;
}

void
BatchEngine::refreshWorkers()
{
    machine_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

JobResult
BatchEngine::runOne(Machine &machine, const Job &job,
                    std::chrono::steady_clock::time_point epoch) const
{
    const auto t0 = std::chrono::steady_clock::now();
    machine.fullReset();
    for (const auto &[label, bytes] : job.inputs)
        machine.writeBytes(label, bytes);
    for (const auto &[label, value] : job.word_inputs)
        machine.writeWord(label, value);
    GFP_ASSERT(job.args.size() <= 4, "at most 4 register arguments");
    for (size_t i = 0; i < job.args.size(); ++i)
        machine.core().setReg(static_cast<unsigned>(i), job.args[i]);

    FaultInjector injector;
    if (!job.faults.empty()) {
        injector.setSchedule(job.faults);
        injector.attach(machine.core());
    }
    RunResult run = machine.runToHalt(job.max_instrs ? job.max_instrs
                                                     : opts_.max_instrs);
    if (!job.faults.empty())
        machine.core().setFaultHook(nullptr); // injector dies with scope

    JobResult res;
    res.trap = run.trap;
    res.stats = run.stats;
    if (run.ok()) {
        for (const auto &[label, len] : job.outputs)
            res.outputs.emplace(label, machine.readBytes(label, len));
        for (const auto &label : job.word_outputs)
            res.words.emplace(label, machine.readWord(label));
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.start_seconds = std::chrono::duration<double>(t0 - epoch).count();
    res.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

std::vector<JobResult>
BatchEngine::run(const std::vector<Job> &jobs)
{
    metrics_.clear();
    if (jobs.empty()) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        worker_stats_.assign(1, CycleStats());
        return {};
    }
    // Snapshot the steal counters so the gauges published after this
    // run are run-scoped (the raw atomics are engine-lifetime).
    startPool();
    const uint64_t steals0 = steals_.load(std::memory_order_relaxed);
    const uint64_t stolen0 = jobs_stolen_.load(std::memory_order_relaxed);
    const uint64_t fails0 =
        steal_failures_.load(std::memory_order_relaxed);
    std::vector<uint64_t> worker0(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        worker0[w] = worker_steals_[w]->load(std::memory_order_relaxed);

    const auto epoch = std::chrono::steady_clock::now();
    Ticket ticket = submitBatch(jobs);
    auto results = wait(ticket);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch)
            .count();
    recordRunTelemetry(results, elapsed, threads_);
    for (unsigned w = 0; w < threads_; ++w)
        metrics_.set(
            strprintf("worker%u_steals", w),
            static_cast<double>(
                worker_steals_[w]->load(std::memory_order_relaxed) -
                worker0[w]));
    metrics_.set("steals",
                 static_cast<double>(
                     steals_.load(std::memory_order_relaxed) - steals0));
    metrics_.set(
        "jobs_stolen",
        static_cast<double>(
            jobs_stolen_.load(std::memory_order_relaxed) - stolen0));
    metrics_.set(
        "steal_failures",
        static_cast<double>(
            steal_failures_.load(std::memory_order_relaxed) - fails0));
    return results;
}

std::vector<JobResult>
BatchEngine::runSerial(const std::vector<Job> &jobs)
{
    std::vector<JobResult> results;
    results.reserve(jobs.size());
    metrics_.clear();
    const auto epoch = std::chrono::steady_clock::now();
    Machine machine(program_, kind_, opts_.mem_bytes);
    configureDispatch(machine);
    CycleStats aggregate;
    for (const Job &job : jobs) {
        results.push_back(runOne(machine, job, epoch));
        aggregate += results.back().stats;
    }
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        worker_stats_.assign(1, aggregate);
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch)
            .count();
    if (!jobs.empty())
        recordRunTelemetry(results, elapsed, 1);
    return results;
}

void
BatchEngine::recordRunTelemetry(const std::vector<JobResult> &results,
                                double elapsed_seconds, unsigned n_workers)
{
    metrics_.set("workers", n_workers);
    metrics_.add("jobs_total", static_cast<double>(results.size()));
    if (elapsed_seconds > 0)
        metrics_.set("jobs_per_sec",
                     static_cast<double>(results.size()) / elapsed_seconds);

    std::vector<double> busy(n_workers, 0.0);
    for (const JobResult &r : results) {
        metrics_.observe("job_host_us", r.host_seconds * 1e6);
        metrics_.observe("job_guest_cycles",
                         static_cast<double>(r.stats.cycles));
        if (r.worker < n_workers)
            busy[r.worker] += r.host_seconds;
        if (!r.ok()) {
            metrics_.add("jobs_failed_total");
            metrics_.add(strprintf("trap_%s_total",
                                   trapKindName(r.trap.kind)));
        }
    }
    for (unsigned w = 0; w < n_workers; ++w)
        metrics_.set(strprintf("worker%u_utilization", w),
                     elapsed_seconds > 0 ? busy[w] / elapsed_seconds : 0.0);

    // Queue depth over time: jobs not yet started, sampled at each
    // job-start instant.  Jobs were claimed in start order, so sorting
    // the start times reconstructs the queue drain exactly.
    std::vector<double> starts;
    starts.reserve(results.size());
    for (const JobResult &r : results)
        starts.push_back(r.start_seconds);
    std::sort(starts.begin(), starts.end());
    metrics_.set("queue_depth_peak", static_cast<double>(results.size()));

    if (!trace_log_) {
        return;
    }
    trace_log_->processName(kEnginePid, "gfp batch engine");
    for (unsigned w = 0; w < n_workers; ++w)
        trace_log_->threadName(kEnginePid, static_cast<int>(w) + 1,
                               strprintf("worker %u", w));
    for (size_t i = 0; i < results.size(); ++i) {
        const JobResult &r = results[i];
        TraceLog::Args args = {
            {"queue_wait_us", strprintf("%.1f", r.start_seconds * 1e6)}};
        if (!r.ok())
            args.emplace_back("trap", trapKindName(r.trap.kind));
        trace_log_->complete(strprintf("job %zu", i),
                             r.ok() ? "job" : "job-trapped",
                             r.start_seconds * 1e6, r.host_seconds * 1e6,
                             kEnginePid, static_cast<int>(r.worker) + 1,
                             std::move(args));
    }
    for (size_t i = 0; i < starts.size(); ++i) {
        trace_log_->counter(
            "queue_depth", starts[i] * 1e6, kEnginePid,
            {{"jobs", static_cast<double>(starts.size() - i - 1)}});
    }
}

} // namespace gfp
