#include "engine/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.h"
#include "common/strutil.h"
#include "isa/assembler.h"

namespace gfp {

const std::vector<uint8_t> &
JobResult::bytes(const std::string &label) const
{
    auto it = outputs.find(label);
    if (it == outputs.end())
        GFP_FATAL("job result has no byte output '%s'", label.c_str());
    return it->second;
}

uint32_t
JobResult::word(const std::string &label) const
{
    auto it = words.find(label);
    if (it == words.end())
        GFP_FATAL("job result has no word output '%s'", label.c_str());
    return it->second;
}

namespace {

unsigned
resolveThreads(unsigned requested)
{
    if (requested)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // anonymous namespace

BatchEngine::BatchEngine(BatchProgram bp, Options opts)
    : program_(std::move(bp.program)), kind_(bp.kind), opts_(opts),
      threads_(resolveThreads(opts.threads))
{
}

BatchEngine::BatchEngine(Program program, CoreKind kind, Options opts)
    : BatchEngine(BatchProgram{std::move(program), kind}, opts)
{
}

BatchEngine::BatchEngine(const std::string &asm_source, CoreKind kind,
                         Options opts)
    : BatchEngine(BatchProgram{Assembler::assemble(asm_source), kind}, opts)
{
}

BatchEngine::BatchEngine(BatchProgram bp)
    : BatchEngine(std::move(bp), Options())
{
}

BatchEngine::BatchEngine(Program program, CoreKind kind)
    : BatchEngine(BatchProgram{std::move(program), kind}, Options())
{
}

BatchEngine::BatchEngine(const std::string &asm_source, CoreKind kind)
    : BatchEngine(BatchProgram{Assembler::assemble(asm_source), kind},
                  Options())
{
}

JobResult
BatchEngine::runOne(Machine &machine, const Job &job,
                    std::chrono::steady_clock::time_point epoch) const
{
    const auto t0 = std::chrono::steady_clock::now();
    machine.fullReset();
    for (const auto &[label, bytes] : job.inputs)
        machine.writeBytes(label, bytes);
    for (const auto &[label, value] : job.word_inputs)
        machine.writeWord(label, value);
    GFP_ASSERT(job.args.size() <= 4, "at most 4 register arguments");
    for (size_t i = 0; i < job.args.size(); ++i)
        machine.core().setReg(static_cast<unsigned>(i), job.args[i]);

    FaultInjector injector;
    if (!job.faults.empty()) {
        injector.setSchedule(job.faults);
        injector.attach(machine.core());
    }
    RunResult run = machine.runToHalt(job.max_instrs ? job.max_instrs
                                                     : opts_.max_instrs);
    if (!job.faults.empty())
        machine.core().setFaultHook(nullptr); // injector dies with scope

    JobResult res;
    res.trap = run.trap;
    res.stats = run.stats;
    if (run.ok()) {
        for (const auto &[label, len] : job.outputs)
            res.outputs.emplace(label, machine.readBytes(label, len));
        for (const auto &label : job.word_outputs)
            res.words.emplace(label, machine.readWord(label));
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.start_seconds = std::chrono::duration<double>(t0 - epoch).count();
    res.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

std::vector<JobResult>
BatchEngine::run(const std::vector<Job> &jobs)
{
    const unsigned n_workers =
        static_cast<unsigned>(std::min<size_t>(threads_, jobs.size()));
    std::vector<JobResult> results(jobs.size());
    worker_stats_.assign(std::max(n_workers, 1u), CycleStats());
    metrics_.clear();
    if (jobs.empty())
        return results;
    const auto epoch = std::chrono::steady_clock::now();

    // Self-scheduling work queue: workers pull the next unclaimed job
    // index, so a slow job (or a long watchdog) never stalls the rest
    // of the batch behind a static partition.
    std::atomic<size_t> next{0};
    auto worker = [&](unsigned worker_idx) {
        Machine machine(program_, kind_, opts_.mem_bytes);
        machine.core().setFastDispatch(opts_.fast_dispatch);
        CycleStats aggregate;
        while (true) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                break;
            results[i] = runOne(machine, jobs[i], epoch);
            results[i].worker = worker_idx;
            aggregate += results[i].stats;
        }
        worker_stats_[worker_idx] = aggregate;
    };

    if (n_workers <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_workers);
        for (unsigned w = 0; w < n_workers; ++w)
            pool.emplace_back(worker, w);
        for (auto &t : pool)
            t.join();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch)
            .count();
    recordRunTelemetry(results, elapsed, std::max(n_workers, 1u));
    return results;
}

std::vector<JobResult>
BatchEngine::runSerial(const std::vector<Job> &jobs)
{
    std::vector<JobResult> results;
    results.reserve(jobs.size());
    metrics_.clear();
    const auto epoch = std::chrono::steady_clock::now();
    Machine machine(program_, kind_, opts_.mem_bytes);
    machine.core().setFastDispatch(opts_.fast_dispatch);
    CycleStats aggregate;
    for (const Job &job : jobs) {
        results.push_back(runOne(machine, job, epoch));
        aggregate += results.back().stats;
    }
    worker_stats_.assign(1, aggregate);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch)
            .count();
    if (!jobs.empty())
        recordRunTelemetry(results, elapsed, 1);
    return results;
}

void
BatchEngine::recordRunTelemetry(const std::vector<JobResult> &results,
                                double elapsed_seconds, unsigned n_workers)
{
    metrics_.set("workers", n_workers);
    metrics_.add("jobs_total", static_cast<double>(results.size()));
    if (elapsed_seconds > 0)
        metrics_.set("jobs_per_sec",
                     static_cast<double>(results.size()) / elapsed_seconds);

    std::vector<double> busy(n_workers, 0.0);
    for (const JobResult &r : results) {
        metrics_.observe("job_host_us", r.host_seconds * 1e6);
        metrics_.observe("job_guest_cycles",
                         static_cast<double>(r.stats.cycles));
        if (r.worker < n_workers)
            busy[r.worker] += r.host_seconds;
        if (!r.ok()) {
            metrics_.add("jobs_failed_total");
            metrics_.add(strprintf("trap_%s_total",
                                   trapKindName(r.trap.kind)));
        }
    }
    for (unsigned w = 0; w < n_workers; ++w)
        metrics_.set(strprintf("worker%u_utilization", w),
                     elapsed_seconds > 0 ? busy[w] / elapsed_seconds : 0.0);

    // Queue depth over time: jobs not yet started, sampled at each
    // job-start instant.  Jobs were claimed in start order, so sorting
    // the start times reconstructs the queue drain exactly.
    std::vector<double> starts;
    starts.reserve(results.size());
    for (const JobResult &r : results)
        starts.push_back(r.start_seconds);
    std::sort(starts.begin(), starts.end());
    metrics_.set("queue_depth_peak", static_cast<double>(results.size()));

    if (!trace_log_) {
        return;
    }
    trace_log_->processName(kEnginePid, "gfp batch engine");
    for (unsigned w = 0; w < n_workers; ++w)
        trace_log_->threadName(kEnginePid, static_cast<int>(w) + 1,
                               strprintf("worker %u", w));
    for (size_t i = 0; i < results.size(); ++i) {
        const JobResult &r = results[i];
        TraceLog::Args args = {
            {"queue_wait_us", strprintf("%.1f", r.start_seconds * 1e6)}};
        if (!r.ok())
            args.emplace_back("trap", trapKindName(r.trap.kind));
        trace_log_->complete(strprintf("job %zu", i),
                             r.ok() ? "job" : "job-trapped",
                             r.start_seconds * 1e6, r.host_seconds * 1e6,
                             kEnginePid, static_cast<int>(r.worker) + 1,
                             std::move(args));
    }
    for (size_t i = 0; i < starts.size(); ++i) {
        trace_log_->counter(
            "queue_depth", starts[i] * 1e6, kEnginePid,
            {{"jobs", static_cast<double>(starts.size() - i - 1)}});
    }
}

} // namespace gfp
