#include "engine/batch_engine.h"

#include <atomic>
#include <thread>

#include "common/logging.h"
#include "isa/assembler.h"

namespace gfp {

const std::vector<uint8_t> &
JobResult::bytes(const std::string &label) const
{
    auto it = outputs.find(label);
    if (it == outputs.end())
        GFP_FATAL("job result has no byte output '%s'", label.c_str());
    return it->second;
}

uint32_t
JobResult::word(const std::string &label) const
{
    auto it = words.find(label);
    if (it == words.end())
        GFP_FATAL("job result has no word output '%s'", label.c_str());
    return it->second;
}

namespace {

unsigned
resolveThreads(unsigned requested)
{
    if (requested)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // anonymous namespace

BatchEngine::BatchEngine(BatchProgram bp, Options opts)
    : program_(std::move(bp.program)), kind_(bp.kind), opts_(opts),
      threads_(resolveThreads(opts.threads))
{
}

BatchEngine::BatchEngine(Program program, CoreKind kind, Options opts)
    : BatchEngine(BatchProgram{std::move(program), kind}, opts)
{
}

BatchEngine::BatchEngine(const std::string &asm_source, CoreKind kind,
                         Options opts)
    : BatchEngine(BatchProgram{Assembler::assemble(asm_source), kind}, opts)
{
}

BatchEngine::BatchEngine(BatchProgram bp)
    : BatchEngine(std::move(bp), Options())
{
}

BatchEngine::BatchEngine(Program program, CoreKind kind)
    : BatchEngine(BatchProgram{std::move(program), kind}, Options())
{
}

BatchEngine::BatchEngine(const std::string &asm_source, CoreKind kind)
    : BatchEngine(BatchProgram{Assembler::assemble(asm_source), kind},
                  Options())
{
}

JobResult
BatchEngine::runOne(Machine &machine, const Job &job) const
{
    machine.fullReset();
    for (const auto &[label, bytes] : job.inputs)
        machine.writeBytes(label, bytes);
    for (const auto &[label, value] : job.word_inputs)
        machine.writeWord(label, value);
    GFP_ASSERT(job.args.size() <= 4, "at most 4 register arguments");
    for (size_t i = 0; i < job.args.size(); ++i)
        machine.core().setReg(static_cast<unsigned>(i), job.args[i]);

    FaultInjector injector;
    if (!job.faults.empty()) {
        injector.setSchedule(job.faults);
        injector.attach(machine.core());
    }
    RunResult run = machine.runToHalt(job.max_instrs ? job.max_instrs
                                                     : opts_.max_instrs);
    if (!job.faults.empty())
        machine.core().setFaultHook(nullptr); // injector dies with scope

    JobResult res;
    res.trap = run.trap;
    res.stats = run.stats;
    if (run.ok()) {
        for (const auto &[label, len] : job.outputs)
            res.outputs.emplace(label, machine.readBytes(label, len));
        for (const auto &label : job.word_outputs)
            res.words.emplace(label, machine.readWord(label));
    }
    return res;
}

std::vector<JobResult>
BatchEngine::run(const std::vector<Job> &jobs)
{
    const unsigned n_workers =
        static_cast<unsigned>(std::min<size_t>(threads_, jobs.size()));
    std::vector<JobResult> results(jobs.size());
    worker_stats_.assign(std::max(n_workers, 1u), CycleStats());
    if (jobs.empty())
        return results;

    // Self-scheduling work queue: workers pull the next unclaimed job
    // index, so a slow job (or a long watchdog) never stalls the rest
    // of the batch behind a static partition.
    std::atomic<size_t> next{0};
    auto worker = [&](unsigned worker_idx) {
        Machine machine(program_, kind_, opts_.mem_bytes);
        machine.core().setFastDispatch(opts_.fast_dispatch);
        CycleStats aggregate;
        while (true) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                break;
            results[i] = runOne(machine, jobs[i]);
            results[i].worker = worker_idx;
            aggregate += results[i].stats;
        }
        worker_stats_[worker_idx] = aggregate;
    };

    if (n_workers <= 1) {
        worker(0);
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (unsigned w = 0; w < n_workers; ++w)
        pool.emplace_back(worker, w);
    for (auto &t : pool)
        t.join();
    return results;
}

std::vector<JobResult>
BatchEngine::runSerial(const std::vector<Job> &jobs)
{
    std::vector<JobResult> results;
    results.reserve(jobs.size());
    Machine machine(program_, kind_, opts_.mem_bytes);
    machine.core().setFastDispatch(opts_.fast_dispatch);
    CycleStats aggregate;
    for (const Job &job : jobs) {
        results.push_back(runOne(machine, job));
        aggregate += results.back().stats;
    }
    worker_stats_.assign(1, aggregate);
    return results;
}

} // namespace gfp
