/**
 * @file
 * The complete Galois-field arithmetic unit (paper Fig. 4): 16 8-bit GF
 * multiplication units and 28 8-bit GF square units behind a
 * program-directed interconnect fabric, sharing one centralized
 * configuration register.
 *
 * Instruction-level operations (paper Table 1):
 *  - 4-way 8-bit SIMD multiply / square / power / add / multiplicative
 *    inverse, all single-cycle;
 *  - a single-cycle 32-bit carry-free partial product that reuses all
 *    16 multipliers' full-product stages with the reduction stage
 *    data-gated;
 *  - gfConfig, which (re)loads the 56-bit reduction-matrix register.
 *
 * The SIMD multiplicative inverse is the Itoh-Tsujii network of Fig. 6:
 * for GF(2^8) each lane chains 7 squares and 4 multiplies, which is
 * exactly why the preferred design instantiates 4*4 = 16 multipliers and
 * 4*7 = 28 square units (Sec. 2.4.1).  Unit activations are tracked so
 * utilization and data-gating effectiveness can be reported.
 */

#ifndef GFP_GFAU_GF_UNIT_H
#define GFP_GFAU_GF_UNIT_H

#include <array>
#include <cstdint>

#include "gfau/config_reg.h"
#include "gfau/units.h"

namespace gfp {

class GFArithmeticUnit
{
  public:
    static constexpr unsigned kNumMultUnits = 16;
    static constexpr unsigned kNumSquareUnits = 28;
    static constexpr unsigned kNumLanes = 4;

    /** Per-operation issue counters. */
    struct Stats
    {
        uint64_t simd_mult = 0;
        uint64_t simd_square = 0;
        uint64_t simd_power = 0;
        uint64_t simd_add = 0;
        uint64_t simd_inverse = 0;
        uint64_t mult32 = 0;
        uint64_t config_loads = 0;

        uint64_t
        total() const
        {
            return simd_mult + simd_square + simd_power + simd_add +
                   simd_inverse + mult32 + config_loads;
        }
    };

    GFArithmeticUnit();

    /** Install a new field configuration (the gfConfig instruction). */
    void loadConfig(const GFConfig &cfg);

    /** Restore the power-on state: default configuration, all counters
     *  cleared.  Used between batch jobs so no residue — least of all a
     *  fault-corrupted configuration register — leaks across jobs. */
    void powerOnReset();

    /** Convenience: derive-and-load for (m, poly). */
    void configureField(unsigned m, uint32_t poly);

    const GFConfig &config() const { return cfg_; }

    /**
     * The live register holds a usable field width.  A single-event
     * upset in the 4-bit m field (injectConfigBitFlip) can make this
     * false; the core then traps GfConfigCorrupt on the next GF
     * instruction instead of computing in an undefined datapath mode.
     * Upsets in the 56 P-matrix bits keep the register "valid" but
     * silently select a wrong field — the dangerous class, detectable
     * only by redundant recomputation (see coding/resilient_decoder.h).
     */
    bool configValid() const { return cfg_.valid(); }

    /**
     * SEU model: flip one bit of the live 60-bit configuration register
     * (bits 0..55 = the seven P columns, bits 56..59 = m).  @p bit is
     * taken modulo 60.  No validation — that is the point.
     */
    void injectConfigBitFlip(unsigned bit);

    /** gfMult_simd: lane-wise GF multiply of four packed elements. */
    uint32_t simdMult(uint32_t a, uint32_t b);

    /** gfSq_simd: lane-wise GF square. */
    uint32_t simdSquare(uint32_t a);

    /** gfPower_simd: lane-wise a^e (e is the ordinary integer exponent
     *  carried in the matching lane of @p e). */
    uint32_t simdPower(uint32_t a, uint32_t e);

    /** gfAdd_simd: lane-wise GF addition (XOR). */
    uint32_t simdAdd(uint32_t a, uint32_t b);

    /** gfMultInv_simd: lane-wise multiplicative inverse (Itoh-Tsujii
     *  network); inverse of 0 is 0. */
    uint32_t simdInverse(uint32_t a);

    /** gf32bMult: 32x32 carry-free product; hi:lo = a x b in GF(2)[x].
     *  Built from the 16 multipliers' full products + the XOR tree of
     *  Fig. 7; the polynomial-reduction stage is data-gated. */
    void mult32(uint32_t a, uint32_t b, uint32_t &hi, uint32_t &lo);

    const Stats &stats() const { return stats_; }
    void resetStats();

    /** Total activations across the 16 multiplication units. */
    uint64_t multUnitActivations() const;
    /** Total activations across the 28 square units. */
    uint64_t squareUnitActivations() const;

  private:
    /** Inverse of one lane via the ITA chain, drawing on the lane's
     *  dedicated pool of 4 multipliers and 7 square units. */
    uint8_t inverseLane(uint8_t a, unsigned lane_idx);

    GFConfig cfg_;
    std::array<GFMultUnit, kNumMultUnits> mult_units_;
    std::array<GFSquareUnit, kNumSquareUnits> square_units_;
    Stats stats_;
};

} // namespace gfp

#endif // GFP_GFAU_GF_UNIT_H
