#include "gfau/gf_unit.h"

#include <bit>

#include "common/bitops.h"
#include "common/logging.h"

namespace gfp {

GFArithmeticUnit::GFArithmeticUnit()
{
    // Power-on default: GF(2^8) with the conventional RS polynomial.
    cfg_ = GFConfig::derive(8, 0x11d);
}

void
GFArithmeticUnit::powerOnReset()
{
    cfg_ = GFConfig::derive(8, 0x11d);
    resetStats();
}

void
GFArithmeticUnit::loadConfig(const GFConfig &cfg)
{
    cfg_ = cfg;
    ++stats_.config_loads;
}

void
GFArithmeticUnit::configureField(unsigned m, uint32_t poly)
{
    loadConfig(GFConfig::derive(m, poly));
}

void
GFArithmeticUnit::injectConfigBitFlip(unsigned bit)
{
    bit %= 60;
    GFConfig raw = cfg_;
    if (bit < 56)
        raw.p_cols[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    else
        raw.m ^= 1u << (bit - 56);
    raw.poly = 0; // the derivation provenance is gone
    cfg_ = raw;   // installed without validation, unlike loadConfig
}

uint32_t
GFArithmeticUnit::simdMult(uint32_t a, uint32_t b)
{
    ++stats_.simd_mult;
    uint32_t out = 0;
    for (unsigned l = 0; l < kNumLanes; ++l) {
        uint8_t r = mult_units_[l].multiply(lane(a, l), lane(b, l), cfg_);
        out = withLane(out, l, r);
    }
    return out;
}

uint32_t
GFArithmeticUnit::simdSquare(uint32_t a)
{
    ++stats_.simd_square;
    uint32_t out = 0;
    for (unsigned l = 0; l < kNumLanes; ++l)
        out = withLane(out, l, square_units_[l].square(lane(a, l), cfg_));
    return out;
}

uint32_t
GFArithmeticUnit::simdPower(uint32_t a, uint32_t e)
{
    ++stats_.simd_power;
    uint32_t out = 0;
    for (unsigned l = 0; l < kNumLanes; ++l) {
        uint8_t base = lane(a, l) & cfg_.laneMask();
        uint8_t exp = lane(e, l);
        uint8_t result;
        if (exp == 0) {
            result = 1; // convention: x^0 == 1, including 0^0
        } else if (base == 0) {
            result = 0;
        } else {
            // Square-and-multiply through the lane's square/multiply
            // chain (the cascaded square units of Fig. 8).
            result = 1;
            uint8_t sq = base;
            unsigned next_sq = 7 * l;
            unsigned next_mul = 4 * l;
            for (unsigned b = 0; b < 8; ++b) {
                if ((exp >> b) & 1) {
                    result = mult_units_[next_mul++ % kNumMultUnits]
                                 .multiply(result, sq, cfg_);
                }
                if ((exp >> (b + 1)) == 0)
                    break;
                sq = square_units_[next_sq++ % kNumSquareUnits]
                         .square(sq, cfg_);
            }
        }
        out = withLane(out, l, result);
    }
    return out;
}

uint32_t
GFArithmeticUnit::simdAdd(uint32_t a, uint32_t b)
{
    ++stats_.simd_add;
    return a ^ b;
}

uint8_t
GFArithmeticUnit::inverseLane(uint8_t a, unsigned lane_idx)
{
    a &= cfg_.laneMask();
    if (a == 0)
        return 0; // zeros propagate through the network

    // Itoh-Tsujii: a^-1 = (a^(2^(m-1) - 1))^2 via the addition chain on
    // e = m - 1.  For m = 8 this is the 4-multiply / 7-square network of
    // Fig. 6; smaller m "mux out" earlier powers and use fewer units.
    const unsigned e = cfg_.m - 1;
    unsigned next_sq = 7 * lane_idx;  // lane's pool of 7 square units
    unsigned next_mul = 4 * lane_idx; // lane's pool of 4 multipliers

    auto sq = [&](uint8_t v) {
        GFP_ASSERT(next_sq < 7 * (lane_idx + 1),
                   "lane %u exceeded its 7 square units", lane_idx);
        return square_units_[next_sq++].square(v, cfg_);
    };
    auto mul = [&](uint8_t x, uint8_t y) {
        GFP_ASSERT(next_mul < 4 * (lane_idx + 1),
                   "lane %u exceeded its 4 multipliers", lane_idx);
        return mult_units_[next_mul++].multiply(x, y, cfg_);
    };

    uint8_t t = a;      // T(1) = a^(2^1 - 1)
    unsigned have = 1;
    if (e > 1) {
        int top = 31 - std::countl_zero(e);
        for (int i = top - 1; i >= 0; --i) {
            uint8_t t2 = t;
            for (unsigned s = 0; s < have; ++s)
                t2 = sq(t2);
            t = mul(t2, t); // T(2*have)
            have *= 2;
            if ((e >> i) & 1) {
                t = mul(sq(t), a); // T(have + 1)
                have += 1;
            }
        }
    }
    GFP_ASSERT(have == e);
    return sq(t); // (a^(2^(m-1)-1))^2 = a^(2^m - 2)
}

uint32_t
GFArithmeticUnit::simdInverse(uint32_t a)
{
    ++stats_.simd_inverse;
    uint32_t out = 0;
    for (unsigned l = 0; l < kNumLanes; ++l)
        out = withLane(out, l, inverseLane(lane(a, l), l));
    return out;
}

void
GFArithmeticUnit::mult32(uint32_t a, uint32_t b, uint32_t &hi, uint32_t &lo)
{
    ++stats_.mult32;
    // All 16 multipliers compute byte-level full products; the XOR tree
    // of Fig. 7 aligns partial product (i, j) at bit offset 8*(i + j).
    // The reduction stage is data-gated (Sec. 2.4.2's 33% power saving).
    uint64_t acc = 0;
    unsigned unit = 0;
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = 0; j < 4; ++j) {
            uint16_t pp = mult_units_[unit++].fullProduct(lane(a, i),
                                                          lane(b, j));
            acc ^= static_cast<uint64_t>(pp) << (8 * (i + j));
        }
    }
    GFP_ASSERT(acc == clmul32(a, b), "partial-product tree mismatch");
    lo = static_cast<uint32_t>(acc);
    hi = static_cast<uint32_t>(acc >> 32);
}

void
GFArithmeticUnit::resetStats()
{
    stats_ = Stats();
    for (auto &u : mult_units_)
        u.resetStats();
    for (auto &u : square_units_)
        u.resetStats();
}

uint64_t
GFArithmeticUnit::multUnitActivations() const
{
    uint64_t total = 0;
    for (const auto &u : mult_units_)
        total += u.activations();
    return total;
}

uint64_t
GFArithmeticUnit::squareUnitActivations() const
{
    uint64_t total = 0;
    for (const auto &u : square_units_)
        total += u.activations();
    return total;
}

} // namespace gfp
