#include "gfau/config_reg.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "gf/polys.h"

namespace gfp {

GFConfig
GFConfig::derive(unsigned m, uint32_t poly)
{
    if (m < 2 || m > 8)
        GFP_FATAL("GFAU supports field widths 2..8, got m=%u", m);
    if (!isIrreducible(poly, m))
        GFP_FATAL("polynomial 0x%x is not irreducible of degree %u",
                  poly, m);

    GFConfig cfg;
    cfg.m = m;
    cfg.poly = poly;

    // Column j of P is x^(m+j) mod r(x), computed by the standard
    // shift-and-cancel reduction.  Only columns 0 .. m-2 are ever
    // selected by the mapping circuit.
    for (unsigned j = 0; j + 1 < m; ++j) {
        uint32_t v = 1u << (m + j);
        int d = degree(v);
        while (d >= static_cast<int>(m)) {
            v ^= poly << (d - m);
            d = degree(v);
        }
        cfg.p_cols[j] = static_cast<uint8_t>(v);
    }
    return cfg;
}

GFConfig
GFConfig::circulant(unsigned m)
{
    if (m < 2 || m > 8)
        GFP_FATAL("GFAU supports field widths 2..8, got m=%u", m);
    GFConfig cfg;
    cfg.m = m;
    cfg.poly = (1u << m) | 1; // x^m + 1 (reducible: a ring config)
    for (unsigned j = 0; j + 1 < m; ++j)
        cfg.p_cols[j] = static_cast<uint8_t>(1u << j);
    return cfg;
}

uint64_t
GFConfig::pack() const
{
    uint64_t blob = 0;
    for (unsigned j = 0; j < 7; ++j)
        blob |= static_cast<uint64_t>(p_cols[j]) << (8 * j);
    blob |= static_cast<uint64_t>(m & 0xf) << 56;
    return blob;
}

GFConfig
GFConfig::unpack(uint64_t blob)
{
    GFConfig cfg;
    if (!tryUnpack(blob, cfg))
        GFP_FATAL("gfConfig blob carries invalid field width %u", cfg.m);
    return cfg;
}

bool
GFConfig::tryUnpack(uint64_t blob, GFConfig &out)
{
    for (unsigned j = 0; j < 7; ++j)
        out.p_cols[j] = static_cast<uint8_t>(blob >> (8 * j));
    out.m = static_cast<unsigned>((blob >> 56) & 0xf);
    out.poly = 0; // not part of the hardware register; P suffices
    return out.valid();
}

} // namespace gfp
