#include "gfau/units.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace gfp {

uint8_t
ReductionStage::reduce(uint16_t full_product, const GFConfig &cfg)
{
    const unsigned m = cfg.m;

    // Mapping circuit: split the full product.
    // remaining vector = bits [m-1 : 0]
    // reduction vector = bits [2m-2 : m]  (m-1 bits)
    uint8_t remaining = static_cast<uint8_t>(full_product & ((1u << m) - 1));
    uint8_t out = remaining;

    // P * reduction_vector over GF(2): column j is enabled by full
    // product bit (m + j).
    for (unsigned j = 0; j + 1 < m; ++j) {
        if (bit(full_product, m + j))
            out ^= cfg.p_cols[j];
    }
    return out;
}

uint16_t
GFMultUnit::fullProduct(uint8_t a, uint8_t b)
{
    ++activations_;
    // Structural AND/XOR array: c_{i+j} ^= a_i & b_j.  (This is the
    // 2m^2 - m AND / 2m^2 - 3m + 1 XOR array costed in Table 2.)
    uint16_t c = 0;
    for (unsigned i = 0; i < 8; ++i) {
        for (unsigned j = 0; j < 8; ++j) {
            uint32_t pp = bit(a, i) & bit(b, j);
            c ^= static_cast<uint16_t>(pp) << (i + j);
        }
    }
    return c;
}

uint8_t
GFMultUnit::multiply(uint8_t a, uint8_t b, const GFConfig &cfg)
{
    uint8_t mask = cfg.laneMask();
    uint16_t full = fullProduct(a & mask, b & mask);
    return ReductionStage::reduce(full, cfg);
}

uint8_t
GFSquareUnit::square(uint8_t a, const GFConfig &cfg)
{
    ++activations_;
    uint8_t mask = cfg.laneMask();
    a &= mask;
    // Thinned full product: bit i -> bit 2i, zeros interleaved.
    uint16_t spread = 0;
    for (unsigned i = 0; i < cfg.m; ++i)
        spread |= static_cast<uint16_t>(bit(a, i)) << (2 * i);
    return ReductionStage::reduce(spread, cfg);
}

} // namespace gfp
