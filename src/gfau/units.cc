// The unit primitives are fully inline in units.h (they sit at the
// bottom of the interpreter hot path); this translation unit only
// anchors the header for build systems that list it.
#include "gfau/units.h"
