/**
 * @file
 * The two primitive computation units of the GF arithmetic unit
 * (paper Sec. 2.4.1, Fig. 5): the 8-bit GF multiplication unit and the
 * 8-bit GF square unit, plus the shared polynomial-reduction stage with
 * its width-dependent mapping circuit.
 *
 * These are *structural* models: the reduction is computed exactly the
 * way the hardware does — split the carry-less full product into the
 * "remaining vector" (low m bits) and the "reduction vector" (high m-1
 * bits), then add P * reduction_vector, where P comes from the shared
 * configuration register.  Each unit instance carries an activation
 * counter so the interconnect fabric's utilization (and the 16-mult /
 * 28-square sizing argument) can be measured.
 */

#ifndef GFP_GFAU_UNITS_H
#define GFP_GFAU_UNITS_H

#include <cstdint>

#include "gfau/config_reg.h"

namespace gfp {

/**
 * The shared polynomial-reduction datapath (green/red dashed boxes of
 * Fig. 5): an 8-by-7 GF(2) matrix-vector product plus the mapping
 * circuit that selects which full-product bits feed it.
 */
class ReductionStage
{
  public:
    /**
     * Reduce a (2m-1)-bit carry-less full product to an m-bit field
     * element under @p cfg.
     *
     * The mapping circuit routes full-product bit (m+j) to matrix
     * column j; this is the paper's GF-size-dependent pattern that lets
     * 5/6/7-bit fields reuse the 8-bit reduction hardware (Fig. 5(b)).
     */
    static uint8_t reduce(uint16_t full_product, const GFConfig &cfg);
};

/** One of the 16 8-bit GF multiplication units. */
class GFMultUnit
{
  public:
    /** Full 15-bit carry-less product (the first stage of Fig. 5(a));
     *  this output feeds either the reduction stage or, in gf32bMult
     *  mode, the partial-product XOR tree with reduction data-gated. */
    uint16_t fullProduct(uint8_t a, uint8_t b);

    /** Complete modular multiply: full product + reduction. */
    uint8_t multiply(uint8_t a, uint8_t b, const GFConfig &cfg);

    /** Number of cycles this unit computed something (activity proxy). */
    uint64_t activations() const { return activations_; }
    void resetStats() { activations_ = 0; }

  private:
    uint64_t activations_ = 0;
};

/** One of the 28 8-bit GF square units. */
class GFSquareUnit
{
  public:
    /**
     * Square @p a under @p cfg.  The full product of a square merely
     * spreads input bits into even positions (Fig. 5(c)), so the unit
     * is only the reduction stage — roughly a third of a multiplier
     * (Table 3) — which is why squares get their own primitive.
     */
    uint8_t square(uint8_t a, const GFConfig &cfg);

    uint64_t activations() const { return activations_; }
    void resetStats() { activations_ = 0; }

  private:
    uint64_t activations_ = 0;
};

} // namespace gfp

#endif // GFP_GFAU_UNITS_H
