/**
 * @file
 * The two primitive computation units of the GF arithmetic unit
 * (paper Sec. 2.4.1, Fig. 5): the 8-bit GF multiplication unit and the
 * 8-bit GF square unit, plus the shared polynomial-reduction stage with
 * its width-dependent mapping circuit.
 *
 * These are *structural* models: the reduction is computed exactly the
 * way the hardware does — split the carry-less full product into the
 * "remaining vector" (low m bits) and the "reduction vector" (high m-1
 * bits), then add P * reduction_vector, where P comes from the shared
 * configuration register.  Each unit instance carries an activation
 * counter so the interconnect fabric's utilization (and the 16-mult /
 * 28-square sizing argument) can be measured.
 *
 * Everything here is defined inline: these primitives sit at the bottom
 * of the interpreter's hot path (a single gfInvs retires 44 unit
 * evaluations), so they must inline into the SIMD loops of
 * GFArithmeticUnit rather than cost a cross-TU call each.
 */

#ifndef GFP_GFAU_UNITS_H
#define GFP_GFAU_UNITS_H

#include <array>
#include <bit>
#include <cstdint>

#include "gfau/config_reg.h"

namespace gfp {

/** Full-product bit i of a square lands on bit 2i (Fig. 5(c)); the
 *  spread pattern depends only on the operand byte, so it is a table. */
inline constexpr std::array<uint16_t, 256> kSquareSpread = [] {
    std::array<uint16_t, 256> t{};
    for (unsigned v = 0; v < 256; ++v) {
        uint16_t s = 0;
        for (unsigned i = 0; i < 8; ++i)
            if (v & (1u << i))
                s |= static_cast<uint16_t>(1u << (2 * i));
        t[v] = s;
    }
    return t;
}();

/**
 * The shared polynomial-reduction datapath (green/red dashed boxes of
 * Fig. 5): an 8-by-7 GF(2) matrix-vector product plus the mapping
 * circuit that selects which full-product bits feed it.
 */
class ReductionStage
{
  public:
    /**
     * Reduce a (2m-1)-bit carry-less full product to an m-bit field
     * element under @p cfg.
     *
     * The mapping circuit routes full-product bit (m+j) to matrix
     * column j; this is the paper's GF-size-dependent pattern that lets
     * 5/6/7-bit fields reuse the 8-bit reduction hardware (Fig. 5(b)).
     */
    static uint8_t
    reduce(uint16_t full_product, const GFConfig &cfg)
    {
        const unsigned m = cfg.m;

        // Mapping circuit: remaining vector = bits [m-1 : 0].
        uint8_t out =
            static_cast<uint8_t>(full_product & ((1u << m) - 1));

        // P * reduction_vector over GF(2): column j is enabled by full
        // product bit (m + j).  Walk set bits only — the reduction
        // vector is sparse for typical operands.
        unsigned red = full_product >> m;
        while (red != 0) {
            out ^= cfg.p_cols[std::countr_zero(red)];
            red &= red - 1;
        }
        return out;
    }
};

/** One of the 16 8-bit GF multiplication units. */
class GFMultUnit
{
  public:
    /** Full 15-bit carry-less product (the first stage of Fig. 5(a));
     *  this output feeds either the reduction stage or, in gf32bMult
     *  mode, the partial-product XOR tree with reduction data-gated.
     *  The hardware is an AND/XOR array computing c_{i+j} ^= a_i & b_j
     *  (the 2m^2 - m AND / 2m^2 - 3m + 1 XOR array costed in Table 2);
     *  the model computes the same carry-less product row-wise — one
     *  XOR of a shifted multiplicand per set bit of a — which is
     *  bit-identical. */
    uint16_t
    fullProduct(uint8_t a, uint8_t b)
    {
        ++activations_;
        uint16_t c = 0;
        uint16_t row = b;
        for (uint32_t av = a; av != 0;
             av >>= 1, row = static_cast<uint16_t>(row << 1)) {
            if (av & 1)
                c ^= row;
        }
        return c;
    }

    /** Complete modular multiply: full product + reduction. */
    uint8_t
    multiply(uint8_t a, uint8_t b, const GFConfig &cfg)
    {
        uint8_t mask = cfg.laneMask();
        uint16_t full = fullProduct(a & mask, b & mask);
        return ReductionStage::reduce(full, cfg);
    }

    /** Number of cycles this unit computed something (activity proxy). */
    uint64_t activations() const { return activations_; }
    void resetStats() { activations_ = 0; }

  private:
    uint64_t activations_ = 0;
};

/** One of the 28 8-bit GF square units. */
class GFSquareUnit
{
  public:
    /**
     * Square @p a under @p cfg.  The full product of a square merely
     * spreads input bits into even positions (Fig. 5(c)), so the unit
     * is only the reduction stage — roughly a third of a multiplier
     * (Table 3) — which is why squares get their own primitive.
     */
    uint8_t
    square(uint8_t a, const GFConfig &cfg)
    {
        ++activations_;
        return ReductionStage::reduce(kSquareSpread[a & cfg.laneMask()],
                                      cfg);
    }

    uint64_t activations() const { return activations_; }
    void resetStats() { activations_ = 0; }

  private:
    uint64_t activations_ = 0;
};

} // namespace gfp

#endif // GFP_GFAU_UNITS_H
