/**
 * @file
 * The GF arithmetic unit's centralized configuration register
 * (paper Sec. 2.4.2).
 *
 * When a Galois field GF(2^m) with irreducible polynomial r(x) is
 * selected, software derives the reduction matrix P a priori
 * (the r -> P transformation of Fig. 5) and loads it — 56 bits, seven
 * 8-bit columns — with the gfConfig instruction.  Column j of P is
 * x^(m+j) mod r(x): the m-bit pattern that bit (m+j) of a carry-less
 * full product folds down to.
 *
 * The register also carries the field bit-width m, which drives the
 * mapping circuit that routes full-product bits for m < 8 (Sec. 2.3's
 * "setting the MSBs to zero does not work" problem).
 */

#ifndef GFP_GFAU_CONFIG_REG_H
#define GFP_GFAU_CONFIG_REG_H

#include <array>
#include <cstdint>

namespace gfp {

struct GFConfig
{
    /** Field bit width m, 2..8.  Default: GF(2^8). */
    unsigned m = 8;

    /** Irreducible polynomial (bit i = coefficient of x^i). */
    uint32_t poly = 0x11d;

    /**
     * Reduction matrix P: column j (j = 0..6) is the m-bit reduction of
     * x^(m+j).  Columns at or above m-1 are unused for smaller fields
     * (a 2m-1-bit product only has m-1 bits above position m-1).
     */
    std::array<uint8_t, 7> p_cols{};

    /** Derive the P matrix and pack a config for field (m, poly). */
    static GFConfig derive(unsigned m, uint32_t poly);

    /**
     * The circulant-ring configuration: P column j = x^j, i.e. the
     * reduction modulo x^m + 1 (bit m+j wraps to bit j).  x^m + 1 is
     * *reducible*, so this is a ring, not a field — but the hardware's
     * reduction matrix is fully programmable and does not care.  With
     * it, gfMult_simd computes a circular convolution, which turns
     * GF(2)-circulant linear maps (notably the AES S-box affine
     * transform, = multiplication by 0x1f mod x^8 + 1) into a single
     * multiply.
     */
    static GFConfig circulant(unsigned m);

    /**
     * Serialize to the 64-bit in-memory blob the gfConfig instruction
     * loads: bits [55:0] are the seven P columns (column j at bits
     * [8j+7 : 8j]), bits [59:56] the field width m.
     */
    uint64_t pack() const;

    /** Deserialize from the 64-bit blob. */
    static GFConfig unpack(uint64_t blob);

    /**
     * Non-fatal deserialize: false if the blob carries an invalid field
     * width (the guest loaded a corrupted gfConfig blob — a trap, not a
     * host error).  @p out is filled either way with the raw register
     * contents, so fault-injection code can install a corrupt image.
     */
    static bool tryUnpack(uint64_t blob, GFConfig &out);

    /** Field width is one the datapath supports (2..8).  False only
     *  after an SEU flipped the m field of the live register. */
    bool valid() const { return m >= 2 && m <= 8; }

    /** Mask selecting the m low bits of a lane.  Safe (but meaningless)
     *  for a corrupt m: the shift count is capped at the 4-bit field. */
    uint8_t
    laneMask() const
    {
        return static_cast<uint8_t>((1u << (m & 0xf)) - 1);
    }

    bool operator==(const GFConfig &o) const
    {
        return m == o.m && p_cols == o.p_cols;
    }
};

} // namespace gfp

#endif // GFP_GFAU_CONFIG_REG_H
