#include "crypto/aes.h"

#include <algorithm>

#include "common/logging.h"
#include "gf/field.h"
#include "gf/polys.h"

namespace gfp {

namespace {

/** The shared AES field GF(2^8) / 0x11b. */
const GFField &
aesField()
{
    static const GFField field(8, kAesPoly);
    return field;
}

/** Rotate a byte left by @p k. */
uint8_t
rotl8(uint8_t v, unsigned k)
{
    return static_cast<uint8_t>((v << k) | (v >> (8 - k)));
}

uint32_t
subWord(uint32_t w)
{
    return static_cast<uint32_t>(Aes::sbox(w & 0xff)) |
           (static_cast<uint32_t>(Aes::sbox((w >> 8) & 0xff)) << 8) |
           (static_cast<uint32_t>(Aes::sbox((w >> 16) & 0xff)) << 16) |
           (static_cast<uint32_t>(Aes::sbox((w >> 24) & 0xff)) << 24);
}

uint32_t
rotWord(uint32_t w)
{
    // Words are stored big-endian ([a0,a1,a2,a3] == 0xa0a1a2a3), so the
    // FIPS rotation [a1,a2,a3,a0] is a left byte-rotate.
    return (w << 8) | (w >> 24);
}

} // anonymous namespace

uint8_t
Aes::gfMul(uint8_t a, uint8_t b)
{
    return static_cast<uint8_t>(aesField().mul(a, b));
}

uint8_t
Aes::sbox(uint8_t x)
{
    // Multiplicative inverse (0 -> 0), then the affine transform
    // b' = b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
    uint8_t inv = static_cast<uint8_t>(aesField().inv(x));
    return static_cast<uint8_t>(inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^
                                rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63);
}

uint8_t
Aes::invSbox(uint8_t x)
{
    // Inverse affine: b = rotl(x,1) ^ rotl(x,3) ^ rotl(x,6) ^ 0x05,
    // then the field inverse.
    uint8_t pre = static_cast<uint8_t>(rotl8(x, 1) ^ rotl8(x, 3) ^
                                       rotl8(x, 6) ^ 0x05);
    return static_cast<uint8_t>(aesField().inv(pre));
}

void
Aes::addRoundKey(AesBlock &state, const uint32_t *round_key)
{
    for (unsigned c = 0; c < 4; ++c) {
        uint32_t w = round_key[c];
        // FIPS-197 stores word c big-endian across rows 0..3.
        state[4 * c + 0] ^= static_cast<uint8_t>(w >> 24);
        state[4 * c + 1] ^= static_cast<uint8_t>(w >> 16);
        state[4 * c + 2] ^= static_cast<uint8_t>(w >> 8);
        state[4 * c + 3] ^= static_cast<uint8_t>(w);
    }
}

void
Aes::subBytes(AesBlock &state)
{
    for (auto &b : state)
        b = sbox(b);
}

void
Aes::invSubBytes(AesBlock &state)
{
    for (auto &b : state)
        b = invSbox(b);
}

void
Aes::shiftRows(AesBlock &state)
{
    // Row r rotates left by r (state index = r + 4c).
    AesBlock out;
    for (unsigned r = 0; r < 4; ++r)
        for (unsigned c = 0; c < 4; ++c)
            out[r + 4 * c] = state[r + 4 * ((c + r) % 4)];
    state = out;
}

void
Aes::invShiftRows(AesBlock &state)
{
    AesBlock out;
    for (unsigned r = 0; r < 4; ++r)
        for (unsigned c = 0; c < 4; ++c)
            out[r + 4 * ((c + r) % 4)] = state[r + 4 * c];
    state = out;
}

void
Aes::mixColumns(AesBlock &state)
{
    for (unsigned c = 0; c < 4; ++c) {
        uint8_t a0 = state[4 * c], a1 = state[4 * c + 1];
        uint8_t a2 = state[4 * c + 2], a3 = state[4 * c + 3];
        state[4 * c + 0] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3;
        state[4 * c + 1] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3;
        state[4 * c + 2] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3);
        state[4 * c + 3] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2);
    }
}

void
Aes::invMixColumns(AesBlock &state)
{
    // Coefficients {0e,0b,0d,09} — the paper's Sec. 3.3.3 prints these
    // with a typo'd radix; FIPS-197 is authoritative.
    for (unsigned c = 0; c < 4; ++c) {
        uint8_t a0 = state[4 * c], a1 = state[4 * c + 1];
        uint8_t a2 = state[4 * c + 2], a3 = state[4 * c + 3];
        state[4 * c + 0] = gfMul(a0, 0x0e) ^ gfMul(a1, 0x0b) ^
                           gfMul(a2, 0x0d) ^ gfMul(a3, 0x09);
        state[4 * c + 1] = gfMul(a0, 0x09) ^ gfMul(a1, 0x0e) ^
                           gfMul(a2, 0x0b) ^ gfMul(a3, 0x0d);
        state[4 * c + 2] = gfMul(a0, 0x0d) ^ gfMul(a1, 0x09) ^
                           gfMul(a2, 0x0e) ^ gfMul(a3, 0x0b);
        state[4 * c + 3] = gfMul(a0, 0x0b) ^ gfMul(a1, 0x0d) ^
                           gfMul(a2, 0x09) ^ gfMul(a3, 0x0e);
    }
}

Aes::Aes(const std::vector<uint8_t> &key)
{
    switch (key.size()) {
      case 16: nk_ = 4; rounds_ = 10; break;
      case 24: nk_ = 6; rounds_ = 12; break;
      case 32: nk_ = 8; rounds_ = 14; break;
      default:
        GFP_FATAL("AES key must be 16/24/32 bytes, got %zu", key.size());
    }
    expandKey(key);
}

void
Aes::expandKey(const std::vector<uint8_t> &key)
{
    const unsigned total = 4 * (rounds_ + 1);
    round_keys_.resize(total);
    for (unsigned i = 0; i < nk_; ++i) {
        round_keys_[i] = (static_cast<uint32_t>(key[4 * i]) << 24) |
                         (static_cast<uint32_t>(key[4 * i + 1]) << 16) |
                         (static_cast<uint32_t>(key[4 * i + 2]) << 8) |
                         static_cast<uint32_t>(key[4 * i + 3]);
    }
    // Round constants are powers of x in the AES field.
    uint8_t rcon = 1;
    for (unsigned i = nk_; i < total; ++i) {
        uint32_t temp = round_keys_[i - 1];
        if (i % nk_ == 0) {
            temp = subWord(rotWord(temp)) ^
                   (static_cast<uint32_t>(rcon) << 24);
            rcon = gfMul(rcon, 2);
        } else if (nk_ > 6 && i % nk_ == 4) {
            temp = subWord(temp);
        }
        round_keys_[i] = round_keys_[i - nk_] ^ temp;
    }
}

AesBlock
Aes::encryptBlock(const AesBlock &plaintext) const
{
    AesBlock state = plaintext;
    addRoundKey(state, &round_keys_[0]);
    for (unsigned round = 1; round < rounds_; ++round) {
        subBytes(state);
        shiftRows(state);
        mixColumns(state);
        addRoundKey(state, &round_keys_[4 * round]);
    }
    subBytes(state);
    shiftRows(state);
    addRoundKey(state, &round_keys_[4 * rounds_]);
    return state;
}

AesBlock
Aes::decryptBlock(const AesBlock &ciphertext) const
{
    AesBlock state = ciphertext;
    addRoundKey(state, &round_keys_[4 * rounds_]);
    for (unsigned round = rounds_ - 1; round >= 1; --round) {
        invShiftRows(state);
        invSubBytes(state);
        addRoundKey(state, &round_keys_[4 * round]);
        invMixColumns(state);
    }
    invShiftRows(state);
    invSubBytes(state);
    addRoundKey(state, &round_keys_[0]);
    return state;
}

std::vector<uint8_t>
Aes::encryptEcb(const std::vector<uint8_t> &data) const
{
    if (data.size() % 16 != 0)
        GFP_FATAL("ECB needs a multiple of 16 bytes, got %zu", data.size());
    std::vector<uint8_t> out(data.size());
    for (size_t off = 0; off < data.size(); off += 16) {
        AesBlock block;
        std::copy_n(data.begin() + off, 16, block.begin());
        AesBlock enc = encryptBlock(block);
        std::copy(enc.begin(), enc.end(), out.begin() + off);
    }
    return out;
}

std::vector<uint8_t>
Aes::decryptEcb(const std::vector<uint8_t> &data) const
{
    if (data.size() % 16 != 0)
        GFP_FATAL("ECB needs a multiple of 16 bytes, got %zu", data.size());
    std::vector<uint8_t> out(data.size());
    for (size_t off = 0; off < data.size(); off += 16) {
        AesBlock block;
        std::copy_n(data.begin() + off, 16, block.begin());
        AesBlock dec = decryptBlock(block);
        std::copy(dec.begin(), dec.end(), out.begin() + off);
    }
    return out;
}

std::vector<uint8_t>
Aes::applyCtr(const std::vector<uint8_t> &data, const AesBlock &iv) const
{
    std::vector<uint8_t> out(data.size());
    AesBlock counter = iv;
    for (size_t off = 0; off < data.size(); off += 16) {
        AesBlock keystream = encryptBlock(counter);
        size_t chunk = std::min<size_t>(16, data.size() - off);
        for (size_t i = 0; i < chunk; ++i)
            out[off + i] = data[off + i] ^ keystream[i];
        // Big-endian increment of the counter block.
        for (int i = 15; i >= 0; --i)
            if (++counter[i] != 0)
                break;
    }
    return out;
}

} // namespace gfp
