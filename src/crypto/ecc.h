/**
 * @file
 * Elliptic-curve cryptography over binary fields (ECC_l in the paper):
 * NIST curves y^2 + xy = x^3 + a x^2 + b over GF(2^m), with the
 * López-Dahab projective point arithmetic the paper implements
 * (Sec. 3.3.4 references [34]) and double-and-add scalar multiplication.
 *
 * Field operation counters are kept per curve instance so Table 9's
 * multiply/square/inverse budgets per point operation can be verified.
 */

#ifndef GFP_CRYPTO_ECC_H
#define GFP_CRYPTO_ECC_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gf/binary_field.h"

namespace gfp {

/** An affine point; (infinity == true) is the group identity. */
struct EcPoint
{
    Gf2x x, y;
    bool infinity = false;

    static EcPoint infinityPoint() { return EcPoint{{}, {}, true}; }
    bool operator==(const EcPoint &o) const;
};

/** A López-Dahab projective point: x = X/Z, y = Y/Z^2. */
struct LdPoint
{
    Gf2x x, y, z;
    bool infinity = false;
};

/** Running count of field operations (for the Table 9 budgets). */
struct FieldOpCount
{
    uint64_t mul = 0;
    uint64_t sqr = 0;
    uint64_t inv = 0;
    uint64_t add = 0;
};

class EllipticCurve
{
  public:
    /** y^2 + xy = x^3 + a x^2 + b over @p field; b must be nonzero. */
    EllipticCurve(BinaryField field, Gf2x a, Gf2x b);

    /**
     * A named NIST binary curve with its standard base point:
     * "K-163", "B-163", "K-233", "B-233", "K-283", "B-283".
     */
    static EllipticCurve nist(const std::string &name);

    const BinaryField &field() const { return field_; }
    const Gf2x &a() const { return a_; }
    const Gf2x &b() const { return b_; }
    /** The standard base point (only for nist() curves). */
    const EcPoint &basePoint() const { return base_; }
    /** The base point order (only for nist() curves). */
    const Gf2x &order() const { return order_; }
    const std::string &name() const { return name_; }

    bool isOnCurve(const EcPoint &p) const;

    EcPoint negate(const EcPoint &p) const;

    /** Affine group law (reference path). */
    EcPoint addAffine(const EcPoint &p, const EcPoint &q) const;
    EcPoint doubleAffine(const EcPoint &p) const;

    /** López-Dahab projective arithmetic (the fast path). */
    LdPoint toProjective(const EcPoint &p) const;
    EcPoint toAffine(const LdPoint &p) const; ///< costs one inversion
    LdPoint doubleLd(const LdPoint &p) const;
    /** Mixed addition: projective P + affine Q. */
    LdPoint addMixed(const LdPoint &p, const EcPoint &q) const;

    /**
     * k * P by MSB-first double-and-add over López-Dahab coordinates
     * (the paper's method).  @p k is a bit string (Gf2x); k = 0 gives
     * the point at infinity.
     */
    EcPoint scalarMult(const Gf2x &k, const EcPoint &p) const;

    /** k * P on affine coordinates only (golden reference). */
    EcPoint scalarMultAffine(const Gf2x &k, const EcPoint &p) const;

    /**
     * k * P by MSB-first fixed-window double-and-add (the host fast
     * path).  Precomputes [1..2^width - 1] * P with projective mixed
     * adds, flattens the table to affine with batchToAffine()'s single
     * shared inversion, then processes the scalar width bits at a time:
     * width doublings plus at most one mixed addition per window.
     * Falls back to scalarMult() for scalars too short to amortize the
     * table.  Identical results to scalarMult()/scalarMultAffine().
     */
    EcPoint scalarMultWindow(const Gf2x &k, const EcPoint &p,
                             unsigned width = 4) const;

    /**
     * Convert many projective points to affine with ONE field inversion
     * (Montgomery's simultaneous-inversion trick): prefix products of
     * the Z coordinates, a single inverse of the total, then a back
     * pass peels off each 1/Z_i.  Infinite / Z == 0 entries come back
     * as the point at infinity.
     */
    std::vector<EcPoint> batchToAffine(const std::vector<LdPoint> &pts) const;

    /**
     * k * P by the López-Dahab Montgomery ladder (x-coordinate-only,
     * uniform double+add per bit — the standard side-channel-hardened
     * alternative to double-and-add).  Requires p not of order 2.
     */
    EcPoint scalarMultMontgomery(const Gf2x &k, const EcPoint &p) const;

    /**
     * The evaluation scalar of Sec. 3.3.4: a 113-bit value whose top
     * bit is 1 and whose remaining 112 bits hold exactly 56 ones —
     * 112 point doublings + 56 point additions.
     */
    static Gf2x evaluationScalar(uint64_t seed = 1);

    const FieldOpCount &opCount() const { return ops_; }
    void resetOpCount() { ops_ = FieldOpCount(); }

  private:
    Gf2x fmul(const Gf2x &x, const Gf2x &y) const;
    Gf2x fsqr(const Gf2x &x) const;
    Gf2x finv(const Gf2x &x) const;
    Gf2x fadd(const Gf2x &x, const Gf2x &y) const;
    /** Multiply by a curve constant; free for 0 and 1 (Koblitz). */
    Gf2x fmulConst(const Gf2x &c, const Gf2x &x) const;

    BinaryField field_;
    Gf2x a_, b_;
    EcPoint base_;
    Gf2x order_;
    std::string name_;
    mutable FieldOpCount ops_;
};

/**
 * Elliptic-Curve Diffie-Hellman on a binary curve — the key-exchange
 * protocol the paper evaluates (one scalar multiplication per side
 * per session, Sec. 3.3.4).
 */
class Ecdh
{
  public:
    explicit Ecdh(const EllipticCurve &curve) : curve_(&curve) {}

    struct KeyPair
    {
        Gf2x private_scalar;
        EcPoint public_point;
    };

    /** Generate a key pair from a deterministic seed. */
    KeyPair generate(uint64_t seed) const;

    /**
     * Shared secret: my_private * their_public (x-coordinate).
     * Returns std::nullopt if the product is the point at infinity —
     * a property of the *inputs* (e.g. a malicious or small-order
     * public point), so the caller must reject the exchange rather
     * than the host aborting.
     */
    std::optional<Gf2x> sharedSecret(const Gf2x &my_private,
                                     const EcPoint &their_public) const;

  private:
    const EllipticCurve *curve_;
};

} // namespace gfp

#endif // GFP_CRYPTO_ECC_H
