/**
 * @file
 * AES-128/192/256 built from GF(2^8) arithmetic — the symmetric
 * cryptography workload of the paper (Sec. 1.3 / 3.3.3).
 *
 * Every byte-level nonlinearity is expressed through field operations
 * under the AES polynomial x^8+x^4+x^3+x+1:
 *  - SubBytes is the GF(2^8) multiplicative inverse followed by the
 *    GF(2)-affine transform (the mapping the paper's gfMultInv_simd
 *    instruction accelerates);
 *  - MixColumns / InvMixColumns are inner products with the constant
 *    vectors {02,03,01,01} / {0e,0b,0d,09}.
 *
 * Individual round kernels are exposed (AddRoundKey, SubBytes,
 * ShiftRows, MixColumns, key expansion) because the evaluation (Fig. 10)
 * measures them separately, and the assembly kernels validate against
 * them one by one.
 *
 * The state is stored FIPS-197 style: byte index r + 4c (column-major).
 */

#ifndef GFP_CRYPTO_AES_H
#define GFP_CRYPTO_AES_H

#include <array>
#include <cstdint>
#include <vector>

namespace gfp {

using AesBlock = std::array<uint8_t, 16>;

class Aes
{
  public:
    /** @param key 16, 24, or 32 bytes (AES-128/192/256). */
    explicit Aes(const std::vector<uint8_t> &key);

    unsigned rounds() const { return rounds_; }

    /** The full expanded key schedule: 4*(rounds+1) little words. */
    const std::vector<uint32_t> &roundKeys() const { return round_keys_; }

    AesBlock encryptBlock(const AesBlock &plaintext) const;
    AesBlock decryptBlock(const AesBlock &ciphertext) const;

    /** ECB over a multiple-of-16-byte buffer (building block only). */
    std::vector<uint8_t> encryptEcb(const std::vector<uint8_t> &data) const;
    std::vector<uint8_t> decryptEcb(const std::vector<uint8_t> &data) const;

    /** CTR mode: same operation encrypts and decrypts; any length. */
    std::vector<uint8_t> applyCtr(const std::vector<uint8_t> &data,
                                  const AesBlock &iv) const;

    // --- round kernels (public for per-kernel validation/benching) ---

    /** S-box of one byte: GF(2^8) inverse then the affine transform. */
    static uint8_t sbox(uint8_t x);
    static uint8_t invSbox(uint8_t x);

    static void addRoundKey(AesBlock &state, const uint32_t *round_key);
    static void subBytes(AesBlock &state);
    static void invSubBytes(AesBlock &state);
    static void shiftRows(AesBlock &state);
    static void invShiftRows(AesBlock &state);
    static void mixColumns(AesBlock &state);
    static void invMixColumns(AesBlock &state);

    /** xtime-free field multiply under 0x11b (delegates to GFField). */
    static uint8_t gfMul(uint8_t a, uint8_t b);

  private:
    void expandKey(const std::vector<uint8_t> &key);

    unsigned nk_;     // key length in words
    unsigned rounds_; // 10/12/14
    std::vector<uint32_t> round_keys_;
};

} // namespace gfp

#endif // GFP_CRYPTO_AES_H
