#include "crypto/ecc.h"

#include "common/logging.h"
#include "common/random.h"

namespace gfp {

bool
EcPoint::operator==(const EcPoint &o) const
{
    if (infinity || o.infinity)
        return infinity == o.infinity;
    return x == o.x && y == o.y;
}

EllipticCurve::EllipticCurve(BinaryField field, Gf2x a, Gf2x b)
    : field_(std::move(field)), a_(std::move(a)), b_(std::move(b))
{
    if (b_.isZero())
        GFP_FATAL("binary curve requires b != 0 (otherwise singular)");
}

EllipticCurve
EllipticCurve::nist(const std::string &name)
{
    auto make = [](const std::string &n, const char *fld, Gf2x a, Gf2x b,
                   const char *gx, const char *gy, const char *order) {
        EllipticCurve c(BinaryField::nist(fld), std::move(a), std::move(b));
        c.base_ = EcPoint{Gf2x::fromHexString(gx), Gf2x::fromHexString(gy),
                          false};
        c.order_ = Gf2x::fromHexString(order);
        c.name_ = n;
        GFP_ASSERT(c.isOnCurve(c.base_), "base point of %s not on curve",
                   n.c_str());
        return c;
    };

    if (name == "K-163") {
        return make("K-163", "163", Gf2x(1), Gf2x(1),
                    "2fe13c0537bbc11acaa07d793de4e6d5e5c94eee8",
                    "289070fb05d38ff58321f2e800536d538ccdaa3d9",
                    "4000000000000000000020108a2e0cc0d99f8a5ef");
    }
    if (name == "B-163") {
        return make("B-163", "163", Gf2x(1),
                    Gf2x::fromHexString(
                        "20a601907b8c953ca1481eb10512f78744a3205fd"),
                    "3f0eba16286a2d57ea0991168d4994637e8343e36",
                    "0d51fbc6c71a0094fa2cdd545b11c5c0c797324f1",
                    "40000000000000000000292fe77e70c12a4234c33");
    }
    if (name == "K-233") {
        return make("K-233", "233", Gf2x(0), Gf2x(1),
                    "17232ba853a7e731af129f22ff4149563a419c26bf50a4c9d6ee"
                    "fad6126",
                    "1db537dece819b7f70f555a67c427a8cd9bf18aeb9b56e0c1105"
                    "6fae6a3",
                    "8000000000000000000000000000069d5bb915bcd46efb1ad5f1"
                    "73abdf");
    }
    if (name == "B-233") {
        return make("B-233", "233", Gf2x(1),
                    Gf2x::fromHexString(
                        "66647ede6c332c7f8c0923bb58213b333b20e9ce4281fe11"
                        "5f7d8f90ad"),
                    "fac9dfcbac8313bb2139f1bb755fef65bc391f8b36f8f8eb7371"
                    "fd558b",
                    "1006a08a41903350678e58528bebf8a0beff867a7ca36716f7e0"
                    "1f81052",
                    "1000000000000000000000000000013e974e72f8a6922031d260"
                    "3cfe0d7");
    }
    if (name == "K-283") {
        return make("K-283", "283", Gf2x(0), Gf2x(1),
                    "503213f78ca44883f1a3b8162f188e553cd265f23c1567a16876"
                    "913b0c2ac2458492836",
                    "1ccda380f1c9e318d90f95d07e5426fe87e45c0e8184698e4596"
                    "2364e34116177dd2259",
                    "1ffffffffffffffffffffffffffffffffffe9ae2ed07577265df"
                    "f7f94451e061e163c61");
    }
    if (name == "B-283") {
        return make("B-283", "283", Gf2x(1),
                    Gf2x::fromHexString(
                        "27b680ac8b8596da5a4af8a19a0303fca97fd7645309fa2a"
                        "581485af6263e313b79a2f5"),
                    "5f939258db7dd90e1934f8c70b0dfec2eed25b8557eac9c80e2e"
                    "198f8cdbecd86b12053",
                    "3676854fe24141cb98fe6d4b20d02b4516ff702350eddb082677"
                    "9c813f0df45be8112f4",
                    "3ffffffffffffffffffffffffffffffffffef90399660fc938a9"
                    "0165b042a7cefadb307");
    }
    GFP_FATAL("unknown NIST curve '%s'", name.c_str());
}

Gf2x
EllipticCurve::fmul(const Gf2x &x, const Gf2x &y) const
{
    ++ops_.mul;
    return field_.mul(x, y);
}

Gf2x
EllipticCurve::fsqr(const Gf2x &x) const
{
    ++ops_.sqr;
    return field_.sqr(x);
}

Gf2x
EllipticCurve::finv(const Gf2x &x) const
{
    ++ops_.inv;
    return field_.inv(x);
}

Gf2x
EllipticCurve::fadd(const Gf2x &x, const Gf2x &y) const
{
    ++ops_.add;
    return x ^ y;
}

Gf2x
EllipticCurve::fmulConst(const Gf2x &c, const Gf2x &x) const
{
    // Curve-constant multiplies: a = 0 or b = 1 on Koblitz curves make
    // these free, exactly the optimization a real kernel applies.
    if (c.isZero())
        return Gf2x();
    if (c.isOne())
        return x;
    return fmul(c, x);
}

bool
EllipticCurve::isOnCurve(const EcPoint &p) const
{
    if (p.infinity)
        return true;
    if (!field_.contains(p.x) || !field_.contains(p.y))
        return false;
    // y^2 + xy == x^3 + a x^2 + b
    Gf2x lhs = field_.sqr(p.y) ^ field_.mul(p.x, p.y);
    Gf2x x2 = field_.sqr(p.x);
    Gf2x rhs = field_.mul(x2, p.x) ^ field_.mul(a_, x2) ^ b_;
    return lhs == rhs;
}

EcPoint
EllipticCurve::negate(const EcPoint &p) const
{
    if (p.infinity)
        return p;
    return EcPoint{p.x, p.x ^ p.y, false};
}

EcPoint
EllipticCurve::addAffine(const EcPoint &p, const EcPoint &q) const
{
    if (p.infinity)
        return q;
    if (q.infinity)
        return p;
    if (p.x == q.x) {
        if (p.y == q.y)
            return doubleAffine(p);
        return EcPoint::infinityPoint(); // q == -p
    }
    // lambda = (y1 + y2) / (x1 + x2)
    Gf2x lambda = fmul(fadd(p.y, q.y), finv(fadd(p.x, q.x)));
    Gf2x x3 = fadd(fadd(fadd(fadd(fsqr(lambda), lambda), p.x), q.x), a_);
    Gf2x y3 = fadd(fadd(fmul(lambda, fadd(p.x, x3)), x3), p.y);
    return EcPoint{x3, y3, false};
}

EcPoint
EllipticCurve::doubleAffine(const EcPoint &p) const
{
    if (p.infinity)
        return p;
    if (p.x.isZero())
        return EcPoint::infinityPoint(); // 2-torsion: P == -P
    // lambda = x + y/x
    Gf2x lambda = fadd(p.x, fmul(p.y, finv(p.x)));
    Gf2x x3 = fadd(fadd(fsqr(lambda), lambda), a_);
    Gf2x y3 = fadd(fmul(fadd(lambda, Gf2x(uint64_t{1})), x3), fsqr(p.x));
    return EcPoint{x3, y3, false};
}

LdPoint
EllipticCurve::toProjective(const EcPoint &p) const
{
    if (p.infinity)
        return LdPoint{Gf2x(uint64_t{1}), Gf2x(), Gf2x(), true};
    return LdPoint{p.x, p.y, Gf2x(uint64_t{1}), false};
}

EcPoint
EllipticCurve::toAffine(const LdPoint &p) const
{
    if (p.infinity || p.z.isZero())
        return EcPoint::infinityPoint();
    // x = X/Z, y = Y/Z^2 — one field inversion per conversion, which is
    // why projective coordinates pay off (Sec. 3.3.4).
    Gf2x zinv = finv(p.z);
    Gf2x x = fmul(p.x, zinv);
    Gf2x y = fmul(p.y, fsqr(zinv));
    return EcPoint{x, y, false};
}

LdPoint
EllipticCurve::doubleLd(const LdPoint &p) const
{
    if (p.infinity || p.z.isZero() || p.x.isZero())
        return LdPoint{Gf2x(uint64_t{1}), Gf2x(), Gf2x(), true};

    // López-Dahab doubling:
    //   Z3 = X1^2 * Z1^2
    //   X3 = X1^4 + b * Z1^4
    //   Y3 = b*Z1^4*Z3 + X3*(a*Z3 + Y1^2 + b*Z1^4)
    Gf2x x2 = fsqr(p.x);
    Gf2x z2 = fsqr(p.z);
    Gf2x z4b = fmulConst(b_, fsqr(z2));
    Gf2x z3 = fmul(x2, z2);
    Gf2x x3 = fadd(fsqr(x2), z4b);
    Gf2x inner = fadd(fadd(fmulConst(a_, z3), fsqr(p.y)), z4b);
    Gf2x y3 = fadd(fmul(z4b, z3), fmul(x3, inner));
    return LdPoint{x3, y3, z3, false};
}

LdPoint
EllipticCurve::addMixed(const LdPoint &p, const EcPoint &q) const
{
    if (p.infinity || p.z.isZero())
        return toProjective(q);
    if (q.infinity)
        return p;

    // Guide-to-ECC style mixed addition (P projective, Q affine):
    //   A = Y2*Z1^2 + Y1        B = X2*Z1 + X1
    Gf2x z1sq = fsqr(p.z);
    Gf2x a_val = fadd(fmul(q.y, z1sq), p.y);
    Gf2x b_val = fadd(fmul(q.x, p.z), p.x);

    if (b_val.isZero()) {
        if (a_val.isZero()) {
            // Same point: fall back to doubling.
            return doubleLd(p);
        }
        // Q == -P.
        return LdPoint{Gf2x(uint64_t{1}), Gf2x(), Gf2x(), true};
    }

    //   C = Z1*B    D = B^2*(C + a*Z1^2)    Z3 = C^2    E = A*C
    Gf2x c_val = fmul(p.z, b_val);
    Gf2x d_val = fmul(fsqr(b_val), fadd(c_val, fmulConst(a_, z1sq)));
    Gf2x z3 = fsqr(c_val);
    Gf2x e_val = fmul(a_val, c_val);
    //   X3 = A^2 + D + E
    Gf2x x3 = fadd(fadd(fsqr(a_val), d_val), e_val);
    //   F = X3 + X2*Z3    G = (X2 + Y2)*Z3^2
    Gf2x f_val = fadd(x3, fmul(q.x, z3));
    Gf2x g_val = fmul(fadd(q.x, q.y), fsqr(z3));
    //   Y3 = (E + Z3)*F + G
    Gf2x y3 = fadd(fmul(fadd(e_val, z3), f_val), g_val);
    return LdPoint{x3, y3, z3, false};
}

EcPoint
EllipticCurve::scalarMult(const Gf2x &k, const EcPoint &p) const
{
    if (k.isZero() || p.infinity)
        return EcPoint::infinityPoint();

    // MSB-first double-and-add over López-Dahab coordinates: one
    // conversion in (free), one inversion-bearing conversion out.
    int top = k.degree();
    LdPoint acc = toProjective(p);
    for (int i = top - 1; i >= 0; --i) {
        acc = doubleLd(acc);
        if (k.getBit(i))
            acc = addMixed(acc, p);
    }
    return toAffine(acc);
}

EcPoint
EllipticCurve::scalarMultAffine(const Gf2x &k, const EcPoint &p) const
{
    if (k.isZero() || p.infinity)
        return EcPoint::infinityPoint();
    int top = k.degree();
    EcPoint acc = p;
    for (int i = top - 1; i >= 0; --i) {
        acc = doubleAffine(acc);
        if (k.getBit(i))
            acc = addAffine(acc, p);
    }
    return acc;
}

std::vector<EcPoint>
EllipticCurve::batchToAffine(const std::vector<LdPoint> &pts) const
{
    std::vector<EcPoint> out(pts.size());
    // Prefix products of the finite points' Z coordinates.
    std::vector<size_t> finite;
    std::vector<Gf2x> prefix;
    Gf2x running(uint64_t{1});
    for (size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].infinity || pts[i].z.isZero()) {
            out[i] = EcPoint::infinityPoint();
            continue;
        }
        running = fmul(running, pts[i].z);
        finite.push_back(i);
        prefix.push_back(running);
    }
    if (finite.empty())
        return out;

    // One inversion of the total product; the backward pass recovers
    // each 1/Z_i as inv(Z_j..Z_n) * (Z_1..Z_{i-1}) and strips Z_i from
    // the running suffix inverse.
    Gf2x suffix_inv = finv(prefix.back());
    for (size_t j = finite.size(); j-- > 0;) {
        size_t i = finite[j];
        Gf2x zinv = j == 0 ? suffix_inv : fmul(suffix_inv, prefix[j - 1]);
        suffix_inv = fmul(suffix_inv, pts[i].z);
        out[i] = EcPoint{fmul(pts[i].x, zinv),
                         fmul(pts[i].y, fsqr(zinv)), false};
    }
    return out;
}

EcPoint
EllipticCurve::scalarMultWindow(const Gf2x &k, const EcPoint &p,
                                unsigned width) const
{
    GFP_ASSERT(width >= 1 && width <= 8, "window width %u out of range",
               width);
    if (k.isZero() || p.infinity)
        return EcPoint::infinityPoint();
    // Short scalars can't amortize the 2^width-entry table.
    if (width == 1 || k.degree() < static_cast<int>(4 * width))
        return scalarMult(k, p);

    // Table of [1 .. 2^width - 1] * P: doublings for even multiples,
    // one mixed addition for each odd one, then a single shared
    // inversion to flatten everything to affine so the main loop can
    // keep using the cheap mixed addition.
    const size_t tsize = size_t{1} << width;
    std::vector<LdPoint> table(tsize);
    table[1] = toProjective(p);
    for (size_t i = 2; i < tsize; ++i)
        table[i] = (i & 1) ? addMixed(table[i - 1], p)
                           : doubleLd(table[i / 2]);
    std::vector<EcPoint> affine = batchToAffine(table);

    // MSB-first fixed windows: width doublings, then add the digit's
    // precomputed multiple.
    const unsigned nbits = k.bitLength();
    const unsigned ndigits = (nbits + width - 1) / width;
    LdPoint acc{Gf2x(uint64_t{1}), Gf2x(), Gf2x(), true};
    for (unsigned d = ndigits; d-- > 0;) {
        if (!acc.infinity)
            for (unsigned s = 0; s < width; ++s)
                acc = doubleLd(acc);
        uint32_t digit = 0;
        for (unsigned s = 0; s < width; ++s) {
            unsigned bit = d * width + s;
            if (bit < nbits)
                digit |= k.getBit(bit) << s;
        }
        if (digit)
            acc = addMixed(acc, affine[digit]);
    }
    return toAffine(acc);
}

EcPoint
EllipticCurve::scalarMultMontgomery(const Gf2x &k, const EcPoint &p) const
{
    if (k.isZero() || p.infinity)
        return EcPoint::infinityPoint();
    if (k.isOne())
        return p;

    // López-Dahab x-only ladder.  State: P1 = (X1 : Z1), P2 = (X2 : Z2)
    // with P2 - P1 == P throughout; every bit performs one Madd and one
    // Mdouble (uniform control flow).
    const Gf2x &x = p.x;
    Gf2x x1 = x, z1(uint64_t{1});
    Gf2x x2 = fadd(fsqr(fsqr(x)), b_); // x^4 + b
    Gf2x z2 = fsqr(x);

    auto mdouble = [&](Gf2x &xx, Gf2x &zz) {
        // X' = X^4 + b Z^4 ; Z' = X^2 Z^2
        Gf2x xs = fsqr(xx), zs = fsqr(zz);
        Gf2x newx = fadd(fsqr(xs), fmulConst(b_, fsqr(zs)));
        zz = fmul(xs, zs);
        xx = newx;
    };
    auto madd = [&](Gf2x &xa, Gf2x &za, const Gf2x &xb, const Gf2x &zb) {
        // Z' = (Xa Zb + Xb Za)^2 ; X' = x Z' + (Xa Zb)(Xb Za)
        Gf2x t1 = fmul(xa, zb);
        Gf2x t2 = fmul(xb, za);
        Gf2x newz = fsqr(fadd(t1, t2));
        xa = fadd(fmul(x, newz), fmul(t1, t2));
        za = newz;
    };

    for (int i = k.degree() - 1; i >= 0; --i) {
        if (k.getBit(i)) {
            madd(x1, z1, x2, z2);
            mdouble(x2, z2);
        } else {
            madd(x2, z2, x1, z1);
            mdouble(x1, z1);
        }
    }

    if (z1.isZero())
        return EcPoint::infinityPoint();
    if (z2.isZero()) {
        // P2 hit infinity: P1 == (order-1) P == -P.
        return negate(p);
    }

    // y-recovery (López-Dahab): with x3 = X1/Z1,
    // y3 = (x + x3) [ (X1 + x Z1)(X2 + x Z2) + (x^2 + y)(Z1 Z2) ]
    //      / (x Z1 Z2) + y
    Gf2x x3 = fmul(x1, finv(z1));
    Gf2x t1 = fadd(x1, fmul(x, z1));
    Gf2x t2 = fadd(x2, fmul(x, z2));
    Gf2x z1z2 = fmul(z1, z2);
    Gf2x num = fadd(fmul(t1, t2),
                    fmul(fadd(fsqr(x), p.y), z1z2));
    Gf2x den = fmul(x, z1z2);
    Gf2x y3 = fadd(fmul(fmul(fadd(x, x3), num), finv(den)), p.y);
    return EcPoint{x3, y3, false};
}

Gf2x
EllipticCurve::evaluationScalar(uint64_t seed)
{
    // 113-bit scalar, top bit set, exactly 56 of the lower 112 bits set
    // (Sec. 3.3.4's 112-bit-security workload: 112 PD + 56 PA).
    Rng rng(seed);
    Gf2x k = Gf2x::monomial(112);
    unsigned placed = 0;
    while (placed < 56) {
        unsigned pos = static_cast<unsigned>(rng.below(112));
        if (!k.getBit(pos)) {
            k.setBit(pos, 1);
            ++placed;
        }
    }
    return k;
}

Ecdh::KeyPair
Ecdh::generate(uint64_t seed) const
{
    // Reduce a random scalar below the group order by clamping its bit
    // length; good enough for protocol correctness experiments.
    unsigned bits = curve_->order().isZero()
                        ? curve_->field().m() - 1
                        : curve_->order().bitLength() - 1;
    Gf2x d = Gf2x::random(bits, seed);
    if (d.isZero())
        d = Gf2x(uint64_t{1});
    return KeyPair{d, curve_->scalarMultWindow(d, curve_->basePoint())};
}

std::optional<Gf2x>
Ecdh::sharedSecret(const Gf2x &my_private, const EcPoint &their_public) const
{
    EcPoint s = curve_->scalarMultWindow(my_private, their_public);
    if (s.infinity)
        return std::nullopt;
    return s.x;
}

} // namespace gfp
