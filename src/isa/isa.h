/**
 * @file
 * The GFP instruction set.
 *
 * The paper's processor executes "a subset of Cortex M0+ instructions"
 * for control / integer / memory work plus the Table 1 GF instructions.
 * This reproduction defines an equivalent load/store ISA with the same
 * architectural parameters: 16 32-bit general registers, NZCV flags, a
 * 32-bit datapath, and the seven GF instructions.  The cycle model (in
 * src/sim) matches the paper's accounting: loads/stores take 2 cycles,
 * everything else — including every GF instruction — takes 1 cycle,
 * with a 1-cycle refill penalty for taken branches in the two-stage
 * pipeline.
 */

#ifndef GFP_ISA_ISA_H
#define GFP_ISA_ISA_H

#include <cstdint>
#include <string>

namespace gfp {

enum class Op : uint8_t {
    // ALU, register operands
    kAdd,   ///< rd = rs1 + rs2
    kSub,   ///< rd = rs1 - rs2
    kAnd,   ///< rd = rs1 & rs2
    kOrr,   ///< rd = rs1 | rs2
    kEor,   ///< rd = rs1 ^ rs2
    kLsl,   ///< rd = rs1 << (rs2 & 31)
    kLsr,   ///< rd = rs1 >> (rs2 & 31) (logical)
    kAsr,   ///< rd = rs1 >> (rs2 & 31) (arithmetic)
    kMul,   ///< rd = low32(rs1 * rs2)
    kMov,   ///< rd = rs1
    kCmp,   ///< set NZCV from rs1 - rs2

    // ALU, immediate operand (signed 12-bit unless noted)
    kAddi,
    kSubi,
    kAndi,
    kOrri,
    kEori,
    kLsli,  ///< shift amount 0..31
    kLsri,
    kAsri,
    kMovi,  ///< rd = zero-extended 16-bit immediate
    kMovt,  ///< rd = (rd & 0xffff) | (imm16 << 16)
    kCmpi,

    // Memory (base register + signed 12-bit byte offset)
    kLdr,   ///< word load
    kStr,
    kLdrb,  ///< byte load, zero-extended
    kStrb,
    kLdrh,  ///< halfword load, zero-extended
    kStrh,

    // Memory (base register + index register)
    kLdrr,
    kStrr,
    kLdrbr,
    kStrbr,
    kLdrhr,
    kStrhr,

    // Control (targets are word offsets relative to the next instruction)
    kB,
    kBeq,   ///< Z
    kBne,   ///< !Z
    kBlt,   ///< signed <
    kBge,   ///< signed >=
    kBgt,   ///< signed >
    kBle,   ///< signed <=
    kBlo,   ///< unsigned <
    kBhs,   ///< unsigned >=
    kBhi,   ///< unsigned >
    kBls,   ///< unsigned <=
    kBl,    ///< call: lr = return address, branch
    kJr,    ///< jump to register rs1
    kRet,   ///< jump to lr
    kNop,
    kHalt,

    // Galois-field extension (paper Table 1)
    kGfMuls,  ///< gfMult_simd    rd = rs1 (x) rs2, 4 x 8-bit lanes
    kGfInvs,  ///< gfMultInv_simd rd = rs1^-1 per lane
    kGfSqs,   ///< gfSq_simd      rd = rs1^2 per lane
    kGfPows,  ///< gfPower_simd   rd = rs1^rs2 per lane
    kGfAdds,  ///< gfAdd_simd     rd = rs1 xor rs2
    kGf32Mul, ///< gf32bMult      rd:rd2 = rs1 x rs2 carry-free
    kGfCfg,   ///< gfConfig       load 64-bit config blob from address imm

    kNumOps
};

/** Broad classification used by the cycle/statistics model.  Every
 *  opcode maps to exactly one class, so the per-class counters in
 *  CycleStats partition `instrs`/`cycles` (asserted by
 *  CycleStats::consistent()). */
enum class InstrClass : uint8_t {
    kAlu,    ///< integer/bitwise data processing (incl. cmp/cmpi)
    kLoad,
    kStore,
    kBranch, ///< all control transfers: b.cc, bl, jr, ret
    kCtrl,   ///< nop and halt (no dataflow, no transfer)
    kGfSimd,
    kGf32,
    kGfCfg,
};

/** Number of InstrClass values (for per-class accumulation arrays). */
constexpr unsigned kNumInstrClasses = 8;

/** Human-readable class name ("alu", "load", ...). */
const char *instrClassName(InstrClass cls);

/** A decoded instruction. */
struct Instr
{
    Op op = Op::kNop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    uint8_t rd2 = 0;  ///< second destination, used by gf32mul (low word)
    int32_t imm = 0;

    bool operator==(const Instr &o) const = default;
};

/** Mnemonic for an opcode ("add", "gfmuls", ...). */
const char *opName(Op op);

/** Classification for cycle accounting. */
InstrClass classOf(Op op);

/** True for any of the GF-extension opcodes. */
bool isGfOp(Op op);

/** True for conditional/unconditional PC-relative branches (not JR/RET). */
bool isPcRelBranch(Op op);

/** Register name: "r4", with "sp"/"lr" for r13/r14. */
std::string regName(unsigned r);

/** Number of architectural registers. */
constexpr unsigned kNumRegs = 16;
constexpr unsigned kRegSp = 13;
constexpr unsigned kRegLr = 14;

} // namespace gfp

#endif // GFP_ISA_ISA_H
