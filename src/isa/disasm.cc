#include "isa/disasm.h"

#include "common/strutil.h"
#include "isa/encoding.h"

namespace gfp {

std::string
disassemble(const Instr &in, int64_t pc)
{
    const std::string name = opName(in.op);
    auto r = [](unsigned reg) { return regName(reg); };

    switch (in.op) {
      // rd, rs1, rs2
      case Op::kAdd:
      case Op::kSub:
      case Op::kAnd:
      case Op::kOrr:
      case Op::kEor:
      case Op::kLsl:
      case Op::kLsr:
      case Op::kAsr:
      case Op::kMul:
      case Op::kGfMuls:
      case Op::kGfPows:
      case Op::kGfAdds:
        return strprintf("%-7s %s, %s, %s", name.c_str(), r(in.rd).c_str(),
                         r(in.rs1).c_str(), r(in.rs2).c_str());
      // rd, rs1
      case Op::kMov:
      case Op::kGfInvs:
      case Op::kGfSqs:
        return strprintf("%-7s %s, %s", name.c_str(), r(in.rd).c_str(),
                         r(in.rs1).c_str());
      case Op::kCmp:
        return strprintf("%-7s %s, %s", name.c_str(), r(in.rs1).c_str(),
                         r(in.rs2).c_str());
      // rd, rs1, #imm
      case Op::kAddi:
      case Op::kSubi:
      case Op::kAndi:
      case Op::kOrri:
      case Op::kEori:
      case Op::kLsli:
      case Op::kLsri:
      case Op::kAsri:
        return strprintf("%-7s %s, %s, #%d", name.c_str(), r(in.rd).c_str(),
                         r(in.rs1).c_str(), in.imm);
      case Op::kMovi:
      case Op::kMovt:
        return strprintf("%-7s %s, #0x%x", name.c_str(), r(in.rd).c_str(),
                         in.imm);
      case Op::kCmpi:
        return strprintf("%-7s %s, #%d", name.c_str(), r(in.rs1).c_str(),
                         in.imm);
      // memory, immediate offset
      case Op::kLdr:
      case Op::kStr:
      case Op::kLdrb:
      case Op::kStrb:
      case Op::kLdrh:
      case Op::kStrh:
        if (in.imm == 0) {
            return strprintf("%-7s %s, [%s]", name.c_str(),
                             r(in.rd).c_str(), r(in.rs1).c_str());
        }
        return strprintf("%-7s %s, [%s, #%d]", name.c_str(),
                         r(in.rd).c_str(), r(in.rs1).c_str(), in.imm);
      // memory, register offset
      case Op::kLdrr:
      case Op::kStrr:
      case Op::kLdrbr:
      case Op::kStrbr:
      case Op::kLdrhr:
      case Op::kStrhr:
        return strprintf("%-7s %s, [%s, %s]", name.c_str(),
                         r(in.rd).c_str(), r(in.rs1).c_str(),
                         r(in.rs2).c_str());
      // branches
      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBgt:
      case Op::kBle:
      case Op::kBlo:
      case Op::kBhs:
      case Op::kBhi:
      case Op::kBls:
      case Op::kBl:
        if (pc >= 0) {
            int64_t target = pc + 4 + int64_t{in.imm} * 4;
            return strprintf("%-7s 0x%llx", name.c_str(),
                             static_cast<long long>(target));
        }
        return strprintf("%-7s %+d", name.c_str(), in.imm);
      case Op::kJr:
        return strprintf("%-7s %s", name.c_str(), r(in.rs1).c_str());
      case Op::kRet:
      case Op::kNop:
      case Op::kHalt:
        return name;
      case Op::kGf32Mul:
        return strprintf("%-7s %s, %s, %s, %s", name.c_str(),
                         r(in.rd).c_str(), r(in.rd2).c_str(),
                         r(in.rs1).c_str(), r(in.rs2).c_str());
      case Op::kGfCfg:
        return strprintf("%-7s #0x%x", name.c_str(), in.imm);
      default:
        return strprintf("<bad op %d>", static_cast<int>(in.op));
    }
}

std::string
disassembleWord(uint32_t word, int64_t pc)
{
    return disassemble(decode(word), pc);
}

} // namespace gfp
