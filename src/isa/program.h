/**
 * @file
 * An assembled GFP program: instruction words, initialized data, and the
 * symbol table.
 *
 * Code is loaded at byte address 0; the data section follows the code,
 * aligned to 8 bytes (so 64-bit gfConfig blobs are naturally aligned).
 */

#ifndef GFP_ISA_PROGRAM_H
#define GFP_ISA_PROGRAM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gfp {

struct Program
{
    std::vector<uint32_t> code;           ///< encoded instruction words
    std::vector<uint8_t> data;            ///< initialized data section
    uint32_t data_base = 0;               ///< byte address of data[0]
    std::map<std::string, uint32_t> symbols; ///< label -> byte address

    /**
     * Debug info: 1-based source line of each code word (parallel to
     * `code`).  Filled by the assembler; empty for programs built
     * programmatically.  Static-analysis findings use it to point at
     * the offending source line.
     */
    std::vector<int> line_of_word;

    /** Address of a label; fatal if undefined. */
    uint32_t symbol(const std::string &name) const;

    /** Source line of code word @p word_idx, or 0 when unknown. */
    int
    lineOfWord(size_t word_idx) const
    {
        return word_idx < line_of_word.size() ? line_of_word[word_idx] : 0;
    }

    /** Reverse symbol lookup: a label at byte address @p addr, or "". */
    std::string labelAt(uint32_t addr) const;

    /** Total footprint in bytes (code + data). */
    size_t footprint() const { return data_base + data.size(); }
};

} // namespace gfp

#endif // GFP_ISA_PROGRAM_H
