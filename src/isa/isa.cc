#include "isa/isa.h"

#include "common/logging.h"
#include "common/strutil.h"

namespace gfp {

const char *
opName(Op op)
{
    switch (op) {
      case Op::kAdd: return "add";
      case Op::kSub: return "sub";
      case Op::kAnd: return "and";
      case Op::kOrr: return "orr";
      case Op::kEor: return "eor";
      case Op::kLsl: return "lsl";
      case Op::kLsr: return "lsr";
      case Op::kAsr: return "asr";
      case Op::kMul: return "mul";
      case Op::kMov: return "mov";
      case Op::kCmp: return "cmp";
      case Op::kAddi: return "addi";
      case Op::kSubi: return "subi";
      case Op::kAndi: return "andi";
      case Op::kOrri: return "orri";
      case Op::kEori: return "eori";
      case Op::kLsli: return "lsli";
      case Op::kLsri: return "lsri";
      case Op::kAsri: return "asri";
      case Op::kMovi: return "movi";
      case Op::kMovt: return "movt";
      case Op::kCmpi: return "cmpi";
      case Op::kLdr: return "ldr";
      case Op::kStr: return "str";
      case Op::kLdrb: return "ldrb";
      case Op::kStrb: return "strb";
      case Op::kLdrh: return "ldrh";
      case Op::kStrh: return "strh";
      case Op::kLdrr: return "ldr";
      case Op::kStrr: return "str";
      case Op::kLdrbr: return "ldrb";
      case Op::kStrbr: return "strb";
      case Op::kLdrhr: return "ldrh";
      case Op::kStrhr: return "strh";
      case Op::kB: return "b";
      case Op::kBeq: return "beq";
      case Op::kBne: return "bne";
      case Op::kBlt: return "blt";
      case Op::kBge: return "bge";
      case Op::kBgt: return "bgt";
      case Op::kBle: return "ble";
      case Op::kBlo: return "blo";
      case Op::kBhs: return "bhs";
      case Op::kBhi: return "bhi";
      case Op::kBls: return "bls";
      case Op::kBl: return "bl";
      case Op::kJr: return "jr";
      case Op::kRet: return "ret";
      case Op::kNop: return "nop";
      case Op::kHalt: return "halt";
      case Op::kGfMuls: return "gfmuls";
      case Op::kGfInvs: return "gfinvs";
      case Op::kGfSqs: return "gfsqs";
      case Op::kGfPows: return "gfpows";
      case Op::kGfAdds: return "gfadds";
      case Op::kGf32Mul: return "gf32mul";
      case Op::kGfCfg: return "gfcfg";
      default:
        GFP_PANIC("opName: bad opcode %d", static_cast<int>(op));
    }
}

InstrClass
classOf(Op op)
{
    switch (op) {
      case Op::kLdr:
      case Op::kLdrb:
      case Op::kLdrh:
      case Op::kLdrr:
      case Op::kLdrbr:
      case Op::kLdrhr:
        return InstrClass::kLoad;
      case Op::kStr:
      case Op::kStrb:
      case Op::kStrh:
      case Op::kStrr:
      case Op::kStrbr:
      case Op::kStrhr:
        return InstrClass::kStore;
      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBgt:
      case Op::kBle:
      case Op::kBlo:
      case Op::kBhs:
      case Op::kBhi:
      case Op::kBls:
      case Op::kBl:
      case Op::kJr:
      case Op::kRet:
        return InstrClass::kBranch;
      case Op::kGfMuls:
      case Op::kGfInvs:
      case Op::kGfSqs:
      case Op::kGfPows:
      case Op::kGfAdds:
        return InstrClass::kGfSimd;
      case Op::kGf32Mul:
        return InstrClass::kGf32;
      case Op::kGfCfg:
        return InstrClass::kGfCfg;
      case Op::kNop:
      case Op::kHalt:
        return InstrClass::kCtrl;
      default:
        return InstrClass::kAlu;
    }
}

const char *
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::kAlu:    return "alu";
      case InstrClass::kLoad:   return "load";
      case InstrClass::kStore:  return "store";
      case InstrClass::kBranch: return "branch";
      case InstrClass::kCtrl:   return "ctrl";
      case InstrClass::kGfSimd: return "gfsimd";
      case InstrClass::kGf32:   return "gf32";
      case InstrClass::kGfCfg:  return "gfcfg";
    }
    GFP_PANIC("instrClassName: bad class %d", static_cast<int>(cls));
}

bool
isGfOp(Op op)
{
    switch (classOf(op)) {
      case InstrClass::kGfSimd:
      case InstrClass::kGf32:
      case InstrClass::kGfCfg:
        return true;
      default:
        return false;
    }
}

bool
isPcRelBranch(Op op)
{
    switch (op) {
      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBgt:
      case Op::kBle:
      case Op::kBlo:
      case Op::kBhs:
      case Op::kBhi:
      case Op::kBls:
      case Op::kBl:
        return true;
      default:
        return false;
    }
}

std::string
regName(unsigned r)
{
    GFP_ASSERT(r < kNumRegs, "bad register %u", r);
    if (r == kRegSp)
        return "sp";
    if (r == kRegLr)
        return "lr";
    return strprintf("r%u", r);
}

} // namespace gfp
