/**
 * @file
 * Disassembler for GFP instructions, used by execution traces and the
 * Table 6 inner-loop listing.
 */

#ifndef GFP_ISA_DISASM_H
#define GFP_ISA_DISASM_H

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace gfp {

/**
 * Render @p instr as assembly text.  When @p pc is provided (the byte
 * address of the instruction), branch targets are shown as absolute
 * addresses; otherwise as relative word offsets.
 */
std::string disassemble(const Instr &instr, int64_t pc = -1);

/** Decode and render a raw instruction word. */
std::string disassembleWord(uint32_t word, int64_t pc = -1);

} // namespace gfp

#endif // GFP_ISA_DISASM_H
