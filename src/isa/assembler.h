/**
 * @file
 * Two-pass assembler for the GFP ISA.
 *
 * Syntax overview:
 *
 *     ; comments with ';' or '//'
 *     start:                       ; labels
 *         movi   r0, #0
 *         li     r1, #0x12345      ; pseudo: expands to movi(+movt)
 *         la     r2, table         ; pseudo: label address (movi+movt)
 *         ldrb   r3, [r2, r0]      ; register-offset addressing
 *         ldr    r4, [sp, #-8]     ; immediate-offset addressing
 *         gfmuls r3, r3, r4
 *         cmpi   r0, #31
 *         bne    start
 *         bl     subroutine
 *         halt
 *     .data
 *     .align 8
 *     table:
 *         .byte  1, 2, 4, 8
 *         .half  0x1234
 *         .word  0xdeadbeef, table ; words may reference labels
 *         .space 64
 *
 * Pseudo-instruction sizes are deterministic (la is always two words;
 * li is one word iff the literal fits in unsigned 16 bits), so label
 * addresses resolve in a single sizing pass.
 */

#ifndef GFP_ISA_ASSEMBLER_H
#define GFP_ISA_ASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace gfp {

/**
 * One structured assembly diagnostic.  Every error the assembler can
 * produce — parse errors, layout errors, and the encoder's field-range
 * checks — carries a 1-based source line and column, so editors and
 * the gfp-lint driver can point at the offending token.
 */
struct AsmDiagnostic
{
    int line = 0;        ///< 1-based source line (0 = unknown)
    int column = 0;      ///< 1-based column of the offending token
    std::string message; ///< diagnostic text, no location prefix
    std::string file;    ///< originating source path; may be empty

    /** "file: line L, col C: message" (no "file:" when unknown).
     *  Multi-file drivers (gfp-lint over several inputs, SARIF
     *  locations) rely on the path traveling with the diagnostic. */
    std::string render() const;
};

class Assembler
{
  public:
    /** Assemble @p source; fatal (with line/column info) on any error. */
    static Program assemble(const std::string &source);

    /**
     * Assemble @p source, reporting errors instead of exiting: returns
     * true and fills @p out on success, or returns false and fills
     * @p error with the rendered diagnostic (including 1-based line and
     * column) for malformed source.  The fuzzers drive this entry point.
     */
    static bool tryAssemble(const std::string &source, Program &out,
                            std::string &error);

    /** Structured-diagnostic variant: fills @p diag on failure. */
    static bool tryAssemble(const std::string &source, Program &out,
                            AsmDiagnostic &diag);

    /** As above, stamping @p file into the diagnostic so multi-file
     *  drivers can attribute the error without extra bookkeeping. */
    static bool tryAssembleFile(const std::string &source,
                                const std::string &file, Program &out,
                                AsmDiagnostic &diag);
};

} // namespace gfp

#endif // GFP_ISA_ASSEMBLER_H
