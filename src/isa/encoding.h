/**
 * @file
 * Binary encoding of GFP instructions into 32-bit words.
 *
 * Layout (bit ranges inclusive):
 *   [31:24] opcode
 *   [23:20] rd      [19:16] rs1     [15:12] rs2     [11:8] rd2
 *   [15:0]  imm16   (movi/movt: zero-extended; branches: signed word
 *                    offset relative to the next instruction)
 *   [11:0]  imm12   (ALU-immediate and load/store offsets, signed)
 *   [19:0]  imm20   (gfcfg absolute byte address, unsigned)
 *
 * The paper packs its GF instructions into 26 bits (10-bit opcode +
 * 16-bit register field); we use one uniform 32-bit container word for
 * the whole ISA, which changes nothing the evaluation measures.
 */

#ifndef GFP_ISA_ENCODING_H
#define GFP_ISA_ENCODING_H

#include <cstdint>

#include "isa/isa.h"

namespace gfp {

/** Encode @p instr; fatal if a field is out of range. */
uint32_t encode(const Instr &instr);

/** Decode a 32-bit instruction word; fatal on an unknown opcode. */
Instr decode(uint32_t word);

/**
 * Non-fatal decode: false on an unknown opcode (@p out untouched).
 * The simulator fetch path uses this so an undecodable word — e.g. pc
 * running off into data, or an SEU-corrupted instruction — surfaces as
 * an IllegalInstruction trap rather than killing the host.
 */
bool tryDecode(uint32_t word, Instr &out);

/** Immediate-field kind an opcode uses. */
enum class ImmKind { kNone, kImm16, kSImm16, kImm12, kImm20 };

/** Which immediate field @p op uses. */
ImmKind immKindOf(Op op);

} // namespace gfp

#endif // GFP_ISA_ENCODING_H
