#include "isa/assembler.h"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "common/logging.h"
#include "common/strutil.h"
#include "isa/encoding.h"

namespace gfp {

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        GFP_FATAL("undefined symbol '%s'", name.c_str());
    return it->second;
}

std::string
Program::labelAt(uint32_t addr) const
{
    for (const auto &[name, a] : symbols) {
        if (a == addr)
            return name;
    }
    return "";
}

std::string
AsmDiagnostic::render() const
{
    if (file.empty())
        return strprintf("line %d, col %d: %s", line, column,
                         message.c_str());
    return strprintf("%s: line %d, col %d: %s", file.c_str(), line, column,
                     message.c_str());
}

namespace {

struct Statement
{
    int line = 0;
    int col = 1;                     // 1-based column of the mnemonic
    std::string mnemonic;            // lower-cased, empty for pure directive
    std::vector<std::string> operands;
    std::vector<int> operand_cols;   // 1-based column of each operand
    bool in_data = false;
    uint32_t address = 0;            // assigned in pass 1
    unsigned size_bytes = 0;
};

class AsmContext
{
  public:
    AsmContext(const std::string &source, AsmDiagnostic *diag)
        : source_(source), diag_(diag)
    {}

    Program run();

  private:
    [[noreturn]] void err(int line, int col, const std::string &msg) const
    {
        if (diag_)
            *diag_ = AsmDiagnostic{line, col, msg};
        GFP_FATAL("assembly error, line %d, col %d: %s", line, col,
                  msg.c_str());
    }

    /** Column of operand @p i of @p st (mnemonic column as fallback). */
    int opCol(const Statement &st, size_t i) const
    {
        return i < st.operand_cols.size() ? st.operand_cols[i] : st.col;
    }

    /**
     * Split an operand list on commas that are outside brackets.
     * @p base_col is the 1-based column of @p s in the source line;
     * each operand's own column lands in @p cols.
     */
    void splitOperands(const std::string &s, int base_col,
                       std::vector<std::string> &out,
                       std::vector<int> &cols) const;

    std::optional<unsigned> parseRegOpt(const std::string &tok) const;
    unsigned parseReg(int line, int col, const std::string &tok) const;
    int64_t parseNumber(int line, int col, const std::string &tok) const;
    /** "#123", "#0x1f", "#-4" -> value. */
    int64_t parseImm(int line, int col, const std::string &tok) const;
    /** Number or label address (pass 2 only). */
    int64_t parseValueOrLabel(int line, int col,
                              const std::string &tok) const;

    unsigned sizeOf(const Statement &st) const;
    void emit(const Statement &st, std::vector<uint32_t> &code) const;
    void emitData(const Statement &st, std::vector<uint8_t> &data) const;

    void parse();
    void layout();

    const std::string &source_;
    AsmDiagnostic *diag_;
    std::vector<Statement> stmts_;
    std::map<std::string, uint32_t> symbols_;
    uint32_t text_bytes_ = 0;
    uint32_t data_base_ = 0;
    uint32_t data_bytes_ = 0;
};

void
AsmContext::splitOperands(const std::string &s, int base_col,
                          std::vector<std::string> &out,
                          std::vector<int> &cols) const
{
    std::string cur;
    size_t cur_start = 0;
    bool in_token = false;
    int depth = 0;
    auto flush = [&](size_t) {
        std::string t = trim(cur);
        if (!t.empty()) {
            // Column of the first non-blank character of the token.
            size_t lead = cur.find_first_not_of(" \t");
            out.push_back(t);
            cols.push_back(base_col + static_cast<int>(cur_start + lead));
        }
        cur.clear();
        in_token = false;
    };
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            flush(i);
        } else {
            if (!in_token) {
                cur_start = i;
                in_token = true;
            }
            cur.push_back(c);
        }
    }
    flush(s.size());
}

std::optional<unsigned>
AsmContext::parseRegOpt(const std::string &tok) const
{
    std::string t = toLower(tok);
    if (t == "sp")
        return kRegSp;
    if (t == "lr")
        return kRegLr;
    if (t.size() >= 2 && t[0] == 'r') {
        char *end = nullptr;
        long v = std::strtol(t.c_str() + 1, &end, 10);
        if (end && *end == '\0' && v >= 0 && v < int(kNumRegs))
            return static_cast<unsigned>(v);
    }
    return std::nullopt;
}

unsigned
AsmContext::parseReg(int line, int col, const std::string &tok) const
{
    auto r = parseRegOpt(tok);
    if (!r)
        err(line, col, "expected register, got '" + tok + "'");
    return *r;
}

int64_t
AsmContext::parseNumber(int line, int col, const std::string &tok) const
{
    char *end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 0);
    if (!end || *end != '\0' || tok.empty())
        err(line, col, "expected number, got '" + tok + "'");
    return v;
}

int64_t
AsmContext::parseImm(int line, int col, const std::string &tok) const
{
    if (tok.empty() || tok[0] != '#')
        err(line, col, "expected '#imm', got '" + tok + "'");
    return parseNumber(line, col, tok.substr(1));
}

int64_t
AsmContext::parseValueOrLabel(int line, int col,
                              const std::string &tok) const
{
    if (!tok.empty() && tok[0] == '#')
        return parseNumber(line, col, tok.substr(1));
    if (!tok.empty() &&
        (std::isdigit(static_cast<unsigned char>(tok[0])) || tok[0] == '-')) {
        return parseNumber(line, col, tok);
    }
    auto it = symbols_.find(tok);
    if (it == symbols_.end())
        err(line, col, "undefined label '" + tok + "'");
    return it->second;
}

void
AsmContext::parse()
{
    bool in_data = false;
    int line_no = 0;
    for (const std::string &raw : split(source_, '\n', true)) {
        ++line_no;
        std::string line = raw;
        // Strip comments (truncation keeps column offsets intact).
        for (size_t i = 0; i + 1 <= line.size(); ++i) {
            if (line[i] == ';' ||
                (line[i] == '/' && i + 1 < line.size() && line[i+1] == '/')) {
                line.resize(i);
                break;
            }
        }

        // Peel off leading labels, tracking the scan position so every
        // statement knows its 1-based source column.
        size_t pos = line.find_first_not_of(" \t");
        while (pos != std::string::npos) {
            size_t colon = line.find(':', pos);
            if (colon == std::string::npos)
                break;
            std::string label = trim(line.substr(pos, colon - pos));
            // Reject "label:" with spaces in the name -> actually an error.
            if (label.empty() ||
                label.find_first_of(" \t[]#,") != std::string::npos) {
                err(line_no, static_cast<int>(pos) + 1,
                    "bad label '" + label + "'");
            }
            Statement st;
            st.line = line_no;
            st.col = static_cast<int>(pos) + 1;
            st.mnemonic = ":" + label; // marker for a label definition
            st.in_data = in_data;
            stmts_.push_back(st);
            pos = line.find_first_not_of(" \t", colon + 1);
        }
        if (pos == std::string::npos)
            continue;

        // Directive or instruction.
        size_t sp = line.find_first_of(" \t", pos);
        std::string mnemonic = toLower(
            line.substr(pos, sp == std::string::npos ? std::string::npos
                                                     : sp - pos));
        size_t rest_pos =
            sp == std::string::npos ? line.size()
                                    : line.find_first_not_of(" \t", sp);
        if (rest_pos == std::string::npos)
            rest_pos = line.size();
        std::string rest = trim(line.substr(rest_pos));

        if (mnemonic == ".text") {
            in_data = false;
            continue;
        }
        if (mnemonic == ".data") {
            in_data = true;
            continue;
        }

        Statement st;
        st.line = line_no;
        st.col = static_cast<int>(pos) + 1;
        st.mnemonic = mnemonic;
        splitOperands(rest, static_cast<int>(rest_pos) + 1, st.operands,
                      st.operand_cols);
        st.in_data = in_data;
        if (startsWith(mnemonic, ".") && !in_data)
            err(line_no, st.col,
                "data directive '" + mnemonic + "' in .text");
        if (!startsWith(mnemonic, ".") && in_data)
            err(line_no, st.col,
                "instruction '" + mnemonic + "' in .data");
        stmts_.push_back(st);
    }
}

unsigned
AsmContext::sizeOf(const Statement &st) const
{
    const std::string &m = st.mnemonic;
    if (m[0] == ':')
        return 0;
    if (st.in_data) {
        if (m == ".byte")
            return st.operands.size();
        if (m == ".half")
            return 2 * st.operands.size();
        if (m == ".word")
            return 4 * st.operands.size();
        if (m == ".space") {
            if (st.operands.size() != 1)
                err(st.line, st.col, ".space takes one operand");
            int64_t n = parseNumber(st.line, opCol(st, 0), st.operands[0]);
            if (n < 0)
                err(st.line, opCol(st, 0),
                    ".space size must be non-negative");
            return static_cast<unsigned>(n);
        }
        if (m == ".align")
            return 0; // handled by layout()
        err(st.line, st.col, "unknown directive '" + m + "'");
    }
    // Pseudo instructions with deterministic sizes.
    if (m == "la")
        return 8;
    if (m == "li") {
        if (st.operands.size() != 2)
            err(st.line, st.col, "li takes 'rd, #imm'");
        int64_t v = parseImm(st.line, opCol(st, 1), st.operands[1]);
        uint32_t u = static_cast<uint32_t>(v);
        return (u <= 0xffff) ? 4 : 8;
    }
    return 4;
}

void
AsmContext::layout()
{
    // Sizing pass: walk text statements first, then data statements, and
    // pin label addresses.
    uint32_t text_off = 0;
    for (Statement &st : stmts_) {
        if (st.in_data)
            continue;
        if (st.mnemonic[0] == ':') {
            symbols_[st.mnemonic.substr(1)] = text_off;
            st.address = text_off;
            continue;
        }
        st.address = text_off;
        st.size_bytes = sizeOf(st);
        text_off += st.size_bytes;
    }
    text_bytes_ = text_off;
    data_base_ = (text_bytes_ + 7) & ~7u; // 8-byte align the data section

    uint32_t data_off = 0;
    for (Statement &st : stmts_) {
        if (!st.in_data)
            continue;
        if (st.mnemonic[0] == ':') {
            symbols_[st.mnemonic.substr(1)] = data_base_ + data_off;
            st.address = data_base_ + data_off;
            continue;
        }
        if (st.mnemonic == ".align") {
            if (st.operands.size() != 1)
                err(st.line, st.col, ".align takes one operand");
            int64_t a = parseNumber(st.line, opCol(st, 0), st.operands[0]);
            if (a <= 0 || (a & (a - 1)))
                err(st.line, opCol(st, 0),
                    ".align operand must be a power of two");
            uint32_t abs = data_base_ + data_off;
            uint32_t pad =
                (static_cast<uint32_t>(a) - (abs % a)) % static_cast<uint32_t>(a);
            st.size_bytes = pad;
            st.address = abs;
            data_off += pad;
            continue;
        }
        st.address = data_base_ + data_off;
        st.size_bytes = sizeOf(st);
        data_off += st.size_bytes;
    }
    data_bytes_ = data_off;
}

void
AsmContext::emitData(const Statement &st, std::vector<uint8_t> &data) const
{
    const std::string &m = st.mnemonic;
    auto push = [&](uint64_t v, unsigned bytes) {
        for (unsigned i = 0; i < bytes; ++i)
            data.push_back(static_cast<uint8_t>(v >> (8 * i)));
    };
    if (m == ".byte") {
        for (size_t i = 0; i < st.operands.size(); ++i) {
            const auto &op = st.operands[i];
            int64_t v = parseValueOrLabel(st.line, opCol(st, i), op);
            if (v < -128 || v > 255)
                err(st.line, opCol(st, i),
                    ".byte value out of range: " + op);
            push(static_cast<uint64_t>(v), 1);
        }
    } else if (m == ".half") {
        for (size_t i = 0; i < st.operands.size(); ++i) {
            const auto &op = st.operands[i];
            int64_t v = parseValueOrLabel(st.line, opCol(st, i), op);
            if (v < -32768 || v > 65535)
                err(st.line, opCol(st, i),
                    ".half value out of range: " + op);
            push(static_cast<uint64_t>(v), 2);
        }
    } else if (m == ".word") {
        for (size_t i = 0; i < st.operands.size(); ++i) {
            int64_t v =
                parseValueOrLabel(st.line, opCol(st, i), st.operands[i]);
            push(static_cast<uint64_t>(v), 4);
        }
    } else if (m == ".space" || m == ".align") {
        data.insert(data.end(), st.size_bytes, 0);
    } else {
        err(st.line, st.col, "unknown directive '" + m + "'");
    }
}

void
AsmContext::emit(const Statement &st, std::vector<uint32_t> &code) const
{
    const std::string &m = st.mnemonic;
    const auto &ops = st.operands;
    auto need = [&](size_t n) {
        if (ops.size() != n) {
            err(st.line, st.col,
                strprintf("'%s' expects %zu operands, got %zu",
                          m.c_str(), n, ops.size()));
        }
    };
    // Encode, converting the encoder's field-range fatals into located
    // diagnostics: the range check fires after parsing, but the
    // statement still knows exactly where it came from.
    auto checked = [&](Instr in) {
        std::string enc_err;
        {
            ScopedFatalThrow guard;
            try {
                code.push_back(encode(in));
                return;
            } catch (const FatalError &e) {
                enc_err = e.what();
            }
        }
        err(st.line, st.col, enc_err);
    };

    // --- pseudo instructions ---
    if (m == "li" || m == "la") {
        need(2);
        unsigned rd = parseReg(st.line, opCol(st, 0), ops[0]);
        uint32_t value;
        if (m == "li") {
            value = static_cast<uint32_t>(
                parseImm(st.line, opCol(st, 1), ops[1]));
        } else {
            value = static_cast<uint32_t>(
                parseValueOrLabel(st.line, opCol(st, 1), ops[1]));
        }
        Instr lo{Op::kMovi, static_cast<uint8_t>(rd), 0, 0, 0,
                 static_cast<int32_t>(value & 0xffff)};
        checked(lo);
        if (st.size_bytes == 8) {
            Instr hi{Op::kMovt, static_cast<uint8_t>(rd), 0, 0, 0,
                     static_cast<int32_t>(value >> 16)};
            checked(hi);
        } else {
            GFP_ASSERT(value <= 0xffff);
        }
        return;
    }

    // --- memory operand forms ---
    auto isMem = [](const std::string &s) {
        return !s.empty() && s.front() == '[' && s.back() == ']';
    };
    if (m == "ldr" || m == "str" || m == "ldrb" || m == "strb" ||
        m == "ldrh" || m == "strh") {
        need(2);
        if (!isMem(ops[1]))
            err(st.line, opCol(st, 1),
                "expected memory operand, got '" + ops[1] + "'");
        unsigned rd = parseReg(st.line, opCol(st, 0), ops[0]);
        std::string inner = trim(ops[1].substr(1, ops[1].size() - 2));
        std::vector<std::string> parts;
        std::vector<int> part_cols;
        // Sub-token columns point at the memory operand as a whole.
        splitOperands(inner, opCol(st, 1), parts, part_cols);
        if (parts.empty() || parts.size() > 2)
            err(st.line, opCol(st, 1),
                "bad memory operand '" + ops[1] + "'");
        unsigned rn = parseReg(st.line, opCol(st, 1), parts[0]);

        bool reg_offset =
            parts.size() == 2 && parseRegOpt(parts[1]).has_value();
        Instr in;
        in.rd = static_cast<uint8_t>(rd);
        in.rs1 = static_cast<uint8_t>(rn);
        if (reg_offset) {
            in.rs2 = static_cast<uint8_t>(
                parseReg(st.line, opCol(st, 1), parts[1]));
            if (m == "ldr") in.op = Op::kLdrr;
            else if (m == "str") in.op = Op::kStrr;
            else if (m == "ldrb") in.op = Op::kLdrbr;
            else if (m == "strb") in.op = Op::kStrbr;
            else if (m == "ldrh") in.op = Op::kLdrhr;
            else in.op = Op::kStrhr;
        } else {
            in.imm = parts.size() == 2
                         ? static_cast<int32_t>(
                               parseImm(st.line, opCol(st, 1), parts[1]))
                         : 0;
            if (m == "ldr") in.op = Op::kLdr;
            else if (m == "str") in.op = Op::kStr;
            else if (m == "ldrb") in.op = Op::kLdrb;
            else if (m == "strb") in.op = Op::kStrb;
            else if (m == "ldrh") in.op = Op::kLdrh;
            else in.op = Op::kStrh;
        }
        checked(in);
        return;
    }

    // --- three-register ALU / GF ---
    auto rrr = [&](Op op) {
        need(3);
        Instr in{op,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 1), ops[1])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 2), ops[2])),
                 0, 0};
        checked(in);
    };
    // --- two-register ---
    auto rr = [&](Op op) {
        need(2);
        Instr in{op,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 1), ops[1])),
                 0, 0, 0};
        checked(in);
    };
    // --- reg, reg, #imm ---
    auto rri = [&](Op op) {
        need(3);
        Instr in{op,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 1), ops[1])),
                 0, 0,
                 static_cast<int32_t>(
                     parseImm(st.line, opCol(st, 2), ops[2]))};
        checked(in);
    };
    // --- branch to label or explicit offset ---
    auto branch = [&](Op op) {
        need(1);
        int64_t offset;
        if (!ops[0].empty() &&
            (ops[0][0] == '#' || ops[0][0] == '-' ||
             std::isdigit(static_cast<unsigned char>(ops[0][0])))) {
            offset = ops[0][0] == '#'
                         ? parseNumber(st.line, opCol(st, 0),
                                       ops[0].substr(1))
                         : parseNumber(st.line, opCol(st, 0), ops[0]);
        } else {
            auto it = symbols_.find(ops[0]);
            if (it == symbols_.end())
                err(st.line, opCol(st, 0),
                    "undefined label '" + ops[0] + "'");
            int64_t delta = int64_t{it->second} -
                            (int64_t{st.address} + 4);
            if (delta % 4 != 0)
                err(st.line, opCol(st, 0), "branch target not word aligned");
            offset = delta / 4;
        }
        Instr in{op, 0, 0, 0, 0, static_cast<int32_t>(offset)};
        checked(in);
    };

    if (m == "add") { rrr(Op::kAdd); return; }
    if (m == "sub") { rrr(Op::kSub); return; }
    if (m == "and") { rrr(Op::kAnd); return; }
    if (m == "orr") { rrr(Op::kOrr); return; }
    if (m == "eor") { rrr(Op::kEor); return; }
    if (m == "lsl") { rrr(Op::kLsl); return; }
    if (m == "lsr") { rrr(Op::kLsr); return; }
    if (m == "asr") { rrr(Op::kAsr); return; }
    if (m == "mul") { rrr(Op::kMul); return; }
    if (m == "gfmuls") { rrr(Op::kGfMuls); return; }
    if (m == "gfpows") { rrr(Op::kGfPows); return; }
    if (m == "gfadds") { rrr(Op::kGfAdds); return; }

    if (m == "mov") { rr(Op::kMov); return; }
    if (m == "gfinvs") { rr(Op::kGfInvs); return; }
    if (m == "gfsqs") { rr(Op::kGfSqs); return; }

    if (m == "cmp") {
        need(2);
        Instr in{Op::kCmp, 0,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 1), ops[1])),
                 0, 0};
        checked(in);
        return;
    }
    if (m == "cmpi") {
        need(2);
        Instr in{Op::kCmpi, 0,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 0, 0,
                 static_cast<int32_t>(
                     parseImm(st.line, opCol(st, 1), ops[1]))};
        checked(in);
        return;
    }

    if (m == "addi") { rri(Op::kAddi); return; }
    if (m == "subi") { rri(Op::kSubi); return; }
    if (m == "andi") { rri(Op::kAndi); return; }
    if (m == "orri") { rri(Op::kOrri); return; }
    if (m == "eori") { rri(Op::kEori); return; }
    if (m == "lsli") { rri(Op::kLsli); return; }
    if (m == "lsri") { rri(Op::kLsri); return; }
    if (m == "asri") { rri(Op::kAsri); return; }

    if (m == "movi" || m == "movt") {
        need(2);
        Instr in{m == "movi" ? Op::kMovi : Op::kMovt,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 0, 0, 0,
                 static_cast<int32_t>(
                     parseImm(st.line, opCol(st, 1), ops[1]))};
        checked(in);
        return;
    }

    if (m == "b") { branch(Op::kB); return; }
    if (m == "beq") { branch(Op::kBeq); return; }
    if (m == "bne") { branch(Op::kBne); return; }
    if (m == "blt") { branch(Op::kBlt); return; }
    if (m == "bge") { branch(Op::kBge); return; }
    if (m == "bgt") { branch(Op::kBgt); return; }
    if (m == "ble") { branch(Op::kBle); return; }
    if (m == "blo") { branch(Op::kBlo); return; }
    if (m == "bhs") { branch(Op::kBhs); return; }
    if (m == "bhi") { branch(Op::kBhi); return; }
    if (m == "bls") { branch(Op::kBls); return; }
    if (m == "bl") { branch(Op::kBl); return; }

    if (m == "jr") {
        need(1);
        Instr in{Op::kJr, 0,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 0, 0, 0};
        checked(in);
        return;
    }
    if (m == "ret") { need(0); checked(Instr{Op::kRet, 0, 0, 0, 0, 0}); return; }
    if (m == "nop") { need(0); checked(Instr{Op::kNop, 0, 0, 0, 0, 0}); return; }
    if (m == "halt") { need(0); checked(Instr{Op::kHalt, 0, 0, 0, 0, 0}); return; }

    if (m == "gf32mul") {
        need(4);
        Instr in{Op::kGf32Mul,
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 0), ops[0])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 2), ops[2])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 3), ops[3])),
                 static_cast<uint8_t>(parseReg(st.line, opCol(st, 1), ops[1])),
                 0};
        checked(in);
        return;
    }
    if (m == "gfcfg") {
        need(1);
        Instr in{Op::kGfCfg, 0, 0, 0, 0,
                 static_cast<int32_t>(
                     parseValueOrLabel(st.line, opCol(st, 0), ops[0]))};
        checked(in);
        return;
    }

    err(st.line, st.col, "unknown mnemonic '" + m + "'");
}

Program
AsmContext::run()
{
    parse();
    layout();

    Program prog;
    prog.symbols = symbols_;
    prog.data_base = data_base_;
    prog.code.reserve(text_bytes_ / 4);
    prog.line_of_word.reserve(text_bytes_ / 4);
    prog.data.reserve(data_bytes_);

    for (const Statement &st : stmts_) {
        if (st.mnemonic[0] == ':')
            continue;
        if (st.in_data) {
            emitData(st, prog.data);
        } else {
            size_t before = prog.code.size();
            emit(st, prog.code);
            GFP_ASSERT((prog.code.size() - before) * 4 == st.size_bytes,
                       "size mismatch at line %d", st.line);
            prog.line_of_word.resize(prog.code.size(), st.line);
        }
    }
    GFP_ASSERT(prog.data.size() == data_bytes_);
    return prog;
}

} // anonymous namespace

Program
Assembler::assemble(const std::string &source)
{
    AsmContext ctx(source, nullptr);
    return ctx.run();
}

bool
Assembler::tryAssemble(const std::string &source, Program &out,
                       AsmDiagnostic &diag)
{
    // Every assembly diagnostic (err() in the context, plus encode()'s
    // field-range checks, which emit() re-dispatches through err()) goes
    // through GFP_FATAL, so a scoped throwing handler turns them all
    // into a reported error.
    ScopedFatalThrow guard;
    try {
        AsmContext ctx(source, &diag);
        out = ctx.run();
        return true;
    } catch (const FatalError &e) {
        if (diag.message.empty())
            diag.message = e.what();
        return false;
    }
}

bool
Assembler::tryAssembleFile(const std::string &source,
                           const std::string &file, Program &out,
                           AsmDiagnostic &diag)
{
    // err() overwrites the whole diagnostic, so the path is stamped
    // after the fact rather than pre-seeded.
    const bool ok = tryAssemble(source, out, diag);
    if (!ok)
        diag.file = file;
    return ok;
}

bool
Assembler::tryAssemble(const std::string &source, Program &out,
                       std::string &error)
{
    AsmDiagnostic diag;
    if (tryAssemble(source, out, diag))
        return true;
    error = "assembly error, " + diag.render();
    return false;
}

} // namespace gfp
