#include "isa/encoding.h"

#include "common/logging.h"

namespace gfp {

ImmKind
immKindOf(Op op)
{
    switch (op) {
      case Op::kMovi:
      case Op::kMovt:
        return ImmKind::kImm16;
      case Op::kB:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBgt:
      case Op::kBle:
      case Op::kBlo:
      case Op::kBhs:
      case Op::kBhi:
      case Op::kBls:
      case Op::kBl:
        return ImmKind::kSImm16;
      case Op::kAddi:
      case Op::kSubi:
      case Op::kAndi:
      case Op::kOrri:
      case Op::kEori:
      case Op::kLsli:
      case Op::kLsri:
      case Op::kAsri:
      case Op::kCmpi:
      case Op::kLdr:
      case Op::kStr:
      case Op::kLdrb:
      case Op::kStrb:
      case Op::kLdrh:
      case Op::kStrh:
        return ImmKind::kImm12;
      case Op::kGfCfg:
        return ImmKind::kImm20;
      default:
        return ImmKind::kNone;
    }
}

uint32_t
encode(const Instr &in)
{
    GFP_ASSERT(in.rd < kNumRegs && in.rs1 < kNumRegs &&
               in.rs2 < kNumRegs && in.rd2 < kNumRegs);

    uint32_t word = static_cast<uint32_t>(in.op) << 24;
    ImmKind kind = immKindOf(in.op);

    switch (kind) {
      case ImmKind::kImm16:
        if (in.imm < 0 || in.imm > 0xffff)
            GFP_FATAL("%s: immediate %d out of unsigned 16-bit range",
                      opName(in.op), in.imm);
        word |= static_cast<uint32_t>(in.rd) << 20;
        word |= static_cast<uint32_t>(in.imm) & 0xffff;
        return word;
      case ImmKind::kSImm16:
        if (in.imm < -32768 || in.imm > 32767)
            GFP_FATAL("%s: branch offset %d out of signed 16-bit range",
                      opName(in.op), in.imm);
        word |= static_cast<uint32_t>(in.imm) & 0xffff;
        return word;
      case ImmKind::kImm12:
        if (in.imm < -2048 || in.imm > 2047)
            GFP_FATAL("%s: immediate %d out of signed 12-bit range",
                      opName(in.op), in.imm);
        word |= static_cast<uint32_t>(in.rd) << 20;
        word |= static_cast<uint32_t>(in.rs1) << 16;
        word |= static_cast<uint32_t>(in.imm) & 0xfff;
        return word;
      case ImmKind::kImm20:
        if (in.imm < 0 || in.imm > 0xfffff)
            GFP_FATAL("gfcfg: address %d out of 20-bit range", in.imm);
        word |= static_cast<uint32_t>(in.imm) & 0xfffff;
        return word;
      case ImmKind::kNone:
        word |= static_cast<uint32_t>(in.rd) << 20;
        word |= static_cast<uint32_t>(in.rs1) << 16;
        word |= static_cast<uint32_t>(in.rs2) << 12;
        word |= static_cast<uint32_t>(in.rd2) << 8;
        return word;
    }
    GFP_PANIC("unreachable");
}

Instr
decode(uint32_t word)
{
    Instr in;
    if (!tryDecode(word, in))
        GFP_FATAL("decode: unknown opcode byte 0x%02x (word 0x%08x)",
                  word >> 24, word);
    return in;
}

bool
tryDecode(uint32_t word, Instr &out)
{
    unsigned op_field = word >> 24;
    if (op_field >= static_cast<unsigned>(Op::kNumOps))
        return false;

    Instr in;
    in.op = static_cast<Op>(op_field);
    switch (immKindOf(in.op)) {
      case ImmKind::kImm16:
        in.rd = (word >> 20) & 0xf;
        in.imm = static_cast<int32_t>(word & 0xffff);
        break;
      case ImmKind::kSImm16:
        in.imm = static_cast<int16_t>(word & 0xffff);
        break;
      case ImmKind::kImm12:
        in.rd = (word >> 20) & 0xf;
        in.rs1 = (word >> 16) & 0xf;
        // Sign-extend the 12-bit field.
        in.imm = static_cast<int32_t>((word & 0xfff) << 20) >> 20;
        break;
      case ImmKind::kImm20:
        in.imm = static_cast<int32_t>(word & 0xfffff);
        break;
      case ImmKind::kNone:
        in.rd = (word >> 20) & 0xf;
        in.rs1 = (word >> 16) & 0xf;
        in.rs2 = (word >> 12) & 0xf;
        in.rd2 = (word >> 8) & 0xf;
        break;
    }
    out = in;
    return true;
}

} // namespace gfp
