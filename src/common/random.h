/**
 * @file
 * Deterministic pseudo-random source for workload generation.
 *
 * Benchmarks and tests must be reproducible run-to-run, so all random
 * workloads (codeword noise, plaintexts, scalars) derive from this
 * explicitly-seeded xoshiro-style generator rather than std::random_device.
 */

#ifndef GFP_COMMON_RANDOM_H
#define GFP_COMMON_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gfp {

/** SplitMix64/xorshift-based deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed)
    {
        // Avoid the all-zero fixed point.
        if (state_ == 0)
            state_ = 0x9e3779b97f4a7c15ull;
    }

    /** Next 64 random bits (splitmix64 step). */
    uint64_t
    next64()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Next 32 random bits. */
    uint32_t next32() { return static_cast<uint32_t>(next64() >> 32); }

    /** Next random byte. */
    uint8_t nextByte() { return static_cast<uint8_t>(next64() >> 56); }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next64() % bound;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53 < p;
    }

    /** A vector of @p n random bytes. */
    std::vector<uint8_t>
    bytes(size_t n)
    {
        std::vector<uint8_t> out(n);
        for (auto &b : out)
            b = nextByte();
        return out;
    }

  private:
    uint64_t state_;
};

} // namespace gfp

#endif // GFP_COMMON_RANDOM_H
