#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gfp {

namespace {

FatalHandler &
fatalHandler()
{
    static FatalHandler handler;
    return handler;
}

MessageSink &
messageSink()
{
    static MessageSink sink;
    return sink;
}

void
emit(const char *level, const std::string &msg)
{
    if (messageSink())
        messageSink()(level, msg);
    else
        std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // anonymous namespace

FatalHandler
setFatalHandler(FatalHandler handler)
{
    return std::exchange(fatalHandler(), std::move(handler));
}

MessageSink
setMessageSink(MessageSink sink)
{
    return std::exchange(messageSink(), std::move(sink));
}

ScopedFatalThrow::ScopedFatalThrow()
    : prev_(setFatalHandler([](const char *file, int line,
                               const std::string &msg) {
          throw FatalError(strprintf("fatal: %s (%s:%d)", msg.c_str(),
                                     file, line));
      }))
{
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    setFatalHandler(std::move(prev_));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalHandler())
        fatalHandler()(file, line, msg); // may throw to unwind
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    emit("warn", strprintf("%s (%s:%d)", msg.c_str(), file, line));
}

void
informImpl(const std::string &msg)
{
    emit("info", msg);
}

} // namespace gfp
