/**
 * @file
 * Minimal Chrome trace_event JSON emission.
 *
 * Produces the "JSON Array Format" wrapped in a {"traceEvents": [...]}
 * object, loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
 * Only the event phases this repo needs are implemented:
 *
 *   ph "X"  complete event   (name, ts, dur)  — a span on a track
 *   ph "i"  instant event    (name, ts)       — a point marker
 *   ph "C"  counter event    (name, ts, args) — stacked counter series
 *   ph "M"  metadata         (process_name / thread_name labels)
 *
 * Timestamps and durations are in microseconds (the format's unit).
 * Tracks are addressed by (pid, tid) pairs; callers pick a convention
 * (the guest tracer uses pid 1 with one tid per phase kind, the batch
 * engine uses pid 2 with one tid per worker).
 *
 * TraceLog is thread-safe: events may be appended from engine workers
 * concurrently.  validateTraceEventJson() is a self-contained
 * structural validator (a tiny JSON parser plus per-event field
 * checks) used by tests and gfp-prof --check; it keeps the repo free
 * of a JSON library dependency.
 */

#ifndef GFP_COMMON_TRACE_EVENT_H
#define GFP_COMMON_TRACE_EVENT_H

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gfp {

/** JSON string escaping (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &s);

class TraceLog
{
  public:
    /** String key/value pairs emitted into an event's "args" object. */
    using Args = std::vector<std::pair<std::string, std::string>>;

    /** A span: [ts_us, ts_us + dur_us) on track (pid, tid). */
    void complete(const std::string &name, const std::string &cat,
                  double ts_us, double dur_us, int pid, int tid,
                  Args args = {});

    /** A point marker at ts_us on track (pid, tid). */
    void instant(const std::string &name, const std::string &cat,
                 double ts_us, int pid, int tid, Args args = {});

    /** A counter sample: each series name maps to a numeric value. */
    void counter(const std::string &name, double ts_us, int pid,
                 const std::vector<std::pair<std::string, double>> &series);

    /** Label a pid in the trace viewer ("process_name" metadata). */
    void processName(int pid, const std::string &name);

    /** Label a (pid, tid) track ("thread_name" metadata). */
    void threadName(int pid, int tid, const std::string &name);

    size_t size() const;

    /** The full {"traceEvents": [...]} document. */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        std::string cat;
        char ph = 'i';
        double ts = 0;
        double dur = 0;
        int pid = 0;
        int tid = 0;
        /** Pre-encoded JSON fragments: {key, raw JSON value}. */
        std::vector<std::pair<std::string, std::string>> args;
    };

    void push(Event ev);

    mutable std::mutex mu_;
    std::vector<Event> events_;
};

/**
 * Structural validation of a trace document: well-formed JSON, a root
 * object with a "traceEvents" array, and per-event required fields
 * (string "name"/"ph", numeric "ts"/"pid"/"tid", numeric "dur" for
 * "X" events).  On failure returns false and, if @p error is non-null,
 * stores a human-readable reason.
 */
bool validateTraceEventJson(const std::string &json,
                            std::string *error = nullptr);

} // namespace gfp

#endif // GFP_COMMON_TRACE_EVENT_H
