/**
 * @file
 * Small string helpers shared across the library: printf-style formatting
 * into std::string, trimming, splitting, and hex rendering.
 */

#ifndef GFP_COMMON_STRUTIL_H
#define GFP_COMMON_STRUTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace gfp {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Remove leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Split @p s on @p delim, optionally dropping empty fields. */
std::vector<std::string> split(const std::string &s, char delim,
                               bool keep_empty = false);

/** Lower-case a copy of @p s. */
std::string toLower(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Render @p bytes as lower-case hex, no separators. */
std::string toHex(const std::vector<uint8_t> &bytes);

/** Parse a hex string (no separators) into bytes; fatal on bad input. */
std::vector<uint8_t> fromHex(const std::string &hex);

} // namespace gfp

#endif // GFP_COMMON_STRUTIL_H
