/**
 * @file
 * Error-reporting and status primitives, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 *            Aborts (so a debugger or core dump can catch it).
 * fatal()  — the *host* asked for something impossible (bad code
 *            parameters, malformed assembly, out-of-range field size).
 *            Exits with an error code.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 *
 * Guest-attributable errors (a simulated program touching memory out of
 * range, an illegal instruction word, a corrupted GFAU configuration)
 * are NOT fatal: they surface as structured Traps from the simulator —
 * see sim/trap.h.  GFP_FATAL is reserved for host misuse.
 *
 * Both the fatal path and the warn/inform stream are routed through
 * overridable handlers so tests can assert on host-fatal paths without
 * death tests (see ScopedFatalThrow) and tools can capture diagnostics.
 */

#ifndef GFP_COMMON_LOGGING_H
#define GFP_COMMON_LOGGING_H

#include <functional>
#include <stdexcept>
#include <string>

#include "common/strutil.h"

namespace gfp {

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit(1) with a formatted message; use for host-caused errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to the message sink and continue. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to the message sink. */
void informImpl(const std::string &msg);

/**
 * Handler invoked by GFP_FATAL *before* the default print-and-exit(1).
 * It may throw to unwind instead (the test hook); if it returns
 * normally, the default exit(1) still happens, so production behavior
 * is unchanged when a handler merely observes.
 */
using FatalHandler =
    std::function<void(const char *file, int line, const std::string &msg)>;

/** Install a fatal handler; returns the previous one (empty = none). */
FatalHandler setFatalHandler(FatalHandler handler);

/**
 * Sink for warn/inform output.  @p level is "warn" or "info".
 * Default (empty sink) writes to stderr.
 */
using MessageSink =
    std::function<void(const char *level, const std::string &msg)>;

/** Install a message sink; returns the previous one (empty = stderr). */
MessageSink setMessageSink(MessageSink sink);

/** Thrown by the ScopedFatalThrow handler in place of exit(1). */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII test helper: while alive, GFP_FATAL throws FatalError (carrying
 * the formatted message) instead of exiting, so a unit test can write
 *
 *     ScopedFatalThrow guard;
 *     EXPECT_THROW(fromHex("abc"), FatalError);
 *
 * instead of a death test.  Restores the previous handler on scope exit.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();
    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;

  private:
    FatalHandler prev_;
};

} // namespace gfp

#define GFP_PANIC(...) \
    ::gfp::panicImpl(__FILE__, __LINE__, ::gfp::strprintf(__VA_ARGS__))

#define GFP_FATAL(...) \
    ::gfp::fatalImpl(__FILE__, __LINE__, ::gfp::strprintf(__VA_ARGS__))

#define GFP_WARN(...) \
    ::gfp::warnImpl(__FILE__, __LINE__, ::gfp::strprintf(__VA_ARGS__))

#define GFP_INFORM(...) \
    ::gfp::informImpl(::gfp::strprintf(__VA_ARGS__))

/** Panic unless the given internal invariant holds. */
#define GFP_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gfp::panicImpl(__FILE__, __LINE__,                        \
                             std::string("assertion failed: " #cond)    \
                             __VA_OPT__(+ " " +                         \
                                        ::gfp::strprintf(__VA_ARGS__))); \
        }                                                               \
    } while (0)

#endif // GFP_COMMON_LOGGING_H
