/**
 * @file
 * Error-reporting and status primitives, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 *            Aborts (so a debugger or core dump can catch it).
 * fatal()  — the *user* asked for something impossible (bad code
 *            parameters, malformed assembly, out-of-range field size).
 *            Exits with an error code.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef GFP_COMMON_LOGGING_H
#define GFP_COMMON_LOGGING_H

#include <string>

#include "common/strutil.h"

namespace gfp {

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit(1) with a formatted message; use for user-caused errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr and continue. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace gfp

#define GFP_PANIC(...) \
    ::gfp::panicImpl(__FILE__, __LINE__, ::gfp::strprintf(__VA_ARGS__))

#define GFP_FATAL(...) \
    ::gfp::fatalImpl(__FILE__, __LINE__, ::gfp::strprintf(__VA_ARGS__))

#define GFP_WARN(...) \
    ::gfp::warnImpl(__FILE__, __LINE__, ::gfp::strprintf(__VA_ARGS__))

#define GFP_INFORM(...) \
    ::gfp::informImpl(::gfp::strprintf(__VA_ARGS__))

/** Panic unless the given internal invariant holds. */
#define GFP_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gfp::panicImpl(__FILE__, __LINE__,                        \
                             std::string("assertion failed: " #cond)    \
                             __VA_OPT__(+ " " +                         \
                                        ::gfp::strprintf(__VA_ARGS__))); \
        }                                                               \
    } while (0)

#endif // GFP_COMMON_LOGGING_H
