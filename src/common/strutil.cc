#include "common/strutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace gfp {

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &s, char delim, bool keep_empty)
{
    std::vector<std::string> fields;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            if (keep_empty || !cur.empty())
                fields.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (keep_empty || !cur.empty())
        fields.push_back(cur);
    return fields;
}

std::string
toLower(const std::string &s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toHex(const std::vector<uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

namespace {

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // anonymous namespace

std::vector<uint8_t>
fromHex(const std::string &hex)
{
    std::vector<uint8_t> out;
    if (hex.size() % 2 != 0)
        GFP_FATAL("fromHex: odd-length hex string '%s'", hex.c_str());
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexVal(hex[i]);
        int lo = hexVal(hex[i + 1]);
        if (hi < 0 || lo < 0)
            GFP_FATAL("fromHex: bad hex digit in '%s'", hex.c_str());
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

} // namespace gfp
