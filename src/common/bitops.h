/**
 * @file
 * Bit-manipulation primitives used throughout the GF processor model:
 * software carry-less (GF(2)) multiplication, parity, bit extraction and
 * byte lane helpers for the 4-way 8-bit SIMD datapath.
 */

#ifndef GFP_COMMON_BITOPS_H
#define GFP_COMMON_BITOPS_H

#include <bit>
#include <cstdint>

namespace gfp {

/** Extract bit @p i of @p v (0 = LSB). */
constexpr uint32_t
bit(uint64_t v, unsigned i)
{
    return static_cast<uint32_t>((v >> i) & 1);
}

/** Set bit @p i of @p v to @p b. */
constexpr uint64_t
setBit(uint64_t v, unsigned i, uint32_t b)
{
    return (v & ~(uint64_t{1} << i)) | (uint64_t{b & 1} << i);
}

/** XOR-parity of @p v (1 if an odd number of bits are set). */
constexpr uint32_t
parity(uint64_t v)
{
    return static_cast<uint32_t>(std::popcount(v) & 1);
}

/**
 * Carry-less (GF(2) polynomial) product of two 8-bit values.
 * The result has at most 15 significant bits.
 */
constexpr uint16_t
clmul8(uint8_t a, uint8_t b)
{
    uint16_t acc = 0;
    for (unsigned i = 0; i < 8; ++i) {
        if ((b >> i) & 1)
            acc ^= static_cast<uint16_t>(a) << i;
    }
    return acc;
}

/**
 * Carry-less product of two 16-bit values (at most 31 significant bits).
 */
constexpr uint32_t
clmul16(uint16_t a, uint16_t b)
{
    uint32_t acc = 0;
    for (unsigned i = 0; i < 16; ++i) {
        if ((b >> i) & 1)
            acc ^= static_cast<uint32_t>(a) << i;
    }
    return acc;
}

/**
 * Carry-less product of two 32-bit values (at most 63 significant bits).
 * This is the behaviour of the paper's single-cycle gf32bMult instruction.
 */
constexpr uint64_t
clmul32(uint32_t a, uint32_t b)
{
    uint64_t acc = 0;
    for (unsigned i = 0; i < 32; ++i) {
        if ((b >> i) & 1)
            acc ^= static_cast<uint64_t>(a) << i;
    }
    return acc;
}

/**
 * Carry-less product of two 64-bit values; returns the low 64 bits in
 * @p lo and the high 63 bits in @p hi.
 */
constexpr void
clmul64(uint64_t a, uint64_t b, uint64_t &hi, uint64_t &lo)
{
    hi = 0;
    lo = 0;
    for (unsigned i = 0; i < 64; ++i) {
        if ((b >> i) & 1) {
            lo ^= a << i;
            if (i != 0)
                hi ^= a >> (64 - i);
        }
    }
}

/** Extract byte lane @p lane (0 = least significant) from a 32-bit word. */
constexpr uint8_t
lane(uint32_t word, unsigned lane_idx)
{
    return static_cast<uint8_t>(word >> (8 * lane_idx));
}

/** Replace byte lane @p lane_idx of @p word with @p value. */
constexpr uint32_t
withLane(uint32_t word, unsigned lane_idx, uint8_t value)
{
    uint32_t mask = 0xffu << (8 * lane_idx);
    return (word & ~mask) | (static_cast<uint32_t>(value) << (8 * lane_idx));
}

/** Broadcast @p value into all four byte lanes of a 32-bit word. */
constexpr uint32_t
splat(uint8_t value)
{
    return 0x01010101u * value;
}

/** Degree of the GF(2) polynomial @p v (-1 for the zero polynomial). */
constexpr int
degree(uint64_t v)
{
    return v == 0 ? -1 : 63 - std::countl_zero(v);
}

} // namespace gfp

#endif // GFP_COMMON_BITOPS_H
