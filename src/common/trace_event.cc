#include "common/trace_event.h"

#include <cctype>
#include <cstdio>
#include <fstream>

#include "common/strutil.h"

namespace gfp {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

namespace {

/** A JSON number without locale surprises or trailing-zero noise. */
std::string
jsonNumber(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)))
        return strprintf("%lld", static_cast<long long>(v));
    return strprintf("%.3f", v);
}

} // namespace

void
TraceLog::push(Event ev)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

void
TraceLog::complete(const std::string &name, const std::string &cat,
                   double ts_us, double dur_us, int pid, int tid, Args args)
{
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'X';
    ev.ts = ts_us;
    ev.dur = dur_us;
    ev.pid = pid;
    ev.tid = tid;
    for (auto &[k, v] : args)
        ev.args.emplace_back(k, "\"" + jsonEscape(v) + "\"");
    push(std::move(ev));
}

void
TraceLog::instant(const std::string &name, const std::string &cat,
                  double ts_us, int pid, int tid, Args args)
{
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'i';
    ev.ts = ts_us;
    ev.pid = pid;
    ev.tid = tid;
    for (auto &[k, v] : args)
        ev.args.emplace_back(k, "\"" + jsonEscape(v) + "\"");
    push(std::move(ev));
}

void
TraceLog::counter(const std::string &name, double ts_us, int pid,
                  const std::vector<std::pair<std::string, double>> &series)
{
    Event ev;
    ev.name = name;
    ev.cat = "counter";
    ev.ph = 'C';
    ev.ts = ts_us;
    ev.pid = pid;
    for (const auto &[k, v] : series)
        ev.args.emplace_back(k, jsonNumber(v));
    push(std::move(ev));
}

void
TraceLog::processName(int pid, const std::string &name)
{
    Event ev;
    ev.name = "process_name";
    ev.ph = 'M';
    ev.pid = pid;
    ev.args.emplace_back("name", "\"" + jsonEscape(name) + "\"");
    push(std::move(ev));
}

void
TraceLog::threadName(int pid, int tid, const std::string &name)
{
    Event ev;
    ev.name = "thread_name";
    ev.ph = 'M';
    ev.pid = pid;
    ev.tid = tid;
    ev.args.emplace_back("name", "\"" + jsonEscape(name) + "\"");
    push(std::move(ev));
}

size_t
TraceLog::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::string
TraceLog::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"traceEvents\": [\n";
    for (size_t i = 0; i < events_.size(); ++i) {
        const Event &ev = events_[i];
        out += strprintf("{\"name\": \"%s\", \"ph\": \"%c\", "
                         "\"ts\": %s, \"pid\": %d, \"tid\": %d",
                         jsonEscape(ev.name).c_str(), ev.ph,
                         jsonNumber(ev.ts).c_str(), ev.pid, ev.tid);
        if (!ev.cat.empty())
            out += strprintf(", \"cat\": \"%s\"",
                             jsonEscape(ev.cat).c_str());
        if (ev.ph == 'X')
            out += strprintf(", \"dur\": %s", jsonNumber(ev.dur).c_str());
        if (ev.ph == 'i')
            out += ", \"s\": \"t\""; // instant scope: thread
        if (!ev.args.empty()) {
            out += ", \"args\": {";
            for (size_t a = 0; a < ev.args.size(); ++a) {
                if (a)
                    out += ", ";
                out += strprintf("\"%s\": %s",
                                 jsonEscape(ev.args[a].first).c_str(),
                                 ev.args[a].second.c_str());
            }
            out += "}";
        }
        out += i + 1 < events_.size() ? "},\n" : "}\n";
    }
    out += "]}\n";
    return out;
}

bool
TraceLog::writeTo(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << toJson();
    return static_cast<bool>(f);
}

// ---------------------------------------------------------------------------
// Validator: a tiny recursive-descent JSON parser that records just
// enough structure (event-object spans and their scalar fields) to
// check the trace_event contract without pulling in a JSON library.

namespace {

struct JsonCursor
{
    const std::string &s;
    size_t i = 0;
    std::string err;

    bool fail(const std::string &msg)
    {
        if (err.empty())
            err = strprintf("offset %zu: %s", i, msg.c_str());
        return false;
    }
    void ws()
    {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }
    bool eat(char c)
    {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return fail(strprintf("expected '%c'", c));
    }
    bool peek(char c)
    {
        ws();
        return i < s.size() && s[i] == c;
    }

    bool parseString(std::string *out)
    {
        ws();
        if (i >= s.size() || s[i] != '"')
            return fail("expected string");
        ++i;
        std::string val;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                if (i + 1 >= s.size())
                    return fail("dangling escape");
                char e = s[i + 1];
                if (e == 'u') {
                    if (i + 5 >= s.size())
                        return fail("short \\u escape");
                    i += 6;
                    val += '?';
                    continue;
                }
                if (std::string("\"\\/bfnrt").find(e) == std::string::npos)
                    return fail("bad escape");
                i += 2;
                val += e;
                continue;
            }
            val += s[i++];
        }
        if (i >= s.size())
            return fail("unterminated string");
        ++i; // closing quote
        if (out)
            *out = val;
        return true;
    }

    bool parseNumber()
    {
        ws();
        size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
                s[i] == '-'))
            ++i;
        if (i == start)
            return fail("expected number");
        return true;
    }

    /** A recorded scalar member of an event object: kind is 's'
     *  (string, value kept), 'n' (number) or 'o' (anything else). */
    struct Field
    {
        std::string key;
        char kind = 'o';
        std::string sval;
    };

    /** Parse any value; if @p fields is non-null and the value is an
     *  object, record its scalar members. */
    bool parseValue(std::vector<Field> *fields)
    {
        ws();
        if (i >= s.size())
            return fail("unexpected end");
        char c = s[i];
        if (c == '"')
            return parseString(nullptr);
        if (c == '{')
            return parseObject(fields);
        if (c == '[')
            return parseArray(nullptr);
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return parseNumber();
    }

    bool literal(const std::string &lit)
    {
        if (s.compare(i, lit.size(), lit) != 0)
            return fail("bad literal");
        i += lit.size();
        return true;
    }

    bool parseObject(std::vector<Field> *fields)
    {
        if (!eat('{'))
            return false;
        if (peek('}'))
            return eat('}');
        for (;;) {
            Field fld;
            if (!parseString(&fld.key))
                return false;
            if (!eat(':'))
                return false;
            ws();
            if (i < s.size()) {
                if (s[i] == '"')
                    fld.kind = 's';
                else if (s[i] == '-' ||
                         std::isdigit(static_cast<unsigned char>(s[i])))
                    fld.kind = 'n';
            }
            if (fld.kind == 's') {
                if (!parseString(&fld.sval))
                    return false;
            } else if (!parseValue(nullptr)) {
                return false;
            }
            if (fields)
                fields->push_back(std::move(fld));
            if (peek(',')) {
                eat(',');
                continue;
            }
            return eat('}');
        }
    }

    /** Parse an array; if @p elems is non-null each element must be an
     *  object, and its scalar fields are appended per element. */
    bool
    parseArray(std::vector<std::vector<Field>> *elems)
    {
        if (!eat('['))
            return false;
        if (peek(']'))
            return eat(']');
        for (;;) {
            if (elems) {
                std::vector<Field> fields;
                ws();
                if (i >= s.size() || s[i] != '{')
                    return fail("trace event must be an object");
                if (!parseObject(&fields))
                    return false;
                elems->push_back(std::move(fields));
            } else if (!parseValue(nullptr)) {
                return false;
            }
            if (peek(',')) {
                eat(',');
                continue;
            }
            return eat(']');
        }
    }
};

const JsonCursor::Field *
findField(const std::vector<JsonCursor::Field> &fields,
          const std::string &key)
{
    for (const auto &f : fields)
        if (f.key == key)
            return &f;
    return nullptr;
}

} // namespace

bool
validateTraceEventJson(const std::string &json, std::string *error)
{
    auto fail = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    JsonCursor cur{json};
    cur.ws();
    if (cur.i >= json.size() || json[cur.i] != '{')
        return fail("root is not an object");
    // Parse the root object by hand so we can intercept "traceEvents".
    ++cur.i;
    bool saw_events = false;
    std::vector<std::vector<JsonCursor::Field>> events;
    if (!cur.peek('}')) {
        for (;;) {
            std::string key;
            if (!cur.parseString(&key) || !cur.eat(':'))
                return fail(cur.err);
            if (key == "traceEvents") {
                saw_events = true;
                if (!cur.parseArray(&events))
                    return fail(cur.err);
            } else if (!cur.parseValue(nullptr)) {
                return fail(cur.err);
            }
            if (cur.peek(',')) {
                cur.eat(',');
                continue;
            }
            break;
        }
    }
    if (!cur.eat('}'))
        return fail(cur.err);
    cur.ws();
    if (cur.i != json.size())
        return fail("trailing data after root object");
    if (!saw_events)
        return fail("missing \"traceEvents\" array");

    for (size_t n = 0; n < events.size(); ++n) {
        const auto &ev = events[n];
        auto evfail = [&](const std::string &msg) {
            return fail(strprintf("event %zu: %s", n, msg.c_str()));
        };
        const JsonCursor::Field *name = findField(ev, "name");
        const JsonCursor::Field *ph = findField(ev, "ph");
        if (!name || name->kind != 's')
            return evfail("missing string \"name\"");
        if (!ph || ph->kind != 's' || ph->sval.size() != 1)
            return evfail("missing one-character string \"ph\"");
        const JsonCursor::Field *pid = findField(ev, "pid");
        if (!pid || pid->kind != 'n')
            return evfail("missing numeric \"pid\"");
        if (ph->sval == "M")
            continue; // metadata events carry no timing
        const JsonCursor::Field *ts = findField(ev, "ts");
        if (!ts || ts->kind != 'n')
            return evfail("missing numeric \"ts\"");
        const JsonCursor::Field *tid = findField(ev, "tid");
        if (ph->sval != "C" && (!tid || tid->kind != 'n'))
            return evfail("missing numeric \"tid\"");
        if (ph->sval == "X") {
            const JsonCursor::Field *dur = findField(ev, "dur");
            if (!dur || dur->kind != 'n')
                return evfail("\"X\" event missing numeric \"dur\"");
        }
    }
    if (error)
        error->clear();
    return true;
}

} // namespace gfp
