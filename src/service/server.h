/**
 * @file
 * The gfp-serve server: a long-running front-end that speaks the wire
 * protocol (service/wire.h) over unix-domain and/or TCP listeners and
 * executes request classes (service/request_classes.h) on the batch
 * engines.
 *
 * Threading topology — built for streaming-batch throughput, not
 * per-request dispatch:
 *
 *  - one accept thread per listener;
 *  - one reader thread per connection: deframes requests, validates,
 *    runs admission control, and *stages* jobs into per-engine batches;
 *    a batch is flushed (one submitBatch() call) when the reader has
 *    drained every complete frame it buffered or the batch reaches
 *    max_batch — so a pipelining client is automatically coalesced into
 *    engine-sized batches instead of paying per-request submission;
 *  - one completer thread per engine: redeems tickets in FIFO order,
 *    advances each request's state machine, re-stages multi-stage
 *    requests onto their next engine, and serializes responses.
 *    Per-engine completers mean a slow class (a poisoned ECDH batch)
 *    never head-of-line-blocks completions of a fast one.
 *
 * Sockets have exactly one framing invariant: any thread may write a
 * *whole* frame under the connection's write lock.  Rejections and
 * control responses are written by the reader thread directly (they
 * must not queue behind compute work — backpressure that waits in the
 * queue it is protecting is not backpressure).
 *
 * Admission control: a request is admitted only while the total queued
 * jobs across engines (plus the reader's staged jobs) is below
 * admission_watermark; past it the request is answered kRejectedBusy
 * with a suggested retry delay derived from the observed per-job
 * service-time EMA.  Queue overload therefore surfaces as explicit,
 * cheap rejections while admitted work keeps its latency — the engine
 * queue never grows without bound.
 *
 * Shutdown is a drain: listeners close, in-flight requests finish and
 * their responses flush, new frames answer kShuttingDown, then reader
 * threads are unblocked and everything joins.  Every admitted request
 * is answered exactly once.
 */

#ifndef GFP_SERVICE_SERVER_H
#define GFP_SERVICE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/trace_event.h"
#include "engine/metrics.h"
#include "service/request_classes.h"
#include "service/wire.h"

namespace gfp::service {

class Server
{
  public:
    /** Trace pid for service request tracks (guest tracer uses 1, the
     *  batch engine 2). */
    static constexpr int kServicePid = 3;

    struct Options
    {
        /** Unix-socket path to listen on; empty disables. */
        std::string unix_path;

        /** TCP port to listen on (loopback only); nullopt disables,
         *  0 binds an ephemeral port (read it back via tcpPort()). */
        std::optional<uint16_t> tcp_port;

        /** Shared options for all nine batch engines. */
        BatchEngine::Options engine;

        /** Admission watermark: reject once queued jobs across engines
         *  reach this many. */
        size_t admission_watermark = 4096;

        /** Largest per-engine batch a reader flushes in one
         *  submitBatch(). */
        size_t max_batch = 512;

        /** Suppress inform() chatter (tests). */
        bool quiet = false;
    };

    explicit Server(Options opts);

    /** Stops and joins everything (drain semantics; see drain()). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Open listeners and start the thread topology.  Fatal on bind
     *  errors (bad path, port in use). */
    void start();

    /**
     * Graceful drain: close listeners, answer new frames with
     * kShuttingDown, wait until every admitted request has been
     * answered, then tear down threads.  Idempotent.
     */
    void drain();

    /** Bound TCP port (after start(); useful with tcp_port = 0 for an
     *  ephemeral port). */
    uint16_t tcpPort() const { return bound_tcp_port_; }

    /** Service-level telemetry (request/response counters, per-class
     *  latency histograms).  Engine metrics live on the engines. */
    const Metrics &metrics() const { return metrics_; }

    const EngineSet &engines() const { return *engines_; }

    /** Attach a trace log: one "X" span per request (pid 3, tid =
     *  connection id) plus queue-depth counters.  Caller keeps @p log
     *  alive until drain() returns.  Call before start(). */
    void setTraceLog(TraceLog *log) { trace_log_ = log; }

    /**
     * The service accounting invariant (meaningful after drain()):
     * every request got exactly one response, and every admitted
     * request terminated ok/trapped/deadline.  Returns false and warns
     * with the discrepancy otherwise.
     */
    bool countersConsistent() const;

    /** The combined stats document served to kStats: service metrics
     *  plus every engine's registry, one JSON object. */
    std::string statsJson() const;

  private:
    struct Connection;

    /** A redeemed-in-FIFO-order unit of completer work: the ticket of
     *  one submitted batch and the requests riding on it. */
    struct BatchItem
    {
        BatchEngine::Ticket ticket = 0;
        std::vector<std::unique_ptr<RequestExec>> execs;
        std::shared_ptr<Connection> conn;
    };

    /** Per-engine completion pipeline. */
    struct EngineLane
    {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<BatchItem> fifo;
        std::thread worker;
    };

    void acceptLoop(int listen_fd, bool is_unix);
    void readerLoop(std::shared_ptr<Connection> conn);
    void completerLoop(unsigned lane);

    /** Handle one deframed request payload on the reader thread.
     *  Returns false when the connection must close (protocol error). */
    bool handleFrame(const std::shared_ptr<Connection> &conn,
                     const std::vector<uint8_t> &payload);

    /** Flush every staged per-engine batch of @p conn. */
    void flushStaged(const std::shared_ptr<Connection> &conn);

    /** Serialize and write one response frame; updates counters,
     *  latency histograms and the trace. */
    void respond(const std::shared_ptr<Connection> &conn,
                 const RequestExec &ex, Status status, uint8_t trap_kind,
                 const std::vector<uint8_t> &body);

    /** Write a response for a request that never became a RequestExec
     *  (rejections, malformed frames, control plane).  count_status =
     *  false when the caller already bumped the status counter (the
     *  kStats snapshot self-consistency dance). */
    void respondRaw(const std::shared_ptr<Connection> &conn,
                    const ResponseHeader &h, const uint8_t *body,
                    size_t body_len, bool count_status = true);

    /** Stage @p job for @p engine on @p conn; flushes when the staged
     *  batch reaches max_batch. */
    void stageJob(const std::shared_ptr<Connection> &conn, EngineId engine,
                  Job job, std::unique_ptr<RequestExec> ex);

    /** Drive @p ex after @p prev completed (or at admission with
     *  nullptr): submit hops, or respond when terminal. */
    void advanceAndRoute(const std::shared_ptr<Connection> &conn,
                         std::unique_ptr<RequestExec> ex,
                         const JobResult *prev);

    uint32_t retryAfterUs() const;
    double nowUs() const;

    Options opts_;
    std::unique_ptr<EngineSet> engines_;
    Metrics metrics_;
    TraceLog *trace_log_ = nullptr;
    std::chrono::steady_clock::time_point epoch_;

    std::vector<int> listen_fds_;
    std::vector<std::thread> accept_threads_;
    uint16_t bound_tcp_port_ = 0;

    std::vector<std::unique_ptr<EngineLane>> lanes_;

    std::mutex conns_mu_;
    std::vector<std::shared_ptr<Connection>> conns_;
    /** Reader threads run detached; this counts the ones still alive so
     *  drain() can wait for them (readers_cv_, under conns_mu_). */
    size_t live_readers_ = 0;
    std::condition_variable readers_cv_;
    std::atomic<uint64_t> next_conn_id_{1};

    /** Admitted-but-unanswered requests; drain() waits for zero. */
    std::atomic<size_t> in_flight_{0};
    std::mutex drain_mu_;
    std::condition_variable drain_cv_;

    /** EMA of per-job engine service time, microseconds (feeds
     *  retry-after hints). */
    std::atomic<uint32_t> ema_job_us_{20};

    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace gfp::service

#endif // GFP_SERVICE_SERVER_H
