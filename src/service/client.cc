#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace gfp::service {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      sendbuf_(std::move(other.sendbuf_)),
      reader_(std::move(other.reader_)),
      last_error_(other.last_error_)
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        sendbuf_ = std::move(other.sendbuf_);
        reader_ = std::move(other.reader_);
        last_error_ = other.last_error_;
    }
    return *this;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connectUnix(const std::string &path)
{
    close();
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        errno = ENAMETOOLONG;
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return false;
    }
    fd_ = fd;
    return true;
}

bool
Client::connectTcp(const std::string &host, uint16_t port)
{
    close();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        errno = EINVAL;
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return false;
    }
    // Request frames are small; batching happens in the send buffer,
    // so trade Nagle delays for latency.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    return true;
}

void
Client::queueRequest(const RequestHeader &h,
                     const std::vector<uint8_t> &body)
{
    appendRequestFrame(sendbuf_, h, body.data(), body.size());
}

void
Client::queueRaw(const uint8_t *frame, size_t len)
{
    sendbuf_.insert(sendbuf_.end(), frame, frame + len);
}

bool
Client::flush()
{
    size_t off = 0;
    while (off < sendbuf_.size()) {
        ssize_t n = ::send(fd_, sendbuf_.data() + off,
                           sendbuf_.size() - off,
                           MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n >= 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
            last_error_ = Error::kClosed;
            sendbuf_.clear();
            return false;
        }
        // Outbound buffer full.  The server may itself be blocked
        // writing responses we have not read (full-duplex protocol,
        // finite socket buffers) — so drain the inbound side while we
        // wait for the pipe to open instead of deadlocking on send.
        pollfd pfd{fd_, POLLIN | POLLOUT, 0};
        int pr = ::poll(&pfd, 1, -1);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            last_error_ = Error::kClosed;
            sendbuf_.clear();
            return false;
        }
        if (pfd.revents & POLLIN) {
            uint8_t buf[64 * 1024];
            ssize_t r = ::read(fd_, buf, sizeof(buf));
            if (r <= 0) {
                last_error_ = Error::kClosed;
                sendbuf_.clear();
                return false;
            }
            reader_.feed(buf, static_cast<size_t>(r));
        }
    }
    sendbuf_.clear();
    return true;
}

bool
Client::fill(int timeout_ms)
{
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
        int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr < 0 && errno == EINTR)
            continue;
        if (pr == 0) {
            last_error_ = Error::kTimeout;
            return false;
        }
        if (pr < 0) {
            last_error_ = Error::kClosed;
            return false;
        }
        break;
    }
    uint8_t buf[64 * 1024];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n <= 0) {
        last_error_ = Error::kClosed;
        return false;
    }
    reader_.feed(buf, static_cast<size_t>(n));
    return true;
}

bool
Client::recvResponse(Response *out, int timeout_ms)
{
    std::vector<uint8_t> payload;
    for (;;) {
        auto next = reader_.next(&payload);
        if (next == FrameReader::Next::kFrame)
            break;
        if (next == FrameReader::Next::kTooBig) {
            last_error_ = Error::kProtocol;
            return false;
        }
        if (!fill(timeout_ms))
            return false;
    }
    if (!parseResponseHeader(payload.data(), payload.size(),
                             &out->header)) {
        last_error_ = Error::kProtocol;
        return false;
    }
    out->body.assign(payload.begin() + kHeaderBytes, payload.end());
    last_error_ = Error::kNone;
    return true;
}

bool
Client::call(const RequestHeader &h, const std::vector<uint8_t> &body,
             Response *out)
{
    queueRequest(h, body);
    if (!flush())
        return false;
    if (!recvResponse(out))
        return false;
    GFP_ASSERT(out->header.id == h.id,
               "one-shot call got response for id %llu, expected %llu",
               static_cast<unsigned long long>(out->header.id),
               static_cast<unsigned long long>(h.id));
    return true;
}

} // namespace gfp::service
