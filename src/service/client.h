/**
 * @file
 * Client side of the gfp-serve wire protocol: connect over unix or
 * TCP, then either blocking one-shot call() or the pipelined
 * queue/flush/recv API the load generator uses to keep the server's
 * streaming batches full.
 *
 * Not thread-safe: one Client per thread (the protocol itself is
 * full-duplex per connection; concurrency belongs at the connection
 * level, which is exactly how gfp-loadgen scales).
 */

#ifndef GFP_SERVICE_CLIENT_H
#define GFP_SERVICE_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "service/wire.h"

namespace gfp::service {

/** One received response: header plus body bytes. */
struct Response
{
    ResponseHeader header;
    std::vector<uint8_t> body;
};

class Client
{
  public:
    Client() = default;
    ~Client();
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect; false (with errno intact) on failure. */
    bool connectUnix(const std::string &path);
    bool connectTcp(const std::string &host, uint16_t port);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Blocking one-shot: send one request, wait for the response with
     *  the same id (responses for other ids are fatal here — one-shot
     *  callers have none outstanding).  False on socket failure. */
    bool call(const RequestHeader &h, const std::vector<uint8_t> &body,
              Response *out);

    // ---- pipelined mode (gfp-loadgen) ----

    /** Append one request frame to the send buffer (no I/O). */
    void queueRequest(const RequestHeader &h,
                      const std::vector<uint8_t> &body);

    /** Append pre-encoded frame bytes (a frame built once and patched
     *  per send — the loadgen hot path). */
    void queueRaw(const uint8_t *frame, size_t len);

    /** Write out the send buffer.  False on socket failure.  While the
     *  outbound socket is full, incoming frames are drained into the
     *  parse buffer (next recvResponse() returns them without I/O) —
     *  a saturated pipelining client can never deadlock against a
     *  server that is itself blocked writing responses. */
    bool flush();

    /**
     * Receive the next response, blocking up to @p timeout_ms
     * (-1 = forever).  Returns false on timeout, socket close, or
     * protocol error (distinguish with lastError()).
     */
    bool recvResponse(Response *out, int timeout_ms = -1);

    enum class Error { kNone, kTimeout, kClosed, kProtocol };
    Error lastError() const { return last_error_; }

    int fd() const { return fd_; }

  private:
    bool fill(int timeout_ms);

    int fd_ = -1;
    std::vector<uint8_t> sendbuf_;
    FrameReader reader_{kMaxResponseFrame};
    Error last_error_ = Error::kNone;
};

} // namespace gfp::service

#endif // GFP_SERVICE_CLIENT_H
