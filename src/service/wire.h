/**
 * @file
 * The gfp-serve wire protocol: length-prefixed binary frames over a
 * unix-domain or TCP stream socket.  docs/SERVICE.md is the normative
 * specification; this header is its implementation, shared by the
 * server (src/service/server.h), the client library
 * (src/service/client.h), the load generator (tools/gfp-loadgen) and
 * the protocol tests.
 *
 * Framing (everything little-endian):
 *
 *     frame    := u32 payload_len || payload
 *     request  := u8 version | u8 class | u16 flags  | u32 deadline_us
 *               | u64 id | body
 *     response := u8 version | u8 status | u8 class  | u8 trap_kind
 *               | u32 aux_us | u64 id | body
 *
 * Both headers are exactly 16 bytes.  `id` is an opaque correlation
 * token chosen by the client and echoed verbatim; responses on one
 * connection may arrive out of request order (the server pipelines
 * batches with different service times), so clients MUST match on id,
 * not position.  `flags` is reserved and must be zero.  `deadline_us`
 * (0 = none) is a server-side budget measured from frame receipt.
 * `aux_us` carries the server-side latency for terminal statuses and
 * the suggested retry delay for kRejectedBusy.
 *
 * Versioning rule: the version byte only changes when an existing
 * field moves or changes meaning.  New request classes and new status
 * codes are backward-compatible additions — old servers answer unknown
 * classes with kUnknownClass, old clients treat unknown statuses as
 * errors.
 */

#ifndef GFP_SERVICE_WIRE_H
#define GFP_SERVICE_WIRE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gfp::service {

constexpr uint8_t kWireVersion = 1;
constexpr size_t kHeaderBytes = 16;

/** Largest accepted *request* frame payload.  Every defined request
 *  body fits in a few hundred bytes; the cap bounds buffering per
 *  connection and makes oversized-length fuzz frames an immediate,
 *  connection-fatal protocol error. */
constexpr size_t kMaxRequestFrame = 4096;

/** Largest accepted *response* frame payload (the kStats metrics
 *  document is the only large response). */
constexpr size_t kMaxResponseFrame = 1u << 20;

/**
 * Request classes, mapped onto the kernel catalog (the paper's
 * reference parameters: RS(255,239,8) over GF(2^8)/0x11d, BCH(31,11,5)
 * over GF(2^5), AES-128, K-233).  Body layouts in docs/SERVICE.md.
 */
enum class RequestClass : uint8_t {
    kRsSyndrome = 0x01,  ///< 255B rx -> 16B syndromes
    kRsBma = 0x02,       ///< 16B synd -> 12B lambda + u32 llen
    kRsChien = 0x03,     ///< 12B lambda -> 12B locs + u32 nloc
    kRsForney = 0x04,    ///< 16B+12B+12B+u32 -> 12B evals
    kRsDecode = 0x05,    ///< 255B rx -> u8 ok + 255B codeword
    kBchDecode = 0x06,   ///< 31B rx bits -> u8 ok + 31B codeword
    kAesCtrBlock = 0x07, ///< 176B round keys + 16B counter -> 16B keystream
    kEcdhShared = 0x08,  ///< 32B qx + 32B qy + 16B kwords + u32 kbits -> 64B
    kRsErasure = 0x09,   ///< 255B rx + u8 e + e positions -> u8 ok + 255B

    // Control plane.
    kStats = 0x40, ///< empty -> metrics JSON document
    kPing = 0x41,  ///< <= 64B -> echoed verbatim
};

enum class Status : uint8_t {
    kOk = 0,
    kTrapped = 1,         ///< guest trap; trap_kind names it, empty body
    kRejectedBusy = 2,    ///< backpressure; aux_us = suggested retry delay
    kBadRequest = 3,      ///< malformed header/body for the class
    kDeadlineExpired = 4, ///< deadline_us elapsed before completion
    kShuttingDown = 5,    ///< server draining; request was not admitted
    kUnknownClass = 6,    ///< class byte not recognized
};

const char *requestClassName(RequestClass cls);
const char *statusName(Status status);

struct RequestHeader
{
    uint8_t version = kWireVersion;
    RequestClass cls = RequestClass::kPing;
    uint16_t flags = 0;
    uint32_t deadline_us = 0;
    uint64_t id = 0;
};

struct ResponseHeader
{
    uint8_t version = kWireVersion;
    Status status = Status::kOk;
    RequestClass cls = RequestClass::kPing;
    uint8_t trap_kind = 0;
    uint32_t aux_us = 0;
    uint64_t id = 0;
};

// ---- little-endian primitives (shared by body marshalling) ----
void putU16(std::vector<uint8_t> &out, uint16_t v);
void putU32(std::vector<uint8_t> &out, uint32_t v);
void putU64(std::vector<uint8_t> &out, uint64_t v);
uint16_t getU16(const uint8_t *p);
uint32_t getU32(const uint8_t *p);
uint64_t getU64(const uint8_t *p);

/** Append a complete frame (length prefix + header + body) to @p out. */
void appendRequestFrame(std::vector<uint8_t> &out, const RequestHeader &h,
                        const uint8_t *body, size_t body_len);
void appendResponseFrame(std::vector<uint8_t> &out,
                         const ResponseHeader &h, const uint8_t *body,
                         size_t body_len);

/** Parse a frame payload's header; false if too short.  Does NOT check
 *  the version byte — the server wants to answer a version mismatch
 *  with kBadRequest on the request's own id. */
bool parseRequestHeader(const uint8_t *payload, size_t len,
                        RequestHeader *h);
bool parseResponseHeader(const uint8_t *payload, size_t len,
                         ResponseHeader *h);

/**
 * Incremental frame deframer for one stream direction.  feed() bytes
 * as they arrive; next() yields complete frame payloads.  A declared
 * length above the limit is unrecoverable (the stream offset is lost),
 * so the owner must close the connection on kTooBig.
 */
class FrameReader
{
  public:
    explicit FrameReader(size_t max_frame) : max_frame_(max_frame) {}

    void feed(const uint8_t *data, size_t len);

    enum class Next {
        kFrame,    ///< *payload filled with one complete frame
        kNeedMore, ///< no complete frame buffered
        kTooBig,   ///< declared length exceeds the limit — close
    };
    Next next(std::vector<uint8_t> *payload);

    /** Bytes buffered but not yet consumed (diagnostics). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    size_t max_frame_;
};

} // namespace gfp::service

#endif // GFP_SERVICE_WIRE_H
