/**
 * @file
 * Request-class semantics: the mapping from wire-protocol classes
 * (service/wire.h) onto the kernel catalog, expressed as a resumable
 * state machine the server drives one engine batch at a time.
 *
 * An EngineSet owns one BatchEngine per distinct kernel program —
 * engines are per-program because a BatchEngine assembles exactly one
 * Program and recycles per-worker Machines against it.  A request is a
 * RequestExec; advance() either emits the next (engine, Job) pair to
 * submit or finishes with a status + response body.  Single-kernel
 * classes finish after one step; the composite decode classes
 * (kRsDecode, kBchDecode, kRsErasure) walk the paper's
 * syndrome -> BMA -> Chien -> Forney chain with the standard verdict
 * logic, re-verifying the corrected word against host reference
 * syndromes before claiming success.
 *
 * Body layouts are documented (normatively) in docs/SERVICE.md and
 * enforced here by validate().
 */

#ifndef GFP_SERVICE_REQUEST_CLASSES_H
#define GFP_SERVICE_REQUEST_CLASSES_H

#include <chrono>
#include <memory>
#include <vector>

#include "engine/batch_engine.h"
#include "gf/field.h"
#include "service/wire.h"

namespace gfp::service {

/** RS(255,239,8) over GF(2^8)/0x11d — the paper's RS reference code. */
constexpr unsigned kRsN = 255;
constexpr unsigned kRsT = 8;
/** BCH(31,11,5) over GF(2^5) — the paper's BCH reference code. */
constexpr unsigned kBchN = 31;
constexpr unsigned kBchT = 5;
/** Erasure repair runs the Forney kernel on the host-computed erasure
 *  locator; the kernel's internal loops cap the locator degree at t, so
 *  at most t = 8 erasures are repairable per word (measured: e = 9
 *  fails, e <= 8 is bit-exact). */
constexpr unsigned kMaxErasures = kRsT;
/** ECDH scalars are at most 233 bits on K-233; the cap leaves headroom
 *  for stress scalars while bounding worst-case service time. */
constexpr uint32_t kMaxScalarBits = 1024;

/** One BatchEngine per kernel program the service dispatches to. */
enum class EngineId : uint8_t {
    kRsSynd = 0,
    kRsBma,
    kRsChien,
    kRsForney,
    kBchSynd,
    kBchBma,
    kBchChien,
    kAesBlock,
    kEcdh,
    kCount,
};

const char *engineName(EngineId id);

/**
 * The nine engines behind the service, built eagerly so the first
 * request of any class pays no assembly/JIT latency.  Options are
 * shared: every engine gets the same thread count and dispatch mode.
 */
class EngineSet
{
  public:
    explicit EngineSet(const BatchEngine::Options &opts);

    BatchEngine &engine(EngineId id);
    const BatchEngine &engine(EngineId id) const;

    /** Sum of pendingJobs() across engines — the admission-control
     *  queue-depth signal. */
    size_t totalPending() const;

    const GFField &rsField() const { return f8_; }
    const GFField &bchField() const { return f5_; }

    static constexpr unsigned count()
    {
        return static_cast<unsigned>(EngineId::kCount);
    }

  private:
    GFField f8_;
    GFField f5_;
    std::vector<std::unique_ptr<BatchEngine>> engines_;
};

/**
 * Validate a request body for its class.  Returns true when the body
 * is well-formed (lengths, ranges, distinctness); malformed bodies are
 * answered kBadRequest without touching an engine.
 */
bool validateBody(RequestClass cls, const uint8_t *body, size_t len);

/** True for classes advance() handles (kStats/kPing are control-plane
 *  and answered by the server directly). */
bool isComputeClass(RequestClass cls);

/** One in-flight compute request and its inter-stage scratch state. */
struct RequestExec
{
    uint64_t id = 0;
    RequestClass cls = RequestClass::kPing;
    uint32_t deadline_us = 0;
    std::chrono::steady_clock::time_point arrival;

    unsigned stage = 0;
    std::vector<uint8_t> body; ///< validated request body, owned

    // Composite-decode scratch carried between stages.
    std::vector<uint8_t> work;   ///< received word being corrected
    std::vector<uint8_t> synd;   ///< syndromes from stage 0
    std::vector<uint8_t> lambda; ///< locator from BMA (or host Gamma)
    std::vector<uint8_t> locs;   ///< locations from Chien (or declared)
    uint32_t llen = 0;
    uint32_t nloc = 0;
};

/** What advance() decided: either submit `job` to `engine`, or the
 *  request is finished with `status` (+ trap_kind/body for the
 *  response). */
struct StepResult
{
    bool done = false;

    // !done: the next batch-engine hop.
    EngineId engine = EngineId::kRsSynd;
    Job job;

    // done: terminal outcome.
    Status status = Status::kOk;
    uint8_t trap_kind = 0;
    std::vector<uint8_t> response;
};

/**
 * Drive @p ex one hop.  @p prev is the JobResult of the previously
 * emitted job (nullptr on the first call).  The caller owns scheduling:
 * it batches emitted jobs per engine, waits, and calls advance() again
 * with each result.  A trapped JobResult terminates the request with
 * kTrapped; advance() never consults wall clocks (deadline enforcement
 * is the server's).
 */
StepResult advance(const EngineSet &engines, RequestExec &ex,
                   const JobResult *prev);

// ---- body builders (shared by client tools and tests) ----
std::vector<uint8_t> rsSyndromeBody(const std::vector<uint8_t> &rx);
std::vector<uint8_t> rsBmaBody(const std::vector<uint8_t> &synd);
std::vector<uint8_t> rsChienBody(const std::vector<uint8_t> &lambda);
std::vector<uint8_t> rsForneyBody(const std::vector<uint8_t> &synd,
                                  const std::vector<uint8_t> &lambda,
                                  const std::vector<uint8_t> &locs,
                                  uint32_t nloc);
std::vector<uint8_t> rsDecodeBody(const std::vector<uint8_t> &rx);
std::vector<uint8_t> bchDecodeBody(const std::vector<uint8_t> &rx_bits);
std::vector<uint8_t> aesCtrBlockBody(const std::vector<uint8_t> &rkeys,
                                     const std::vector<uint8_t> &counter);
std::vector<uint8_t> ecdhSharedBody(const std::vector<uint8_t> &qx,
                                    const std::vector<uint8_t> &qy,
                                    const std::vector<uint8_t> &kwords,
                                    uint32_t kbits);
std::vector<uint8_t> rsErasureBody(const std::vector<uint8_t> &rx,
                                   const std::vector<uint8_t> &positions);

} // namespace gfp::service

#endif // GFP_SERVICE_REQUEST_CLASSES_H
