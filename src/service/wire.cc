#include "service/wire.h"

#include <cstring>

namespace gfp::service {

const char *
requestClassName(RequestClass cls)
{
    switch (cls) {
    case RequestClass::kRsSyndrome:
        return "rs_syndrome";
    case RequestClass::kRsBma:
        return "rs_bma";
    case RequestClass::kRsChien:
        return "rs_chien";
    case RequestClass::kRsForney:
        return "rs_forney";
    case RequestClass::kRsDecode:
        return "rs_decode";
    case RequestClass::kBchDecode:
        return "bch_decode";
    case RequestClass::kAesCtrBlock:
        return "aes_ctr_block";
    case RequestClass::kEcdhShared:
        return "ecdh_shared";
    case RequestClass::kRsErasure:
        return "rs_erasure";
    case RequestClass::kStats:
        return "stats";
    case RequestClass::kPing:
        return "ping";
    }
    return "unknown";
}

const char *
statusName(Status status)
{
    switch (status) {
    case Status::kOk:
        return "ok";
    case Status::kTrapped:
        return "trapped";
    case Status::kRejectedBusy:
        return "rejected_busy";
    case Status::kBadRequest:
        return "bad_request";
    case Status::kDeadlineExpired:
        return "deadline_expired";
    case Status::kShuttingDown:
        return "shutting_down";
    case Status::kUnknownClass:
        return "unknown_class";
    }
    return "unknown";
}

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t
getU16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
getU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

void
appendRequestFrame(std::vector<uint8_t> &out, const RequestHeader &h,
                   const uint8_t *body, size_t body_len)
{
    putU32(out, static_cast<uint32_t>(kHeaderBytes + body_len));
    out.push_back(h.version);
    out.push_back(static_cast<uint8_t>(h.cls));
    putU16(out, h.flags);
    putU32(out, h.deadline_us);
    putU64(out, h.id);
    if (body_len)
        out.insert(out.end(), body, body + body_len);
}

void
appendResponseFrame(std::vector<uint8_t> &out, const ResponseHeader &h,
                    const uint8_t *body, size_t body_len)
{
    putU32(out, static_cast<uint32_t>(kHeaderBytes + body_len));
    out.push_back(h.version);
    out.push_back(static_cast<uint8_t>(h.status));
    out.push_back(static_cast<uint8_t>(h.cls));
    out.push_back(h.trap_kind);
    putU32(out, h.aux_us);
    putU64(out, h.id);
    if (body_len)
        out.insert(out.end(), body, body + body_len);
}

bool
parseRequestHeader(const uint8_t *payload, size_t len, RequestHeader *h)
{
    if (len < kHeaderBytes)
        return false;
    h->version = payload[0];
    h->cls = static_cast<RequestClass>(payload[1]);
    h->flags = getU16(payload + 2);
    h->deadline_us = getU32(payload + 4);
    h->id = getU64(payload + 8);
    return true;
}

bool
parseResponseHeader(const uint8_t *payload, size_t len, ResponseHeader *h)
{
    if (len < kHeaderBytes)
        return false;
    h->version = payload[0];
    h->status = static_cast<Status>(payload[1]);
    h->cls = static_cast<RequestClass>(payload[2]);
    h->trap_kind = payload[3];
    h->aux_us = getU32(payload + 4);
    h->id = getU64(payload + 8);
    return true;
}

void
FrameReader::feed(const uint8_t *data, size_t len)
{
    // Compact once the consumed prefix dominates, so a long-lived
    // connection does not grow the buffer without bound.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
}

FrameReader::Next
FrameReader::next(std::vector<uint8_t> *payload)
{
    if (buf_.size() - pos_ < 4)
        return Next::kNeedMore;
    const uint32_t declared = getU32(buf_.data() + pos_);
    if (declared > max_frame_)
        return Next::kTooBig;
    if (buf_.size() - pos_ < 4 + static_cast<size_t>(declared))
        return Next::kNeedMore;
    payload->assign(buf_.begin() + static_cast<long>(pos_) + 4,
                    buf_.begin() + static_cast<long>(pos_) + 4 + declared);
    pos_ += 4 + declared;
    return Next::kFrame;
}

} // namespace gfp::service
