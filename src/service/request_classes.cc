#include "service/request_classes.h"

#include <algorithm>

#include "coding/decoder_kernels.h"
#include "common/logging.h"
#include "gf/poly.h"
#include "kernels/batch_kernels.h"
#include "kernels/wide_kernels.h"

#include "isa/assembler.h"

namespace gfp::service {

namespace {

constexpr size_t kLocBytes = 12;    ///< lambda/locs/evals buffer size
constexpr size_t kRkeyBytes = 176;  ///< AES-128: 11 round keys x 16B
constexpr size_t kScalarBytes = 16; ///< kwords buffer
constexpr size_t kCoordBytes = 32;  ///< qx/qy/resx/resy buffers

bool
allZero(const std::vector<uint8_t> &v)
{
    return std::all_of(v.begin(), v.end(),
                       [](uint8_t b) { return b == 0; });
}

/** Host-side codeword check: reference syndromes over @p field. */
bool
verifiesAsCodeword(const GFField &field, const std::vector<uint8_t> &word,
                   unsigned two_t)
{
    std::vector<GFElem> sym(word.begin(), word.end());
    auto synd = syndromes(field, sym, two_t);
    return std::all_of(synd.begin(), synd.end(),
                       [](GFElem s) { return s == 0; });
}

StepResult
finish(Status status, std::vector<uint8_t> response = {},
       uint8_t trap_kind = 0)
{
    StepResult r;
    r.done = true;
    r.status = status;
    r.trap_kind = trap_kind;
    r.response = std::move(response);
    return r;
}

StepResult
hop(EngineId engine, Job job)
{
    StepResult r;
    r.engine = engine;
    r.job = std::move(job);
    return r;
}

/** Kernel-produced Chien locations are untrusted output: anything
 *  outside [0, n) (or shorter than nloc) must fail the decode before
 *  it becomes a host-buffer index. */
bool
locsInRange(const std::vector<uint8_t> &locs, uint32_t nloc, unsigned n)
{
    if (locs.size() < nloc)
        return false;
    return std::all_of(locs.begin(), locs.begin() + nloc,
                       [n](uint8_t l) { return l < n; });
}

/** u8 ok + codeword (zeros when failed) — decode-class response. */
std::vector<uint8_t>
decodeResponse(bool ok, const std::vector<uint8_t> &codeword, unsigned n)
{
    std::vector<uint8_t> out;
    out.reserve(1 + n);
    out.push_back(ok ? 1 : 0);
    if (ok)
        out.insert(out.end(), codeword.begin(), codeword.end());
    else
        out.insert(out.end(), n, 0);
    return out;
}

} // namespace

const char *
engineName(EngineId id)
{
    switch (id) {
    case EngineId::kRsSynd:
        return "rs_synd";
    case EngineId::kRsBma:
        return "rs_bma";
    case EngineId::kRsChien:
        return "rs_chien";
    case EngineId::kRsForney:
        return "rs_forney";
    case EngineId::kBchSynd:
        return "bch_synd";
    case EngineId::kBchBma:
        return "bch_bma";
    case EngineId::kBchChien:
        return "bch_chien";
    case EngineId::kAesBlock:
        return "aes_block";
    case EngineId::kEcdh:
        return "ecdh";
    case EngineId::kCount:
        break;
    }
    return "unknown";
}

EngineSet::EngineSet(const BatchEngine::Options &opts) : f8_(8), f5_(5)
{
    engines_.resize(count());
    auto make = [&](EngineId id, BatchProgram bp) {
        engines_[static_cast<size_t>(id)] =
            std::make_unique<BatchEngine>(std::move(bp), opts);
    };
    make(EngineId::kRsSynd, syndromeBatchProgram(f8_, kRsN, 2 * kRsT));
    make(EngineId::kRsBma, bmaBatchProgram(f8_, 2 * kRsT));
    make(EngineId::kRsChien, chienBatchProgram(f8_, kRsN, kRsT));
    make(EngineId::kRsForney, forneyBatchProgram(f8_, 2 * kRsT));
    make(EngineId::kBchSynd, syndromeBatchProgram(f5_, kBchN, 2 * kBchT));
    make(EngineId::kBchBma, bmaBatchProgram(f5_, 2 * kBchT));
    make(EngineId::kBchChien, chienBatchProgram(f5_, kBchN, kBchT));
    make(EngineId::kAesBlock, aesBlockBatchProgram());
    make(EngineId::kEcdh,
         BatchProgram{Assembler::assemble(scalarMultAsm(true)),
                      CoreKind::kGfProcessor});
}

BatchEngine &
EngineSet::engine(EngineId id)
{
    GFP_ASSERT(id < EngineId::kCount, "bad engine id %u",
               static_cast<unsigned>(id));
    return *engines_[static_cast<size_t>(id)];
}

const BatchEngine &
EngineSet::engine(EngineId id) const
{
    GFP_ASSERT(id < EngineId::kCount, "bad engine id %u",
               static_cast<unsigned>(id));
    return *engines_[static_cast<size_t>(id)];
}

size_t
EngineSet::totalPending() const
{
    size_t total = 0;
    for (const auto &e : engines_)
        total += e->pendingJobs();
    return total;
}

bool
isComputeClass(RequestClass cls)
{
    switch (cls) {
    case RequestClass::kRsSyndrome:
    case RequestClass::kRsBma:
    case RequestClass::kRsChien:
    case RequestClass::kRsForney:
    case RequestClass::kRsDecode:
    case RequestClass::kBchDecode:
    case RequestClass::kAesCtrBlock:
    case RequestClass::kEcdhShared:
    case RequestClass::kRsErasure:
        return true;
    case RequestClass::kStats:
    case RequestClass::kPing:
        return false;
    }
    return false;
}

bool
validateBody(RequestClass cls, const uint8_t *body, size_t len)
{
    switch (cls) {
    case RequestClass::kRsSyndrome:
    case RequestClass::kRsDecode:
        return len == kRsN;
    case RequestClass::kRsBma:
        return len == 2 * kRsT;
    case RequestClass::kRsChien:
        return len == kLocBytes;
    case RequestClass::kRsForney: {
        if (len != 2 * kRsT + 2 * kLocBytes + 4)
            return false;
        uint32_t nloc = getU32(body + 2 * kRsT + 2 * kLocBytes);
        return nloc <= kLocBytes;
    }
    case RequestClass::kBchDecode:
        if (len != kBchN)
            return false;
        return std::all_of(body, body + len,
                           [](uint8_t b) { return b <= 1; });
    case RequestClass::kAesCtrBlock:
        return len == kRkeyBytes + 16;
    case RequestClass::kEcdhShared: {
        if (len != 2 * kCoordBytes + kScalarBytes + 4)
            return false;
        uint32_t kbits = getU32(body + 2 * kCoordBytes + kScalarBytes);
        return kbits <= kMaxScalarBits;
    }
    case RequestClass::kRsErasure: {
        if (len < kRsN + 1)
            return false;
        unsigned e = body[kRsN];
        if (e < 1 || e > kMaxErasures || len != kRsN + 1 + e)
            return false;
        // Positions must be in range and distinct.
        for (unsigned i = 0; i < e; ++i) {
            if (body[kRsN + 1 + i] >= kRsN)
                return false;
            for (unsigned j = 0; j < i; ++j)
                if (body[kRsN + 1 + i] == body[kRsN + 1 + j])
                    return false;
        }
        return true;
    }
    case RequestClass::kStats:
        return len == 0;
    case RequestClass::kPing:
        return len <= 64;
    }
    return false;
}

namespace {

/** Shared decode chain for kRsDecode/kBchDecode.  The two codes run the
 *  same generic kernels; they differ in field, n, t, engine ids, and
 *  how a correction is applied (symbol XOR vs bit flip). */
StepResult
advanceDecode(const EngineSet &engines, RequestExec &ex,
              const JobResult *prev, bool bch)
{
    const GFField &field =
        bch ? engines.bchField() : engines.rsField();
    const unsigned n = bch ? kBchN : kRsN;
    const unsigned t = bch ? kBchT : kRsT;
    const EngineId synd_e = bch ? EngineId::kBchSynd : EngineId::kRsSynd;
    const EngineId bma_e = bch ? EngineId::kBchBma : EngineId::kRsBma;
    const EngineId chien_e =
        bch ? EngineId::kBchChien : EngineId::kRsChien;

    switch (ex.stage) {
    case 0:
        ex.work.assign(ex.body.begin(), ex.body.begin() + n);
        ex.stage = 1;
        return hop(synd_e,
                   syndromeJob(std::vector<GFElem>(ex.work.begin(),
                                                   ex.work.end()),
                               2 * t));
    case 1:
        ex.synd = prev->bytes("synd");
        if (allZero(ex.synd))
            return finish(Status::kOk, decodeResponse(true, ex.work, n));
        ex.stage = 2;
        return hop(bma_e, bmaJob(ex.synd));
    case 2:
        ex.lambda = prev->bytes("lambda");
        ex.llen = prev->word("llen");
        ex.stage = 3;
        return hop(chien_e, chienJob(ex.lambda));
    case 3: {
        ex.locs = prev->bytes("locs");
        ex.nloc = prev->word("nloc");
        if (ex.nloc != ex.llen || ex.llen > t ||
            !locsInRange(ex.locs, ex.nloc, n))
            return finish(Status::kOk, decodeResponse(false, {}, n));
        if (bch) {
            // Binary code: the error value at a located position is
            // always a bit flip; no Forney stage.
            auto fixed = ex.work;
            for (uint32_t i = 0; i < ex.nloc; ++i)
                fixed[ex.locs[i]] ^= 1;
            bool ok = verifiesAsCodeword(field, fixed, 2 * t);
            return finish(Status::kOk,
                          decodeResponse(ok, ok ? fixed : ex.work, n));
        }
        ex.stage = 4;
        return hop(EngineId::kRsForney,
                   forneyJob(ex.synd, ex.lambda, ex.locs, ex.nloc));
    }
    case 4: {
        const auto &evals = prev->bytes("evals");
        if (evals.size() < ex.nloc)
            return finish(Status::kOk, decodeResponse(false, {}, n));
        auto fixed = ex.work;
        for (uint32_t i = 0; i < ex.nloc; ++i)
            fixed[ex.locs[i]] ^= evals[i];
        bool ok = verifiesAsCodeword(field, fixed, 2 * t);
        return finish(Status::kOk,
                      decodeResponse(ok, ok ? fixed : ex.work, n));
    }
    default:
        GFP_FATAL("decode request in impossible stage %u", ex.stage);
    }
}

StepResult
advanceErasure(const EngineSet &engines, RequestExec &ex,
               const JobResult *prev)
{
    switch (ex.stage) {
    case 0: {
        ex.work.assign(ex.body.begin(), ex.body.begin() + kRsN);
        ex.stage = 1;
        return hop(EngineId::kRsSynd,
                   syndromeJob(std::vector<GFElem>(ex.work.begin(),
                                                   ex.work.end()),
                               2 * kRsT));
    }
    case 1: {
        ex.synd = prev->bytes("synd");
        if (allZero(ex.synd))
            return finish(Status::kOk,
                          decodeResponse(true, ex.work, kRsN));
        // Host side: erasure locator Gamma from the declared positions;
        // the Forney kernel then computes the erased values directly
        // (no BMA/Chien — the locations are known).
        const unsigned e = ex.body[kRsN];
        std::vector<unsigned> positions(e);
        for (unsigned i = 0; i < e; ++i)
            positions[i] = ex.body[kRsN + 1 + i];
        GFPoly gamma = erasureLocator(engines.rsField(), positions);
        ex.lambda.assign(kLocBytes, 0);
        for (unsigned i = 0;
             i <= static_cast<unsigned>(gamma.degree()) && i < kLocBytes;
             ++i)
            ex.lambda[i] = static_cast<uint8_t>(gamma.coeff(i));
        ex.locs.assign(kLocBytes, 0);
        for (unsigned i = 0; i < e; ++i)
            ex.locs[i] = static_cast<uint8_t>(positions[i]);
        ex.nloc = e;
        ex.stage = 2;
        return hop(EngineId::kRsForney,
                   forneyJob(ex.synd, ex.lambda, ex.locs, ex.nloc));
    }
    case 2: {
        const auto &evals = prev->bytes("evals");
        if (evals.size() < ex.nloc)
            return finish(Status::kOk,
                          decodeResponse(false, {}, kRsN));
        auto fixed = ex.work;
        for (uint32_t i = 0; i < ex.nloc; ++i)
            fixed[ex.locs[i]] ^= evals[i];
        // Declared erasures may not be the whole story (undeclared
        // errors elsewhere); only a verified codeword counts.
        bool ok = verifiesAsCodeword(engines.rsField(), fixed, 2 * kRsT);
        return finish(Status::kOk,
                      decodeResponse(ok, ok ? fixed : ex.work, kRsN));
    }
    default:
        GFP_FATAL("erasure request in impossible stage %u", ex.stage);
    }
}

} // namespace

StepResult
advance(const EngineSet &engines, RequestExec &ex, const JobResult *prev)
{
    // A trap at any stage terminates the request: the guest fault is
    // reported, never retried (the engine already isolated it).
    if (prev && !prev->ok())
        return finish(Status::kTrapped, {},
                      static_cast<uint8_t>(prev->trap.kind));

    switch (ex.cls) {
    case RequestClass::kRsSyndrome:
        if (ex.stage == 0) {
            ex.stage = 1;
            return hop(EngineId::kRsSynd,
                       syndromeJob(std::vector<GFElem>(ex.body.begin(),
                                                       ex.body.end()),
                                   2 * kRsT));
        }
        return finish(Status::kOk, prev->bytes("synd"));

    case RequestClass::kRsBma:
        if (ex.stage == 0) {
            ex.stage = 1;
            return hop(EngineId::kRsBma, bmaJob(ex.body));
        }
        else {
            std::vector<uint8_t> out = prev->bytes("lambda");
            putU32(out, prev->word("llen"));
            return finish(Status::kOk, std::move(out));
        }

    case RequestClass::kRsChien:
        if (ex.stage == 0) {
            ex.stage = 1;
            return hop(EngineId::kRsChien, chienJob(ex.body));
        }
        else {
            std::vector<uint8_t> out = prev->bytes("locs");
            putU32(out, prev->word("nloc"));
            return finish(Status::kOk, std::move(out));
        }

    case RequestClass::kRsForney:
        if (ex.stage == 0) {
            ex.stage = 1;
            const uint8_t *b = ex.body.data();
            std::vector<uint8_t> synd(b, b + 2 * kRsT);
            std::vector<uint8_t> lambda(b + 2 * kRsT,
                                        b + 2 * kRsT + kLocBytes);
            std::vector<uint8_t> locs(b + 2 * kRsT + kLocBytes,
                                      b + 2 * kRsT + 2 * kLocBytes);
            uint32_t nloc = getU32(b + 2 * kRsT + 2 * kLocBytes);
            return hop(EngineId::kRsForney,
                       forneyJob(synd, lambda, locs, nloc));
        }
        return finish(Status::kOk, prev->bytes("evals"));

    case RequestClass::kRsDecode:
        return advanceDecode(engines, ex, prev, /*bch=*/false);
    case RequestClass::kBchDecode:
        return advanceDecode(engines, ex, prev, /*bch=*/true);
    case RequestClass::kRsErasure:
        return advanceErasure(engines, ex, prev);

    case RequestClass::kAesCtrBlock:
        if (ex.stage == 0) {
            ex.stage = 1;
            Job job;
            job.inputs.emplace_back(
                "rkeys", std::vector<uint8_t>(ex.body.begin(),
                                              ex.body.begin() + kRkeyBytes));
            job.inputs.emplace_back(
                "state", std::vector<uint8_t>(ex.body.begin() + kRkeyBytes,
                                              ex.body.end()));
            job.outputs.emplace_back("state", 16);
            return hop(EngineId::kAesBlock, std::move(job));
        }
        return finish(Status::kOk, prev->bytes("state"));

    case RequestClass::kEcdhShared:
        if (ex.stage == 0) {
            ex.stage = 1;
            const uint8_t *b = ex.body.data();
            Job job;
            job.inputs.emplace_back(
                "qx", std::vector<uint8_t>(b, b + kCoordBytes));
            job.inputs.emplace_back(
                "qy",
                std::vector<uint8_t>(b + kCoordBytes, b + 2 * kCoordBytes));
            job.inputs.emplace_back(
                "kwords",
                std::vector<uint8_t>(b + 2 * kCoordBytes,
                                     b + 2 * kCoordBytes + kScalarBytes));
            job.word_inputs.emplace_back(
                "kbits", getU32(b + 2 * kCoordBytes + kScalarBytes));
            job.outputs.emplace_back("resx", kCoordBytes);
            job.outputs.emplace_back("resy", kCoordBytes);
            return hop(EngineId::kEcdh, std::move(job));
        }
        else {
            std::vector<uint8_t> out = prev->bytes("resx");
            const auto &resy = prev->bytes("resy");
            out.insert(out.end(), resy.begin(), resy.end());
            return finish(Status::kOk, std::move(out));
        }

    case RequestClass::kStats:
    case RequestClass::kPing:
        break;
    }
    GFP_FATAL("advance() on non-compute class 0x%02x",
              static_cast<unsigned>(ex.cls));
}

// ---- body builders ----

std::vector<uint8_t>
rsSyndromeBody(const std::vector<uint8_t> &rx)
{
    GFP_ASSERT(rx.size() == kRsN, "rs body wants %u bytes, got %zu",
               kRsN, rx.size());
    return rx;
}

std::vector<uint8_t>
rsBmaBody(const std::vector<uint8_t> &synd)
{
    GFP_ASSERT(synd.size() == 2 * kRsT, "bma body wants %u bytes",
               2 * kRsT);
    return synd;
}

std::vector<uint8_t>
rsChienBody(const std::vector<uint8_t> &lambda)
{
    GFP_ASSERT(lambda.size() == kLocBytes, "chien body wants %zu bytes",
               kLocBytes);
    return lambda;
}

std::vector<uint8_t>
rsForneyBody(const std::vector<uint8_t> &synd,
             const std::vector<uint8_t> &lambda,
             const std::vector<uint8_t> &locs, uint32_t nloc)
{
    GFP_ASSERT(synd.size() == 2 * kRsT && lambda.size() == kLocBytes &&
                   locs.size() == kLocBytes,
               "forney body part sizes wrong");
    std::vector<uint8_t> out = synd;
    out.insert(out.end(), lambda.begin(), lambda.end());
    out.insert(out.end(), locs.begin(), locs.end());
    putU32(out, nloc);
    return out;
}

std::vector<uint8_t>
rsDecodeBody(const std::vector<uint8_t> &rx)
{
    return rsSyndromeBody(rx);
}

std::vector<uint8_t>
bchDecodeBody(const std::vector<uint8_t> &rx_bits)
{
    GFP_ASSERT(rx_bits.size() == kBchN, "bch body wants %u bits", kBchN);
    return rx_bits;
}

std::vector<uint8_t>
aesCtrBlockBody(const std::vector<uint8_t> &rkeys,
                const std::vector<uint8_t> &counter)
{
    GFP_ASSERT(rkeys.size() == kRkeyBytes && counter.size() == 16,
               "aes body part sizes wrong");
    std::vector<uint8_t> out = rkeys;
    out.insert(out.end(), counter.begin(), counter.end());
    return out;
}

std::vector<uint8_t>
ecdhSharedBody(const std::vector<uint8_t> &qx,
               const std::vector<uint8_t> &qy,
               const std::vector<uint8_t> &kwords, uint32_t kbits)
{
    GFP_ASSERT(qx.size() == kCoordBytes && qy.size() == kCoordBytes &&
                   kwords.size() == kScalarBytes,
               "ecdh body part sizes wrong");
    std::vector<uint8_t> out = qx;
    out.insert(out.end(), qy.begin(), qy.end());
    out.insert(out.end(), kwords.begin(), kwords.end());
    putU32(out, kbits);
    return out;
}

std::vector<uint8_t>
rsErasureBody(const std::vector<uint8_t> &rx,
              const std::vector<uint8_t> &positions)
{
    GFP_ASSERT(rx.size() == kRsN, "erasure body wants %u-byte word",
               kRsN);
    GFP_ASSERT(positions.size() >= 1 && positions.size() <= kMaxErasures,
               "erasure count %zu out of range", positions.size());
    std::vector<uint8_t> out = rx;
    out.push_back(static_cast<uint8_t>(positions.size()));
    out.insert(out.end(), positions.begin(), positions.end());
    return out;
}

} // namespace gfp::service
