#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/strutil.h"

namespace gfp::service {

namespace {

/** Whole-frame write; MSG_NOSIGNAL so a vanished client is an error
 *  return, not a SIGPIPE. */
bool
sendAll(int fd, const uint8_t *data, size_t len)
{
    while (len > 0) {
        ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
knownClass(uint8_t raw)
{
    switch (static_cast<RequestClass>(raw)) {
    case RequestClass::kRsSyndrome:
    case RequestClass::kRsBma:
    case RequestClass::kRsChien:
    case RequestClass::kRsForney:
    case RequestClass::kRsDecode:
    case RequestClass::kBchDecode:
    case RequestClass::kAesCtrBlock:
    case RequestClass::kEcdhShared:
    case RequestClass::kRsErasure:
    case RequestClass::kStats:
    case RequestClass::kPing:
        return true;
    }
    return false;
}

std::string
statusCounterName(Status status)
{
    return std::string("responses_") + statusName(status) + "_total";
}

} // namespace

/** One accepted socket and its reader-side state.  The staging arrays
 *  are reader-thread-private; write_mu serializes whole-frame writes
 *  from the reader (rejections, control) and the completers. */
struct Server::Connection
{
    int fd = -1;
    uint64_t id = 0;
    std::mutex write_mu;
    std::atomic<bool> write_failed{false};

    struct Staged
    {
        std::vector<Job> jobs;
        std::vector<std::unique_ptr<RequestExec>> execs;
    };
    std::array<Staged, static_cast<size_t>(EngineId::kCount)> staged;
    size_t staged_total = 0;

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

Server::Server(Options opts) : opts_(std::move(opts))
{
    engines_ = std::make_unique<EngineSet>(opts_.engine);
    lanes_.resize(EngineSet::count());
    for (auto &lane : lanes_)
        lane = std::make_unique<EngineLane>();
}

Server::~Server()
{
    drain();
}

double
Server::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
Server::start()
{
    GFP_ASSERT(!started_.load(), "Server::start() called twice");
    GFP_ASSERT(!opts_.unix_path.empty() || opts_.tcp_port.has_value(),
               "Server needs at least one listener (unix_path or "
               "tcp_port)");
    epoch_ = std::chrono::steady_clock::now();
    if (trace_log_) {
        trace_log_->processName(kServicePid, "gfp-serve");
    }

    if (!opts_.unix_path.empty()) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            GFP_FATAL("socket(AF_UNIX): %s", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts_.unix_path.size() >= sizeof(addr.sun_path))
            GFP_FATAL("unix path too long: %s", opts_.unix_path.c_str());
        std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            if (errno != EADDRINUSE)
                GFP_FATAL("bind(%s): %s", opts_.unix_path.c_str(),
                          std::strerror(errno));
            // A socket file already exists.  Probe it before stealing
            // the path: a live server accepts the connect; a stale file
            // left by a crashed instance refuses it.
            int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (probe < 0)
                GFP_FATAL("socket(AF_UNIX): %s", std::strerror(errno));
            int rc = ::connect(probe,
                               reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr));
            ::close(probe);
            if (rc == 0)
                GFP_FATAL("%s: another server is listening on this "
                          "socket",
                          opts_.unix_path.c_str());
            ::unlink(opts_.unix_path.c_str());
            if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr)) < 0)
                GFP_FATAL("bind(%s): %s", opts_.unix_path.c_str(),
                          std::strerror(errno));
        }
        if (::listen(fd, 128) < 0)
            GFP_FATAL("listen(%s): %s", opts_.unix_path.c_str(),
                      std::strerror(errno));
        listen_fds_.push_back(fd);
    }
    if (opts_.tcp_port.has_value()) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            GFP_FATAL("socket(AF_INET): %s", std::strerror(errno));
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(*opts_.tcp_port);
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0)
            GFP_FATAL("bind(tcp %u): %s", *opts_.tcp_port,
                      std::strerror(errno));
        if (::listen(fd, 128) < 0)
            GFP_FATAL("listen(tcp): %s", std::strerror(errno));
        sockaddr_in bound{};
        socklen_t blen = sizeof(bound);
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &blen);
        bound_tcp_port_ = ntohs(bound.sin_port);
        listen_fds_.push_back(fd);
    }

    for (unsigned lane = 0; lane < lanes_.size(); ++lane)
        lanes_[lane]->worker =
            std::thread([this, lane] { completerLoop(lane); });
    for (int fd : listen_fds_)
        accept_threads_.emplace_back([this, fd] { acceptLoop(fd, true); });

    started_.store(true);
    if (!opts_.quiet) {
        if (!opts_.unix_path.empty())
            GFP_INFORM("gfp-serve listening on unix:%s",
                       opts_.unix_path.c_str());
        if (bound_tcp_port_)
            GFP_INFORM("gfp-serve listening on tcp:127.0.0.1:%u",
                       bound_tcp_port_);
    }
}

void
Server::acceptLoop(int listen_fd, bool)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed (drain)
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->id = next_conn_id_.fetch_add(1);
        metrics_.add("connections_total");
        if (trace_log_)
            trace_log_->threadName(kServicePid,
                                   static_cast<int>(conn->id),
                                   strprintf("conn %llu",
                                             static_cast<unsigned long long>(
                                                 conn->id)));
        {
            std::lock_guard<std::mutex> lock(conns_mu_);
            if (draining_.load()) {
                ::close(fd);
                conn->fd = -1;
                return;
            }
            conns_.push_back(conn);
            ++live_readers_;
            metrics_.set("connections_active",
                         static_cast<double>(conns_.size()));
        }
        // Detached: a reader prunes its own connection on exit (it
        // cannot join itself); drain() waits on live_readers_ instead
        // of thread handles.
        std::thread([this, conn] { readerLoop(conn); }).detach();
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    FrameReader reader(kMaxRequestFrame);
    std::vector<uint8_t> buf(64 * 1024);
    std::vector<uint8_t> payload;
    bool protocol_error = false;
    for (;;) {
        ssize_t n = ::read(conn->fd, buf.data(), buf.size());
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        reader.feed(buf.data(), static_cast<size_t>(n));
        for (;;) {
            auto next = reader.next(&payload);
            if (next == FrameReader::Next::kNeedMore)
                break;
            if (next == FrameReader::Next::kTooBig) {
                metrics_.add("protocol_errors_total");
                protocol_error = true;
                break;
            }
            if (!handleFrame(conn, payload)) {
                protocol_error = true;
                break;
            }
        }
        // Input drained (or dying): everything staged goes out as one
        // submitBatch() per engine — the streaming-batch heart of the
        // server.
        flushStaged(conn);
        if (protocol_error)
            break;
    }
    flushStaged(conn);
    if (protocol_error) {
        // The stream offset is lost — the connection is unrecoverable
        // and docs/SERVICE.md makes the close immediate.  Responses
        // still in flight for this connection lose the race and are
        // dropped by their completers (write_failed), which is exactly
        // what a client that corrupted its own stream must expect.
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    else {
        // EOF from a well-behaved client: stop reading but keep the fd
        // open — completers may still be writing responses for
        // in-flight requests on this connection.  Their BatchItems hold
        // shared_ptrs, so the fd closes (Connection dtor) only once the
        // last in-flight response has flushed.
        ::shutdown(conn->fd, SHUT_RD);
    }
    // Prune: drop the server's reference so a churning client does not
    // accumulate dead connections (and their fds) until drain().
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [&](const auto &c) {
                                        return c.get() == conn.get();
                                    }),
                     conns_.end());
        metrics_.set("connections_active",
                     static_cast<double>(conns_.size()));
        --live_readers_;
        readers_cv_.notify_all();
    }
}

bool
Server::handleFrame(const std::shared_ptr<Connection> &conn,
                    const std::vector<uint8_t> &payload)
{
    RequestHeader h;
    if (!parseRequestHeader(payload.data(), payload.size(), &h)) {
        metrics_.add("protocol_errors_total");
        return false; // undersized header: framing is suspect, close
    }
    metrics_.add("requests_total");
    const uint8_t *body = payload.data() + kHeaderBytes;
    const size_t body_len = payload.size() - kHeaderBytes;

    ResponseHeader r;
    r.cls = h.cls;
    r.id = h.id;

    if (!knownClass(static_cast<uint8_t>(h.cls))) {
        r.status = Status::kUnknownClass;
        respondRaw(conn, r, nullptr, 0);
        return true;
    }
    if (h.version != kWireVersion || h.flags != 0 ||
        !validateBody(h.cls, body, body_len)) {
        r.status = Status::kBadRequest;
        respondRaw(conn, r, nullptr, 0);
        return true;
    }

    if (!isComputeClass(h.cls)) {
        metrics_.add("control_total");
        r.status = Status::kOk;
        if (h.cls == RequestClass::kStats) {
            // Count this response BEFORE snapshotting, so the served
            // document satisfies the accounting invariants including
            // the stats request itself.
            metrics_.add(statusCounterName(Status::kOk));
            std::string doc = statsJson();
            respondRaw(conn, r,
                       reinterpret_cast<const uint8_t *>(doc.data()),
                       doc.size(), /*count_status=*/false);
        }
        else { // ping: echo
            respondRaw(conn, r, body, body_len);
        }
        return true;
    }

    // Admission control.  The draining check and the in-flight
    // increment share drain_mu_ so drain() can never observe zero
    // in-flight while an admission is mid-decision.
    {
        std::lock_guard<std::mutex> lock(drain_mu_);
        if (draining_.load()) {
            r.status = Status::kShuttingDown;
            respondRaw(conn, r, nullptr, 0);
            return true;
        }
        if (engines_->totalPending() + conn->staged_total >=
            opts_.admission_watermark) {
            r.status = Status::kRejectedBusy;
            r.aux_us = retryAfterUs();
            respondRaw(conn, r, nullptr, 0);
            return true;
        }
        in_flight_.fetch_add(1);
    }
    metrics_.add("admitted_total");

    auto ex = std::make_unique<RequestExec>();
    ex->id = h.id;
    ex->cls = h.cls;
    ex->deadline_us = h.deadline_us;
    ex->arrival = std::chrono::steady_clock::now();
    ex->body.assign(body, body + body_len);

    StepResult first = advance(*engines_, *ex, nullptr);
    GFP_ASSERT(!first.done, "stage 0 of a compute class must emit a job");
    stageJob(conn, first.engine, std::move(first.job), std::move(ex));
    return true;
}

uint32_t
Server::retryAfterUs() const
{
    const uint64_t pending = engines_->totalPending();
    const uint64_t ema = ema_job_us_.load(std::memory_order_relaxed);
    return static_cast<uint32_t>(
        std::clamp<uint64_t>(pending * ema, 100, 5'000'000));
}

void
Server::stageJob(const std::shared_ptr<Connection> &conn, EngineId engine,
                 Job job, std::unique_ptr<RequestExec> ex)
{
    auto &staged = conn->staged[static_cast<size_t>(engine)];
    staged.jobs.push_back(std::move(job));
    staged.execs.push_back(std::move(ex));
    ++conn->staged_total;
    if (staged.jobs.size() >= opts_.max_batch)
        flushStaged(conn);
}

void
Server::flushStaged(const std::shared_ptr<Connection> &conn)
{
    for (size_t e = 0; e < conn->staged.size(); ++e) {
        auto &staged = conn->staged[e];
        if (staged.jobs.empty())
            continue;
        conn->staged_total -= staged.jobs.size();
        metrics_.observe("submit_batch_jobs",
                         static_cast<double>(staged.jobs.size()));
        BatchItem item;
        item.conn = conn;
        item.execs = std::move(staged.execs);
        item.ticket = engines_->engine(static_cast<EngineId>(e))
                          .submitBatch(std::move(staged.jobs));
        staged.jobs.clear();
        staged.execs.clear();
        auto &lane = *lanes_[e];
        {
            std::lock_guard<std::mutex> lock(lane.mu);
            lane.fifo.push_back(std::move(item));
        }
        lane.cv.notify_one();
    }
    if (trace_log_)
        trace_log_->counter(
            "service queue", nowUs(), kServicePid,
            {{"pending_jobs",
              static_cast<double>(engines_->totalPending())},
             {"in_flight",
              static_cast<double>(in_flight_.load())}});
}

void
Server::completerLoop(unsigned lane_idx)
{
    EngineLane &lane = *lanes_[lane_idx];
    BatchEngine &engine = engines_->engine(static_cast<EngineId>(lane_idx));
    for (;;) {
        BatchItem item;
        {
            std::unique_lock<std::mutex> lock(lane.mu);
            lane.cv.wait(lock, [&] {
                return !lane.fifo.empty() || stopped_.load();
            });
            if (lane.fifo.empty())
                return; // stopped and drained
            item = std::move(lane.fifo.front());
            lane.fifo.pop_front();
        }

        std::vector<JobResult> results = engine.wait(item.ticket);
        GFP_ASSERT(results.size() == item.execs.size(),
                   "batch result/exec count mismatch");

        // Hop groups: multi-stage requests re-batch onto their next
        // engine in one submitBatch per engine.
        std::array<std::vector<Job>, static_cast<size_t>(EngineId::kCount)>
            hop_jobs;
        std::array<std::vector<std::unique_ptr<RequestExec>>,
                   static_cast<size_t>(EngineId::kCount)>
            hop_execs;

        for (size_t i = 0; i < results.size(); ++i) {
            const JobResult &res = results[i];
            std::unique_ptr<RequestExec> ex = std::move(item.execs[i]);

            const uint32_t host_us = static_cast<uint32_t>(
                std::min(res.host_seconds * 1e6, 1e9));
            uint32_t ema = ema_job_us_.load(std::memory_order_relaxed);
            while (!ema_job_us_.compare_exchange_weak(
                ema, (7 * ema + host_us) / 8,
                std::memory_order_relaxed))
                ;

            if (ex->deadline_us != 0) {
                const double elapsed_us =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - ex->arrival)
                        .count();
                if (elapsed_us > ex->deadline_us) {
                    respond(item.conn, *ex, Status::kDeadlineExpired, 0,
                            {});
                    continue;
                }
            }

            StepResult step = advance(*engines_, *ex, &res);
            if (step.done) {
                respond(item.conn, *ex, step.status, step.trap_kind,
                        step.response);
            }
            else {
                const size_t e = static_cast<size_t>(step.engine);
                hop_jobs[e].push_back(std::move(step.job));
                hop_execs[e].push_back(std::move(ex));
            }
        }

        for (size_t e = 0; e < hop_jobs.size(); ++e) {
            if (hop_jobs[e].empty())
                continue;
            BatchItem hop;
            hop.conn = item.conn;
            hop.execs = std::move(hop_execs[e]);
            hop.ticket = engines_->engine(static_cast<EngineId>(e))
                             .submitBatch(std::move(hop_jobs[e]));
            auto &next_lane = *lanes_[e];
            {
                std::lock_guard<std::mutex> lock(next_lane.mu);
                next_lane.fifo.push_back(std::move(hop));
            }
            next_lane.cv.notify_one();
        }
    }
}

void
Server::respond(const std::shared_ptr<Connection> &conn,
                const RequestExec &ex, Status status, uint8_t trap_kind,
                const std::vector<uint8_t> &body)
{
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - ex.arrival)
            .count();

    ResponseHeader h;
    h.status = status;
    h.cls = ex.cls;
    h.trap_kind = trap_kind;
    h.aux_us = static_cast<uint32_t>(std::min(latency_us, 4e9));
    h.id = ex.id;

    // Counters first, then the frame: a client that has received this
    // response must find it already counted in a kStats snapshot.
    metrics_.add(statusCounterName(status));
    metrics_.observe(strprintf("class_%s_latency_us",
                               requestClassName(ex.cls)),
                     latency_us);

    std::vector<uint8_t> frame;
    frame.reserve(4 + kHeaderBytes + body.size());
    appendResponseFrame(frame, h, body.data(), body.size());
    {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!conn->write_failed.load() &&
            !sendAll(conn->fd, frame.data(), frame.size())) {
            conn->write_failed.store(true);
            metrics_.add("write_failures_total");
        }
    }
    if (trace_log_) {
        const double end_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
        TraceLog::Args args{{"status", statusName(status)}};
        if (status == Status::kTrapped)
            args.emplace_back("trap",
                              trapKindName(static_cast<TrapKind>(
                                  trap_kind)));
        trace_log_->complete(requestClassName(ex.cls), "service",
                             end_us - latency_us, latency_us,
                             kServicePid, static_cast<int>(conn->id),
                             std::move(args));
    }

    if (in_flight_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drain_cv_.notify_all();
    }
}

void
Server::respondRaw(const std::shared_ptr<Connection> &conn,
                   const ResponseHeader &h, const uint8_t *body,
                   size_t body_len, bool count_status)
{
    if (count_status)
        metrics_.add(statusCounterName(h.status));
    std::vector<uint8_t> frame;
    frame.reserve(4 + kHeaderBytes + body_len);
    appendResponseFrame(frame, h, body, body_len);
    {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (!conn->write_failed.load() &&
            !sendAll(conn->fd, frame.data(), frame.size())) {
            conn->write_failed.store(true);
            metrics_.add("write_failures_total");
        }
    }
}

void
Server::drain()
{
    if (!started_.load() || stopped_.load())
        return;
    {
        std::lock_guard<std::mutex> lock(drain_mu_);
        draining_.store(true);
    }
    // Close listeners: accept loops exit, no new connections.
    for (int fd : listen_fds_)
        ::shutdown(fd, SHUT_RDWR);
    for (auto &t : accept_threads_)
        t.join();
    for (int fd : listen_fds_)
        ::close(fd);
    listen_fds_.clear();

    // Every admitted request completes and flushes its response;
    // readers keep answering new frames with kShuttingDown meanwhile.
    {
        std::unique_lock<std::mutex> lock(drain_mu_);
        drain_cv_.wait(lock, [&] { return in_flight_.load() == 0; });
    }

    // Stop the completer lanes (their FIFOs are empty now: zero
    // in-flight means nothing left to redeem).
    stopped_.store(true);
    for (auto &lane : lanes_) {
        lane->cv.notify_all();
        lane->worker.join();
    }

    // Unblock the readers (they prune their own connections on exit)
    // and wait for the last of them to go.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns = conns_;
    }
    for (auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RDWR);
    conns.clear();
    {
        std::unique_lock<std::mutex> lock(conns_mu_);
        readers_cv_.wait(lock, [&] { return live_readers_ == 0; });
    }
    metrics_.set("connections_active", 0);

    if (!opts_.unix_path.empty())
        ::unlink(opts_.unix_path.c_str());
    if (!opts_.quiet)
        GFP_INFORM("gfp-serve drained");
}

bool
Server::countersConsistent() const
{
    const double requests = metrics_.counter("requests_total");
    const double admitted = metrics_.counter("admitted_total");
    const double control = metrics_.counter("control_total");
    const double ok = metrics_.counter("responses_ok_total");
    const double trapped = metrics_.counter("responses_trapped_total");
    const double rejected =
        metrics_.counter("responses_rejected_busy_total");
    const double bad = metrics_.counter("responses_bad_request_total");
    const double deadline =
        metrics_.counter("responses_deadline_expired_total");
    const double shutting =
        metrics_.counter("responses_shutting_down_total");
    const double unknown =
        metrics_.counter("responses_unknown_class_total");

    bool consistent = true;
    if (requests !=
        admitted + control + rejected + bad + shutting + unknown) {
        GFP_WARN("request accounting off: %.0f requests vs %.0f "
                 "admitted + %.0f control + %.0f rejected + %.0f bad + "
                 "%.0f shutdown + %.0f unknown",
                 requests, admitted, control, rejected, bad, shutting,
                 unknown);
        consistent = false;
    }
    // Control responses carry kOk too; the compute share must balance.
    if (admitted != (ok - control) + trapped + deadline) {
        GFP_WARN("admission accounting off: %.0f admitted vs %.0f "
                 "compute-ok + %.0f trapped + %.0f deadline",
                 admitted, ok - control, trapped, deadline);
        consistent = false;
    }
    if (in_flight_.load() != 0) {
        GFP_WARN("%zu requests still in flight", in_flight_.load());
        consistent = false;
    }
    return consistent;
}

std::string
Server::statsJson() const
{
    std::string out = "{\n\"service\": ";
    out += metrics_.toJson();
    out += ",\n\"engines\": {\n";
    for (unsigned e = 0; e < EngineSet::count(); ++e) {
        out += strprintf("\"%s\": ",
                         engineName(static_cast<EngineId>(e)));
        out += engines_->engine(static_cast<EngineId>(e))
                   .metrics()
                   .toJson();
        if (e + 1 < EngineSet::count())
            out += ",\n";
    }
    out += "}\n}\n";
    return out;
}

} // namespace gfp::service
