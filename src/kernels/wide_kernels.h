/**
 * @file
 * Assembly kernels for the asymmetric-crypto path: GF(2^233) arithmetic
 * built from the single-cycle 32-bit partial product (paper Sec. 3.3.4,
 * Tables 7/8/9) and the K-233 elliptic-curve operations on top.
 *
 * The 233-bit multiply follows the paper's two-step structure:
 *   1. full 466-bit carry-free product of 8-word operands — 64
 *      gf32bMult partial products with the A operand pinned in
 *      registers (reproducing Table 7's 72 LD / 71 ST / 64 GF32 /
 *      112 ALU budget), or 36 partial products with the two-level
 *      Karatsuba software optimization;
 *   2. rearrangement + sparse polynomial reduction for the Koblitz
 *      trinomial x^233 + x^74 + 1 on the CPU.
 *
 * Squaring needs only 8 partial products (each word times itself
 * spreads its bits).  The multiplicative inverse is the Itoh-Tsujii
 * chain (10 multiplies + 232 squarings for m = 233).  Point double /
 * mixed add use López-Dahab projective coordinates with a = 0, b = 1.
 *
 * Data layout (all 8-word = 32-byte field elements unless noted):
 *   opa, opb      multiply/square inputs
 *   result        field-op output
 *   qx, qy        affine input point
 *   px, py, pz    projective accumulator (also point-op output)
 *   kwords        scalar bits, 4 words little-endian
 *   kbits         scalar bit length (1 word); the top bit must be 1
 *   resx, resy    affine scalar-multiplication result
 */

#ifndef GFP_KERNELS_WIDE_KERNELS_H
#define GFP_KERNELS_WIDE_KERNELS_H

#include <string>

namespace gfp {

/** result = opa (x) opb, direct product.  The program also defines the
 *  labels fm_rearrange / fm_reduce so benches can attribute cycles to
 *  Table 7's three phases. */
std::string mult233DirectAsm();

/**
 * result = opa (x) opb computed WITHOUT GF instructions — the
 * M0+-class software baseline: a López-Dahab left-to-right comb with a
 * 4-bit window (a 16-entry premultiplied table of the B operand, 512
 * bytes, rebuilt per multiplication), followed by the same sparse
 * reduction.  Runs on the baseline core; this is the reproduction's
 * own measured counterpart to the Clercq [11] literature row of
 * Table 8.
 */
std::string mult233BaselineAsm();

/** result = opa (x) opb via two-level Karatsuba (36 partial products). */
std::string mult233KaratsubaAsm();

/** result = opa^2. */
std::string square233Asm();

/** result = opa^-1 (Itoh-Tsujii). @p karatsuba selects the multiplier. */
std::string inverse233Asm(bool karatsuba);

/** (px,py,pz) = 2*(px,py,pz) on K-233. */
std::string pointDoubleAsm(bool karatsuba);

/** (px,py,pz) += (qx,qy) (mixed addition) on K-233. */
std::string pointAddAsm(bool karatsuba);

/** (resx,resy) = k * (qx,qy) by double-and-add, including the final
 *  projective-to-affine conversion (one inversion). */
std::string scalarMultAsm(bool karatsuba);

} // namespace gfp

#endif // GFP_KERNELS_WIDE_KERNELS_H
